//! Nonlinear MPC on the iiwa with the dynamics gradient in different
//! numeric types — the paper's motivating application (§3) and its
//! Figure 12 study as a runnable scenario.
//!
//! ```text
//! cargo run --release --example mpc_manipulator
//! ```
//!
//! Solves a joint-space reaching task with iLQR, computing the dynamics
//! gradient kernel in f32 and in the accelerator's Q16.16 fixed point,
//! then projects what the accelerator does to achievable control rates.

use robomorphic::baselines::{random_inputs, CpuBaseline};
use robomorphic::core::GradientTemplate;
use robomorphic::fixed::Fix32_16;
use robomorphic::model::robots;
use robomorphic::sim::CoprocessorSystem;
use robomorphic::trajopt::{
    solve, ControlRateModel, IlqrOptions, ReachingTask, MPC_MINIMUM_RATE_HZ, PAPER_OPT_ITERATIONS,
};

fn main() {
    // --- The optimization itself, in two numeric types -------------------
    let task = ReachingTask::iiwa_reach();
    let opts = IlqrOptions::default();

    let float = solve::<f32>(&task, &opts);
    let fixed = solve::<Fix32_16>(&task, &opts);
    println!(
        "iLQR on {} ({} steps, dt {} s):",
        task.robot.name(),
        task.horizon,
        task.dt
    );
    println!("  iter |      f32 | Fixed{{16,16}}");
    for (i, (a, b)) in float.costs.iter().zip(fixed.costs.iter()).enumerate() {
        println!("  {i:>4} | {a:>8.2} | {b:>8.2}");
    }
    println!(
        "  final: f32 {:.2} vs fixed {:.2} -> fixed-point hardware arithmetic does not hurt convergence",
        float.final_cost(),
        fixed.final_cost()
    );

    // --- What acceleration buys at the control-loop level ----------------
    let robot = robots::iiwa14();
    let mut cpu = CpuBaseline::new(&robot);
    let input = &random_inputs(&robot, 1, 7)[0];
    let grad_cpu_s = cpu.time_single(input, 2000);
    let base = ControlRateModel::new(PAPER_OPT_ITERATIONS, grad_cpu_s, 0.45);

    let coproc = CoprocessorSystem::fpga_default(GradientTemplate::new().customize(&robot));
    let horizon = task.horizon.max(1);
    let grad_fpga_s = coproc.round_trip(horizon).total_s / horizon as f64;
    let accel = base.with_accelerated_gradient(grad_fpga_s);

    println!(
        "\ncontrol-rate projection (10 optimization iterations, gradient = 45% of step cost):"
    );
    println!(
        "  CPU gradient {:.2} us -> {:.0} Hz at {} steps; 250 Hz horizon: {} steps",
        grad_cpu_s * 1e6,
        base.control_rate_hz(horizon),
        horizon,
        base.max_timesteps_at(MPC_MINIMUM_RATE_HZ)
    );
    println!(
        "  FPGA gradient {:.2} us -> {:.0} Hz at {} steps; 250 Hz horizon: {} steps",
        grad_fpga_s * 1e6,
        accel.control_rate_hz(horizon),
        horizon,
        accel.max_timesteps_at(MPC_MINIMUM_RATE_HZ)
    );
    println!("  (the paper's Figure 15: ~80 steps -> ~100-115 steps at 250 Hz)");
}
