//! RTL export: generate the customized accelerator's Verilog from a robot
//! model — the §7 automation flow ("users can then create accelerators
//! without intervention from roboticists or hardware engineers").
//!
//! ```text
//! cargo run --release --example rtl_export
//! ```
//!
//! Emits the pruned `X·` functional unit for the paper's §4 example joint
//! (13 DSP multipliers instead of 36), checks the emitted netlist
//! *executes* identically to the reference transform, and prints the
//! Figure 8 top level for the quadruped with its limb processors.

use robomorphic::codegen::{
    generate_top, generate_x_unit, lint, optimize_with_report, to_verilog, RtlFormat,
};
use robomorphic::core::GradientTemplate;
use robomorphic::model::robots;
use robomorphic::spatial::Motion;
use std::collections::HashMap;

fn main() {
    let iiwa = robots::iiwa14();

    // --- The §4 example joint as generated hardware ----------------------
    let unit = generate_x_unit(&iiwa, 1);
    let stats = unit.stats();
    println!(
        "x_unit for iiwa joint 2: {} DSP muls (dense: 36), {} const muls, {} adds",
        stats.muls, stats.const_muls, stats.adds
    );

    // Execute the generated netlist and compare against the reference.
    let q: f64 = 0.83;
    let m = Motion::from_array([0.3, -0.5, 0.8, 1.2, -0.4, 0.6]);
    let mut inputs = HashMap::new();
    inputs.insert("sin_q".to_owned(), q.sin());
    inputs.insert("cos_q".to_owned(), q.cos());
    for (i, x) in m.to_array().iter().enumerate() {
        inputs.insert(format!("v{i}"), *x);
    }
    let outputs = unit.eval(&inputs).expect("netlist evaluates");
    let want = iiwa.joint_transform::<f64>(1, q).apply_motion(m).to_array();
    let mut max_err = 0.0_f64;
    for (name, got) in &outputs {
        let idx: usize = name[1..].parse().unwrap();
        max_err = max_err.max((got - want[idx]).abs());
    }
    println!("generated netlist vs reference transform: max error {max_err:.2e}");
    assert!(max_err < 1e-12);

    // --- Verilog lowering (from the optimized netlist) ---------------------
    let (opt, report) = optimize_with_report(&unit);
    println!("optimizer: {report}");
    let verilog = to_verilog(&opt, RtlFormat::q16_16());
    lint(&verilog).expect("structurally valid RTL");
    println!("\n--- x_unit_iiwa14_joint1.v (first 14 lines) ---");
    for line in verilog.lines().take(14) {
        println!("{line}");
    }

    // --- Top level for a multi-limb robot ----------------------------------
    let hyq = robots::hyq();
    let accel = GradientTemplate::new().customize(&hyq);
    let top = generate_top(&accel, RtlFormat::q16_16());
    println!("\n--- grad_accel_hyq.v instance manifest ---");
    for (name, desc) in &top.manifest {
        println!("  {name:<18} {desc}");
    }
    println!(
        "\nok: {} instances generated for {} ({} limbs x (N dq + N dqd + ID))",
        top.manifest.len(),
        hyq.name(),
        accel.params().l_limbs
    );
}
