//! Hardware in the loop: closed-loop nonlinear MPC where the dynamics
//! gradient comes from the *simulated fixed-point accelerator* instead of
//! host software — the paper's deployment (Figure 9) exercised end to end.
//!
//! ```text
//! cargo run --release --example hardware_in_the_loop
//! ```
//!
//! Runs the same receding-horizon controller twice — once with the plan's
//! CPU analytic backend, once with the Q16.16 accelerator simulation —
//! swapping nothing but the [`GradientBackend`] handed to `run_mpc`. Also
//! accounts the accelerator's cycle budget for the whole run.

use robomorphic::core::FpgaPlatform;
use robomorphic::engine::{AcceleratorBackend, RobotPlan};
use robomorphic::fixed::Fix32_16;
use robomorphic::trajopt::{run_mpc, MpcConfig, ReachingTask};

fn main() {
    let task = ReachingTask::iiwa_reach();
    let config = MpcConfig {
        control_steps: 40,
        disturbance: 0.3, // unmodeled constant torque on every joint
        ..Default::default()
    };

    // Plan once per morphology; every backend below shares it or derives
    // from the same robot description.
    let plan = RobotPlan::new(&task.robot);

    // --- Software gradient (host f64) -------------------------------------
    let sw = run_mpc(&task, &config, &plan.cpu_backend());

    // --- Accelerator in the loop (Q16.16) ----------------------------------
    // The one-line swap: same trait, fixed-point datapath underneath.
    let hw_backend = AcceleratorBackend::<Fix32_16>::new(&task.robot);
    let hw = run_mpc(&task, &config, &hw_backend);

    println!(
        "closed-loop MPC on {} with a {} Nm unmodeled disturbance:",
        task.robot.name(),
        config.disturbance
    );
    println!("  step | err (software f64) | err (accelerator Q16.16)");
    for (i, (a, b)) in sw
        .tracking_errors
        .iter()
        .zip(hw.tracking_errors.iter())
        .enumerate()
        .step_by(5)
    {
        println!("  {i:>4} | {a:>18.4} | {b:>24.4}");
    }
    println!(
        "  final: software {:.4} rad vs accelerator {:.4} rad",
        sw.final_error(),
        hw.final_error()
    );

    let cycles_per_call = hw_backend.cycles_per_gradient();
    let fpga = FpgaPlatform::xcvu9p();
    let accel_time_ms = hw.gradient_calls as f64 * cycles_per_call as f64 / fpga.clock_hz * 1e3;
    println!(
        "\naccelerator accounting: {} kernel calls x {} cycles = {:.2} ms of FPGA time\n\
         across {:.1} ms of simulated robot motion (dt = {} s x {} steps)",
        hw.gradient_calls,
        cycles_per_call,
        accel_time_ms,
        task.dt * config.control_steps as f64 * 1e3,
        task.dt,
        config.control_steps
    );
    assert!(hw.final_error() < 2.0 * sw.final_error().max(0.02));
    println!("ok: fixed-point hardware in the loop tracks like the software baseline");
}
