//! Generalizing across morphologies (§7): the *same* template customized
//! for a manipulator, a quadruped, and a humanoid.
//!
//! ```text
//! cargo run --release --example codesign_quadruped
//! ```
//!
//! Shows how limb topology becomes hardware parallelism: the HyQ-class
//! quadruped gets 4 parallel limb processors of 3 datapath-pairs each, and
//! despite having more joints than the iiwa its gradient latency is lower,
//! because datapath depth follows the longest limb.

use robomorphic::core::{FpgaPlatform, GradientTemplate};
use robomorphic::model::robots;
use robomorphic::sparsity::x_pattern;

fn main() {
    let template = GradientTemplate::new();
    let fpga = FpgaPlatform::xcvu9p();

    println!("one template, three robots:");
    println!(
        "  robot      | dof | limbs | N (max) | cycles | latency us | DSP util | fits XCVU9P?"
    );
    for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
        let accel = template.customize(&robot);
        println!(
            "  {:<10} | {:>3} | {:>5} | {:>7} | {:>6} | {:>10.2} | {:>7.0}% | {}",
            robot.name(),
            robot.dof(),
            accel.params().l_limbs,
            accel.params().n_links_max,
            accel.schedule().single_latency_cycles(),
            accel.single_latency_s(fpga.clock_hz) * 1e6,
            fpga.dsp_utilization(&accel.resources()) * 100.0,
            if fpga.fits(&accel.resources()) {
                "yes"
            } else {
                "no (needs ASIC, cf. Table 2)"
            },
        );
    }
    println!(
        "  (the paper's FPGA fits exactly one 7-DoF pipeline; multi-limb robots\n\
         \x20  motivate the ASIC, whose 1.9 mm^2 pipeline leaves room for many, Sec. 6.4)"
    );

    // Limb decomposition of the quadruped.
    let hyq = robots::hyq();
    let accel = template.customize(&hyq);
    println!("\n{} limb processors:", hyq.name());
    for (i, plan) in accel.limb_plans().iter().enumerate() {
        println!(
            "  limb {}: {} links -> {} dq + {} dqd datapaths + 1 ID chain",
            i, plan.links, plan.dq_datapaths, plan.dqd_datapaths
        );
    }

    // Per-joint sparsity the functional units are pruned to (§7's Figure 16
    // point: different joints on real robots expose different patterns).
    println!("\nHyQ hip abduction (revolute-x) transform pattern:");
    print!("{}", x_pattern(&hyq, 0));
    println!("HyQ knee (revolute-y) transform pattern:");
    print!("{}", x_pattern(&hyq, 2));

    let atlas = robots::atlas();
    let shoulder = atlas
        .links()
        .iter()
        .position(|l| l.name == "r_arm_shx")
        .expect("atlas right shoulder");
    println!("Atlas right shoulder (revolute-x) transform pattern:");
    print!("{}", x_pattern(&atlas, shoulder));

    println!(
        "\nlatency note: the quadruped ({} joints) finishes in {} cycles vs the\n\
         manipulator's ({} joints) {} cycles - limb-parallel datapaths track the\n\
         longest limb, not total joint count.",
        hyq.dof(),
        accel.schedule().single_latency_cycles(),
        robots::iiwa14().dof(),
        template
            .customize(&robots::iiwa14())
            .schedule()
            .single_latency_cycles()
    );
}
