//! Task-space motion planning: drive the iiwa's end effector to a world
//! point under joint effort limits — the full motivating workload of §1
//! ("motion planning algorithms calculate a valid motion path from a
//! robot's initial position to a goal state"), built on the dynamics
//! gradient kernel and the kinematics substrate.
//!
//! ```text
//! cargo run --release --example task_space_reach
//! ```

use robomorphic::dynamics::{forward_kinematics, link_origin_world, DynamicsModel};
use robomorphic::model::{JointLimits, RobotModel};
use robomorphic::spatial::Vec3;
use robomorphic::trajopt::{solve, IlqrOptions, ReachingTask};

fn with_effort_limits(robot: &RobotModel, effort: f64) -> RobotModel {
    let links = robot
        .links()
        .iter()
        .map(|l| {
            let mut l = l.clone();
            l.limits = JointLimits {
                effort: Some(effort),
                ..JointLimits::none()
            };
            l
        })
        .collect();
    RobotModel::new(format!("{}_limited", robot.name()), links).expect("valid robot")
}

fn main() {
    let target = Vec3::new(0.35, 0.2, 0.9);
    let mut task = ReachingTask::iiwa_ee_reach(target);
    task.horizon = 48;
    task.dt = 0.02;
    task.w_ee = 800.0;
    task.robot = with_effort_limits(&task.robot, 40.0);
    task.clamp_effort = true;

    let opts = IlqrOptions {
        iterations: 25,
        ..Default::default()
    };
    let result = solve::<f64>(&task, &opts);

    let model = DynamicsModel::<f64>::new(&task.robot);
    let n = task.robot.dof();
    let ee = |x: &[f64]| {
        let poses = forward_kinematics(&model, &x[..n]);
        link_origin_world(&poses, n - 1)
    };
    let start = ee(&task.x0);
    let end = ee(result.states.last().expect("states"));

    println!(
        "task-space reach on {} ({} steps x {} s, efforts clamped to 40 Nm):",
        task.robot.name(),
        task.horizon,
        task.dt
    );
    println!("  target: {:?}", target.to_f64());
    println!(
        "  start EE:  {:?}  (distance {:.3} m)",
        start.to_f64(),
        (start - target).norm()
    );
    println!(
        "  final EE:  {:?}  (distance {:.3} m)",
        end.to_f64(),
        (end - target).norm()
    );
    let max_u = result
        .controls
        .iter()
        .flatten()
        .fold(0.0_f64, |a, b| a.max(b.abs()));
    println!("  peak commanded torque: {max_u:.1} Nm (limit 40)");
    println!(
        "  cost trace: {:?}",
        result
            .costs
            .iter()
            .map(|c| (c * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    assert!((end - target).norm() < 0.12, "reach failed");
    assert!(max_u <= 40.0 + 1e-9, "effort limit violated");
    println!("ok: reached the target within limits");
}
