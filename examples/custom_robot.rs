//! Bring your own robot: describe a new morphology in the `.robo` text
//! format, generate its customized accelerator, and validate the simulated
//! hardware against finite differences — the paper's "users can then
//! create accelerators without intervention from roboticists or hardware
//! engineers" automation story (§7).
//!
//! ```text
//! cargo run --release --example custom_robot
//! ```

use robomorphic::core::{FpgaPlatform, GradientTemplate};
use robomorphic::dynamics::{findiff, forward_dynamics, mass_matrix_inverse, DynamicsModel};
use robomorphic::model::parse_robo;
use robomorphic::sim::AcceleratorSim;

/// A 5-DoF palletizing arm that mixes revolute and prismatic joints —
/// nothing like the built-in robots.
const PALLETIZER: &str = "\
robot palletizer
link name=base_yaw   parent=none joint=revolute_z  rot=none trans=0,0,0.30 mass=12.0 com=0,0,0.10 inertia=0.20,0.20,0.15,0,0,0
link name=lift       parent=0    joint=prismatic_z rot=none trans=0,0,0.40 mass=6.0  com=0,0,0.20 inertia=0.08,0.08,0.02,0,0,0
link name=reach      parent=1    joint=prismatic_x rot=none trans=0.10,0,0.10 mass=4.0 com=0.25,0,0 inertia=0.01,0.09,0.09,0,0,0
link name=wrist_tilt parent=2    joint=revolute_y  rot=x:90 trans=0.50,0,0 mass=1.5  com=0,0.05,0 inertia=0.004,0.003,0.004,0,0,0
link name=gripper    parent=3    joint=revolute_z  rot=x:-90 trans=0,0.12,0 mass=0.8 com=0,0,0.04 inertia=0.001,0.001,0.0008,0,0,0
";

fn main() {
    let robot = parse_robo(PALLETIZER).expect("valid .robo description");
    println!(
        "parsed `{}`: {} links, joints: {:?}",
        robot.name(),
        robot.dof(),
        robot
            .links()
            .iter()
            .map(|l| l.joint.as_str())
            .collect::<Vec<_>>()
    );

    // Customize the (algorithm-level) template for this brand-new robot.
    let accel = GradientTemplate::new().customize(&robot);
    let fpga = FpgaPlatform::xcvu9p();
    println!(
        "customized accelerator: {} cycles ({:.2} us at 55.6 MHz), {} DSPs ({:.0}% of budget)",
        accel.schedule().single_latency_cycles(),
        accel.single_latency_s(fpga.clock_hz) * 1e6,
        fpga.dsps_used(&accel.resources()),
        fpga.dsp_utilization(&accel.resources()) * 100.0,
    );
    println!(
        "shared X-unit covers {}/36 entries (prismatic joints contribute different patterns)",
        accel.params().x_superposition.count()
    );

    // Validate: simulated accelerator vs finite differences of the ABA.
    let model = DynamicsModel::<f64>::new(&robot);
    let n = robot.dof();
    let q = vec![0.3, 0.15, 0.2, -0.4, 0.6];
    let qd = vec![0.1, -0.2, 0.05, 0.3, -0.1];
    let tau = vec![1.0, 20.0, 5.0, 0.5, 0.1];
    let qdd = forward_dynamics(&model, &q, &qd, &tau).expect("valid model");
    let minv = mass_matrix_inverse(&model, &q).expect("valid model");

    let sim = AcceleratorSim::<f64>::new(&robot);
    let out = sim.compute_gradient(&q, &qd, &qdd, &minv);
    let (fd_dq, _fd_dqd) = findiff::forward_dynamics_gradient_fd(&model, &q, &qd, &tau, 1e-6);

    let mut max_err = 0.0_f64;
    for i in 0..n {
        for j in 0..n {
            max_err = max_err.max((out.dqdd_dq[(i, j)] - fd_dq[(i, j)]).abs());
        }
    }
    println!(
        "simulated accelerator vs finite differences: max abs error {max_err:.2e} \
         (entries up to {:.1})",
        fd_dq.max_abs()
    );
    assert!(max_err < 1e-3, "gradient validation failed");
    println!("ok: a never-seen morphology, accelerated and validated end to end");
}
