//! Quickstart: the two-step robomorphic flow on the paper's target robot.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! 1. Create the dynamics-gradient hardware template (once per algorithm).
//! 2. Customize it for the Kuka LBR iiwa-14's morphology.
//! 3. Run one gradient computation through the simulated accelerator in
//!    the hardware's Q16.16 fixed point and check it against the f64
//!    software reference.

use robomorphic::baselines::random_inputs;
use robomorphic::core::{AsicPlatform, FpgaPlatform, GradientTemplate};
use robomorphic::fixed::Fix32_16;
use robomorphic::model::robots;
use robomorphic::sim::AcceleratorSim;
use robomorphic::spatial::Scalar;

fn main() {
    // --- Step 1: the template (created once per algorithm) --------------
    let template = GradientTemplate::new();

    // --- Step 2: customize per robot -------------------------------------
    let robot = robots::iiwa14();
    let accel = template.customize(&robot);

    println!(
        "robot: {} ({} links, {} limb(s))",
        robot.name(),
        robot.dof(),
        accel.params().l_limbs
    );
    println!(
        "shared X-unit sparsity: {}/36 nonzeros (superposition of all joints)",
        accel.params().x_superposition.count()
    );
    let r = accel.resources();
    let fpga = FpgaPlatform::xcvu9p();
    println!(
        "resources: {} variable muls, {} const muls, {} adders -> {} DSPs ({:.0}% of the XCVU9P)",
        r.var_muls,
        r.const_muls,
        r.adds,
        fpga.dsps_used(&r),
        fpga.dsp_utilization(&r) * 100.0
    );
    println!(
        "latency: {} cycles = {:.2} us at 55.6 MHz (FPGA), {:.3} us at 400 MHz (12 nm ASIC)",
        accel.schedule().single_latency_cycles(),
        accel.single_latency_s(fpga.clock_hz) * 1e6,
        accel.single_latency_s(AsicPlatform::typical().clock_hz()) * 1e6
    );

    // --- Run the accelerator (simulated, fixed-point) --------------------
    let input = &random_inputs(&robot, 1, 42)[0];
    let sim = AcceleratorSim::<Fix32_16>::new(&robot);
    let cast = |v: &[f64]| -> Vec<Fix32_16> { v.iter().map(|x| Fix32_16::from_f64(*x)).collect() };
    let out = sim.compute_gradient(
        &cast(&input.q),
        &cast(&input.qd),
        &cast(&input.qdd),
        &input.minv.cast(),
    );

    // Reference in f64.
    let reference = AcceleratorSim::<f64>::new(&robot).compute_gradient(
        &input.q,
        &input.qd,
        &input.qdd,
        &input.minv,
    );
    let scale = reference.dqdd_dq.max_abs().max(1.0);
    let rel = out.dqdd_dq.cast::<f64>().max_abs_diff(&reference.dqdd_dq) / scale;
    println!(
        "fixed-point gradient vs f64 reference: {:.3}% max relative error \
         (gradient entries up to {scale:.1})",
        rel * 100.0
    );
    println!(
        "dqdd_dq[0][0..3] = {:?}",
        &reference.dqdd_dq.as_slice()[0..3]
    );
    assert!(rel < 5e-3);
    println!("ok: the Q16.16 accelerator matches the software reference");
}
