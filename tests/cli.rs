//! Integration tests of the `robomorphic` CLI commands (exercised through
//! the library entry points the binary dispatches to).

use robomorphic::cli::{self, CliError};

#[test]
fn info_reports_morphology() {
    let out = cli::cmd_info("iiwa14").expect("builtin robot");
    assert!(out.contains("7 links, 1 limb(s)"));
    assert!(out.contains("13/36"));
    assert!(out.contains("superposition: 23/36"));
}

#[test]
fn customize_reports_design_points() {
    let out = cli::cmd_customize("iiwa14", None).expect("builtin robot");
    assert!(out.contains("34 cycles per gradient"));
    assert!(out.contains("71% of XCVU9P budget"));
}

#[test]
fn customize_emits_rtl() {
    let dir = std::env::temp_dir().join("robomorphic_cli_rtl_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = cli::cmd_customize("iiwa14", Some(dir.to_str().unwrap())).expect("emits");
    assert!(out.contains("emitted 8 RTL files"));
    let top = std::fs::read_to_string(dir.join("grad_accel_top.v")).expect("top exists");
    assert!(top.contains("module grad_accel_iiwa14"));
    let unit = std::fs::read_to_string(dir.join("x_unit_joint1.v")).expect("unit exists");
    // Sparsity pruning leaves 13 of 36 DSP multipliers (§4); the netlist
    // optimizer's CSE then merges repeated entry subtrees down to 10.
    assert_eq!(unit.matches("// DSP multiplier").count(), 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn convert_round_trips_through_robo() {
    let dir = std::env::temp_dir().join("robomorphic_cli_convert_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dest = dir.join("hyq.robo");
    let out = cli::cmd_convert("hyq", dest.to_str().unwrap()).expect("converts");
    assert!(out.contains("12 links"));
    let info = cli::cmd_info(dest.to_str().unwrap()).expect("reads back");
    assert!(info.contains("4 limb(s)"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_validates_builtin() {
    let out = cli::cmd_check("iiwa14").expect("checks");
    assert!(out.contains("mass matrix positive definite at q = 0: ok"));
    assert!(out.contains("(ok)"));
    assert!(!out.contains("FAIL"));
}

#[test]
fn check_accepts_backend_flag() {
    // Every engine backend passes the spot-check on the same robot; the
    // report names the backend it ran.
    for backend in ["cpu", "accel", "fd"] {
        let out = cli::run(&[
            "check".to_owned(),
            "iiwa14".to_owned(),
            "--backend".to_owned(),
            backend.to_owned(),
        ])
        .expect("backend checks");
        assert!(out.contains(&format!("`{backend}` backend gradient")));
        assert!(out.contains("(ok)"));
        assert!(!out.contains("FAIL"));
    }
}

#[test]
fn check_accepts_tier_flag() {
    // Forcing any tier still passes the spot-check (all tiers are
    // bit-identical), and the report names the tier the plan landed on.
    for tier in ["auto", "portable", "sse2", "avx2", "neon"] {
        let out = cli::run(&[
            "check".to_owned(),
            "iiwa14".to_owned(),
            "--tier".to_owned(),
            tier.to_owned(),
        ])
        .expect("tier checks");
        assert!(out.contains("execution tier: "));
        assert!(out.contains("(ok)"));
        assert!(!out.contains("FAIL"));
    }
    // Forcing portable is honored verbatim on every host.
    let out = cli::run(&[
        "check".to_owned(),
        "iiwa14".to_owned(),
        "--backend".to_owned(),
        "accel".to_owned(),
        "--tier".to_owned(),
        "portable".to_owned(),
    ])
    .expect("combined flags");
    assert!(out.contains("execution tier: portable"));
    assert!(out.contains("`accel` backend gradient"));
}

/// Needs the `trace` feature (on by default): the only test in this
/// binary that installs the process-global trace collector.
#[cfg(feature = "trace")]
#[test]
fn check_accepts_trace_flag() {
    let dir = std::env::temp_dir().join("robomorphic_cli_trace_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("check.json");
    let out = cli::run(&[
        "check".to_owned(),
        "iiwa14".to_owned(),
        "--tier".to_owned(),
        "portable".to_owned(),
        "--trace".to_owned(),
        trace_path.to_str().unwrap().to_owned(),
    ])
    .expect("traced check");
    assert!(out.contains("wrote trace"));
    assert!(!out.contains("FAIL"));
    let json = std::fs::read_to_string(&trace_path).expect("trace file written");
    let trace = robomorphic::trace::Trace::parse_chrome(&json).expect("valid chrome trace");
    assert!(
        trace.span_kinds().len() >= 7,
        "check trace has only {} span kinds",
        trace.span_kinds().len()
    );
    assert!(trace.meta.iter().any(|(k, _)| k == "workload"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn check_rejects_unknown_flag_and_missing_value() {
    let err = cli::run(&[
        "check".to_owned(),
        "iiwa14".to_owned(),
        "--verbose".to_owned(),
    ])
    .expect_err("unknown flag");
    match err {
        CliError::Usage(msg) => assert!(msg.contains("unknown check flag `--verbose`")),
        other => panic!("expected usage error, got {other:?}"),
    }
    let err = cli::run(&[
        "check".to_owned(),
        "iiwa14".to_owned(),
        "--trace".to_owned(),
    ])
    .expect_err("missing value");
    match err {
        CliError::Usage(msg) => assert!(msg.contains("--trace needs a value")),
        other => panic!("expected usage error, got {other:?}"),
    }
}

#[test]
fn check_rejects_unknown_tier() {
    let err = cli::run(&[
        "check".to_owned(),
        "iiwa14".to_owned(),
        "--tier".to_owned(),
        "avx512".to_owned(),
    ])
    .expect_err("unknown tier");
    match err {
        CliError::Usage(msg) => assert!(msg.contains("unknown execution tier `avx512`")),
        other => panic!("expected usage error, got {other:?}"),
    }
}

#[test]
fn check_rejects_unknown_backend() {
    let err = cli::run(&[
        "check".to_owned(),
        "iiwa14".to_owned(),
        "--backend".to_owned(),
        "gpu".to_owned(),
    ])
    .expect_err("unknown backend");
    match err {
        CliError::Usage(msg) => assert!(msg.contains("unknown backend `gpu`")),
        other => panic!("expected usage error, got {other:?}"),
    }
}

#[test]
fn urdf_sources_load() {
    let dir = std::env::temp_dir().join("robomorphic_cli_urdf_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let urdf = r#"<robot name="cli_test">
      <link name="base"/>
      <link name="arm"><inertial><origin xyz="0 0 0.1"/><mass value="1.5"/>
        <inertia ixx="0.01" iyy="0.01" izz="0.002"/></inertial></link>
      <joint name="j" type="revolute"><parent link="base"/><child link="arm"/>
        <origin xyz="0 0 0.2"/><axis xyz="0 0 1"/></joint>
    </robot>"#;
    let path = dir.join("arm.urdf");
    std::fs::write(&path, urdf).unwrap();
    let out = cli::cmd_info(path.to_str().unwrap()).expect("parses urdf");
    assert!(out.contains("cli_test"));
    assert!(out.contains("1 links"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_inputs_are_reported() {
    assert!(matches!(
        cli::load_robot("/nonexistent.robo"),
        Err(CliError::Load(_))
    ));
    assert!(matches!(
        cli::run(&["frobnicate".to_owned()]),
        Err(CliError::Usage(_))
    ));
    assert!(cli::usage().contains("robomorphic"));
}

#[test]
fn run_dispatches() {
    let out = cli::run(&["info".to_owned(), "atlas".to_owned()]).expect("dispatch works");
    assert!(out.contains("30 links"));
}

#[test]
fn serve_runs_a_closed_loop_load() {
    let args: Vec<String> = [
        "serve",
        "iiwa14",
        "--backend",
        "cpu",
        "--clients",
        "2",
        "--requests",
        "6",
        "--linger-us",
        "50",
    ]
    .map(str::to_owned)
    .into();
    let out = cli::run(&args).expect("serve runs");
    assert!(out.contains("serving `iiwa14` [grad kernel, cpu backend"));
    assert!(out.contains("2 client(s) x 6 round trip(s)"));
    assert!(out.contains("completed 12/12 (shed 0)"));
    assert!(out.contains("latency p50"));
    assert!(out.contains("throughput"));
}

#[test]
fn serve_rejects_bad_flags() {
    let run = |args: &[&str]| cli::run(&args.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    assert!(matches!(
        run(&["serve", "iiwa14", "--clients", "soon"]),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        run(&["serve", "iiwa14", "--frobnicate"]),
        Err(CliError::Usage(_))
    ));
    assert!(matches!(
        run(&["serve", "--clients", "2"]),
        Err(CliError::Usage(_))
    ));
    assert!(cli::usage().contains("robomorphic serve"));
}
