//! Property-based tests over randomly generated robot morphologies.
//!
//! The paper's claim is that the methodology is *systematic*: any robot a
//! description file can express gets a correct customized accelerator.
//! These properties generate random kinematic trees (random joint types,
//! placements, and inertial parameters) and check the invariants the whole
//! stack rests on.

use proptest::prelude::*;
use robomorphic::dynamics::{
    aba, findiff, forward_dynamics, mass_matrix, rnea, rnea_derivatives, DynamicsModel,
};
use robomorphic::model::{JointType, RobotBuilder, RobotModel};
use robomorphic::sim::AcceleratorSim;
use robomorphic::sparsity::{superposition_pattern, x_pattern, Mask6};
use robomorphic::spatial::{Mat3, Transform, Vec3};

fn joint_strategy() -> impl Strategy<Value = JointType> {
    prop::sample::select(JointType::ALL.to_vec())
}

#[derive(Debug, Clone)]
struct LinkSpec {
    joint: JointType,
    rot_axis: u8,
    rot_deg: f64,
    trans: [f64; 3],
    mass: f64,
    com: [f64; 3],
    inertia_diag: [f64; 3],
    branch_to: usize, // parent selector
}

fn link_strategy() -> impl Strategy<Value = LinkSpec> {
    (
        joint_strategy(),
        0u8..4,
        prop::sample::select(vec![-90.0, 0.0, 45.0, 90.0]),
        [-0.3..0.3f64, -0.3..0.3f64, 0.05..0.4f64],
        0.5..8.0f64,
        [-0.1..0.1f64, -0.1..0.1f64, 0.0..0.2f64],
        [0.005..0.08f64, 0.005..0.08f64, 0.002..0.05f64],
        0usize..4,
    )
        .prop_map(
            |(joint, rot_axis, rot_deg, trans, mass, com, inertia_diag, branch_to)| LinkSpec {
                joint,
                rot_axis,
                rot_deg,
                trans,
                mass,
                com,
                inertia_diag,
                branch_to,
            },
        )
}

fn build_robot(specs: &[LinkSpec]) -> RobotModel {
    let mut b = RobotBuilder::new("random");
    for (i, s) in specs.iter().enumerate() {
        let parent = if i == 0 {
            None
        } else {
            Some(s.branch_to % i) // any earlier link; creates trees, not just chains
        };
        let rot = match s.rot_axis % 4 {
            0 => Mat3::identity(),
            1 => Mat3::coord_rotation_x(s.rot_deg.to_radians()),
            2 => Mat3::coord_rotation_y(s.rot_deg.to_radians()),
            _ => Mat3::coord_rotation_z(s.rot_deg.to_radians()),
        };
        b = b
            .link(format!("l{i}"), parent, s.joint)
            .placement(Transform::new(
                rot,
                Vec3::new(s.trans[0], s.trans[1], s.trans[2]),
            ))
            .inertia(
                s.mass,
                Vec3::new(s.com[0], s.com[1], s.com[2]),
                Mat3::from_rows(
                    [s.inertia_diag[0], 0.0, 0.0],
                    [0.0, s.inertia_diag[1], 0.0],
                    [0.0, 0.0, s.inertia_diag[2]],
                ),
            );
    }
    b.build().expect("generated robots are valid")
}

fn state_strategy(n: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
    (
        prop::collection::vec(-1.5..1.5f64, n),
        prop::collection::vec(-1.0..1.0f64, n),
        prop::collection::vec(-3.0..3.0f64, n),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn mass_matrix_is_symmetric_positive_definite(
        specs in prop::collection::vec(link_strategy(), 2..7),
    ) {
        let robot = build_robot(&specs);
        let model = DynamicsModel::<f64>::new(&robot);
        let q: Vec<f64> = (0..model.dof()).map(|i| 0.3 * i as f64 - 0.5).collect();
        let m = mass_matrix(&model, &q);
        prop_assert!(m.is_symmetric(1e-9));
        prop_assert!(m.ldlt().is_ok());
    }

    #[test]
    fn forward_and_inverse_dynamics_are_inverses(
        specs in prop::collection::vec(link_strategy(), 2..7),
        seed in 0u64..1000,
    ) {
        let robot = build_robot(&specs);
        let model = DynamicsModel::<f64>::new(&robot);
        let n = model.dof();
        let mut s = seed.wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let q: Vec<f64> = (0..n).map(|_| next()).collect();
        let qd: Vec<f64> = (0..n).map(|_| next()).collect();
        let tau: Vec<f64> = (0..n).map(|_| 4.0 * next()).collect();
        let qdd = forward_dynamics(&model, &q, &qd, &tau).expect("spd");
        let back = rnea(&model, &q, &qd, &qdd).tau;
        for i in 0..n {
            prop_assert!((back[i] - tau[i]).abs() < 1e-7, "joint {}", i);
        }
        // And the O(n) ABA agrees with the CRBA route.
        let via_aba = aba(&model, &q, &qd, &tau);
        for i in 0..n {
            prop_assert!((via_aba[i] - qdd[i]).abs() < 1e-6, "aba joint {}", i);
        }
    }

    #[test]
    fn analytic_gradient_matches_finite_differences(
        specs in prop::collection::vec(link_strategy(), 2..6),
        (q, qd, qdd) in state_strategy(5),
    ) {
        let robot = build_robot(&specs);
        let model = DynamicsModel::<f64>::new(&robot);
        let n = model.dof();
        let (q, qd, qdd) = (&q[..n], &qd[..n], &qdd[..n]);
        let cache = rnea(&model, q, qd, qdd).cache;
        let analytic = rnea_derivatives(&model, qd, &cache);
        let numeric = findiff::rnea_gradient_fd(&model, q, qd, qdd, 1e-6);
        prop_assert!(analytic.dtau_dq.max_abs_diff(&numeric.dtau_dq) < 5e-4);
        prop_assert!(analytic.dtau_dqd.max_abs_diff(&numeric.dtau_dqd) < 5e-4);
    }

    #[test]
    fn simulated_accelerator_equals_reference_on_random_morphologies(
        specs in prop::collection::vec(link_strategy(), 2..7),
    ) {
        let robot = build_robot(&specs);
        let input = &robomorphic::baselines::random_inputs(&robot, 1, 77)[0];
        let reference = robomorphic::dynamics::dynamics_gradient_from_qdd(
            &DynamicsModel::<f64>::new(&robot),
            &input.q, &input.qd, &input.qdd, &input.minv,
        );
        let sim = AcceleratorSim::<f64>::new(&robot);
        let out = sim.compute_gradient(&input.q, &input.qd, &input.qdd, &input.minv);
        prop_assert!(out.dqdd_dq.max_abs_diff(&reference.dqdd_dq) < 1e-9);
        prop_assert!(out.dqdd_dqd.max_abs_diff(&reference.dqdd_dqd) < 1e-9);
    }

    #[test]
    fn sparsity_superposition_covers_every_joint(
        specs in prop::collection::vec(link_strategy(), 1..8),
    ) {
        let robot = build_robot(&specs);
        let sup = superposition_pattern(&robot);
        for i in 0..robot.dof() {
            prop_assert!(x_pattern(&robot, i).is_subset_of(&sup));
        }
        prop_assert!(sup.is_subset_of(&Mask6::robot_agnostic_transform()));
    }

    #[test]
    fn robo_format_round_trips(
        specs in prop::collection::vec(link_strategy(), 1..6),
    ) {
        let robot = build_robot(&specs);
        let text = robomorphic::model::to_robo(&robot);
        let parsed = robomorphic::model::parse_robo(&text).expect("round trip");
        prop_assert_eq!(parsed.dof(), robot.dof());
        for (a, b) in parsed.links().iter().zip(robot.links().iter()) {
            prop_assert_eq!(a.joint, b.joint);
            prop_assert_eq!(a.parent, b.parent);
            prop_assert!((a.inertia.mass - b.inertia.mass).abs() < 1e-9);
            prop_assert!((a.tree.rot - b.tree.rot).max_abs() < 1e-9);
        }
    }

    #[test]
    fn customization_is_deterministic(
        specs in prop::collection::vec(link_strategy(), 1..6),
    ) {
        let robot = build_robot(&specs);
        let t = robomorphic::core::GradientTemplate::new();
        let a = t.customize(&robot);
        let b = t.customize(&robot);
        prop_assert_eq!(a.resources(), b.resources());
        prop_assert_eq!(a.schedule(), b.schedule());
    }
}
