//! Proof that the workspace kernels hit zero steady-state heap traffic.
//!
//! A counting global allocator wraps the system allocator; after one
//! warm-up call sizes every buffer, repeated `rnea_into` /
//! `dynamics_gradient_into` / `compute_gradient_into` calls must perform
//! **zero** allocations — the property that makes the kernels safe for
//! real-time control loops (and honest stand-ins for the accelerator's
//! statically-provisioned registers).
//!
//! Kept as its own integration binary with a single `#[test]` so no
//! concurrent test can allocate while the counter is being watched.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use robomorphic::codegen::{generate_x_unit, optimize, CompiledNetlist, EvalWorkspace};
use robomorphic::dynamics::{
    aba_into, dynamics_gradient_into, forward_dynamics_into, mass_matrix_inverse, rnea, rnea_into,
    AbaWorkspace, DynamicsModel, FdWorkspace, GradWorkspace, RneaWorkspace,
};
use robomorphic::model::robots;
use robomorphic::sim::{AcceleratorSim, SimWorkspace};

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to the system allocator — every contract
// (layout validity, pointer provenance) is forwarded unchanged; the
// counter increment has no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One tier-dispatched batch sweep (named so the counted loops below read
/// as what they measure).
fn compiled_batch_warm(
    compiled: &robomorphic::codegen::CompiledNetlist<f64>,
    ws: &mut robomorphic::codegen::TieredBatchEval<f64>,
    states: &[&[f64]],
    out: &mut [f64],
) {
    ws.eval_batch_into(compiled, states, out);
}

#[test]
fn workspace_kernels_are_allocation_free_after_warmup() {
    let robot = robots::iiwa14();
    let model = DynamicsModel::<f64>::new(&robot);
    let sim = AcceleratorSim::<f64>::new(&robot);
    let n = model.dof();
    let q: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 0.3).collect();
    let qd: Vec<f64> = (0..n).map(|i| 0.05 * i as f64).collect();
    let qdd: Vec<f64> = (0..n).map(|i| 0.2 - 0.03 * i as f64).collect();
    let minv = mass_matrix_inverse(&model, &q).expect("SPD mass matrix");

    let mut rnea_ws = RneaWorkspace::<f64>::new();
    let mut grad_ws = GradWorkspace::<f64>::new();
    let mut sim_ws = SimWorkspace::<f64>::new();

    // Warm-up: the first call through each workspace may size buffers.
    rnea_into(&model, &q, &qd, &qdd, &mut rnea_ws);
    dynamics_gradient_into(&model, &q, &qd, &qdd, &minv, &mut grad_ws);
    sim.compute_gradient_into(&q, &qd, &qdd, &minv, &mut sim_ws);

    let before = allocations();
    for _ in 0..32 {
        rnea_into(&model, &q, &qd, &qdd, &mut rnea_ws);
    }
    assert_eq!(allocations(), before, "rnea_into allocated in steady state");

    let before = allocations();
    for _ in 0..32 {
        dynamics_gradient_into(&model, &q, &qd, &qdd, &minv, &mut grad_ws);
    }
    assert_eq!(
        allocations(),
        before,
        "dynamics_gradient_into allocated in steady state"
    );

    // The forward-dynamics members of the kernel family: the
    // articulated-body recursion and the M⁻¹(τ−C) composition both run
    // entirely through their workspaces once warm.
    let tau = rnea(&model, &q, &qd, &qdd).tau;
    let mut aba_ws = AbaWorkspace::<f64>::default();
    aba_into(&model, &q, &qd, &tau, &mut aba_ws);
    let before = allocations();
    for _ in 0..32 {
        aba_into(&model, &q, &qd, &tau, &mut aba_ws);
    }
    assert_eq!(allocations(), before, "aba_into allocated in steady state");

    let mut fd_ws = FdWorkspace::<f64>::default();
    let mut fd_qdd = vec![0.0_f64; n];
    forward_dynamics_into(&model, &q, &qd, &tau, &minv, &mut fd_ws, &mut fd_qdd);
    let before = allocations();
    for _ in 0..32 {
        forward_dynamics_into(&model, &q, &qd, &tau, &minv, &mut fd_ws, &mut fd_qdd);
    }
    assert_eq!(
        allocations(),
        before,
        "forward_dynamics_into allocated in steady state"
    );

    let before = allocations();
    for _ in 0..32 {
        sim.compute_gradient_into(&q, &qd, &qdd, &minv, &mut sim_ws);
    }
    assert_eq!(
        allocations(),
        before,
        "compute_gradient_into allocated in steady state"
    );

    // The compiled netlist evaluator: a warm EvalWorkspace makes
    // eval_into pure register traffic. (compute_gradient_into above
    // already exercises the compiled tapes inside the simulator, on
    // stack-allocated register files.)
    let compiled = CompiledNetlist::<f64>::compile(&optimize(&generate_x_unit(&robot, 1)));
    let mut tape_ws = EvalWorkspace::for_netlist(&compiled);
    let inputs: Vec<f64> = (0..compiled.input_names().len())
        .map(|i| 0.2 * i as f64 - 0.5)
        .collect();
    let mut outputs = vec![0.0_f64; compiled.num_outputs()];
    compiled.eval_into(&inputs, &mut tape_ws, &mut outputs);
    let before = allocations();
    for _ in 0..64 {
        compiled.eval_into(&inputs, &mut tape_ws, &mut outputs);
    }
    assert_eq!(
        allocations(),
        before,
        "CompiledNetlist::eval_into allocated in steady state"
    );

    // The SoA batch tape path: with a warm BatchEvalWorkspace and a
    // caller-provided flat output buffer, eval_batch_into is pure lane
    // traffic — including the ragged scalar tail (7 states, W = 4).
    let batch_states: Vec<Vec<f64>> = (0..7)
        .map(|s| {
            (0..compiled.input_names().len())
                .map(|i| 0.11 * (s * 3 + i) as f64 - 0.4)
                .collect()
        })
        .collect();
    let mut batch_tape_ws = robomorphic::codegen::BatchEvalWorkspace::<
        robomorphic::spatial::Lanes<f64, 4>,
    >::for_netlist(&compiled);
    let mut batch_flat = vec![0.0_f64; batch_states.len() * compiled.num_outputs()];
    compiled.eval_batch_into(&batch_states, &mut batch_tape_ws, &mut batch_flat);
    let before = allocations();
    for _ in 0..64 {
        compiled.eval_batch_into(&batch_states, &mut batch_tape_ws, &mut batch_flat);
    }
    assert_eq!(
        allocations(),
        before,
        "CompiledNetlist::eval_batch_into allocated in steady state"
    );

    // The tier-dispatched batch path: a warm TieredBatchEval (native SIMD
    // lanes on hosts that have them, portable lanes elsewhere) is just as
    // allocation-free as the generic workspace it erases. The state-ref
    // views are borrows built outside the counted region.
    let batch_refs: Vec<&[f64]> = batch_states.iter().map(|s| s.as_slice()).collect();
    let mut tiered_ws = compiled.tiered_workspace(robomorphic::spatial::ExecTier::detect());
    compiled_batch_warm(&compiled, &mut tiered_ws, &batch_refs, &mut batch_flat);
    let before = allocations();
    for _ in 0..64 {
        compiled_batch_warm(&compiled, &mut tiered_ws, &batch_refs, &mut batch_flat);
    }
    assert_eq!(
        allocations(),
        before,
        "tiered eval_batch_into allocated in steady state"
    );

    // The template JIT: emission itself allocates (operand table, code
    // buffer mapping) — but only once, inside enable_jit. Afterwards the
    // stitched native function is pure register traffic, scalar and
    // batched alike (the widened batch tape re-emits its JIT during
    // workspace construction, also outside the counted region).
    let mut jitted = CompiledNetlist::<f64>::compile(&optimize(&generate_x_unit(&robot, 1)));
    assert_eq!(
        jitted.enable_jit(),
        cfg!(all(target_arch = "x86_64", target_os = "linux")),
        "JIT availability must match the platform"
    );
    let mut jit_ws = EvalWorkspace::for_netlist(&jitted);
    jitted.eval_into(&inputs, &mut jit_ws, &mut outputs);
    let mut jit_tiered = jitted.tiered_workspace(robomorphic::spatial::ExecTier::detect());
    compiled_batch_warm(&jitted, &mut jit_tiered, &batch_refs, &mut batch_flat);
    let before = allocations();
    for _ in 0..64 {
        jitted.eval_into(&inputs, &mut jit_ws, &mut outputs);
        compiled_batch_warm(&jitted, &mut jit_tiered, &batch_refs, &mut batch_flat);
    }
    assert_eq!(
        allocations(),
        before,
        "JIT-enabled evaluation allocated in steady state"
    );

    // The engine layer on top: once a RobotPlan is built and a backend
    // warmed, trait-object gradient calls are pure workspace traffic too.
    // (FiniteDiff is exempt by design — the oracle allocates per call.)
    let plan = robomorphic::engine::RobotPlan::new(&robot);
    let mut out = robomorphic::engine::GradientOutput::for_dof(plan.dof());
    for kind in [
        robomorphic::engine::BackendKind::Cpu,
        robomorphic::engine::BackendKind::Accel,
    ] {
        let mut backend = plan.backend(kind);
        backend
            .gradient_into(&q, &qd, &qdd, &minv, &mut out)
            .expect("dimensions match the plan");
        let before = allocations();
        for _ in 0..32 {
            backend
                .gradient_into(&q, &qd, &qdd, &minv, &mut out)
                .expect("dimensions match the plan");
        }
        assert_eq!(
            allocations(),
            before,
            "`{kind}` backend allocated in steady state"
        );

        // The multifunction entry point: every kernel of the family
        // through the same warm backend stays allocation-free too (the
        // KernelOutput buffers size on the warm-up call).
        let mut kout = robomorphic::engine::KernelOutput::new();
        for kernel in [
            robomorphic::engine::KernelKind::InverseDynamics,
            robomorphic::engine::KernelKind::ForwardDynamics,
        ] {
            let third = if kernel == robomorphic::engine::KernelKind::ForwardDynamics {
                &tau
            } else {
                &qdd
            };
            backend
                .run_into(kernel, &q, &qd, third, &minv, &mut kout)
                .expect("dimensions match the plan");
            let before = allocations();
            for _ in 0..32 {
                backend
                    .run_into(kernel, &q, &qd, third, &minv, &mut kout)
                    .expect("dimensions match the plan");
            }
            assert_eq!(
                allocations(),
                before,
                "`{kind}` backend `{kernel}` kernel allocated in steady state"
            );
        }
    }

    // The wide SoA batch overrides: with a warm backend and a warm
    // GradientBatchOutput, whole lane-grouped batches (full W-groups plus
    // the scalar tail) are allocation-free as well. The GradientState
    // views are built outside the counted region — they are borrows the
    // caller constructs once per batch. (The trait's serial default, used
    // by FiniteDiff, allocates a scratch per call and is exempt.)
    let batch_cases: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..7)
        .map(|k| {
            let q: Vec<f64> = (0..n).map(|i| 0.09 * (i + k) as f64 - 0.25).collect();
            let qd: Vec<f64> = (0..n).map(|i| 0.03 * i as f64 - 0.01 * k as f64).collect();
            let qdd: Vec<f64> = (0..n).map(|i| 0.15 - 0.02 * (i + k) as f64).collect();
            (q, qd, qdd)
        })
        .collect();
    let states: Vec<robomorphic::engine::GradientState<'_, f64>> = batch_cases
        .iter()
        .map(|(q, qd, qdd)| robomorphic::engine::GradientState {
            q,
            qd,
            qdd,
            minv: &minv,
        })
        .collect();
    let mut batch_out = robomorphic::engine::GradientBatchOutput::new();
    for kind in [
        robomorphic::engine::BackendKind::Cpu,
        robomorphic::engine::BackendKind::Accel,
    ] {
        let mut backend = plan.backend(kind);
        backend
            .gradient_batch_into(&states, &mut batch_out)
            .expect("dimensions match the plan");
        let before = allocations();
        for _ in 0..16 {
            backend
                .gradient_batch_into(&states, &mut batch_out)
                .expect("dimensions match the plan");
        }
        assert_eq!(
            allocations(),
            before,
            "`{kind}` wide batch path allocated in steady state"
        );
    }

    // The serving tier end-to-end: once a morphology is registered (plan
    // build + shard/worker spawn) and one round trip has warmed the
    // worker's batch buffers, the whole steady-state serving path —
    // enqueue → coalesce → flush → respond → wait — is allocation-free,
    // *including* the response handoff: the filled request buffer moves
    // back through the reusable ResponseSlot by value, no boxing. The
    // allowed allocation points are all cold: registration, slot
    // creation, and first-flush output sizing. (The worker thread shares
    // this global counter, so a hidden per-flush allocation on its side
    // would trip the assert just as well.)
    for kind in [
        robomorphic::engine::BackendKind::Cpu,
        robomorphic::engine::BackendKind::Accel,
    ] {
        let server =
            robomorphic::serve::GradientServer::with_config(robomorphic::serve::ServeConfig {
                workers: 1,
                backend: kind,
                max_linger: std::time::Duration::from_micros(20),
                ..Default::default()
            });
        let key = server.register(&robot);
        let slot = robomorphic::serve::ResponseSlot::new();
        let mut req = robomorphic::serve::GradientRequest::for_dof(n);
        req.q.copy_from_slice(&q);
        req.qd.copy_from_slice(&qd);
        req.qdd.copy_from_slice(&qdd);
        req.minv = minv.clone();
        for _ in 0..4 {
            req = server.serve(key, req, &slot).expect("warm-up round trip");
        }
        let before = allocations();
        for _ in 0..16 {
            req = server
                .serve(key, req, &slot)
                .expect("steady-state round trip");
        }
        assert_eq!(
            allocations(),
            before,
            "`{kind}` serving round trip allocated in steady state"
        );
        // Shutdown (drain + join) happens outside the counted region and
        // may allocate freely.
        drop(server);
    }

    // Disabled tracing is allocation-free. Every counted loop above
    // already ran through span-instrumented code — this binary builds
    // with the workspace default `trace` feature, so the guards are
    // compiled in but no collector is installed — and stayed at zero.
    // Also prove the guards themselves are free standalone: a disabled
    // span is one relaxed atomic load, no TLS touch, no heap traffic.
    assert!(
        !robomorphic::trace::is_collecting(),
        "no collector may be installed during the allocation audit"
    );
    let before = allocations();
    for i in 0..256 {
        let _span = robomorphic::trace::span("alloc.probe");
        let _wide = robomorphic::trace::span_items("alloc.probe.items", i);
    }
    assert_eq!(
        allocations(),
        before,
        "disabled span guards allocated in steady state"
    );

    // Sanity: the counter itself is live (building a workspace allocates).
    let before = allocations();
    let fresh = GradWorkspace::<f64>::for_model(&model);
    assert!(allocations() > before, "allocation counter is not counting");
    drop(fresh);
}
