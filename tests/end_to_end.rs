//! End-to-end integration: robot model → customized accelerator →
//! simulated fixed-point execution → software reference → finite
//! differences, across every built-in robot. This is the cross-crate path
//! a downstream user exercises.

use robomorphic::baselines::{random_inputs, CpuBaseline};
use robomorphic::core::{FpgaPlatform, GradientTemplate};
use robomorphic::dynamics::{findiff, DynamicsModel};
use robomorphic::fixed::Fix32_16;
use robomorphic::model::{robots, RobotModel};
use robomorphic::sim::{AcceleratorSim, CoprocessorSystem};
use robomorphic::spatial::Scalar;

fn check_robot(robot: &RobotModel, rel_tol_fixed: f64) {
    let input = &random_inputs(robot, 1, 2024)[0];

    // Software reference (the CPU baseline's exact kernel).
    let mut cpu = CpuBaseline::new(robot);
    let reference = cpu.compute(input);

    // Finite differences as ground truth for the reference itself.
    let model = DynamicsModel::<f64>::new(robot);
    let cache = robomorphic::dynamics::rnea(&model, &input.q, &input.qd, &input.qdd).cache;
    let analytic = robomorphic::dynamics::rnea_derivatives(&model, &input.qd, &cache);
    let numeric = findiff::rnea_gradient_fd(&model, &input.q, &input.qd, &input.qdd, 1e-6);
    assert!(
        analytic.dtau_dq.max_abs_diff(&numeric.dtau_dq) < 1e-3,
        "{}: analytic ∂τ/∂q disagrees with finite differences",
        robot.name()
    );

    // Simulated accelerator in f64: structurally identical result.
    let sim = AcceleratorSim::<f64>::new(robot);
    let out = sim.compute_gradient(&input.q, &input.qd, &input.qdd, &input.minv);
    assert!(
        out.dqdd_dq.max_abs_diff(&reference.dqdd_dq) < 1e-9,
        "{}: f64 accelerator deviates from software",
        robot.name()
    );

    // Simulated accelerator in the hardware's Q16.16.
    let simf = AcceleratorSim::<Fix32_16>::new(robot);
    let cast = |v: &[f64]| -> Vec<Fix32_16> { v.iter().map(|x| Fix32_16::from_f64(*x)).collect() };
    let outf = simf.compute_gradient(
        &cast(&input.q),
        &cast(&input.qd),
        &cast(&input.qdd),
        &input.minv.cast(),
    );
    let scale = reference.dqdd_dq.max_abs().max(1.0);
    let rel = outf.dqdd_dq.cast::<f64>().max_abs_diff(&reference.dqdd_dq) / scale;
    assert!(
        rel < rel_tol_fixed,
        "{}: fixed-point accelerator error {rel:.2e} over tolerance",
        robot.name()
    );
}

#[test]
fn iiwa_end_to_end() {
    check_robot(&robots::iiwa14(), 5e-3);
}

#[test]
fn quadruped_end_to_end() {
    check_robot(&robots::hyq(), 5e-3);
}

#[test]
fn humanoid_end_to_end() {
    check_robot(&robots::atlas(), 2e-2);
}

#[test]
fn prismatic_chain_end_to_end() {
    check_robot(
        &robots::serial_chain(5, robomorphic::model::JointType::PrismaticY),
        5e-3,
    );
}

#[test]
fn panda_end_to_end() {
    // Lighter wrists → smaller inertia entries → larger relative Q16.16
    // quantization than the iiwa; still well inside the usable band.
    check_robot(&robots::panda(), 2e-2);
}

#[test]
fn ur5_end_to_end() {
    check_robot(&robots::ur5(), 2e-2);
}

#[test]
fn full_pipeline_produces_paper_design_points() {
    // The canonical numbers a reader checks first.
    let robot = robots::iiwa14();
    let accel = GradientTemplate::new().customize(&robot);
    let fpga = FpgaPlatform::xcvu9p();

    assert_eq!(accel.schedule().single_latency_cycles(), 34);
    let latency_us = accel.single_latency_s(fpga.clock_hz) * 1e6;
    assert!((0.55..=0.68).contains(&latency_us));
    assert!(fpga.fits(&accel.resources()));

    let coproc = CoprocessorSystem::fpga_default(accel);
    let rt10 = coproc.round_trip(10).total_s;
    let rt128 = coproc.round_trip(128).total_s;
    assert!(rt10 < rt128);
    // Amortization: per-step cost shrinks with batch size.
    assert!(rt128 / 128.0 < rt10 / 10.0);
}

#[test]
fn template_is_reusable_across_robots() {
    // Step 1 happens once; step 2 is cheap and robot-specific.
    let template = GradientTemplate::new();
    let names: Vec<String> = [robots::iiwa14(), robots::hyq(), robots::atlas()]
        .iter()
        .map(|r| template.customize(r).robot_name().to_owned())
        .collect();
    assert_eq!(names, vec!["iiwa14", "hyq", "atlas"]);
}
