//! Parity suite for the multifunction kernel family: every member
//! (`id` / RNEA, `fd` / forward dynamics, `grad` / ∇ID) of every
//! [`DynamicsBackend`] must agree with the direct `robo_dynamics` kernels
//! on the same morphology and state — and the merged shared-subexpression
//! family tape must be bit-identical to the per-unit banks it was fused
//! from, in every scalar type and through ragged wide lanes.
//!
//! Tolerances, and why they differ:
//!
//! * **cpu vs the direct kernels** — bit-identical. `CpuAnalytic`'s `id`
//!   and `fd` paths are thin wrappers over `rnea_into` / `aba_into`; any
//!   difference is a bug.
//! * **accel `id` vs RNEA (both f64)** — tight tolerance (1e-10 scaled):
//!   the simulated accelerator runs the same recursion through its
//!   functional units, but the X-unit stage executes compiled netlists
//!   whose CSE/constant-folding reorders floating-point sums, so the two
//!   paths round differently in the last ulps.
//! * **accel `fd` vs ABA** — 1e-8 scaled, documented cross-algorithm
//!   rounding: the accelerator composes `q̈ = M⁻¹(τ − C)` (the paper's
//!   Figure 9 interface, with `C = ID(q, q̇, 0)` from the shared inverse
//!   dynamics chain) while the CPU reference runs the
//!   articulated-body algorithm — identical in exact arithmetic, a few
//!   orders above ulp-level in floats.
//! * **finite-difference `fd` vs ABA** — also cross-algorithm (CRBA +
//!   LDLT solve), same 1e-8 budget.
//! * **family tape vs per-unit banks** — bit-identical in `f64`, `f32`,
//!   and `Fix32_16`: fusing the kernels shares *nodes*, never reorders a
//!   surviving expression (same contract netlist_parity.rs pins for the
//!   single-kernel units).

use proptest::prelude::*;
use robomorphic::codegen::{
    generate_dx_unit_with_mask, generate_kernel_netlist, generate_x_unit_with_mask,
    generate_xt_unit_with_mask, optimize, BatchEvalWorkspace, CompiledNetlist,
};
use robomorphic::dynamics::{aba, dynamics_gradient_from_qdd, mass_matrix_inverse, DynamicsModel};
use robomorphic::engine::{BackendKind, KernelKind, KernelOutput, RobotPlan};
use robomorphic::fixed::Fix32_16;
use robomorphic::model::{robots, RobotModel};
use robomorphic::sparsity::superposition_pattern;
use robomorphic::spatial::{Lanes, Scalar};
use std::collections::HashMap;

fn test_robots() -> Vec<RobotModel> {
    vec![
        robots::iiwa14(),
        robots::hyq(),
        robots::atlas(),
        robots::panda(),
        robots::ur5(),
        robots::double_pendulum(),
    ]
}

/// Deterministically expands `vals` into an `n`-length state vector.
fn take(vals: &[f64], offset: usize, n: usize, scale: f64) -> Vec<f64> {
    (0..n)
        .map(|i| scale * vals[(offset + i) % vals.len()])
        .collect()
}

fn max_scaled_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs() / y.abs().max(1.0)))
}

fn check_robot(robot: &RobotModel, vals: &[f64], r: usize) {
    let n = robot.dof();
    let model = DynamicsModel::<f64>::new(robot);
    let q = take(vals, 5 * r, n, 1.0);
    let qd = take(vals, 5 * r + 1, n, 1.5);
    let qdd = take(vals, 5 * r + 2, n, 2.0);
    let minv = mass_matrix_inverse(&model, &q).expect("built-in robots have SPD mass matrices");
    let want_tau = robomorphic::dynamics::rnea(&model, &q, &qd, &qdd).tau;
    let want_qdd = aba(&model, &q, &qd, &want_tau);
    let grad_oracle = dynamics_gradient_from_qdd(&model, &q, &qd, &qdd, &minv);

    let plan = RobotPlan::new(robot);
    let mut out = KernelOutput::new();
    for kind in BackendKind::ALL {
        let mut backend = plan.backend(kind);

        // Inverse dynamics: every backend's `id` is RNEA itself (the cpu
        // and finite-difference backends call it directly; the accel path
        // rounds in the last ulps through its compiled X-units).
        backend
            .run_into(KernelKind::InverseDynamics, &q, &qd, &qdd, &minv, &mut out)
            .expect("dimensions match the plan");
        match kind {
            BackendKind::Cpu | BackendKind::FiniteDiff => {
                assert_eq!(out.tau, want_tau, "{}: `{kind}` id vs rnea", robot.name());
            }
            BackendKind::Accel => {
                let d = max_scaled_diff(&out.tau, &want_tau);
                assert!(d < 1e-10, "{}: accel id vs rnea {d:.2e}", robot.name());
            }
        }

        // Forward dynamics against ABA: bit-identical for cpu (same
        // algorithm), cross-algorithm tolerance for the accelerator's
        // M⁻¹(τ−C) composition and the oracle's CRBA+LDLT solve.
        backend
            .run_into(
                KernelKind::ForwardDynamics,
                &q,
                &qd,
                &want_tau,
                &minv,
                &mut out,
            )
            .expect("dimensions match the plan");
        match kind {
            BackendKind::Cpu => {
                assert_eq!(out.qdd, want_qdd, "{}: cpu fd vs aba", robot.name());
            }
            BackendKind::Accel | BackendKind::FiniteDiff => {
                let d = max_scaled_diff(&out.qdd, &want_qdd);
                assert!(d < 1e-8, "{}: `{kind}` fd vs aba {d:.2e}", robot.name());
            }
        }

        // The gradient member through the same entry point: unchanged
        // semantics (bit-identical for cpu, CSE rounding for accel, the
        // truncation-limited oracle for fd).
        backend
            .run_into(KernelKind::Gradient, &q, &qd, &qdd, &minv, &mut out)
            .expect("dimensions match the plan");
        match kind {
            BackendKind::Cpu => {
                assert_eq!(out.grad.dtau_dq, grad_oracle.id_gradient.dtau_dq);
                assert_eq!(out.grad.dqdd_dq, grad_oracle.dqdd_dq);
            }
            BackendKind::Accel => {
                let d = out.grad.dqdd_dq.max_abs_diff(&grad_oracle.dqdd_dq)
                    / grad_oracle.dqdd_dq.max_abs().max(1.0);
                assert!(d < 1e-12, "{}: accel grad {d:.2e}", robot.name());
            }
            BackendKind::FiniteDiff => {
                let d = out.grad.dqdd_dq.max_abs_diff(&grad_oracle.dqdd_dq)
                    / grad_oracle.dqdd_dq.max_abs().max(1.0);
                assert!(d < 5e-3, "{}: fd grad {d:.2e}", robot.name());
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
    #[test]
    fn kernels_agree_with_direct_dynamics_on_every_builtin_robot(
        vals in proptest::collection::vec(-1.0..1.0f64, 64)
    ) {
        for (r, robot) in test_robots().into_iter().enumerate() {
            check_robot(&robot, &vals, r);
        }
    }
}

/// Deterministic inputs for every slot of the merged family netlist,
/// keyed by the fused input names (`j{j}_sin_q`, `j{j}_v{i}`, `tau{k}`,
/// `minv_{i}_{k}`, …).
fn family_input<S: Scalar>(name: &str, vals: &[f64]) -> S {
    // Hash the name into a deterministic index so every slot gets a
    // distinct, reproducible value in (-1, 1).
    let h = name
        .bytes()
        .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(b as u64));
    S::from_f64(vals[(h % vals.len() as u64) as usize])
}

/// The per-kernel unit banks the family was fused from, evaluated
/// stand-alone: (namespaced output name → value).
fn dedicated_outputs<S: Scalar>(
    robot: &RobotModel,
    kernels: &[KernelKind],
    vals: &[f64],
) -> HashMap<String, S> {
    let mask = superposition_pattern(robot);
    let mut want: HashMap<String, S> = HashMap::new();
    for &kernel in kernels {
        let tag = kernel.as_str();
        for j in 0..robot.dof() {
            let mut stages = vec![
                (generate_x_unit_with_mask(robot, j, mask), "x", 'v'),
                (generate_xt_unit_with_mask(robot, j, mask), "xt", 'f'),
            ];
            if kernel == KernelKind::Gradient {
                stages.push((generate_dx_unit_with_mask(robot, j, mask), "dx", 'v'));
            }
            for (unit, stage, vec_tag) in stages {
                let inputs: HashMap<String, S> = unit
                    .nodes()
                    .iter()
                    .filter_map(|node| match node {
                        robomorphic::codegen::Node::Input(name) => Some(name),
                        _ => None,
                    })
                    .map(|name| {
                        let fused = match name.as_str() {
                            "sin_q" | "cos_q" => format!("j{j}_{name}"),
                            other => format!("j{j}_{vec_tag}{}", &other[1..]),
                        };
                        (name.clone(), family_input::<S>(&fused, vals))
                    })
                    .collect();
                for (name, value) in unit.eval(&inputs).expect("unit evaluates") {
                    want.insert(format!("{tag}_j{j}_{stage}_o{}", &name[1..]), value);
                }
            }
        }
        if kernel == KernelKind::ForwardDynamics {
            // The MAC stage reference: q̈_i = Σ_k M⁻¹[i,k]·(τ_k − c_k).
            let n = robot.dof();
            for i in 0..n {
                let mut acc = S::zero();
                for k in 0..n {
                    let tau = family_input::<S>(&format!("tau{k}"), vals);
                    let c = family_input::<S>(&format!("c{k}"), vals);
                    let m = family_input::<S>(&format!("minv_{i}_{k}"), vals);
                    acc += m * (tau - c);
                }
                want.insert(format!("{tag}_qdd{i}"), acc);
            }
        }
    }
    want
}

/// Asserts the merged family tape reproduces the dedicated banks bit for
/// bit in scalar type `S`, raw and optimized.
fn assert_family_parity<S: Scalar>(robot: &RobotModel, vals: &[f64]) {
    let mask = superposition_pattern(robot);
    let merged = generate_kernel_netlist(robot, mask, &KernelKind::ALL).expect("distinct kernels");
    let want = dedicated_outputs::<S>(robot, &KernelKind::ALL, vals);
    for netlist in [&merged, &optimize(&merged)] {
        let tape = CompiledNetlist::<S>::compile(netlist);
        let state: Vec<S> = tape
            .input_names()
            .iter()
            .map(|name| family_input::<S>(name, vals))
            .collect();
        let got = tape.eval(&state);
        assert_eq!(got.len(), want.len(), "{}: output count", robot.name());
        for ((name, _), value) in netlist.outputs().iter().zip(&got) {
            assert_eq!(
                *value,
                want[name],
                "{}: family output {name} diverged from its dedicated bank",
                robot.name()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]
    #[test]
    fn family_tape_matches_dedicated_banks_in_every_scalar(
        vals in proptest::collection::vec(-1.0..1.0f64, 32),
        robot_idx in 0usize..3,
    ) {
        let robot = &[robots::iiwa14(), robots::hyq(), robots::atlas()][robot_idx];
        assert_family_parity::<f64>(robot, &vals);
        assert_family_parity::<f32>(robot, &vals);
        assert_family_parity::<Fix32_16>(robot, &vals);
    }
}

#[test]
fn family_tape_ragged_batch_matches_serial_eval() {
    // Seven states through 4-wide lanes: one full group plus a ragged
    // tail — the wide path and the scalar fallback must agree bitwise
    // with seven independent serial evaluations.
    let robot = robots::iiwa14();
    let merged = optimize(
        &generate_kernel_netlist(&robot, superposition_pattern(&robot), &KernelKind::ALL)
            .expect("distinct kernels"),
    );
    let tape = CompiledNetlist::<f64>::compile(&merged);
    let n_in = tape.input_names().len();
    let n_out = tape.num_outputs();
    let states: Vec<Vec<f64>> = (0..7)
        .map(|s| {
            (0..n_in)
                .map(|i| ((s * n_in + i) as f64 * 0.37).sin())
                .collect()
        })
        .collect();
    let mut ws = BatchEvalWorkspace::<Lanes<f64, 4>>::for_netlist(&tape);
    let mut flat = vec![0.0; states.len() * n_out];
    tape.eval_batch_into(&states, &mut ws, &mut flat);
    for (s, state) in states.iter().enumerate() {
        let serial = tape.eval(state);
        assert_eq!(
            &flat[s * n_out..(s + 1) * n_out],
            serial.as_slice(),
            "state {s} (ragged batch)"
        );
    }
}
