//! Floating-base dynamics through the 6-DoF virtual-chain emulation:
//! physics sanity checks that only hold if the whole stack (model →
//! dynamics → gradients → accelerator) treats the mobile base correctly.

use robomorphic::dynamics::{aba, forward_dynamics, rnea, DynamicsModel};
use robomorphic::model::{robots, with_floating_base};
use robomorphic::spatial::{Mat3, SpatialInertia, Vec3};

fn free_body() -> robomorphic::model::RobotModel {
    // A single 10 kg rigid body on the virtual 6-DoF chain.
    let torso = SpatialInertia::from_com_params(
        10.0,
        Vec3::zero(),
        Mat3::from_rows([0.4, 0.0, 0.0], [0.0, 0.5, 0.0], [0.0, 0.0, 0.3]),
    );
    let dummy = robomorphic::model::RobotBuilder::new("body")
        .link("marker", None, robomorphic::model::JointType::RevoluteZ)
        .uniform_rod_inertia(1e-6, 0.01)
        .build()
        .unwrap();
    // Wrap a negligible marker link so the tree has something below the
    // base; the torso carries essentially all inertia.
    with_floating_base(&dummy, torso)
}

#[test]
fn free_fall_accelerates_at_g() {
    // An unactuated free body under gravity: base-z acceleration −9.81,
    // everything else (from rest, at identity) zero.
    let robot = free_body();
    let model = DynamicsModel::<f64>::new(&robot);
    let n = robot.dof();
    let zero = vec![0.0; n];
    let qdd = forward_dynamics(&model, &zero, &zero, &zero).expect("spd");
    assert!(
        (qdd[2] + robomorphic::dynamics::STANDARD_GRAVITY).abs() < 1e-6,
        "base tz acceleration {} should be -g",
        qdd[2]
    );
    for (i, a) in qdd.iter().enumerate() {
        if i != 2 {
            assert!(a.abs() < 1e-6, "dof {i} should not accelerate, got {a}");
        }
    }
}

#[test]
fn hovering_requires_weight_in_thrust() {
    // Holding the floating body still takes exactly m·g on the base-z
    // virtual joint and nothing elsewhere.
    let robot = free_body();
    let model = DynamicsModel::<f64>::new(&robot);
    let n = robot.dof();
    let zero = vec![0.0; n];
    let tau = rnea(&model, &zero, &zero, &zero).tau;
    let weight = robot.total_mass() * robomorphic::dynamics::STANDARD_GRAVITY;
    assert!(
        (tau[2] - weight).abs() < 1e-6,
        "hover force {} vs weight {weight}",
        tau[2]
    );
}

#[test]
fn floating_quadruped_stack_works_end_to_end() {
    // The full 18-DoF floating HyQ: forward/inverse dynamics agree, the
    // analytical gradient matches finite differences, and the simulated
    // accelerator matches the reference.
    let robot = robots::hyq_floating();
    let model = DynamicsModel::<f64>::new(&robot);
    let n = robot.dof();
    assert_eq!(n, 18);

    let mut seed = 5u64;
    let mut next = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((seed >> 11) as f64 / (1u64 << 53) as f64) * 0.6 - 0.3
    };
    let q: Vec<f64> = (0..n).map(|_| next()).collect();
    let qd: Vec<f64> = (0..n).map(|_| next()).collect();
    let tau: Vec<f64> = (0..n).map(|_| 10.0 * next()).collect();

    // FD ∘ ID round trip and ABA cross-check.
    let qdd = forward_dynamics(&model, &q, &qd, &tau).expect("spd");
    let back = rnea(&model, &q, &qd, &qdd).tau;
    for i in 0..n {
        assert!((back[i] - tau[i]).abs() < 1e-6, "dof {i}");
    }
    let via_aba = aba(&model, &q, &qd, &tau);
    for i in 0..n {
        assert!((via_aba[i] - qdd[i]).abs() < 1e-5, "aba dof {i}");
    }

    // Analytical gradient vs finite differences.
    let cache = rnea(&model, &q, &qd, &qdd).cache;
    let analytic = robomorphic::dynamics::rnea_derivatives(&model, &qd, &cache);
    let numeric = robomorphic::dynamics::findiff::rnea_gradient_fd(&model, &q, &qd, &qdd, 1e-6);
    assert!(
        analytic.dtau_dq.max_abs_diff(&numeric.dtau_dq) < 1e-3,
        "floating-base ∂τ/∂q mismatch"
    );

    // The simulated accelerator handles the floating tree identically.
    let minv = robomorphic::dynamics::mass_matrix_inverse(&model, &q).expect("spd");
    let reference = robomorphic::dynamics::dynamics_gradient_from_qdd(&model, &q, &qd, &qdd, &minv);
    let sim = robomorphic::sim::AcceleratorSim::<f64>::new(&robot);
    let out = sim.compute_gradient(&q, &qd, &qdd, &minv);
    assert!(out.dqdd_dq.max_abs_diff(&reference.dqdd_dq) < 1e-9);
}

#[test]
fn floating_base_changes_the_accelerator_design() {
    // The virtual chain becomes part of the longest limb: latency grows,
    // and prismatic virtual joints widen the superposition pattern.
    let fixed = robomorphic::core::GradientTemplate::new().customize(&robots::hyq());
    let floating = robomorphic::core::GradientTemplate::new().customize(&robots::hyq_floating());
    assert!(floating.schedule().single_latency_cycles() > fixed.schedule().single_latency_cycles());
    assert!(floating.params().dof == fixed.params().dof + 6);
}

#[test]
fn momentum_conservation_without_gravity() {
    // In zero gravity with zero torques, the free body's velocity is
    // constant: q̈ = 0 from any pure-translation initial velocity.
    let robot = free_body();
    let model = DynamicsModel::<f64>::with_gravity(&robot, Vec3::zero());
    let n = robot.dof();
    let q = vec![0.0; n];
    let mut qd = vec![0.0; n];
    qd[0] = 0.7; // drifting along x
    qd[2] = -0.2; // and down
    let tau = vec![0.0; n];
    let qdd = forward_dynamics(&model, &q, &qd, &tau).expect("spd");
    for (i, a) in qdd.iter().enumerate() {
        assert!(a.abs() < 1e-6, "dof {i} accelerates at {a} in free drift");
    }
}
