//! Per-lane bit-identity of the wide (SoA) serving path.
//!
//! The wide scalar `Lanes<S, W>` promises that evaluating `W` states at
//! once is *bit-identical*, lane for lane, to `W` independent scalar runs
//! — not merely close. These properties pin that promise at every level
//! of the stack, for `f64`, `f32`, and `Fix32_16` (the paper's 16.16
//! fixed-point type), with `W ∈ {2, 4, 8}`:
//!
//! * the compiled register tape: `eval_batch_into` (including its ragged
//!   scalar tail) vs per-state `eval_into`;
//! * the dynamics kernels on a widened model: `rnea_into` and
//!   `dynamics_gradient_into` vs scalar runs of the same model;
//! * the engine layer: every backend's `gradient_batch_into` (the wide
//!   overrides on `CpuAnalytic` and the accelerator, and the serial trait
//!   default on `FiniteDiff`) vs a hand-rolled `gradient_into` loop.
//!
//! All comparisons go through `to_f64().to_bits()` so that even a sign-off
//! on `-0.0` vs `0.0` would be caught. Batch sizes are drawn from ranges
//! that are usually *not* multiples of `W`, so the ragged tails are
//! exercised constantly.

use proptest::prelude::*;
use robomorphic::codegen::{
    generate_x_unit_with_mask, optimize, BatchEvalWorkspace, CompiledNetlist, EvalWorkspace,
};
use robomorphic::dynamics::batch::GradientState;
use robomorphic::dynamics::engine::{GradientBatchOutput, GradientOutput};
use robomorphic::dynamics::{
    dynamics_gradient_into, forward_dynamics, mass_matrix_inverse, rnea_into, DynamicsModel,
    GradWorkspace, RneaWorkspace,
};
use robomorphic::engine::{BackendKind, RobotPlan};
use robomorphic::fixed::Fix32_16;
use robomorphic::model::robots;
use robomorphic::sparsity::superposition_pattern;
use robomorphic::spatial::{Lanes, MatN, Scalar};

/// Exact bit pattern of a scalar, through the (lossless for all supported
/// types) `f64` representation.
fn bits<S: Scalar>(x: S) -> u64 {
    x.to_f64().to_bits()
}

/// The §4 example joint's X-unit tape, compiled for scalar type `S`.
fn iiwa_tape<S: Scalar>() -> CompiledNetlist<S> {
    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);
    CompiledNetlist::compile(&optimize(&generate_x_unit_with_mask(&robot, 1, sup)))
}

/// SoA batch evaluation of the compiled tape must reproduce per-state
/// scalar evaluation bit for bit, including the ragged tail.
fn tape_parity<S: Scalar, const W: usize>(vals: &[f64], count: usize) {
    let tape = iiwa_tape::<S>();
    let n_in = tape.input_names().len();
    let n_out = tape.num_outputs();
    let states: Vec<Vec<S>> = (0..count)
        .map(|i| {
            (0..n_in)
                .map(|k| S::from_f64(vals[(i * n_in + k) % vals.len()]))
                .collect()
        })
        .collect();

    let mut ws = EvalWorkspace::for_netlist(&tape);
    let mut want = vec![S::zero(); count * n_out];
    for (i, s) in states.iter().enumerate() {
        tape.eval_into(s, &mut ws, &mut want[i * n_out..(i + 1) * n_out]);
    }

    let mut batch_ws = BatchEvalWorkspace::<Lanes<S, W>>::for_netlist(&tape);
    let mut got = vec![S::zero(); count * n_out];
    tape.eval_batch_into(&states, &mut batch_ws, &mut got);

    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        prop_assert_eq!(
            bits(*g),
            bits(*w),
            "tape output {} differs (state {}, W={})",
            i,
            i / n_out,
            W
        );
    }
}

/// One deterministic dynamics case in scalar type `S`, derived from the
/// proptest-drawn value pool. The joint state goes through `S::from_f64`
/// exactly once, so scalar and wide runs see identical inputs.
#[allow(clippy::type_complexity)]
fn dynamics_cases<S: Scalar>(
    model: &DynamicsModel<S>,
    vals: &[f64],
    count: usize,
) -> Vec<(Vec<S>, Vec<S>, Vec<S>, MatN<S>)> {
    let n = model.dof();
    (0..count)
        .map(|k| {
            let at = |i: usize| vals[(k * 3 * n + i) % vals.len()];
            let q: Vec<S> = (0..n).map(|i| S::from_f64(at(i))).collect();
            let qd: Vec<S> = (0..n).map(|i| S::from_f64(0.5 * at(n + i))).collect();
            let qdd: Vec<S> = (0..n).map(|i| S::from_f64(0.5 * at(2 * n + i))).collect();
            // The gradient kernel treats M⁻¹ as an opaque matrix operand,
            // so parity holds for any value; prefer the real inverse, fall
            // back to identity if fixed-point factorization rejects a
            // randomly drawn configuration.
            let minv = mass_matrix_inverse(model, &q).unwrap_or_else(|_| MatN::identity(n));
            (q, qd, qdd, minv)
        })
        .collect()
}

/// The wide dynamics kernels (`rnea_into`, `dynamics_gradient_into`) on a
/// widened model must match scalar runs lane for lane. Groups are padded
/// with state 0, so duplicated lanes are checked too.
fn kernel_parity<S: Scalar, const W: usize>(vals: &[f64], count: usize) {
    let robot = robots::iiwa14();
    let model = DynamicsModel::<S>::new(&robot);
    let wide = model.widen::<W>();
    let n = model.dof();
    let cases = dynamics_cases(&model, vals, count);

    // Scalar reference runs.
    let mut rnea_ws = RneaWorkspace::<S>::new();
    let mut grad_ws = GradWorkspace::<S>::new();
    let mut tau_ref: Vec<Vec<u64>> = Vec::with_capacity(count);
    let mut grad_ref: Vec<Vec<u64>> = Vec::with_capacity(count);
    for (q, qd, qdd, minv) in &cases {
        rnea_into(&model, q, qd, qdd, &mut rnea_ws);
        tau_ref.push(rnea_ws.tau.iter().map(|&t| bits(t)).collect());
        dynamics_gradient_into(&model, q, qd, qdd, minv, &mut grad_ws);
        let mut flat = Vec::with_capacity(4 * n * n);
        for m in [
            &grad_ws.dqdd_dq,
            &grad_ws.dqdd_dqd,
            &grad_ws.dtau_dq,
            &grad_ws.dtau_dqd,
        ] {
            for r in 0..n {
                for c in 0..n {
                    flat.push(bits(m[(r, c)]));
                }
            }
        }
        grad_ref.push(flat);
    }

    // Wide runs, one group of W states at a time (tail padded with case 0).
    let mut q_w = vec![Lanes::<S, W>::zero(); n];
    let mut qd_w = vec![Lanes::<S, W>::zero(); n];
    let mut qdd_w = vec![Lanes::<S, W>::zero(); n];
    let mut minv_w = MatN::<Lanes<S, W>>::zeros(n, n);
    let mut rnea_w = RneaWorkspace::<Lanes<S, W>>::new();
    let mut grad_w = GradWorkspace::<Lanes<S, W>>::new();
    for group in 0..count.div_ceil(W) {
        let case_of = |l: usize| (group * W + l) % count;
        for l in 0..W {
            let (q, qd, qdd, minv) = &cases[case_of(l)];
            for i in 0..n {
                q_w[i].set_lane(l, q[i]);
                qd_w[i].set_lane(l, qd[i]);
                qdd_w[i].set_lane(l, qdd[i]);
            }
            for r in 0..n {
                for c in 0..n {
                    minv_w[(r, c)].set_lane(l, minv[(r, c)]);
                }
            }
        }
        rnea_into(&wide, &q_w, &qd_w, &qdd_w, &mut rnea_w);
        dynamics_gradient_into(&wide, &q_w, &qd_w, &qdd_w, &minv_w, &mut grad_w);
        for l in 0..W {
            let case = case_of(l);
            for (j, (tau, &want)) in rnea_w.tau.iter().zip(&tau_ref[case]).enumerate() {
                prop_assert_eq!(
                    bits(tau.lane(l)),
                    want,
                    "tau[{}] lane {} differs from scalar run (W={})",
                    j,
                    l,
                    W
                );
            }
            let mut at = 0;
            for m in [
                &grad_w.dqdd_dq,
                &grad_w.dqdd_dqd,
                &grad_w.dtau_dq,
                &grad_w.dtau_dqd,
            ] {
                for r in 0..n {
                    for c in 0..n {
                        prop_assert_eq!(
                            bits(m[(r, c)].lane(l)),
                            grad_ref[case][at],
                            "gradient entry ({}, {}) lane {} differs (W={})",
                            r,
                            c,
                            l,
                            W
                        );
                        at += 1;
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Compiled tape, all three scalar types, W ∈ {2, 4, 8}, ragged tails.
    #[test]
    fn tape_batch_is_bit_identical_per_lane(
        vals in prop::collection::vec(-0.95..0.95f64, 48..96),
        count in 1usize..13,
    ) {
        tape_parity::<f64, 2>(&vals, count);
        tape_parity::<f64, 4>(&vals, count);
        tape_parity::<f64, 8>(&vals, count);
        tape_parity::<f32, 4>(&vals, count);
        tape_parity::<Fix32_16, 4>(&vals, count);
    }

    /// Wide RNEA + gradient kernels on widened models, all scalar types.
    #[test]
    fn dynamics_kernels_are_bit_identical_per_lane(
        vals in prop::collection::vec(-0.8..0.8f64, 42..84),
        count in 1usize..7,
    ) {
        kernel_parity::<f64, 2>(&vals, count);
        kernel_parity::<f64, 4>(&vals, count);
        kernel_parity::<f64, 8>(&vals, count);
        kernel_parity::<f32, 4>(&vals, count);
        kernel_parity::<Fix32_16, 4>(&vals, count);
    }

    /// Every engine backend's SoA batch path reproduces a hand-rolled
    /// serial `gradient_into` loop exactly — the wide overrides on the CPU
    /// and accelerator backends, and the serial default on `FiniteDiff`.
    #[test]
    fn backend_batches_match_serial_bitwise(
        seed in 0.0..1.0f64,
        count in 1usize..11,
    ) {
        let robot = robots::iiwa14();
        let plan = RobotPlan::new(&robot);
        let model = DynamicsModel::<f64>::new(&robot);
        let n = model.dof();
        let cases: Vec<_> = (0..count)
            .map(|k| {
                let q: Vec<f64> =
                    (0..n).map(|i| 0.6 * seed + 0.07 * (i + k) as f64 - 0.3).collect();
                let qd: Vec<f64> = (0..n).map(|i| 0.04 * i as f64 - 0.1 * seed).collect();
                let tau = vec![0.4; n];
                let qdd = forward_dynamics(&model, &q, &qd, &tau).expect("valid case");
                let minv = mass_matrix_inverse(&model, &q).expect("SPD mass matrix");
                (q, qd, qdd, minv)
            })
            .collect();
        let states: Vec<GradientState<'_, f64>> = cases
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();

        for kind in [BackendKind::Cpu, BackendKind::Accel, BackendKind::FiniteDiff] {
            let mut backend = plan.backend(kind);
            let mut want = GradientBatchOutput::new();
            want.reset(count, n);
            let mut scratch = GradientOutput::for_dof(n);
            for (i, s) in states.iter().enumerate() {
                backend
                    .gradient_into(s.q, s.qd, s.qdd, s.minv, &mut scratch)
                    .expect("dimensions match the plan");
                want.store(i, &scratch);
            }

            let mut got = GradientBatchOutput::new();
            backend
                .gradient_batch_into(&states, &mut got)
                .expect("dimensions match the plan");
            prop_assert_eq!(&got, &want, "`{}` batch path diverged from serial", kind);
        }
    }
}
