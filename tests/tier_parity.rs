//! Bit-identity of the tiered execution paths.
//!
//! Two promises pin the whole tiered serving stack to the scalar
//! semantics:
//!
//! * **Native lanes ≡ portable lanes ≡ scalar.** A batch evaluated
//!   through [`CompiledNetlist::tiered_workspace`] at *any* requested
//!   [`ExecTier`] (clamped to what the host supports, so every tier is
//!   testable everywhere) must reproduce per-state scalar `eval_into`
//!   bit for bit — including the ragged scalar tail. Exercised for `f64`
//!   and `f32`, on both the §4 X-unit tape and the merged full-pipeline
//!   tape (whose AVX2 path takes the transposed gather/scatter fast
//!   lane).
//!
//! * **Threaded ≡ interpreter.** The direct-threaded superinstruction
//!   executor (`eval_into_regs`, with its opcode-affinity scheduled
//!   block order) must match the `match`-dispatch oracle
//!   (`eval_into_regs_interp`, fusion order) bit for bit, for `f64`,
//!   `f32`, and the paper's `Fix32_16` fixed-point type. Scheduling
//!   preserves every register hazard, so any reordering bug shows up
//!   here immediately.
//!
//! * **JIT ≡ interpreter.** The copy-and-patch template JIT
//!   ([`CompiledNetlist::enable_jit`]) stitches the scheduled blocks
//!   into one contiguous native function; it must match the same
//!   `match`-dispatch oracle bit for bit — for `f64`, `f32`, and
//!   `Fix32_16`, on the X-unit, full-pipeline, and fused multifunction
//!   family tapes, through both the scalar path and the tiered batch
//!   path (whose widened tape re-emits the JIT, ragged tail included).
//!
//! All comparisons go through `to_f64().to_bits()` so even a `-0.0` vs
//! `0.0` discrepancy is caught.

use proptest::prelude::*;
use robomorphic::codegen::{
    generate_kernel_family, generate_x_pipeline, generate_x_unit_with_mask, optimize,
    CompiledNetlist, EvalWorkspace,
};
use robomorphic::engine::KernelKind;
use robomorphic::fixed::Fix32_16;
use robomorphic::model::robots;
use robomorphic::sparsity::superposition_pattern;
use robomorphic::spatial::{ExecTier, Scalar};

/// Exact bit pattern of a scalar, through the (lossless for all supported
/// types) `f64` representation.
fn bits<S: Scalar>(x: S) -> u64 {
    x.to_f64().to_bits()
}

/// The §4 example joint's X-unit tape, compiled for scalar type `S`.
fn xunit_tape<S: Scalar>() -> CompiledNetlist<S> {
    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);
    CompiledNetlist::compile(&optimize(&generate_x_unit_with_mask(&robot, 1, sup)))
}

/// The merged all-joints pipeline tape — long enough that the batch path
/// runs many superinstruction blocks and full gather/scatter groups.
fn pipeline_tape<S: Scalar>() -> CompiledNetlist<S> {
    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);
    CompiledNetlist::compile(&optimize(&generate_x_pipeline(&robot, sup)))
}

/// Batch evaluation through every requested tier must match per-state
/// scalar evaluation bit for bit, ragged tail included.
fn tier_parity<S: Scalar>(tape: &CompiledNetlist<S>, vals: &[f64], count: usize) {
    let n_in = tape.input_names().len();
    let n_out = tape.num_outputs();
    let states: Vec<Vec<S>> = (0..count)
        .map(|i| {
            (0..n_in)
                .map(|k| S::from_f64(vals[(i * n_in + k) % vals.len()]))
                .collect()
        })
        .collect();
    let refs: Vec<&[S]> = states.iter().map(|s| s.as_slice()).collect();

    let mut ws = EvalWorkspace::for_netlist(tape);
    let mut want = vec![S::zero(); count * n_out];
    for (i, s) in states.iter().enumerate() {
        tape.eval_into(s, &mut ws, &mut want[i * n_out..(i + 1) * n_out]);
    }

    for tier in ExecTier::ALL {
        let clamped = tier.clamp_to_host();
        let mut tiered = tape.tiered_workspace(clamped);
        let mut got = vec![S::zero(); count * n_out];
        tiered.eval_batch_into(tape, &refs, &mut got);
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                bits(*g),
                bits(*w),
                "tier {tier} (runs as {clamped}, lane {}): output {} of state {} diverged",
                tiered.lane_name(),
                i % n_out,
                i / n_out,
            );
        }
    }
}

/// The merged RNEA / FD / ∇ID multifunction family tape — the serving
/// path's largest tape, and the one `RobotPlan` JIT-enables.
fn family_tape<S: Scalar>() -> CompiledNetlist<S> {
    let robot = robots::iiwa14();
    let sup = superposition_pattern(&robot);
    let (netlist, _report, _sharing) = generate_kernel_family(&robot, sup, &KernelKind::ALL)
        .expect("distinct kernels never collide on output names");
    CompiledNetlist::compile(&netlist)
}

/// The stitched JIT function must match the `match` oracle bit for bit,
/// through both the scalar path and the tiered batch path (whose widened
/// tape re-emits the JIT; the ragged tail runs the scalar JIT tape).
fn jit_parity<S: Scalar>(mut tape: CompiledNetlist<S>, vals: &[f64], count: usize) {
    let emitted = tape.enable_jit();
    // The JIT is mandatory where the platform supports it — a silent
    // fallback on x86-64 Linux would turn this whole test into a no-op.
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        assert!(emitted, "JIT emission must succeed on x86-64 Linux");
        assert!(tape.jit_report().is_some());
    }

    let n_in = tape.input_names().len();
    let n_out = tape.num_outputs();

    // Scalar path: `eval_into_regs` now runs the stitched function.
    let inputs: Vec<S> = (0..n_in)
        .map(|k| S::from_f64(vals[k % vals.len()]))
        .collect();
    let mut regs = vec![S::zero(); tape.num_regs()];
    let mut jit = vec![S::zero(); n_out];
    let mut interp = vec![S::zero(); n_out];
    tape.eval_into_regs(&inputs, &mut regs, &mut jit);
    tape.eval_into_regs_interp(&inputs, &mut regs, &mut interp);
    for (o, (j, i)) in jit.iter().zip(&interp).enumerate() {
        assert_eq!(bits(*j), bits(*i), "output {o} diverged from the oracle");
    }

    // Batch path, every tier: the JIT-enabled tape must still reproduce
    // per-state scalar evaluation (itself oracle-checked above) bit for
    // bit — `count` is prime-ish small so lane-width tails are ragged.
    tier_parity(&tape, vals, count);
}

/// The threaded executor must match the `match` oracle bit for bit.
fn threaded_parity<S: Scalar>(tape: &CompiledNetlist<S>, vals: &[f64]) {
    let n_in = tape.input_names().len();
    let inputs: Vec<S> = (0..n_in)
        .map(|k| S::from_f64(vals[k % vals.len()]))
        .collect();
    let mut regs = vec![S::zero(); tape.num_regs()];
    let mut threaded = vec![S::zero(); tape.num_outputs()];
    let mut interp = vec![S::zero(); tape.num_outputs()];
    tape.eval_into_regs(&inputs, &mut regs, &mut threaded);
    tape.eval_into_regs_interp(&inputs, &mut regs, &mut interp);
    for (o, (t, i)) in threaded.iter().zip(&interp).enumerate() {
        assert_eq!(bits(*t), bits(*i), "output {o} diverged from the oracle");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn tiers_match_scalar_f64_xunit(
        vals in prop::collection::vec(-2.0_f64..2.0, 16..48),
        count in 1_usize..13,
    ) {
        tier_parity::<f64>(&xunit_tape(), &vals, count);
    }

    #[test]
    fn tiers_match_scalar_f32_xunit(
        vals in prop::collection::vec(-2.0_f64..2.0, 16..48),
        count in 1_usize..13,
    ) {
        tier_parity::<f32>(&xunit_tape(), &vals, count);
    }

    #[test]
    fn tiers_match_scalar_f64_pipeline(
        vals in prop::collection::vec(-2.0_f64..2.0, 16..80),
        count in 1_usize..11,
    ) {
        tier_parity::<f64>(&pipeline_tape(), &vals, count);
    }

    #[test]
    fn tiers_match_scalar_f32_pipeline(
        vals in prop::collection::vec(-2.0_f64..2.0, 16..80),
        count in 1_usize..11,
    ) {
        tier_parity::<f32>(&pipeline_tape(), &vals, count);
    }

    #[test]
    fn threaded_matches_interp_f64(vals in prop::collection::vec(-3.0_f64..3.0, 8..64)) {
        threaded_parity::<f64>(&xunit_tape(), &vals);
        threaded_parity::<f64>(&pipeline_tape(), &vals);
    }

    #[test]
    fn threaded_matches_interp_f32(vals in prop::collection::vec(-3.0_f64..3.0, 8..64)) {
        threaded_parity::<f32>(&xunit_tape(), &vals);
        threaded_parity::<f32>(&pipeline_tape(), &vals);
    }

    #[test]
    fn threaded_matches_interp_fixed(vals in prop::collection::vec(-2.0_f64..2.0, 8..64)) {
        threaded_parity::<Fix32_16>(&xunit_tape(), &vals);
        threaded_parity::<Fix32_16>(&pipeline_tape(), &vals);
    }

    #[test]
    fn jit_matches_interp_f64(
        vals in prop::collection::vec(-2.0_f64..2.0, 16..80),
        count in 1_usize..11,
    ) {
        jit_parity::<f64>(xunit_tape(), &vals, count);
        jit_parity::<f64>(pipeline_tape(), &vals, count);
        jit_parity::<f64>(family_tape(), &vals, count);
    }

    #[test]
    fn jit_matches_interp_f32(
        vals in prop::collection::vec(-2.0_f64..2.0, 16..80),
        count in 1_usize..11,
    ) {
        jit_parity::<f32>(xunit_tape(), &vals, count);
        jit_parity::<f32>(pipeline_tape(), &vals, count);
        jit_parity::<f32>(family_tape(), &vals, count);
    }

    #[test]
    fn jit_matches_interp_fixed(
        vals in prop::collection::vec(-2.0_f64..2.0, 16..80),
        count in 1_usize..11,
    ) {
        jit_parity::<Fix32_16>(xunit_tape(), &vals, count);
        jit_parity::<Fix32_16>(pipeline_tape(), &vals, count);
        jit_parity::<Fix32_16>(family_tape(), &vals, count);
    }
}
