//! Integration tests of the coprocessor deployment path: latency models,
//! batch scaling shapes, and the relations the paper's Figures 10/13/14
//! assert between platforms.

use robomorphic::baselines::GpuModel;
use robomorphic::core::{AsicPlatform, FpgaPlatform, GradientTemplate};
use robomorphic::model::robots;
use robomorphic::sim::{CoprocessorSystem, IoChannel};

fn iiwa_coproc() -> CoprocessorSystem {
    CoprocessorSystem::fpga_default(GradientTemplate::new().customize(&robots::iiwa14()))
}

#[test]
fn figure10_shape_fpga_beats_modeled_gpu_by_orders() {
    // The GPU's single-shot latency is ~two orders above the FPGA's.
    let accel = GradientTemplate::new().customize(&robots::iiwa14());
    let fpga_s = accel.single_latency_s(FpgaPlatform::xcvu9p().clock_hz);
    let gpu_s = GpuModel::rtx2080().single_latency_s(7);
    let ratio = gpu_s / fpga_s;
    assert!((50.0..150.0).contains(&ratio), "GPU/FPGA ratio {ratio:.0}");
}

#[test]
fn figure13_shape_gpu_flat_then_waves() {
    let gpu = GpuModel::rtx2080();
    let t10 = gpu.batch_latency_s(7, 10);
    let t46 = gpu.batch_latency_s(7, 46);
    let t128 = gpu.batch_latency_s(7, 128);
    assert!((t46 - t10) / t10 < 0.1, "flat below the SM count");
    assert!(t128 > 1.2 * t10, "waves beyond the SM count");
}

#[test]
fn figure13_shape_fpga_throughput_bound() {
    let sys = iiwa_coproc();
    // Per-step cost converges to the initiation interval or I/O bound.
    let per_step_128 = sys.round_trip(128).total_s / 128.0;
    let ii_s =
        sys.accelerator().schedule().initiation_interval() as f64 / FpgaPlatform::xcvu9p().clock_hz;
    let io_s = sys
        .channel()
        .transfer_time_s(sys.input_bytes_per_step().max(sys.output_bytes_per_step()));
    let bound = ii_s.max(io_s);
    assert!(per_step_128 >= bound * 0.99);
    assert!(per_step_128 <= bound * 1.6, "overheads should amortize");
}

#[test]
fn figure14_asic_scales_by_clock_ratio() {
    let accel = GradientTemplate::new().customize(&robots::iiwa14());
    let f = accel.single_latency_s(FpgaPlatform::xcvu9p().clock_hz);
    let slow = accel.single_latency_s(AsicPlatform::slow().clock_hz());
    let typ = accel.single_latency_s(AsicPlatform::typical().clock_hz());
    assert!((f / slow - 4.5).abs() < 0.05);
    assert!((f / typ - 7.2).abs() < 0.05);
}

#[test]
fn table2_band_checks() {
    let rows =
        robomorphic::core::table2_rows(&GradientTemplate::new().customize(&robots::iiwa14()));
    assert_eq!(rows.len(), 3);
    let slow = &rows[1];
    let typ = &rows[2];
    // Paper: 1.627 / 1.885 mm²; 0.921 / 1.095 W — our model within ±25%.
    let a_s = slow.area_mm2.expect("asic has area");
    let a_t = typ.area_mm2.expect("asic has area");
    assert!((a_s / 1.627 - 1.0).abs() < 0.25, "slow area {a_s:.3}");
    assert!((a_t / 1.885 - 1.0).abs() < 0.25, "typical area {a_t:.3}");
    assert!((slow.power_w / 0.921 - 1.0).abs() < 0.25);
    assert!((typ.power_w / 1.095 - 1.0).abs() < 0.25);
    // §6.4: ASIC power nearly an order below the FPGA's.
    assert!(rows[0].power_w / typ.power_w > 5.0);
}

#[test]
fn faster_links_only_help_until_compute_bound() {
    let accel = GradientTemplate::new().customize(&robots::iiwa14());
    let clock = FpgaPlatform::xcvu9p().clock_hz;
    let gen1 = CoprocessorSystem::new(accel.clone(), clock, IoChannel::pcie_gen1());
    let gen3 = CoprocessorSystem::new(accel.clone(), clock, IoChannel::pcie_gen3());
    let infinite = CoprocessorSystem::new(
        accel,
        clock,
        IoChannel {
            name: "infinite".into(),
            bandwidth_bytes_per_s: 1e15,
            per_call_overhead_s: 0.0,
        },
    );
    let t1 = gen1.round_trip(128).total_s;
    let t3 = gen3.round_trip(128).total_s;
    let ti = infinite.round_trip(128).total_s;
    assert!(t3 < t1);
    assert!(ti <= t3);
    // With infinite I/O the round trip is pure pipeline time.
    let ii = accel_ii_seconds();
    assert!(ti >= 127.0 * ii, "compute-bound floor");
}

fn accel_ii_seconds() -> f64 {
    let accel = GradientTemplate::new().customize(&robots::iiwa14());
    accel.schedule().initiation_interval() as f64 / FpgaPlatform::xcvu9p().clock_hz
}

#[test]
fn quadruped_coprocessor_is_faster_per_batch() {
    // Shorter limbs → lower II → better throughput, despite more joints
    // (more I/O per step).
    let clock = FpgaPlatform::xcvu9p().clock_hz;
    let iiwa = CoprocessorSystem::new(
        GradientTemplate::new().customize(&robots::iiwa14()),
        clock,
        IoChannel::pcie_gen1(),
    );
    let hyq = CoprocessorSystem::new(
        GradientTemplate::new().customize(&robots::hyq()),
        clock,
        IoChannel::pcie_gen1(),
    );
    assert!(
        hyq.accelerator().schedule().initiation_interval()
            < iiwa.accelerator().schedule().initiation_interval()
    );
    // But the 12-DoF payload is bigger, so I/O may dominate — both effects
    // must be visible in the model.
    assert!(hyq.input_bytes_per_step() > iiwa.input_bytes_per_step());
}
