//! Bit-identity of every workspace (`_into`) API against its allocating
//! counterpart.
//!
//! The workspace kernels are advertised as *exactly* the allocating
//! functions minus the allocations: same loop orders, same operation
//! sequences, so results must match bit for bit — in every scalar type the
//! accelerator study uses, across every built-in robot, and under repeated
//! reuse of the same workspace (stale state from a previous call, even one
//! for a different robot, must never leak into a result).

use proptest::prelude::*;
use robomorphic::dynamics::{
    dynamics_gradient_from_qdd, dynamics_gradient_into, mass_matrix_inverse, rnea,
    rnea_derivatives, rnea_gradient_into, rnea_into, DynamicsModel, GradWorkspace, RneaWorkspace,
};
use robomorphic::fixed::Fix32_16;
use robomorphic::model::{robots, RobotModel};
use robomorphic::sim::{AcceleratorSim, SimWorkspace};
use robomorphic::spatial::{MatN, Scalar};

fn test_robots() -> Vec<RobotModel> {
    vec![
        robots::iiwa14(),
        robots::hyq(),
        robots::atlas(),
        robots::panda(),
        robots::ur5(),
        robots::double_pendulum(),
    ]
}

/// Deterministically expands `vals` into an `n`-length state vector.
fn take(vals: &[f64], offset: usize, n: usize, scale: f64) -> Vec<f64> {
    (0..n)
        .map(|i| scale * vals[(offset + i) % vals.len()])
        .collect()
}

fn cast_vec<S: Scalar>(v: &[f64]) -> Vec<S> {
    v.iter().map(|x| S::from_f64(*x)).collect()
}

/// Runs every `_into` kernel against its allocating twin for one scalar
/// type, reusing the same workspaces across all robots and repetitions.
fn check_dynamics_parity<S: Scalar>(vals: &[f64]) {
    let mut rnea_ws = RneaWorkspace::<S>::new();
    let mut grad_ws = GradWorkspace::<S>::new();
    let mut sim_ws = SimWorkspace::<S>::new();
    for (r, robot) in test_robots().into_iter().enumerate() {
        let n = robot.dof();
        let model = DynamicsModel::<S>::new(&robot);
        let model64 = DynamicsModel::<f64>::new(&robot);
        let sim = AcceleratorSim::<S>::new(&robot);
        // M⁻¹ is a host-provided input; its f64 value (cast to S) is as
        // good as any for bit-identity purposes.
        let q64 = take(vals, 5 * r, n, 1.0);
        let minv = mass_matrix_inverse(&model64, &q64)
            .expect("built-in robots have SPD mass matrices")
            .cast::<S>();
        let q = cast_vec::<S>(&q64);
        let qd = cast_vec::<S>(&take(vals, 5 * r + 1, n, 1.5));
        let qdd = cast_vec::<S>(&take(vals, 5 * r + 2, n, 2.0));

        // Two passes through the same workspaces: the second runs on
        // buffers still warm (and possibly sized) from the previous call.
        for _ in 0..2 {
            let fresh = rnea(&model, &q, &qd, &qdd);
            rnea_into(&model, &q, &qd, &qdd, &mut rnea_ws);
            assert_eq!(rnea_ws.tau, fresh.tau, "{}: rnea_into tau", robot.name());

            let alloc = rnea_derivatives(&model, &qd, &fresh.cache);
            rnea_gradient_into(&model, &qd, &fresh.cache, &mut grad_ws);
            assert_eq!(grad_ws.dtau_dq, alloc.dtau_dq, "{}: ∂τ/∂q", robot.name());
            assert_eq!(grad_ws.dtau_dqd, alloc.dtau_dqd, "{}: ∂τ/∂q̇", robot.name());

            let alloc = dynamics_gradient_from_qdd(&model, &q, &qd, &qdd, &minv);
            dynamics_gradient_into(&model, &q, &qd, &qdd, &minv, &mut grad_ws);
            assert_eq!(grad_ws.dtau_dq, alloc.id_gradient.dtau_dq);
            assert_eq!(grad_ws.dtau_dqd, alloc.id_gradient.dtau_dqd);
            assert_eq!(grad_ws.dqdd_dq, alloc.dqdd_dq, "{}: ∂q̈/∂q", robot.name());
            assert_eq!(grad_ws.dqdd_dqd, alloc.dqdd_dqd, "{}: ∂q̈/∂q̇", robot.name());

            let out = sim.compute_gradient(&q, &qd, &qdd, &minv);
            let cycles = sim.compute_gradient_into(&q, &qd, &qdd, &minv, &mut sim_ws);
            assert_eq!(cycles, out.cycles);
            assert_eq!(sim_ws.dtau_dq, out.dtau_dq, "{}: sim ∂τ/∂q", robot.name());
            assert_eq!(sim_ws.dtau_dqd, out.dtau_dqd);
            assert_eq!(sim_ws.dqdd_dq, out.dqdd_dq);
            assert_eq!(sim_ws.dqdd_dqd, out.dqdd_dqd);
        }
    }
}

proptest! {
    #[test]
    fn dynamics_into_apis_are_bit_identical_f64(
        vals in proptest::collection::vec(-1.0..1.0f64, 64)
    ) {
        check_dynamics_parity::<f64>(&vals);
    }

    #[test]
    fn dynamics_into_apis_are_bit_identical_f32(
        vals in proptest::collection::vec(-1.0..1.0f64, 64)
    ) {
        check_dynamics_parity::<f32>(&vals);
    }

    #[test]
    fn dynamics_into_apis_are_bit_identical_fix32_16(
        vals in proptest::collection::vec(-1.0..1.0f64, 64)
    ) {
        check_dynamics_parity::<Fix32_16>(&vals);
    }

    #[test]
    fn matn_into_ops_are_bit_identical(
        vals in proptest::collection::vec(-2.0..2.0f64, 64),
        n in 1usize..8
    ) {
        let mut a = MatN::<f64>::zeros(n, n);
        let mut b = MatN::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = vals[(i * n + j) % vals.len()];
                b[(i, j)] = vals[(7 + i * n + j) % vals.len()];
            }
        }
        let v: Vec<f64> = (0..n).map(|i| vals[(3 + i) % vals.len()]).collect();

        // mul_vec_into, reused across two differently-sized products.
        let mut out = vec![0.0; n + 3];
        a.mul_vec_into(&v, &mut out);
        prop_assert_eq!(&out, &a.mul_vec(&v));
        b.mul_vec_into(&v, &mut out);
        prop_assert_eq!(&out, &b.mul_vec(&v));

        // neg_mul_mat_into vs negate-then-multiply.
        let mut neg_a = a.clone();
        for i in 0..n {
            for j in 0..n {
                neg_a[(i, j)] = -neg_a[(i, j)];
            }
        }
        let mut prod = MatN::<f64>::zeros(0, 0);
        a.neg_mul_mat_into(&b, &mut prod);
        prop_assert_eq!(&prod, &neg_a.mul_mat(&b));

        // In-place LDLᵀ solve vs allocating solve, on an SPD system.
        let mut spd = a.transpose().mul_mat(&a);
        for i in 0..n {
            spd[(i, i)] += (n + 1) as f64;
        }
        let factor = spd.ldlt().expect("SPD by construction");
        let solved = factor.solve(&v).expect("matching dimension");
        let mut in_place = v.clone();
        factor.solve_in_place(&mut in_place).expect("matching dimension");
        prop_assert_eq!(in_place, solved);
    }
}
