//! Parity suite for the netlist pipeline: the interpreted netlist, the
//! optimized netlist, and the compiled register tape must be **bit
//! identical** in every scalar type — and the simulator's gradients must
//! not change when its functional units switch between the compiled tape
//! and the coefficient oracle.
//!
//! This is the contract that lets the simulator serve results from the
//! same optimized IR the Verilog backend lowers: every optimizer rewrite
//! (×0/×1 folding, Sub→Add∘Neg canonicalization, CSE, dead-node removal)
//! is exact in IEEE floats and two's-complement fixed point, so pruning
//! the circuit never changes what it computes.

use proptest::prelude::*;
use robomorphic::codegen::{
    generate_x_unit, generate_x_unit_with_mask, generate_xt_unit, generate_xt_unit_with_mask,
    optimize, CompiledNetlist, Netlist,
};
use robomorphic::fixed::Fix32_16;
use robomorphic::model::{robots, RobotModel};
use robomorphic::sim::{AcceleratorSim, XUnitBackend};
use robomorphic::sparsity::superposition_pattern;
use robomorphic::spatial::Scalar;
use std::collections::HashMap;

fn built_in_robots() -> [RobotModel; 3] {
    [robots::iiwa14(), robots::hyq(), robots::atlas()]
}

/// Every generated unit for `robot`: both transform directions, own and
/// superposed masks, all joints.
fn units_for(robot: &RobotModel) -> Vec<Netlist> {
    let sup = superposition_pattern(robot);
    let mut units = Vec::new();
    for joint in 0..robot.dof() {
        units.push(generate_x_unit(robot, joint));
        units.push(generate_xt_unit(robot, joint));
        units.push(generate_x_unit_with_mask(robot, joint, sup));
        units.push(generate_xt_unit_with_mask(robot, joint, sup));
    }
    units
}

/// Asserts raw-interpreted == optimized-interpreted == compiled, bitwise
/// (`==`; the only tolerated difference is the sign of zero, which `==`
/// already treats as equal).
fn assert_parity<S: Scalar>(unit: &Netlist, vals: &[S]) {
    let opt = optimize(unit);
    let compiled = CompiledNetlist::<S>::compile(&opt);
    let inputs: HashMap<String, S> = compiled
        .input_names()
        .iter()
        .cloned()
        .zip(vals.iter().copied())
        .collect();
    let raw_out = unit.eval(&inputs).expect("raw netlist evaluates");
    let opt_out = opt.eval(&inputs).expect("optimized netlist evaluates");
    let compiled_out = compiled.eval(vals);
    assert_eq!(raw_out.len(), compiled_out.len());
    for (((name, raw), (opt_name, optimized)), compiled) in
        raw_out.iter().zip(&opt_out).zip(&compiled_out)
    {
        assert_eq!(name, opt_name, "{}: output order changed", unit.name());
        assert_eq!(
            raw,
            optimized,
            "{}: optimizer changed output {name}",
            unit.name()
        );
        assert_eq!(
            raw,
            compiled,
            "{}: compiled tape changed output {name}",
            unit.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn interpreted_optimized_compiled_bit_identical(
        vals in prop::collection::vec(-2.0..2.0f64, 8),
        robot_idx in 0usize..3,
    ) {
        let robot = &built_in_robots()[robot_idx];
        for unit in units_for(robot) {
            assert_parity::<f64>(&unit, &vals);
            let f32_vals: Vec<f32> = vals.iter().map(|v| *v as f32).collect();
            assert_parity::<f32>(&unit, &f32_vals);
            let fix_vals: Vec<Fix32_16> = vals.iter().map(|v| Fix32_16::from_f64(*v)).collect();
            assert_parity::<Fix32_16>(&unit, &fix_vals);
        }
    }

    #[test]
    fn simulator_gradients_identical_across_backends_f64(
        robot_idx in 0usize..3,
        seed in 0u64..4096,
    ) {
        let robot = &built_in_robots()[robot_idx];
        let input = &robomorphic::baselines::random_inputs(robot, 1, seed)[0];
        let mut sim = AcceleratorSim::<f64>::new(robot);
        let compiled = sim.compute_gradient(&input.q, &input.qd, &input.qdd, &input.minv);
        sim.set_backend(XUnitBackend::Coefficients);
        let oracle = sim.compute_gradient(&input.q, &input.qd, &input.qdd, &input.minv);
        prop_assert_eq!(&compiled.dtau_dq, &oracle.dtau_dq);
        prop_assert_eq!(&compiled.dtau_dqd, &oracle.dtau_dqd);
        prop_assert_eq!(&compiled.dqdd_dq, &oracle.dqdd_dq);
        prop_assert_eq!(&compiled.dqdd_dqd, &oracle.dqdd_dqd);
        prop_assert_eq!(compiled.cycles, oracle.cycles);
    }

    #[test]
    fn simulator_gradients_identical_across_backends_fixed(
        robot_idx in 0usize..3,
        seed in 0u64..4096,
    ) {
        let robot = &built_in_robots()[robot_idx];
        let input = &robomorphic::baselines::random_inputs(robot, 1, seed)[0];
        let to_fix = |v: &[f64]| -> Vec<Fix32_16> {
            v.iter().map(|x| Fix32_16::from_f64(*x)).collect()
        };
        let (q, qd, qdd) = (to_fix(&input.q), to_fix(&input.qd), to_fix(&input.qdd));
        let minv = input.minv.cast::<Fix32_16>();
        let mut sim = AcceleratorSim::<Fix32_16>::new(robot);
        let compiled = sim.compute_gradient(&q, &qd, &qdd, &minv);
        sim.set_backend(XUnitBackend::Coefficients);
        let oracle = sim.compute_gradient(&q, &qd, &qdd, &minv);
        prop_assert_eq!(&compiled.dtau_dq, &oracle.dtau_dq);
        prop_assert_eq!(&compiled.dtau_dqd, &oracle.dtau_dqd);
        prop_assert_eq!(&compiled.dqdd_dq, &oracle.dqdd_dq);
        prop_assert_eq!(&compiled.dqdd_dqd, &oracle.dqdd_dqd);
    }
}
