//! Cross-backend parity of the engine layer: every `GradientBackend` of a
//! [`RobotPlan`] must agree on the same morphology and state, for every
//! built-in robot, through the *trait object* interface the consumers
//! (iLQR, MPC, the CPU baseline, `stream_batch`, the CLI) actually use.
//!
//! Tolerances, and why they differ:
//!
//! * **cpu vs the raw kernel** — bit-identical. `CpuAnalytic` is a thin
//!   wrapper over `dynamics_gradient_into`; any difference is a bug.
//! * **cpu vs accel (both f64)** — tight *relative* tolerance (1e-12),
//!   not bit-identity. The accelerator simulation evaluates the ∂X/∂q
//!   stage through compiled netlists whose CSE/constant-folding reorders
//!   floating-point sums relative to the software kernel, so the two
//!   paths round differently in the last few ulps (measured 9e-16..2e-13
//!   across the built-in robots). What *is* bit-identical is the accel
//!   path across its own X-unit execution modes, asserted below.
//! * **fd vs cpu** — finite differences with step 1e-6 is an oracle with
//!   O(step) truncation error; 5e-3 scaled by the gradient's magnitude.

use proptest::prelude::*;
use robomorphic::dynamics::{dynamics_gradient_from_qdd, mass_matrix_inverse, DynamicsModel};
use robomorphic::engine::{
    AcceleratorBackend, BackendKind, GradientBackend, GradientOutput, RobotPlan,
};
use robomorphic::model::{robots, RobotModel};
use robomorphic::sim::{AcceleratorSim, XUnitBackend};
use robomorphic::spatial::MatN;

fn test_robots() -> Vec<RobotModel> {
    vec![
        robots::iiwa14(),
        robots::hyq(),
        robots::atlas(),
        robots::panda(),
        robots::ur5(),
        robots::double_pendulum(),
    ]
}

/// Deterministically expands `vals` into an `n`-length state vector.
fn take(vals: &[f64], offset: usize, n: usize, scale: f64) -> Vec<f64> {
    (0..n)
        .map(|i| scale * vals[(offset + i) % vals.len()])
        .collect()
}

fn rel_diff(a: &MatN<f64>, b: &MatN<f64>) -> f64 {
    a.max_abs_diff(b) / a.max_abs().max(1.0)
}

fn check_robot(robot: &RobotModel, vals: &[f64], r: usize) {
    let n = robot.dof();
    let model = DynamicsModel::<f64>::new(robot);
    let q = take(vals, 5 * r, n, 1.0);
    let qd = take(vals, 5 * r + 1, n, 1.5);
    let qdd = take(vals, 5 * r + 2, n, 2.0);
    let minv = mass_matrix_inverse(&model, &q).expect("built-in robots have SPD mass matrices");

    let plan = RobotPlan::new(robot);
    let mut outs = Vec::new();
    for kind in BackendKind::ALL {
        let mut backend = plan.backend(kind);
        assert_eq!(backend.dof(), n, "{}: `{kind}` dof", robot.name());
        let mut out = GradientOutput::for_dof(n);
        backend
            .gradient_into(&q, &qd, &qdd, &minv, &mut out)
            .expect("dimensions match the plan");
        outs.push(out);
    }
    let [cpu, accel, fd] = <[GradientOutput; 3]>::try_from(outs).expect("three backends");

    // The cpu backend is the raw analytical kernel, bit for bit.
    let oracle = dynamics_gradient_from_qdd(&model, &q, &qd, &qdd, &minv);
    assert_eq!(cpu.dqdd_dq, oracle.dqdd_dq, "{}: cpu ∂q̈/∂q", robot.name());
    assert_eq!(cpu.dqdd_dqd, oracle.dqdd_dqd);
    assert_eq!(cpu.dtau_dq, oracle.id_gradient.dtau_dq);
    assert_eq!(cpu.dtau_dqd, oracle.id_gradient.dtau_dqd);

    // cpu vs accel: last-ulps disagreement only (see module docs).
    for (name, a, b) in [
        ("∂q̈/∂q", &cpu.dqdd_dq, &accel.dqdd_dq),
        ("∂q̈/∂q̇", &cpu.dqdd_dqd, &accel.dqdd_dqd),
        ("∂τ/∂q", &cpu.dtau_dq, &accel.dtau_dq),
        ("∂τ/∂q̇", &cpu.dtau_dqd, &accel.dtau_dqd),
    ] {
        let d = rel_diff(a, b);
        assert!(
            d < 1e-12,
            "{}: cpu vs accel {name} relative diff {d:.2e}",
            robot.name()
        );
    }

    // fd vs cpu: truncation-limited oracle agreement.
    for (name, a, b) in [
        ("∂q̈/∂q", &cpu.dqdd_dq, &fd.dqdd_dq),
        ("∂q̈/∂q̇", &cpu.dqdd_dqd, &fd.dqdd_dqd),
        ("∂τ/∂q", &cpu.dtau_dq, &fd.dtau_dq),
        ("∂τ/∂q̇", &cpu.dtau_dqd, &fd.dtau_dqd),
    ] {
        let d = rel_diff(a, b);
        assert!(
            d < 5e-3,
            "{}: cpu vs fd {name} relative diff {d:.2e}",
            robot.name()
        );
    }

    // The accel path IS bit-identical across its own X-unit execution
    // modes: compiled netlists vs the factored-coefficient evaluator.
    let mut coeff_sim = AcceleratorSim::<f64>::new(robot);
    coeff_sim.set_backend(XUnitBackend::Coefficients);
    let mut coeff = AcceleratorBackend::from_sim(coeff_sim);
    let mut out = GradientOutput::for_dof(n);
    coeff
        .gradient_into(&q, &qd, &qdd, &minv, &mut out)
        .expect("dimensions match the robot");
    assert_eq!(out.dqdd_dq, accel.dqdd_dq, "{}: X-unit modes", robot.name());
    assert_eq!(out.dqdd_dqd, accel.dqdd_dqd);
    assert_eq!(out.dtau_dq, accel.dtau_dq);
    assert_eq!(out.dtau_dqd, accel.dtau_dqd);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
    #[test]
    fn backends_agree_on_every_builtin_robot(
        vals in proptest::collection::vec(-1.0..1.0f64, 64)
    ) {
        for (r, robot) in test_robots().into_iter().enumerate() {
            check_robot(&robot, &vals, r);
        }
    }
}

#[test]
fn every_backend_rejects_mismatched_dimensions() {
    let robot = robots::iiwa14();
    let plan = RobotPlan::new(&robot);
    let n = plan.dof();
    let good = vec![0.1; n];
    let minv = MatN::<f64>::identity(n);
    let mut out = GradientOutput::for_dof(n);
    for kind in BackendKind::ALL {
        let mut backend = plan.backend(kind);
        let err = backend
            .gradient_into(&good[..n - 1], &good, &good, &minv, &mut out)
            .expect_err("short q must be rejected");
        let msg = err.to_string();
        assert!(msg.contains("q"), "`{kind}`: {msg}");
        assert!(msg.contains(&n.to_string()), "`{kind}`: {msg}");
        let bad_minv = MatN::<f64>::identity(n + 1);
        assert!(backend
            .gradient_into(&good, &good, &good, &bad_minv, &mut out)
            .is_err());
    }
}

#[test]
fn batch_entry_point_matches_serial_calls() {
    // The trait's batch path (what stream_batch and iLQR's backward pass
    // build on) must equal one-at-a-time calls for every backend.
    use robomorphic::dynamics::batch::GradientState;
    let robot = robots::hyq();
    let plan = RobotPlan::new(&robot);
    let n = plan.dof();
    let model = DynamicsModel::<f64>::new(&robot);

    let mut s = 42u64;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) as f64 / (1u64 << 31) as f64 - 1.0
    };
    type OwnedState = (Vec<f64>, Vec<f64>, Vec<f64>, MatN<f64>);
    let states: Vec<OwnedState> = (0..12)
        .map(|_| {
            let q: Vec<f64> = (0..n).map(|_| next()).collect();
            let qd: Vec<f64> = (0..n).map(|_| 1.5 * next()).collect();
            let qdd: Vec<f64> = (0..n).map(|_| 2.0 * next()).collect();
            let minv = mass_matrix_inverse(&model, &q).expect("SPD");
            (q, qd, qdd, minv)
        })
        .collect();
    let views: Vec<GradientState<'_, f64>> = states
        .iter()
        .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
        .collect();

    for kind in BackendKind::ALL {
        let mut backend = plan.backend(kind);
        let batch = backend.gradient_batch(&views).expect("dimensions match");
        assert_eq!(batch.len(), states.len());
        let mut out = GradientOutput::for_dof(n);
        for ((q, qd, qdd, minv), b) in states.iter().zip(&batch) {
            backend
                .gradient_into(q, qd, qdd, minv, &mut out)
                .expect("dimensions match");
            assert_eq!(out.dqdd_dq, b.dqdd_dq, "`{kind}` batch vs serial");
            assert_eq!(out.dqdd_dqd, b.dqdd_dqd);
        }
    }
}
