//! Trace-layer integration tests: the committed example trace stays a
//! valid Chrome-trace file with full pipeline coverage, and a live
//! recording of the plan→compile→eval→gradient path reproduces that
//! coverage end to end.

use robomorphic::trace::Trace;

/// Span kinds across plan-build → eval → backward that any full pipeline
/// trace must contain (the PR's acceptance floor is ≥ 7 distinct kinds;
/// these nine cover every stage family).
const REQUIRED_KINDS: [&str; 9] = [
    "plan.build",
    "netlist.optimize",
    "tape.compile",
    "tape.eval",
    "lane.marshal",
    "grad.wide",
    "grad.cpu.batch",
    "batch.fanout",
    "ilqr.backward",
];

/// The committed `ci/trace_example.json` (regenerate with
/// `cargo run --release -p robo-bench --features trace --bin
/// trace_pipeline -- --out ci/trace_example.json`) parses as valid
/// Chrome-trace JSON and keeps full span coverage.
#[test]
fn example_trace_is_valid_chrome_trace_with_full_coverage() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("ci/trace_example.json");
    let json = std::fs::read_to_string(&path).expect("ci/trace_example.json is committed");
    let trace = Trace::parse_chrome(&json).expect("example trace parses");

    let kinds = trace.span_kinds();
    assert!(
        kinds.len() >= 7,
        "example trace has only {} span kinds: {kinds:?}",
        kinds.len()
    );
    for required in REQUIRED_KINDS {
        assert!(
            kinds.iter().any(|k| k == required),
            "example trace is missing span kind `{required}` (has {kinds:?})"
        );
    }

    // Structural validity beyond parsing: every event has a registered
    // thread, non-negative times, and a dotted category prefix.
    assert!(!trace.threads.is_empty(), "no thread metadata");
    for e in &trace.events {
        assert!(
            trace.threads.iter().any(|(tid, _)| *tid == e.tid),
            "event `{}` on unregistered thread {}",
            e.name,
            e.tid
        );
        assert!(e.ts_us >= 0.0 && e.dur_us >= 0.0);
        assert!(
            e.name.contains('.'),
            "span `{}` has no category prefix",
            e.name
        );
    }
    // Host provenance rides along as trace metadata.
    for key in ["cpu_model", "rustc", "tier", "f64_lane_width"] {
        assert!(
            trace.meta.iter().any(|(k, _)| k == key),
            "example trace is missing `{key}` metadata"
        );
    }
}

/// Records the pipeline live and round-trips it through Chrome JSON.
/// Needs the `trace` feature (on by default); the single live test in
/// this binary, since the collector is process-global.
#[cfg(feature = "trace")]
#[test]
fn live_pipeline_trace_covers_the_span_taxonomy() {
    use robomorphic::codegen::{generate_x_pipeline, optimize, CompiledNetlist};
    use robomorphic::engine::{BackendKind, GradientState, RobotPlan};
    use robomorphic::model::robots;
    use robomorphic::sparsity::superposition_pattern;
    use robomorphic::spatial::ExecTier;

    assert!(robomorphic::trace::install(), "collector installs once");

    let robot = robots::iiwa14();
    let plan = RobotPlan::with_tier(&robot, ExecTier::detect());
    let sup = superposition_pattern(&robot);
    let tape = CompiledNetlist::<f64>::compile(&optimize(&generate_x_pipeline(&robot, sup)));

    let states: Vec<Vec<f64>> = (0..8)
        .map(|s| {
            (0..tape.input_names().len())
                .map(|i| 0.13 * (s * 5 + i) as f64 % 1.7 - 0.85)
                .collect()
        })
        .collect();
    let state_refs: Vec<&[f64]> = states.iter().map(|s| s.as_slice()).collect();
    let mut ws = tape.tiered_workspace(ExecTier::detect());
    let mut out = vec![0.0_f64; states.len() * tape.num_outputs()];
    ws.eval_batch_into(&tape, &state_refs, &mut out);

    let n = plan.dof();
    let q: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 0.3).collect();
    let qd = vec![0.0; n];
    let qdd = vec![0.1; n];
    let minv = robomorphic::dynamics::mass_matrix_inverse(plan.model(), &q).expect("SPD");
    let cases: Vec<GradientState<'_, f64>> = (0..6)
        .map(|_| GradientState {
            q: &q,
            qd: &qd,
            qdd: &qdd,
            minv: &minv,
        })
        .collect();
    let mut batch_out = robomorphic::engine::GradientBatchOutput::new();
    plan.backend(BackendKind::Cpu)
        .gradient_batch_into(&cases, &mut batch_out)
        .expect("dimensions match");

    let trace = robomorphic::trace::take().expect("collector was installed");
    assert!(robomorphic::trace::take().is_none(), "take() uninstalls");

    let kinds = trace.span_kinds();
    assert!(
        kinds.len() >= 7,
        "live trace has only {} span kinds: {kinds:?}",
        kinds.len()
    );
    for required in [
        "plan.build",
        "netlist.optimize",
        "tape.compile",
        "tape.eval",
        "lane.marshal",
        "grad.wide",
        "grad.cpu.batch",
    ] {
        assert!(
            kinds.iter().any(|k| k == required),
            "live trace is missing `{required}` (has {kinds:?})"
        );
    }

    // Round trip: what we emit is what a Chrome-trace consumer reads.
    let parsed = Trace::parse_chrome(&trace.to_chrome_json()).expect("own output parses");
    assert_eq!(parsed.span_kinds(), kinds);
    assert_eq!(parsed.events.len(), trace.events.len());
}
