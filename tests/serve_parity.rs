//! Parity of the serving tier: a gradient served through the
//! micro-batcher — coalesced into wide lane-groups, possibly flushed
//! ragged by the linger deadline — must be **bit-identical** to a direct
//! `GradientBackend::gradient_into` call on the same backend and tier.
//!
//! The serving path adds queuing, SoA lane marshalling, and a block copy
//! back into the caller's buffer, but no arithmetic of its own, so exact
//! equality (not a tolerance) is the contract. Pipelined submissions from
//! many slots force multi-request flushes; tiny linger deadlines force
//! partial-lane (ragged) ones; both shapes are asserted per backend and
//! per host-supported execution tier.

use proptest::prelude::*;
use robomorphic::dynamics::{forward_dynamics, mass_matrix_inverse};
use robomorphic::engine::{BackendKind, RobotPlan};
use robomorphic::model::robots;
use robomorphic::serve::{GradientRequest, GradientServer, ResponseSlot, ServeConfig};
use robomorphic::spatial::ExecTier;
use std::time::Duration;

/// Deterministically fills a request from proptest draws (via a
/// forward-dynamics solve, so `qdd` is consistent with a real workload).
fn fill_request(plan: &RobotPlan, vals: &[f64], k: usize, req: &mut GradientRequest) {
    let n = plan.dof();
    for i in 0..n {
        req.q[i] = vals[(3 * k + i) % vals.len()];
        req.qd[i] = 1.5 * vals[(3 * k + i + 7) % vals.len()];
    }
    let tau: Vec<f64> = (0..n)
        .map(|i| 2.0 * vals[(3 * k + i + 13) % vals.len()])
        .collect();
    let qdd = forward_dynamics(plan.model(), &req.q, &req.qd, &tau)
        .expect("built-in robots have SPD mass matrices");
    req.qdd.copy_from_slice(&qdd);
    req.minv = mass_matrix_inverse(plan.model(), &req.q).expect("SPD");
}

/// Serves `count` pipelined requests and asserts each response is
/// bit-identical to the direct (unbatched) backend call.
fn check_parity(
    backend: BackendKind,
    tier: ExecTier,
    vals: &[f64],
    count: usize,
    linger: Duration,
) {
    let server = GradientServer::with_config(ServeConfig {
        workers: 1,
        backend,
        tier: Some(tier),
        max_linger: linger,
        queue_capacity: count.max(4),
        ..ServeConfig::default()
    });
    let key = server.register(&robots::iiwa14());
    let plan = server.plan(key).expect("registered");

    // All slots submitted before any wait: the worker sees a deep queue
    // and coalesces multi-request (full and ragged) flushes.
    let slots: Vec<ResponseSlot> = (0..count).map(|_| ResponseSlot::new()).collect();
    for (k, slot) in slots.iter().enumerate() {
        let mut req = GradientRequest::for_dof(plan.dof());
        fill_request(&plan, vals, k, &mut req);
        server.submit(key, req, slot).expect("admitted");
    }

    let mut direct = plan.backend(backend);
    for (k, slot) in slots.iter().enumerate() {
        let served = slot.wait();
        let mut want = GradientRequest::for_dof(plan.dof());
        fill_request(&plan, vals, k, &mut want);
        direct
            .gradient_into(&want.q, &want.qd, &want.qdd, &want.minv, &mut want.out)
            .expect("dimensions match");
        assert_eq!(
            served.out, want.out,
            "served response {k}/{count} must be bit-identical to the direct \
             {backend:?} gradient at tier {tier}"
        );
    }
}

fn host_tiers() -> Vec<ExecTier> {
    let mut tiers = vec![ExecTier::Portable];
    let native = ExecTier::detect();
    if native != ExecTier::Portable {
        tiers.push(native);
    }
    tiers
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    /// Batched (full lane groups + ragged tail under a realistic linger)
    /// parity per backend and host tier.
    #[test]
    fn served_gradients_are_bit_identical_to_direct_calls(
        vals in proptest::collection::vec(-1.0..1.0f64, 64),
        extra in 1usize..4,
    ) {
        for tier in host_tiers() {
            for backend in [BackendKind::Cpu, BackendKind::Accel] {
                // One full lane group plus a ragged tail of `extra`.
                let plan = RobotPlan::with_tier(&robots::iiwa14(), tier);
                let count = plan.serve_width() + extra;
                check_parity(backend, tier, &vals, count, Duration::from_micros(100));
            }
        }
    }

    /// Lone requests under an aggressive linger deadline: every flush is
    /// ragged (a partial lane), still bit-identical.
    #[test]
    fn ragged_linger_flushes_stay_exact(
        vals in proptest::collection::vec(-1.0..1.0f64, 64),
    ) {
        for backend in [BackendKind::Cpu, BackendKind::Accel] {
            check_parity(backend, ExecTier::detect(), &vals, 3, Duration::from_micros(1));
        }
    }
}
