//! Property-based tests of the fixed-point substrate and the text formats
//! (fuzz-style failure injection: arbitrary inputs must never panic).

use proptest::prelude::*;
use robomorphic::codegen::Netlist;
use robomorphic::fixed::{Fix14_6, Fix32_16};
use robomorphic::model::parse_robo;
use robomorphic::spatial::Scalar;

fn fix(v: f64) -> Fix32_16 {
    Fix32_16::from_f64(v)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn fixed_add_commutes(a in -30000.0..30000.0f64, b in -30000.0..30000.0f64) {
        prop_assert_eq!(fix(a) + fix(b), fix(b) + fix(a));
    }

    #[test]
    fn fixed_mul_commutes(a in -170.0..170.0f64, b in -170.0..170.0f64) {
        prop_assert_eq!(fix(a) * fix(b), fix(b) * fix(a));
    }

    #[test]
    fn fixed_round_trip_error_within_half_ulp(v in -32000.0..32000.0f64) {
        let err = (fix(v).to_f64() - v).abs();
        prop_assert!(err <= Fix32_16::resolution() / 2.0 + 1e-12);
    }

    #[test]
    fn fixed_add_error_bounded(a in -15000.0..15000.0f64, b in -15000.0..15000.0f64) {
        // Addition of representable values is exact inside the range.
        let exact = fix(a).to_f64() + fix(b).to_f64();
        prop_assert_eq!((fix(a) + fix(b)).to_f64(), exact);
    }

    #[test]
    fn fixed_mul_error_bounded(a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let exact = fix(a).to_f64() * fix(b).to_f64();
        let got = (fix(a) * fix(b)).to_f64();
        prop_assert!((got - exact).abs() <= Fix32_16::resolution() / 2.0 + 1e-12);
    }

    #[test]
    fn fixed_saturation_is_monotone(v in proptest::num::f64::NORMAL) {
        // from_f64 never panics and clamps monotonically for any finite
        // input.
        let a = Fix32_16::from_f64(v);
        let b = Fix32_16::from_f64(v / 2.0);
        if v >= 0.0 {
            prop_assert!(b <= a);
        } else {
            prop_assert!(b >= a);
        }
    }

    #[test]
    fn fixed_ordering_matches_f64(a in -30000.0..30000.0f64, b in -30000.0..30000.0f64) {
        let (fa, fb) = (fix(a), fix(b));
        if fa < fb {
            prop_assert!(fa.to_f64() <= fb.to_f64());
        }
    }

    #[test]
    fn wide_dot_matches_exact_within_one_ulp(
        pairs in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..8),
    ) {
        let fixed_pairs: Vec<(Fix14_6, Fix14_6)> = pairs
            .iter()
            .map(|(a, b)| (Fix14_6::from_f64(*a), Fix14_6::from_f64(*b)))
            .collect();
        let exact: f64 = fixed_pairs
            .iter()
            .map(|(a, b)| a.to_f64() * b.to_f64())
            .sum();
        if exact.abs() < 4000.0 {
            let wide = Fix14_6::dot_accumulate(&fixed_pairs).to_f64();
            prop_assert!(
                (wide - exact).abs() <= Fix14_6::resolution(),
                "wide {} vs exact {}", wide, exact
            );
        }
    }

    #[test]
    fn robo_parser_never_panics(text in ".{0,400}") {
        let _ = parse_robo(&text);
    }

    #[test]
    fn robo_parser_never_panics_on_linklike_input(
        fields in prop::collection::vec("[a-z=0-9,.:x ]{0,30}", 0..8),
    ) {
        let line = format!("robot f\nlink {}\n", fields.join(" "));
        let _ = parse_robo(&line);
    }

    #[test]
    fn netlist_parser_never_panics(text in ".{0,400}") {
        let _ = Netlist::parse(&text);
    }

    #[test]
    fn netlist_parser_never_panics_on_oplike_input(
        ops in prop::collection::vec("(0|1|2|3) (add|mul|neg|input|const|mulc|sub) [0-9 a-z.]{0,10}", 0..6),
    ) {
        let text = format!("netlist f\n{}\n", ops.join("\n"));
        let _ = Netlist::parse(&text);
    }
}

#[test]
fn precision_ladder_is_ordered() {
    // Error decreases with fractional bits on the simulated kernel.
    use robomorphic::baselines::random_inputs;
    use robomorphic::fixed::{Fix12_4, Fix14_18};
    use robomorphic::model::robots;
    use robomorphic::sim::AcceleratorSim;

    let robot = robots::iiwa14();
    let input = &random_inputs(&robot, 1, 9)[0];
    let reference = AcceleratorSim::<f64>::new(&robot).compute_gradient(
        &input.q,
        &input.qd,
        &input.qdd,
        &input.minv,
    );
    let scale = reference.dqdd_dq.max_abs().max(1.0);

    fn err<S: Scalar>(
        robot: &robomorphic::model::RobotModel,
        input: &robomorphic::baselines::GradientInput,
        reference: &robomorphic::sim::SimOutput<f64>,
        scale: f64,
    ) -> f64 {
        let cast = |v: &[f64]| -> Vec<S> { v.iter().map(|x| S::from_f64(*x)).collect() };
        let out = AcceleratorSim::<S>::new(robot).compute_gradient(
            &cast(&input.q),
            &cast(&input.qd),
            &cast(&input.qdd),
            &input.minv.cast::<S>(),
        );
        out.dqdd_dq.cast::<f64>().max_abs_diff(&reference.dqdd_dq) / scale
    }

    let e18 = err::<Fix14_18>(&robot, input, &reference, scale);
    let e16 = err::<Fix32_16>(&robot, input, &reference, scale);
    let e4 = err::<Fix12_4>(&robot, input, &reference, scale);
    assert!(
        e18 < e16,
        "18 frac bits should beat 16: {e18:.2e} vs {e16:.2e}"
    );
    assert!(
        e16 < e4,
        "16 frac bits should beat 4: {e16:.2e} vs {e4:.2e}"
    );
}
