//! Implementation of the `robomorphic` command-line tool.
//!
//! Kept as a library module so the commands are unit-testable; the binary
//! in `src/bin/robomorphic.rs` is a thin argument dispatcher. See each
//! command function for its report format.

use robo_codegen::{generate_top, generate_x_unit, lint, optimize, to_verilog, RtlFormat};
use robo_collision::CollisionTemplate;
use robo_model::{parse_robo, parse_urdf, RobotModel};
use robo_sparsity::{joint_reduction, superposition_pattern};
use robomorphic_core::{FpgaPlatform, GradientTemplate, KinematicsTemplate};
use std::fmt::Write as _;

/// Error from a CLI command.
#[derive(Debug)]
pub enum CliError {
    /// The robot description could not be read or parsed.
    Load(String),
    /// Output files could not be written.
    Io(std::io::Error),
    /// The command line itself was malformed.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Load(m) => write!(f, "cannot load robot: {m}"),
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Usage(m) => write!(f, "usage error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Loads a robot description: built-in name (`iiwa14`, `hyq`, `atlas`),
/// `.robo` file, or `.urdf`/`.xml` file.
///
/// # Errors
///
/// Returns [`CliError::Load`] when the source cannot be read or parsed.
pub fn load_robot(source: &str) -> Result<RobotModel, CliError> {
    match source {
        "iiwa14" => return Ok(robo_model::robots::iiwa14()),
        "hyq" => return Ok(robo_model::robots::hyq()),
        "atlas" => return Ok(robo_model::robots::atlas()),
        _ => {}
    }
    let text =
        std::fs::read_to_string(source).map_err(|e| CliError::Load(format!("{source}: {e}")))?;
    if source.ends_with(".urdf") || source.ends_with(".xml") || text.trim_start().starts_with('<') {
        parse_urdf(&text).map_err(|e| CliError::Load(format!("{source}: {e}")))
    } else {
        parse_robo(&text).map_err(|e| CliError::Load(format!("{source}: {e}")))
    }
}

/// `robomorphic info <robot>` — morphology and sparsity summary.
///
/// # Errors
///
/// Propagates robot-loading failures.
pub fn cmd_info(source: &str) -> Result<String, CliError> {
    let robot = load_robot(source)?;
    let mut out = String::new();
    let _ = writeln!(out, "robot `{}`:", robot.name());
    let _ = writeln!(
        out,
        "  {} links, {} limb(s), longest limb {}, total mass {:.2} kg",
        robot.dof(),
        robot.limbs().len(),
        robot.max_limb_len(),
        robot.total_mass()
    );
    for (i, limb) in robot.limbs().iter().enumerate() {
        let names: Vec<&str> = limb
            .links
            .iter()
            .map(|l| robot.links()[*l].name.as_str())
            .collect();
        let _ = writeln!(out, "  limb {i}: {}", names.join(" -> "));
    }
    let _ = writeln!(out, "  joint transform sparsity (nonzeros / 36):");
    for i in 0..robot.dof() {
        let r = joint_reduction(&robot, i);
        let _ = writeln!(
            out,
            "    {:<16} {} ({:>2}/36, -{:.0}% muls)",
            robot.links()[i].name,
            robot.links()[i].joint.as_str(),
            r.nonzeros,
            r.mul_reduction_pct
        );
    }
    let sup = superposition_pattern(&robot);
    let _ = writeln!(out, "  superposition: {}/36 nonzeros\n{}", sup.count(), sup);
    Ok(out)
}

/// `robomorphic customize <robot> [--verilog-dir DIR]` — run the two-step
/// methodology and report (optionally emitting RTL).
///
/// # Errors
///
/// Propagates loading failures and RTL-output I/O errors.
pub fn cmd_customize(source: &str, verilog_dir: Option<&str>) -> Result<String, CliError> {
    let robot = load_robot(source)?;
    let accel = GradientTemplate::new().customize(&robot);
    let fpga = FpgaPlatform::xcvu9p();
    let r = accel.resources();

    let mut out = String::new();
    let _ = writeln!(out, "dynamics gradient accelerator for `{}`:", robot.name());
    let _ = writeln!(
        out,
        "  {} limb processor(s), {} datapaths, {} cycles per gradient",
        accel.params().l_limbs,
        accel
            .limb_plans()
            .iter()
            .map(|p| p.dq_datapaths + p.dqd_datapaths + 1)
            .sum::<usize>(),
        accel.schedule().single_latency_cycles()
    );
    let _ = writeln!(
        out,
        "  latency: {:.3} us @ 55.6 MHz (FPGA), {:.3} us @ 400 MHz (12 nm ASIC)",
        accel.single_latency_s(fpga.clock_hz) * 1e6,
        accel.single_latency_s(robomorphic_core::AsicPlatform::typical().clock_hz()) * 1e6
    );
    let _ = writeln!(
        out,
        "  resources: {} var muls / {} const muls / {} adders -> {} DSPs ({:.0}% of XCVU9P budget{})",
        r.var_muls,
        r.const_muls,
        r.adds,
        fpga.dsps_used(&r),
        fpga.dsp_utilization(&r) * 100.0,
        if fpga.fits(&r) { "" } else { "; DOES NOT FIT, target the ASIC" }
    );
    let fk = KinematicsTemplate::new().customize(&robot);
    let col = CollisionTemplate::new().customize(&robot);
    let _ = writeln!(
        out,
        "  companion kernels: FK {} cycles, collision {} pairs / {} cycles",
        fk.latency_cycles(),
        col.pairs,
        col.latency_cycles()
    );

    if let Some(dir) = verilog_dir {
        std::fs::create_dir_all(dir)?;
        let mut files = Vec::new();
        for j in 0..robot.dof() {
            let unit = optimize(&generate_x_unit(&robot, j));
            let v = to_verilog(&unit, RtlFormat::q16_16());
            lint(&v).map_err(CliError::Load)?;
            let path = format!("{dir}/x_unit_joint{j}.v");
            std::fs::write(&path, v)?;
            files.push(path);
        }
        let top = generate_top(&accel, RtlFormat::q16_16());
        let top_path = format!("{dir}/grad_accel_top.v");
        std::fs::write(&top_path, top.verilog)?;
        files.push(top_path);
        let _ = writeln!(out, "  emitted {} RTL files under {dir}/", files.len());
    }
    Ok(out)
}

/// `robomorphic convert <in> <out.robo>` — normalize any supported
/// description to the `.robo` format.
///
/// # Errors
///
/// Propagates loading and write failures.
pub fn cmd_convert(source: &str, dest: &str) -> Result<String, CliError> {
    let robot = load_robot(source)?;
    std::fs::write(dest, robo_model::to_robo(&robot))?;
    Ok(format!(
        "wrote `{}` ({} links) to {dest}\n",
        robot.name(),
        robot.dof()
    ))
}

/// `robomorphic check <robot>` — model validation plus a zero-config
/// self-collision sanity check, with the gradient spot-check on the
/// default (CPU) engine backend at the host's fastest execution tier.
///
/// # Errors
///
/// Propagates loading failures.
pub fn cmd_check(source: &str) -> Result<String, CliError> {
    cmd_check_with(
        source,
        robo_sim::BackendKind::Cpu,
        robo_spatial::ExecTier::detect(),
    )
}

/// `robomorphic check <robot> --backend {cpu,accel,fd} --tier T` — like
/// [`cmd_check`], but running the gradient spot-check through the chosen
/// [`GradientBackend`](robo_dynamics::engine::GradientBackend) of a
/// once-built [`robo_sim::RobotPlan`] at the chosen execution tier
/// (clamped to what the host supports; all tiers are bit-identical).
///
/// # Errors
///
/// Propagates loading failures.
pub fn cmd_check_with(
    source: &str,
    kind: robo_sim::BackendKind,
    tier: robo_spatial::ExecTier,
) -> Result<String, CliError> {
    cmd_check_traced(source, kind, tier, None)
}

/// `robomorphic check <robot> --kernel {id,fd,grad}` — like
/// [`cmd_check_with`], spot-checking the chosen member of the
/// multifunction kernel family: `grad` runs the gradient against the
/// finite-difference oracle, `id`/`fd` run the backend's kernel against
/// the CPU analytical reference (RNEA / ABA).
///
/// # Errors
///
/// Propagates loading failures.
pub fn cmd_check_kernel(
    source: &str,
    kind: robo_sim::BackendKind,
    tier: robo_spatial::ExecTier,
    kernel: robo_dynamics::engine::KernelKind,
) -> Result<String, CliError> {
    check_body(source, kind, tier, kernel)
}

/// `robomorphic check <robot> ... --trace <out.json>` — like
/// [`cmd_check_with`], additionally recording a `robo-trace` span trace
/// of the whole run (plan build through gradient spot-check) and writing
/// it as Chrome-trace JSON, viewable in Perfetto or `about:tracing`.
///
/// # Errors
///
/// Propagates loading failures; returns [`CliError::Usage`] when tracing
/// was requested but the binary was built without the `trace` feature,
/// and [`CliError::Io`] when the trace file cannot be written.
pub fn cmd_check_traced(
    source: &str,
    kind: robo_sim::BackendKind,
    tier: robo_spatial::ExecTier,
    trace_out: Option<&str>,
) -> Result<String, CliError> {
    cmd_check_traced_kernel(
        source,
        kind,
        tier,
        trace_out,
        robo_dynamics::engine::KernelKind::Gradient,
    )
}

/// The full `check` command: backend, tier, optional trace, and the
/// kernel of the family to spot-check (see [`cmd_check_kernel`]).
///
/// # Errors
///
/// As for [`cmd_check_traced`].
pub fn cmd_check_traced_kernel(
    source: &str,
    kind: robo_sim::BackendKind,
    tier: robo_spatial::ExecTier,
    trace_out: Option<&str>,
    kernel: robo_dynamics::engine::KernelKind,
) -> Result<String, CliError> {
    if trace_out.is_some() && !robo_trace::install() {
        return Err(CliError::Usage(
            "--trace needs the tracing collector, but this binary was built without \
             the `trace` cargo feature (it is on by default)"
                .to_owned(),
        ));
    }
    let mut out = check_body(source, kind, tier, kernel);
    if let Some(path) = trace_out {
        let mut trace = robo_trace::take().expect("collector was installed above");
        // Propagate a load failure only after uninstalling the collector.
        let body = out?;
        trace
            .meta
            .extend(robo_trace::HostInfo::detect().trace_meta());
        trace
            .meta
            .push(("workload".to_owned(), format!("check {source}")));
        trace.write_chrome(path)?;
        let mut body = body;
        let _ = writeln!(
            body,
            "  wrote trace ({} spans, {} kinds) to {path}",
            trace.events.len(),
            trace.span_kinds().len()
        );
        out = Ok(body);
    }
    out
}

fn check_body(
    source: &str,
    kind: robo_sim::BackendKind,
    tier: robo_spatial::ExecTier,
    kernel: robo_dynamics::engine::KernelKind,
) -> Result<String, CliError> {
    let robot = load_robot(source)?;
    // Plan once: model, sparsity, customized design, compiled netlists —
    // all at the requested (host-clamped) execution tier.
    let plan = robo_sim::RobotPlan::with_tier(&robot, tier);
    let model: &robo_dynamics::DynamicsModel<f64> = plan.model();
    let n = robot.dof();
    let zero = vec![0.0; n];
    let mut out = String::new();
    let _ = writeln!(out, "checking `{}`:", robot.name());
    let _ = writeln!(
        out,
        "  execution tier: {} ({} f64 state(s) per wide instruction)",
        plan.tier(),
        plan.serve_width()
    );
    // The JIT line is load-bearing: CI greps for "jit: active" to fail
    // the build when a `--tier jit` run silently fell back.
    if tier == robo_spatial::ExecTier::Jit {
        match plan.jit_report() {
            Some(report) => {
                let _ = writeln!(
                    out,
                    "  jit: active ({} blocks, {} code bytes, {} patches)",
                    report.blocks, report.code_bytes, report.patches
                );
            }
            None => {
                let reason = if plan.tier() == robo_spatial::ExecTier::Jit {
                    "code buffer unavailable".to_owned()
                } else {
                    format!("tier clamped to {}", plan.tier())
                };
                let _ = writeln!(out, "  jit: fell back to the threaded tape ({reason})");
            }
        }
    }

    let mass_ok = robo_dynamics::mass_matrix(model, &zero).ldlt().is_ok();
    let _ = writeln!(
        out,
        "  mass matrix positive definite at q = 0: {}",
        if mass_ok { "ok" } else { "FAIL" }
    );
    let tau = robo_dynamics::bias_torques(model, &zero, &zero);
    let finite = tau.iter().all(|t| t.is_finite());
    let _ = writeln!(
        out,
        "  gravity torques finite: {} (max {:.2} Nm)",
        if finite { "ok" } else { "FAIL" },
        tau.iter().fold(0.0_f64, |a, b| a.max(b.abs()))
    );
    let cm = robo_collision::CollisionModel::from_robot(&robot, 0.05);
    let clearance = robo_collision::min_clearance(model, &cm, &zero);
    let _ = writeln!(
        out,
        "  self-clearance at q = 0: {:.3} m across {} pruned pairs{}",
        clearance,
        cm.pairs().len(),
        if clearance > 0.0 {
            ""
        } else {
            " (WARNING: zero pose self-collides)"
        }
    );
    // Kernel spot-check through the selected engine backend: the gradient
    // against the finite-difference oracle, `id`/`fd` against the CPU
    // analytical reference kernels (RNEA / ABA).
    use robo_dynamics::engine::{KernelKind, KernelOutput};
    let input = &robo_baselines::random_inputs(&robot, 1, 0xC11)[0];
    match kernel {
        KernelKind::Gradient => {
            let g = plan
                .backend(kind)
                .gradient(&input.q, &input.qd, &input.qdd, &input.minv)
                .expect("generated input matches the robot");
            let fd = robo_dynamics::findiff::rnea_gradient_fd(
                model, &input.q, &input.qd, &input.qdd, 1e-6,
            );
            let err = g.id_gradient.dtau_dq.max_abs_diff(&fd.dtau_dq);
            let _ = writeln!(
                out,
                "  `{kind}` backend gradient vs finite differences: {:.2e} max abs error {}",
                err,
                if err < 1e-3 { "(ok)" } else { "(FAIL)" }
            );
        }
        KernelKind::InverseDynamics => {
            let mut kout = KernelOutput::new();
            plan.backend(kind)
                .run_into(
                    kernel,
                    &input.q,
                    &input.qd,
                    &input.qdd,
                    &input.minv,
                    &mut kout,
                )
                .expect("generated input matches the robot");
            let want = robo_dynamics::rnea(model, &input.q, &input.qd, &input.qdd).tau;
            let err = kout
                .tau
                .iter()
                .zip(&want)
                .fold(0.0_f64, |a, (g, w)| a.max((g - w).abs()));
            let _ = writeln!(
                out,
                "  `{kind}` backend id kernel vs CPU RNEA reference: {:.2e} max abs error {}",
                err,
                if err < 1e-8 { "(ok)" } else { "(FAIL)" }
            );
        }
        KernelKind::ForwardDynamics => {
            // Feed the torques RNEA produces for the sampled q̈, so the fd
            // kernel must recover that q̈ exactly (up to cross-algorithm
            // rounding: ABA / M⁻¹(τ−C) vs the reference).
            let tau = robo_dynamics::rnea(model, &input.q, &input.qd, &input.qdd).tau;
            let mut kout = KernelOutput::new();
            plan.backend(kind)
                .run_into(kernel, &input.q, &input.qd, &tau, &input.minv, &mut kout)
                .expect("generated input matches the robot");
            let err = kout
                .qdd
                .iter()
                .zip(&input.qdd)
                .fold(0.0_f64, |a, (g, w)| a.max((g - w).abs()));
            let _ = writeln!(
                out,
                "  `{kind}` backend fd kernel round-trips RNEA torques: {:.2e} max abs error {}",
                err,
                if err < 1e-6 { "(ok)" } else { "(FAIL)" }
            );
        }
    }
    Ok(out)
}

/// `robomorphic serve <robot> [--backend B] [--tier T] [--kernel K]
/// [--clients C] [--requests N] [--linger-us L]` — spin up the in-process
/// kernel-serving tier and drive it with a closed-loop load generator:
/// `C` client threads each performing `N` submit→wait round trips of the
/// chosen family kernel through the morphology-keyed plan cache and
/// micro-batcher. Reports p50/p99 latency, throughput, and the
/// coalescing/backpressure counters.
///
/// # Errors
///
/// Propagates loading failures.
#[allow(clippy::too_many_arguments)]
pub fn cmd_serve(
    source: &str,
    kind: robo_sim::BackendKind,
    tier: robo_spatial::ExecTier,
    kernel: robo_dynamics::engine::KernelKind,
    clients: usize,
    requests: usize,
    linger: std::time::Duration,
) -> Result<String, CliError> {
    use robo_dynamics::engine::KernelKind;
    use robo_serve::{GradientRequest, GradientServer, ResponseSlot, ServeConfig};

    let robot = load_robot(source)?;
    let clients = clients.max(1);
    let requests = requests.max(1);
    let server = GradientServer::with_config(ServeConfig {
        backend: kind,
        tier: Some(tier),
        max_linger: linger,
        queue_capacity: (4 * clients).max(64),
        ..ServeConfig::default()
    });
    let key = server.register(&robot);
    let plan = server.plan(key).expect("registered above");
    let inputs = robo_baselines::random_inputs(&robot, clients.max(4), 0x5E21);
    // The third request slot is kernel-dependent: q̈ for grad/id, τ for
    // fd (computed so the served q̈ round-trips the sampled one).
    let thirds: Vec<Vec<f64>> = inputs
        .iter()
        .map(|inp| match kernel {
            KernelKind::ForwardDynamics => {
                robo_dynamics::rnea(plan.model(), &inp.q, &inp.qd, &inp.qdd).tau
            }
            KernelKind::Gradient | KernelKind::InverseDynamics => inp.qdd.clone(),
        })
        .collect();

    let start = std::time::Instant::now();
    let mut latencies_ns: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let server = server.clone();
                let input = &inputs[c % inputs.len()];
                let third = &thirds[c % thirds.len()];
                let dof = plan.dof();
                s.spawn(move || {
                    let slot = ResponseSlot::new();
                    let mut req = GradientRequest::for_kernel(dof, kernel);
                    req.q.copy_from_slice(&input.q);
                    req.qd.copy_from_slice(&input.qd);
                    req.qdd.copy_from_slice(third);
                    req.minv = input.minv.clone();
                    let mut lat = Vec::with_capacity(requests);
                    let mut todo = requests;
                    while todo > 0 {
                        let t0 = std::time::Instant::now();
                        match server.serve(key, req, &slot) {
                            Ok(back) => {
                                lat.push(t0.elapsed().as_nanos() as u64);
                                req = back;
                                todo -= 1;
                            }
                            // Closed-loop clients cannot overrun the
                            // queue for long; retry on a shed.
                            Err(rejected) => req = rejected.req,
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("serve client"))
            .collect()
    });
    let wall = start.elapsed();
    let stats = server.stats();
    drop(server);

    latencies_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        let idx = ((latencies_ns.len() - 1) as f64 * p).round() as usize;
        latencies_ns[idx] as f64 / 1_000.0
    };
    let total = clients * requests;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "serving `{}` [{kernel} kernel, {kind} backend, {} tier, width {}]:",
        robot.name(),
        plan.tier(),
        plan.serve_width()
    );
    let _ = writeln!(
        out,
        "  {clients} client(s) x {requests} round trip(s), linger {} us, {} worker(s)",
        linger.as_micros(),
        server_workers(),
    );
    let _ = writeln!(
        out,
        "  completed {}/{total} (shed {}), {} flush(es) ({} ragged), queue high-water {}",
        stats.completed, stats.shed, stats.flushes, stats.ragged_flushes, stats.queue_high_water
    );
    let _ = writeln!(
        out,
        "  latency p50 {:.1} us, p99 {:.1} us; throughput {:.0} req/s",
        pct(0.50),
        pct(0.99),
        total as f64 / wall.as_secs_f64()
    );
    Ok(out)
}

fn server_workers() -> usize {
    robo_serve::ServeConfig::default().resolved_workers()
}

/// The usage string.
pub fn usage() -> &'static str {
    "robomorphic — morphology-parameterized accelerator toolchain

USAGE:
    robomorphic info      <robot>                  morphology & sparsity summary
    robomorphic customize <robot> [--verilog-dir D] run the two-step methodology
    robomorphic convert   <robot> <out.robo>        normalize a description
    robomorphic check     <robot> [--backend B] [--tier T] [--kernel K]
                          [--trace F]               validate model & dynamics
    robomorphic serve     <robot> [--backend B] [--tier T] [--kernel K]
                          [--clients C] [--requests N] [--linger-us L]
                                                    drive the kernel-serving
                                                    tier with a closed-loop
                                                    load generator

<robot> is a built-in name (iiwa14 | hyq | atlas), a .robo file, or a
.urdf/.xml file (supported subset; see robo-model docs).

--backend selects the engine backend for check's spot-check:
cpu (analytical kernels, default) | accel (simulated accelerator) |
fd (finite differences).

--kernel selects which member of the multifunction kernel family runs:
grad (dynamics gradient ∇ID, default) | id (inverse dynamics / RNEA) |
fd (forward dynamics, M⁻¹(τ−C) on the accelerator, ABA on the CPU).
check compares the chosen backend's kernel against the CPU reference;
serve routes every client request to that kernel's shard.

--tier forces the SIMD execution tier the engine serves wide batches at:
auto (host-detected, default) | portable | sse2 | avx2 | neon | jit.
jit additionally stitches every compiled tape into one contiguous native
function (x86-64 Linux only; check prints a `jit: active`/`jit: fell
back` line). Tiers not supported by the host degrade gracefully; every
tier is bit-identical, so the choice affects throughput only.

--trace records a span trace of the whole check (plan build through the
gradient spot-check) and writes it to F as Chrome-trace JSON — open it in
Perfetto (ui.perfetto.dev) or chrome://tracing.

serve coalesces the clients' concurrent requests into wide lane-group
batches (flushing on batch-full or after --linger-us microseconds,
default 200) and reports p50/p99 latency, throughput, and the
coalescing/backpressure counters. Defaults: --clients 4, --requests 64,
--backend accel.
"
}

/// Dispatches a command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown commands or missing arguments,
/// and propagates command failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    match args {
        [cmd, source] if cmd == "info" => cmd_info(source),
        [cmd, source] if cmd == "customize" => cmd_customize(source, None),
        [cmd, source, flag, dir] if cmd == "customize" && flag == "--verilog-dir" => {
            cmd_customize(source, Some(dir))
        }
        [cmd, source, dest] if cmd == "convert" => cmd_convert(source, dest),
        [cmd, rest @ ..] if cmd == "check" && !rest.is_empty() => {
            let mut source: Option<&str> = None;
            let mut kind = robo_sim::BackendKind::Cpu;
            let mut tier = robo_spatial::ExecTier::detect();
            let mut kernel = robo_dynamics::engine::KernelKind::Gradient;
            let mut trace_out: Option<&str> = None;
            fn flag_value<'r>(
                rest: &'r [String],
                i: &mut usize,
                flag: &str,
            ) -> Result<&'r String, CliError> {
                *i += 1;
                rest.get(*i)
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
            }
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--backend" => {
                        kind = flag_value(rest, &mut i, "--backend")?
                            .parse()
                            .map_err(CliError::Usage)?;
                    }
                    "--tier" => {
                        tier = flag_value(rest, &mut i, "--tier")?.parse().map_err(
                            |e: robo_spatial::ParseTierError| CliError::Usage(e.to_string()),
                        )?;
                    }
                    "--kernel" => {
                        kernel = flag_value(rest, &mut i, "--kernel")?
                            .parse()
                            .map_err(CliError::Usage)?;
                    }
                    "--trace" => trace_out = Some(flag_value(rest, &mut i, "--trace")?),
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown check flag `{flag}`")));
                    }
                    s if source.is_none() => source = Some(s),
                    extra => {
                        return Err(CliError::Usage(format!("unexpected argument `{extra}`")));
                    }
                }
                i += 1;
            }
            let Some(source) = source else {
                return Err(CliError::Usage("check needs a <robot>".to_owned()));
            };
            cmd_check_traced_kernel(source, kind, tier, trace_out, kernel)
        }
        [cmd, rest @ ..] if cmd == "serve" && !rest.is_empty() => {
            let mut source: Option<&str> = None;
            let mut kind = robo_sim::BackendKind::Accel;
            let mut tier = robo_spatial::ExecTier::detect();
            let mut kernel = robo_dynamics::engine::KernelKind::Gradient;
            let mut clients = 4usize;
            let mut requests = 64usize;
            let mut linger_us = 200u64;
            fn flag_value<'r>(
                rest: &'r [String],
                i: &mut usize,
                flag: &str,
            ) -> Result<&'r String, CliError> {
                *i += 1;
                rest.get(*i)
                    .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
            }
            fn parse_count(value: &str, flag: &str) -> Result<u64, CliError> {
                value
                    .parse()
                    .map_err(|_| CliError::Usage(format!("{flag} needs a number, got `{value}`")))
            }
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--backend" => {
                        kind = flag_value(rest, &mut i, "--backend")?
                            .parse()
                            .map_err(CliError::Usage)?;
                    }
                    "--tier" => {
                        tier = flag_value(rest, &mut i, "--tier")?.parse().map_err(
                            |e: robo_spatial::ParseTierError| CliError::Usage(e.to_string()),
                        )?;
                    }
                    "--kernel" => {
                        kernel = flag_value(rest, &mut i, "--kernel")?
                            .parse()
                            .map_err(CliError::Usage)?;
                    }
                    "--clients" => {
                        clients = parse_count(flag_value(rest, &mut i, "--clients")?, "--clients")?
                            as usize;
                    }
                    "--requests" => {
                        requests =
                            parse_count(flag_value(rest, &mut i, "--requests")?, "--requests")?
                                as usize;
                    }
                    "--linger-us" => {
                        linger_us =
                            parse_count(flag_value(rest, &mut i, "--linger-us")?, "--linger-us")?;
                    }
                    flag if flag.starts_with("--") => {
                        return Err(CliError::Usage(format!("unknown serve flag `{flag}`")));
                    }
                    s if source.is_none() => source = Some(s),
                    extra => {
                        return Err(CliError::Usage(format!("unexpected argument `{extra}`")));
                    }
                }
                i += 1;
            }
            let Some(source) = source else {
                return Err(CliError::Usage("serve needs a <robot>".to_owned()));
            };
            cmd_serve(
                source,
                kind,
                tier,
                kernel,
                clients,
                requests,
                std::time::Duration::from_micros(linger_us),
            )
        }
        _ => Err(CliError::Usage(usage().to_owned())),
    }
}
