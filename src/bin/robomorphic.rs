//! The `robomorphic` command-line tool: inspect robot descriptions, run
//! the two-step methodology, emit RTL, and sanity-check models.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match robomorphic::cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(robomorphic::cli::CliError::Usage(u)) => {
            eprint!("{u}");
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
