//! # Robomorphic computing, in Rust
//!
//! A full reproduction of *"Robomorphic Computing: A Design Methodology for
//! Domain-Specific Accelerators Parameterized by Robot Morphology"*
//! (Neuman et al., ASPLOS 2021): a methodology that transforms robot
//! morphology — limbs, links, joint types — into a customized hardware
//! accelerator for the gradient of rigid body dynamics, the key kernel of
//! online nonlinear-MPC motion planning.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`spatial`] | `robo-spatial` | 6-D spatial algebra, small dense linear algebra, the [`Scalar`](spatial::Scalar) abstraction |
//! | [`fixed`] | `robo-fixed` | Q-format fixed-point arithmetic (the accelerator's Q16.16 and the Figure 12 sweep types) |
//! | [`model`] | `robo-model` | robot morphology: joints, links, kinematic trees, limb decomposition, built-in robots, the `.robo` format |
//! | [`dynamics`] | `robo-dynamics` | RNEA, CRBA, ABA, and the analytical dynamics gradient (Algorithm 1) |
//! | [`sparsity`] | `robo-sparsity` | morphology-derived matrix sparsity patterns and pruned operation counts |
//! | [`core`] | `robomorphic-core` | **the methodology**: parameterized hardware templates and per-robot customization |
//! | [`sim`] | `robo-sim` | cycle-level accelerator simulation and the coprocessor system model |
//! | [`baselines`] | `robo-baselines` | measured CPU baseline and the modeled GPU baseline |
//! | [`codegen`] | `robo-codegen` | executable netlists and Verilog emission for generated accelerators |
//! | [`profile`] | `robo-profile` | workload analysis via an operation-counting scalar |
//! | [`collision`] | `robo-collision` | capsule collision checking and its robomorphic template |
//! | [`trajopt`] | `robo-trajopt` | iLQR nonlinear MPC and the control-rate analysis |
//! | [`trace`] | `robo-trace` | pipeline span tracing emitting Chrome-trace JSON (recording gated behind the `trace` cargo feature, on by default) |
//! | [`engine`] | `robo-dynamics` + `robo-sim` | the plan-once/execute-many engine layer: [`RobotPlan`](engine::RobotPlan) and the [`GradientBackend`](engine::GradientBackend) trait every gradient consumer goes through |
//! | [`serve`] | `robo-serve` | the gradient-serving tier: [`GradientServer`](serve::GradientServer) with a morphology-keyed plan cache, per-shard dynamic micro-batching, and backpressure |
//!
//! # Quickstart
//!
//! ```
//! use robomorphic::core::{FpgaPlatform, GradientTemplate};
//! use robomorphic::model::robots;
//!
//! // Step 1: create the hardware template once per algorithm.
//! let template = GradientTemplate::new();
//!
//! // Step 2: set its parameters from a robot's morphology.
//! let accel = template.customize(&robots::iiwa14());
//!
//! // The customized design: 34 cycles per gradient at 55.6 MHz.
//! let fpga = FpgaPlatform::xcvu9p();
//! assert_eq!(accel.schedule().single_latency_cycles(), 34);
//! assert!(fpga.fits(&accel.resources()));
//! ```
//!
//! See `DESIGN.md` for the system inventory and the per-experiment index,
//! and `EXPERIMENTS.md` for paper-vs-measured results. Each table/figure of
//! the paper can be regenerated with
//! `cargo run -p robo-bench --release --bin <experiment>`.

#![warn(missing_docs)]

pub use robo_baselines as baselines;
pub use robo_codegen as codegen;
pub use robo_collision as collision;
pub use robo_dynamics as dynamics;
pub use robo_fixed as fixed;
pub use robo_model as model;
pub use robo_profile as profile;
pub use robo_serve as serve;
pub use robo_sim as sim;
pub use robo_sparsity as sparsity;
pub use robo_spatial as spatial;
pub use robo_trace as trace;
pub use robo_trajopt as trajopt;
pub use robomorphic_core as core;

/// The engine layer in one place: build a [`engine::RobotPlan`] once per
/// morphology, then hand out [`engine::GradientBackend`]s — CPU analytic,
/// simulated accelerator, or finite differences — to every consumer.
///
/// # Examples
///
/// ```
/// use robomorphic::engine::{BackendKind, GradientBackend, RobotPlan};
/// use robomorphic::model::robots;
///
/// let plan = RobotPlan::new(&robots::iiwa14());
/// let mut backend = plan.backend(BackendKind::Cpu);
/// assert_eq!(backend.dof(), 7);
/// ```
pub mod engine {
    pub use robo_dynamics::batch::GradientState;
    pub use robo_dynamics::engine::{
        CpuAnalytic, DynamicsBackend, EngineError, FiniteDiff, GradientBackend,
        GradientBatchOutput, GradientOutput, KernelKind, KernelOutput,
    };
    pub use robo_dynamics::MorphologyKey;
    pub use robo_sim::engine::{AcceleratorBackend, BackendKind, RobotPlan};
}

#[doc(hidden)]
pub mod cli;
