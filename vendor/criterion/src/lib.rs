//! A minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The workspace builds in fully offline environments, so the real
//! `criterion` cannot be fetched from crates.io. This vendored crate
//! implements the subset of the API the repository's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], [`criterion_group!`], [`criterion_main!`] — with a much
//! simpler measurement loop: one warm-up estimate, then a single timed run
//! sized to `measurement_time / estimate`, reporting the mean time per
//! iteration. There is no statistical analysis, HTML report, or CLI
//! filtering; every bench prints one stable `name ... time: [..]` line.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the minimum number of iterations per measurement.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target wall-clock time for one measurement.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::new(self.sample_size, self.measurement_time);
        f(&mut bencher);
        bencher.report(id, None);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the minimum number of iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the target measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.sample_size, self.criterion.measurement_time);
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Runs one benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Units for reporting per-iteration throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Measures a routine; handed to the closure of `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    min_iters: u64,
    measurement_time: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(sample_size: usize, measurement_time: Duration) -> Self {
        Self {
            min_iters: sample_size as u64,
            measurement_time,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Times `routine`, choosing an iteration count that fills the
    /// configured measurement time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run once to page everything in and estimate cost.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));

        let budget = self.measurement_time.as_secs_f64() / estimate.as_secs_f64();
        let iters = (budget as u64).clamp(self.min_iters, 5_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{id:<50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => format!("  thrpt: {:.4e} elem/s", n as f64 / per_iter),
            Some(Throughput::Bytes(n)) => format!("  thrpt: {:.4e} B/s", n as f64 / per_iter),
            None => String::new(),
        };
        println!(
            "{id:<50} time: [{} {} {}]{rate}",
            format_time(per_iter),
            format_time(per_iter),
            format_time(per_iter),
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// Declares a function running a list of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares `fn main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(1));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 5, "routine ran {runs} times");
    }

    #[test]
    fn group_bench_with_input_passes_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Elements(3));
        let input = vec![1, 2, 3];
        g.bench_with_input(BenchmarkId::from_parameter(3), &input, |b, i| {
            b.iter(|| i.iter().sum::<i32>())
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 7).id, "f/7");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("lit").id, "lit");
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(5e-9).ends_with("ns"));
        assert!(format_time(5e-5).ends_with("µs"));
        assert!(format_time(5e-2).ends_with("ms"));
        assert!(format_time(2.0).ends_with('s'));
    }
}
