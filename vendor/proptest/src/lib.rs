//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in fully offline environments, so the real
//! `proptest` (and its dependency tree) cannot be fetched from crates.io.
//! This vendored crate implements the subset of the proptest API the
//! repository's property tests use:
//!
//! - the [`Strategy`] trait with `prop_map`, implemented for numeric ranges,
//!   tuples, arrays, string patterns (a small regex subset), and the
//!   combinators in [`collection`] and [`sample`];
//! - the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//!   [`prop_assert_ne!`] macros;
//! - [`ProptestConfig`] with a `cases` knob.
//!
//! Differences from real proptest, by design: generation is **deterministic**
//! (seeded from the test's module path and name, so failures reproduce across
//! runs and machines) and failing cases are **not shrunk** — the failing
//! input is reported by the panic message instead.

use core::fmt::Debug;
use core::ops::Range;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test function.
    pub cases: u32,
    /// Shrink-iteration cap. Accepted for source compatibility with real
    /// proptest's `ProptestConfig { cases, ..Default::default() }` idiom;
    /// this stand-in never shrinks, so the value is unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

/// Deterministic pseudo-random generator (splitmix64) used by all
/// strategies. Not cryptographic; stable across platforms.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds the deterministic RNG for one property-test function.
#[doc(hidden)]
pub fn test_rng(name: &str) -> TestRng {
    // FNV-1a over the fully qualified test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(h)
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128) as u64;
                assert!(span > 0, "empty integer range strategy");
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}

impl<S: Strategy, const N: usize> Strategy for [S; N] {
    type Value = [S::Value; N];

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        core::array::from_fn(|i| self[i].generate(rng))
    }
}

/// String strategy from a regex-subset pattern (see [`string_from_pattern`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        string_from_pattern(self, rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Length specification for [`vec`](fn@vec): an exact `usize` or a `Range<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec-length range");
            Self {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Strategy producing a `Vec` of values from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};
    use core::fmt::Debug;

    /// Strategy choosing uniformly among a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks one of `options` uniformly at random.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Numeric strategies (`proptest::num`).
pub mod num {
    /// `f64` strategies.
    pub mod f64 {
        use crate::{Strategy, TestRng};

        /// Strategy generating normal (non-zero, non-subnormal, finite)
        /// `f64` values across the full exponent range.
        #[derive(Debug, Clone, Copy)]
        pub struct Normal;

        /// Generates arbitrary normal `f64` values.
        pub const NORMAL: Normal = Normal;

        impl Strategy for Normal {
            type Value = core::primitive::f64;

            fn generate(&self, rng: &mut TestRng) -> core::primitive::f64 {
                loop {
                    let v = core::primitive::f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

/// Namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::num;
    pub use crate::sample;
}

/// The usual glob-import surface: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Generates a string matching a small regex subset: literals, `.`,
/// character classes `[a-z0-9,. ]` (with ranges), alternation groups
/// `(a|bc|d)`, escapes `\x`, and the quantifiers `{m}`, `{m,n}`, `*`, `+`,
/// `?` (unbounded quantifiers are capped at 8 repetitions).
pub fn string_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = parse_pattern(&mut pattern.chars().collect::<Vec<_>>().as_slice());
    let mut out = String::new();
    for node in &nodes {
        node.emit(rng, &mut out);
    }
    out
}

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    AnyChar,
    /// Inclusive character ranges; single characters are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternation: one branch is chosen uniformly.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, usize, usize),
}

impl Node {
    fn emit(&self, rng: &mut TestRng, out: &mut String) {
        match self {
            Node::Literal(c) => out.push(*c),
            // Printable ASCII keeps generated text debuggable.
            Node::AnyChar => out.push((b' ' + rng.below(95) as u8) as char),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u64 - *lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let span = *hi as u64 - *lo as u64 + 1;
                    if pick < span {
                        out.push(char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo));
                        return;
                    }
                    pick -= span;
                }
            }
            Node::Group(branches) => {
                let i = rng.below(branches.len() as u64) as usize;
                for node in &branches[i] {
                    node.emit(rng, out);
                }
            }
            Node::Repeat(inner, min, max) => {
                let count = *min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..count {
                    inner.emit(rng, out);
                }
            }
        }
    }
}

/// Parses a node sequence, stopping at `|`, `)`, or end of input. The input
/// slice is advanced past what was consumed.
fn parse_pattern(input: &mut &[char]) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = input.first() {
        if c == '|' || c == ')' {
            break;
        }
        *input = &input[1..];
        let atom = match c {
            '.' => Node::AnyChar,
            '[' => parse_class(input),
            '(' => parse_group(input),
            '\\' => {
                let escaped = input.first().copied().unwrap_or('\\');
                if !input.is_empty() {
                    *input = &input[1..];
                }
                Node::Literal(escaped)
            }
            other => Node::Literal(other),
        };
        nodes.push(apply_quantifier(atom, input));
    }
    nodes
}

fn parse_group(input: &mut &[char]) -> Node {
    let mut branches = vec![parse_pattern(input)];
    while input.first() == Some(&'|') {
        *input = &input[1..];
        branches.push(parse_pattern(input));
    }
    if input.first() == Some(&')') {
        *input = &input[1..];
    }
    Node::Group(branches)
}

fn parse_class(input: &mut &[char]) -> Node {
    let mut ranges = Vec::new();
    while let Some(&c) = input.first() {
        *input = &input[1..];
        if c == ']' {
            break;
        }
        // `a-z` forms a range unless `-` is the last char before `]`.
        if input.first() == Some(&'-') && input.get(1).is_some_and(|&n| n != ']') {
            let hi = input[1];
            *input = &input[2..];
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
    assert!(!ranges.is_empty(), "empty character class in pattern");
    Node::Class(ranges)
}

fn apply_quantifier(atom: Node, input: &mut &[char]) -> Node {
    match input.first() {
        Some('{') => {
            let close = input
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {} quantifier");
            let spec: String = input[1..close].iter().collect();
            *input = &input[close + 1..];
            let (min, max) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier min"),
                    hi.trim().parse().expect("bad quantifier max"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            Node::Repeat(Box::new(atom), min, max)
        }
        Some('*') => {
            *input = &input[1..];
            Node::Repeat(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *input = &input[1..];
            Node::Repeat(Box::new(atom), 1, 8)
        }
        Some('?') => {
            *input = &input[1..];
            Node::Repeat(Box::new(atom), 0, 1)
        }
        _ => atom,
    }
}

/// Runs each contained `#[test] fn name(pattern in strategy, ..) { .. }`
/// for `ProptestConfig::cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $pat:pat_param in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    let ( $( $pat, )* ) =
                        ( $( $crate::Strategy::generate(&($strat), &mut rng), )* );
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test (no shrinking; panics).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = test_rng("ranges");
        for _ in 0..200 {
            let f = (1.5..2.5f64).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
            let u = (3u8..7).generate(&mut rng);
            assert!((3..7).contains(&u));
            let i = (-5i32..-1).generate(&mut rng);
            assert!((-5..-1).contains(&i));
        }
    }

    #[test]
    fn determinism_per_name() {
        let mut a = test_rng("same");
        let mut b = test_rng("same");
        let s: &str = "[a-f]{8}";
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn pattern_generation_matches_shape() {
        let mut rng = test_rng("shapes");
        for _ in 0..100 {
            let s = "(ab|c) [0-9x]{2,4}z?".generate(&mut rng);
            let (head, tail) = s.split_once(' ').expect("space literal present");
            assert!(head == "ab" || head == "c", "head {head:?}");
            let tail = tail.strip_suffix('z').unwrap_or(tail);
            assert!((2..=4).contains(&tail.len()), "tail {tail:?}");
            assert!(tail.chars().all(|c| c.is_ascii_digit() || c == 'x'));
        }
    }

    #[test]
    fn vec_lengths_cover_range() {
        let mut rng = test_rng("lens");
        let strat = collection::vec(0.0..1.0f64, 2..5);
        let mut seen = [false; 5];
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn select_and_map_compose() {
        let mut rng = test_rng("compose");
        let strat = sample::select(vec![1, 2, 3]).prop_map(|x| x * 10);
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!(v == 10 || v == 20 || v == 30);
        }
    }

    #[test]
    fn normal_floats_are_normal() {
        let mut rng = test_rng("normal");
        for _ in 0..100 {
            assert!(num::f64::NORMAL.generate(&mut rng).is_normal());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_tuples((a, b) in (0u32..10, 10u32..20), v in 0.0..1.0f64) {
            prop_assert!(a < 10);
            prop_assert!((10..20).contains(&b));
            prop_assert!((0.0..1.0).contains(&v));
        }
    }
}
