//! Step 1 of robomorphic computing: the parameterized hardware template.
//!
//! "Create a hardware template for an algorithm once, parameterized by key
//! components of robot morphology, e.g., limbs, links, and joints" (§4).
//! [`GradientTemplate`] is that template for the dynamics gradient
//! (Algorithm 1): it fixes the algorithm structure — forward/backward pass
//! processors, per-link derivative datapaths, folding levels, the fused
//! `−M⁻¹` step — while leaving the morphology-derived parameters open.
//! [`GradientTemplate::customize`] is step 2: binding a concrete robot.

use crate::accel::{Accelerator, CycleSchedule, LimbPlan, ResourceEstimate};
use crate::units::{FunctionalUnit, ResourceTally};
use robo_model::{JointType, RobotModel};
use robo_sparsity::{inertia_pattern, superposition_pattern, x_pattern, Mask6};

/// The folding configuration of the template (§5.2, "Architectural
/// Optimizations").
///
/// Without aggressive folding "the number of multipliers needed for the
/// template design would be enormous for almost any robot model".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Folding {
    /// Fold each datapath's chain of `N` forward (and backward) pass units
    /// into one unit iterated over the links ("a reduction of approximately
    /// O(N) in area in exchange for a small latency penalty").
    pub fold_link_chains: bool,
    /// Fold the forward pass unit into three sequential stages, re-using
    /// the sparse matrix-vector joint functional units (Figure 6).
    pub fold_forward_stages: bool,
    /// Fuse step 3 (`−M⁻¹` multiplication) into the backward pass units of
    /// the ∂/∂q̇ datapaths, completing it in two clock cycles.
    pub fuse_minv: bool,
}

impl Folding {
    /// The paper's design point: both folding levels plus the fused `M⁻¹`.
    pub fn paper_default() -> Self {
        Self {
            fold_link_chains: true,
            fold_forward_stages: true,
            fuse_minv: true,
        }
    }

    /// No folding: the fully spatial design (used by the folding ablation;
    /// vastly exceeds any FPGA's multiplier budget).
    pub fn unfolded() -> Self {
        Self {
            fold_link_chains: false,
            fold_forward_stages: false,
            fuse_minv: true,
        }
    }
}

/// The morphology parameters extracted from a robot model — exactly the
/// quantities the paper's Figure 5 flow reads from the robot description.
#[derive(Debug, Clone)]
pub struct MorphologyParams {
    /// Number of limbs `L`.
    pub l_limbs: usize,
    /// Links per limb.
    pub links_per_limb: Vec<usize>,
    /// Longest limb length `N` (sets datapath depth).
    pub n_links_max: usize,
    /// Total joint count.
    pub dof: usize,
    /// Joint types, by link index.
    pub joint_types: Vec<JointType>,
    /// Per-joint transform sparsity patterns.
    pub x_masks: Vec<Mask6>,
    /// The superposition pattern shared by the single `X·` unit (§6.2).
    pub x_superposition: Mask6,
    /// Per-link inertia patterns (entries become hardware constants).
    pub inertia_masks: Vec<Mask6>,
}

impl MorphologyParams {
    /// Extracts the parameters from a robot model.
    pub fn from_robot(robot: &RobotModel) -> Self {
        let limbs = robot.limbs();
        let links_per_limb: Vec<usize> = limbs.iter().map(|l| l.len()).collect();
        Self {
            l_limbs: limbs.len(),
            n_links_max: links_per_limb.iter().copied().max().unwrap_or(0),
            links_per_limb,
            dof: robot.dof(),
            joint_types: robot.links().iter().map(|l| l.joint).collect(),
            x_masks: (0..robot.dof()).map(|i| x_pattern(robot, i)).collect(),
            x_superposition: superposition_pattern(robot),
            inertia_masks: (0..robot.dof())
                .map(|i| inertia_pattern(robot, i))
                .collect(),
        }
    }
}

/// The parameterized hardware template for the dynamics gradient
/// accelerator (Figure 8).
///
/// # Examples
///
/// ```
/// use robomorphic_core::GradientTemplate;
/// use robo_model::robots;
///
/// // Step 1: create the template once.
/// let template = GradientTemplate::new();
/// // Step 2: set the parameters for a robot.
/// let accel = template.customize(&robots::iiwa14());
/// assert_eq!(accel.schedule().single_latency_cycles(), 34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GradientTemplate {
    folding: Folding,
}

impl Default for GradientTemplate {
    fn default() -> Self {
        Self::new()
    }
}

impl GradientTemplate {
    /// The template at the paper's design point.
    pub fn new() -> Self {
        Self {
            folding: Folding::paper_default(),
        }
    }

    /// A template with explicit folding choices (for ablations).
    pub fn with_folding(folding: Folding) -> Self {
        Self { folding }
    }

    /// The folding configuration.
    pub fn folding(&self) -> Folding {
        self.folding
    }

    /// Step 2: binds the template parameters to a robot model, producing a
    /// customized accelerator design.
    pub fn customize(&self, robot: &RobotModel) -> Accelerator {
        let params = MorphologyParams::from_robot(robot);
        let folding = self.folding;

        // --- Per-processor functional unit bundles -----------------------
        // Forward pass unit (Figure 6). With stage folding the X· unit pool
        // is shared across the three stages (two physical trees: one for the
        // velocity stream, one for the acceleration stream); unfolded, each
        // stage gets its own set (four trees).
        let x_unit = FunctionalUnit::x_matvec(&params.x_superposition);
        let avg_inertia_mask = &params.inertia_masks;
        let mut fwd = ResourceTally::default();
        let x_trees_fwd = if folding.fold_forward_stages { 2 } else { 4 };
        fwd.add(&x_unit, x_trees_fwd);
        fwd.add(&FunctionalUnit::cross_motion(), 2); // v×Sq̇ and ∂v×Sq̇ chains
        fwd.add(&FunctionalUnit::cross_force(), 2); // ∂v×*(Iv), v×*(I∂v)
                                                    // I· units: constants per link; the folded processor holds the
                                                    // worst-case (superposed) inertia tree.
        let inertia_super = avg_inertia_mask
            .iter()
            .fold(Mask6::empty(), |acc, m| acc.union(m));
        fwd.add(&FunctionalUnit::inertia_matvec(&inertia_super), 2);
        fwd.add(&FunctionalUnit::subspace_select(), 2);
        fwd.add(&FunctionalUnit::accumulate6(4), 1);

        // Backward pass unit: Xᵀ accumulation plus the ∂X seed cross
        // product; ∂/∂q̇ lanes carry the fused −M⁻¹ MAC row.
        let mut bwd = ResourceTally::default();
        bwd.add(&FunctionalUnit::xt_matvec(&params.x_superposition), 1);
        bwd.add(&FunctionalUnit::cross_force(), 1);
        bwd.add(&FunctionalUnit::subspace_select(), 1);
        bwd.add(&FunctionalUnit::accumulate6(2), 1);
        let mac = FunctionalUnit::mac_row(params.dof);

        // --- Datapath plan ------------------------------------------------
        // Per limb of n links: n ∂q datapaths + n ∂q̇ datapaths + 1 ID chain.
        let limb_plans: Vec<LimbPlan> = params
            .links_per_limb
            .iter()
            .map(|&n| LimbPlan {
                links: n,
                dq_datapaths: n,
                dqd_datapaths: n,
            })
            .collect();

        // Chain folding: folded = one fwd + one bwd processor per datapath;
        // unfolded = one per (datapath, link) pair.
        let mut total = ResourceTally::default();
        for plan in &limb_plans {
            let datapaths = plan.dq_datapaths + plan.dqd_datapaths + 1;
            let chain_mult = if folding.fold_link_chains {
                1
            } else {
                plan.links
            };
            for _ in 0..datapaths * chain_mult {
                total.merge(fwd);
                total.merge(bwd);
            }
            if folding.fuse_minv {
                // One MAC row per ∂/∂q̇ datapath.
                for _ in 0..plan.dqd_datapaths * chain_mult {
                    total.add(&mac, 1);
                }
            }
        }

        // --- Cycle schedule ------------------------------------------------
        let schedule = CycleSchedule {
            n_links: params.n_links_max,
            fwd_stage_cycles: if folding.fold_forward_stages { 3 } else { 1 },
            bwd_cycles_per_link: 1,
            id_offset_iterations: 2,
            minv_cycles: if folding.fuse_minv { 2 } else { 2 * params.dof },
            limb_sync_cycles: if params.l_limbs > 1 {
                (usize::BITS - (params.l_limbs - 1).leading_zeros()) as usize
            } else {
                0
            },
        };

        Accelerator::from_parts(
            robot.name().to_owned(),
            params,
            folding,
            limb_plans,
            fwd,
            bwd,
            ResourceEstimate::from_tally(total),
            schedule,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn params_extraction_iiwa() {
        let p = MorphologyParams::from_robot(&robots::iiwa14());
        assert_eq!(p.l_limbs, 1);
        assert_eq!(p.n_links_max, 7);
        assert_eq!(p.dof, 7);
        assert_eq!(p.x_masks.len(), 7);
        assert_eq!(p.x_superposition.count(), 23);
    }

    #[test]
    fn params_extraction_quadruped() {
        let p = MorphologyParams::from_robot(&robots::hyq());
        assert_eq!(p.l_limbs, 4);
        assert_eq!(p.links_per_limb, vec![3, 3, 3, 3]);
        assert_eq!(p.n_links_max, 3);
    }

    #[test]
    fn iiwa_schedule_matches_paper_structure() {
        let accel = GradientTemplate::new().customize(&robots::iiwa14());
        let s = accel.schedule();
        // (N+1)·3 forward + (N+1)·1 backward + 2 M⁻¹ = 34 cycles for N = 7.
        assert_eq!(s.single_latency_cycles(), 34);
        let b = s.breakdown();
        assert_eq!(b.id_cycles, 4); // the 2-iteration ID offset
        assert_eq!(b.grad_cycles, 28);
        assert_eq!(b.minv_cycles, 2);
    }

    #[test]
    fn folding_cuts_resources_and_costs_latency() {
        let folded = GradientTemplate::new().customize(&robots::iiwa14());
        let unfolded =
            GradientTemplate::with_folding(Folding::unfolded()).customize(&robots::iiwa14());
        assert!(
            unfolded.resources().var_muls > 4 * folded.resources().var_muls,
            "chain folding must save ~O(N) area"
        );
        assert!(
            unfolded.schedule().single_latency_cycles() < folded.schedule().single_latency_cycles()
        );
    }

    #[test]
    fn quadruped_gets_limb_parallelism() {
        let accel = GradientTemplate::new().customize(&robots::hyq());
        assert_eq!(accel.limb_plans().len(), 4);
        // Shorter limbs → lower latency than the 7-link manipulator despite
        // more total joints.
        let iiwa = GradientTemplate::new().customize(&robots::iiwa14());
        assert!(accel.schedule().single_latency_cycles() < iiwa.schedule().single_latency_cycles());
    }
}
