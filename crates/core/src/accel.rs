//! The customized accelerator produced by step 2 of the methodology.

use crate::template::{Folding, MorphologyParams};
use crate::units::ResourceTally;

/// Datapath plan for one limb: the paper's limb processors (§7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LimbPlan {
    /// Links in the limb (datapath chain depth).
    pub links: usize,
    /// Parallel ∂/∂q datapaths.
    pub dq_datapaths: usize,
    /// Parallel ∂/∂q̇ datapaths.
    pub dqd_datapaths: usize,
}

/// The static cycle schedule of the accelerator.
///
/// Each folded pipeline stage completes in one clock — the deep
/// combinational trees are why the paper's FPGA design closes timing at
/// only 55.6 MHz yet still wins on latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleSchedule {
    /// Links per datapath (longest limb).
    pub n_links: usize,
    /// Cycles per link of the forward pass (3 when stage-folded, Figure 6).
    pub fwd_stage_cycles: usize,
    /// Cycles per link of the backward pass.
    pub bwd_cycles_per_link: usize,
    /// The ID/∇ID offset: "a 2-iteration delay ... one extra iteration of
    /// the forward pass, plus one extra iteration of the backward pass"
    /// (§6.2).
    pub id_offset_iterations: usize,
    /// Cycles for the fused `−M⁻¹` multiplication (2 at the paper's design
    /// point).
    pub minv_cycles: usize,
    /// Synchronization cycles at the torso processor for multi-limb robots
    /// (0 for a single limb).
    pub limb_sync_cycles: usize,
}

/// Latency breakdown in cycles, matching Figure 10's three segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// Inverse dynamics contribution (the pipeline offset).
    pub id_cycles: usize,
    /// ∇ID contribution.
    pub grad_cycles: usize,
    /// `−M⁻¹` multiplication contribution.
    pub minv_cycles: usize,
}

impl LatencyBreakdown {
    /// Total cycles.
    pub fn total(&self) -> usize {
        self.id_cycles + self.grad_cycles + self.minv_cycles
    }
}

impl CycleSchedule {
    /// Latency in cycles of a single gradient computation passing through
    /// the whole accelerator (pipelining ignored, as in Figure 10).
    pub fn single_latency_cycles(&self) -> usize {
        self.breakdown().total()
    }

    /// The Figure 10 segment breakdown.
    pub fn breakdown(&self) -> LatencyBreakdown {
        // The ID chain runs one link ahead; its visible cost is the offset:
        // one extra forward iteration + one extra backward iteration.
        let id_cycles =
            (self.id_offset_iterations / 2) * (self.fwd_stage_cycles + self.bwd_cycles_per_link);
        let grad_cycles = self.n_links * (self.fwd_stage_cycles + self.bwd_cycles_per_link);
        LatencyBreakdown {
            id_cycles,
            grad_cycles,
            minv_cycles: self.minv_cycles + self.limb_sync_cycles,
        }
    }

    /// Initiation interval: cycles between successive gradient computations
    /// when the forward/backward pipelines are kept full (§5.2: "we pipeline
    /// the forward and backward passes to hide latency and increase
    /// throughput").
    pub fn initiation_interval(&self) -> usize {
        let fwd = (self.n_links + 1) * self.fwd_stage_cycles;
        let bwd = (self.n_links + 1) * self.bwd_cycles_per_link + self.minv_cycles;
        fwd.max(bwd)
    }
}

/// Hardware resource estimate of the customized design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Variable×variable multipliers (DSP-mapped on the FPGA).
    pub var_muls: usize,
    /// Constant multipliers.
    pub const_muls: usize,
    /// Adders.
    pub adds: usize,
}

impl ResourceEstimate {
    /// Wraps a raw tally.
    pub fn from_tally(t: ResourceTally) -> Self {
        Self {
            var_muls: t.var_muls,
            const_muls: t.const_muls,
            adds: t.adds,
        }
    }
}

/// A robot-customized dynamics gradient accelerator: the output of
/// [`crate::GradientTemplate::customize`].
#[derive(Debug, Clone)]
pub struct Accelerator {
    robot_name: String,
    params: MorphologyParams,
    folding: Folding,
    limb_plans: Vec<LimbPlan>,
    fwd_processor: ResourceTally,
    bwd_processor: ResourceTally,
    resources: ResourceEstimate,
    schedule: CycleSchedule,
}

impl Accelerator {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        robot_name: String,
        params: MorphologyParams,
        folding: Folding,
        limb_plans: Vec<LimbPlan>,
        fwd_processor: ResourceTally,
        bwd_processor: ResourceTally,
        resources: ResourceEstimate,
        schedule: CycleSchedule,
    ) -> Self {
        Self {
            robot_name,
            params,
            folding,
            limb_plans,
            fwd_processor,
            bwd_processor,
            resources,
            schedule,
        }
    }

    /// Name of the robot this accelerator was customized for.
    pub fn robot_name(&self) -> &str {
        &self.robot_name
    }

    /// The extracted morphology parameters.
    pub fn params(&self) -> &MorphologyParams {
        &self.params
    }

    /// The folding configuration inherited from the template.
    pub fn folding(&self) -> Folding {
        self.folding
    }

    /// Per-limb datapath plans.
    pub fn limb_plans(&self) -> &[LimbPlan] {
        &self.limb_plans
    }

    /// Per-forward-processor resource bundle.
    pub fn fwd_processor(&self) -> ResourceTally {
        self.fwd_processor
    }

    /// Per-backward-processor resource bundle.
    pub fn bwd_processor(&self) -> ResourceTally {
        self.bwd_processor
    }

    /// Total resource estimate.
    pub fn resources(&self) -> ResourceEstimate {
        self.resources
    }

    /// The static cycle schedule.
    pub fn schedule(&self) -> CycleSchedule {
        self.schedule
    }

    /// Latency in seconds of a single gradient computation at `clock_hz`.
    pub fn single_latency_s(&self, clock_hz: f64) -> f64 {
        self.schedule.single_latency_cycles() as f64 / clock_hz
    }

    /// Steady-state throughput (gradient computations per second) at
    /// `clock_hz` with the pipeline kept full.
    pub fn throughput_per_s(&self, clock_hz: f64) -> f64 {
        clock_hz / self.schedule.initiation_interval() as f64
    }

    /// Time to stream `count` pipelined gradient computations through the
    /// accelerator: fill latency plus `count − 1` initiation intervals.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn pipelined_latency_s(&self, count: usize, clock_hz: f64) -> f64 {
        assert!(count > 0, "need at least one computation");
        let cycles = self.schedule.single_latency_cycles()
            + (count - 1) * self.schedule.initiation_interval();
        cycles as f64 / clock_hz
    }
}

#[cfg(test)]
mod tests {
    use crate::GradientTemplate;
    use robo_model::robots;

    #[test]
    fn latency_seconds_at_fpga_clock() {
        let accel = GradientTemplate::new().customize(&robots::iiwa14());
        let t = accel.single_latency_s(55.6e6);
        // 34 cycles at 55.6 MHz ≈ 0.61 µs.
        assert!((t - 34.0 / 55.6e6).abs() < 1e-12);
        assert!(t > 0.5e-6 && t < 0.7e-6);
    }

    #[test]
    fn pipelining_improves_throughput() {
        let accel = GradientTemplate::new().customize(&robots::iiwa14());
        let single = accel.single_latency_s(55.6e6);
        let per_item_pipelined = accel.pipelined_latency_s(100, 55.6e6) / 100.0;
        assert!(per_item_pipelined < single);
    }

    #[test]
    fn initiation_interval_bounded_by_forward_pipe() {
        let accel = GradientTemplate::new().customize(&robots::iiwa14());
        assert_eq!(accel.schedule().initiation_interval(), 24); // (7+1)·3
    }

    #[test]
    fn humanoid_larger_than_quadruped() {
        let t = GradientTemplate::new();
        let hyq = t.customize(&robots::hyq());
        let atlas = t.customize(&robots::atlas());
        assert!(atlas.resources().var_muls > hyq.resources().var_muls);
        assert!(atlas.schedule().single_latency_cycles() > hyq.schedule().single_latency_cycles());
    }

    #[test]
    #[should_panic(expected = "at least one computation")]
    fn zero_count_pipelined_panics() {
        let accel = GradientTemplate::new().customize(&robots::iiwa14());
        let _ = accel.pipelined_latency_s(0, 55.6e6);
    }
}
