//! Hardware platform models: the FPGA and synthesized-ASIC targets of the
//! paper's evaluation (Table 1, Table 2, Figure 14).
//!
//! The FPGA numbers are the paper's platform constants. The ASIC area and
//! power come from a per-resource cost model whose unit costs are
//! *calibrated to the paper's Table 2* (GlobalFoundries 12 nm); this is the
//! documented substitution for an actual synthesis flow (see DESIGN.md) —
//! the model preserves how area and power scale with the resource counts
//! that morphology customization produces.

use crate::accel::{Accelerator, ResourceEstimate};

/// The paper's FPGA platform: Xilinx Virtex UltraScale+ XCVU9P (Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FpgaPlatform {
    /// Clock frequency the design was synthesized at.
    pub clock_hz: f64,
    /// DSP blocks available (XCVU9P: 6840).
    pub dsp_budget: usize,
    /// DSP blocks per 32-bit fixed-point multiplier (§6.2: DSP multipliers
    /// are 27×18 bits, "so all operands between 19 and 36 bits require two
    /// multipliers").
    pub dsp_per_mult: usize,
    /// User design power from Vivado simulation (Table 2).
    pub power_w: f64,
}

impl Default for FpgaPlatform {
    fn default() -> Self {
        Self::xcvu9p()
    }
}

impl FpgaPlatform {
    /// The paper's evaluation board configuration.
    pub fn xcvu9p() -> Self {
        Self {
            clock_hz: 55.6e6,
            dsp_budget: 6840,
            dsp_per_mult: 2,
            power_w: 9.572,
        }
    }

    /// DSP blocks consumed by a design.
    pub fn dsps_used(&self, r: &ResourceEstimate) -> usize {
        r.var_muls * self.dsp_per_mult
    }

    /// Fraction of the DSP budget consumed (the paper reports 77.5% for
    /// the iiwa accelerator, §6.2).
    pub fn dsp_utilization(&self, r: &ResourceEstimate) -> f64 {
        self.dsps_used(r) as f64 / self.dsp_budget as f64
    }

    /// Whether the design fits the DSP budget.
    pub fn fits(&self, r: &ResourceEstimate) -> bool {
        self.dsps_used(r) <= self.dsp_budget
    }
}

/// ASIC process corner (Table 2 reports both).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corner {
    /// Slow corner: 250 MHz.
    Slow,
    /// Typical corner: 400 MHz.
    Typical,
}

/// The synthesized-ASIC platform model (GlobalFoundries 12 nm, Table 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsicPlatform {
    /// Process corner.
    pub corner: Corner,
}

/// Per-resource cost constants of the 12 nm ASIC model, calibrated so the
/// iiwa accelerator pipeline reproduces Table 2 (documented substitution
/// for a synthesis flow).
mod asic_cost {
    /// Area of a 32-bit fixed-point variable multiplier (µm²).
    pub const MULT_AREA_UM2: f64 = 550.0;
    /// Area of a constant multiplier (µm²).
    pub const CONST_MULT_AREA_UM2: f64 = 150.0;
    /// Area of a 32-bit adder (µm²).
    pub const ADDER_AREA_UM2: f64 = 70.0;
    /// Intermediate SRAM between the forward and backward processors
    /// (Figure 8), mm².
    pub const SRAM_AREA_MM2: f64 = 0.25;
    /// Slow-corner cells are synthesized smaller (relaxed timing): the
    /// Table 2 ratio 1.627/1.885.
    pub const SLOW_AREA_FACTOR: f64 = 0.863;

    /// Dynamic energy per multiplier per cycle (pJ).
    pub const MULT_ENERGY_PJ: f64 = 0.9;
    /// Dynamic energy per constant multiplier per cycle (pJ).
    pub const CONST_MULT_ENERGY_PJ: f64 = 0.2;
    /// Dynamic energy per adder per cycle (pJ).
    pub const ADDER_ENERGY_PJ: f64 = 0.15;
    /// Static power (W).
    pub const STATIC_POWER_W: f64 = 0.05;
    /// Slow-corner voltage/margin power factor (calibrated to Table 2).
    pub const SLOW_POWER_FACTOR: f64 = 1.32;
}

impl AsicPlatform {
    /// The slow process corner.
    pub fn slow() -> Self {
        Self {
            corner: Corner::Slow,
        }
    }

    /// The typical process corner.
    pub fn typical() -> Self {
        Self {
            corner: Corner::Typical,
        }
    }

    /// Maximum clock (Table 2: 250 MHz slow, 400 MHz typical).
    pub fn clock_hz(&self) -> f64 {
        match self.corner {
            Corner::Slow => 250e6,
            Corner::Typical => 400e6,
        }
    }

    /// Modeled silicon area of the accelerator's computational pipeline.
    pub fn area_mm2(&self, r: &ResourceEstimate) -> f64 {
        let logic_um2 = r.var_muls as f64 * asic_cost::MULT_AREA_UM2
            + r.const_muls as f64 * asic_cost::CONST_MULT_AREA_UM2
            + r.adds as f64 * asic_cost::ADDER_AREA_UM2;
        let total = logic_um2 / 1e6 + asic_cost::SRAM_AREA_MM2;
        match self.corner {
            Corner::Slow => total * asic_cost::SLOW_AREA_FACTOR,
            Corner::Typical => total,
        }
    }

    /// How many accelerator pipelines fit a die of `die_area_mm2` (§6.4:
    /// "a synthesized ASIC area of 1.9 mm² ... suggests many pipelines can
    /// fit on a chip. For example, Intel's 14 nm quad-core SkyLake
    /// processor is around 122 mm², nearly 65× our pipeline area").
    pub fn pipelines_per_die(&self, r: &ResourceEstimate, die_area_mm2: f64) -> usize {
        (die_area_mm2 / self.area_mm2(r)).floor() as usize
    }

    /// Modeled power at the corner's maximum clock.
    pub fn power_w(&self, r: &ResourceEstimate) -> f64 {
        let energy_pj = r.var_muls as f64 * asic_cost::MULT_ENERGY_PJ
            + r.const_muls as f64 * asic_cost::CONST_MULT_ENERGY_PJ
            + r.adds as f64 * asic_cost::ADDER_ENERGY_PJ;
        let dynamic = energy_pj * 1e-12 * self.clock_hz();
        let total = dynamic + asic_cost::STATIC_POWER_W;
        match self.corner {
            Corner::Slow => total * asic_cost::SLOW_POWER_FACTOR,
            Corner::Typical => total,
        }
    }
}

/// One row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Platform label.
    pub platform: String,
    /// Process corner label.
    pub corner: String,
    /// Technology node in nm.
    pub node_nm: u32,
    /// Maximum clock in MHz.
    pub max_clock_mhz: f64,
    /// Area in mm² (`None` for the FPGA).
    pub area_mm2: Option<f64>,
    /// Power in W.
    pub power_w: f64,
}

/// Generates the three Table 2 rows (FPGA, ASIC slow, ASIC typical) for a
/// customized accelerator.
pub fn table2_rows(accel: &Accelerator) -> Vec<Table2Row> {
    let fpga = FpgaPlatform::xcvu9p();
    let r = accel.resources();
    let mut rows = vec![Table2Row {
        platform: "FPGA".into(),
        corner: "Typical".into(),
        node_nm: 14,
        max_clock_mhz: fpga.clock_hz / 1e6,
        area_mm2: None,
        power_w: fpga.power_w,
    }];
    for asic in [AsicPlatform::slow(), AsicPlatform::typical()] {
        rows.push(Table2Row {
            platform: "Synthesized ASIC".into(),
            corner: match asic.corner {
                Corner::Slow => "Slow".into(),
                Corner::Typical => "Typical".into(),
            },
            node_nm: 12,
            max_clock_mhz: asic.clock_hz() / 1e6,
            area_mm2: Some(asic.area_mm2(&r)),
            power_w: asic.power_w(&r),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GradientTemplate;
    use robo_model::robots;

    fn iiwa_accel() -> Accelerator {
        GradientTemplate::new().customize(&robots::iiwa14())
    }

    #[test]
    fn fpga_fits_iiwa_design() {
        let accel = iiwa_accel();
        let fpga = FpgaPlatform::xcvu9p();
        let util = fpga.dsp_utilization(&accel.resources());
        assert!(fpga.fits(&accel.resources()));
        // The paper reports 77.5%; our structural count lands in the same
        // heavily-utilized band.
        assert!(
            (0.5..=1.0).contains(&util),
            "DSP utilization {util:.3} out of expected band"
        );
    }

    #[test]
    fn unfolded_design_does_not_fit() {
        use crate::template::Folding;
        let accel =
            GradientTemplate::with_folding(Folding::unfolded()).customize(&robots::iiwa14());
        assert!(
            !FpgaPlatform::xcvu9p().fits(&accel.resources()),
            "the paper: without aggressive folding the design is impossible on the FPGA"
        );
    }

    #[test]
    fn asic_clock_speedups_match_paper() {
        // Figure 14: 4.5× (slow) and 7.2× (typical) vs the 55.6 MHz FPGA.
        let fpga = FpgaPlatform::xcvu9p();
        assert!((AsicPlatform::slow().clock_hz() / fpga.clock_hz - 4.5).abs() < 0.05);
        assert!((AsicPlatform::typical().clock_hz() / fpga.clock_hz - 7.2).abs() < 0.01);
    }

    #[test]
    fn asic_area_in_table2_band() {
        let accel = iiwa_accel();
        let r = accel.resources();
        let typ = AsicPlatform::typical().area_mm2(&r);
        let slow = AsicPlatform::slow().area_mm2(&r);
        // Table 2: 1.885 mm² typical, 1.627 mm² slow (±25% modeling band).
        assert!((1.4..=2.4).contains(&typ), "typical area {typ:.3}");
        assert!(slow < typ);
    }

    #[test]
    fn asic_power_near_table2_and_below_fpga() {
        let accel = iiwa_accel();
        let r = accel.resources();
        let typ = AsicPlatform::typical().power_w(&r);
        let slow = AsicPlatform::slow().power_w(&r);
        assert!((0.7..=1.5).contains(&typ), "typical power {typ:.3}");
        assert!((0.6..=1.3).contains(&slow), "slow power {slow:.3}");
        // §6.4: ASIC power ~8.7× lower than FPGA.
        let ratio = FpgaPlatform::xcvu9p().power_w / typ;
        assert!(ratio > 5.0, "FPGA/ASIC power ratio {ratio:.1}");
    }

    #[test]
    fn skylake_die_fits_dozens_of_pipelines() {
        // §6.4's 65× comparison against a ~122 mm² SkyLake die.
        let accel = iiwa_accel();
        let count = AsicPlatform::typical().pipelines_per_die(&accel.resources(), 122.0);
        assert!(
            (50..=80).contains(&count),
            "expected ~65 pipelines, got {count}"
        );
    }

    #[test]
    fn table2_has_three_rows() {
        let rows = table2_rows(&iiwa_accel());
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].platform, "FPGA");
        assert!(rows[0].area_mm2.is_none());
        assert!(rows[2].area_mm2.is_some());
    }
}
