//! Functional units: the pruned multiplier–adder trees of the accelerator.
//!
//! §5.2: "the datapaths of the accelerator are built from chains of forward
//! and backward pass processing units. Within these units are circuits of
//! sparse matrix-vector multiplication functional units, e.g., the `I·`,
//! `X·`, and `·vⱼ` blocks". Each unit here records the hardware cost that
//! its pruned tree implementation would consume: *variable* multipliers
//! (DSP blocks on the FPGA), *constant* multipliers ("smaller and simpler
//! circuits than full multipliers"), and adders.

use robo_sparsity::{matvec_ops, Mask6};

/// The hardware cost of one functional unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalUnit {
    /// Unit name for reports (e.g. `"X·"`, `"I·"`).
    pub name: String,
    /// Full variable×variable multipliers (map to FPGA DSP blocks).
    pub var_muls: usize,
    /// Multiplications by per-robot constants (small dedicated circuits).
    pub const_muls: usize,
    /// Adders.
    pub adds: usize,
}

impl FunctionalUnit {
    /// The `X·` transform matrix–vector unit for a given (possibly
    /// superposed) sparsity mask.
    ///
    /// Matrix entries are runtime values formed from the `sin q`/`cos q`
    /// inputs: the dot-product tree multipliers are variable×variable, and
    /// forming each lower-left block entry (`±trig · translation`) takes one
    /// constant multiplier.
    pub fn x_matvec(mask: &Mask6) -> Self {
        let ops = matvec_ops(mask);
        // Lower-left block entries are trig × constant-translation products.
        let mut entry_const_muls = 0;
        for i in 3..6 {
            for j in 0..3 {
                if mask.m[i][j] {
                    entry_const_muls += 1;
                }
            }
        }
        Self {
            name: "X·".into(),
            var_muls: ops.muls,
            const_muls: entry_const_muls,
            adds: ops.adds,
        }
    }

    /// The `Xᵀ·` backward transform unit (same tree, transposed mask).
    pub fn xt_matvec(mask: &Mask6) -> Self {
        let mut t = Mask6::empty();
        for i in 0..6 {
            for j in 0..6 {
                t.m[i][j] = mask.m[j][i];
            }
        }
        let mut unit = Self::x_matvec(&t);
        unit.name = "Xᵀ·".into();
        unit
    }

    /// The `I·` link inertia unit: every entry is a per-robot constant
    /// (§5.2), so all multipliers are constant multipliers.
    pub fn inertia_matvec(mask: &Mask6) -> Self {
        let ops = matvec_ops(mask);
        Self {
            name: "I·".into(),
            var_muls: 0,
            const_muls: ops.muls,
            adds: ops.adds,
        }
    }

    /// A spatial motion cross product `v × m` (robot-agnostic sparsity:
    /// three 3-D cross products' worth of hardware).
    pub fn cross_motion() -> Self {
        Self {
            name: "v×".into(),
            var_muls: 18,
            const_muls: 0,
            adds: 12,
        }
    }

    /// A spatial force cross product `v ×* f` (same cost as `v ×`, §5.2's
    /// `fx·` units).
    pub fn cross_force() -> Self {
        Self {
            name: "v×*".into(),
            var_muls: 18,
            const_muls: 0,
            adds: 12,
        }
    }

    /// The `Sᵢ` motion-subspace selector: pure muxing, no arithmetic
    /// ("encoded ... by pruning or muxing operations", §5.2).
    pub fn subspace_select() -> Self {
        Self {
            name: "S-mux".into(),
            var_muls: 0,
            const_muls: 0,
            adds: 0,
        }
    }

    /// A 6-vector accumulator (three-term add used to combine unit outputs).
    pub fn accumulate6(terms: usize) -> Self {
        Self {
            name: "Σ6".into(),
            var_muls: 0,
            const_muls: 0,
            adds: 6 * terms.saturating_sub(1),
        }
    }

    /// A row of `n` variable multiply–accumulate lanes (used for the fused
    /// `−M⁻¹` multiplication in the backward pass, §5.2: "we supplement the
    /// multipliers of the backward pass units ... to perform the −M⁻¹
    /// multiplications in two clock cycles").
    pub fn mac_row(n: usize) -> Self {
        Self {
            name: "M⁻¹-MAC".into(),
            var_muls: n,
            const_muls: 0,
            adds: n.saturating_sub(1),
        }
    }
}

/// A tally of functional-unit costs across a processor or the whole design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceTally {
    /// Total variable multipliers.
    pub var_muls: usize,
    /// Total constant multipliers.
    pub const_muls: usize,
    /// Total adders.
    pub adds: usize,
}

impl ResourceTally {
    /// Adds `count` copies of a unit to the tally.
    pub fn add(&mut self, unit: &FunctionalUnit, count: usize) {
        self.var_muls += unit.var_muls * count;
        self.const_muls += unit.const_muls * count;
        self.adds += unit.adds * count;
    }

    /// Combines two tallies.
    pub fn merge(&mut self, other: ResourceTally) {
        self.var_muls += other.var_muls;
        self.const_muls += other.const_muls;
        self.adds += other.adds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;
    use robo_sparsity::{superposition_pattern, x_pattern};

    #[test]
    fn dense_x_unit_costs() {
        let u = FunctionalUnit::x_matvec(&Mask6::full());
        assert_eq!(u.var_muls, 36);
        assert_eq!(u.adds, 30);
        assert_eq!(u.const_muls, 9); // full lower-left block
    }

    #[test]
    fn pruned_x_unit_matches_section4() {
        let robot = robots::iiwa14();
        let u = FunctionalUnit::x_matvec(&x_pattern(&robot, 1));
        assert_eq!(u.var_muls, 13);
        assert_eq!(u.adds, 7);
    }

    #[test]
    fn transpose_unit_same_mul_count() {
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let fwd = FunctionalUnit::x_matvec(&mask);
        let bwd = FunctionalUnit::xt_matvec(&mask);
        assert_eq!(fwd.var_muls, bwd.var_muls); // transpose preserves nnz
    }

    #[test]
    fn inertia_unit_is_all_constant() {
        let robot = robots::iiwa14();
        let u = FunctionalUnit::inertia_matvec(&robo_sparsity::inertia_pattern(&robot, 2));
        assert_eq!(u.var_muls, 0);
        assert!(u.const_muls > 0);
    }

    #[test]
    fn tally_accumulates() {
        let mut t = ResourceTally::default();
        t.add(&FunctionalUnit::cross_motion(), 2);
        t.add(&FunctionalUnit::mac_row(7), 1);
        assert_eq!(t.var_muls, 36 + 7);
        assert_eq!(t.adds, 24 + 6);
    }
}
