//! Robomorphic computing: the paper's design methodology.
//!
//! "A methodology to transform robot morphology into a customized hardware
//! accelerator morphology" (§1). The two-step flow of Figure 5:
//!
//! 1. **Create a hardware template** once per algorithm —
//!    [`GradientTemplate`] encodes the dynamics-gradient accelerator of
//!    Figure 8: parallel per-link ∂/∂q and ∂/∂q̇ datapaths, a three-stage
//!    folded forward-pass processor, backward-pass processors with the
//!    fused `−M⁻¹` step, and the folding levels of §5.2.
//! 2. **Set the template parameters** per robot —
//!    [`GradientTemplate::customize`] extracts [`MorphologyParams`] (limbs,
//!    links, joint types, transform/inertia sparsity) and emits an
//!    [`Accelerator`]: pruned functional units ([`FunctionalUnit`]), a
//!    resource estimate, and a static [`CycleSchedule`].
//!
//! Platform bindings ([`FpgaPlatform`], [`AsicPlatform`]) turn cycle counts
//! into seconds and resource counts into DSP utilization, silicon area and
//! power, reproducing the paper's Table 2 and Figure 14. The companion
//! `robo-sim` crate *executes* a customized accelerator cycle-by-cycle in
//! fixed point.
//!
//! # Example
//!
//! ```
//! use robomorphic_core::{FpgaPlatform, GradientTemplate};
//! use robo_model::robots;
//!
//! // Step 1 (once per algorithm).
//! let template = GradientTemplate::new();
//! // Step 2 (once per robot).
//! let accel = template.customize(&robots::iiwa14());
//!
//! let fpga = FpgaPlatform::xcvu9p();
//! let latency_us = accel.single_latency_s(fpga.clock_hz) * 1e6;
//! assert!(latency_us < 1.0); // sub-microsecond single computation
//! assert!(fpga.fits(&accel.resources()));
//! ```

#![warn(missing_docs)]

mod accel;
mod kinematics;
mod platform;
mod template;
mod units;

pub use accel::{Accelerator, CycleSchedule, LatencyBreakdown, LimbPlan, ResourceEstimate};
pub use kinematics::{KinematicsAccelerator, KinematicsTemplate};
pub use platform::{table2_rows, AsicPlatform, Corner, FpgaPlatform, Table2Row};
pub use template::{Folding, GradientTemplate, MorphologyParams};
pub use units::{FunctionalUnit, ResourceTally};
