//! A second algorithm template: forward kinematics.
//!
//! §7: "for all of these additional robotics applications, a parameterized
//! template only needs to be created once per algorithm" — kinematics is
//! explicitly on the list, since it is "built upon the same
//! transformations ... that robomorphic computing maps into pruned sparse
//! linear algebra functional units". This module demonstrates the
//! methodology's algorithm-generality: a pose-composition template whose
//! per-link compose units are pruned by the same joint transform patterns
//! as the gradient accelerator's `X·` units.

use crate::accel::ResourceEstimate;
use crate::template::MorphologyParams;
use crate::units::ResourceTally;
use robo_model::RobotModel;
use robo_sparsity::Mask6;

/// The parameterized forward-kinematics template (step 1 for the
/// kinematics algorithm).
///
/// # Examples
///
/// ```
/// use robomorphic_core::KinematicsTemplate;
/// use robo_model::robots;
///
/// let accel = KinematicsTemplate::new().customize(&robots::hyq());
/// // Limb-parallel: latency tracks the longest limb (3), not 12 joints.
/// assert_eq!(accel.latency_cycles(), 3 + 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KinematicsTemplate {
    _private: (),
}

impl KinematicsTemplate {
    /// Creates the template.
    pub fn new() -> Self {
        Self::default()
    }

    /// Step 2: customizes the template for a robot.
    pub fn customize(&self, robot: &RobotModel) -> KinematicsAccelerator {
        let params = MorphologyParams::from_robot(robot);

        // Per-limb pose-composition processor: one folded compose unit,
        // pruned by the superposition of the limb's rotation blocks.
        // Compose cost: E_new = E_joint · E_acc (each live row of the
        // 3×3 rotation block costs 3 multipliers per output column) and
        // r_new = r_acc + E_jointᵀ r_local (9 multipliers dense).
        let rot_mask_rows = |mask: &Mask6| -> usize {
            let mut live = 0;
            for r in 0..3 {
                for c in 0..3 {
                    if mask.m[r][c] {
                        live += 1;
                    }
                }
            }
            live
        };
        let mut total = ResourceTally::default();
        for plan_len in &params.links_per_limb {
            let _ = plan_len;
            let live = rot_mask_rows(&params.x_superposition);
            // Rotation product: each live entry feeds 3 MACs; translation
            // update: 9 constant-ish multipliers (the local offsets are
            // per-robot constants) plus vector adds.
            total.var_muls += live * 3;
            total.const_muls += 9;
            total.adds += live * 2 + 9;
        }

        KinematicsAccelerator {
            robot_name: robot.name().to_owned(),
            params,
            resources: ResourceEstimate::from_tally(total),
        }
    }
}

/// A robot-customized forward-kinematics accelerator.
#[derive(Debug, Clone)]
pub struct KinematicsAccelerator {
    robot_name: String,
    params: MorphologyParams,
    resources: ResourceEstimate,
}

impl KinematicsAccelerator {
    /// Name of the robot this accelerator was customized for.
    pub fn robot_name(&self) -> &str {
        &self.robot_name
    }

    /// The extracted morphology parameters.
    pub fn params(&self) -> &MorphologyParams {
        &self.params
    }

    /// Resource estimate.
    pub fn resources(&self) -> ResourceEstimate {
        self.resources
    }

    /// Latency in cycles: one compose per link down the longest limb plus
    /// a fixed 2-cycle load/store epilogue (folded-unit register traffic,
    /// as in §5.2's folding discussion).
    pub fn latency_cycles(&self) -> usize {
        self.params.n_links_max + 2
    }

    /// Latency in seconds at a clock.
    pub fn latency_s(&self, clock_hz: f64) -> f64 {
        self.latency_cycles() as f64 / clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn kinematics_is_much_smaller_than_gradient() {
        // FK touches each transform once; the gradient runs 2N+1 datapaths.
        let robot = robots::iiwa14();
        let fk = KinematicsTemplate::new().customize(&robot);
        let grad = crate::GradientTemplate::new().customize(&robot);
        assert!(fk.resources().var_muls * 10 < grad.resources().var_muls);
        assert!(fk.latency_cycles() < grad.schedule().single_latency_cycles());
    }

    #[test]
    fn limb_parallel_latency() {
        let hyq = KinematicsTemplate::new().customize(&robots::hyq());
        let atlas = KinematicsTemplate::new().customize(&robots::atlas());
        assert_eq!(hyq.latency_cycles(), 5);
        assert_eq!(atlas.latency_cycles(), 9); // 7-link arms dominate
    }

    #[test]
    fn resources_scale_with_limb_count() {
        let iiwa = KinematicsTemplate::new().customize(&robots::iiwa14());
        let hyq = KinematicsTemplate::new().customize(&robots::hyq());
        // 4 limb processors vs 1.
        assert!(hyq.resources().var_muls > 3 * iiwa.resources().var_muls);
    }
}
