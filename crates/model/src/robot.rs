//! Kinematic trees: links, parents, placements, and limb decomposition.

use crate::JointType;
use robo_spatial::{Mat3, Scalar, SpatialInertia, Transform, Vec3};
use std::fmt;

/// Error raised when constructing an invalid robot model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A link's parent index does not precede it in topological order.
    BadParent {
        /// Index of the offending link.
        link: usize,
        /// The out-of-order parent index.
        parent: usize,
    },
    /// A link has a non-positive mass.
    BadMass {
        /// Index of the offending link.
        link: usize,
    },
    /// Two links share the same name.
    DuplicateName(String),
    /// The robot has no links.
    Empty,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::BadParent { link, parent } => {
                write!(f, "link {link} has parent {parent} not preceding it")
            }
            Self::BadMass { link } => write!(f, "link {link} has non-positive mass"),
            Self::DuplicateName(n) => write!(f, "duplicate link name `{n}`"),
            Self::Empty => write!(f, "robot model has no links"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Actuation and motion limits of a joint (URDF `<limit>`; all optional).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JointLimits {
    /// Lower position bound (rad or m).
    pub lower: Option<f64>,
    /// Upper position bound.
    pub upper: Option<f64>,
    /// Velocity magnitude bound.
    pub velocity: Option<f64>,
    /// Effort (torque/force) magnitude bound.
    pub effort: Option<f64>,
}

impl JointLimits {
    /// No limits.
    pub fn none() -> Self {
        Self::default()
    }

    /// Clamps a position into the limit interval (identity when unset).
    pub fn clamp_position(&self, q: f64) -> f64 {
        let mut out = q;
        if let Some(lo) = self.lower {
            out = out.max(lo);
        }
        if let Some(hi) = self.upper {
            out = out.min(hi);
        }
        out
    }

    /// Clamps an effort into `[-effort, effort]` (identity when unset).
    pub fn clamp_effort(&self, tau: f64) -> f64 {
        match self.effort {
            Some(e) => tau.clamp(-e, e),
            None => tau,
        }
    }
}

/// One rigid link of a robot, together with the joint connecting it to its
/// parent.
///
/// `tree` is the fixed transform `X_T` from the parent link frame to this
/// joint's zero-position frame; the full joint transform at position `q` is
/// `X = X_J(q) · X_T`. The link's inertial properties are expressed in the
/// link's own frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Human-readable link name (unique within a robot).
    pub name: String,
    /// Index of the parent link, or `None` when attached to the fixed base.
    pub parent: Option<usize>,
    /// The joint connecting this link to its parent.
    pub joint: JointType,
    /// Fixed tree placement `X_T` (parent frame → joint zero frame).
    pub tree: Transform<f64>,
    /// Spatial inertia of the link, in the link frame.
    pub inertia: SpatialInertia<f64>,
    /// Joint limits (optional; `JointLimits::none()` when unspecified).
    pub limits: JointLimits,
}

/// A maximal unbranching chain of links: one of the paper's `L` limbs of
/// `N` links each (§2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Limb {
    /// Indices of the links in the limb, base-most first.
    pub links: Vec<usize>,
}

impl Limb {
    /// Number of links `N` in the limb.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the limb is empty (never true for decomposed robots).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// A robot morphology: a topology of limbs, rigid links, and joints
/// (paper Figure 3).
///
/// Links are stored in topological order (every parent precedes its
/// children), which is the order the RNEA's forward pass visits them.
///
/// # Examples
///
/// ```
/// use robo_model::robots;
///
/// let robot = robots::iiwa14();
/// assert_eq!(robot.dof(), 7);
/// assert_eq!(robot.limbs().len(), 1); // a single-limb manipulator
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RobotModel {
    name: String,
    links: Vec<Link>,
}

impl RobotModel {
    /// Creates a robot model, validating the topology.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if links are out of topological order, a mass
    /// is non-positive, names collide, or the link list is empty.
    pub fn new(name: impl Into<String>, links: Vec<Link>) -> Result<Self, ModelError> {
        if links.is_empty() {
            return Err(ModelError::Empty);
        }
        let mut names = std::collections::HashSet::new();
        for (i, link) in links.iter().enumerate() {
            if let Some(p) = link.parent {
                if p >= i {
                    return Err(ModelError::BadParent { link: i, parent: p });
                }
            }
            if link.inertia.mass <= 0.0 {
                return Err(ModelError::BadMass { link: i });
            }
            if !names.insert(link.name.clone()) {
                return Err(ModelError::DuplicateName(link.name.clone()));
            }
        }
        Ok(Self {
            name: name.into(),
            links,
        })
    }

    /// The robot's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The links, in topological order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Number of links (= number of 1-DoF joints = degrees of freedom).
    pub fn dof(&self) -> usize {
        self.links.len()
    }

    /// Parent of link `i` (`None` for base-attached links).
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.links[i].parent
    }

    /// Children of each link, indexed by link; base-attached links appear in
    /// the extra last entry.
    pub fn children(&self) -> Vec<Vec<usize>> {
        let n = self.links.len();
        let mut out = vec![Vec::new(); n + 1];
        for (i, link) in self.links.iter().enumerate() {
            match link.parent {
                Some(p) => out[p].push(i),
                None => out[n].push(i),
            }
        }
        out
    }

    /// Decomposes the robot into limbs: maximal unbranching chains.
    ///
    /// A new limb starts at every base-attached link and at every child of a
    /// branching link. For a serial manipulator this returns one limb; for
    /// the quadruped it returns one limb per leg (§7: "4 parallel limb
    /// processors, each with 3 parallel datapaths").
    pub fn limbs(&self) -> Vec<Limb> {
        let children = self.children();
        let n = self.links.len();
        let mut roots: Vec<usize> = children[n].clone();
        for (i, ch) in children.iter().take(n).enumerate() {
            if ch.len() > 1 {
                roots.extend(ch.iter().copied());
            }
            let _ = i;
        }
        roots.sort_unstable();
        roots.dedup();
        let mut limbs = Vec::new();
        for root in roots {
            let mut chain = vec![root];
            let mut cur = root;
            while children[cur].len() == 1 {
                cur = children[cur][0];
                chain.push(cur);
            }
            limbs.push(Limb { links: chain });
        }
        limbs
    }

    /// The number of links in the longest limb (`N` in the paper's
    /// complexity analysis).
    pub fn max_limb_len(&self) -> usize {
        self.limbs().iter().map(Limb::len).max().unwrap_or(0)
    }

    /// The full joint transform `ᵢX_λᵢ = X_J(qᵢ) · X_T` for link `i` at
    /// joint position `q`.
    pub fn joint_transform<S: Scalar>(&self, i: usize, q: S) -> Transform<S> {
        let link = &self.links[i];
        link.joint
            .joint_transform(q)
            .compose(&link.tree.cast::<S>())
    }

    /// Same as [`RobotModel::joint_transform`] but from cached `sin q`,
    /// `cos q` — the accelerator's input form.
    pub fn joint_transform_sincos<S: Scalar>(&self, i: usize, sin_q: S, cos_q: S) -> Transform<S> {
        let link = &self.links[i];
        link.joint
            .joint_transform_sincos(sin_q, cos_q)
            .compose(&link.tree.cast::<S>())
    }

    /// Whether link `anc` is an ancestor of (or equal to) link `i`.
    pub fn is_ancestor(&self, anc: usize, i: usize) -> bool {
        let mut cur = Some(i);
        while let Some(c) = cur {
            if c == anc {
                return true;
            }
            cur = self.links[c].parent;
        }
        false
    }

    /// Total mass of the robot.
    pub fn total_mass(&self) -> f64 {
        self.links.iter().map(|l| l.inertia.mass).sum()
    }
}

/// Wraps a fixed-base robot with an emulated 6-DoF floating base: a
/// virtual chain of three prismatic (x, y, z) and three revolute (x, y, z)
/// joints carrying the given torso inertia, with the original robot's
/// base-attached links re-parented onto it.
///
/// This is the standard fixed-axis emulation of a free joint (exact
/// kinematics; the Euler-angle rotation chain is singular at ±90° pitch,
/// away from which all dynamics are valid). It lets the quadruped and
/// humanoid models run with the mobile base they have in reality, through
/// the same joint-space machinery the paper's accelerator targets.
///
/// The five leading virtual links carry a negligible (1 µg) bookkeeping
/// mass; the sixth carries `torso_inertia`.
///
/// # Examples
///
/// ```
/// use robo_model::{robots, with_floating_base};
/// use robo_spatial::{Mat3, SpatialInertia, Vec3};
///
/// let torso = SpatialInertia::from_com_params(
///     60.0,
///     Vec3::zero(),
///     Mat3::identity().scale(2.0),
/// );
/// let hyq = with_floating_base(&robots::hyq(), torso);
/// assert_eq!(hyq.dof(), 12 + 6);
/// ```
pub fn with_floating_base(robot: &RobotModel, torso_inertia: SpatialInertia<f64>) -> RobotModel {
    const VIRTUAL_MASS: f64 = 1e-9;
    let virtual_inertia = SpatialInertia::from_com_params(
        VIRTUAL_MASS,
        Vec3::zero(),
        Mat3::identity().scale(VIRTUAL_MASS),
    );
    let mut links = Vec::with_capacity(robot.dof() + 6);
    let base_joints = [
        ("base_tx", JointType::PrismaticX),
        ("base_ty", JointType::PrismaticY),
        ("base_tz", JointType::PrismaticZ),
        ("base_rx", JointType::RevoluteX),
        ("base_ry", JointType::RevoluteY),
        ("base_rz", JointType::RevoluteZ),
    ];
    for (i, (name, joint)) in base_joints.iter().enumerate() {
        links.push(Link {
            name: (*name).to_owned(),
            parent: if i == 0 { None } else { Some(i - 1) },
            joint: *joint,
            tree: Transform::identity(),
            inertia: if i == 5 {
                torso_inertia
            } else {
                virtual_inertia
            },
            limits: JointLimits::none(),
        });
    }
    for link in robot.links() {
        let mut l = link.clone();
        l.parent = Some(match l.parent {
            Some(p) => p + 6,
            None => 5,
        });
        links.push(l);
    }
    RobotModel::new(format!("{}_floating", robot.name()), links)
        .expect("floating-base wrapping preserves validity")
}

/// Incremental builder for [`RobotModel`] (see C-BUILDER).
///
/// # Examples
///
/// ```
/// use robo_model::{JointType, RobotBuilder};
/// use robo_spatial::Vec3;
///
/// let robot = RobotBuilder::new("two_link")
///     .link("shoulder", None, JointType::RevoluteZ)
///     .placement_translation(Vec3::new(0.0, 0.0, 0.3))
///     .uniform_rod_inertia(2.0, 0.4)
///     .link("elbow", Some(0), JointType::RevoluteY)
///     .placement_translation(Vec3::new(0.0, 0.0, 0.4))
///     .uniform_rod_inertia(1.0, 0.3)
///     .build()
///     .expect("valid robot");
/// assert_eq!(robot.dof(), 2);
/// ```
#[derive(Debug)]
pub struct RobotBuilder {
    name: String,
    links: Vec<Link>,
}

impl RobotBuilder {
    /// Starts a new robot with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            links: Vec::new(),
        }
    }

    /// Index that the next added link will receive.
    pub fn next_index(&self) -> usize {
        self.links.len()
    }

    /// Adds a link attached to `parent` by a joint of the given type, with
    /// identity placement and a default unit point-mass inertia. Follow with
    /// placement and inertia setters to refine it.
    pub fn link(
        mut self,
        name: impl Into<String>,
        parent: Option<usize>,
        joint: JointType,
    ) -> Self {
        self.links.push(Link {
            name: name.into(),
            parent,
            joint,
            tree: Transform::identity(),
            inertia: SpatialInertia::from_com_params(
                1.0,
                Vec3::zero(),
                Mat3::identity().scale(0.01),
            ),
            limits: JointLimits::none(),
        });
        self
    }

    /// Sets the tree placement of the most recently added link.
    ///
    /// # Panics
    ///
    /// Panics if no link has been added yet.
    pub fn placement(mut self, tree: Transform<f64>) -> Self {
        self.last().tree = tree;
        self
    }

    /// Sets a pure-translation placement for the most recent link.
    pub fn placement_translation(self, pos: Vec3<f64>) -> Self {
        self.placement(Transform::translation(pos))
    }

    /// Sets a placement that rotates by `deg` degrees about the parent's
    /// x-axis then translates by `pos` (the iiwa-style alternating pattern).
    pub fn placement_rot_x_deg(self, deg: f64, pos: Vec3<f64>) -> Self {
        let rot = Mat3::coord_rotation_x(deg.to_radians());
        self.placement(Transform::new(rot, pos))
    }

    /// Sets the inertia of the most recent link from mass, COM, and inertia
    /// about the COM.
    pub fn inertia(mut self, mass: f64, com: Vec3<f64>, inertia_about_com: Mat3<f64>) -> Self {
        self.last().inertia = SpatialInertia::from_com_params(mass, com, inertia_about_com);
        self
    }

    /// Sets the joint limits of the most recent link.
    pub fn limits(mut self, limits: JointLimits) -> Self {
        self.last().limits = limits;
        self
    }

    /// Convenience inertia: a uniform rod of the given mass and length
    /// extending along the link's z-axis.
    pub fn uniform_rod_inertia(self, mass: f64, length: f64) -> Self {
        let i = mass * length * length / 12.0;
        let com = Vec3::new(0.0, 0.0, length / 2.0);
        let about_com = Mat3::from_rows([i, 0.0, 0.0], [0.0, i, 0.0], [0.0, 0.0, i * 0.02]);
        self.inertia(mass, com, about_com)
    }

    fn last(&mut self) -> &mut Link {
        self.links.last_mut().expect("no link added yet")
    }

    /// Finalizes the model.
    ///
    /// # Errors
    ///
    /// See [`RobotModel::new`].
    pub fn build(self) -> Result<RobotModel, ModelError> {
        RobotModel::new(self.name, self.links)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> RobotModel {
        let mut b = RobotBuilder::new("chain");
        for i in 0..n {
            let parent = if i == 0 { None } else { Some(i - 1) };
            b = b
                .link(format!("l{i}"), parent, JointType::RevoluteZ)
                .placement_translation(Vec3::new(0.0, 0.0, 0.2))
                .uniform_rod_inertia(1.0, 0.2);
        }
        b.build().unwrap()
    }

    #[test]
    fn chain_is_single_limb() {
        let r = chain(5);
        let limbs = r.limbs();
        assert_eq!(limbs.len(), 1);
        assert_eq!(limbs[0].links, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.max_limb_len(), 5);
    }

    #[test]
    fn branching_splits_limbs() {
        // A torso with two 2-link legs: 1 + 2 + 2 links.
        let r = RobotBuilder::new("biped")
            .link("torso", None, JointType::RevoluteZ)
            .uniform_rod_inertia(10.0, 0.5)
            .link("l_hip", Some(0), JointType::RevoluteX)
            .uniform_rod_inertia(2.0, 0.3)
            .link("l_knee", Some(1), JointType::RevoluteX)
            .uniform_rod_inertia(1.0, 0.3)
            .link("r_hip", Some(0), JointType::RevoluteX)
            .uniform_rod_inertia(2.0, 0.3)
            .link("r_knee", Some(3), JointType::RevoluteX)
            .uniform_rod_inertia(1.0, 0.3)
            .build()
            .unwrap();
        let limbs = r.limbs();
        assert_eq!(limbs.len(), 3); // torso, left leg, right leg
        assert_eq!(limbs[0].links, vec![0]);
        assert_eq!(limbs[1].links, vec![1, 2]);
        assert_eq!(limbs[2].links, vec![3, 4]);
    }

    #[test]
    fn validation_rejects_bad_parent() {
        let link = Link {
            name: "a".into(),
            parent: Some(0), // self-parent at index 0
            joint: JointType::RevoluteZ,
            tree: Transform::identity(),
            inertia: SpatialInertia::from_com_params(1.0, Vec3::zero(), Mat3::identity()),
            limits: JointLimits::none(),
        };
        assert_eq!(
            RobotModel::new("bad", vec![link]).unwrap_err(),
            ModelError::BadParent { link: 0, parent: 0 }
        );
    }

    #[test]
    fn validation_rejects_duplicates_and_empty() {
        assert_eq!(RobotModel::new("e", vec![]).unwrap_err(), ModelError::Empty);
        let mk = |name: &str| Link {
            name: name.into(),
            parent: None,
            joint: JointType::RevoluteZ,
            tree: Transform::identity(),
            inertia: SpatialInertia::from_com_params(1.0, Vec3::zero(), Mat3::identity()),
            limits: JointLimits::none(),
        };
        assert_eq!(
            RobotModel::new("d", vec![mk("x"), mk("x")]).unwrap_err(),
            ModelError::DuplicateName("x".into())
        );
    }

    #[test]
    fn ancestor_relation() {
        let r = chain(4);
        assert!(r.is_ancestor(0, 3));
        assert!(r.is_ancestor(2, 2));
        assert!(!r.is_ancestor(3, 0));
    }

    #[test]
    fn joint_transform_composes_tree_and_joint() {
        let r = chain(2);
        let x = r.joint_transform::<f64>(1, 0.0);
        // At q = 0 the joint rotation is identity, leaving only the tree
        // translation.
        assert_eq!(x.pos, Vec3::new(0.0, 0.0, 0.2));
        assert_eq!(x.rot, Mat3::identity());
    }

    #[test]
    fn total_mass_adds_up() {
        let r = chain(3);
        assert!((r.total_mass() - 3.0).abs() < 1e-12);
    }
}
