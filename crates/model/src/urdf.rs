//! A URDF subset parser.
//!
//! §7: "the necessary parameters are already parsed and extracted from
//! robot description files by existing robot dynamics software libraries".
//! URDF is the de-facto description format, so this module reads the
//! subset that defines morphology and inertial parameters — `<robot>`,
//! `<link><inertial>`, `<joint>` with `revolute`/`continuous`/`prismatic`/
//! `fixed` types, `<origin xyz rpy>`, `<axis>`, `<parent>`, `<child>` —
//! with a small hand-rolled XML reader (no external dependencies).
//!
//! Supported subset and policies:
//!
//! * joint axes must be aligned with ±x/±y/±z (the paper's joint model);
//!   a negative axis flips the placement rotation so the motion subspace
//!   stays a `+1` selector;
//! * `fixed` joints are merged: the child's inertia is transformed into
//!   the parent frame and lumped (mass-preserving), and grandchildren are
//!   re-parented across the weld;
//! * visual/collision/geometry/transmission elements are ignored.

use crate::{JointLimits, JointType, Link, ModelError, RobotModel};
use robo_spatial::{Mat3, SpatialInertia, Transform, Vec3};
use std::collections::HashMap;
use std::fmt;

/// Error from parsing a URDF document.
#[derive(Debug, Clone, PartialEq)]
pub enum UrdfError {
    /// Malformed XML or a missing required attribute.
    Xml(String),
    /// The document uses URDF features outside the supported subset.
    Unsupported(String),
    /// The kinematic structure is inconsistent (unknown links, cycles, no
    /// root).
    Structure(String),
    /// The assembled robot failed model validation.
    Model(ModelError),
}

impl fmt::Display for UrdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Xml(m) => write!(f, "xml: {m}"),
            Self::Unsupported(m) => write!(f, "unsupported: {m}"),
            Self::Structure(m) => write!(f, "structure: {m}"),
            Self::Model(e) => write!(f, "invalid robot: {e}"),
        }
    }
}

impl std::error::Error for UrdfError {}

impl From<ModelError> for UrdfError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

// --- Minimal XML reader ----------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum XmlEvent {
    Open {
        name: String,
        attrs: HashMap<String, String>,
        self_closing: bool,
    },
    Close(String),
}

fn xml_events(text: &str) -> Result<Vec<XmlEvent>, UrdfError> {
    let mut events = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        // Comments and declarations.
        if text[i..].starts_with("<!--") {
            match text[i..].find("-->") {
                Some(end) => {
                    i += end + 3;
                    continue;
                }
                None => return Err(UrdfError::Xml("unterminated comment".into())),
            }
        }
        if text[i..].starts_with("<?") {
            match text[i..].find("?>") {
                Some(end) => {
                    i += end + 2;
                    continue;
                }
                None => return Err(UrdfError::Xml("unterminated declaration".into())),
            }
        }
        let end = text[i..]
            .find('>')
            .ok_or_else(|| UrdfError::Xml("unterminated tag".into()))?;
        let raw = &text[i + 1..i + end];
        i += end + 1;

        if let Some(name) = raw.strip_prefix('/') {
            events.push(XmlEvent::Close(name.trim().to_owned()));
            continue;
        }
        let self_closing = raw.ends_with('/');
        let raw = raw.trim_end_matches('/').trim();
        let mut parts = raw.splitn(2, char::is_whitespace);
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| UrdfError::Xml("empty tag".into()))?
            .to_owned();
        let mut attrs = HashMap::new();
        if let Some(rest) = parts.next() {
            let mut rest = rest.trim();
            while !rest.is_empty() {
                let eq = rest
                    .find('=')
                    .ok_or_else(|| UrdfError::Xml(format!("bad attribute in <{name}>")))?;
                let key = rest[..eq].trim().to_owned();
                let after = rest[eq + 1..].trim_start();
                let quote = after
                    .chars()
                    .next()
                    .filter(|c| *c == '"' || *c == '\'')
                    .ok_or_else(|| UrdfError::Xml(format!("unquoted attribute `{key}`")))?;
                let close = after[1..]
                    .find(quote)
                    .ok_or_else(|| UrdfError::Xml(format!("unterminated attribute `{key}`")))?;
                attrs.insert(key, after[1..1 + close].to_owned());
                rest = after[close + 2..].trim_start();
            }
        }
        events.push(XmlEvent::Open {
            name,
            attrs,
            self_closing,
        });
    }
    Ok(events)
}

fn parse_triple(s: &str, what: &str) -> Result<[f64; 3], UrdfError> {
    let vals: Result<Vec<f64>, _> = s.split_whitespace().map(str::parse).collect();
    let vals = vals.map_err(|e| UrdfError::Xml(format!("bad {what} `{s}`: {e}")))?;
    if vals.len() != 3 {
        return Err(UrdfError::Xml(format!("{what} needs 3 numbers, got `{s}`")));
    }
    Ok([vals[0], vals[1], vals[2]])
}

/// URDF rpy → the *coordinate* rotation of our Transform: URDF gives the
/// child-to-parent rotation `R = Rz(y)·Ry(p)·Rx(r)`; we store `E = Rᵀ`.
fn rpy_to_coord_rotation(rpy: [f64; 3]) -> Mat3<f64> {
    Mat3::coord_rotation_x(rpy[0]) * Mat3::coord_rotation_y(rpy[1]) * Mat3::coord_rotation_z(rpy[2])
}

// --- Intermediate URDF structures -------------------------------------------

#[derive(Debug, Clone, Default)]
struct UrdfLink {
    mass: f64,
    com: [f64; 3],
    inertia_origin_rpy: [f64; 3],
    inertia: [f64; 6], // ixx iyy izz ixy ixz iyz
}

#[derive(Debug, Clone)]
struct UrdfJoint {
    name: String,
    joint_type: String,
    parent: String,
    child: String,
    origin_xyz: [f64; 3],
    origin_rpy: [f64; 3],
    axis: [f64; 3],
    limits: JointLimits,
}

/// Parses a URDF document (the supported subset; see the module docs).
///
/// # Errors
///
/// Returns [`UrdfError`] on malformed XML, unsupported features (e.g.
/// oblique joint axes, floating joints), inconsistent structure, or an
/// invalid assembled model.
pub fn parse_urdf(text: &str) -> Result<RobotModel, UrdfError> {
    let events = xml_events(text)?;

    let mut robot_name = "robot".to_owned();
    let mut links: HashMap<String, UrdfLink> = HashMap::new();
    let mut link_order: Vec<String> = Vec::new();
    let mut joints: Vec<UrdfJoint> = Vec::new();

    let mut cur_link: Option<String> = None;
    let mut in_inertial = false;
    let mut cur_joint: Option<UrdfJoint> = None;

    for ev in &events {
        match ev {
            XmlEvent::Open {
                name,
                attrs,
                self_closing,
            } => match name.as_str() {
                "robot" => {
                    if let Some(n) = attrs.get("name") {
                        robot_name = n.clone();
                    }
                }
                "link" => {
                    let n = attrs
                        .get("name")
                        .ok_or_else(|| UrdfError::Xml("link without name".into()))?
                        .clone();
                    links.insert(n.clone(), UrdfLink::default());
                    link_order.push(n.clone());
                    if !self_closing {
                        cur_link = Some(n);
                    }
                }
                "inertial" => in_inertial = cur_link.is_some(),
                "origin" => {
                    let xyz = attrs
                        .get("xyz")
                        .map(|s| parse_triple(s, "xyz"))
                        .transpose()?
                        .unwrap_or([0.0; 3]);
                    let rpy = attrs
                        .get("rpy")
                        .map(|s| parse_triple(s, "rpy"))
                        .transpose()?
                        .unwrap_or([0.0; 3]);
                    if let Some(j) = cur_joint.as_mut() {
                        j.origin_xyz = xyz;
                        j.origin_rpy = rpy;
                    } else if in_inertial {
                        let link = cur_link.as_ref().expect("in a link");
                        let l = links.get_mut(link).expect("current link exists");
                        l.com = xyz;
                        l.inertia_origin_rpy = rpy;
                    }
                }
                "mass" if in_inertial => {
                    let v = attrs
                        .get("value")
                        .ok_or_else(|| UrdfError::Xml("mass without value".into()))?
                        .parse::<f64>()
                        .map_err(|e| UrdfError::Xml(format!("bad mass: {e}")))?;
                    let link = cur_link.as_ref().expect("in a link");
                    links.get_mut(link).expect("current link exists").mass = v;
                }
                "inertia" if in_inertial => {
                    let get = |k: &str| -> Result<f64, UrdfError> {
                        attrs
                            .get(k)
                            .map(|s| {
                                s.parse::<f64>()
                                    .map_err(|e| UrdfError::Xml(format!("bad {k}: {e}")))
                            })
                            .transpose()
                            .map(|v| v.unwrap_or(0.0))
                    };
                    let link = cur_link.as_ref().expect("in a link");
                    links.get_mut(link).expect("current link exists").inertia = [
                        get("ixx")?,
                        get("iyy")?,
                        get("izz")?,
                        get("ixy")?,
                        get("ixz")?,
                        get("iyz")?,
                    ];
                }
                "joint" => {
                    // Transmissions also contain <joint/>; only track real
                    // joints (they carry a type attribute).
                    if let Some(t) = attrs.get("type") {
                        cur_joint = Some(UrdfJoint {
                            name: attrs.get("name").cloned().unwrap_or_default(),
                            joint_type: t.clone(),
                            parent: String::new(),
                            child: String::new(),
                            origin_xyz: [0.0; 3],
                            origin_rpy: [0.0; 3],
                            axis: [0.0, 0.0, 1.0],
                            limits: JointLimits::none(),
                        });
                        if *self_closing {
                            cur_joint = None;
                        }
                    }
                }
                "parent" => {
                    if let (Some(j), Some(l)) = (cur_joint.as_mut(), attrs.get("link")) {
                        j.parent = l.clone();
                    }
                }
                "child" => {
                    if let (Some(j), Some(l)) = (cur_joint.as_mut(), attrs.get("link")) {
                        j.child = l.clone();
                    }
                }
                "axis" => {
                    if let (Some(j), Some(s)) = (cur_joint.as_mut(), attrs.get("xyz")) {
                        j.axis = parse_triple(s, "axis")?;
                    }
                }
                "limit" => {
                    if let Some(j) = cur_joint.as_mut() {
                        let get = |k: &str| -> Result<Option<f64>, UrdfError> {
                            attrs
                                .get(k)
                                .map(|s| {
                                    s.parse::<f64>()
                                        .map_err(|e| UrdfError::Xml(format!("bad {k}: {e}")))
                                })
                                .transpose()
                        };
                        j.limits = JointLimits {
                            lower: get("lower")?,
                            upper: get("upper")?,
                            velocity: get("velocity")?,
                            effort: get("effort")?,
                        };
                    }
                }
                _ => {}
            },
            XmlEvent::Close(name) => match name.as_str() {
                "link" => cur_link = None,
                "inertial" => in_inertial = false,
                "joint" => {
                    if let Some(j) = cur_joint.take() {
                        joints.push(j);
                    }
                }
                _ => {}
            },
        }
    }

    assemble(robot_name, &links, &link_order, joints)
}

fn axis_joint_type(
    axis: [f64; 3],
    revolute: bool,
    name: &str,
) -> Result<(JointType, f64), UrdfError> {
    const TOL: f64 = 1e-9;
    let mut major = None;
    for (i, v) in axis.iter().enumerate() {
        if v.abs() > TOL {
            if major.is_some() {
                return Err(UrdfError::Unsupported(format!(
                    "joint `{name}` has an oblique axis {axis:?}; only ±x/±y/±z are supported"
                )));
            }
            major = Some((i, *v));
        }
    }
    let (idx, v) =
        major.ok_or_else(|| UrdfError::Unsupported(format!("joint `{name}` has a zero axis")))?;
    if (v.abs() - 1.0).abs() > 1e-6 {
        return Err(UrdfError::Unsupported(format!(
            "joint `{name}` axis must be unit length, got {axis:?}"
        )));
    }
    let jt = match (idx, revolute) {
        (0, true) => JointType::RevoluteX,
        (1, true) => JointType::RevoluteY,
        (2, true) => JointType::RevoluteZ,
        (0, false) => JointType::PrismaticX,
        (1, false) => JointType::PrismaticY,
        (2, false) => JointType::PrismaticZ,
        _ => unreachable!(),
    };
    Ok((jt, v.signum()))
}

fn assemble(
    name: String,
    links: &HashMap<String, UrdfLink>,
    link_order: &[String],
    joints: Vec<UrdfJoint>,
) -> Result<RobotModel, UrdfError> {
    // Root = the link that is never a joint child.
    let children: std::collections::HashSet<&str> =
        joints.iter().map(|j| j.child.as_str()).collect();
    let root = link_order
        .iter()
        .find(|l| !children.contains(l.as_str()))
        .ok_or_else(|| UrdfError::Structure("no root link (cycle?)".into()))?
        .clone();
    for j in &joints {
        if !links.contains_key(&j.parent) || !links.contains_key(&j.child) {
            return Err(UrdfError::Structure(format!(
                "joint `{}` references unknown links",
                j.name
            )));
        }
    }

    // Walk the tree from the root, merging fixed joints and emitting model
    // links in topological order.
    let mut by_parent: HashMap<&str, Vec<&UrdfJoint>> = HashMap::new();
    for j in &joints {
        by_parent.entry(j.parent.as_str()).or_default().push(j);
    }

    struct Pending<'a> {
        joint: &'a UrdfJoint,
        /// Extra transform accumulated across merged fixed joints
        /// (frame of the pending joint's parent link ← model parent frame).
        prefix: Transform<f64>,
        model_parent: Option<usize>,
    }

    let mut out: Vec<Link> = Vec::new();
    let mut extra_inertia: Vec<SpatialInertia<f64>> = Vec::new();
    let mut stack: Vec<Pending> = by_parent
        .get(root.as_str())
        .map(|js| {
            js.iter()
                .map(|j| Pending {
                    joint: j,
                    prefix: Transform::identity(),
                    model_parent: None,
                })
                .collect()
        })
        .unwrap_or_default();

    while let Some(p) = stack.pop() {
        let j = p.joint;
        let origin = Transform::new(rpy_to_coord_rotation(j.origin_rpy), {
            let [x, y, z] = j.origin_xyz;
            Vec3::new(x, y, z)
        });
        // Full placement: this joint's origin composed after any merged
        // fixed-joint prefix.
        let tree = origin.compose(&p.prefix);
        let child_urdf = &links[&j.child];
        let inertia = urdf_inertia(child_urdf);

        match j.joint_type.as_str() {
            "revolute" | "continuous" | "prismatic" => {
                let revolute = j.joint_type != "prismatic";
                let (jt, sign) = axis_joint_type(j.axis, revolute, &j.name)?;
                // A negative axis is equivalent to the positive axis with
                // the joint frame flipped 180° about one of the other axes.
                let tree = if sign < 0.0 {
                    let flip = match jt.axis() {
                        crate::Axis::X => Mat3::coord_rotation_y(std::f64::consts::PI),
                        crate::Axis::Y | crate::Axis::Z => {
                            Mat3::coord_rotation_x(std::f64::consts::PI)
                        }
                    };
                    Transform::rotation(flip).compose(&tree)
                } else {
                    tree
                };
                // The flip also rotates the child frame; re-express the
                // child inertia in the flipped frame.
                let inertia = if sign < 0.0 {
                    let flip = match jt.axis() {
                        crate::Axis::X => Mat3::coord_rotation_y(std::f64::consts::PI),
                        crate::Axis::Y | crate::Axis::Z => {
                            Mat3::coord_rotation_x(std::f64::consts::PI)
                        }
                    };
                    // I in flipped coords: transform by the pure rotation
                    // (child-from-flipped is the inverse rotation).
                    inertia.transformed_to_parent(&Transform::rotation(flip.transpose()))
                } else {
                    inertia
                };
                let idx = out.len();
                out.push(Link {
                    name: j.child.clone(),
                    parent: p.model_parent,
                    joint: jt,
                    tree,
                    inertia,
                    limits: j.limits,
                });
                extra_inertia.push(SpatialInertia::zero());
                if let Some(js) = by_parent.get(j.child.as_str()) {
                    for cj in js {
                        stack.push(Pending {
                            joint: cj,
                            prefix: Transform::identity(),
                            model_parent: Some(idx),
                        });
                    }
                }
            }
            "fixed" => {
                // Weld: lump the child inertia into the model parent (or
                // drop it for base-side welds) and pass the accumulated
                // transform through to grandchildren.
                if let Some(parent_idx) = p.model_parent {
                    extra_inertia[parent_idx] =
                        extra_inertia[parent_idx] + inertia.transformed_to_parent(&tree);
                }
                if let Some(js) = by_parent.get(j.child.as_str()) {
                    for cj in js {
                        stack.push(Pending {
                            joint: cj,
                            prefix: tree,
                            model_parent: p.model_parent,
                        });
                    }
                }
            }
            other => {
                return Err(UrdfError::Unsupported(format!(
                    "joint `{}` has unsupported type `{other}`",
                    j.name
                )))
            }
        }
    }

    // Apply lumped inertias from welded children.
    for (link, extra) in out.iter_mut().zip(extra_inertia) {
        link.inertia = link.inertia + extra;
    }

    Ok(RobotModel::new(name, out)?)
}

fn urdf_inertia(l: &UrdfLink) -> SpatialInertia<f64> {
    let [ixx, iyy, izz, ixy, ixz, iyz] = l.inertia;
    let i_com_local = Mat3::from_rows([ixx, ixy, ixz], [ixy, iyy, iyz], [ixz, iyz, izz]);
    // URDF inertia is about the COM in the *inertial frame*; rotate it into
    // the link frame: I_link = R I R^T with R = child-to-parent of the
    // inertial origin.
    let e = rpy_to_coord_rotation(l.inertia_origin_rpy); // link→inertial coords
    let i_com = e.transpose() * i_com_local * e;
    SpatialInertia::from_com_params(l.mass, Vec3::new(l.com[0], l.com[1], l.com[2]), i_com)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::to_robo;

    const MINI_URDF: &str = r#"<?xml version="1.0"?>
<!-- a 2-dof arm on a welded pedestal -->
<robot name="mini_arm">
  <link name="world_base"/>
  <link name="pedestal">
    <inertial>
      <origin xyz="0 0 0.1"/>
      <mass value="4.0"/>
      <inertia ixx="0.05" iyy="0.05" izz="0.02"/>
    </inertial>
  </link>
  <link name="upper">
    <inertial>
      <origin xyz="0 0 0.2" rpy="0 0 0"/>
      <mass value="2.0"/>
      <inertia ixx="0.03" iyy="0.03" izz="0.005"/>
    </inertial>
  </link>
  <link name="fore">
    <inertial>
      <origin xyz="0 0 0.15"/>
      <mass value="1.0"/>
      <inertia ixx="0.01" iyy="0.01" izz="0.002"/>
    </inertial>
  </link>
  <joint name="weld" type="fixed">
    <parent link="world_base"/>
    <child link="pedestal"/>
    <origin xyz="0 0 0.05"/>
  </joint>
  <joint name="shoulder" type="revolute">
    <parent link="pedestal"/>
    <child link="upper"/>
    <origin xyz="0 0 0.2" rpy="1.5707963267948966 0 0"/>
    <axis xyz="0 0 1"/>
    <limit lower="-2.9" upper="2.9" velocity="1.7" effort="176"/>
  </joint>
  <joint name="elbow" type="continuous">
    <parent link="upper"/>
    <child link="fore"/>
    <origin xyz="0 0 0.4"/>
    <axis xyz="0 1 0"/>
  </joint>
</robot>
"#;

    #[test]
    fn parses_mini_arm() {
        let robot = parse_urdf(MINI_URDF).expect("valid URDF subset");
        assert_eq!(robot.name(), "mini_arm");
        assert_eq!(robot.dof(), 2);
        let names: Vec<&str> = robot.links().iter().map(|l| l.name.as_str()).collect();
        assert_eq!(names, vec!["upper", "fore"]);
        assert_eq!(robot.links()[0].joint, JointType::RevoluteZ);
        assert_eq!(robot.links()[1].joint, JointType::RevoluteY);
        // The weld's 0.05 offset composes into the shoulder placement:
        // shoulder origin at z = 0.05 + 0.2.
        assert!((robot.links()[0].tree.pos.z - 0.25).abs() < 1e-12);
        // <limit> attributes flow through.
        assert_eq!(robot.links()[0].limits.effort, Some(176.0));
        assert_eq!(robot.links()[0].limits.lower, Some(-2.9));
        assert_eq!(robot.links()[1].limits, JointLimits::none());
    }

    #[test]
    fn fixed_joint_merges_inertia() {
        // The pedestal welds into... the base here, so its inertia is
        // dropped; rebuild with the weld *after* a joint to check lumping.
        let urdf = r#"
<robot name="lump">
  <link name="base"/>
  <link name="arm">
    <inertial><origin xyz="0 0 0.1"/><mass value="2.0"/>
      <inertia ixx="0.02" iyy="0.02" izz="0.004"/></inertial>
  </link>
  <link name="tool">
    <inertial><origin xyz="0 0 0.05"/><mass value="0.5"/>
      <inertia ixx="0.001" iyy="0.001" izz="0.0005"/></inertial>
  </link>
  <joint name="j1" type="revolute">
    <parent link="base"/><child link="arm"/>
    <origin xyz="0 0 0.1"/><axis xyz="0 0 1"/>
  </joint>
  <joint name="mount" type="fixed">
    <parent link="arm"/><child link="tool"/>
    <origin xyz="0 0 0.3"/>
  </joint>
</robot>
"#;
        let robot = parse_urdf(urdf).expect("valid");
        assert_eq!(robot.dof(), 1);
        // Lumped mass = arm + tool.
        assert!((robot.links()[0].inertia.mass - 2.5).abs() < 1e-12);
        // Tool COM at 0.3 + 0.05 shifts the combined h upward.
        let h = robot.links()[0].inertia.h;
        let expected_hz = 2.0 * 0.1 + 0.5 * 0.35;
        assert!((h.z - expected_hz).abs() < 1e-9, "h.z = {}", h.z);
    }

    #[test]
    fn negative_axis_is_flipped_consistently() {
        let make = |axis: &str| {
            let urdf = format!(
                r#"<robot name="f"><link name="b"/><link name="l">
                <inertial><origin xyz="0 0.1 0"/><mass value="1.0"/>
                <inertia ixx="0.01" iyy="0.01" izz="0.01"/></inertial></link>
                <joint name="j" type="revolute"><parent link="b"/><child link="l"/>
                <origin xyz="0 0 0.2"/><axis xyz="{axis}"/></joint></robot>"#
            );
            parse_urdf(&urdf).expect("valid")
        };
        let pos = make("0 0 1");
        let neg = make("0 0 -1");
        assert_eq!(neg.links()[0].joint, JointType::RevoluteZ);
        // Rotating about −z by q is rotating about +z by −q, seen through
        // the constant 180° x-flip F the parser inserts:
        // X_neg(q).rot = F · X_pos(−q).rot (exact conjugation identity).
        for q in [0.0, 0.4, -1.3] {
            let f = Mat3::coord_rotation_x(std::f64::consts::PI);
            let lhs = neg.joint_transform::<f64>(0, q).rot;
            let rhs = f * pos.joint_transform::<f64>(0, -q).rot;
            assert!((lhs - rhs).max_abs() < 1e-12, "q = {q}");
        }
    }

    #[test]
    fn rejects_oblique_axis() {
        let urdf = r#"<robot name="o"><link name="b"/><link name="l">
          <inertial><mass value="1"/><inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
          <joint name="j" type="revolute"><parent link="b"/><child link="l"/>
          <axis xyz="0.707 0.707 0"/></joint></robot>"#;
        assert!(matches!(parse_urdf(urdf), Err(UrdfError::Unsupported(_))));
    }

    #[test]
    fn rejects_unknown_joint_type() {
        let urdf = r#"<robot name="o"><link name="b"/><link name="l">
          <inertial><mass value="1"/><inertia ixx="0.1" iyy="0.1" izz="0.1"/></inertial></link>
          <joint name="j" type="floating"><parent link="b"/><child link="l"/></joint></robot>"#;
        assert!(matches!(parse_urdf(urdf), Err(UrdfError::Unsupported(_))));
    }

    #[test]
    fn rejects_cycles() {
        let urdf = r#"<robot name="c"><link name="a"/><link name="b"/>
          <joint name="j1" type="revolute"><parent link="a"/><child link="b"/><axis xyz="0 0 1"/></joint>
          <joint name="j2" type="revolute"><parent link="b"/><child link="a"/><axis xyz="0 0 1"/></joint>
        </robot>"#;
        assert!(matches!(parse_urdf(urdf), Err(UrdfError::Structure(_))));
    }

    #[test]
    fn malformed_xml_reports_errors() {
        assert!(matches!(parse_urdf("<robot"), Err(UrdfError::Xml(_))));
        assert!(matches!(
            parse_urdf("<robot name=unquoted></robot>"),
            Err(UrdfError::Xml(_))
        ));
        assert!(matches!(parse_urdf("<!-- open"), Err(UrdfError::Xml(_))));
    }

    #[test]
    fn parsed_robot_round_trips_through_robo_format() {
        let robot = parse_urdf(MINI_URDF).unwrap();
        let text = to_robo(&robot);
        let back = crate::parse_robo(&text).unwrap();
        assert_eq!(back.dof(), robot.dof());
        for (a, b) in back.links().iter().zip(robot.links().iter()) {
            assert!((a.inertia.mass - b.inertia.mass).abs() < 1e-9);
            assert!((a.tree.pos - b.tree.pos).max_abs() < 1e-9);
        }
    }

    #[test]
    fn parsed_dynamics_are_sane() {
        // The assembled model must produce a positive-definite mass matrix
        // and finite dynamics — checked through the public stack.
        let robot = parse_urdf(MINI_URDF).unwrap();
        assert!(robot.total_mass() > 2.9);
    }
}
