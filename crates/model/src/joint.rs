//! Joint types and their kinematic quantities.

use robo_spatial::{Mat3, Motion, Scalar, Transform, Vec3};

/// The axis of a single-degree-of-freedom joint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// The x-axis.
    X,
    /// The y-axis.
    Y,
    /// The z-axis.
    Z,
}

impl Axis {
    /// Index of the axis (x = 0, y = 1, z = 2).
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// The unit vector along the axis.
    pub fn unit<S: Scalar>(self) -> Vec3<S> {
        let mut v = Vec3::zero();
        v[self.index()] = S::one();
        v
    }
}

/// The type of a 1-DoF joint, as in the paper's robot morphology model
/// (§2.1): "the joint type describes the movement constraints imposed upon
/// the links connected by the joint".
///
/// Revolute joints rotate about an axis; prismatic joints translate along
/// one. The joint type determines the sparsity pattern of the joint
/// transformation matrix `ᵢX_λᵢ` and the selector structure of the motion
/// subspace matrix `Sᵢ` — the two objects robomorphic computing turns into
/// pruned functional units.
///
/// # Examples
///
/// ```
/// use robo_model::JointType;
///
/// let j = JointType::RevoluteZ;
/// assert!(j.is_revolute());
/// // Sᵢ for a z-revolute joint selects the angular-z row.
/// assert_eq!(j.motion_subspace::<f64>().to_array()[2], 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JointType {
    /// Rotation about the joint frame's x-axis.
    RevoluteX,
    /// Rotation about the joint frame's y-axis.
    RevoluteY,
    /// Rotation about the joint frame's z-axis.
    RevoluteZ,
    /// Translation along the joint frame's x-axis.
    PrismaticX,
    /// Translation along the joint frame's y-axis.
    PrismaticY,
    /// Translation along the joint frame's z-axis.
    PrismaticZ,
}

impl JointType {
    /// All joint types, in a stable order.
    pub const ALL: [JointType; 6] = [
        JointType::RevoluteX,
        JointType::RevoluteY,
        JointType::RevoluteZ,
        JointType::PrismaticX,
        JointType::PrismaticY,
        JointType::PrismaticZ,
    ];

    /// The motion axis.
    pub fn axis(self) -> Axis {
        match self {
            JointType::RevoluteX | JointType::PrismaticX => Axis::X,
            JointType::RevoluteY | JointType::PrismaticY => Axis::Y,
            JointType::RevoluteZ | JointType::PrismaticZ => Axis::Z,
        }
    }

    /// Whether the joint is revolute (rotational).
    pub fn is_revolute(self) -> bool {
        matches!(
            self,
            JointType::RevoluteX | JointType::RevoluteY | JointType::RevoluteZ
        )
    }

    /// The motion subspace column `Sᵢ`: a 6-vector of zeros with a single 1,
    /// angular for revolute joints, linear for prismatic joints.
    ///
    /// "For many common joint types, the columns of `Sᵢ` are vectors of all
    /// zeroes with a single 1 that filter out individual columns of matrices
    /// multiplied by `Sᵢ`" (§5.2).
    pub fn motion_subspace<S: Scalar>(self) -> Motion<S> {
        let axis = self.axis().unit::<S>();
        if self.is_revolute() {
            Motion::new(axis, Vec3::zero())
        } else {
            Motion::new(Vec3::zero(), axis)
        }
    }

    /// Index (0–5) of the single nonzero row selected by `Sᵢ` in a spatial
    /// vector (angular rows first).
    pub fn subspace_index(self) -> usize {
        self.axis().index() + if self.is_revolute() { 0 } else { 3 }
    }

    /// The variable joint transform `X_J(q)` given the sine and cosine of
    /// the joint position.
    ///
    /// The accelerator receives `sin q` / `cos q` as inputs ("cached from an
    /// earlier stage of the optimization algorithm", §5.1), so this is the
    /// form the hardware template uses. For prismatic joints `sin_q` carries
    /// the displacement `q` itself and `cos_q` is ignored.
    pub fn joint_transform_sincos<S: Scalar>(self, sin_q: S, cos_q: S) -> Transform<S> {
        let z = S::zero();
        let o = S::one();
        match self {
            JointType::RevoluteX => Transform::rotation(Mat3::from_rows(
                [o, z, z],
                [z, cos_q, sin_q],
                [z, -sin_q, cos_q],
            )),
            JointType::RevoluteY => Transform::rotation(Mat3::from_rows(
                [cos_q, z, -sin_q],
                [z, o, z],
                [sin_q, z, cos_q],
            )),
            JointType::RevoluteZ => Transform::rotation(Mat3::from_rows(
                [cos_q, sin_q, z],
                [-sin_q, cos_q, z],
                [z, z, o],
            )),
            JointType::PrismaticX | JointType::PrismaticY | JointType::PrismaticZ => {
                Transform::translation(self.axis().unit::<S>().scale(sin_q))
            }
        }
    }

    /// The variable joint transform `X_J(q)` at joint position `q`.
    pub fn joint_transform<S: Scalar>(self, q: S) -> Transform<S> {
        if self.is_revolute() {
            self.joint_transform_sincos(q.sin(), q.cos())
        } else {
            self.joint_transform_sincos(q, S::one())
        }
    }

    /// Canonical lower-case name used by the `.robo` text format.
    pub fn as_str(self) -> &'static str {
        match self {
            JointType::RevoluteX => "revolute_x",
            JointType::RevoluteY => "revolute_y",
            JointType::RevoluteZ => "revolute_z",
            JointType::PrismaticX => "prismatic_x",
            JointType::PrismaticY => "prismatic_y",
            JointType::PrismaticZ => "prismatic_z",
        }
    }

    /// Parses a joint type from its canonical name.
    pub fn parse(s: &str) -> Option<JointType> {
        JointType::ALL.iter().copied().find(|j| j.as_str() == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subspace_is_unit_selector() {
        for j in JointType::ALL {
            let s = j.motion_subspace::<f64>().to_array();
            assert_eq!(s.iter().filter(|x| **x != 0.0).count(), 1);
            assert_eq!(s[j.subspace_index()], 1.0);
        }
    }

    #[test]
    fn revolute_transform_matches_coord_rotation() {
        let q = 0.61;
        let from_joint = JointType::RevoluteZ.joint_transform::<f64>(q);
        let expected = Transform::rotation(Mat3::coord_rotation_z(q));
        assert!((from_joint.rot - expected.rot).max_abs() < 1e-15);
        let from_joint_x = JointType::RevoluteX.joint_transform::<f64>(q);
        assert!((from_joint_x.rot - Mat3::coord_rotation_x(q)).max_abs() < 1e-15);
        let from_joint_y = JointType::RevoluteY.joint_transform::<f64>(q);
        assert!((from_joint_y.rot - Mat3::coord_rotation_y(q)).max_abs() < 1e-15);
    }

    #[test]
    fn prismatic_transform_translates() {
        let x = JointType::PrismaticY.joint_transform::<f64>(0.3);
        assert_eq!(x.pos, Vec3::new(0.0, 0.3, 0.0));
        assert_eq!(x.rot, Mat3::identity());
    }

    #[test]
    fn joint_velocity_is_subspace_times_rate() {
        // v = S q̇ must match the time derivative of the joint transform:
        // for a revolute-z joint at rate q̇, the child sees angular velocity
        // q̇ about z.
        let s = JointType::RevoluteZ.motion_subspace::<f64>();
        let v = s.scale(2.5);
        assert_eq!(v.ang, Vec3::new(0.0, 0.0, 2.5));
        assert_eq!(v.lin, Vec3::zero());
    }

    #[test]
    fn name_round_trip() {
        for j in JointType::ALL {
            assert_eq!(JointType::parse(j.as_str()), Some(j));
        }
        assert_eq!(JointType::parse("ball"), None);
    }

    #[test]
    fn sincos_consistency() {
        let q = -1.2;
        for j in JointType::ALL {
            let direct = j.joint_transform::<f64>(q);
            let sincos = if j.is_revolute() {
                j.joint_transform_sincos(q.sin(), q.cos())
            } else {
                j.joint_transform_sincos(q, 1.0)
            };
            assert!((direct.rot - sincos.rot).max_abs() < 1e-15);
            assert!((direct.pos - sincos.pos).max_abs() < 1e-15);
        }
    }
}
