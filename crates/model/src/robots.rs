//! Built-in robot models.
//!
//! The paper evaluates three robot classes (Figure 4): an industrial
//! manipulator (Kuka LBR iiwa-14, the accelerator's target), a quadruped
//! (HyQ), and a humanoid (Atlas). This module ships morphologically
//! faithful models of each — link counts, joint types, and placement
//! structure match the real platforms; inertial parameters are documented
//! approximations of the public values (the paper's experiments depend on
//! morphology, not on exact inertias).

use crate::{JointType, RobotBuilder, RobotModel};
use robo_spatial::{Mat3, Transform, Vec3};

fn diag(ixx: f64, iyy: f64, izz: f64) -> Mat3<f64> {
    Mat3::from_rows([ixx, 0.0, 0.0], [0.0, iyy, 0.0], [0.0, 0.0, izz])
}

/// The Kuka LBR iiwa-14 industrial manipulator: 7 links, revolute-z joints,
/// alternating ±90° x-rotations between consecutive joint frames.
///
/// This is the paper's target robot (§5.3): `N = 7` links, all joints
/// "revolute about the z-axis". The alternating placement produces the
/// transform sparsity the paper reports — the joint between the first and
/// second links has exactly 13 of 36 elements populated (§4).
///
/// # Examples
///
/// ```
/// use robo_model::robots;
///
/// let iiwa = robots::iiwa14();
/// assert_eq!(iiwa.dof(), 7);
/// assert!(iiwa.links().iter().all(|l| l.joint == robo_model::JointType::RevoluteZ));
/// ```
pub fn iiwa14() -> RobotModel {
    RobotBuilder::new("iiwa14")
        .link("link1", None, JointType::RevoluteZ)
        .placement_translation(Vec3::new(0.0, 0.0, 0.1575))
        .inertia(
            5.76,
            Vec3::new(0.0, -0.03, 0.12),
            diag(0.033, 0.0333, 0.0123),
        )
        .link("link2", Some(0), JointType::RevoluteZ)
        .placement_rot_x_deg(90.0, Vec3::new(0.0, 0.0, 0.2025))
        .inertia(
            6.35,
            Vec3::new(0.0003, 0.059, 0.042),
            diag(0.0305, 0.0304, 0.011),
        )
        .link("link3", Some(1), JointType::RevoluteZ)
        .placement_rot_x_deg(-90.0, Vec3::new(0.0, 0.2045, 0.0))
        .inertia(3.5, Vec3::new(0.0, 0.03, 0.13), diag(0.025, 0.0238, 0.0076))
        .link("link4", Some(2), JointType::RevoluteZ)
        .placement_rot_x_deg(90.0, Vec3::new(0.0, 0.06, 0.2155))
        .inertia(
            3.5,
            Vec3::new(0.0, 0.067, 0.034),
            diag(0.017, 0.0164, 0.006),
        )
        .link("link5", Some(3), JointType::RevoluteZ)
        .placement_rot_x_deg(-90.0, Vec3::new(0.0, 0.1845, 0.06))
        .inertia(
            3.5,
            Vec3::new(0.0001, 0.021, 0.076),
            diag(0.01, 0.0087, 0.00449),
        )
        .link("link6", Some(4), JointType::RevoluteZ)
        .placement_rot_x_deg(90.0, Vec3::new(0.0, 0.0, 0.2155))
        .inertia(
            1.8,
            Vec3::new(0.0, 0.0006, 0.0004),
            diag(0.0049, 0.0047, 0.0036),
        )
        .link("link7", Some(5), JointType::RevoluteZ)
        .placement_rot_x_deg(-90.0, Vec3::new(0.0, 0.081, 0.0))
        .inertia(1.2, Vec3::new(0.0, 0.0, 0.02), diag(0.001, 0.001, 0.001))
        .build()
        .expect("iiwa14 model is valid")
}

/// A HyQ-class hydraulic quadruped: 4 legs × 3 links (hip
/// abduction/adduction about x, hip flexion/extension about y, knee
/// flexion/extension about y), torso welded to the world.
///
/// This is the `L = 4`, `N = 3` example of §2.1 and the multi-limb
/// generalization target of §7 ("4 parallel limb processors, each with 3
/// parallel datapaths"). The base is fixed; the paper's accelerator likewise
/// operates on joint-space dynamics.
pub fn hyq() -> RobotModel {
    let mut b = RobotBuilder::new("hyq");
    let legs = [
        ("lf", 0.3735, 0.207),
        ("rf", 0.3735, -0.207),
        ("lh", -0.3735, 0.207),
        ("rh", -0.3735, -0.207),
    ];
    for (name, px, py) in legs {
        let hip = b.next_index();
        b = b
            .link(format!("{name}_haa"), None, JointType::RevoluteX)
            .placement_translation(Vec3::new(px, py, 0.0))
            .inertia(2.93, Vec3::new(0.04, 0.0, 0.0), diag(0.005, 0.0059, 0.0059))
            .link(format!("{name}_hfe"), Some(hip), JointType::RevoluteY)
            .placement_rot_x_deg(90.0, Vec3::new(0.08, 0.0, 0.0))
            .inertia(
                2.64,
                Vec3::new(0.15, 0.0, -0.03),
                diag(0.0039, 0.026, 0.026),
            )
            .link(format!("{name}_kfe"), Some(hip + 1), JointType::RevoluteY)
            .placement_translation(Vec3::new(0.35, 0.0, 0.0))
            .inertia(
                0.88,
                Vec3::new(0.12, 0.0, -0.01),
                diag(0.0005, 0.0101, 0.0102),
            );
    }
    b.build().expect("hyq model is valid")
}

/// An Atlas-class humanoid: 30 joints — 3-DoF torso, 1-DoF neck, two 7-DoF
/// arms, two 6-DoF legs — pelvis welded to the world.
///
/// Used for the paper's complexity scaling (Figure 4's "humanoid" band) and
/// the §7 discussion of the Atlas shoulder joint's sparsity pattern.
pub fn atlas() -> RobotModel {
    let mut b = RobotBuilder::new("atlas");
    // Torso chain: yaw, pitch, roll.
    b = b
        .link("back_bkz", None, JointType::RevoluteZ)
        .placement_translation(Vec3::new(-0.01, 0.0, 0.16))
        .inertia(9.5, Vec3::new(-0.01, 0.0, 0.1), diag(0.12, 0.11, 0.1))
        .link("back_bky", Some(0), JointType::RevoluteY)
        .placement_rot_x_deg(90.0, Vec3::new(0.0, 0.0, 0.05))
        .inertia(16.0, Vec3::new(-0.008, 0.1, 0.0), diag(0.22, 0.18, 0.22))
        .link("back_bkx", Some(1), JointType::RevoluteX)
        .placement_rot_x_deg(-90.0, Vec3::new(0.0, 0.05, 0.0))
        .inertia(27.0, Vec3::new(-0.02, 0.0, 0.22), diag(0.95, 0.77, 0.56));
    let chest = 2;
    // Neck.
    b = b
        .link("neck_ry", Some(chest), JointType::RevoluteY)
        .placement_translation(Vec3::new(0.02, 0.0, 0.42))
        .inertia(1.5, Vec3::new(0.0, 0.0, 0.03), diag(0.002, 0.002, 0.002));
    // Arms: 7 DoF each (Atlas v5-style shz, shx, ely, elx, wry, wrx, wry2).
    for (side, sy) in [("l", 0.25), ("r", -0.25)] {
        let base = b.next_index();
        b = b
            .link(format!("{side}_arm_shz"), Some(chest), JointType::RevoluteZ)
            .placement_translation(Vec3::new(0.03, sy, 0.36))
            .inertia(
                3.0,
                Vec3::new(0.0, sy.signum() * 0.05, 0.0),
                diag(0.003, 0.003, 0.003),
            )
            .link(format!("{side}_arm_shx"), Some(base), JointType::RevoluteX)
            .placement_rot_x_deg(-90.0 * sy.signum(), Vec3::new(0.0, sy.signum() * 0.11, 0.0))
            .inertia(3.5, Vec3::new(0.0, 0.0, -0.08), diag(0.02, 0.02, 0.004))
            .link(
                format!("{side}_arm_ely"),
                Some(base + 1),
                JointType::RevoluteY,
            )
            .placement_translation(Vec3::new(0.0, 0.03, -0.19))
            .inertia(3.0, Vec3::new(0.0, -0.02, -0.1), diag(0.01, 0.01, 0.003))
            .link(
                format!("{side}_arm_elx"),
                Some(base + 2),
                JointType::RevoluteX,
            )
            .placement_rot_x_deg(90.0, Vec3::new(0.0, -0.03, -0.12))
            .inertia(2.5, Vec3::new(0.0, 0.0, -0.08), diag(0.008, 0.008, 0.002))
            .link(
                format!("{side}_arm_wry"),
                Some(base + 3),
                JointType::RevoluteY,
            )
            .placement_translation(Vec3::new(0.0, 0.0, -0.19))
            .inertia(1.8, Vec3::new(0.0, 0.0, -0.05), diag(0.003, 0.003, 0.001))
            .link(
                format!("{side}_arm_wrx"),
                Some(base + 4),
                JointType::RevoluteX,
            )
            .placement_rot_x_deg(-90.0, Vec3::new(0.0, 0.05, 0.0))
            .inertia(1.0, Vec3::new(0.0, 0.0, -0.02), diag(0.001, 0.001, 0.0005))
            .link(
                format!("{side}_arm_wry2"),
                Some(base + 5),
                JointType::RevoluteY,
            )
            .placement_translation(Vec3::new(0.0, 0.0, -0.08))
            .inertia(
                0.5,
                Vec3::new(0.0, 0.0, -0.01),
                diag(0.0004, 0.0004, 0.0002),
            );
    }
    // Legs: 6 DoF each (hpz, hpx, hpy, kny, aky, akx).
    for (side, sy) in [("l", 0.089), ("r", -0.089)] {
        let base = b.next_index();
        b = b
            .link(format!("{side}_leg_hpz"), None, JointType::RevoluteZ)
            .placement_translation(Vec3::new(0.0, sy, -0.03))
            .inertia(2.7, Vec3::new(0.0, 0.0, -0.04), diag(0.008, 0.008, 0.008))
            .link(format!("{side}_leg_hpx"), Some(base), JointType::RevoluteX)
            .placement_rot_x_deg(90.0, Vec3::new(0.0, 0.0, -0.05))
            .inertia(3.6, Vec3::new(0.0, 0.02, 0.0), diag(0.01, 0.009, 0.009))
            .link(
                format!("{side}_leg_hpy"),
                Some(base + 1),
                JointType::RevoluteY,
            )
            .placement_rot_x_deg(-90.0, Vec3::new(0.05, 0.0, 0.0))
            .inertia(8.0, Vec3::new(0.0, 0.0, -0.21), diag(0.15, 0.15, 0.02))
            .link(
                format!("{side}_leg_kny"),
                Some(base + 2),
                JointType::RevoluteY,
            )
            .placement_translation(Vec3::new(-0.05, 0.0, -0.37))
            .inertia(6.0, Vec3::new(0.0, 0.0, -0.18), diag(0.09, 0.09, 0.01))
            .link(
                format!("{side}_leg_aky"),
                Some(base + 3),
                JointType::RevoluteY,
            )
            .placement_translation(Vec3::new(0.0, 0.0, -0.42))
            .inertia(1.0, Vec3::new(0.0, 0.0, -0.01), diag(0.001, 0.001, 0.001))
            .link(
                format!("{side}_leg_akx"),
                Some(base + 4),
                JointType::RevoluteX,
            )
            .placement_rot_x_deg(90.0, Vec3::new(0.0, 0.01, 0.0))
            .inertia(2.4, Vec3::new(0.02, 0.0, -0.05), diag(0.002, 0.007, 0.008));
    }
    b.build().expect("atlas model is valid")
}

/// A Franka Emika Panda-class manipulator: 7 revolute-z joints with
/// alternating ±90° placements like the iiwa but a lighter, shorter
/// kinematic structure (documented approximation of the public values).
pub fn panda() -> RobotModel {
    RobotBuilder::new("panda")
        .link("panda_link1", None, JointType::RevoluteZ)
        .placement_translation(Vec3::new(0.0, 0.0, 0.333))
        .inertia(
            3.06,
            Vec3::new(0.0, -0.03, -0.07),
            diag(0.017, 0.017, 0.006),
        )
        .link("panda_link2", Some(0), JointType::RevoluteZ)
        .placement_rot_x_deg(-90.0, Vec3::new(0.0, 0.0, 0.0))
        .inertia(2.34, Vec3::new(0.0, -0.07, 0.03), diag(0.018, 0.006, 0.017))
        .link("panda_link3", Some(1), JointType::RevoluteZ)
        .placement_rot_x_deg(90.0, Vec3::new(0.0, -0.316, 0.0))
        .inertia(
            2.36,
            Vec3::new(0.044, 0.025, -0.038),
            diag(0.008, 0.008, 0.008),
        )
        .link("panda_link4", Some(2), JointType::RevoluteZ)
        .placement_rot_x_deg(90.0, Vec3::new(0.0825, 0.0, 0.0))
        .inertia(
            2.38,
            Vec3::new(-0.038, 0.039, 0.025),
            diag(0.008, 0.008, 0.008),
        )
        .link("panda_link5", Some(3), JointType::RevoluteZ)
        .placement_rot_x_deg(-90.0, Vec3::new(-0.0825, 0.384, 0.0))
        .inertia(2.43, Vec3::new(0.0, 0.038, -0.11), diag(0.03, 0.028, 0.005))
        .link("panda_link6", Some(4), JointType::RevoluteZ)
        .placement_rot_x_deg(90.0, Vec3::new(0.0, 0.0, 0.0))
        .inertia(
            1.47,
            Vec3::new(0.051, 0.007, 0.006),
            diag(0.002, 0.004, 0.005),
        )
        .link("panda_link7", Some(5), JointType::RevoluteZ)
        .placement_rot_x_deg(90.0, Vec3::new(0.088, 0.0, 0.0))
        .inertia(0.45, Vec3::new(0.01, 0.01, 0.08), diag(0.001, 0.001, 0.001))
        .build()
        .expect("panda model is valid")
}

/// A Universal Robots UR5-class manipulator: 6 joints mixing revolute-z
/// and revolute-y axes — a different joint-type profile from the iiwa,
/// exercising different transform sparsity patterns.
pub fn ur5() -> RobotModel {
    RobotBuilder::new("ur5")
        .link("shoulder_pan", None, JointType::RevoluteZ)
        .placement_translation(Vec3::new(0.0, 0.0, 0.0892))
        .inertia(3.7, Vec3::new(0.0, 0.0, 0.0), diag(0.0103, 0.0103, 0.0067))
        .link("shoulder_lift", Some(0), JointType::RevoluteY)
        .placement_translation(Vec3::new(0.0, 0.1358, 0.0))
        .inertia(
            8.39,
            Vec3::new(0.0, 0.0, 0.2125),
            diag(0.226, 0.226, 0.0151),
        )
        .link("elbow", Some(1), JointType::RevoluteY)
        .placement_translation(Vec3::new(0.0, -0.1197, 0.425))
        .inertia(
            2.33,
            Vec3::new(0.0, 0.0, 0.196),
            diag(0.0494, 0.0494, 0.004),
        )
        .link("wrist_1", Some(2), JointType::RevoluteY)
        .placement_translation(Vec3::new(0.0, 0.0, 0.3922))
        .inertia(
            1.22,
            Vec3::new(0.0, 0.093, 0.0),
            diag(0.0021, 0.0021, 0.0021),
        )
        .link("wrist_2", Some(3), JointType::RevoluteZ)
        .placement_translation(Vec3::new(0.0, 0.093, 0.0))
        .inertia(
            1.22,
            Vec3::new(0.0, 0.0, 0.0946),
            diag(0.0021, 0.0021, 0.0021),
        )
        .link("wrist_3", Some(4), JointType::RevoluteY)
        .placement_translation(Vec3::new(0.0, 0.0, 0.0946))
        .inertia(
            0.19,
            Vec3::new(0.0, 0.0615, 0.0),
            diag(0.0003, 0.0003, 0.0003),
        )
        .build()
        .expect("ur5 model is valid")
}

/// The HyQ-class quadruped on an emulated floating base: a 60 kg torso
/// body carried by the 6-DoF virtual chain of
/// [`with_floating_base`](crate::with_floating_base), with the four legs
/// attached to it — the mobile-base configuration the real robot has.
pub fn hyq_floating() -> RobotModel {
    let torso = robo_spatial::SpatialInertia::from_com_params(
        60.0,
        Vec3::new(0.0, 0.0, 0.01),
        diag(1.5, 4.0, 4.5),
    );
    crate::with_floating_base(&hyq(), torso)
}

/// A serial chain of `n` identical links with the given joint type —
/// useful for scaling studies and property tests.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn serial_chain(n: usize, joint: JointType) -> RobotModel {
    assert!(n > 0, "serial chain needs at least one link");
    let mut b = RobotBuilder::new(format!("chain{n}"));
    for i in 0..n {
        let parent = if i == 0 { None } else { Some(i - 1) };
        let rot = match i % 3 {
            0 => Transform::translation(Vec3::new(0.0, 0.0, 0.25)),
            1 => Transform::new(
                Mat3::coord_rotation_x(90.0_f64.to_radians()),
                Vec3::new(0.0, 0.0, 0.25),
            ),
            _ => Transform::new(
                Mat3::coord_rotation_x(-90.0_f64.to_radians()),
                Vec3::new(0.0, 0.2, 0.0),
            ),
        };
        b = b
            .link(format!("link{i}"), parent, joint)
            .placement(rot)
            .uniform_rod_inertia(1.5, 0.25);
    }
    b.build().expect("serial chain is valid")
}

/// A two-link planar pendulum (revolute-y joints, links along z), useful
/// for analytically checkable tests and the quickstart example.
pub fn double_pendulum() -> RobotModel {
    RobotBuilder::new("double_pendulum")
        .link("upper", None, JointType::RevoluteY)
        .placement_translation(Vec3::zero())
        .uniform_rod_inertia(1.0, 0.5)
        .link("lower", Some(0), JointType::RevoluteY)
        .placement_translation(Vec3::new(0.0, 0.0, 0.5))
        .uniform_rod_inertia(1.0, 0.5)
        .build()
        .expect("double pendulum is valid")
}

/// The three robots of the paper's Figure 4, by increasing complexity:
/// `(manipulator, quadruped, humanoid)`.
pub fn figure4_robots() -> (RobotModel, RobotModel, RobotModel) {
    (iiwa14(), hyq(), atlas())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iiwa_morphology() {
        let r = iiwa14();
        assert_eq!(r.dof(), 7);
        assert_eq!(r.limbs().len(), 1);
        assert_eq!(r.max_limb_len(), 7);
        // Total mass ≈ 25.6 kg of moving links (documented approximation).
        assert!(r.total_mass() > 20.0 && r.total_mass() < 35.0);
    }

    #[test]
    fn iiwa_second_joint_has_paper_sparsity() {
        // §4: "the first two links in the LBR iiwa manipulator are connected
        // by a joint whose transformation matrix has only 13 of 36 elements
        // populated."
        let r = iiwa14();
        let x = r.joint_transform::<f64>(1, 0.4).to_mat6();
        assert_eq!(x.count_nonzero(1e-12), 13);
    }

    #[test]
    fn hyq_morphology() {
        let r = hyq();
        assert_eq!(r.dof(), 12);
        let limbs = r.limbs();
        assert_eq!(limbs.len(), 4);
        assert!(limbs.iter().all(|l| l.len() == 3));
    }

    #[test]
    fn atlas_morphology() {
        let r = atlas();
        assert_eq!(r.dof(), 30);
        let limbs = r.limbs();
        // torso chain splits at the chest into neck + 2 arms; pelvis has
        // 2 legs attached to the base.
        assert!(limbs.len() >= 5, "expected >= 5 limbs, got {}", limbs.len());
        assert_eq!(r.max_limb_len(), 7); // the arms
    }

    #[test]
    fn hyq_floating_morphology() {
        let r = hyq_floating();
        assert_eq!(r.dof(), 18);
        // The virtual chain forms the first limb; legs attach at link 5.
        assert_eq!(r.links()[6].parent, Some(5));
        assert!(r.total_mass() > 80.0);
    }

    #[test]
    fn serial_chain_lengths() {
        for n in [1, 3, 9] {
            assert_eq!(serial_chain(n, JointType::RevoluteZ).dof(), n);
        }
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn empty_chain_panics() {
        let _ = serial_chain(0, JointType::RevoluteZ);
    }

    #[test]
    fn all_builtins_have_positive_masses() {
        for r in [iiwa14(), hyq(), atlas(), double_pendulum(), panda(), ur5()] {
            assert!(r.links().iter().all(|l| l.inertia.mass > 0.0));
        }
    }

    #[test]
    fn panda_morphology() {
        let r = panda();
        assert_eq!(r.dof(), 7);
        assert_eq!(r.limbs().len(), 1);
        assert!(r.total_mass() > 10.0 && r.total_mass() < 20.0);
    }

    #[test]
    fn ur5_morphology_and_joint_mix() {
        let r = ur5();
        assert_eq!(r.dof(), 6);
        let types: Vec<JointType> = r.links().iter().map(|l| l.joint).collect();
        assert!(types.contains(&JointType::RevoluteZ));
        assert!(types.contains(&JointType::RevoluteY));
    }
}
