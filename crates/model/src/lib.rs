//! Robot morphology models: joints, links, kinematic trees, and limbs.
//!
//! Robomorphic computing (the paper, §2.1) models a robot as "a topology of
//! rigid links connected by joints", decomposable into `L` limbs of `N`
//! links each. This crate is that model:
//!
//! * [`JointType`] — 1-DoF revolute/prismatic joints about x/y/z, each with
//!   its motion subspace `Sᵢ` and variable transform `X_J(q)`;
//! * [`Link`] / [`RobotModel`] — a validated kinematic tree with fixed
//!   placements `X_T` and spatial inertias `Iᵢ`;
//! * [`Limb`] and [`RobotModel::limbs`] — the limb decomposition that the
//!   accelerator template turns into parallel processors;
//! * [`robots`] — built-in models: the Kuka LBR iiwa-14 manipulator (the
//!   paper's target), Panda, UR5, a HyQ-class quadruped (fixed and
//!   floating base), an Atlas-class humanoid, and parametric chains;
//! * [`parse_robo`] / [`to_robo`] — a small text description format —
//!   and [`parse_urdf`], a URDF-subset loader (§7: description files);
//! * [`with_floating_base`] — 6-DoF mobile-base emulation via a virtual
//!   prismatic/revolute chain.
//!
//! # Example
//!
//! ```
//! use robo_model::robots;
//!
//! let iiwa = robots::iiwa14();
//! // The §4 sparsity example: joint 2's transform has 13/36 nonzeros.
//! let x = iiwa.joint_transform::<f64>(1, 0.3).to_mat6();
//! assert_eq!(x.count_nonzero(1e-12), 13);
//! ```

#![warn(missing_docs)]

mod joint;
mod parse;
mod robot;
pub mod robots;
mod urdf;

pub use joint::{Axis, JointType};
pub use parse::{parse_robo, to_robo, ParseRobotError};
pub use robot::{
    with_floating_base, JointLimits, Limb, Link, ModelError, RobotBuilder, RobotModel,
};
pub use urdf::{parse_urdf, UrdfError};
