//! The `.robo` text format: a small, dependency-free robot description
//! format (in the spirit of URDF, §7: "parameters are already parsed and
//! extracted from robot description files by existing robot dynamics
//! software libraries").
//!
//! ```text
//! # comment
//! robot iiwa14
//! link name=link1 parent=none joint=revolute_z rot=none trans=0,0,0.1575 \
//!      mass=5.76 com=0,-0.03,0.12 inertia=0.033,0.0333,0.0123,0,0,0
//! link name=link2 parent=0 joint=revolute_z rot=x:90 trans=0,0,0.2025 ...
//! ```
//!
//! * `rot` is either `none`, a `;`-separated list of `axis:degrees` items
//!   applied left to right, or `rotm=` with nine row-major entries.
//! * `inertia` lists `ixx,iyy,izz,ixy,ixz,iyz` about the center of mass.

use crate::{JointLimits, JointType, Link, ModelError, RobotModel};
use robo_spatial::{Mat3, SpatialInertia, Transform, Vec3};
use std::fmt;

/// Error from parsing a `.robo` document.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseRobotError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The document parsed but described an invalid robot.
    Model(ModelError),
}

impl fmt::Display for ParseRobotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Syntax { line, message } => write!(f, "line {line}: {message}"),
            Self::Model(e) => write!(f, "invalid robot: {e}"),
        }
    }
}

impl std::error::Error for ParseRobotError {}

impl From<ModelError> for ParseRobotError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

fn syntax(line: usize, message: impl Into<String>) -> ParseRobotError {
    ParseRobotError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_floats(line: usize, s: &str, n: usize) -> Result<Vec<f64>, ParseRobotError> {
    let vals: Result<Vec<f64>, _> = s.split(',').map(|x| x.trim().parse::<f64>()).collect();
    let vals = vals.map_err(|e| syntax(line, format!("bad number in `{s}`: {e}")))?;
    if vals.len() != n {
        return Err(syntax(
            line,
            format!("expected {n} numbers, got {}", vals.len()),
        ));
    }
    Ok(vals)
}

fn parse_rot(line: usize, spec: &str) -> Result<Mat3<f64>, ParseRobotError> {
    if spec == "none" {
        return Ok(Mat3::identity());
    }
    let mut rot = Mat3::identity();
    for item in spec.split(';') {
        let (axis, deg) = item
            .split_once(':')
            .ok_or_else(|| syntax(line, format!("bad rotation item `{item}`")))?;
        let angle = deg
            .trim()
            .parse::<f64>()
            .map_err(|e| syntax(line, format!("bad angle `{deg}`: {e}")))?
            .to_radians();
        let step = match axis.trim() {
            "x" => Mat3::coord_rotation_x(angle),
            "y" => Mat3::coord_rotation_y(angle),
            "z" => Mat3::coord_rotation_z(angle),
            other => return Err(syntax(line, format!("unknown rotation axis `{other}`"))),
        };
        rot = step * rot;
    }
    Ok(rot)
}

/// Parses a robot model from `.robo` text.
///
/// # Errors
///
/// Returns [`ParseRobotError`] with a line number on malformed input, or
/// wrapping a [`ModelError`] when the description is syntactically fine but
/// topologically invalid.
///
/// # Examples
///
/// ```
/// let text = "\
/// robot mini
/// link name=a parent=none joint=revolute_z rot=none trans=0,0,0.1 \
///   mass=1.0 com=0,0,0.05 inertia=0.01,0.01,0.001,0,0,0
/// ";
/// let robot = robo_model::parse_robo(text)?;
/// assert_eq!(robot.name(), "mini");
/// assert_eq!(robot.dof(), 1);
/// # Ok::<(), robo_model::ParseRobotError>(())
/// ```
pub fn parse_robo(text: &str) -> Result<RobotModel, ParseRobotError> {
    let mut name: Option<String> = None;
    let mut links: Vec<Link> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("robot ") {
            name = Some(rest.trim().to_owned());
            continue;
        }
        let Some(rest) = line.strip_prefix("link ") else {
            return Err(syntax(lineno, format!("unrecognized directive `{line}`")));
        };

        let mut link_name = None;
        let mut parent = None;
        let mut joint = None;
        let mut rot = Mat3::identity();
        let mut trans = Vec3::zero();
        let mut mass = None;
        let mut com = Vec3::zero();
        let mut inertia6 = [0.0_f64; 6];
        let mut limits = JointLimits::none();

        for field in rest.split_whitespace() {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| syntax(lineno, format!("bad field `{field}`")))?;
            match key {
                "name" => link_name = Some(value.to_owned()),
                "parent" => {
                    parent =
                        if value == "none" {
                            None
                        } else {
                            Some(value.parse::<usize>().map_err(|e| {
                                syntax(lineno, format!("bad parent `{value}`: {e}"))
                            })?)
                        };
                }
                "joint" => {
                    joint =
                        Some(JointType::parse(value).ok_or_else(|| {
                            syntax(lineno, format!("unknown joint type `{value}`"))
                        })?);
                }
                "rot" => rot = parse_rot(lineno, value)?,
                "rotm" => {
                    let v = parse_floats(lineno, value, 9)?;
                    rot =
                        Mat3::from_rows([v[0], v[1], v[2]], [v[3], v[4], v[5]], [v[6], v[7], v[8]]);
                }
                "trans" => {
                    let v = parse_floats(lineno, value, 3)?;
                    trans = Vec3::new(v[0], v[1], v[2]);
                }
                "mass" => {
                    mass = Some(
                        value
                            .parse::<f64>()
                            .map_err(|e| syntax(lineno, format!("bad mass `{value}`: {e}")))?,
                    );
                }
                "com" => {
                    let v = parse_floats(lineno, value, 3)?;
                    com = Vec3::new(v[0], v[1], v[2]);
                }
                "inertia" => {
                    let v = parse_floats(lineno, value, 6)?;
                    inertia6.copy_from_slice(&v);
                }
                "limits" => {
                    // lower,upper,velocity,effort with `none` wildcards.
                    let parts: Vec<&str> = value.split(',').collect();
                    if parts.len() != 4 {
                        return Err(syntax(lineno, "limits needs 4 comma-separated values"));
                    }
                    let field = |s: &str| -> Result<Option<f64>, ParseRobotError> {
                        if s == "none" {
                            Ok(None)
                        } else {
                            s.parse::<f64>()
                                .map(Some)
                                .map_err(|e| syntax(lineno, format!("bad limit `{s}`: {e}")))
                        }
                    };
                    limits = JointLimits {
                        lower: field(parts[0])?,
                        upper: field(parts[1])?,
                        velocity: field(parts[2])?,
                        effort: field(parts[3])?,
                    };
                }
                other => return Err(syntax(lineno, format!("unknown field `{other}`"))),
            }
        }

        let link_name = link_name.ok_or_else(|| syntax(lineno, "missing `name=`"))?;
        let joint = joint.ok_or_else(|| syntax(lineno, "missing `joint=`"))?;
        let mass = mass.ok_or_else(|| syntax(lineno, "missing `mass=`"))?;
        let [ixx, iyy, izz, ixy, ixz, iyz] = inertia6;
        let inertia_about_com = Mat3::from_rows([ixx, ixy, ixz], [ixy, iyy, iyz], [ixz, iyz, izz]);
        links.push(Link {
            name: link_name,
            parent,
            joint,
            tree: Transform::new(rot, trans),
            inertia: SpatialInertia::from_com_params(mass, com, inertia_about_com),
            limits,
        });
    }

    Ok(RobotModel::new(
        name.unwrap_or_else(|| "robot".to_owned()),
        links,
    )?)
}

/// Serializes a robot model to `.robo` text (lossless through
/// [`parse_robo`] up to floating-point printing).
pub fn to_robo(robot: &RobotModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "robot {}", robot.name());
    for link in robot.links() {
        let parent = match link.parent {
            Some(p) => p.to_string(),
            None => "none".to_owned(),
        };
        let r = link.tree.rot.m;
        let t = link.tree.pos;
        let com = link.inertia.com();
        // Recover the inertia about the COM from Ī (inverse parallel axis).
        let m = link.inertia.mass;
        let c2 = com.dot(com);
        let shift = (Mat3::identity().scale(c2) - Mat3::outer(com, com)).scale(m);
        let icom = link.inertia.ibar - shift;
        let fmt_limit = |v: Option<f64>| match v {
            Some(x) => x.to_string(),
            None => "none".to_owned(),
        };
        let limits_field = if link.limits == crate::JointLimits::none() {
            String::new()
        } else {
            format!(
                " limits={},{},{},{}",
                fmt_limit(link.limits.lower),
                fmt_limit(link.limits.upper),
                fmt_limit(link.limits.velocity),
                fmt_limit(link.limits.effort),
            )
        };
        let _ = writeln!(
            out,
            "link name={} parent={} joint={} rotm={},{},{},{},{},{},{},{},{} \
             trans={},{},{} mass={} com={},{},{} inertia={},{},{},{},{},{}{}",
            link.name,
            parent,
            link.joint.as_str(),
            r[0][0],
            r[0][1],
            r[0][2],
            r[1][0],
            r[1][1],
            r[1][2],
            r[2][0],
            r[2][1],
            r[2][2],
            t.x,
            t.y,
            t.z,
            m,
            com.x,
            com.y,
            com.z,
            icom.m[0][0],
            icom.m[1][1],
            icom.m[2][2],
            icom.m[0][1],
            icom.m[0][2],
            icom.m[1][2],
            limits_field,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robots;

    #[test]
    fn round_trip_builtins() {
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            let text = to_robo(&robot);
            let parsed = parse_robo(&text).expect("round trip parses");
            assert_eq!(parsed.name(), robot.name());
            assert_eq!(parsed.dof(), robot.dof());
            for (a, b) in parsed.links().iter().zip(robot.links().iter()) {
                assert_eq!(a.name, b.name);
                assert_eq!(a.parent, b.parent);
                assert_eq!(a.joint, b.joint);
                assert!((a.tree.rot - b.tree.rot).max_abs() < 1e-9);
                assert!((a.tree.pos - b.tree.pos).max_abs() < 1e-9);
                assert!((a.inertia.mass - b.inertia.mass).abs() < 1e-9);
                assert!((a.inertia.h - b.inertia.h).max_abs() < 1e-9);
                assert!((a.inertia.ibar - b.inertia.ibar).max_abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rotation_spec_composition() {
        let text = "\
robot t
link name=a parent=none joint=revolute_x rot=x:90;z:90 trans=0,0,0 mass=1 com=0,0,0 inertia=1,1,1,0,0,0
";
        let robot = parse_robo(text).unwrap();
        let expected = Mat3::coord_rotation_z(90.0_f64.to_radians())
            * Mat3::coord_rotation_x(90.0_f64.to_radians());
        assert!((robot.links()[0].tree.rot - expected).max_abs() < 1e-12);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "
# heading comment
robot c

link name=a parent=none joint=prismatic_z mass=2 inertia=1,1,1,0,0,0 # trailing
";
        let robot = parse_robo(text).unwrap();
        assert_eq!(robot.dof(), 1);
        assert_eq!(robot.links()[0].joint, JointType::PrismaticZ);
    }

    #[test]
    fn limits_round_trip() {
        let text = "\
robot lim
link name=a parent=none joint=revolute_z mass=1 inertia=1,1,1,0,0,0 limits=-2.9,2.9,1.5,176
link name=b parent=0 joint=revolute_z mass=1 inertia=1,1,1,0,0,0 limits=none,none,2.0,none
";
        let robot = parse_robo(text).unwrap();
        let l0 = robot.links()[0].limits;
        assert_eq!(l0.lower, Some(-2.9));
        assert_eq!(l0.effort, Some(176.0));
        let l1 = robot.links()[1].limits;
        assert_eq!(l1.lower, None);
        assert_eq!(l1.velocity, Some(2.0));
        // Serialize and re-parse.
        let back = parse_robo(&to_robo(&robot)).unwrap();
        assert_eq!(back.links()[0].limits, l0);
        assert_eq!(back.links()[1].limits, l1);
        // Clamping helpers.
        assert_eq!(l0.clamp_position(4.0), 2.9);
        assert_eq!(l0.clamp_effort(-500.0), -176.0);
        assert_eq!(l1.clamp_position(4.0), 4.0);
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let bad = "robot x\nlink name=a parent=none joint=warp mass=1\n";
        match parse_robo(bad).unwrap_err() {
            ParseRobotError::Syntax { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("warp"));
            }
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn model_errors_surface() {
        let bad = "robot x\nlink name=a parent=5 joint=revolute_z mass=1 inertia=1,1,1,0,0,0\n";
        assert!(matches!(
            parse_robo(bad).unwrap_err(),
            ParseRobotError::Model(ModelError::BadParent { .. })
        ));
    }

    #[test]
    fn missing_required_fields() {
        let bad = "link parent=none joint=revolute_z mass=1\n";
        assert!(matches!(
            parse_robo(bad).unwrap_err(),
            ParseRobotError::Syntax { .. }
        ));
    }
}
