//! Netlist optimization passes: the paper's §5.2 hardware pruning applied
//! at the IR level.
//!
//! The paper prunes multiplier–adder trees by morphology-derived sparsity
//! *before* the design reaches silicon; this module performs the same kind
//! of reduction on any [`Netlist`], so that both the Verilog backend and
//! the simulator's compiled evaluator work from the smallest equivalent
//! design. Four passes run to a fixpoint:
//!
//! * **constant folding** — arithmetic between [`Node::Const`] operands is
//!   evaluated at optimization time (in `f64`, the domain constants are
//!   stored in);
//! * **identity simplification** — `x·0 → 0`, `x·1 → x`, `x·−1 → −x`,
//!   `x+0 → x`, `−(−x) → x`, and the canonicalization `a−b → a+(−b)`;
//!   a variable×constant [`Node::Mul`] is strength-reduced to a
//!   [`Node::MulConst`] (a DSP multiplier becomes a cheaper
//!   constant-multiplier circuit — the Figure 9 resource metric);
//! * **common-subexpression elimination** — structurally identical nodes
//!   are merged (commutative operands compare unordered);
//! * **dead-node elimination** — nodes unreachable from the declared
//!   outputs are dropped. [`Node::Input`] nodes are always kept so the
//!   lowered module's port list (and the compiled evaluator's input slots)
//!   stay interface-stable.
//!
//! All rewrites are **value-preserving in every [`Scalar`] type**, not just
//! `f64`: identities with 0/±1 are exact in IEEE floats and in two's
//! complement fixed point, and constant–constant folding only arises from
//! netlists that combine literal constants (the generators in this crate
//! never emit those patterns). The only observable difference is the sign
//! of floating-point zeros, which compares equal under `==`.
//!
//! [`Scalar`]: robo_spatial::Scalar

use crate::compiled::FusionCounts;
use crate::netlist::{Netlist, NetlistStats, Node, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Before/after statistics of an optimization run — the pre/post pruned
/// multiplier counts of the paper's Figure 9, measured on the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OptReport {
    /// Hardware-relevant op counts before optimization.
    pub before: NetlistStats,
    /// Hardware-relevant op counts after optimization.
    pub after: NetlistStats,
    /// Total node count before optimization.
    pub nodes_before: usize,
    /// Total node count after optimization.
    pub nodes_after: usize,
    /// What the compiled tape's fusion pass folded, when the netlist was
    /// subsequently compiled (attached via [`OptReport::with_fusion`];
    /// `None` straight out of [`optimize_with_report`], which never
    /// compiles).
    pub fusion: Option<FusionCounts>,
}

impl OptReport {
    /// Attaches the compile-time fusion counts of the tape this netlist
    /// was lowered into, so one report covers both reduction stages.
    #[must_use]
    pub fn with_fusion(mut self, counts: FusionCounts) -> Self {
        self.fusion = Some(counts);
        self
    }
}

impl fmt::Display for OptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "muls {}→{}, const muls {}→{}, adds {}→{}, negs {}→{}, nodes {}→{}",
            self.before.muls,
            self.after.muls,
            self.before.const_muls,
            self.after.const_muls,
            self.before.adds,
            self.after.adds,
            self.before.negs,
            self.after.negs,
            self.nodes_before,
            self.nodes_after,
        )?;
        if let Some(fusion) = &self.fusion {
            write!(f, ", tape {fusion}")?;
        }
        Ok(())
    }
}

/// Hash-cons key of a rewritten node. Constants are keyed by bit pattern
/// (no NaNs are generated); commutative ops store operands low-first.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Key {
    Input(String),
    Const(u64),
    Mul(NodeId, NodeId),
    MulConst(NodeId, u64),
    Add(NodeId, NodeId),
    Neg(NodeId),
}

impl Key {
    fn of(node: &Node) -> Self {
        match node {
            Node::Input(name) => Self::Input(name.clone()),
            Node::Const(c) => Self::Const(c.to_bits()),
            Node::Mul(a, b) => Self::Mul(*a.min(b), *a.max(b)),
            Node::MulConst(a, c) => Self::MulConst(*a, c.to_bits()),
            Node::Add(a, b) => Self::Add(*a.min(b), *a.max(b)),
            // Sub is canonicalized to Add(a, Neg(b)) before interning.
            Node::Sub(..) => unreachable!("Sub is rewritten before interning"),
            Node::Neg(a) => Self::Neg(*a),
        }
    }
}

/// One forward rewrite pass: simplification + CSE, building a fresh node
/// list and an old→new id map.
struct Rewriter {
    nodes: Vec<Node>,
    seen: HashMap<Key, NodeId>,
}

impl Rewriter {
    fn new() -> Self {
        Self {
            nodes: Vec::new(),
            seen: HashMap::new(),
        }
    }

    /// The constant value of an already-rewritten node, if it is one.
    fn const_of(&self, id: NodeId) -> Option<f64> {
        match self.nodes[id] {
            Node::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Interns `node` (which must reference already-rewritten ids),
    /// returning an existing id when an identical node was seen before.
    fn intern(&mut self, node: Node) -> NodeId {
        let key = Key::of(&node);
        if let Some(&id) = self.seen.get(&key) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(node);
        self.seen.insert(key, id);
        id
    }

    /// Emits a negation, folding `−(−x)` and constant operands.
    fn neg(&mut self, a: NodeId) -> NodeId {
        if let Some(c) = self.const_of(a) {
            return self.intern(Node::Const(-c));
        }
        if let Node::Neg(inner) = self.nodes[a] {
            return inner;
        }
        self.intern(Node::Neg(a))
    }

    /// Emits a variable×constant product with the 0/±1 identities applied.
    fn mul_const(&mut self, a: NodeId, c: f64) -> NodeId {
        if let Some(ca) = self.const_of(a) {
            return self.intern(Node::Const(ca * c));
        }
        if c == 0.0 {
            self.intern(Node::Const(0.0))
        } else if c == 1.0 {
            a
        } else if c == -1.0 {
            self.neg(a)
        } else {
            self.intern(Node::MulConst(a, c))
        }
    }

    /// Emits a sum with constant folding and the `x+0` identity.
    fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (ca, cb) = (self.const_of(a), self.const_of(b));
        if let (Some(x), Some(y)) = (ca, cb) {
            self.intern(Node::Const(x + y))
        } else if ca == Some(0.0) {
            b
        } else if cb == Some(0.0) {
            a
        } else {
            self.intern(Node::Add(a, b))
        }
    }

    /// Rewrites one original node (operands already mapped), returning its
    /// id in the new node list.
    fn rewrite(&mut self, node: &Node) -> NodeId {
        match node {
            Node::Input(name) => self.intern(Node::Input(name.clone())),
            Node::Const(c) => self.intern(Node::Const(*c)),
            Node::Neg(a) => self.neg(*a),
            Node::MulConst(a, c) => self.mul_const(*a, *c),
            Node::Mul(a, b) => match (self.const_of(*a), self.const_of(*b)) {
                (Some(ca), Some(cb)) => self.intern(Node::Const(ca * cb)),
                // Strength reduction: a DSP multiplier with one constant
                // operand is a constant-multiplier circuit (§5.2).
                (Some(ca), None) => self.mul_const(*b, ca),
                (None, Some(cb)) => self.mul_const(*a, cb),
                (None, None) => self.intern(Node::Mul(*a, *b)),
            },
            Node::Add(a, b) => self.add(*a, *b),
            // Canonicalization: a−b → a+(−b). Bit-identical in IEEE floats
            // and in two's-complement fixed point (away from the saturation
            // boundary), and it lets the CSE/identity passes see through
            // subtraction.
            Node::Sub(a, b) => {
                let nb = self.neg(*b);
                self.add(*a, nb)
            }
        }
    }
}

/// Runs one simplify+CSE pass followed by dead-node elimination.
fn pass(netlist: &Netlist) -> Netlist {
    let mut rw = Rewriter::new();
    let mut map = Vec::with_capacity(netlist.nodes().len());
    for node in netlist.nodes() {
        let remapped = match node {
            Node::Input(_) | Node::Const(_) => node.clone(),
            Node::Mul(a, b) => Node::Mul(map[*a], map[*b]),
            Node::MulConst(a, c) => Node::MulConst(map[*a], *c),
            Node::Add(a, b) => Node::Add(map[*a], map[*b]),
            Node::Sub(a, b) => Node::Sub(map[*a], map[*b]),
            Node::Neg(a) => Node::Neg(map[*a]),
        };
        map.push(rw.rewrite(&remapped));
    }

    // Liveness from the outputs; inputs are pinned so the interface (ports,
    // input slots) survives even when a signal is fully pruned.
    let mut live = vec![false; rw.nodes.len()];
    let mut stack: Vec<NodeId> = netlist.outputs().iter().map(|(_, id)| map[*id]).collect();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut live[id], true) {
            continue;
        }
        match rw.nodes[id] {
            Node::Input(_) | Node::Const(_) => {}
            Node::Mul(a, b) | Node::Add(a, b) | Node::Sub(a, b) => {
                stack.push(a);
                stack.push(b);
            }
            Node::MulConst(a, _) | Node::Neg(a) => stack.push(a),
        }
    }

    let mut out = Netlist::new(netlist.name());
    let mut compact = vec![usize::MAX; rw.nodes.len()];
    for (id, node) in rw.nodes.iter().enumerate() {
        if !live[id] && !matches!(node, Node::Input(_)) {
            continue;
        }
        let rebuilt = match node {
            Node::Input(_) | Node::Const(_) => node.clone(),
            Node::Mul(a, b) => Node::Mul(compact[*a], compact[*b]),
            Node::MulConst(a, c) => Node::MulConst(compact[*a], *c),
            Node::Add(a, b) => Node::Add(compact[*a], compact[*b]),
            Node::Sub(a, b) => Node::Sub(compact[*a], compact[*b]),
            Node::Neg(a) => Node::Neg(compact[*a]),
        };
        compact[id] = out.push(rebuilt);
    }
    for (name, id) in netlist.outputs() {
        out.output(name.clone(), compact[map[*id]])
            .expect("source netlist had unique output names");
    }
    out
}

/// Optimizes a netlist: constant folding, identity simplification, CSE and
/// dead-node elimination, iterated to a fixpoint.
///
/// Every rewrite preserves evaluated values in all scalar types (see the
/// module docs for the exact-identity argument); outputs keep their names
/// and order, and input nodes are never removed.
pub fn optimize(netlist: &Netlist) -> Netlist {
    optimize_with_report(netlist).0
}

/// Like [`optimize`], but also returning the pre/post [`NetlistStats`].
pub fn optimize_with_report(netlist: &Netlist) -> (Netlist, OptReport) {
    let before = netlist.stats();
    let nodes_before = netlist.nodes().len();
    let _span = robo_trace::span_items("netlist.optimize", nodes_before);
    let mut current = pass(netlist);
    // A single forward pass resolves almost every cascade (rules inspect
    // already-rewritten operands); iterate defensively to a fixpoint.
    for _ in 0..4 {
        let next = pass(&current);
        let stable = next == current;
        current = next;
        if stable {
            break;
        }
    }
    let report = OptReport {
        before,
        after: current.stats(),
        nodes_before,
        nodes_after: current.nodes().len(),
        fusion: None,
    };
    (current, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn eval1(n: &Netlist, vals: &[(&str, f64)]) -> Vec<(String, f64)> {
        let inputs: HashMap<String, f64> =
            vals.iter().map(|(k, v)| ((*k).to_owned(), *v)).collect();
        n.eval(&inputs).unwrap()
    }

    #[test]
    fn folds_constants() {
        let mut n = Netlist::new("c");
        let a = n.push(Node::Const(2.0));
        let b = n.push(Node::Const(3.0));
        let s = n.push(Node::Add(a, b));
        let m = n.push(Node::Mul(s, s));
        n.output("o", m).unwrap();
        let opt = optimize(&n);
        assert_eq!(opt.nodes(), &[Node::Const(25.0)]);
        assert_eq!(eval1(&opt, &[]), vec![("o".to_owned(), 25.0)]);
    }

    #[test]
    fn strength_reduces_mul_by_const() {
        let mut n = Netlist::new("sr");
        let x = n.push(Node::Input("x".into()));
        let c = n.push(Node::Const(3.5));
        let m = n.push(Node::Mul(c, x));
        n.output("o", m).unwrap();
        let (opt, report) = optimize_with_report(&n);
        assert_eq!(report.before.muls, 1);
        assert_eq!(report.after.muls, 0);
        assert_eq!(report.after.const_muls, 1);
        assert_eq!(eval1(&opt, &[("x", 2.0)]), vec![("o".to_owned(), 7.0)]);
    }

    #[test]
    fn applies_identities() {
        let mut n = Netlist::new("id");
        let x = n.push(Node::Input("x".into()));
        let zero = n.push(Node::Const(0.0));
        let one = n.push(Node::Const(1.0));
        let x1 = n.push(Node::Mul(x, one)); // x·1 → x
        let x2 = n.push(Node::Add(x1, zero)); // x+0 → x
        let x3 = n.push(Node::Neg(x2));
        let x4 = n.push(Node::Neg(x3)); // −(−x) → x
        let x5 = n.push(Node::MulConst(x4, -1.0)); // x·−1 → −x
        n.output("o", x5).unwrap();
        let opt = optimize(&n);
        assert_eq!(
            opt.nodes(),
            &[Node::Input("x".into()), Node::Neg(0)],
            "{opt:?}"
        );
        assert_eq!(eval1(&opt, &[("x", 4.0)]), vec![("o".to_owned(), -4.0)]);
    }

    #[test]
    fn mul_by_zero_collapses() {
        let mut n = Netlist::new("z");
        let x = n.push(Node::Input("x".into()));
        let y = n.push(Node::Input("y".into()));
        let xz = n.push(Node::MulConst(x, 0.0));
        let s = n.push(Node::Add(xz, y)); // 0 + y → y
        n.output("o", s).unwrap();
        let opt = optimize(&n);
        assert_eq!(opt.stats(), NetlistStats::default());
        assert_eq!(
            eval1(&opt, &[("x", 9.0), ("y", 2.5)]),
            vec![("o".to_owned(), 2.5)]
        );
    }

    #[test]
    fn cse_merges_identical_subtrees() {
        let mut n = Netlist::new("cse");
        let a = n.push(Node::Input("a".into()));
        let b = n.push(Node::Input("b".into()));
        let p1 = n.push(Node::Mul(a, b));
        let p2 = n.push(Node::Mul(b, a)); // commutative duplicate
        let s = n.push(Node::Add(p1, p2));
        n.output("o", s).unwrap();
        let opt = optimize(&n);
        assert_eq!(opt.stats().muls, 1, "{opt:?}");
        assert_eq!(
            eval1(&opt, &[("a", 3.0), ("b", 4.0)]),
            vec![("o".to_owned(), 24.0)]
        );
    }

    #[test]
    fn sub_canonicalizes_and_stays_exact() {
        let mut n = Netlist::new("sub");
        let a = n.push(Node::Input("a".into()));
        let b = n.push(Node::Input("b".into()));
        let d = n.push(Node::Sub(a, b));
        n.output("o", d).unwrap();
        let opt = optimize(&n);
        assert!(opt.nodes().iter().all(|x| !matches!(x, Node::Sub(..))));
        assert_eq!(
            eval1(&opt, &[("a", 1.25), ("b", 0.75)]),
            vec![("o".to_owned(), 0.5)]
        );
    }

    #[test]
    fn dead_nodes_are_removed_but_inputs_kept() {
        let mut n = Netlist::new("dce");
        let a = n.push(Node::Input("a".into()));
        let unused = n.push(Node::Input("unused".into()));
        let dead = n.push(Node::Mul(a, unused));
        let _ = n.push(Node::Neg(dead)); // never an output
        let keep = n.push(Node::Neg(a));
        n.output("o", keep).unwrap();
        let opt = optimize(&n);
        // The dead multiplier tree is gone; both inputs survive so the
        // module interface is stable.
        assert_eq!(opt.stats().muls, 0);
        let names: Vec<&str> = opt
            .nodes()
            .iter()
            .filter_map(|x| match x {
                Node::Input(name) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["a", "unused"]);
        let inputs: HashMap<String, f64> = [("a".to_owned(), 2.0), ("unused".to_owned(), 7.0)]
            .into_iter()
            .collect();
        assert!(matches!(
            opt.eval::<f64>(&HashMap::new()),
            Err(crate::NetlistError::MissingInput(_))
        ));
        assert_eq!(opt.eval(&inputs).unwrap(), vec![("o".to_owned(), -2.0)]);
    }

    #[test]
    fn report_display_is_readable() {
        let mut n = Netlist::new("r");
        let x = n.push(Node::Input("x".into()));
        let one = n.push(Node::Const(1.0));
        let m = n.push(Node::Mul(x, one));
        n.output("o", m).unwrap();
        let (_, report) = optimize_with_report(&n);
        let text = report.to_string();
        assert!(text.contains("muls 1→0"), "{text}");
    }

    #[test]
    fn optimization_is_idempotent() {
        let mut n = Netlist::new("fix");
        let a = n.push(Node::Input("a".into()));
        let b = n.push(Node::Input("b".into()));
        let d = n.push(Node::Sub(a, b));
        let m = n.push(Node::Mul(d, d));
        n.output("o", m).unwrap();
        let once = optimize(&n);
        let twice = optimize(&once);
        assert_eq!(once, twice);
    }
}
