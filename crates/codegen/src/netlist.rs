//! A small structural netlist IR for generated functional units.
//!
//! The paper's automation path (§7) has a high-level flow instantiate
//! "domain-specific libraries of hand-optimized RTL modules" with per-robot
//! parameters. [`Netlist`] is the intermediate form of that flow here: a
//! topologically ordered list of arithmetic nodes with named inputs and
//! outputs. It can be
//!
//! * built from a robot's morphology (pruned by the structural sparsity),
//! * **evaluated** in any [`Scalar`] (the executable-netlist check that
//!   closes the generator loop),
//! * serialized to a line-based text format and parsed back, and
//! * lowered to Verilog by [`crate::verilog`].

use robo_spatial::Scalar;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within a netlist.
pub type NodeId = usize;

/// One arithmetic node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// A named external input.
    Input(String),
    /// A per-robot constant (stored as `f64`; converted to the evaluation
    /// scalar or a Q-format literal at lowering time).
    Const(f64),
    /// Product of two variable signals (a DSP multiplier).
    Mul(NodeId, NodeId),
    /// Product of a variable signal and a constant (a constant-multiplier
    /// circuit, cheaper than a full multiplier — §5.2).
    MulConst(NodeId, f64),
    /// Sum of two signals.
    Add(NodeId, NodeId),
    /// Difference of two signals.
    Sub(NodeId, NodeId),
    /// Negation.
    Neg(NodeId),
}

/// A generated netlist: nodes in topological order plus named outputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
}

/// Counts of hardware-relevant nodes in a netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Variable×variable multipliers.
    pub muls: usize,
    /// Constant multipliers.
    pub const_muls: usize,
    /// Adders and subtractors.
    pub adds: usize,
    /// Negations (wire-level, nearly free).
    pub negs: usize,
}

/// Error from evaluating or parsing a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A named input was not provided at evaluation time.
    MissingInput(String),
    /// A node referenced a later or nonexistent node.
    BadReference {
        /// The offending node.
        node: NodeId,
    },
    /// Two outputs were declared with the same name (the lowered module
    /// would have colliding ports).
    DuplicateOutput {
        /// The name declared twice.
        name: String,
    },
    /// The text form could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::MissingInput(name) => write!(f, "missing input `{name}`"),
            Self::BadReference { node } => write!(f, "node {node} has a bad reference"),
            Self::DuplicateOutput { name } => write!(f, "duplicate output `{name}`"),
            Self::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for NetlistError {}

impl Netlist {
    /// Creates an empty netlist with a module name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The named outputs.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Appends a node, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if the node references an id at or beyond its own position
    /// (netlists are built in topological order).
    pub fn push(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len();
        let check = |r: NodeId| assert!(r < id, "node {id} references future node {r}");
        match &node {
            Node::Input(_) | Node::Const(_) => {}
            Node::Mul(a, b) | Node::Add(a, b) | Node::Sub(a, b) => {
                check(*a);
                check(*b);
            }
            Node::MulConst(a, _) | Node::Neg(a) => check(*a),
        }
        self.nodes.push(node);
        id
    }

    /// Declares a named output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateOutput`] if an output with the same
    /// name was already declared.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist (a builder programming error, like
    /// [`Netlist::push`]'s topological-order check).
    pub fn output(&mut self, name: impl Into<String>, node: NodeId) -> Result<(), NetlistError> {
        assert!(node < self.nodes.len(), "output references missing node");
        let name = name.into();
        if self.outputs.iter().any(|(n, _)| *n == name) {
            return Err(NetlistError::DuplicateOutput { name });
        }
        self.outputs.push((name, node));
        Ok(())
    }

    /// Hardware-relevant node counts.
    pub fn stats(&self) -> NetlistStats {
        let mut s = NetlistStats::default();
        for n in &self.nodes {
            match n {
                Node::Mul(..) => s.muls += 1,
                Node::MulConst(..) => s.const_muls += 1,
                Node::Add(..) | Node::Sub(..) => s.adds += 1,
                Node::Neg(..) => s.negs += 1,
                Node::Input(_) | Node::Const(_) => {}
            }
        }
        s
    }

    /// Evaluates the netlist with the given named inputs.
    ///
    /// This is the reference interpreter: simple, string-keyed, and kept as
    /// the oracle the optimizer ([`crate::optimize`]) and the compiled
    /// evaluator ([`crate::CompiledNetlist`]) are checked against. For
    /// repeated evaluation use the compiled form, which interns inputs to
    /// dense slots and allocates nothing in steady state.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MissingInput`] if an input is absent.
    pub fn eval<S: Scalar>(
        &self,
        inputs: &HashMap<String, S>,
    ) -> Result<Vec<(String, S)>, NetlistError> {
        Ok(self
            .eval_ref(inputs)?
            .into_iter()
            .map(|(name, v)| (name.to_owned(), v))
            .collect())
    }

    /// Like [`Netlist::eval`], but borrowing the output names from the
    /// netlist instead of cloning a `String` per output per call.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::MissingInput`] if an input is absent.
    pub fn eval_ref<S: Scalar>(
        &self,
        inputs: &HashMap<String, S>,
    ) -> Result<Vec<(&str, S)>, NetlistError> {
        let mut values: Vec<S> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let v = match node {
                Node::Input(name) => *inputs
                    .get(name)
                    .ok_or_else(|| NetlistError::MissingInput(name.clone()))?,
                Node::Const(c) => S::from_f64(*c),
                Node::Mul(a, b) => values[*a] * values[*b],
                Node::MulConst(a, c) => values[*a] * S::from_f64(*c),
                Node::Add(a, b) => values[*a] + values[*b],
                Node::Sub(a, b) => values[*a] - values[*b],
                Node::Neg(a) => -values[*a],
            };
            values.push(v);
        }
        Ok(self
            .outputs
            .iter()
            .map(|(name, id)| (name.as_str(), values[*id]))
            .collect())
    }

    /// Serializes to the line-based text form (`.rnet`).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "netlist {}", self.name);
        for (i, n) in self.nodes.iter().enumerate() {
            let line = match n {
                Node::Input(name) => format!("{i} input {name}"),
                Node::Const(c) => format!("{i} const {c:?}"),
                Node::Mul(a, b) => format!("{i} mul {a} {b}"),
                Node::MulConst(a, c) => format!("{i} mulc {a} {c:?}"),
                Node::Add(a, b) => format!("{i} add {a} {b}"),
                Node::Sub(a, b) => format!("{i} sub {a} {b}"),
                Node::Neg(a) => format!("{i} neg {a}"),
            };
            let _ = writeln!(out, "{line}");
        }
        for (name, id) in &self.outputs {
            let _ = writeln!(out, "output {name} {id}");
        }
        out
    }

    /// Parses the text form produced by [`Netlist::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Parse`] with a line number on malformed
    /// input.
    pub fn parse(text: &str) -> Result<Self, NetlistError> {
        let err = |line: usize, message: &str| NetlistError::Parse {
            line,
            message: message.to_owned(),
        };
        let mut netlist = Netlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let first = parts.next().ok_or_else(|| err(lineno, "empty line"))?;
            if first == "netlist" {
                netlist.name = parts.collect::<Vec<_>>().join(" ");
                continue;
            }
            if first == "output" {
                let name = parts
                    .next()
                    .ok_or_else(|| err(lineno, "output needs a name"))?;
                let id: NodeId = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "output needs a node id"))?;
                if id >= netlist.nodes.len() {
                    return Err(NetlistError::BadReference { node: id });
                }
                if netlist.outputs.iter().any(|(n, _)| n == name) {
                    return Err(NetlistError::DuplicateOutput {
                        name: name.to_owned(),
                    });
                }
                netlist.outputs.push((name.to_owned(), id));
                continue;
            }
            let expect_id: NodeId = first
                .parse()
                .map_err(|_| err(lineno, "expected a node id"))?;
            if expect_id != netlist.nodes.len() {
                return Err(err(lineno, "node ids must be dense and in order"));
            }
            let op = parts.next().ok_or_else(|| err(lineno, "missing op"))?;
            let mut arg = || -> Result<NodeId, NetlistError> {
                parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(lineno, "missing node argument"))
            };
            let node = match op {
                "input" => Node::Input(
                    parts
                        .next()
                        .ok_or_else(|| err(lineno, "input needs a name"))?
                        .to_owned(),
                ),
                "const" => Node::Const(
                    parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(lineno, "const needs a value"))?,
                ),
                "mul" => Node::Mul(arg()?, arg()?),
                "mulc" => {
                    let a = arg()?;
                    let c: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(lineno, "mulc needs a constant"))?;
                    Node::MulConst(a, c)
                }
                "add" => Node::Add(arg()?, arg()?),
                "sub" => Node::Sub(arg()?, arg()?),
                "neg" => Node::Neg(arg()?),
                other => return Err(err(lineno, &format!("unknown op `{other}`"))),
            };
            // Re-validate topological order through push's assertion, but
            // with an error instead of a panic for untrusted text.
            let id = netlist.nodes.len();
            let ok = match &node {
                Node::Input(_) | Node::Const(_) => true,
                Node::Mul(a, b) | Node::Add(a, b) | Node::Sub(a, b) => *a < id && *b < id,
                Node::MulConst(a, _) | Node::Neg(a) => *a < id,
            };
            if !ok {
                return Err(NetlistError::BadReference { node: id });
            }
            netlist.nodes.push(node);
        }
        Ok(netlist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        // o = (a * b) + 2c - neg-checked
        let mut n = Netlist::new("tiny");
        let a = n.push(Node::Input("a".into()));
        let b = n.push(Node::Input("b".into()));
        let c = n.push(Node::Input("c".into()));
        let ab = n.push(Node::Mul(a, b));
        let c2 = n.push(Node::MulConst(c, 2.0));
        let sum = n.push(Node::Add(ab, c2));
        let out = n.push(Node::Neg(sum));
        n.output("o", out).unwrap();
        n
    }

    #[test]
    fn evaluates() {
        let n = tiny();
        let mut inputs = HashMap::new();
        inputs.insert("a".to_owned(), 3.0_f64);
        inputs.insert("b".to_owned(), 4.0);
        inputs.insert("c".to_owned(), 5.0);
        let out = n.eval(&inputs).unwrap();
        assert_eq!(out, vec![("o".to_owned(), -22.0)]);
    }

    #[test]
    fn missing_input_is_error() {
        let n = tiny();
        let err = n.eval::<f64>(&HashMap::new()).unwrap_err();
        assert!(matches!(err, NetlistError::MissingInput(_)));
    }

    #[test]
    fn eval_ref_borrows_output_names() {
        let n = tiny();
        let mut inputs = HashMap::new();
        inputs.insert("a".to_owned(), 3.0_f64);
        inputs.insert("b".to_owned(), 4.0);
        inputs.insert("c".to_owned(), 5.0);
        let out = n.eval_ref(&inputs).unwrap();
        assert_eq!(out, vec![("o", -22.0)]);
    }

    #[test]
    fn builder_rejects_duplicate_output_names() {
        let mut n = Netlist::new("dup");
        let a = n.push(Node::Input("a".into()));
        let b = n.push(Node::Input("b".into()));
        n.output("o", a).unwrap();
        let err = n.output("o", b).unwrap_err();
        assert_eq!(
            err,
            NetlistError::DuplicateOutput {
                name: "o".to_owned()
            }
        );
        // The netlist is unchanged by the rejected declaration.
        assert_eq!(n.outputs(), &[("o".to_owned(), a)]);
    }

    #[test]
    fn parse_rejects_duplicate_output_names() {
        let bad = "netlist x\n0 input a\n1 input b\noutput o 0\noutput o 1\n";
        assert_eq!(
            Netlist::parse(bad),
            Err(NetlistError::DuplicateOutput {
                name: "o".to_owned()
            })
        );
    }

    #[test]
    fn stats_count_ops() {
        let s = tiny().stats();
        assert_eq!(
            s,
            NetlistStats {
                muls: 1,
                const_muls: 1,
                adds: 1,
                negs: 1
            }
        );
    }

    #[test]
    fn text_round_trip() {
        let n = tiny();
        let text = n.to_text();
        let parsed = Netlist::parse(&text).unwrap();
        assert_eq!(parsed, n);
    }

    #[test]
    fn parse_rejects_forward_references() {
        let bad = "netlist x\n0 add 1 2\n";
        assert!(matches!(
            Netlist::parse(bad),
            Err(NetlistError::BadReference { .. })
        ));
    }

    #[test]
    fn parse_rejects_sparse_ids() {
        let bad = "netlist x\n5 input a\n";
        assert!(matches!(
            Netlist::parse(bad),
            Err(NetlistError::Parse { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "future node")]
    fn push_asserts_topological_order() {
        let mut n = Netlist::new("bad");
        n.push(Node::Add(0, 1));
    }

    #[test]
    fn eval_in_fixed_point() {
        use robo_fixed::Fix32_16;
        let n = tiny();
        let mut inputs = HashMap::new();
        inputs.insert("a".to_owned(), Fix32_16::from_f64(1.5));
        inputs.insert("b".to_owned(), Fix32_16::from_f64(-2.0));
        inputs.insert("c".to_owned(), Fix32_16::from_f64(0.25));
        let out = n.eval(&inputs).unwrap();
        assert_eq!(out[0].1.to_f64(), 2.5); // -((1.5·-2) + 0.5)
    }
}
