//! Direct-threaded execution of compiled tapes.
//!
//! The `match`-dispatch interpreter in `compiled.rs` pays a branch per
//! instruction and a bounds check per operand. This module lowers a
//! compiled tape once, at build time, into *direct-threaded* form:
//!
//! * each instruction becomes a **function pointer** paired with an index
//!   into a flat array of pre-resolved register offsets ([`OpArgs`]), so
//!   the hot loop is `call, call, call …` with no central dispatch;
//! * runs of consecutive identical opcodes — ubiquitous in the
//!   multiply-accumulate chains the fusion pass produces — are grouped
//!   into **superinstruction blocks** (×4, then ×2, then singles) whose
//!   handlers execute the run straight-line, cutting indirect calls by up
//!   to 4×;
//! * for the AVX2-width lane bundles
//!   ([`F64x4`](robo_spatial::simd::F64x4) /
//!   [`F32x8`](robo_spatial::simd::F32x8) on x86-64) a table of
//!   `#[target_feature(enable = "avx2")]` handlers is selected instead
//!   when the host supports AVX2, computing each op in one 256-bit
//!   register operation per lane bundle. This is the only place AVX2
//!   instructions are emitted — attributed handlers called through
//!   function pointers are the standard runtime-dispatch pattern that
//!   keeps the rest of the crate portable.
//!
//! # Bit-identity
//!
//! Threaded execution preserves the interpreter's semantics exactly: the
//! instruction order is unchanged (superinstruction blocks run their ops
//! strictly in sequence), every handler reads all operands before its
//! single write (so destination-aliases-operand recycling behaves
//! identically), and the fused ops keep their two rounding steps — the
//! AVX2 handlers use separate multiply and add instructions, **never
//! FMA**. The `match` interpreter is retained as the oracle
//! (`CompiledNetlist::eval_into_regs_interp`) and proptests pin
//! bit-equality for `f64`/`f32`/fixed point.
//!
//! # Safety model
//!
//! All register and constant indices are validated against the register
//! file and constant table sizes when the threaded form is built
//! ([`ThreadedTape::build`] panics on violation — a compiler bug, not a
//! user error). [`ThreadedTape::run`] re-checks the buffer lengths, so
//! every unchecked pointer offset inside a handler is in bounds by
//! construction; handlers only ever touch memory through the `regs`,
//! `consts`, and `args` pointers they are handed.

use robo_spatial::Scalar;

/// Pre-resolved operand/destination offsets for one tape instruction.
///
/// Field meaning depends on the opcode: `a` is the constant-table index
/// for `Const` and the first register operand otherwise; `b` is the
/// constant-table index for `MulConst`/`MulConstAdd` and the second
/// register operand otherwise; `c` is the fused addend register.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct OpArgs {
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
    pub(crate) dst: u32,
}

/// One threaded handler: executes one superinstruction block of 1, 2, or
/// 4 decoded instructions starting at `args`.
///
/// The `extern "C"` ABI is load-bearing: the template JIT (`jit.rs`)
/// emits machine code that calls these handlers directly, which is only
/// sound against a defined calling convention (the Rust ABI is
/// unspecified). The threaded dispatch loop calls them through the same
/// pointers, so both execution paths share one handler table.
///
/// # Safety
///
/// Callers must guarantee that `regs` points to at least
/// `ThreadedTape::min_regs` initialized values, `consts` to exactly
/// `ThreadedTape::n_consts` values, and `args` to at least as many
/// [`OpArgs`] entries as the block width — with every index inside them
/// below those bounds (validated by [`ThreadedTape::build`]).
pub(crate) type OpFn<S> = unsafe extern "C" fn(regs: *mut S, consts: *const S, args: *const OpArgs);

/// Opcode classes, mirroring `Instr` in `compiled.rs` (kept in sync by
/// `decode` there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Opcode {
    /// `dst = consts[a]`.
    Const,
    /// `dst = r[a] · r[b]`.
    Mul,
    /// `dst = r[a] · consts[b]`.
    MulConst,
    /// `dst = r[a] + r[b]`.
    Add,
    /// `dst = r[a] − r[b]`.
    Sub,
    /// `dst = −r[a]`.
    Neg,
    /// `dst = (r[a] · r[b]) + r[c]`, two rounding steps.
    MulAdd,
    /// `dst = (r[a] · consts[b]) + r[c]`, two rounding steps.
    MulConstAdd,
    /// `dst = (r[a] + r[b]) + r[c]`, two rounding steps.
    AddAdd,
    /// `dst = (−r[a]) + r[c]`.
    NegAdd,
}

impl Opcode {
    /// Builds the uniform argument record for this opcode.
    pub(crate) fn args(self, a: u32, b: u32, c: u32, dst: u32) -> (Opcode, OpArgs) {
        (self, OpArgs { a, b, c, dst })
    }
}

/// Superinstruction block widths; runs of one opcode are tiled greedily
/// as ⌊k/4⌋ four-blocks, then a two-block, then a single.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockWidth {
    One,
    Two,
    Four,
}

impl BlockWidth {
    fn len(self) -> usize {
        match self {
            BlockWidth::One => 1,
            BlockWidth::Two => 2,
            BlockWidth::Four => 4,
        }
    }
}

/// Generates the three block-width handlers for one opcode. The body is
/// written once against `$a` (one decoded instruction's [`OpArgs`]); the
/// ×2/×4 forms run it over consecutive entries, strictly in order, which
/// the optimizer unrolls into straight-line code.
macro_rules! portable_handlers {
    ($one:ident, $two:ident, $four:ident, ($regs:ident, $consts:ident, $a:ident) => $body:block) => {
        unsafe extern "C" fn $one<S: Scalar>(
            $regs: *mut S,
            $consts: *const S,
            args: *const OpArgs,
        ) {
            // SAFETY: `args` points to at least one entry (caller
            // contract of `OpFn`).
            let $a = unsafe { &*args };
            $body
        }

        unsafe extern "C" fn $two<S: Scalar>(
            $regs: *mut S,
            $consts: *const S,
            args: *const OpArgs,
        ) {
            for k in 0..2 {
                // SAFETY: `args` points to at least two entries (caller
                // contract of `OpFn` for a ×2 block).
                let $a = unsafe { &*args.add(k) };
                $body
            }
        }

        unsafe extern "C" fn $four<S: Scalar>(
            $regs: *mut S,
            $consts: *const S,
            args: *const OpArgs,
        ) {
            for k in 0..4 {
                // SAFETY: `args` points to at least four entries (caller
                // contract of `OpFn` for a ×4 block).
                let $a = unsafe { &*args.add(k) };
                $body
            }
        }
    };
}

// Each body reads every operand before its single write, so an
// instruction whose destination recycles an operand register behaves
// exactly as in the interpreter. The SAFETY arguments are identical in
// all bodies: every index was validated against the register-file /
// constant-table bounds by `ThreadedTape::build`, and `run` checked the
// buffers are at least that large.
portable_handlers!(h_const1, h_const2, h_const4, (regs, consts, a) => {
    // SAFETY: `a.a < n_consts` and `a.dst < min_regs` (build-validated).
    unsafe { *regs.add(a.dst as usize) = *consts.add(a.a as usize) };
});
portable_handlers!(h_mul1, h_mul2, h_mul4, (regs, consts, a) => {
    let _ = consts;
    // SAFETY: `a.a`, `a.b`, `a.dst` < min_regs (build-validated).
    unsafe { *regs.add(a.dst as usize) = *regs.add(a.a as usize) * *regs.add(a.b as usize) };
});
portable_handlers!(h_mulconst1, h_mulconst2, h_mulconst4, (regs, consts, a) => {
    // SAFETY: `a.a`, `a.dst` < min_regs; `a.b < n_consts`
    // (build-validated).
    unsafe { *regs.add(a.dst as usize) = *regs.add(a.a as usize) * *consts.add(a.b as usize) };
});
portable_handlers!(h_add1, h_add2, h_add4, (regs, consts, a) => {
    let _ = consts;
    // SAFETY: `a.a`, `a.b`, `a.dst` < min_regs (build-validated).
    unsafe { *regs.add(a.dst as usize) = *regs.add(a.a as usize) + *regs.add(a.b as usize) };
});
portable_handlers!(h_sub1, h_sub2, h_sub4, (regs, consts, a) => {
    let _ = consts;
    // SAFETY: `a.a`, `a.b`, `a.dst` < min_regs (build-validated).
    unsafe { *regs.add(a.dst as usize) = *regs.add(a.a as usize) - *regs.add(a.b as usize) };
});
portable_handlers!(h_neg1, h_neg2, h_neg4, (regs, consts, a) => {
    let _ = consts;
    // SAFETY: `a.a`, `a.dst` < min_regs (build-validated).
    unsafe { *regs.add(a.dst as usize) = -*regs.add(a.a as usize) };
});
portable_handlers!(h_muladd1, h_muladd2, h_muladd4, (regs, consts, a) => {
    let _ = consts;
    // Two rounding steps, exactly as the interpreter computes MulAdd.
    // SAFETY: `a.a`, `a.b`, `a.c`, `a.dst` < min_regs (build-validated).
    unsafe {
        let t = *regs.add(a.a as usize) * *regs.add(a.b as usize);
        *regs.add(a.dst as usize) = t + *regs.add(a.c as usize);
    }
});
portable_handlers!(h_mulconstadd1, h_mulconstadd2, h_mulconstadd4, (regs, consts, a) => {
    // SAFETY: `a.a`, `a.c`, `a.dst` < min_regs; `a.b < n_consts`
    // (build-validated).
    unsafe {
        let t = *regs.add(a.a as usize) * *consts.add(a.b as usize);
        *regs.add(a.dst as usize) = t + *regs.add(a.c as usize);
    }
});
portable_handlers!(h_addadd1, h_addadd2, h_addadd4, (regs, consts, a) => {
    let _ = consts;
    // SAFETY: `a.a`, `a.b`, `a.c`, `a.dst` < min_regs (build-validated).
    unsafe {
        let t = *regs.add(a.a as usize) + *regs.add(a.b as usize);
        *regs.add(a.dst as usize) = t + *regs.add(a.c as usize);
    }
});
portable_handlers!(h_negadd1, h_negadd2, h_negadd4, (regs, consts, a) => {
    let _ = consts;
    // SAFETY: `a.a`, `a.c`, `a.dst` < min_regs (build-validated).
    unsafe {
        let t = -*regs.add(a.a as usize);
        *regs.add(a.dst as usize) = t + *regs.add(a.c as usize);
    }
});

/// The portable handler for `(op, width)`, generic over any scalar.
fn portable_handler<S: Scalar>(op: Opcode, width: BlockWidth) -> OpFn<S> {
    use BlockWidth as W;
    match (op, width) {
        (Opcode::Const, W::One) => h_const1::<S>,
        (Opcode::Const, W::Two) => h_const2::<S>,
        (Opcode::Const, W::Four) => h_const4::<S>,
        (Opcode::Mul, W::One) => h_mul1::<S>,
        (Opcode::Mul, W::Two) => h_mul2::<S>,
        (Opcode::Mul, W::Four) => h_mul4::<S>,
        (Opcode::MulConst, W::One) => h_mulconst1::<S>,
        (Opcode::MulConst, W::Two) => h_mulconst2::<S>,
        (Opcode::MulConst, W::Four) => h_mulconst4::<S>,
        (Opcode::Add, W::One) => h_add1::<S>,
        (Opcode::Add, W::Two) => h_add2::<S>,
        (Opcode::Add, W::Four) => h_add4::<S>,
        (Opcode::Sub, W::One) => h_sub1::<S>,
        (Opcode::Sub, W::Two) => h_sub2::<S>,
        (Opcode::Sub, W::Four) => h_sub4::<S>,
        (Opcode::Neg, W::One) => h_neg1::<S>,
        (Opcode::Neg, W::Two) => h_neg2::<S>,
        (Opcode::Neg, W::Four) => h_neg4::<S>,
        (Opcode::MulAdd, W::One) => h_muladd1::<S>,
        (Opcode::MulAdd, W::Two) => h_muladd2::<S>,
        (Opcode::MulAdd, W::Four) => h_muladd4::<S>,
        (Opcode::MulConstAdd, W::One) => h_mulconstadd1::<S>,
        (Opcode::MulConstAdd, W::Two) => h_mulconstadd2::<S>,
        (Opcode::MulConstAdd, W::Four) => h_mulconstadd4::<S>,
        (Opcode::AddAdd, W::One) => h_addadd1::<S>,
        (Opcode::AddAdd, W::Two) => h_addadd2::<S>,
        (Opcode::AddAdd, W::Four) => h_addadd4::<S>,
        (Opcode::NegAdd, W::One) => h_negadd1::<S>,
        (Opcode::NegAdd, W::Two) => h_negadd2::<S>,
        (Opcode::NegAdd, W::Four) => h_negadd4::<S>,
    }
}

/// AVX2-attributed handler tables for the 256-bit lane bundles. Selected
/// only when the host reports AVX2 at tape-build time; everything else
/// in the crate remains free of AVX instructions.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{BlockWidth, OpArgs, OpFn, Opcode};
    use core::arch::x86_64::*;
    use robo_spatial::simd::{F32x8, F64x4};

    /// Generates the three block-width handlers for one opcode at one
    /// lane-bundle type, with the op body written once against `$a`.
    ///
    /// Every handler carries `#[target_feature(enable = "avx2")]`: the
    /// intrinsics only inline (and only run) inside attributed
    /// functions, and the coercion to an `unsafe fn` pointer is what
    /// makes runtime dispatch of attributed code sound — the pointer is
    /// only installed after `is_x86_feature_detected!("avx2")`.
    macro_rules! avx2_handlers {
        ($one:ident, $two:ident, $four:ident, $t:ty, ($regs:ident, $consts:ident, $a:ident) => $body:block) => {
            #[target_feature(enable = "avx2")]
            unsafe extern "C" fn $one($regs: *mut $t, $consts: *const $t, args: *const OpArgs) {
                // SAFETY: `args` points to at least one entry (caller
                // contract of `OpFn`).
                let $a = unsafe { &*args };
                $body
            }

            #[target_feature(enable = "avx2")]
            unsafe extern "C" fn $two($regs: *mut $t, $consts: *const $t, args: *const OpArgs) {
                for k in 0..2 {
                    // SAFETY: `args` points to at least two entries
                    // (caller contract of `OpFn` for a ×2 block).
                    let $a = unsafe { &*args.add(k) };
                    $body
                }
            }

            #[target_feature(enable = "avx2")]
            unsafe extern "C" fn $four($regs: *mut $t, $consts: *const $t, args: *const OpArgs) {
                for k in 0..4 {
                    // SAFETY: `args` points to at least four entries
                    // (caller contract of `OpFn` for a ×4 block).
                    let $a = unsafe { &*args.add(k) };
                    $body
                }
            }
        };
    }

    /// Expands the ten opcode bodies for one element type. `$ld`/`$st`
    /// are the aligned 256-bit load/store intrinsics (sound because the
    /// lane bundles are `repr(align(32))` and both `Vec<F64x4>` and
    /// `[F64x4; N]` register files preserve element alignment), and
    /// `$mul`/`$add`/`$sub`/`$xor`/`$set1` the elementwise arithmetic.
    /// Fused ops issue separate `$mul`/`$add` — never FMA — preserving
    /// both rounding steps. Handler names are taken explicitly because
    /// stable `macro_rules!` cannot concatenate identifiers.
    macro_rules! avx2_ops {
        ($t:ty, $elem:ty, $ld:ident, $st:ident, $mul:ident, $add:ident, $sub:ident, $xor:ident, $set1:ident,
         $c1:ident $c2:ident $c4:ident, $m1:ident $m2:ident $m4:ident, $mc1:ident $mc2:ident $mc4:ident,
         $a1:ident $a2:ident $a4:ident, $s1:ident $s2:ident $s4:ident, $n1:ident $n2:ident $n4:ident,
         $ma1:ident $ma2:ident $ma4:ident, $mca1:ident $mca2:ident $mca4:ident,
         $aa1:ident $aa2:ident $aa4:ident, $na1:ident $na2:ident $na4:ident,
         $handler:ident) => {
            avx2_handlers!($c1, $c2, $c4, $t, (regs, consts, a) => {
                // SAFETY: `a.a < n_consts`, `a.dst < min_regs`
                // (build-validated); pointers are 32-byte aligned
                // (`repr(align(32))` elements).
                unsafe {
                    let v = $ld(consts.add(a.a as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), v);
                }
            });
            avx2_handlers!($m1, $m2, $m4, $t, (regs, consts, a) => {
                let _ = consts;
                // SAFETY: `a.a`, `a.b`, `a.dst` < min_regs
                // (build-validated); 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let y = $ld(regs.add(a.b as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $mul(x, y));
                }
            });
            avx2_handlers!($mc1, $mc2, $mc4, $t, (regs, consts, a) => {
                // SAFETY: `a.a`, `a.dst` < min_regs, `a.b < n_consts`
                // (build-validated); 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let y = $ld(consts.add(a.b as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $mul(x, y));
                }
            });
            avx2_handlers!($a1, $a2, $a4, $t, (regs, consts, a) => {
                let _ = consts;
                // SAFETY: `a.a`, `a.b`, `a.dst` < min_regs
                // (build-validated); 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let y = $ld(regs.add(a.b as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $add(x, y));
                }
            });
            avx2_handlers!($s1, $s2, $s4, $t, (regs, consts, a) => {
                let _ = consts;
                // SAFETY: `a.a`, `a.b`, `a.dst` < min_regs
                // (build-validated); 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let y = $ld(regs.add(a.b as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $sub(x, y));
                }
            });
            avx2_handlers!($n1, $n2, $n4, $t, (regs, consts, a) => {
                let _ = consts;
                // XOR with the sign mask is the exact IEEE sign flip.
                // SAFETY: `a.a`, `a.dst` < min_regs (build-validated);
                // 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $xor(x, $set1(-0.0)));
                }
            });
            avx2_handlers!($ma1, $ma2, $ma4, $t, (regs, consts, a) => {
                let _ = consts;
                // Separate multiply then add — two rounding steps, no FMA.
                // SAFETY: `a.a`, `a.b`, `a.c`, `a.dst` < min_regs
                // (build-validated); 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let y = $ld(regs.add(a.b as usize).cast::<$elem>());
                    let c = $ld(regs.add(a.c as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $add($mul(x, y), c));
                }
            });
            avx2_handlers!($mca1, $mca2, $mca4, $t, (regs, consts, a) => {
                // Separate multiply then add — two rounding steps, no FMA.
                // SAFETY: `a.a`, `a.c`, `a.dst` < min_regs,
                // `a.b < n_consts` (build-validated); 32-byte-aligned
                // pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let y = $ld(consts.add(a.b as usize).cast::<$elem>());
                    let c = $ld(regs.add(a.c as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $add($mul(x, y), c));
                }
            });
            avx2_handlers!($aa1, $aa2, $aa4, $t, (regs, consts, a) => {
                let _ = consts;
                // SAFETY: `a.a`, `a.b`, `a.c`, `a.dst` < min_regs
                // (build-validated); 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let y = $ld(regs.add(a.b as usize).cast::<$elem>());
                    let c = $ld(regs.add(a.c as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $add($add(x, y), c));
                }
            });
            avx2_handlers!($na1, $na2, $na4, $t, (regs, consts, a) => {
                let _ = consts;
                // SAFETY: `a.a`, `a.c`, `a.dst` < min_regs
                // (build-validated); 32-byte-aligned pointers.
                unsafe {
                    let x = $ld(regs.add(a.a as usize).cast::<$elem>());
                    let c = $ld(regs.add(a.c as usize).cast::<$elem>());
                    $st(regs.add(a.dst as usize).cast::<$elem>(), $add($xor(x, $set1(-0.0)), c));
                }
            });

            /// The AVX2 handler for `(op, width)` at this lane type.
            fn $handler(op: Opcode, width: BlockWidth) -> OpFn<$t> {
                use BlockWidth as W;
                match (op, width) {
                    (Opcode::Const, W::One) => $c1,
                    (Opcode::Const, W::Two) => $c2,
                    (Opcode::Const, W::Four) => $c4,
                    (Opcode::Mul, W::One) => $m1,
                    (Opcode::Mul, W::Two) => $m2,
                    (Opcode::Mul, W::Four) => $m4,
                    (Opcode::MulConst, W::One) => $mc1,
                    (Opcode::MulConst, W::Two) => $mc2,
                    (Opcode::MulConst, W::Four) => $mc4,
                    (Opcode::Add, W::One) => $a1,
                    (Opcode::Add, W::Two) => $a2,
                    (Opcode::Add, W::Four) => $a4,
                    (Opcode::Sub, W::One) => $s1,
                    (Opcode::Sub, W::Two) => $s2,
                    (Opcode::Sub, W::Four) => $s4,
                    (Opcode::Neg, W::One) => $n1,
                    (Opcode::Neg, W::Two) => $n2,
                    (Opcode::Neg, W::Four) => $n4,
                    (Opcode::MulAdd, W::One) => $ma1,
                    (Opcode::MulAdd, W::Two) => $ma2,
                    (Opcode::MulAdd, W::Four) => $ma4,
                    (Opcode::MulConstAdd, W::One) => $mca1,
                    (Opcode::MulConstAdd, W::Two) => $mca2,
                    (Opcode::MulConstAdd, W::Four) => $mca4,
                    (Opcode::AddAdd, W::One) => $aa1,
                    (Opcode::AddAdd, W::Two) => $aa2,
                    (Opcode::AddAdd, W::Four) => $aa4,
                    (Opcode::NegAdd, W::One) => $na1,
                    (Opcode::NegAdd, W::Two) => $na2,
                    (Opcode::NegAdd, W::Four) => $na4,
                }
            }
        };
    }

    avx2_ops!(
        F64x4, f64, _mm256_load_pd, _mm256_store_pd, _mm256_mul_pd, _mm256_add_pd,
        _mm256_sub_pd, _mm256_xor_pd, _mm256_set1_pd,
        dc1 dc2 dc4, dm1 dm2 dm4, dmc1 dmc2 dmc4, da1 da2 da4, ds1 ds2 ds4,
        dn1 dn2 dn4, dma1 dma2 dma4, dmca1 dmca2 dmca4, daa1 daa2 daa4, dna1 dna2 dna4,
        f64_handler
    );

    avx2_ops!(
        F32x8, f32, _mm256_load_ps, _mm256_store_ps, _mm256_mul_ps, _mm256_add_ps,
        _mm256_sub_ps, _mm256_xor_ps, _mm256_set1_ps,
        sc1 sc2 sc4, sm1 sm2 sm4, smc1 smc2 smc4, sa1 sa2 sa4, ss1 ss2 ss4,
        sn1 sn2 sn4, sma1 sma2 sma4, smca1 smca2 smca4, saa1 saa2 saa4, sna1 sna2 sna4,
        f32_handler
    );

    /// Whether the AVX2 handler table serves `S` on this host — `S` is a
    /// 256-bit lane bundle and the CPU reports AVX2. Mirrors the
    /// condition under which [`handler`] returns `Some`.
    pub(super) fn active<S: super::Scalar>() -> bool {
        use core::any::TypeId;
        std::arch::is_x86_feature_detected!("avx2")
            && (TypeId::of::<S>() == TypeId::of::<F64x4>()
                || TypeId::of::<S>() == TypeId::of::<F32x8>())
    }

    /// Drives every superinstruction block of an already-lowered tape
    /// from inside one AVX2-attributed frame.
    ///
    /// The per-block handlers are attributed, so calling them from an
    /// unattributed dispatch loop ends the AVX region at every return —
    /// the compiler inserts an AVX-to-SSE transition (`vzeroupper`) per
    /// block, and with blocks averaging only a couple of instructions
    /// those transitions cost more than the arithmetic they bracket. One
    /// attributed driver frame makes the whole run a single AVX region
    /// with a single transition at the end.
    ///
    /// # Safety
    ///
    /// The caller must guarantee AVX2 is available (established by
    /// [`active`] when the table was built) and the [`OpFn`] contract
    /// for every `(handler, offset)` pair in `ops` — `regs`, `consts`,
    /// and `args` at least as large as the bounds the tape was
    /// build-validated against.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn run_blocks<S>(
        ops: &[(OpFn<S>, u32)],
        args: *const OpArgs,
        regs: *mut S,
        consts: *const S,
    ) {
        for &(f, at) in ops {
            // SAFETY: forwarded from the caller — every index inside the
            // entries at `args.add(at)` was build-validated against the
            // buffers behind `regs`/`consts`.
            unsafe { f(regs, consts, args.add(at as usize)) }
        }
    }

    /// Transposes four `ymm` registers: lane `l` of output `i` is lane
    /// `i` of input `l`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn transpose4(
        a: __m256d,
        b: __m256d,
        c: __m256d,
        d: __m256d,
    ) -> (__m256d, __m256d, __m256d, __m256d) {
        let t0 = _mm256_unpacklo_pd(a, b); // a0 b0 a2 b2
        let t1 = _mm256_unpackhi_pd(a, b); // a1 b1 a3 b3
        let t2 = _mm256_unpacklo_pd(c, d); // c0 d0 c2 d2
        let t3 = _mm256_unpackhi_pd(c, d); // c1 d1 c3 d3
        (
            _mm256_permute2f128_pd::<0x20>(t0, t2), // a0 b0 c0 d0
            _mm256_permute2f128_pd::<0x20>(t1, t3), // a1 b1 c1 d1
            _mm256_permute2f128_pd::<0x31>(t0, t2), // a2 b2 c2 d2
            _mm256_permute2f128_pd::<0x31>(t1, t3), // a3 b3 c3 d3
        )
    }

    /// Lane-transposes one four-state group straight into the first
    /// `n_in` wide registers: `regs[k].lane(l) = rows[l][k]`, via 4×4
    /// `ymm` transposes of four-input chunks (a scalar gather costs four
    /// strided moves per input and dominated the batch path's overhead).
    ///
    /// # Safety
    ///
    /// AVX2 must be available; each `rows[l]` must point to at least
    /// `n_in` readable `f64`s and `regs` to at least `n_in` writable
    /// `F64x4` (32-byte-aligned by their `repr`).
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn gather4_f64(rows: [*const f64; 4], n_in: usize, regs: *mut F64x4) {
        let mut k = 0;
        while k + 4 <= n_in {
            // SAFETY: `k + 4 <= n_in` keeps every row read and the four
            // register stores inside the caller-guaranteed bounds;
            // register stores are 32-byte aligned, row loads use the
            // unaligned form.
            unsafe {
                let (r0, r1, r2, r3) = transpose4(
                    _mm256_loadu_pd(rows[0].add(k)),
                    _mm256_loadu_pd(rows[1].add(k)),
                    _mm256_loadu_pd(rows[2].add(k)),
                    _mm256_loadu_pd(rows[3].add(k)),
                );
                let dst = regs.add(k).cast::<f64>();
                _mm256_store_pd(dst, r0);
                _mm256_store_pd(dst.add(4), r1);
                _mm256_store_pd(dst.add(8), r2);
                _mm256_store_pd(dst.add(12), r3);
            }
            k += 4;
        }
        while k < n_in {
            // SAFETY: `k < n_in`, so the four scalar reads and the
            // aligned register store are in bounds.
            unsafe {
                let v = _mm256_set_pd(
                    *rows[3].add(k),
                    *rows[2].add(k),
                    *rows[1].add(k),
                    *rows[0].add(k),
                );
                _mm256_store_pd(regs.add(k).cast::<f64>(), v);
            }
            k += 1;
        }
    }

    /// Scatters one evaluated four-state group from the wide register
    /// file into per-state output rows: `rows[l][o] = regs[slots[o]].lane(l)`,
    /// via 4×4 `ymm` transposes of four-output chunks.
    ///
    /// # Safety
    ///
    /// AVX2 must be available; every `slots[o]` must index a readable
    /// `F64x4` behind `regs` (32-byte-aligned by their `repr`), and each
    /// `rows[l]` must point to at least `slots.len()` writable `f64`s.
    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn scatter4_f64(regs: *const F64x4, slots: &[u32], rows: [*mut f64; 4]) {
        let n_out = slots.len();
        let mut o = 0;
        while o + 4 <= n_out {
            // SAFETY: `o + 4 <= n_out` keeps the slot reads in range of
            // `slots`, every slot is caller-guaranteed in bounds of
            // `regs` (aligned loads), and the four row stores write
            // `rows[l][o..o + 4]` — within the guaranteed row length.
            unsafe {
                let (r0, r1, r2, r3) = transpose4(
                    _mm256_load_pd(regs.add(slots[o] as usize).cast::<f64>()),
                    _mm256_load_pd(regs.add(slots[o + 1] as usize).cast::<f64>()),
                    _mm256_load_pd(regs.add(slots[o + 2] as usize).cast::<f64>()),
                    _mm256_load_pd(regs.add(slots[o + 3] as usize).cast::<f64>()),
                );
                _mm256_storeu_pd(rows[0].add(o), r0);
                _mm256_storeu_pd(rows[1].add(o), r1);
                _mm256_storeu_pd(rows[2].add(o), r2);
                _mm256_storeu_pd(rows[3].add(o), r3);
            }
            o += 4;
        }
        while o < n_out {
            // SAFETY: `o < n_out`, the slot is in bounds of `regs`, and
            // each row write lands at `rows[l][o]`.
            unsafe {
                let src = regs.add(slots[o] as usize).cast::<f64>();
                *rows[0].add(o) = *src;
                *rows[1].add(o) = *src.add(1);
                *rows[2].add(o) = *src.add(2);
                *rows[3].add(o) = *src.add(3);
            }
            o += 1;
        }
    }

    /// The AVX2 handler for `(op, width)` when `S` is one of the
    /// 256-bit lane bundles and the host supports AVX2; `None` otherwise.
    pub(super) fn handler<S: super::Scalar>(op: Opcode, width: BlockWidth) -> Option<OpFn<S>> {
        use core::any::TypeId;
        if !std::arch::is_x86_feature_detected!("avx2") {
            return None;
        }
        if TypeId::of::<S>() == TypeId::of::<F64x4>() {
            let f: OpFn<F64x4> = f64_handler(op, width);
            // SAFETY: `TypeId` equality of two `'static` types proves
            // `S` *is* `F64x4`, so `OpFn<S>` and `OpFn<F64x4>` are the
            // same function-pointer type.
            return Some(unsafe { core::mem::transmute::<OpFn<F64x4>, OpFn<S>>(f) });
        }
        if TypeId::of::<S>() == TypeId::of::<F32x8>() {
            let f: OpFn<F32x8> = f32_handler(op, width);
            // SAFETY: as above, with `S` = `F32x8`.
            return Some(unsafe { core::mem::transmute::<OpFn<F32x8>, OpFn<S>>(f) });
        }
        None
    }
}

#[cfg(target_arch = "x86_64")]
pub(crate) use avx2::{gather4_f64, scatter4_f64};

/// The handler for `(op, width)` at scalar type `S`: the AVX2 table when
/// `S` is a 256-bit lane bundle on an AVX2 host, the portable generic
/// handler otherwise.
fn handler_for<S: Scalar>(op: Opcode, width: BlockWidth) -> OpFn<S> {
    #[cfg(target_arch = "x86_64")]
    if let Some(f) = avx2::handler::<S>(op, width) {
        return f;
    }
    portable_handler::<S>(op, width)
}

/// A compiled tape lowered to direct-threaded form: a list of handler
/// function pointers over a flat array of pre-resolved operand offsets.
#[derive(Debug, Clone)]
pub(crate) struct ThreadedTape<S> {
    /// `(handler, index into args)` per superinstruction block.
    ops: Vec<(OpFn<S>, u32)>,
    /// Decoded per-instruction operands, in original tape order.
    args: Vec<OpArgs>,
    /// Opcode per instruction, parallel to `args` — the schedule the
    /// template JIT's inline emitter lowers to native arithmetic
    /// (handler pointers alone cannot be mapped back to opcodes).
    opcodes: Vec<Opcode>,
    /// Minimum register-file length the handlers were validated against.
    min_regs: usize,
    /// Exact constant-table length the handlers were validated against.
    n_consts: usize,
    /// Whether every handler in `ops` is AVX2-attributed (x86-64 lane
    /// bundles on an AVX2 host) — selects the attributed driver loop in
    /// [`ThreadedTape::run`] so the whole run is one AVX region.
    #[cfg(target_arch = "x86_64")]
    avx2: bool,
}

impl<S: Scalar> ThreadedTape<S> {
    /// Lowers a decoded tape, validating every index so the handlers'
    /// unchecked pointer offsets are in bounds by construction.
    ///
    /// # Panics
    ///
    /// Panics if any instruction references a register `>= num_regs` or
    /// a constant `>= n_consts` — a compiler invariant violation, never
    /// a user error.
    pub(crate) fn build(decoded: &[(Opcode, OpArgs)], num_regs: usize, n_consts: usize) -> Self {
        let reg = |r: u32| {
            assert!((r as usize) < num_regs, "register index out of bounds");
        };
        let konst = |k: u32| {
            assert!((k as usize) < n_consts, "constant index out of bounds");
        };
        for &(op, a) in decoded {
            reg(a.dst);
            match op {
                Opcode::Const => konst(a.a),
                Opcode::Mul | Opcode::Add | Opcode::Sub => {
                    reg(a.a);
                    reg(a.b);
                }
                Opcode::MulConst => {
                    reg(a.a);
                    konst(a.b);
                }
                Opcode::Neg => reg(a.a),
                Opcode::MulAdd | Opcode::AddAdd => {
                    reg(a.a);
                    reg(a.b);
                    reg(a.c);
                }
                Opcode::MulConstAdd => {
                    reg(a.a);
                    konst(a.b);
                    reg(a.c);
                }
                Opcode::NegAdd => {
                    reg(a.a);
                    reg(a.c);
                }
            }
        }
        assert!(decoded.len() < u32::MAX as usize, "tape too large");

        let args: Vec<OpArgs> = decoded.iter().map(|&(_, a)| a).collect();
        let mut ops = Vec::new();
        let mut i = 0;
        while i < decoded.len() {
            let op = decoded[i].0;
            let mut j = i;
            while j < decoded.len() && decoded[j].0 == op {
                j += 1;
            }
            // Tile the run greedily: ×4 blocks, then ×2, then a single.
            let mut at = i;
            for width in [BlockWidth::Four, BlockWidth::Two, BlockWidth::One] {
                while j - at >= width.len() {
                    ops.push((handler_for::<S>(op, width), at as u32));
                    at += width.len();
                }
            }
            i = j;
        }

        Self {
            ops,
            args,
            opcodes: decoded.iter().map(|&(op, _)| op).collect(),
            min_regs: num_regs,
            n_consts,
            #[cfg(target_arch = "x86_64")]
            avx2: avx2::active::<S>(),
        }
    }

    /// Number of dispatches (superinstruction blocks) per evaluation —
    /// at most the instruction count, typically far fewer.
    pub(crate) fn block_count(&self) -> usize {
        self.ops.len()
    }

    /// The `(handler, args-index)` pair per superinstruction block — the
    /// template list the JIT stitches into straight-line code.
    pub(crate) fn blocks(&self) -> &[(OpFn<S>, u32)] {
        &self.ops
    }

    /// The decoded per-instruction operands, in original tape order.
    pub(crate) fn op_args(&self) -> &[OpArgs] {
        &self.args
    }

    /// The opcode per instruction, parallel to [`ThreadedTape::op_args`].
    /// Executing the instructions in this flat order is exactly block
    /// order: the superinstruction tiling partitions the instruction
    /// list into consecutive runs and every handler walks its run in
    /// sequence.
    pub(crate) fn op_codes(&self) -> &[Opcode] {
        &self.opcodes
    }

    /// Minimum register-file length the handlers were validated against.
    pub(crate) fn min_regs(&self) -> usize {
        self.min_regs
    }

    /// Exact constant-table length the handlers were validated against.
    pub(crate) fn n_consts(&self) -> usize {
        self.n_consts
    }

    /// Whether this tape runs through the AVX2-attributed driver (and so
    /// the AVX2 batch gather/scatter may accompany it).
    pub(crate) fn uses_avx2(&self) -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            self.avx2
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// Executes the tape over `regs`, reading constants from `consts`.
    ///
    /// # Panics
    ///
    /// Panics if `regs` is shorter than the register file this tape was
    /// validated against, or `consts` is not exactly the validated
    /// constant table length.
    pub(crate) fn run(&self, regs: &mut [S], consts: &[S]) {
        assert!(regs.len() >= self.min_regs, "register file too small");
        assert_eq!(consts.len(), self.n_consts, "constant table mismatch");
        let regs = regs.as_mut_ptr();
        let consts = consts.as_ptr();
        let args = self.args.as_ptr();
        #[cfg(target_arch = "x86_64")]
        if self.avx2 {
            // SAFETY: `self.avx2` is only set when `avx2::active` saw the
            // feature at build time, and the per-block contract is the
            // one the portable loop below discharges: `build` validated
            // every index in `args` against `min_regs`/`n_consts`, the
            // assertions above guarantee the buffers are at least that
            // large, and each block's `at` was emitted with
            // `at + block_width <= args.len()`.
            unsafe { avx2::run_blocks(&self.ops, args, regs, consts) };
            return;
        }
        for &(f, at) in &self.ops {
            // SAFETY: `build` validated every index in `args` against
            // `min_regs`/`n_consts`, the assertions above guarantee the
            // buffers are at least that large, and each block's `at` was
            // emitted with `at + block_width <= args.len()`. All reads
            // and writes go through these three in-bounds pointers.
            unsafe { f(regs, consts, args.add(at as usize)) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decoded_mac_chain(n: usize) -> Vec<(Opcode, OpArgs)> {
        // r2 = r0*r1 + r2, repeated — one long fusable run.
        (0..n).map(|_| Opcode::MulAdd.args(0, 1, 2, 2)).collect()
    }

    #[test]
    fn runs_tile_into_superinstruction_blocks() {
        // 11 identical ops → 2×4 + 1×2 + 1×1 = 4 dispatches.
        let tape = ThreadedTape::<f64>::build(&decoded_mac_chain(11), 3, 0);
        assert_eq!(tape.block_count(), 4);
        // 1 op → 1 dispatch; 0 ops → 0 dispatches.
        assert_eq!(
            ThreadedTape::<f64>::build(&decoded_mac_chain(1), 3, 0).block_count(),
            1
        );
        assert_eq!(ThreadedTape::<f64>::build(&[], 3, 0).block_count(), 0);
    }

    #[test]
    fn superinstruction_blocks_execute_in_order() {
        // Each step reads the previous result: any reordering inside a
        // block would change the value.
        let decoded: Vec<(Opcode, OpArgs)> =
            (0..7).map(|_| Opcode::MulAdd.args(0, 2, 1, 2)).collect();
        let tape = ThreadedTape::<f64>::build(&decoded, 3, 0);
        let mut regs = [2.0, 1.0, 1.0];
        tape.run(&mut regs, &[]);
        // r2 ← 2·r2 + 1, seven times, from 1: 3,7,15,31,63,127,255.
        assert_eq!(regs[2], 255.0);
    }

    #[test]
    #[should_panic(expected = "register index out of bounds")]
    fn build_rejects_out_of_bounds_registers() {
        let _ = ThreadedTape::<f64>::build(&[Opcode::Add.args(0, 7, 0, 1)], 2, 0);
    }

    #[test]
    #[should_panic(expected = "constant index out of bounds")]
    fn build_rejects_out_of_bounds_constants() {
        let _ = ThreadedTape::<f64>::build(&[Opcode::Const.args(3, 0, 0, 0)], 2, 2);
    }

    #[test]
    #[should_panic(expected = "register file too small")]
    fn run_rejects_short_register_files() {
        let tape = ThreadedTape::<f64>::build(&decoded_mac_chain(2), 3, 0);
        tape.run(&mut [0.0; 2], &[]);
    }
}
