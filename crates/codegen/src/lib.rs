//! Code generation for robomorphic accelerators.
//!
//! §7 of the paper sketches the automation path: "the design of the
//! parameterized hardware template can be automated using a
//! domain-specific language and a high-level synthesis flow ... users can
//! then create accelerators without intervention from roboticists or
//! hardware engineers". This crate is that flow's back end:
//!
//! * [`Netlist`] — an executable structural IR for generated functional
//!   units, with a text format ([`Netlist::to_text`] / [`Netlist::parse`])
//!   and an evaluator generic over any
//!   [`Scalar`](robo_spatial::Scalar) — so every generated circuit can be
//!   run against the software reference;
//! * [`generate_x_unit`] / [`generate_xt_unit`] — emit the pruned `X·` /
//!   `Xᵀ·` transform units (Figure 7) for any joint of any robot,
//!   constant-folding ±1/0 coefficients;
//! * [`generate_kernel_netlist`] / [`generate_kernel_family`] — merge the
//!   RNEA / FD / ∇ID kernel datapaths into one shared-subexpression
//!   netlist with per-kernel namespaced outputs, with shared-vs-dedicated
//!   resource accounting in a [`SharingReport`];
//! * [`optimize`] — IR passes (constant folding, identity simplification,
//!   CSE, dead-node elimination) that prune the netlist the way §5.2
//!   prunes the RTL, with pre/post [`NetlistStats`] via [`OptReport`];
//! * [`CompiledNetlist`] — the serving-path evaluator: inputs interned to
//!   dense slots, constants hoisted per scalar type, a flat register-
//!   recycling tape with allocation-free [`CompiledNetlist::eval_into`]
//!   and batched [`CompiledNetlist::eval_batch`];
//! * [`to_verilog`] / [`lint`] — lowers netlists to Q-format Verilog and
//!   structurally checks the result;
//! * [`generate_top`] — emits the Figure 8 top level: limb processors,
//!   per-link ∂q/∂q̇ datapaths, the fused `−M⁻¹` lanes, the interstage
//!   SRAM, and the §7 torso synchronizer for multi-limb robots.
//!
//! The flow is *build → optimize → compile → simulate/lower*: the same
//! optimized netlist feeds both the Verilog backend and the simulator's
//! compiled functional units (`robo-sim`).
//!
//! # Example
//!
//! ```
//! use robo_codegen::{generate_x_unit, optimize, to_verilog, lint, RtlFormat};
//! use robo_model::robots;
//!
//! let robot = robots::iiwa14();
//! let unit = generate_x_unit(&robot, 1); // the §4 example joint
//! assert_eq!(unit.stats().muls, 13);     // 13 DSP multipliers, not 36
//!
//! let verilog = to_verilog(&optimize(&unit), RtlFormat::q16_16());
//! lint(&verilog).expect("structurally valid RTL");
//! ```

#![warn(missing_docs)]
// Index-based loops over fixed-size matrix dimensions are clearer than
// iterator chains in this numerical code.
#![allow(clippy::needless_range_loop)]

mod compiled;
mod jit;
mod netlist;
mod opt;
mod threaded;
mod top;
mod verilog;
mod xunit_gen;

pub use compiled::{
    BatchEvalWorkspace, CompiledNetlist, EvalWorkspace, FusionCounts, TieredBatchEval,
};
pub use jit::JitReport;
pub use netlist::{Netlist, NetlistError, NetlistStats, Node, NodeId};
pub use opt::{optimize, optimize_with_report, OptReport};
pub use top::{generate_top, TopLevel};
pub use verilog::{lint, to_verilog, RtlFormat};
pub use xunit_gen::{
    generate_dx_unit_with_mask, generate_kernel_family, generate_kernel_netlist,
    generate_x_pipeline, generate_x_unit, generate_x_unit_with_mask, generate_xt_unit,
    generate_xt_unit_with_mask, snap, x_unit_input_names, x_unit_output_names, SharingReport,
};
