//! Generates the pruned `X·` transform matrix-vector unit as a netlist.
//!
//! This is the Figure 7 structure made concrete: every live matrix entry
//! `x_rc = α·cos q + β·sin q + γ` becomes a (constant-folded) sub-circuit,
//! and each output row becomes a pruned tree of variable multipliers and
//! adders over the live columns. Coefficients of ±1 fold to wires or
//! negations; zero coefficients disappear — exactly the pruning the paper
//! performs on the RTL.

use crate::netlist::{Netlist, Node, NodeId};
use robo_model::RobotModel;
use robo_sparsity::{x_pattern, Mask6};

/// Input signal names of a generated X-unit, in declaration order:
/// `sin_q`, `cos_q`, then `v0..v5`.
pub fn x_unit_input_names() -> Vec<String> {
    let mut names = vec!["sin_q".to_owned(), "cos_q".to_owned()];
    names.extend((0..6).map(|i| format!("v{i}")));
    names
}

/// Output signal names: `o0..o5`.
pub fn x_unit_output_names() -> Vec<String> {
    (0..6).map(|i| format!("o{i}")).collect()
}

fn affine_coefficients(robot: &RobotModel, joint: usize) -> [[(f64, f64, f64); 6]; 6] {
    let probe = |s: f64, c: f64| robot.joint_transform_sincos::<f64>(joint, s, c).to_mat6();
    let m00 = probe(0.0, 0.0);
    let m01 = probe(0.0, 1.0);
    let m10 = probe(1.0, 0.0);
    let mut out = [[(0.0, 0.0, 0.0); 6]; 6];
    for r in 0..6 {
        for c in 0..6 {
            out[r][c] = (
                m01.m[r][c] - m00.m[r][c], // α (cos coefficient)
                m10.m[r][c] - m00.m[r][c], // β (sin coefficient)
                m00.m[r][c],               // γ (constant)
            );
        }
    }
    out
}

const FOLD_TOL: f64 = 1e-12;

/// Emits a term `k·src`, folding `k ∈ {0, ±1}` to nothing / a wire / a
/// negation. Returns `None` for a zero coefficient.
fn coeff_term(n: &mut Netlist, src: NodeId, k: f64) -> Option<NodeId> {
    if k.abs() < FOLD_TOL {
        None
    } else if (k - 1.0).abs() < FOLD_TOL {
        Some(src)
    } else if (k + 1.0).abs() < FOLD_TOL {
        Some(n.push(Node::Neg(src)))
    } else {
        Some(n.push(Node::MulConst(src, k)))
    }
}

fn sum_terms(n: &mut Netlist, terms: &[NodeId]) -> Option<NodeId> {
    let mut iter = terms.iter().copied();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, t| n.push(Node::Add(acc, t))))
}

/// Generates the pruned X-unit netlist for `joint` of `robot`, using the
/// joint's own structural mask.
pub fn generate_x_unit(robot: &RobotModel, joint: usize) -> Netlist {
    generate_x_unit_with_mask(robot, joint, x_pattern(robot, joint))
}

/// Generates the X-unit with an explicit (e.g. superposed) mask, as the
/// paper's shared unit does (§6.2).
///
/// # Panics
///
/// Panics in debug builds if `mask` does not cover the joint's own
/// structural pattern.
pub fn generate_x_unit_with_mask(robot: &RobotModel, joint: usize, mask: Mask6) -> Netlist {
    debug_assert!(
        x_pattern(robot, joint).is_subset_of(&mask),
        "mask must cover joint {joint}'s structural pattern"
    );
    let coeffs = affine_coefficients(robot, joint);
    let mut n = Netlist::new(format!("x_unit_{}_joint{}", robot.name(), joint));

    let sin = n.push(Node::Input("sin_q".into()));
    let cos = n.push(Node::Input("cos_q".into()));
    let v: Vec<NodeId> = (0..6)
        .map(|i| n.push(Node::Input(format!("v{i}"))))
        .collect();

    // Entry-forming constant-multiplier bank.
    let mut entries = [[None::<NodeId>; 6]; 6];
    for r in 0..6 {
        for c in 0..6 {
            if !mask.m[r][c] {
                continue;
            }
            let (alpha, beta, gamma) = coeffs[r][c];
            let mut terms = Vec::new();
            if let Some(t) = coeff_term(&mut n, cos, alpha) {
                terms.push(t);
            }
            if let Some(t) = coeff_term(&mut n, sin, beta) {
                terms.push(t);
            }
            if gamma.abs() >= FOLD_TOL {
                terms.push(n.push(Node::Const(gamma)));
            }
            // A masked-but-dead entry (superposition covers more than this
            // joint uses) still exists in hardware; represent it as a zero
            // constant so the shared unit's structure is explicit.
            if terms.is_empty() {
                terms.push(n.push(Node::Const(0.0)));
            }
            entries[r][c] = sum_terms(&mut n, &terms);
        }
    }

    // Pruned dot-product trees, one per output row.
    for r in 0..6 {
        let mut products = Vec::new();
        for c in 0..6 {
            if let Some(e) = entries[r][c] {
                products.push(n.push(Node::Mul(e, v[c])));
            }
        }
        let out = match sum_terms(&mut n, &products) {
            Some(id) => id,
            None => n.push(Node::Const(0.0)), // fully pruned row
        };
        n.output(format!("o{r}"), out);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;
    use robo_sparsity::{matvec_ops, superposition_pattern};
    use robo_spatial::Motion;
    use std::collections::HashMap;

    fn eval_unit(
        netlist: &Netlist,
        robot: &RobotModel,
        joint: usize,
        q: f64,
        m: Motion<f64>,
    ) -> Motion<f64> {
        let mut inputs = HashMap::new();
        let revolute = robot.links()[joint].joint.is_revolute();
        let (s, c) = if revolute {
            (q.sin(), q.cos())
        } else {
            (q, 1.0)
        };
        inputs.insert("sin_q".to_owned(), s);
        inputs.insert("cos_q".to_owned(), c);
        let arr = m.to_array();
        for (i, x) in arr.iter().enumerate() {
            inputs.insert(format!("v{i}"), *x);
        }
        let out = netlist.eval(&inputs).unwrap();
        let mut o = [0.0; 6];
        for (name, value) in out {
            let idx: usize = name[1..].parse().unwrap();
            o[idx] = value;
        }
        Motion::from_array(o)
    }

    #[test]
    fn generated_unit_matches_reference_transform() {
        let robot = robots::iiwa14();
        let m = Motion::from_array([0.3, -0.8, 0.5, 1.1, -0.2, 0.7]);
        for joint in 0..7 {
            let unit = generate_x_unit(&robot, joint);
            for q in [0.0, 0.9, -1.7] {
                let got = eval_unit(&unit, &robot, joint, q, m);
                let want = robot.joint_transform::<f64>(joint, q).apply_motion(m);
                assert!((got - want).max_abs() < 1e-12, "joint {joint} at q={q}");
            }
        }
    }

    #[test]
    fn multiplier_count_matches_resource_model() {
        // The netlist's DSP-multiplier count equals the sparsity model's
        // pruned matvec count — the generator and the resource estimator
        // agree by construction.
        let robot = robots::iiwa14();
        for joint in 0..7 {
            let mask = x_pattern(&robot, joint);
            let unit = generate_x_unit(&robot, joint);
            let expected = matvec_ops(&mask);
            let stats = unit.stats();
            assert_eq!(stats.muls, expected.muls, "joint {joint} muls");
            // Row-tree adders are exactly the matvec adds; entry-forming
            // adders come on top for two-term entries.
            assert!(stats.adds >= expected.adds, "joint {joint} adds");
        }
    }

    #[test]
    fn section4_counts_in_rtl() {
        // The §4 numbers, now counted in generated hardware: 13 DSP
        // multipliers instead of 36.
        let robot = robots::iiwa14();
        let unit = generate_x_unit(&robot, 1);
        assert_eq!(unit.stats().muls, 13);
    }

    #[test]
    fn superposed_unit_works_for_all_joints() {
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let m = Motion::from_array([0.5, 0.1, -0.6, 0.2, 0.9, -0.3]);
        for joint in 0..7 {
            let unit = generate_x_unit_with_mask(&robot, joint, mask);
            assert_eq!(unit.stats().muls, matvec_ops(&mask).muls);
            let got = eval_unit(&unit, &robot, joint, 0.77, m);
            let want = robot.joint_transform::<f64>(joint, 0.77).apply_motion(m);
            assert!((got - want).max_abs() < 1e-12, "joint {joint}");
        }
    }

    #[test]
    fn prismatic_units_generate() {
        let robot = robots::serial_chain(3, robo_model::JointType::PrismaticZ);
        let unit = generate_x_unit(&robot, 1);
        let m = Motion::from_array([0.4, -0.1, 0.3, 0.2, 0.6, -0.5]);
        let got = eval_unit(&unit, &robot, 1, 0.35, m);
        let want = robot.joint_transform::<f64>(1, 0.35).apply_motion(m);
        assert!((got - want).max_abs() < 1e-12);
    }

    #[test]
    fn netlist_text_round_trips_generated_unit() {
        let robot = robots::iiwa14();
        let unit = generate_x_unit(&robot, 2);
        let parsed = Netlist::parse(&unit.to_text()).unwrap();
        assert_eq!(parsed, unit);
    }
}
