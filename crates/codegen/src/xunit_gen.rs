//! Generates the pruned `X·` transform matrix-vector unit as a netlist.
//!
//! This is the Figure 7 structure made concrete: every live matrix entry
//! `x_rc = α·cos q + β·sin q + γ` becomes a (constant-folded) sub-circuit,
//! and each output row becomes a pruned tree of variable multipliers and
//! adders over the live columns. Coefficients of ±1 fold to wires or
//! negations; zero coefficients disappear — exactly the pruning the paper
//! performs on the RTL.

use crate::netlist::{Netlist, NetlistError, NetlistStats, Node, NodeId};
use crate::opt::{optimize, optimize_with_report, OptReport};
use robo_dynamics::engine::KernelKind;
use robo_model::RobotModel;
use robo_sparsity::{x_pattern, Mask6};
use std::collections::HashMap;

/// Input signal names of a generated X-unit, in declaration order:
/// `sin_q`, `cos_q`, then `v0..v5`.
pub fn x_unit_input_names() -> Vec<String> {
    let mut names = vec!["sin_q".to_owned(), "cos_q".to_owned()];
    names.extend((0..6).map(|i| format!("v{i}")));
    names
}

/// Output signal names: `o0..o5`.
pub fn x_unit_output_names() -> Vec<String> {
    (0..6).map(|i| format!("o{i}")).collect()
}

pub(crate) fn affine_coefficients(robot: &RobotModel, joint: usize) -> [[(f64, f64, f64); 6]; 6] {
    let probe = |s: f64, c: f64| robot.joint_transform_sincos::<f64>(joint, s, c).to_mat6();
    let m00 = probe(0.0, 0.0);
    let m01 = probe(0.0, 1.0);
    let m10 = probe(1.0, 0.0);
    let mut out = [[(0.0, 0.0, 0.0); 6]; 6];
    for r in 0..6 {
        for c in 0..6 {
            out[r][c] = (
                snap(m01.m[r][c] - m00.m[r][c]), // α (cos coefficient)
                snap(m10.m[r][c] - m00.m[r][c]), // β (sin coefficient)
                snap(m00.m[r][c]),               // γ (constant)
            );
        }
    }
    out
}

pub(crate) const FOLD_TOL: f64 = 1e-12;

/// Snaps a customization-time coefficient to exactly 0/±1 when it is a
/// trig/geometry residue within `FOLD_TOL` (1e-12) of one. The hardware folds
/// such coefficients to dead wires, plain wires, or negations (§5.2) — it
/// genuinely computes without the residue term — so every software model
/// of the unit must use the snapped value for results to match the
/// generated circuit bit for bit. `robo-sim`'s coefficient reference path
/// applies the same function.
pub fn snap(k: f64) -> f64 {
    for target in [0.0, 1.0, -1.0] {
        if (k - target).abs() < FOLD_TOL {
            return target;
        }
    }
    k
}

/// Emits a term `k·src`, folding `k ∈ {0, ±1}` to nothing / a wire / a
/// negation. Returns `None` for a zero coefficient.
fn coeff_term(n: &mut Netlist, src: NodeId, k: f64) -> Option<NodeId> {
    if k.abs() < FOLD_TOL {
        None
    } else if (k - 1.0).abs() < FOLD_TOL {
        Some(src)
    } else if (k + 1.0).abs() < FOLD_TOL {
        Some(n.push(Node::Neg(src)))
    } else {
        Some(n.push(Node::MulConst(src, k)))
    }
}

fn sum_terms(n: &mut Netlist, terms: &[NodeId]) -> Option<NodeId> {
    let mut iter = terms.iter().copied();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, t| n.push(Node::Add(acc, t))))
}

/// Generates the pruned X-unit netlist for `joint` of `robot`, using the
/// joint's own structural mask.
pub fn generate_x_unit(robot: &RobotModel, joint: usize) -> Netlist {
    generate_x_unit_with_mask(robot, joint, x_pattern(robot, joint))
}

/// Generates the transposed unit (`Xᵀ·f`, the backward-pass operation) for
/// `joint` of `robot`, using the joint's own structural mask.
pub fn generate_xt_unit(robot: &RobotModel, joint: usize) -> Netlist {
    generate_xt_unit_with_mask(robot, joint, x_pattern(robot, joint))
}

/// Generates the X-unit with an explicit (e.g. superposed) mask, as the
/// paper's shared unit does (§6.2).
///
/// # Panics
///
/// Panics in debug builds if `mask` does not cover the joint's own
/// structural pattern.
pub fn generate_x_unit_with_mask(robot: &RobotModel, joint: usize, mask: Mask6) -> Netlist {
    generate_unit(robot, joint, mask, false, false)
}

/// Generates the transposed unit (`Xᵀ·f`) with an explicit mask. The same
/// entry-forming constant-multiplier bank as the forward unit feeds
/// *column* trees instead of row trees — in hardware the two directions
/// share one unit (§5.2), so the inputs keep the forward declaration order
/// (`sin_q`, `cos_q`, `v0..v5`) and outputs stay `o0..o5`.
///
/// # Panics
///
/// Panics in debug builds if `mask` does not cover the joint's own
/// structural pattern.
pub fn generate_xt_unit_with_mask(robot: &RobotModel, joint: usize, mask: Mask6) -> Netlist {
    generate_unit(robot, joint, mask, true, false)
}

/// Generates the joint's `∂X/∂q` application unit (`(∂X/∂q)·m`, the seed
/// operation of the gradient datapath). Because every live entry is
/// affine in `(sin q, cos q)` — `x_rc = α·cos q + β·sin q + γ` — the
/// derivative is *another* affine unit with coefficients
/// `(α, β, γ) → (β, −α, 0)`, so it reuses the same entry-forming bank
/// structure and shares the trig inputs (and, after CSE, any coincident
/// sub-circuits) with the forward unit.
pub fn generate_dx_unit_with_mask(robot: &RobotModel, joint: usize, mask: Mask6) -> Netlist {
    generate_unit(robot, joint, mask, false, true)
}

/// Merges every joint's X-unit into one netlist — the per-state transform
/// work of a whole forward sweep, as one module.
///
/// Joint `k`'s unit keeps its internal structure; its inputs and outputs
/// are prefixed `j<k>_` (`j3_sin_q`, `j3_o0`, …) so the joints stay
/// independent. This is the serving-path workload shape: one compiled
/// tape per robot instead of one per joint, long enough that dispatch and
/// batching costs are measured against realistic per-state work.
/// [`crate::optimize`] still applies across the merged module, so
/// constants and identical sub-circuits shared between joints fold
/// together exactly as a shared hardware unit would.
pub fn generate_x_pipeline(robot: &RobotModel, mask: Mask6) -> Netlist {
    let mut n = Netlist::new(format!("x_pipeline_{}", robot.name()));
    for joint in 0..robot.dof() {
        let unit = generate_x_unit_with_mask(robot, joint, mask);
        let offset = n.nodes().len();
        for node in unit.nodes() {
            let remapped = match node.clone() {
                Node::Input(name) => Node::Input(format!("j{joint}_{name}")),
                Node::Const(c) => Node::Const(c),
                Node::Mul(a, b) => Node::Mul(a + offset, b + offset),
                Node::MulConst(a, c) => Node::MulConst(a + offset, c),
                Node::Add(a, b) => Node::Add(a + offset, b + offset),
                Node::Sub(a, b) => Node::Sub(a + offset, b + offset),
                Node::Neg(a) => Node::Neg(a + offset),
            };
            n.push(remapped);
        }
        for (name, id) in unit.outputs() {
            n.output(format!("j{joint}_{name}"), id + offset)
                .expect("joint prefixes keep output names unique");
        }
    }
    n
}

/// Looks up (or creates) a shared input node by name. Input sharing is how
/// the merged family netlist expresses "these kernels read the same runtime
/// operand": two units referencing one input node build sub-circuits that
/// the optimizer's CSE can then fold together.
fn shared_input(
    merged: &mut Netlist,
    inputs: &mut HashMap<String, NodeId>,
    name: String,
) -> NodeId {
    if let Some(&id) = inputs.get(&name) {
        return id;
    }
    let id = merged.push(Node::Input(name.clone()));
    inputs.insert(name, id);
    id
}

/// Appends `unit` into `merged`, remapping node ids and renaming inputs
/// (deduplicated through `inputs`) and outputs. Output-name collisions —
/// e.g. the same kernel requested twice — surface as
/// [`NetlistError::DuplicateOutput`] with the namespaced name.
fn append_unit(
    merged: &mut Netlist,
    unit: &Netlist,
    inputs: &mut HashMap<String, NodeId>,
    rename_input: &dyn Fn(&str) -> String,
    rename_output: &dyn Fn(&str) -> String,
) -> Result<(), NetlistError> {
    let mut map: Vec<NodeId> = Vec::with_capacity(unit.nodes().len());
    for node in unit.nodes() {
        let id = match node {
            Node::Input(name) => shared_input(merged, inputs, rename_input(name)),
            Node::Const(c) => merged.push(Node::Const(*c)),
            Node::Mul(a, b) => merged.push(Node::Mul(map[*a], map[*b])),
            Node::MulConst(a, c) => merged.push(Node::MulConst(map[*a], *c)),
            Node::Add(a, b) => merged.push(Node::Add(map[*a], map[*b])),
            Node::Sub(a, b) => merged.push(Node::Sub(map[*a], map[*b])),
            Node::Neg(a) => merged.push(Node::Neg(map[*a])),
        };
        map.push(id);
    }
    for (name, id) in unit.outputs() {
        merged.output(rename_output(name), map[*id])?;
    }
    Ok(())
}

/// Renames a unit-local operand for the merged namespace. Trig inputs are
/// shared per joint (`j3_sin_q`); the vector operand gets a per-stage tag —
/// `v` for motion vectors (the X and ∂X units genuinely read the same
/// forward-sweep operands at runtime, so they share), `f` for force vectors
/// (the backward sweep reads *different* data, so Xᵀ must not alias X).
fn rename_operand(joint: usize, name: &str, vec_tag: char) -> String {
    match name {
        "sin_q" | "cos_q" => format!("j{joint}_{name}"),
        _ => format!("j{joint}_{vec_tag}{}", &name[1..]),
    }
}

/// Emits the forward-dynamics MAC stage: `qdd_i = Σ_k M⁻¹_ik · (τ_k − c_k)`
/// — the fused `−M⁻¹` composition that closes the "mass-matrix inverse
/// outside the accelerator" gap (`C` is the bias from the ID chain at
/// `q̈ = 0`, streamed in as `c{k}`).
fn append_fd_mac(
    merged: &mut Netlist,
    inputs: &mut HashMap<String, NodeId>,
    dof: usize,
    tag: &str,
) -> Result<(), NetlistError> {
    let mut residual = Vec::with_capacity(dof);
    for k in 0..dof {
        let tau = shared_input(merged, inputs, format!("tau{k}"));
        let c = shared_input(merged, inputs, format!("c{k}"));
        residual.push(merged.push(Node::Sub(tau, c)));
    }
    for i in 0..dof {
        let mut terms = Vec::with_capacity(dof);
        for k in 0..dof {
            let minv = shared_input(merged, inputs, format!("minv_{i}_{k}"));
            terms.push(merged.push(Node::Mul(minv, residual[k])));
        }
        let out = sum_terms(merged, &terms).expect("dof >= 1");
        merged.output(format!("{tag}_qdd{i}"), out)?;
    }
    Ok(())
}

/// Generates one netlist containing every requested kernel's per-joint
/// datapath stages, with per-kernel namespaced outputs.
///
/// Per kernel the emitted stages are:
///
/// | kernel | stages per joint | extra |
/// |---|---|---|
/// | `id` | X (`{k}_j{j}_x_o{i}`), Xᵀ (`{k}_j{j}_xt_o{i}`) | — |
/// | `fd` | X, Xᵀ | MAC `qdd_i = Σ M⁻¹_ik (τ_k − c_k)` → `fd_qdd{i}` |
/// | `grad` | X, Xᵀ, ∂X (`{k}_j{j}_dx_o{i}`) | — |
///
/// Inputs are shared wherever the runtime operands coincide — trig per
/// joint, motion vectors between X and ∂X — so running [`optimize`] over
/// the union lets CSE fold identical sub-circuits *across* kernels, the
/// multifunction-pipeline sharing this family models.
///
/// # Errors
///
/// Returns [`NetlistError::DuplicateOutput`] with the offending namespaced
/// name if two requested kernels would emit the same output — e.g. the
/// same [`KernelKind`] listed twice.
pub fn generate_kernel_netlist(
    robot: &RobotModel,
    mask: Mask6,
    kernels: &[KernelKind],
) -> Result<Netlist, NetlistError> {
    let tags: Vec<&str> = kernels.iter().map(|k| k.as_str()).collect();
    let mut merged = Netlist::new(format!("kernel_family_{}_{}", robot.name(), tags.join("_")));
    let mut inputs = HashMap::new();
    for &kernel in kernels {
        let tag = kernel.as_str();
        for joint in 0..robot.dof() {
            let x = generate_x_unit_with_mask(robot, joint, mask);
            append_unit(
                &mut merged,
                &x,
                &mut inputs,
                &|name| rename_operand(joint, name, 'v'),
                &|name| format!("{tag}_j{joint}_x_{name}"),
            )?;
            let xt = generate_xt_unit_with_mask(robot, joint, mask);
            append_unit(
                &mut merged,
                &xt,
                &mut inputs,
                &|name| rename_operand(joint, name, 'f'),
                &|name| format!("{tag}_j{joint}_xt_{name}"),
            )?;
            if kernel == KernelKind::Gradient {
                let dx = generate_dx_unit_with_mask(robot, joint, mask);
                append_unit(
                    &mut merged,
                    &dx,
                    &mut inputs,
                    &|name| rename_operand(joint, name, 'v'),
                    &|name| format!("{tag}_j{joint}_dx_{name}"),
                )?;
            }
        }
        if kernel == KernelKind::ForwardDynamics {
            append_fd_mac(&mut merged, &mut inputs, robot.dof(), tag)?;
        }
    }
    Ok(merged)
}

/// Shared-vs-dedicated resource accounting for a merged kernel family:
/// what each kernel would cost as a standalone optimized netlist, versus
/// what the optimized union actually costs. The difference is the hardware
/// the kernels share — the multifunction-pipeline savings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharingReport {
    /// Per kernel: optimized *dedicated* netlist node count and op stats.
    pub per_kernel: Vec<(KernelKind, usize, NetlistStats)>,
    /// Node count of the optimized merged family netlist.
    pub merged_nodes: usize,
    /// Op stats of the optimized merged family netlist.
    pub merged: NetlistStats,
}

impl SharingReport {
    /// Total node count of the dedicated (one-netlist-per-kernel) designs.
    pub fn dedicated_nodes(&self) -> usize {
        self.per_kernel.iter().map(|(_, n, _)| n).sum()
    }

    /// Summed op stats of the dedicated designs.
    pub fn dedicated_stats(&self) -> NetlistStats {
        let mut total = NetlistStats::default();
        for (_, _, s) in &self.per_kernel {
            total.muls += s.muls;
            total.const_muls += s.const_muls;
            total.adds += s.adds;
            total.negs += s.negs;
        }
        total
    }

    /// Nodes the merged design saves over dedicated designs — the shared
    /// sub-circuits CSE folded together across kernels.
    pub fn shared_nodes(&self) -> usize {
        self.dedicated_nodes().saturating_sub(self.merged_nodes)
    }

    /// DSP multipliers (variable + constant) saved by sharing.
    pub fn shared_dsp_muls(&self) -> usize {
        let d = self.dedicated_stats();
        (d.muls + d.const_muls).saturating_sub(self.merged.muls + self.merged.const_muls)
    }

    /// Adders saved by sharing.
    pub fn shared_adds(&self) -> usize {
        self.dedicated_stats().adds.saturating_sub(self.merged.adds)
    }
}

impl std::fmt::Display for SharingReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tags: Vec<&str> = self.per_kernel.iter().map(|(k, _, _)| k.as_str()).collect();
        let d = self.dedicated_stats();
        write!(
            f,
            "family {{{}}}: merged {} nodes / {} DSP / {} adds; \
             dedicated {} nodes / {} DSP / {} adds; \
             shared {} nodes, {} DSP, {} adds",
            tags.join("+"),
            self.merged_nodes,
            self.merged.muls + self.merged.const_muls,
            self.merged.adds,
            self.dedicated_nodes(),
            d.muls + d.const_muls,
            d.adds,
            self.shared_nodes(),
            self.shared_dsp_muls(),
            self.shared_adds(),
        )
    }
}

/// Generates, optimizes, and accounts for a kernel family in one call:
/// returns the optimized merged netlist, the merged [`OptReport`], and the
/// [`SharingReport`] comparing it against one optimized dedicated netlist
/// per kernel.
///
/// # Errors
///
/// Propagates [`NetlistError::DuplicateOutput`] from
/// [`generate_kernel_netlist`].
pub fn generate_kernel_family(
    robot: &RobotModel,
    mask: Mask6,
    kernels: &[KernelKind],
) -> Result<(Netlist, OptReport, SharingReport), NetlistError> {
    let merged_raw = generate_kernel_netlist(robot, mask, kernels)?;
    let (merged_opt, report) = optimize_with_report(&merged_raw);
    let mut per_kernel = Vec::with_capacity(kernels.len());
    for &k in kernels {
        let dedicated = optimize(&generate_kernel_netlist(robot, mask, &[k])?);
        per_kernel.push((k, dedicated.nodes().len(), dedicated.stats()));
    }
    let sharing = SharingReport {
        per_kernel,
        merged_nodes: merged_opt.nodes().len(),
        merged: merged_opt.stats(),
    };
    Ok((merged_opt, report, sharing))
}

fn generate_unit(
    robot: &RobotModel,
    joint: usize,
    mask: Mask6,
    transpose: bool,
    deriv: bool,
) -> Netlist {
    debug_assert!(
        x_pattern(robot, joint).is_subset_of(&mask),
        "mask must cover joint {joint}'s structural pattern"
    );
    let mut coeffs = affine_coefficients(robot, joint);
    if deriv {
        // d/dq (α·cos q + β·sin q + γ) = β·cos q + (−α)·sin q.
        for row in &mut coeffs {
            for e in row.iter_mut() {
                *e = (e.1, -e.0, 0.0);
            }
        }
    }
    let direction = match (transpose, deriv) {
        (false, false) => "x_unit",
        (true, false) => "xt_unit",
        (false, true) => "dx_unit",
        (true, true) => "dxt_unit",
    };
    let mut n = Netlist::new(format!("{direction}_{}_joint{}", robot.name(), joint));

    let sin = n.push(Node::Input("sin_q".into()));
    let cos = n.push(Node::Input("cos_q".into()));
    let v: Vec<NodeId> = (0..6)
        .map(|i| n.push(Node::Input(format!("v{i}"))))
        .collect();

    // Entry-forming constant-multiplier bank.
    let mut entries = [[None::<NodeId>; 6]; 6];
    for r in 0..6 {
        for c in 0..6 {
            if !mask.m[r][c] {
                continue;
            }
            let (alpha, beta, gamma) = coeffs[r][c];
            let mut terms = Vec::new();
            if let Some(t) = coeff_term(&mut n, cos, alpha) {
                terms.push(t);
            }
            if let Some(t) = coeff_term(&mut n, sin, beta) {
                terms.push(t);
            }
            if gamma.abs() >= FOLD_TOL {
                terms.push(n.push(Node::Const(gamma)));
            }
            // A masked-but-dead entry (superposition covers more than this
            // joint uses) still exists in hardware; represent it as a zero
            // constant so the shared unit's structure is explicit.
            if terms.is_empty() {
                terms.push(n.push(Node::Const(0.0)));
            }
            entries[r][c] = sum_terms(&mut n, &terms);
        }
    }

    // Pruned dot-product trees: one per output row (`X·v`), or one per
    // output column for the transposed `Xᵀ·f` direction.
    for out_idx in 0..6 {
        let mut products = Vec::new();
        for in_idx in 0..6 {
            let entry = if transpose {
                entries[in_idx][out_idx]
            } else {
                entries[out_idx][in_idx]
            };
            if let Some(e) = entry {
                products.push(n.push(Node::Mul(e, v[in_idx])));
            }
        }
        let out = match sum_terms(&mut n, &products) {
            Some(id) => id,
            None => n.push(Node::Const(0.0)), // fully pruned row
        };
        n.output(format!("o{out_idx}"), out)
            .expect("row output names are unique");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;
    use robo_sparsity::{matvec_ops, superposition_pattern};
    use robo_spatial::Motion;
    use std::collections::HashMap;

    fn eval_unit(
        netlist: &Netlist,
        robot: &RobotModel,
        joint: usize,
        q: f64,
        m: Motion<f64>,
    ) -> Motion<f64> {
        let mut inputs = HashMap::new();
        let revolute = robot.links()[joint].joint.is_revolute();
        let (s, c) = if revolute {
            (q.sin(), q.cos())
        } else {
            (q, 1.0)
        };
        inputs.insert("sin_q".to_owned(), s);
        inputs.insert("cos_q".to_owned(), c);
        let arr = m.to_array();
        for (i, x) in arr.iter().enumerate() {
            inputs.insert(format!("v{i}"), *x);
        }
        let out = netlist.eval(&inputs).unwrap();
        let mut o = [0.0; 6];
        for (name, value) in out {
            let idx: usize = name[1..].parse().unwrap();
            o[idx] = value;
        }
        Motion::from_array(o)
    }

    #[test]
    fn generated_unit_matches_reference_transform() {
        let robot = robots::iiwa14();
        let m = Motion::from_array([0.3, -0.8, 0.5, 1.1, -0.2, 0.7]);
        for joint in 0..7 {
            let unit = generate_x_unit(&robot, joint);
            for q in [0.0, 0.9, -1.7] {
                let got = eval_unit(&unit, &robot, joint, q, m);
                let want = robot.joint_transform::<f64>(joint, q).apply_motion(m);
                assert!((got - want).max_abs() < 1e-12, "joint {joint} at q={q}");
            }
        }
    }

    #[test]
    fn multiplier_count_matches_resource_model() {
        // The netlist's DSP-multiplier count equals the sparsity model's
        // pruned matvec count — the generator and the resource estimator
        // agree by construction.
        let robot = robots::iiwa14();
        for joint in 0..7 {
            let mask = x_pattern(&robot, joint);
            let unit = generate_x_unit(&robot, joint);
            let expected = matvec_ops(&mask);
            let stats = unit.stats();
            assert_eq!(stats.muls, expected.muls, "joint {joint} muls");
            // Row-tree adders are exactly the matvec adds; entry-forming
            // adders come on top for two-term entries.
            assert!(stats.adds >= expected.adds, "joint {joint} adds");
        }
    }

    #[test]
    fn section4_counts_in_rtl() {
        // The §4 numbers, now counted in generated hardware: 13 DSP
        // multipliers instead of 36.
        let robot = robots::iiwa14();
        let unit = generate_x_unit(&robot, 1);
        assert_eq!(unit.stats().muls, 13);
    }

    #[test]
    fn superposed_unit_works_for_all_joints() {
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let m = Motion::from_array([0.5, 0.1, -0.6, 0.2, 0.9, -0.3]);
        for joint in 0..7 {
            let unit = generate_x_unit_with_mask(&robot, joint, mask);
            assert_eq!(unit.stats().muls, matvec_ops(&mask).muls);
            let got = eval_unit(&unit, &robot, joint, 0.77, m);
            let want = robot.joint_transform::<f64>(joint, 0.77).apply_motion(m);
            assert!((got - want).max_abs() < 1e-12, "joint {joint}");
        }
    }

    #[test]
    fn prismatic_units_generate() {
        let robot = robots::serial_chain(3, robo_model::JointType::PrismaticZ);
        let unit = generate_x_unit(&robot, 1);
        let m = Motion::from_array([0.4, -0.1, 0.3, 0.2, 0.6, -0.5]);
        let got = eval_unit(&unit, &robot, 1, 0.35, m);
        let want = robot.joint_transform::<f64>(1, 0.35).apply_motion(m);
        assert!((got - want).max_abs() < 1e-12);
    }

    #[test]
    fn netlist_text_round_trips_generated_unit() {
        let robot = robots::iiwa14();
        let unit = generate_x_unit(&robot, 2);
        let parsed = Netlist::parse(&unit.to_text()).unwrap();
        assert_eq!(parsed, unit);
    }

    #[test]
    fn transposed_unit_matches_reference_transform() {
        use robo_spatial::Force;
        let robot = robots::iiwa14();
        for joint in 0..7 {
            let unit = generate_xt_unit(&robot, joint);
            let f = Force::new(
                robo_spatial::Vec3::new(0.4, -0.7, 0.2),
                robo_spatial::Vec3::new(1.3, 0.5, -0.9),
            );
            for q in [0.0, 1.2, -0.6] {
                let m = Motion::new(f.ang, f.lin);
                let got = eval_unit(&unit, &robot, joint, q, m);
                let want = robot.joint_transform::<f64>(joint, q).tr_apply_force(f);
                let want = Motion::new(want.ang, want.lin);
                assert!((got - want).max_abs() < 1e-12, "joint {joint} at q={q}");
            }
        }
    }

    #[test]
    fn optimized_multiplier_counts_never_exceed_raw() {
        // Satellite of the §5.2 software pruning: lowering from the
        // optimized netlist can only shrink the DSP-multiplier budget (the
        // Figure 9 metric), never grow it — for every built-in robot, both
        // transform directions, own and superposed masks.
        use crate::opt::optimize_with_report;
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            let sup = superposition_pattern(&robot);
            for joint in 0..robot.dof() {
                for unit in [
                    generate_x_unit(&robot, joint),
                    generate_xt_unit(&robot, joint),
                    generate_x_unit_with_mask(&robot, joint, sup),
                    generate_xt_unit_with_mask(&robot, joint, sup),
                ] {
                    let (_, report) = optimize_with_report(&unit);
                    assert!(
                        report.after.muls <= report.before.muls,
                        "{} joint {joint} ({}): muls grew {} -> {}",
                        robot.name(),
                        unit.name(),
                        report.before.muls,
                        report.after.muls,
                    );
                    assert!(
                        report.after.muls + report.after.const_muls
                            <= report.before.muls + report.before.const_muls,
                        "{} joint {joint}: total multiplier budget grew",
                        robot.name(),
                    );
                }
            }
        }
    }

    #[test]
    fn pipeline_netlist_matches_per_joint_units() {
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let pipeline = generate_x_pipeline(&robot, mask);
        let m = Motion::from_array([0.3, -0.8, 0.5, 1.1, -0.2, 0.7]);
        let mut inputs = HashMap::new();
        for joint in 0..robot.dof() {
            let q = 0.3 * joint as f64 - 0.9;
            inputs.insert(format!("j{joint}_sin_q"), q.sin());
            inputs.insert(format!("j{joint}_cos_q"), q.cos());
            for (i, x) in m.to_array().iter().enumerate() {
                inputs.insert(format!("j{joint}_v{i}"), *x);
            }
        }
        let out: HashMap<String, f64> = pipeline.eval(&inputs).unwrap().into_iter().collect();
        assert_eq!(out.len(), 6 * robot.dof());
        for joint in 0..robot.dof() {
            let q = 0.3 * joint as f64 - 0.9;
            let unit = generate_x_unit_with_mask(&robot, joint, mask);
            let want = eval_unit(&unit, &robot, joint, q, m);
            for (i, w) in want.to_array().iter().enumerate() {
                let got = out[&format!("j{joint}_o{i}")];
                assert_eq!(got.to_bits(), w.to_bits(), "joint {joint} o{i}");
            }
        }
    }

    /// Deterministic pseudo-random input map covering every signal a
    /// kernel-family netlist can read: per-joint trig, motion (`v`) and
    /// force (`f`) vectors, and the FD MAC's `tau`/`c`/`minv` streams.
    fn family_inputs(robot: &RobotModel) -> HashMap<String, f64> {
        let mut inputs = HashMap::new();
        let dof = robot.dof();
        for j in 0..dof {
            let q = 0.4 * j as f64 - 0.7;
            inputs.insert(format!("j{j}_sin_q"), q.sin());
            inputs.insert(format!("j{j}_cos_q"), q.cos());
            for i in 0..6 {
                inputs.insert(format!("j{j}_v{i}"), 0.1 * (j * 6 + i) as f64 - 0.9);
                inputs.insert(format!("j{j}_f{i}"), 0.07 * (j * 6 + i) as f64 + 0.2);
            }
        }
        for k in 0..dof {
            inputs.insert(format!("tau{k}"), 0.3 * k as f64 - 0.5);
            inputs.insert(format!("c{k}"), 0.11 * k as f64 + 0.04);
            for i in 0..dof {
                inputs.insert(format!("minv_{i}_{k}"), 0.02 * (i * dof + k) as f64 - 0.1);
            }
        }
        inputs
    }

    #[test]
    fn kernel_netlist_outputs_match_per_unit_banks() {
        // Each kernel's namespaced outputs in the merged netlist evaluate
        // bit-identically to the standalone per-joint units.
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let inputs = family_inputs(&robot);
        let family = generate_kernel_netlist(&robot, mask, &KernelKind::ALL).unwrap();
        let out: HashMap<String, f64> = family.eval(&inputs).unwrap().into_iter().collect();

        for j in 0..robot.dof() {
            let mut unit_inputs = HashMap::new();
            unit_inputs.insert("sin_q".to_owned(), inputs[&format!("j{j}_sin_q")]);
            unit_inputs.insert("cos_q".to_owned(), inputs[&format!("j{j}_cos_q")]);
            for (stage, unit, vec_tag) in [
                ("x", generate_x_unit_with_mask(&robot, j, mask), 'v'),
                ("xt", generate_xt_unit_with_mask(&robot, j, mask), 'f'),
                ("dx", generate_dx_unit_with_mask(&robot, j, mask), 'v'),
            ] {
                for i in 0..6 {
                    unit_inputs.insert(format!("v{i}"), inputs[&format!("j{j}_{vec_tag}{i}")]);
                }
                let want: HashMap<String, f64> =
                    unit.eval(&unit_inputs).unwrap().into_iter().collect();
                for kernel in KernelKind::ALL {
                    let has_stage = stage != "dx" || kernel == KernelKind::Gradient;
                    for i in 0..6 {
                        let name = format!("{}_j{j}_{stage}_o{i}", kernel.as_str());
                        match (has_stage, out.get(&name)) {
                            (true, Some(got)) => assert_eq!(
                                got.to_bits(),
                                want[&format!("o{i}")].to_bits(),
                                "{name}"
                            ),
                            (true, None) => panic!("missing output {name}"),
                            (false, Some(_)) => panic!("unexpected output {name}"),
                            (false, None) => {}
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn fd_mac_stage_computes_minv_residual_product() {
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let inputs = family_inputs(&robot);
        let fd = generate_kernel_netlist(&robot, mask, &[KernelKind::ForwardDynamics]).unwrap();
        let out: HashMap<String, f64> = fd.eval(&inputs).unwrap().into_iter().collect();
        let dof = robot.dof();
        for i in 0..dof {
            let mut want = 0.0;
            for k in 0..dof {
                want += inputs[&format!("minv_{i}_{k}")]
                    * (inputs[&format!("tau{k}")] - inputs[&format!("c{k}")]);
            }
            let got = out[&format!("fd_qdd{i}")];
            assert!((got - want).abs() < 1e-12, "qdd{i}: {got} vs {want}");
        }
    }

    #[test]
    fn duplicate_kernel_surfaces_namespaced_output_collision() {
        // Requesting the same kernel twice must error with the offending
        // namespaced name, not silently shadow the first emission.
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let err =
            generate_kernel_netlist(&robot, mask, &[KernelKind::Gradient, KernelKind::Gradient])
                .unwrap_err();
        match err {
            NetlistError::DuplicateOutput { name } => assert_eq!(name, "grad_j0_x_o0"),
            other => panic!("expected DuplicateOutput, got {other:?}"),
        }
    }

    #[test]
    fn family_shares_nodes_across_kernels() {
        // The merged family must be strictly smaller than three dedicated
        // designs — the kernels genuinely share the X/Xᵀ banks.
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let (merged, report, sharing) =
            generate_kernel_family(&robot, mask, &KernelKind::ALL).unwrap();
        assert_eq!(sharing.per_kernel.len(), 3);
        assert!(sharing.shared_nodes() > 0, "{sharing}");
        assert!(sharing.shared_dsp_muls() > 0, "{sharing}");
        assert_eq!(sharing.merged_nodes, merged.nodes().len());
        assert!(report.nodes_after <= report.nodes_before);
        // Sharing never invents hardware: merged ≤ dedicated, per metric.
        let d = sharing.dedicated_stats();
        assert!(sharing.merged.muls <= d.muls);
        assert!(sharing.merged.adds <= d.adds);
    }

    #[test]
    fn optimized_family_matches_raw_family() {
        // The merged-and-optimized family still computes each kernel's
        // outputs (1e-12 budget for CSE-induced reassociation, as in the
        // engine parity suite; in practice the passes are value-exact).
        let robot = robots::hyq();
        let mask = superposition_pattern(&robot);
        let inputs = family_inputs(&robot);
        let raw = generate_kernel_netlist(&robot, mask, &KernelKind::ALL).unwrap();
        let (opt, _, _) = generate_kernel_family(&robot, mask, &KernelKind::ALL).unwrap();
        let want: HashMap<String, f64> = raw.eval(&inputs).unwrap().into_iter().collect();
        let got: HashMap<String, f64> = opt.eval(&inputs).unwrap().into_iter().collect();
        assert_eq!(want.len(), got.len());
        for (name, w) in &want {
            let g = got[name];
            assert!(
                (g - w).abs() <= 1e-12 * w.abs().max(1.0),
                "{name}: {g} vs {w}"
            );
        }
    }

    #[test]
    fn family_lowers_to_lintable_verilog() {
        use crate::verilog::{lint, to_verilog, RtlFormat};
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let (opt, _, _) = generate_kernel_family(&robot, mask, &KernelKind::ALL).unwrap();
        lint(&to_verilog(&opt, RtlFormat::q16_16())).expect("family RTL lints");
    }

    #[test]
    fn dx_unit_is_the_trig_derivative_of_x_unit() {
        // Central-difference check: (∂X/∂q)·v from the generated dx unit
        // matches d/dq of the x unit's output.
        let robot = robots::iiwa14();
        let m = Motion::from_array([0.3, -0.8, 0.5, 1.1, -0.2, 0.7]);
        for joint in 0..robot.dof() {
            let mask = x_pattern(&robot, joint);
            let dx = generate_dx_unit_with_mask(&robot, joint, mask);
            let x = generate_x_unit(&robot, joint);
            let q = 0.6;
            let h = 1e-6;
            let got = eval_unit(&dx, &robot, joint, q, m).to_array();
            let plus = eval_unit(&x, &robot, joint, q + h, m).to_array();
            let minus = eval_unit(&x, &robot, joint, q - h, m).to_array();
            for i in 0..6 {
                let want = (plus[i] - minus[i]) / (2.0 * h);
                assert!((got[i] - want).abs() < 1e-8, "joint {joint} o{i}");
            }
        }
    }

    #[test]
    fn fold_eligible_coefficients_are_exact() {
        // The generator folds coefficients within 1e-12 of 0/±1 to wires
        // and negations. Bit-identity with the simulator's coefficient
        // reference path (asserted by the parity suites) requires every
        // fold-eligible coefficient to be *exactly* 0, 1, or −1 — which
        // `snap` guarantees (real robots have trig residues like
        // cos(π/2) ≈ 6.1e-17 that would otherwise slip through). Guard
        // the post-snap invariant here for every built-in robot.
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            for joint in 0..robot.dof() {
                let coeffs = affine_coefficients(&robot, joint);
                for row in &coeffs {
                    for (alpha, beta, gamma) in row {
                        for k in [*alpha, *beta, *gamma] {
                            let near = |t: f64| (k - t).abs() < FOLD_TOL && k != t;
                            assert!(
                                !(near(0.0) || near(1.0) || near(-1.0)),
                                "{} joint {joint}: coefficient {k:e} within fold \
                                 tolerance but not exact",
                                robot.name(),
                            );
                        }
                    }
                }
            }
        }
    }
}
