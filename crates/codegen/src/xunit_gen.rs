//! Generates the pruned `X·` transform matrix-vector unit as a netlist.
//!
//! This is the Figure 7 structure made concrete: every live matrix entry
//! `x_rc = α·cos q + β·sin q + γ` becomes a (constant-folded) sub-circuit,
//! and each output row becomes a pruned tree of variable multipliers and
//! adders over the live columns. Coefficients of ±1 fold to wires or
//! negations; zero coefficients disappear — exactly the pruning the paper
//! performs on the RTL.

use crate::netlist::{Netlist, Node, NodeId};
use robo_model::RobotModel;
use robo_sparsity::{x_pattern, Mask6};

/// Input signal names of a generated X-unit, in declaration order:
/// `sin_q`, `cos_q`, then `v0..v5`.
pub fn x_unit_input_names() -> Vec<String> {
    let mut names = vec!["sin_q".to_owned(), "cos_q".to_owned()];
    names.extend((0..6).map(|i| format!("v{i}")));
    names
}

/// Output signal names: `o0..o5`.
pub fn x_unit_output_names() -> Vec<String> {
    (0..6).map(|i| format!("o{i}")).collect()
}

pub(crate) fn affine_coefficients(robot: &RobotModel, joint: usize) -> [[(f64, f64, f64); 6]; 6] {
    let probe = |s: f64, c: f64| robot.joint_transform_sincos::<f64>(joint, s, c).to_mat6();
    let m00 = probe(0.0, 0.0);
    let m01 = probe(0.0, 1.0);
    let m10 = probe(1.0, 0.0);
    let mut out = [[(0.0, 0.0, 0.0); 6]; 6];
    for r in 0..6 {
        for c in 0..6 {
            out[r][c] = (
                snap(m01.m[r][c] - m00.m[r][c]), // α (cos coefficient)
                snap(m10.m[r][c] - m00.m[r][c]), // β (sin coefficient)
                snap(m00.m[r][c]),               // γ (constant)
            );
        }
    }
    out
}

pub(crate) const FOLD_TOL: f64 = 1e-12;

/// Snaps a customization-time coefficient to exactly 0/±1 when it is a
/// trig/geometry residue within `FOLD_TOL` (1e-12) of one. The hardware folds
/// such coefficients to dead wires, plain wires, or negations (§5.2) — it
/// genuinely computes without the residue term — so every software model
/// of the unit must use the snapped value for results to match the
/// generated circuit bit for bit. `robo-sim`'s coefficient reference path
/// applies the same function.
pub fn snap(k: f64) -> f64 {
    for target in [0.0, 1.0, -1.0] {
        if (k - target).abs() < FOLD_TOL {
            return target;
        }
    }
    k
}

/// Emits a term `k·src`, folding `k ∈ {0, ±1}` to nothing / a wire / a
/// negation. Returns `None` for a zero coefficient.
fn coeff_term(n: &mut Netlist, src: NodeId, k: f64) -> Option<NodeId> {
    if k.abs() < FOLD_TOL {
        None
    } else if (k - 1.0).abs() < FOLD_TOL {
        Some(src)
    } else if (k + 1.0).abs() < FOLD_TOL {
        Some(n.push(Node::Neg(src)))
    } else {
        Some(n.push(Node::MulConst(src, k)))
    }
}

fn sum_terms(n: &mut Netlist, terms: &[NodeId]) -> Option<NodeId> {
    let mut iter = terms.iter().copied();
    let first = iter.next()?;
    Some(iter.fold(first, |acc, t| n.push(Node::Add(acc, t))))
}

/// Generates the pruned X-unit netlist for `joint` of `robot`, using the
/// joint's own structural mask.
pub fn generate_x_unit(robot: &RobotModel, joint: usize) -> Netlist {
    generate_x_unit_with_mask(robot, joint, x_pattern(robot, joint))
}

/// Generates the transposed unit (`Xᵀ·f`, the backward-pass operation) for
/// `joint` of `robot`, using the joint's own structural mask.
pub fn generate_xt_unit(robot: &RobotModel, joint: usize) -> Netlist {
    generate_xt_unit_with_mask(robot, joint, x_pattern(robot, joint))
}

/// Generates the X-unit with an explicit (e.g. superposed) mask, as the
/// paper's shared unit does (§6.2).
///
/// # Panics
///
/// Panics in debug builds if `mask` does not cover the joint's own
/// structural pattern.
pub fn generate_x_unit_with_mask(robot: &RobotModel, joint: usize, mask: Mask6) -> Netlist {
    generate_unit(robot, joint, mask, false)
}

/// Generates the transposed unit (`Xᵀ·f`) with an explicit mask. The same
/// entry-forming constant-multiplier bank as the forward unit feeds
/// *column* trees instead of row trees — in hardware the two directions
/// share one unit (§5.2), so the inputs keep the forward declaration order
/// (`sin_q`, `cos_q`, `v0..v5`) and outputs stay `o0..o5`.
///
/// # Panics
///
/// Panics in debug builds if `mask` does not cover the joint's own
/// structural pattern.
pub fn generate_xt_unit_with_mask(robot: &RobotModel, joint: usize, mask: Mask6) -> Netlist {
    generate_unit(robot, joint, mask, true)
}

/// Merges every joint's X-unit into one netlist — the per-state transform
/// work of a whole forward sweep, as one module.
///
/// Joint `k`'s unit keeps its internal structure; its inputs and outputs
/// are prefixed `j<k>_` (`j3_sin_q`, `j3_o0`, …) so the joints stay
/// independent. This is the serving-path workload shape: one compiled
/// tape per robot instead of one per joint, long enough that dispatch and
/// batching costs are measured against realistic per-state work.
/// [`crate::optimize`] still applies across the merged module, so
/// constants and identical sub-circuits shared between joints fold
/// together exactly as a shared hardware unit would.
pub fn generate_x_pipeline(robot: &RobotModel, mask: Mask6) -> Netlist {
    let mut n = Netlist::new(format!("x_pipeline_{}", robot.name()));
    for joint in 0..robot.dof() {
        let unit = generate_x_unit_with_mask(robot, joint, mask);
        let offset = n.nodes().len();
        for node in unit.nodes() {
            let remapped = match node.clone() {
                Node::Input(name) => Node::Input(format!("j{joint}_{name}")),
                Node::Const(c) => Node::Const(c),
                Node::Mul(a, b) => Node::Mul(a + offset, b + offset),
                Node::MulConst(a, c) => Node::MulConst(a + offset, c),
                Node::Add(a, b) => Node::Add(a + offset, b + offset),
                Node::Sub(a, b) => Node::Sub(a + offset, b + offset),
                Node::Neg(a) => Node::Neg(a + offset),
            };
            n.push(remapped);
        }
        for (name, id) in unit.outputs() {
            n.output(format!("j{joint}_{name}"), id + offset)
                .expect("joint prefixes keep output names unique");
        }
    }
    n
}

fn generate_unit(robot: &RobotModel, joint: usize, mask: Mask6, transpose: bool) -> Netlist {
    debug_assert!(
        x_pattern(robot, joint).is_subset_of(&mask),
        "mask must cover joint {joint}'s structural pattern"
    );
    let coeffs = affine_coefficients(robot, joint);
    let direction = if transpose { "xt_unit" } else { "x_unit" };
    let mut n = Netlist::new(format!("{direction}_{}_joint{}", robot.name(), joint));

    let sin = n.push(Node::Input("sin_q".into()));
    let cos = n.push(Node::Input("cos_q".into()));
    let v: Vec<NodeId> = (0..6)
        .map(|i| n.push(Node::Input(format!("v{i}"))))
        .collect();

    // Entry-forming constant-multiplier bank.
    let mut entries = [[None::<NodeId>; 6]; 6];
    for r in 0..6 {
        for c in 0..6 {
            if !mask.m[r][c] {
                continue;
            }
            let (alpha, beta, gamma) = coeffs[r][c];
            let mut terms = Vec::new();
            if let Some(t) = coeff_term(&mut n, cos, alpha) {
                terms.push(t);
            }
            if let Some(t) = coeff_term(&mut n, sin, beta) {
                terms.push(t);
            }
            if gamma.abs() >= FOLD_TOL {
                terms.push(n.push(Node::Const(gamma)));
            }
            // A masked-but-dead entry (superposition covers more than this
            // joint uses) still exists in hardware; represent it as a zero
            // constant so the shared unit's structure is explicit.
            if terms.is_empty() {
                terms.push(n.push(Node::Const(0.0)));
            }
            entries[r][c] = sum_terms(&mut n, &terms);
        }
    }

    // Pruned dot-product trees: one per output row (`X·v`), or one per
    // output column for the transposed `Xᵀ·f` direction.
    for out_idx in 0..6 {
        let mut products = Vec::new();
        for in_idx in 0..6 {
            let entry = if transpose {
                entries[in_idx][out_idx]
            } else {
                entries[out_idx][in_idx]
            };
            if let Some(e) = entry {
                products.push(n.push(Node::Mul(e, v[in_idx])));
            }
        }
        let out = match sum_terms(&mut n, &products) {
            Some(id) => id,
            None => n.push(Node::Const(0.0)), // fully pruned row
        };
        n.output(format!("o{out_idx}"), out)
            .expect("row output names are unique");
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;
    use robo_sparsity::{matvec_ops, superposition_pattern};
    use robo_spatial::Motion;
    use std::collections::HashMap;

    fn eval_unit(
        netlist: &Netlist,
        robot: &RobotModel,
        joint: usize,
        q: f64,
        m: Motion<f64>,
    ) -> Motion<f64> {
        let mut inputs = HashMap::new();
        let revolute = robot.links()[joint].joint.is_revolute();
        let (s, c) = if revolute {
            (q.sin(), q.cos())
        } else {
            (q, 1.0)
        };
        inputs.insert("sin_q".to_owned(), s);
        inputs.insert("cos_q".to_owned(), c);
        let arr = m.to_array();
        for (i, x) in arr.iter().enumerate() {
            inputs.insert(format!("v{i}"), *x);
        }
        let out = netlist.eval(&inputs).unwrap();
        let mut o = [0.0; 6];
        for (name, value) in out {
            let idx: usize = name[1..].parse().unwrap();
            o[idx] = value;
        }
        Motion::from_array(o)
    }

    #[test]
    fn generated_unit_matches_reference_transform() {
        let robot = robots::iiwa14();
        let m = Motion::from_array([0.3, -0.8, 0.5, 1.1, -0.2, 0.7]);
        for joint in 0..7 {
            let unit = generate_x_unit(&robot, joint);
            for q in [0.0, 0.9, -1.7] {
                let got = eval_unit(&unit, &robot, joint, q, m);
                let want = robot.joint_transform::<f64>(joint, q).apply_motion(m);
                assert!((got - want).max_abs() < 1e-12, "joint {joint} at q={q}");
            }
        }
    }

    #[test]
    fn multiplier_count_matches_resource_model() {
        // The netlist's DSP-multiplier count equals the sparsity model's
        // pruned matvec count — the generator and the resource estimator
        // agree by construction.
        let robot = robots::iiwa14();
        for joint in 0..7 {
            let mask = x_pattern(&robot, joint);
            let unit = generate_x_unit(&robot, joint);
            let expected = matvec_ops(&mask);
            let stats = unit.stats();
            assert_eq!(stats.muls, expected.muls, "joint {joint} muls");
            // Row-tree adders are exactly the matvec adds; entry-forming
            // adders come on top for two-term entries.
            assert!(stats.adds >= expected.adds, "joint {joint} adds");
        }
    }

    #[test]
    fn section4_counts_in_rtl() {
        // The §4 numbers, now counted in generated hardware: 13 DSP
        // multipliers instead of 36.
        let robot = robots::iiwa14();
        let unit = generate_x_unit(&robot, 1);
        assert_eq!(unit.stats().muls, 13);
    }

    #[test]
    fn superposed_unit_works_for_all_joints() {
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let m = Motion::from_array([0.5, 0.1, -0.6, 0.2, 0.9, -0.3]);
        for joint in 0..7 {
            let unit = generate_x_unit_with_mask(&robot, joint, mask);
            assert_eq!(unit.stats().muls, matvec_ops(&mask).muls);
            let got = eval_unit(&unit, &robot, joint, 0.77, m);
            let want = robot.joint_transform::<f64>(joint, 0.77).apply_motion(m);
            assert!((got - want).max_abs() < 1e-12, "joint {joint}");
        }
    }

    #[test]
    fn prismatic_units_generate() {
        let robot = robots::serial_chain(3, robo_model::JointType::PrismaticZ);
        let unit = generate_x_unit(&robot, 1);
        let m = Motion::from_array([0.4, -0.1, 0.3, 0.2, 0.6, -0.5]);
        let got = eval_unit(&unit, &robot, 1, 0.35, m);
        let want = robot.joint_transform::<f64>(1, 0.35).apply_motion(m);
        assert!((got - want).max_abs() < 1e-12);
    }

    #[test]
    fn netlist_text_round_trips_generated_unit() {
        let robot = robots::iiwa14();
        let unit = generate_x_unit(&robot, 2);
        let parsed = Netlist::parse(&unit.to_text()).unwrap();
        assert_eq!(parsed, unit);
    }

    #[test]
    fn transposed_unit_matches_reference_transform() {
        use robo_spatial::Force;
        let robot = robots::iiwa14();
        for joint in 0..7 {
            let unit = generate_xt_unit(&robot, joint);
            let f = Force::new(
                robo_spatial::Vec3::new(0.4, -0.7, 0.2),
                robo_spatial::Vec3::new(1.3, 0.5, -0.9),
            );
            for q in [0.0, 1.2, -0.6] {
                let m = Motion::new(f.ang, f.lin);
                let got = eval_unit(&unit, &robot, joint, q, m);
                let want = robot.joint_transform::<f64>(joint, q).tr_apply_force(f);
                let want = Motion::new(want.ang, want.lin);
                assert!((got - want).max_abs() < 1e-12, "joint {joint} at q={q}");
            }
        }
    }

    #[test]
    fn optimized_multiplier_counts_never_exceed_raw() {
        // Satellite of the §5.2 software pruning: lowering from the
        // optimized netlist can only shrink the DSP-multiplier budget (the
        // Figure 9 metric), never grow it — for every built-in robot, both
        // transform directions, own and superposed masks.
        use crate::opt::optimize_with_report;
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            let sup = superposition_pattern(&robot);
            for joint in 0..robot.dof() {
                for unit in [
                    generate_x_unit(&robot, joint),
                    generate_xt_unit(&robot, joint),
                    generate_x_unit_with_mask(&robot, joint, sup),
                    generate_xt_unit_with_mask(&robot, joint, sup),
                ] {
                    let (_, report) = optimize_with_report(&unit);
                    assert!(
                        report.after.muls <= report.before.muls,
                        "{} joint {joint} ({}): muls grew {} -> {}",
                        robot.name(),
                        unit.name(),
                        report.before.muls,
                        report.after.muls,
                    );
                    assert!(
                        report.after.muls + report.after.const_muls
                            <= report.before.muls + report.before.const_muls,
                        "{} joint {joint}: total multiplier budget grew",
                        robot.name(),
                    );
                }
            }
        }
    }

    #[test]
    fn pipeline_netlist_matches_per_joint_units() {
        let robot = robots::iiwa14();
        let mask = superposition_pattern(&robot);
        let pipeline = generate_x_pipeline(&robot, mask);
        let m = Motion::from_array([0.3, -0.8, 0.5, 1.1, -0.2, 0.7]);
        let mut inputs = HashMap::new();
        for joint in 0..robot.dof() {
            let q = 0.3 * joint as f64 - 0.9;
            inputs.insert(format!("j{joint}_sin_q"), q.sin());
            inputs.insert(format!("j{joint}_cos_q"), q.cos());
            for (i, x) in m.to_array().iter().enumerate() {
                inputs.insert(format!("j{joint}_v{i}"), *x);
            }
        }
        let out: HashMap<String, f64> = pipeline.eval(&inputs).unwrap().into_iter().collect();
        assert_eq!(out.len(), 6 * robot.dof());
        for joint in 0..robot.dof() {
            let q = 0.3 * joint as f64 - 0.9;
            let unit = generate_x_unit_with_mask(&robot, joint, mask);
            let want = eval_unit(&unit, &robot, joint, q, m);
            for (i, w) in want.to_array().iter().enumerate() {
                let got = out[&format!("j{joint}_o{i}")];
                assert_eq!(got.to_bits(), w.to_bits(), "joint {joint} o{i}");
            }
        }
    }

    #[test]
    fn fold_eligible_coefficients_are_exact() {
        // The generator folds coefficients within 1e-12 of 0/±1 to wires
        // and negations. Bit-identity with the simulator's coefficient
        // reference path (asserted by the parity suites) requires every
        // fold-eligible coefficient to be *exactly* 0, 1, or −1 — which
        // `snap` guarantees (real robots have trig residues like
        // cos(π/2) ≈ 6.1e-17 that would otherwise slip through). Guard
        // the post-snap invariant here for every built-in robot.
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            for joint in 0..robot.dof() {
                let coeffs = affine_coefficients(&robot, joint);
                for row in &coeffs {
                    for (alpha, beta, gamma) in row {
                        for k in [*alpha, *beta, *gamma] {
                            let near = |t: f64| (k - t).abs() < FOLD_TOL && k != t;
                            assert!(
                                !(near(0.0) || near(1.0) || near(-1.0)),
                                "{} joint {joint}: coefficient {k:e} within fold \
                                 tolerance but not exact",
                                robot.name(),
                            );
                        }
                    }
                }
            }
        }
    }
}
