//! Copy-and-patch template JIT for direct-threaded tapes.
//!
//! The direct-threaded tape (`threaded.rs`) already collapsed the
//! interpreter's central dispatch into one indirect call per
//! superinstruction block, but two costs remain: the dispatch loop
//! still walks the block table between calls (its induction state
//! spills around every call), and every handler still loads its operand
//! indices from the `OpArgs` table and re-indexes the register file for
//! every instruction. This module removes those costs by stitching the
//! scheduled tape into **one contiguous native function**, with two
//! lowerings selected by scalar type:
//!
//! * **inline** (`f64` and `f32` — the serving-path types): every
//!   decoded instruction lowers to 2–4 SSE scalar instructions
//!   (`movsd`/`addsd`/`subsd`/`mulsd` and their single-precision
//!   forms) whose disp32 fields are patched with the operand's byte
//!   offset (register or constant slot × element size). The result is
//!   a straight-line leaf function — no dispatch, no calls, no
//!   operand-table traffic, no loop bookkeeping. Bit-exactness holds
//!   by construction: fused opcodes keep their two rounding steps
//!   (`mulsd` then `addsd`, never FMA), negation is the IEEE sign-bit
//!   flip (`xorps` against a hoisted sign mask — exactly what the
//!   compiler emits for the handlers' `-x`), and every operand is read
//!   before the single destination store, so destination-recycling
//!   instructions behave as in the interpreter.
//! * **call stubs** (every other scalar type — fixed point and the
//!   SIMD lane bundles): each scheduled block becomes a fixed 26-byte
//!   stub — pre-encoded template bytes patched with the block's
//!   operand-table displacement and its pre-compiled handler address
//!   (the same `extern "C"` handler bodies the threaded tape
//!   dispatches to, including the AVX2-attributed ones). Stubs are
//!   stitched with straight-line fallthrough, so every call site is
//!   monomorphic and the inter-block dispatch bookkeeping disappears.
//!   (On big out-of-order cores the indirect-target predictor tracks a
//!   looping tape's repeating call sequence well, so stubs alone
//!   roughly tie the threaded tape — the inline lowering above is
//!   where the scalar speedup comes from.)
//!
//! Both lowerings sit behind the same `eval_into_regs` interface, and
//! the `match` interpreter remains the bit-exactness oracle.
//!
//! # W^X lifecycle
//!
//! Code lives in an anonymous private mapping obtained with raw Linux
//! syscalls (`mmap`/`mprotect`/`munmap` — `libc` is deliberately not a
//! dependency). The mapping is created read+write, filled, and then
//! flipped to read+execute before the entry pointer is ever formed; it
//! is **never writable and executable at the same time**, and the flip
//! is a full `mprotect` so there is no writable alias left behind. x86
//! instruction caches are coherent with stores from the same core after
//! an `mprotect` round trip, so no explicit icache flush is needed.
//!
//! # Fallback rules
//!
//! [`JitTape::emit`] returns `None` — and callers keep the threaded tape
//! — whenever the target is not x86-64 Linux, the `mmap` fails, the
//! `mprotect` flip fails, or an operand displacement would overflow a
//! template's 32-bit field. Every platform builds; only x86-64 Linux
//! ever executes emitted code.

/// Emitted-code statistics for one JIT-compiled tape, surfaced through
/// [`CompiledNetlist::jit_report`](crate::CompiledNetlist::jit_report)
/// and the `codegen_stats` experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JitReport {
    /// Superinstruction blocks stitched into the function.
    pub blocks: usize,
    /// Total machine-code bytes emitted.
    pub code_bytes: usize,
    /// Immediate fields patched into the instruction templates: operand
    /// displacements plus, per lowering, handler addresses and the
    /// operand-table base (stubs) or the sign-mask immediate (inline).
    pub patches: usize,
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod native {
    use super::JitReport;
    use crate::threaded::{OpArgs, OpFn, Opcode, ThreadedTape};
    use core::any::TypeId;
    use core::ptr::NonNull;
    use robo_spatial::Scalar;
    use std::sync::Arc;

    // x86-64 Linux syscall numbers and the mmap/mprotect flag bits used
    // below (stable kernel ABI).
    const SYS_MMAP: i64 = 9;
    const SYS_MPROTECT: i64 = 10;
    const SYS_MUNMAP: i64 = 11;
    const PROT_READ: i64 = 0x1;
    const PROT_WRITE: i64 = 0x2;
    const PROT_EXEC: i64 = 0x4;
    const MAP_PRIVATE: i64 = 0x02;
    const MAP_ANONYMOUS: i64 = 0x20;
    /// Mapping granularity; x86-64 Linux pages are always 4 KiB-aligned
    /// (larger runtime page sizes are multiples, so rounding to 4 KiB
    /// can only under-request — the kernel rounds the length up itself).
    const PAGE: usize = 4096;

    /// Raw x86-64 Linux syscall (`libc` is not a dependency of this
    /// workspace). Returns the kernel's `rax`: a negated errno in
    /// `-4095..0` on failure.
    ///
    /// # Safety
    ///
    /// The caller must pass a syscall number and arguments that are
    /// valid for the kernel ABI — in this module only `mmap`,
    /// `mprotect`, and `munmap` over mappings this module owns.
    unsafe fn syscall6(n: i64, a1: i64, a2: i64, a3: i64, a4: i64, a5: i64, a6: i64) -> i64 {
        let ret: i64;
        // SAFETY: the `syscall` instruction with the kernel's register
        // assignment (args in rdi/rsi/rdx/r10/r8/r9, number/result in
        // rax); rcx and r11 are declared clobbered because the kernel
        // overwrites them. Argument validity is the caller's contract.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// An anonymous private mapping holding the stitched function.
    ///
    /// W^X lifecycle: mapped read+write by [`CodeBuf::map_rw`], filled
    /// exactly once, then flipped to read+execute by
    /// [`CodeBuf::protect_rx`]; never writable and executable at the
    /// same time, and unmapped on drop.
    #[derive(Debug)]
    struct CodeBuf {
        ptr: NonNull<u8>,
        len: usize,
    }

    // SAFETY: after construction (`JitTape::emit` finishes before any
    // sharing) the mapping is read+execute only — no `&mut` access
    // exists anywhere, so moving the owner across threads is sound.
    unsafe impl Send for CodeBuf {}
    // SAFETY: as above — all post-construction access is read/execute of
    // immutable pages, safe to share between threads.
    unsafe impl Sync for CodeBuf {}

    impl CodeBuf {
        /// Maps `len` bytes of zeroed anonymous memory, read+write.
        fn map_rw(len: usize) -> Option<CodeBuf> {
            // SAFETY: `mmap(NULL, len, RW, PRIVATE|ANON, -1, 0)` with a
            // nonzero length is always a valid request; the result is
            // error-checked below before use.
            let ret = unsafe {
                syscall6(
                    SYS_MMAP,
                    0,
                    len as i64,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS,
                    -1,
                    0,
                )
            };
            if (-4095..0).contains(&ret) {
                return None;
            }
            NonNull::new(ret as *mut u8).map(|ptr| CodeBuf { ptr, len })
        }

        /// Flips the whole mapping to read+execute. After this returns
        /// `true` no writable alias of the code exists.
        fn protect_rx(&self) -> bool {
            // SAFETY: `ptr`/`len` describe exactly the mapping obtained
            // by `map_rw` (page-aligned base, length the kernel rounds
            // up), which this `CodeBuf` still owns.
            let ret = unsafe {
                syscall6(
                    SYS_MPROTECT,
                    self.ptr.as_ptr() as i64,
                    self.len as i64,
                    PROT_READ | PROT_EXEC,
                    0,
                    0,
                    0,
                )
            };
            ret == 0
        }
    }

    impl Drop for CodeBuf {
        fn drop(&mut self) {
            // SAFETY: unmaps exactly the mapping this `CodeBuf` owns; it
            // is only dropped once the last `Arc` clone of the owning
            // `JitTape` is gone, so no emitted code can still be
            // executing.
            let _ = unsafe {
                syscall6(
                    SYS_MUNMAP,
                    self.ptr.as_ptr() as i64,
                    self.len as i64,
                    0,
                    0,
                    0,
                    0,
                )
            };
        }
    }

    // ------------------------------------------------------------------
    // Call-stub lowering: any scalar type.
    // ------------------------------------------------------------------

    /// Encoded byte sizes of the three stub templates below.
    const PROLOGUE_BYTES: usize = 22;
    const STUB_BYTES: usize = 26;
    const EPILOGUE_BYTES: usize = 7;

    /// Function prologue: save the three callee-saved scratch registers
    /// (also realigning the stack: entry `rsp ≡ 8 (mod 16)`, three
    /// pushes make every `call` site 16-byte aligned as the SysV ABI
    /// requires), park `regs` in `r14` and `consts` in `r15`, and load
    /// the operand-table base (a patched imm64) into `r12`.
    fn emit_prologue(code: &mut Vec<u8>, args_base: u64) {
        code.extend_from_slice(&[0x41, 0x54]); // push r12
        code.extend_from_slice(&[0x41, 0x56]); // push r14
        code.extend_from_slice(&[0x41, 0x57]); // push r15
        code.extend_from_slice(&[0x49, 0x89, 0xFE]); // mov r14, rdi
        code.extend_from_slice(&[0x49, 0x89, 0xF7]); // mov r15, rsi
        code.extend_from_slice(&[0x49, 0xBC]); // movabs r12, imm64
        code.extend_from_slice(&args_base.to_le_bytes());
    }

    /// One superinstruction-block call stub: reload the handler's three
    /// `extern "C"` arguments (`rdi` = regs, `rsi` = consts, `rdx` =
    /// `&args[at]` as base + patched disp32) and call the patched
    /// handler address. Every stub's call site has exactly one target,
    /// so each is a perfectly predicted monomorphic call — unlike the
    /// threaded loop's single dispatch site cycling every handler.
    fn emit_stub(code: &mut Vec<u8>, handler: u64, disp: i32) {
        code.extend_from_slice(&[0x4C, 0x89, 0xF7]); // mov rdi, r14
        code.extend_from_slice(&[0x4C, 0x89, 0xFE]); // mov rsi, r15
        code.extend_from_slice(&[0x49, 0x8D, 0x94, 0x24]); // lea rdx, [r12 + disp32]
        code.extend_from_slice(&disp.to_le_bytes());
        code.extend_from_slice(&[0x48, 0xB8]); // movabs rax, imm64
        code.extend_from_slice(&handler.to_le_bytes());
        code.extend_from_slice(&[0xFF, 0xD0]); // call rax
    }

    /// Function epilogue: restore the callee-saved registers and return.
    fn emit_epilogue(code: &mut Vec<u8>) {
        code.extend_from_slice(&[0x41, 0x5F]); // pop r15
        code.extend_from_slice(&[0x41, 0x5E]); // pop r14
        code.extend_from_slice(&[0x41, 0x5C]); // pop r12
        code.push(0xC3); // ret
    }

    /// Lowers every scheduled block to a call stub against the threaded
    /// tape's handler table. Returns the code bytes and the patch
    /// count, or `None` if an operand displacement overflows the stub's
    /// 32-bit field.
    fn emit_stubbed<S>(blocks: &[(OpFn<S>, u32)], args_base: u64) -> Option<(Vec<u8>, usize)> {
        let code_bytes = PROLOGUE_BYTES + STUB_BYTES * blocks.len() + EPILOGUE_BYTES;
        let mut code = Vec::with_capacity(code_bytes);
        let mut patches = 0usize;
        emit_prologue(&mut code, args_base);
        patches += 1; // the operand-table base imm64
        for &(f, at) in blocks {
            let disp = i32::try_from(at as usize * core::mem::size_of::<OpArgs>()).ok()?;
            emit_stub(&mut code, f as usize as u64, disp);
            patches += 2; // handler imm64 + operand disp32
        }
        emit_epilogue(&mut code);
        debug_assert_eq!(code.len(), code_bytes);
        Some((code, patches))
    }

    // ------------------------------------------------------------------
    // Inline SSE lowering: f64 / f32.
    // ------------------------------------------------------------------

    /// ModRM byte addressing `[rdi + disp32]` (the register file) with
    /// xmm0 (mod=10 disp32, reg=xmm0, rm=rdi).
    const RM_REGS: u8 = 0x87;
    /// ModRM byte addressing `[rsi + disp32]` (the constant table) with
    /// xmm0 (mod=10 disp32, reg=xmm0, rm=rsi).
    const RM_CONSTS: u8 = 0x86;
    /// SSE opcode bytes for `adds*`/`muls*`/`subs*` `xmm0, m`.
    const OP_ADD: u8 = 0x58;
    const OP_MUL: u8 = 0x59;
    const OP_SUB: u8 = 0x5C;

    /// Template parameters of the inline lowering for one float type:
    /// the SSE scalar-size prefix (`F2` = double, `F3` = single) and
    /// the element size the slot displacements scale by.
    struct InlineEnc {
        prefix: u8,
        elem: usize,
    }

    /// Picks the inline lowering for `S`: `f64`/`f32` lower each tape
    /// instruction to native SSE scalar arithmetic; every other scalar
    /// type keeps the call-stub lowering (`None`).
    fn inline_enc<S: Scalar>() -> Option<InlineEnc> {
        if TypeId::of::<S>() == TypeId::of::<f64>() {
            Some(InlineEnc {
                prefix: 0xF2,
                elem: 8,
            })
        } else if TypeId::of::<S>() == TypeId::of::<f32>() {
            Some(InlineEnc {
                prefix: 0xF3,
                elem: 4,
            })
        } else {
            None
        }
    }

    impl InlineEnc {
        /// Appends (and counts as a patch) the disp32 for `slot`.
        /// `None` if `slot · elem` overflows the 32-bit field.
        fn disp(&self, code: &mut Vec<u8>, patches: &mut usize, slot: u32) -> Option<()> {
            let d = i32::try_from(slot as usize * self.elem).ok()?;
            code.extend_from_slice(&d.to_le_bytes());
            *patches += 1;
            Some(())
        }

        /// `movsd/movss xmm0, [base + slot·elem]`.
        fn load(&self, code: &mut Vec<u8>, patches: &mut usize, rm: u8, slot: u32) -> Option<()> {
            code.extend_from_slice(&[self.prefix, 0x0F, 0x10, rm]);
            self.disp(code, patches, slot)
        }

        /// `adds*/muls*/subs* xmm0, [base + slot·elem]` (`op` is one of
        /// [`OP_ADD`]/[`OP_MUL`]/[`OP_SUB`]).
        fn arith(
            &self,
            code: &mut Vec<u8>,
            patches: &mut usize,
            op: u8,
            rm: u8,
            slot: u32,
        ) -> Option<()> {
            code.extend_from_slice(&[self.prefix, 0x0F, op, rm]);
            self.disp(code, patches, slot)
        }

        /// `movsd/movss [rdi + slot·elem], xmm0` — the instruction's
        /// single destination store, always into the register file.
        fn store(&self, code: &mut Vec<u8>, patches: &mut usize, slot: u32) -> Option<()> {
            code.extend_from_slice(&[self.prefix, 0x0F, 0x11, RM_REGS]);
            self.disp(code, patches, slot)
        }

        /// `xorps xmm0, xmm2` — IEEE negation as a sign-bit flip against
        /// the hoisted mask (bitwise, so it is exact for every value
        /// including NaNs, matching the compiler's lowering of `-x`).
        fn negate(&self, code: &mut Vec<u8>) {
            code.extend_from_slice(&[0x0F, 0x57, 0xC2]);
        }

        /// Hoisted sign-mask prologue: materializes the float sign bit
        /// in xmm2 once, for every `Neg`/`NegAdd` in the tape.
        fn emit_mask(&self, code: &mut Vec<u8>, patches: &mut usize) {
            if self.elem == 8 {
                code.extend_from_slice(&[0x48, 0xB8]); // movabs rax, imm64
                code.extend_from_slice(&0x8000_0000_0000_0000_u64.to_le_bytes());
                code.extend_from_slice(&[0x66, 0x48, 0x0F, 0x6E, 0xD0]); // movq xmm2, rax
            } else {
                code.push(0xB8); // mov eax, imm32
                code.extend_from_slice(&0x8000_0000_u32.to_le_bytes());
                code.extend_from_slice(&[0x66, 0x0F, 0x6E, 0xD0]); // movd xmm2, eax
            }
            *patches += 1; // the sign-mask immediate
        }
    }

    /// Lowers the decoded instruction list to straight-line SSE scalar
    /// code: per instruction, an xmm0 load of the first operand, 0–2
    /// arithmetic ops folding the remaining operands straight from
    /// memory, and the destination store — all reads before the single
    /// write, fused opcodes as two rounded steps, exactly the handler
    /// semantics. Returns the code bytes and the patch count, or `None`
    /// if a displacement overflows 32 bits.
    fn emit_inline(enc: &InlineEnc, ops: &[Opcode], args: &[OpArgs]) -> Option<(Vec<u8>, usize)> {
        // ≤ 32 bytes per instruction (4 × 8-byte memory ops) + mask
        // prologue and ret: one allocation for the whole function.
        let mut code = Vec::with_capacity(32 * ops.len() + 16);
        let mut patches = 0usize;
        if ops
            .iter()
            .any(|o| matches!(o, Opcode::Neg | Opcode::NegAdd))
        {
            enc.emit_mask(&mut code, &mut patches);
        }
        for (&op, a) in ops.iter().zip(args) {
            match op {
                Opcode::Const => {
                    enc.load(&mut code, &mut patches, RM_CONSTS, a.a)?;
                }
                Opcode::Mul => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.arith(&mut code, &mut patches, OP_MUL, RM_REGS, a.b)?;
                }
                Opcode::MulConst => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.arith(&mut code, &mut patches, OP_MUL, RM_CONSTS, a.b)?;
                }
                Opcode::Add => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.arith(&mut code, &mut patches, OP_ADD, RM_REGS, a.b)?;
                }
                Opcode::Sub => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.arith(&mut code, &mut patches, OP_SUB, RM_REGS, a.b)?;
                }
                Opcode::Neg => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.negate(&mut code);
                }
                Opcode::MulAdd => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.arith(&mut code, &mut patches, OP_MUL, RM_REGS, a.b)?;
                    enc.arith(&mut code, &mut patches, OP_ADD, RM_REGS, a.c)?;
                }
                Opcode::MulConstAdd => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.arith(&mut code, &mut patches, OP_MUL, RM_CONSTS, a.b)?;
                    enc.arith(&mut code, &mut patches, OP_ADD, RM_REGS, a.c)?;
                }
                Opcode::AddAdd => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.arith(&mut code, &mut patches, OP_ADD, RM_REGS, a.b)?;
                    enc.arith(&mut code, &mut patches, OP_ADD, RM_REGS, a.c)?;
                }
                Opcode::NegAdd => {
                    enc.load(&mut code, &mut patches, RM_REGS, a.a)?;
                    enc.negate(&mut code);
                    enc.arith(&mut code, &mut patches, OP_ADD, RM_REGS, a.c)?;
                }
            }
            enc.store(&mut code, &mut patches, a.dst)?;
        }
        code.push(0xC3); // ret — leaf function, no saved registers
        Some((code, patches))
    }

    /// A threaded tape stitched into one contiguous native function.
    ///
    /// Cloning is cheap: the code mapping and the operand table are
    /// `Arc`-shared, and the emitted code embeds their absolute
    /// addresses, so both must (and do) stay stable across clones.
    #[derive(Debug)]
    pub(crate) struct JitTape<S> {
        /// Keeps the executable mapping alive; `entry` points into it.
        code: Arc<CodeBuf>,
        /// Owned copy of the decoded operands. The stub lowering embeds
        /// this allocation's absolute address in the emitted code, so
        /// the tape must own it (the threaded tape's `Vec` would
        /// relocate on clone). The inline lowering reads it only at
        /// emit time.
        args: Arc<[OpArgs]>,
        entry: unsafe extern "C" fn(*mut S, *const S),
        min_regs: usize,
        n_consts: usize,
        report: JitReport,
    }

    impl<S> Clone for JitTape<S> {
        fn clone(&self) -> Self {
            Self {
                code: Arc::clone(&self.code),
                args: Arc::clone(&self.args),
                entry: self.entry,
                min_regs: self.min_regs,
                n_consts: self.n_consts,
                report: self.report,
            }
        }
    }

    impl<S: Scalar> JitTape<S> {
        /// Stitches `threaded`'s scheduled tape into one native
        /// function — inline SSE arithmetic for `f64`/`f32`, call stubs
        /// against the handler table for every other scalar type.
        /// Returns `None` (callers keep the threaded tape) if the
        /// mapping cannot be created or protected, or an operand
        /// displacement overflows a template's 32-bit field.
        pub(crate) fn emit(threaded: &ThreadedTape<S>) -> Option<Self> {
            let blocks = threaded.blocks();
            let _span = robo_trace::span_items("tape.jit.emit", blocks.len());

            let args: Arc<[OpArgs]> = threaded.op_args().into();
            let (code, patches) = {
                let _span = robo_trace::span_items("tape.jit.patch", blocks.len());
                match inline_enc::<S>() {
                    Some(enc) => emit_inline(&enc, threaded.op_codes(), &args)?,
                    None => emit_stubbed(blocks, args.as_ptr() as u64)?,
                }
            };
            let code_bytes = code.len();

            let buf = CodeBuf::map_rw(code_bytes.div_ceil(PAGE) * PAGE)?;
            // SAFETY: `buf` is a fresh read+write mapping at least
            // `code.len()` bytes long, disjoint from `code`'s heap
            // allocation.
            unsafe { core::ptr::copy_nonoverlapping(code.as_ptr(), buf.ptr.as_ptr(), code.len()) };
            {
                let _span = robo_trace::span("tape.jit.protect");
                if !buf.protect_rx() {
                    return None;
                }
            }
            // SAFETY: the mapping now holds, read+execute, a complete
            // x86-64 function with the `extern "C"` signature
            // `fn(*mut S, *const S)` (emitted by `emit_inline` or
            // `emit_stubbed` above); the pointer is its first
            // instruction.
            let entry = unsafe {
                core::mem::transmute::<*mut u8, unsafe extern "C" fn(*mut S, *const S)>(
                    buf.ptr.as_ptr(),
                )
            };
            Some(Self {
                code: Arc::new(buf),
                args,
                entry,
                min_regs: threaded.min_regs(),
                n_consts: threaded.n_consts(),
                report: JitReport {
                    blocks: blocks.len(),
                    code_bytes,
                    patches,
                },
            })
        }

        /// Executes the stitched function over `regs`, reading constants
        /// from `consts` — same contract and panics as
        /// `ThreadedTape::run`, and bit-identical results (identical
        /// operation semantics in identical order). Allocation-free.
        ///
        /// # Panics
        ///
        /// Panics if `regs` is shorter than the register file the source
        /// tape was validated against, or `consts` is not exactly the
        /// validated constant-table length.
        pub(crate) fn run(&self, regs: &mut [S], consts: &[S]) {
            assert!(regs.len() >= self.min_regs, "register file too small");
            assert_eq!(consts.len(), self.n_consts, "constant table mismatch");
            // The mapping `entry` points into:
            let _ = &self.code;
            // SAFETY: `entry` is the function emitted over this tape's
            // instruction list: it only touches `regs`/`consts` at
            // build-validated offsets (inline lowering) or calls
            // build-validated `OpFn` handlers with
            // `regs`/`consts`/`&args[at]` (stub lowering); the
            // assertions above re-establish the buffer bounds every
            // operand index was validated against, `self.args` pins the
            // operand table at the embedded address, and `self.code`
            // keeps the executable mapping alive for the whole call.
            unsafe { (self.entry)(regs.as_mut_ptr(), consts.as_ptr()) }
        }

        /// Emitted-code statistics for this tape.
        pub(crate) fn report(&self) -> JitReport {
            self.report
        }
    }
}

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) use native::JitTape;

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod fallback {
    use super::JitReport;
    use crate::threaded::ThreadedTape;
    use robo_spatial::Scalar;

    /// Uninhabited stand-in on targets without the JIT backend:
    /// [`JitTape::emit`] always returns `None`, so no value of this type
    /// ever exists and callers stay on the threaded tape.
    #[derive(Debug)]
    pub(crate) struct JitTape<S> {
        never: core::convert::Infallible,
        marker: core::marker::PhantomData<fn(S)>,
    }

    impl<S> Clone for JitTape<S> {
        fn clone(&self) -> Self {
            match self.never {}
        }
    }

    impl<S: Scalar> JitTape<S> {
        /// No JIT backend on this target: always `None`.
        pub(crate) fn emit(_threaded: &ThreadedTape<S>) -> Option<Self> {
            None
        }

        /// Unreachable: no `JitTape` value exists on this target.
        pub(crate) fn run(&self, _regs: &mut [S], _consts: &[S]) {
            let _ = self.marker;
            match self.never {}
        }

        /// Unreachable: no `JitTape` value exists on this target.
        pub(crate) fn report(&self) -> JitReport {
            match self.never {}
        }
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub(crate) use fallback::JitTape;

#[cfg(test)]
mod tests {
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    mod native {
        use crate::jit::JitTape;
        use crate::threaded::{Opcode, ThreadedTape};

        #[test]
        fn jit_matches_threaded_execution() {
            // A mixed tape exercising const loads, a fusable MAC run
            // (×4/×2/×1 tiling), negation (the hoisted sign mask), and
            // a single.
            let mut decoded = vec![
                Opcode::Const.args(0, 0, 0, 0),
                Opcode::Const.args(1, 0, 0, 1),
                Opcode::Const.args(0, 0, 0, 2),
            ];
            decoded.extend((0..7).map(|_| Opcode::MulAdd.args(0, 1, 2, 2)));
            decoded.push(Opcode::Neg.args(2, 0, 0, 3));
            decoded.push(Opcode::Sub.args(2, 3, 0, 4));

            let threaded = ThreadedTape::<f64>::build(&decoded, 5, 2);
            let jit = JitTape::emit(&threaded).expect("x86-64 Linux host emits");
            let consts = [1.5, 0.25];

            let mut regs_t = [0.0; 5];
            threaded.run(&mut regs_t, &consts);
            let mut regs_j = [0.0; 5];
            jit.run(&mut regs_j, &consts);
            assert_eq!(
                regs_t.map(f64::to_bits),
                regs_j.map(f64::to_bits),
                "JIT must be bit-identical to the threaded tape"
            );

            // f64 takes the inline lowering. Expected bytes/patches:
            // sign-mask prologue 15 B / 1 patch (the tape has a Neg),
            // 3 × Const at 16 B / 2, 7 × MulAdd at 32 B / 4, Neg at
            // 19 B / 2, Sub at 24 B / 3, plus the 1-byte ret — every
            // 8-byte load/arith/store carries one disp32 patch.
            let report = jit.report();
            assert_eq!(report.blocks, threaded.block_count());
            assert_eq!(report.code_bytes, 15 + 3 * 16 + 7 * 32 + 19 + 24 + 1);
            assert_eq!(report.patches, 1 + 3 * 2 + 7 * 4 + 2 + 3);
        }

        #[test]
        fn inline_f32_covers_every_opcode() {
            // One instruction per opcode, chained so later results
            // depend on earlier ones (any mis-encoded displacement or
            // operand order changes the bits).
            let decoded = [
                Opcode::Const.args(0, 0, 0, 0),
                Opcode::Const.args(1, 0, 0, 1),
                Opcode::Mul.args(0, 1, 0, 2),
                Opcode::MulConst.args(2, 1, 0, 3),
                Opcode::Add.args(2, 3, 0, 4),
                Opcode::Sub.args(4, 0, 0, 5),
                Opcode::Neg.args(5, 0, 0, 6),
                Opcode::MulAdd.args(5, 6, 4, 6),
                Opcode::MulConstAdd.args(6, 0, 3, 7),
                Opcode::AddAdd.args(6, 7, 5, 7),
                Opcode::NegAdd.args(7, 0, 2, 7),
            ];
            let threaded = ThreadedTape::<f32>::build(&decoded, 8, 2);
            let jit = JitTape::emit(&threaded).expect("x86-64 Linux host emits");
            let consts = [1.375_f32, -0.5];

            let mut regs_t = [0.0_f32; 8];
            threaded.run(&mut regs_t, &consts);
            let mut regs_j = [0.0_f32; 8];
            jit.run(&mut regs_j, &consts);
            assert_eq!(
                regs_t.map(f32::to_bits),
                regs_j.map(f32::to_bits),
                "f32 inline JIT must be bit-identical to the threaded tape"
            );
        }

        #[test]
        fn stub_lowering_keeps_template_shape() {
            // Non-float scalars (here a SIMD lane bundle) take the
            // call-stub lowering, whose template sizes are fixed:
            // 22-byte prologue + 26 bytes per block + 7-byte epilogue,
            // with 2 patches per stub plus the operand-table base.
            use robo_spatial::simd::F64x4;
            let decoded: Vec<_> = (0..11).map(|_| Opcode::MulAdd.args(0, 1, 2, 2)).collect();
            let threaded = ThreadedTape::<F64x4>::build(&decoded, 3, 0);
            let jit = JitTape::emit(&threaded).expect("x86-64 Linux host emits");

            let report = jit.report();
            assert_eq!(report.blocks, threaded.block_count());
            assert_eq!(report.patches, 2 * report.blocks + 1);
            assert_eq!(report.code_bytes, 22 + 26 * report.blocks + 7);

            // And the stitched stubs execute the same handlers.
            let mut regs_t = [F64x4::splat(2.0), F64x4::splat(1.0), F64x4::splat(1.0)];
            threaded.run(&mut regs_t, &[]);
            let mut regs_j = [F64x4::splat(2.0), F64x4::splat(1.0), F64x4::splat(1.0)];
            jit.run(&mut regs_j, &[]);
            assert_eq!(regs_t, regs_j);
        }

        #[test]
        fn jit_survives_clone_and_original_drop() {
            // The clone shares the same code mapping; dropping the
            // original must keep it alive (Arc-shared).
            let decoded: Vec<_> = (0..5).map(|_| Opcode::Add.args(0, 1, 0, 1)).collect();
            let threaded = ThreadedTape::<f64>::build(&decoded, 2, 0);
            let jit = JitTape::emit(&threaded).expect("x86-64 Linux host emits");
            let clone = jit.clone();
            drop(jit);
            let mut regs = [1.0, 0.0];
            clone.run(&mut regs, &[]);
            assert_eq!(regs[1], 5.0);
        }

        #[test]
        fn empty_tape_emits_a_trivial_function() {
            let threaded = ThreadedTape::<f64>::build(&[], 1, 0);
            let jit = JitTape::emit(&threaded).expect("x86-64 Linux host emits");
            let mut regs = [7.0];
            jit.run(&mut regs, &[]);
            assert_eq!(regs[0], 7.0);
            assert_eq!(jit.report().blocks, 0);
        }

        #[test]
        #[should_panic(expected = "register file too small")]
        fn run_rejects_short_register_files() {
            let decoded = [Opcode::Add.args(0, 1, 0, 2)];
            let threaded = ThreadedTape::<f64>::build(&decoded, 3, 0);
            let jit = JitTape::emit(&threaded).expect("x86-64 Linux host emits");
            jit.run(&mut [0.0; 2], &[]);
        }
    }
}
