//! A compiled, allocation-free netlist evaluator.
//!
//! [`Netlist::eval`] is the reference oracle: it re-allocates a value
//! vector per call, looks inputs up in a string-keyed map, and converts
//! every constant from `f64` on every evaluation. [`CompiledNetlist`] is
//! the serving-path form of the same circuit, compiled once per scalar
//! type:
//!
//! * **inputs interned to dense slots** — callers pass a `&[S]` in
//!   [`CompiledNetlist::input_names`] order, no hashing;
//! * **constants hoisted** — every literal is converted to `S` exactly
//!   once, at compile time, into a deduplicated table;
//! * **a flat tape** — nodes become fixed-width instructions executed in
//!   one linear sweep (the software analogue of Dadu-RBD-style compiled
//!   dataflow pipelines);
//! * **liveness-based register reuse** — values are assigned to a small
//!   recycled slot file instead of one slot per node, so the working set
//!   stays cache-resident;
//! * **zero steady-state heap allocations** — [`CompiledNetlist::eval_into`]
//!   through a warm [`EvalWorkspace`] never touches the allocator (proved
//!   by the counting-allocator suite in `tests/alloc_free.rs`);
//! * **batching** — [`CompiledNetlist::eval_batch`] streams many states
//!   through one tape on the shared
//!   [`BatchEngine`](robo_dynamics::batch::BatchEngine), one workspace per
//!   worker.
//!
//! Evaluation order is exactly the netlist's topological node order, so
//! compiled results are bit-identical to the interpreter's in every scalar
//! type.

use crate::netlist::{Netlist, Node};
use robo_dynamics::batch::BatchEngine;
use robo_spatial::{Lanes, Scalar, SERVE_LANES};

/// One tape instruction. Operands and destinations are register-file
/// slots; `Const`/`MulConst`/`MulConstAdd` reference the hoisted constant
/// table.
///
/// The `*Add` forms are produced by the post-compile fusion pass: a
/// producer whose only consumer is one `Add` is folded into that `Add`,
/// halving dispatch and register traffic for the dominant
/// multiply-accumulate chains. Each fused instruction still executes its
/// two arithmetic steps separately (product, then sum), so results stay
/// bit-identical in every scalar type — this is instruction fusion, not
/// FMA contraction.
#[derive(Debug, Clone, Copy)]
enum Instr {
    Const {
        idx: u32,
        dst: u32,
    },
    Mul {
        a: u32,
        b: u32,
        dst: u32,
    },
    MulConst {
        a: u32,
        idx: u32,
        dst: u32,
    },
    Add {
        a: u32,
        b: u32,
        dst: u32,
    },
    Sub {
        a: u32,
        b: u32,
        dst: u32,
    },
    Neg {
        a: u32,
        dst: u32,
    },
    /// `dst = (a · b) + c`, two rounding steps.
    MulAdd {
        a: u32,
        b: u32,
        c: u32,
        dst: u32,
    },
    /// `dst = (a · consts[idx]) + c`, two rounding steps.
    MulConstAdd {
        a: u32,
        idx: u32,
        c: u32,
        dst: u32,
    },
    /// `dst = (a + b) + c`, two rounding steps.
    AddAdd {
        a: u32,
        b: u32,
        c: u32,
        dst: u32,
    },
    /// `dst = (−a) + c` (from the optimizer's `a−b → a+(−b)` form).
    NegAdd {
        a: u32,
        c: u32,
        dst: u32,
    },
}

impl Instr {
    /// The register this instruction writes.
    fn dst(self) -> u32 {
        match self {
            Instr::Const { dst, .. }
            | Instr::Mul { dst, .. }
            | Instr::MulConst { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::MulAdd { dst, .. }
            | Instr::MulConstAdd { dst, .. }
            | Instr::AddAdd { dst, .. }
            | Instr::NegAdd { dst, .. } => dst,
        }
    }

    /// Calls `f` with every register this instruction reads.
    fn for_each_read(self, mut f: impl FnMut(u32)) {
        match self {
            Instr::Const { .. } => {}
            Instr::MulConst { a, .. } | Instr::Neg { a, .. } => f(a),
            Instr::Mul { a, b, .. } | Instr::Add { a, b, .. } | Instr::Sub { a, b, .. } => {
                f(a);
                f(b);
            }
            Instr::MulConstAdd { a, c, .. } | Instr::NegAdd { a, c, .. } => {
                f(a);
                f(c);
            }
            Instr::MulAdd { a, b, c, .. } | Instr::AddAdd { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
        }
    }
}

/// How many producers the tape-fusion pass folded into their consuming
/// `Add`, by fused opcode. Each fusion removes one tape instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionCounts {
    /// `Mul` + `Add` → `Instr::MulAdd`.
    pub mul_add: usize,
    /// `MulConst` + `Add` → `Instr::MulConstAdd`.
    pub mul_const_add: usize,
    /// `Add` + `Add` → `Instr::AddAdd`.
    pub add_add: usize,
    /// `Neg` + `Add` → `Instr::NegAdd`.
    pub neg_add: usize,
}

impl FusionCounts {
    /// Total fused pairs — the number of instructions the pass removed
    /// from the tape.
    pub fn total(&self) -> usize {
        self.mul_add + self.mul_const_add + self.add_add + self.neg_add
    }
}

impl core::fmt::Display for FusionCounts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} fused (mul+add {}, cmul+add {}, add+add {}, neg+add {})",
            self.total(),
            self.mul_add,
            self.mul_const_add,
            self.add_add,
            self.neg_add,
        )
    }
}

/// Peephole fusion over a freshly emitted tape: folds a producer
/// (`Mul`/`MulConst`/`Add`/`Neg`) into the single `Add` that consumes its
/// value, in place.
///
/// Legality for fusing producer `i` (writing register `r`) into the `Add`
/// at `j`:
///
/// * `r` is not an output register (the fused form no longer writes it);
/// * the `Add` at `j` is the only instruction reading `r` after `i`
///   (scanning stops at the next write of `r`, after which the old value
///   is dead anyway);
/// * none of the producer's source registers is overwritten between `i`
///   and `j`, so deferring the producer's arithmetic to `j` reads the
///   same values.
///
/// The fused form computes the producer's value `t` first and then `t +
/// other`, so the only bit-level liberty taken is commuting the final
/// addition when the producer fed the `Add`'s right operand — exact in
/// IEEE floats (non-NaN) and in saturating two's-complement fixed point.
fn fuse_tape(tape: &mut Vec<Instr>, outputs: &[(String, u32)]) -> FusionCounts {
    let mut counts = FusionCounts::default();
    let mut removed = vec![false; tape.len()];
    'adds: for j in 0..tape.len() {
        let Instr::Add { a, b, dst } = tape[j] else {
            continue;
        };
        if a == b {
            continue;
        }
        for (r, z) in [(a, b), (b, a)] {
            if outputs.iter().any(|(_, reg)| *reg == r) {
                continue;
            }
            // Latest live writer of `r` before the Add.
            let Some(i) = (0..j).rev().find(|&k| !removed[k] && tape[k].dst() == r) else {
                continue;
            };
            let (srcs, n_srcs) = match tape[i] {
                Instr::Mul { a, b, .. } | Instr::Add { a, b, .. } => ([a, b], 2),
                Instr::MulConst { a, .. } | Instr::Neg { a, .. } => ([a, 0], 1),
                _ => continue,
            };
            let mut legal = true;
            for k in i + 1..tape.len() {
                if removed[k] {
                    continue;
                }
                if k == j {
                    if dst == r {
                        // The Add recycled `r` as its destination; later
                        // reads see the fused result as before.
                        break;
                    }
                    continue;
                }
                let mut reads_r = false;
                tape[k].for_each_read(|reg| reads_r |= reg == r);
                if reads_r {
                    legal = false;
                    break;
                }
                if k < j && srcs[..n_srcs].contains(&tape[k].dst()) {
                    legal = false;
                    break;
                }
                if tape[k].dst() == r {
                    break;
                }
            }
            if !legal {
                continue;
            }
            tape[j] = match tape[i] {
                Instr::Mul { a, b, .. } => {
                    counts.mul_add += 1;
                    Instr::MulAdd { a, b, c: z, dst }
                }
                Instr::MulConst { a, idx, .. } => {
                    counts.mul_const_add += 1;
                    Instr::MulConstAdd { a, idx, c: z, dst }
                }
                Instr::Add { a, b, .. } => {
                    counts.add_add += 1;
                    Instr::AddAdd { a, b, c: z, dst }
                }
                Instr::Neg { a, .. } => {
                    counts.neg_add += 1;
                    Instr::NegAdd { a, c: z, dst }
                }
                _ => unreachable!("producer match guards fusible opcodes"),
            };
            removed[i] = true;
            continue 'adds;
        }
    }
    let mut keep = removed.iter().map(|r| !*r);
    tape.retain(|_| keep.next().unwrap());
    counts
}

/// Reusable register file for [`CompiledNetlist::eval_into`]. The first
/// call through a fresh workspace sizes the buffer; every later call is
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct EvalWorkspace<S> {
    regs: Vec<S>,
}

impl<S: Scalar> EvalWorkspace<S> {
    /// An empty workspace; the register file grows on first use.
    pub fn new() -> Self {
        Self { regs: Vec::new() }
    }

    /// A workspace pre-sized for `compiled`, so even the first evaluation
    /// through it allocates nothing.
    pub fn for_netlist(compiled: &CompiledNetlist<S>) -> Self {
        Self {
            regs: vec![S::zero(); compiled.num_regs()],
        }
    }
}

/// A netlist compiled to a flat, register-allocated tape for one scalar
/// type.
///
/// # Examples
///
/// ```
/// use robo_codegen::{generate_x_unit, optimize, CompiledNetlist, EvalWorkspace};
/// use robo_model::robots;
///
/// let robot = robots::iiwa14();
/// let netlist = optimize(&generate_x_unit(&robot, 1));
/// let compiled = CompiledNetlist::<f64>::compile(&netlist);
/// assert_eq!(compiled.input_names()[0], "sin_q");
///
/// let mut ws = EvalWorkspace::for_netlist(&compiled);
/// let inputs = [0.5_f64, 0.8, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
/// let mut outputs = [0.0_f64; 6];
/// compiled.eval_into(&inputs, &mut ws, &mut outputs);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledNetlist<S> {
    name: String,
    input_names: Vec<String>,
    consts: Vec<S>,
    tape: Vec<Instr>,
    num_regs: usize,
    outputs: Vec<(String, u32)>,
    fusion: FusionCounts,
}

/// Register allocator state during compilation.
struct RegAlloc {
    free: Vec<u32>,
    next: u32,
}

impl RegAlloc {
    fn get(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let r = self.next;
            self.next += 1;
            r
        })
    }

    fn release(&mut self, reg: u32) {
        self.free.push(reg);
    }
}

impl<S: Scalar> CompiledNetlist<S> {
    /// Compiles a netlist for scalar type `S`.
    ///
    /// Run [`crate::optimize`] first when the netlist may contain dead or
    /// redundant nodes — compilation itself preserves the given program
    /// (it only skips nodes nothing consumes).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than `u32::MAX` nodes.
    pub fn compile(netlist: &Netlist) -> Self {
        let nodes = netlist.nodes();
        assert!(nodes.len() < u32::MAX as usize, "netlist too large");

        // Input slot interning: first-appearance order, repeated names
        // share a slot.
        let mut input_names: Vec<String> = Vec::new();
        let mut input_slot = vec![0u32; nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            if let Node::Input(name) = node {
                let slot = match input_names.iter().position(|n| n == name) {
                    Some(s) => s as u32,
                    None => {
                        input_names.push(name.clone());
                        (input_names.len() - 1) as u32
                    }
                };
                input_slot[id] = slot;
            }
        }
        let n_inputs = input_names.len();

        // Liveness: the tape index of each node's final consumer. Outputs
        // stay live to the end of the program.
        const LIVE_TO_END: usize = usize::MAX;
        let mut last_use = vec![0usize; nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            match node {
                Node::Input(_) | Node::Const(_) => {}
                Node::Mul(a, b) | Node::Add(a, b) | Node::Sub(a, b) => {
                    last_use[*a] = id;
                    last_use[*b] = id;
                }
                Node::MulConst(a, _) | Node::Neg(a) => last_use[*a] = id,
            }
        }
        for (_, id) in netlist.outputs() {
            last_use[*id] = LIVE_TO_END;
        }

        // Constant table, deduplicated by bit pattern, converted to `S`
        // once here rather than per evaluation.
        let mut const_bits: Vec<u64> = Vec::new();
        let mut consts: Vec<S> = Vec::new();
        let mut intern_const = |c: f64| -> u32 {
            let bits = c.to_bits();
            match const_bits.iter().position(|b| *b == bits) {
                Some(i) => i as u32,
                None => {
                    const_bits.push(bits);
                    consts.push(S::from_f64(c));
                    (const_bits.len() - 1) as u32
                }
            }
        };

        // Tape emission with register recycling: input values occupy the
        // first `n_inputs` registers (reloaded on every evaluation), and a
        // slot returns to the free list at its holder's last use.
        let mut alloc = RegAlloc {
            free: Vec::new(),
            next: n_inputs as u32,
        };
        let mut reg_of = vec![u32::MAX; nodes.len()];
        let mut tape = Vec::new();
        for (id, node) in nodes.iter().enumerate() {
            if let Node::Input(_) = node {
                reg_of[id] = input_slot[id];
                continue;
            }
            // A node no one consumes (and that is not an output) computes
            // a value that can never be observed.
            if last_use[id] == 0 {
                continue;
            }
            let mut operands = [0usize; 2];
            let n_ops: usize;
            match node {
                Node::Mul(a, b) | Node::Add(a, b) | Node::Sub(a, b) => {
                    operands = [*a, *b];
                    n_ops = 2;
                }
                Node::MulConst(a, _) | Node::Neg(a) => {
                    operands[0] = *a;
                    n_ops = 1;
                }
                Node::Const(_) => n_ops = 0,
                Node::Input(_) => unreachable!(),
            }
            // Release operands dying here before claiming the destination,
            // so `dst` can recycle an operand's register (reads happen
            // before the write at run time). Inputs below `n_inputs` are
            // recyclable too: they are reloaded at the start of each run.
            for k in 0..n_ops {
                let op = operands[k];
                if last_use[op] == id && !(k == 1 && operands[0] == operands[1]) {
                    alloc.release(reg_of[op]);
                }
            }
            let dst = alloc.get();
            reg_of[id] = dst;
            let instr = match node {
                Node::Const(c) => Instr::Const {
                    idx: intern_const(*c),
                    dst,
                },
                Node::Mul(a, b) => Instr::Mul {
                    a: reg_of[*a],
                    b: reg_of[*b],
                    dst,
                },
                Node::MulConst(a, c) => Instr::MulConst {
                    a: reg_of[*a],
                    idx: intern_const(*c),
                    dst,
                },
                Node::Add(a, b) => Instr::Add {
                    a: reg_of[*a],
                    b: reg_of[*b],
                    dst,
                },
                Node::Sub(a, b) => Instr::Sub {
                    a: reg_of[*a],
                    b: reg_of[*b],
                    dst,
                },
                Node::Neg(a) => Instr::Neg { a: reg_of[*a], dst },
                Node::Input(_) => unreachable!(),
            };
            tape.push(instr);
        }

        let outputs: Vec<(String, u32)> = netlist
            .outputs()
            .iter()
            .map(|(name, id)| (name.clone(), reg_of[*id]))
            .collect();

        let fusion = fuse_tape(&mut tape, &outputs);

        Self {
            name: netlist.name().to_owned(),
            input_names,
            consts,
            tape,
            num_regs: alloc.next as usize,
            outputs,
            fusion,
        }
    }

    /// The module name of the source netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input names in slot order — the order the `inputs` slice of
    /// [`CompiledNetlist::eval_into`] must follow.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output names in declaration order — the order results are written
    /// into the `outputs` slice.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.outputs.iter().map(|(n, _)| n.as_str())
    }

    /// Number of declared outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Size of the recycled register file (inputs included). With liveness
    /// reuse this is far below the node count.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Number of tape instructions (live non-input nodes, after fusion).
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// What the post-compile fusion pass folded. The pre-fusion tape length
    /// is `tape_len() + fusion_counts().total()`.
    pub fn fusion_counts(&self) -> FusionCounts {
        self.fusion
    }

    /// Re-targets this tape at the wide scalar `Lanes<S, W>`, evaluating
    /// `W` independent states per instruction.
    ///
    /// The instruction stream, register assignment, and fusion are reused
    /// verbatim; constants are splat per lane, so every lane of a wide
    /// evaluation is bit-identical to a scalar run of the same tape.
    pub fn widen<const W: usize>(&self) -> CompiledNetlist<Lanes<S, W>> {
        CompiledNetlist {
            name: self.name.clone(),
            input_names: self.input_names.clone(),
            consts: self.consts.iter().map(|&c| Lanes::splat(c)).collect(),
            tape: self.tape.clone(),
            num_regs: self.num_regs,
            outputs: self.outputs.clone(),
            fusion: self.fusion,
        }
    }

    /// Evaluates the tape into `outputs`, reusing the workspace's register
    /// file. Zero heap allocations once the workspace is warm.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` lengths do not match
    /// [`CompiledNetlist::input_names`] / [`CompiledNetlist::num_outputs`].
    pub fn eval_into(&self, inputs: &[S], ws: &mut EvalWorkspace<S>, outputs: &mut [S]) {
        if ws.regs.len() < self.num_regs {
            ws.regs.resize(self.num_regs, S::zero());
        }
        self.eval_into_regs(inputs, &mut ws.regs, outputs);
    }

    /// Like [`CompiledNetlist::eval_into`], but with a caller-provided
    /// register slice (at least [`CompiledNetlist::num_regs`] long) — the
    /// form the simulator uses with stack-allocated register files.
    ///
    /// # Panics
    ///
    /// Panics if a slice length is insufficient.
    pub fn eval_into_regs(&self, inputs: &[S], regs: &mut [S], outputs: &mut [S]) {
        let n_in = self.input_names.len();
        assert_eq!(inputs.len(), n_in, "input slot count mismatch");
        assert_eq!(outputs.len(), self.outputs.len(), "output count mismatch");
        assert!(regs.len() >= self.num_regs, "register file too small");
        regs[..n_in].copy_from_slice(inputs);
        for instr in &self.tape {
            match *instr {
                Instr::Const { idx, dst } => regs[dst as usize] = self.consts[idx as usize],
                Instr::Mul { a, b, dst } => {
                    regs[dst as usize] = regs[a as usize] * regs[b as usize];
                }
                Instr::MulConst { a, idx, dst } => {
                    regs[dst as usize] = regs[a as usize] * self.consts[idx as usize];
                }
                Instr::Add { a, b, dst } => {
                    regs[dst as usize] = regs[a as usize] + regs[b as usize];
                }
                Instr::Sub { a, b, dst } => {
                    regs[dst as usize] = regs[a as usize] - regs[b as usize];
                }
                Instr::Neg { a, dst } => regs[dst as usize] = -regs[a as usize],
                Instr::MulAdd { a, b, c, dst } => {
                    let t = regs[a as usize] * regs[b as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
                Instr::MulConstAdd { a, idx, c, dst } => {
                    let t = regs[a as usize] * self.consts[idx as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
                Instr::AddAdd { a, b, c, dst } => {
                    let t = regs[a as usize] + regs[b as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
                Instr::NegAdd { a, c, dst } => {
                    let t = -regs[a as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
            }
        }
        for (slot, (_, reg)) in outputs.iter_mut().zip(&self.outputs) {
            *slot = regs[*reg as usize];
        }
    }

    /// Convenience single-shot evaluation returning a fresh output vector.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` length does not match the input slot count.
    pub fn eval(&self, inputs: &[S]) -> Vec<S> {
        let mut ws = EvalWorkspace::for_netlist(self);
        let mut out = vec![S::zero(); self.outputs.len()];
        self.eval_into(inputs, &mut ws, &mut out);
        out
    }

    /// Evaluates a batch of states into a caller-provided flat buffer with
    /// zero per-state allocation: full groups of `W` states run through the
    /// widened tape one instruction for all `W` lanes at a time, and the
    /// ragged tail falls back to the scalar tape.
    ///
    /// Results land row-major: state `i`'s outputs occupy
    /// `out[i * num_outputs() .. (i + 1) * num_outputs()]`, bit-identical
    /// to `W` independent [`CompiledNetlist::eval_into`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `ws` was built for a different netlist, `out` is not
    /// exactly `states.len() * num_outputs()` long, or any state's length
    /// does not match the input slot count.
    pub fn eval_batch_into<I: AsRef<[S]>, const W: usize>(
        &self,
        states: &[I],
        ws: &mut BatchEvalWorkspace<S, W>,
        out: &mut [S],
    ) {
        let n_in = self.input_names.len();
        let n_out = self.outputs.len();
        assert_eq!(
            ws.wide.tape.len(),
            self.tape.len(),
            "workspace built for a different netlist"
        );
        assert_eq!(ws.in_w.len(), n_in, "workspace input width mismatch");
        assert_eq!(ws.out_w.len(), n_out, "workspace output width mismatch");
        assert_eq!(
            out.len(),
            states.len() * n_out,
            "flat output buffer length mismatch"
        );
        let full = states.len() / W;
        for chunk in 0..full {
            let base = chunk * W;
            for (l, state) in states[base..base + W].iter().enumerate() {
                let state = state.as_ref();
                assert_eq!(state.len(), n_in, "input slot count mismatch");
                for (k, lane) in ws.in_w.iter_mut().enumerate() {
                    lane.set_lane(l, state[k]);
                }
            }
            ws.wide
                .eval_into(&ws.in_w, &mut ws.wide_regs, &mut ws.out_w);
            for (o, wide) in ws.out_w.iter().enumerate() {
                for l in 0..W {
                    out[(base + l) * n_out + o] = wide.lane(l);
                }
            }
        }
        for (i, state) in states.iter().enumerate().skip(full * W) {
            self.eval_into(
                state.as_ref(),
                &mut ws.scalar_regs,
                &mut out[i * n_out..(i + 1) * n_out],
            );
        }
    }

    /// Streams a batch of input states through the tape on `engine`,
    /// returning one output vector per state in order.
    ///
    /// Convenience wrapper over [`CompiledNetlist::eval_batch_into`]:
    /// workers claim lane-group chunks of states (threads × lanes
    /// parallelism), each through a reusable [`BatchEvalWorkspace`], and
    /// the flat per-chunk results are carved into the legacy
    /// vector-per-state shape. Callers on the serving path should use
    /// [`CompiledNetlist::eval_batch_into`] directly and keep buffers warm.
    ///
    /// # Panics
    ///
    /// Panics if any state's length does not match the input slot count.
    pub fn eval_batch<I: AsRef<[S]> + Sync>(
        &self,
        engine: &BatchEngine,
        states: &[I],
    ) -> Vec<Vec<S>> {
        // Several lane groups per claimed chunk amortizes the claim; small
        // enough to keep all workers fed on modest batches.
        const GROUPS_PER_CHUNK: usize = 4;
        let chunk_len = GROUPS_PER_CHUNK * SERVE_LANES;
        let n_out = self.outputs.len();
        let chunks = engine.run_with_state(
            states.len().div_ceil(chunk_len),
            || BatchEvalWorkspace::<S, SERVE_LANES>::for_netlist(self),
            |ws, ci| {
                let lo = ci * chunk_len;
                let hi = usize::min(lo + chunk_len, states.len());
                let mut flat = vec![S::zero(); (hi - lo) * n_out];
                self.eval_batch_into(&states[lo..hi], ws, &mut flat);
                flat
            },
        );
        let mut per_state = Vec::with_capacity(states.len());
        for flat in &chunks {
            per_state.extend(flat.chunks_exact(n_out).map(<[S]>::to_vec));
        }
        per_state
    }
}

/// Reusable buffers for [`CompiledNetlist::eval_batch_into`]: the widened
/// tape, its register file, lane-transposed input/output staging, and a
/// scalar register file for the ragged tail. Build once per worker; every
/// evaluation through it is allocation-free.
#[derive(Debug, Clone)]
pub struct BatchEvalWorkspace<S: Scalar, const W: usize = SERVE_LANES> {
    wide: CompiledNetlist<Lanes<S, W>>,
    wide_regs: EvalWorkspace<Lanes<S, W>>,
    scalar_regs: EvalWorkspace<S>,
    in_w: Vec<Lanes<S, W>>,
    out_w: Vec<Lanes<S, W>>,
}

impl<S: Scalar, const W: usize> BatchEvalWorkspace<S, W> {
    /// Widens `compiled` and pre-sizes every buffer, so even the first
    /// batch evaluation allocates nothing.
    pub fn for_netlist(compiled: &CompiledNetlist<S>) -> Self {
        let wide = compiled.widen::<W>();
        Self {
            wide_regs: EvalWorkspace::for_netlist(&wide),
            scalar_regs: EvalWorkspace::for_netlist(compiled),
            in_w: vec![Lanes::splat(S::zero()); compiled.input_names.len()],
            out_w: vec![Lanes::splat(S::zero()); compiled.outputs.len()],
            wide,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::optimize;
    use std::collections::HashMap;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("tiny");
        let a = n.push(Node::Input("a".into()));
        let b = n.push(Node::Input("b".into()));
        let c = n.push(Node::Input("c".into()));
        let ab = n.push(Node::Mul(a, b));
        let c2 = n.push(Node::MulConst(c, 2.0));
        let sum = n.push(Node::Add(ab, c2));
        let out = n.push(Node::Neg(sum));
        n.output("o", out).unwrap();
        n
    }

    #[test]
    fn matches_interpreter() {
        let n = tiny();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.input_names(), &["a", "b", "c"]);
        assert_eq!(compiled.eval(&[3.0, 4.0, 5.0]), vec![-22.0]);
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut n = Netlist::new("consts");
        let x = n.push(Node::Input("x".into()));
        let a = n.push(Node::MulConst(x, 2.5));
        let b = n.push(Node::MulConst(x, 2.5));
        let c = n.push(Node::Const(2.5));
        let s1 = n.push(Node::Add(a, b));
        let s2 = n.push(Node::Add(s1, c));
        n.output("o", s2).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.consts.len(), 1);
        assert_eq!(compiled.eval(&[1.0]), vec![7.5]);
    }

    #[test]
    fn registers_are_recycled() {
        // A long chain of unary ops needs O(1) registers, not O(n).
        let mut n = Netlist::new("chain");
        let mut cur = n.push(Node::Input("x".into()));
        for i in 0..40 {
            cur = n.push(Node::MulConst(cur, 1.0 + 0.01 * f64::from(i)));
        }
        n.output("o", cur).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert!(
            compiled.num_regs() <= 3,
            "chain should recycle registers, used {}",
            compiled.num_regs()
        );
    }

    #[test]
    fn dead_nodes_emit_no_instructions() {
        let mut n = Netlist::new("dead");
        let x = n.push(Node::Input("x".into()));
        let y = n.push(Node::Input("y".into()));
        let _dead = n.push(Node::Mul(x, y));
        let live = n.push(Node::Neg(x));
        n.output("o", live).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.tape_len(), 1);
        assert_eq!(compiled.eval(&[2.0, 9.0]), vec![-2.0]);
    }

    #[test]
    fn repeated_input_names_share_a_slot() {
        let mut n = Netlist::new("dupin");
        let a1 = n.push(Node::Input("a".into()));
        let a2 = n.push(Node::Input("a".into()));
        let s = n.push(Node::Add(a1, a2));
        n.output("o", s).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.input_names(), &["a"]);
        assert_eq!(compiled.eval(&[1.5]), vec![3.0]);
    }

    #[test]
    fn output_aliasing_an_input_or_midpoint_survives_reuse() {
        // An output register must never be recycled even when later nodes
        // could otherwise claim it.
        let mut n = Netlist::new("alias");
        let x = n.push(Node::Input("x".into()));
        let mid = n.push(Node::MulConst(x, 3.0));
        let mut cur = mid;
        for _ in 0..8 {
            cur = n.push(Node::Neg(cur));
        }
        n.output("mid", mid).unwrap();
        n.output("in", x).unwrap();
        n.output("end", cur).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.eval(&[2.0]), vec![6.0, 2.0, 6.0]);
    }

    #[test]
    fn batch_matches_serial() {
        let n = tiny();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        let engine = BatchEngine::new(2);
        let states: Vec<[f64; 3]> = (0..16)
            .map(|i| [i as f64, 0.5 * i as f64, -(i as f64)])
            .collect();
        let batch = compiled.eval_batch(&engine, &states);
        for (out, s) in batch.iter().zip(&states) {
            assert_eq!(out, &compiled.eval(s));
        }
    }

    #[test]
    fn compiled_optimized_x_unit_matches_interpreter() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        for joint in 0..robot.dof() {
            let raw = generate_x_unit(&robot, joint);
            let opt = optimize(&raw);
            let compiled = CompiledNetlist::<f64>::compile(&opt);
            let values: Vec<f64> = (0..8).map(|i| 0.3 * i as f64 - 0.9).collect();
            let inputs: HashMap<String, f64> = compiled
                .input_names()
                .iter()
                .zip(&values)
                .map(|(n, v)| (n.clone(), *v))
                .collect();
            let want = raw.eval(&inputs).unwrap();
            let got = compiled.eval(&values);
            for ((name, w), g) in want.iter().zip(&got) {
                assert_eq!(w, g, "joint {joint} output {name}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "input slot count mismatch")]
    fn wrong_input_arity_panics() {
        let compiled = CompiledNetlist::<f64>::compile(&tiny());
        let _ = compiled.eval(&[1.0]);
    }

    #[test]
    fn fusion_shrinks_tiny_tape() {
        // tiny() is Mul, MulConst, Add, Neg; the Mul feeds only the Add,
        // so the pass folds them into one MulAdd.
        let compiled = CompiledNetlist::<f64>::compile(&tiny());
        assert_eq!(compiled.fusion_counts().mul_add, 1);
        assert_eq!(compiled.fusion_counts().total(), 1);
        assert_eq!(compiled.tape_len(), 3);
        assert_eq!(compiled.eval(&[3.0, 4.0, 5.0]), vec![-22.0]);
    }

    #[test]
    fn fusion_shrinks_optimized_x_unit_tapes() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        let mut total_fused = 0;
        for joint in 0..robot.dof() {
            let opt = optimize(&generate_x_unit(&robot, joint));
            let compiled = CompiledNetlist::<f64>::compile(&opt);
            let fused = compiled.fusion_counts().total();
            assert!(
                fused > 0,
                "joint {joint}: multiply-accumulate netlist should fuse"
            );
            total_fused += fused;
        }
        assert!(total_fused >= robot.dof());
    }

    #[test]
    fn eval_batch_into_matches_scalar_bit_for_bit() {
        let compiled = CompiledNetlist::<f64>::compile(&tiny());
        let n_out = compiled.num_outputs();
        // 11 states: two full Lanes<_, 4> groups plus a ragged tail of 3.
        let states: Vec<[f64; 3]> = (0..11)
            .map(|i| {
                let x = f64::from(i);
                [0.3 * x, 1.0 - x, 0.5 * x - 2.0]
            })
            .collect();
        let mut ws = BatchEvalWorkspace::<f64, 4>::for_netlist(&compiled);
        let mut flat = vec![0.0; states.len() * n_out];
        compiled.eval_batch_into(&states, &mut ws, &mut flat);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(&flat[i * n_out..(i + 1) * n_out], &compiled.eval(s)[..]);
        }
    }

    #[test]
    fn widened_x_unit_lanes_match_scalar_bit_for_bit() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        let opt = optimize(&generate_x_unit(&robot, 2));
        let compiled = CompiledNetlist::<f64>::compile(&opt);
        let n_in = compiled.input_names().len();
        let n_out = compiled.num_outputs();
        let states: Vec<Vec<f64>> = (0..6)
            .map(|s| {
                (0..n_in)
                    .map(|k| 0.17 * (s * n_in + k) as f64 - 1.1)
                    .collect()
            })
            .collect();
        let mut ws = BatchEvalWorkspace::<f64, 4>::for_netlist(&compiled);
        let mut flat = vec![0.0; states.len() * n_out];
        compiled.eval_batch_into(&states, &mut ws, &mut flat);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(
                &flat[i * n_out..(i + 1) * n_out],
                &compiled.eval(s)[..],
                "state {i}"
            );
        }
    }

    #[test]
    fn fixed_point_matches_interpreter_bit_for_bit() {
        use robo_fixed::Fix32_16;
        let n = tiny();
        let compiled = CompiledNetlist::<Fix32_16>::compile(&n);
        let vals = [1.5, -2.0, 0.25].map(Fix32_16::from_f64);
        let inputs: HashMap<String, Fix32_16> = ["a", "b", "c"]
            .iter()
            .zip(vals)
            .map(|(n, v)| ((*n).to_owned(), v))
            .collect();
        let want = n.eval(&inputs).unwrap();
        let got = compiled.eval(&vals);
        assert_eq!(want[0].1, got[0]);
    }
}
