//! A compiled, allocation-free netlist evaluator.
//!
//! [`Netlist::eval`] is the reference oracle: it re-allocates a value
//! vector per call, looks inputs up in a string-keyed map, and converts
//! every constant from `f64` on every evaluation. [`CompiledNetlist`] is
//! the serving-path form of the same circuit, compiled once per scalar
//! type:
//!
//! * **inputs interned to dense slots** — callers pass a `&[S]` in
//!   [`CompiledNetlist::input_names`] order, no hashing;
//! * **constants hoisted** — every literal is converted to `S` exactly
//!   once, at compile time, into a deduplicated table;
//! * **a flat tape** — nodes become fixed-width instructions executed in
//!   one linear sweep (the software analogue of Dadu-RBD-style compiled
//!   dataflow pipelines);
//! * **liveness-based register reuse** — values are assigned to a small
//!   recycled slot file instead of one slot per node, so the working set
//!   stays cache-resident;
//! * **zero steady-state heap allocations** — [`CompiledNetlist::eval_into`]
//!   through a warm [`EvalWorkspace`] never touches the allocator (proved
//!   by the counting-allocator suite in `tests/alloc_free.rs`);
//! * **batching** — [`CompiledNetlist::eval_batch`] streams many states
//!   through one tape on the shared
//!   [`BatchEngine`](robo_dynamics::batch::BatchEngine), one workspace per
//!   worker.
//!
//! Evaluation order is exactly the netlist's topological node order, so
//! compiled results are bit-identical to the interpreter's in every scalar
//! type.

use crate::netlist::{Netlist, Node};
use crate::threaded::{Opcode, ThreadedTape};
use robo_dynamics::batch::BatchEngine;
use robo_spatial::{ExecTier, Lanes, Scalar, WideScalar, WideVisit};

/// One tape instruction. Operands and destinations are register-file
/// slots; `Const`/`MulConst`/`MulConstAdd` reference the hoisted constant
/// table.
///
/// The `*Add` forms are produced by the post-compile fusion pass: a
/// producer whose only consumer is one `Add` is folded into that `Add`,
/// halving dispatch and register traffic for the dominant
/// multiply-accumulate chains. Each fused instruction still executes its
/// two arithmetic steps separately (product, then sum), so results stay
/// bit-identical in every scalar type — this is instruction fusion, not
/// FMA contraction.
#[derive(Debug, Clone, Copy)]
enum Instr {
    Const {
        idx: u32,
        dst: u32,
    },
    Mul {
        a: u32,
        b: u32,
        dst: u32,
    },
    MulConst {
        a: u32,
        idx: u32,
        dst: u32,
    },
    Add {
        a: u32,
        b: u32,
        dst: u32,
    },
    Sub {
        a: u32,
        b: u32,
        dst: u32,
    },
    Neg {
        a: u32,
        dst: u32,
    },
    /// `dst = (a · b) + c`, two rounding steps.
    MulAdd {
        a: u32,
        b: u32,
        c: u32,
        dst: u32,
    },
    /// `dst = (a · consts[idx]) + c`, two rounding steps.
    MulConstAdd {
        a: u32,
        idx: u32,
        c: u32,
        dst: u32,
    },
    /// `dst = (a + b) + c`, two rounding steps.
    AddAdd {
        a: u32,
        b: u32,
        c: u32,
        dst: u32,
    },
    /// `dst = (−a) + c` (from the optimizer's `a−b → a+(−b)` form).
    NegAdd {
        a: u32,
        c: u32,
        dst: u32,
    },
}

impl Instr {
    /// The register this instruction writes.
    fn dst(self) -> u32 {
        match self {
            Instr::Const { dst, .. }
            | Instr::Mul { dst, .. }
            | Instr::MulConst { dst, .. }
            | Instr::Add { dst, .. }
            | Instr::Sub { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::MulAdd { dst, .. }
            | Instr::MulConstAdd { dst, .. }
            | Instr::AddAdd { dst, .. }
            | Instr::NegAdd { dst, .. } => dst,
        }
    }

    /// Calls `f` with every register this instruction reads.
    fn for_each_read(self, mut f: impl FnMut(u32)) {
        match self {
            Instr::Const { .. } => {}
            Instr::MulConst { a, .. } | Instr::Neg { a, .. } => f(a),
            Instr::Mul { a, b, .. } | Instr::Add { a, b, .. } | Instr::Sub { a, b, .. } => {
                f(a);
                f(b);
            }
            Instr::MulConstAdd { a, c, .. } | Instr::NegAdd { a, c, .. } => {
                f(a);
                f(c);
            }
            Instr::MulAdd { a, b, c, .. } | Instr::AddAdd { a, b, c, .. } => {
                f(a);
                f(b);
                f(c);
            }
        }
    }

    /// Lowers this instruction to the direct-threaded `(opcode, operands)`
    /// form of the `threaded` module.
    fn decode(self) -> (Opcode, crate::threaded::OpArgs) {
        match self {
            Instr::Const { idx, dst } => Opcode::Const.args(idx, 0, 0, dst),
            Instr::Mul { a, b, dst } => Opcode::Mul.args(a, b, 0, dst),
            Instr::MulConst { a, idx, dst } => Opcode::MulConst.args(a, idx, 0, dst),
            Instr::Add { a, b, dst } => Opcode::Add.args(a, b, 0, dst),
            Instr::Sub { a, b, dst } => Opcode::Sub.args(a, b, 0, dst),
            Instr::Neg { a, dst } => Opcode::Neg.args(a, 0, 0, dst),
            Instr::MulAdd { a, b, c, dst } => Opcode::MulAdd.args(a, b, c, dst),
            Instr::MulConstAdd { a, idx, c, dst } => Opcode::MulConstAdd.args(a, idx, c, dst),
            Instr::AddAdd { a, b, c, dst } => Opcode::AddAdd.args(a, b, c, dst),
            Instr::NegAdd { a, c, dst } => Opcode::NegAdd.args(a, 0, c, dst),
        }
    }
}

/// Lowers a full tape for [`ThreadedTape::build`].
fn decode_tape(tape: &[Instr]) -> Vec<(Opcode, crate::threaded::OpArgs)> {
    tape.iter().map(|i| i.decode()).collect()
}

/// How many producers the tape-fusion pass folded into their consuming
/// `Add`, by fused opcode. Each fusion removes one tape instruction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionCounts {
    /// `Mul` + `Add` → `Instr::MulAdd`.
    pub mul_add: usize,
    /// `MulConst` + `Add` → `Instr::MulConstAdd`.
    pub mul_const_add: usize,
    /// `Add` + `Add` → `Instr::AddAdd`.
    pub add_add: usize,
    /// `Neg` + `Add` → `Instr::NegAdd`.
    pub neg_add: usize,
}

impl FusionCounts {
    /// Total fused pairs — the number of instructions the pass removed
    /// from the tape.
    pub fn total(&self) -> usize {
        self.mul_add + self.mul_const_add + self.add_add + self.neg_add
    }
}

impl core::fmt::Display for FusionCounts {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} fused (mul+add {}, cmul+add {}, add+add {}, neg+add {})",
            self.total(),
            self.mul_add,
            self.mul_const_add,
            self.add_add,
            self.neg_add,
        )
    }
}

/// Peephole fusion over a freshly emitted tape: folds a producer
/// (`Mul`/`MulConst`/`Add`/`Neg`) into the single `Add` that consumes its
/// value, in place.
///
/// Legality for fusing producer `i` (writing register `r`) into the `Add`
/// at `j`:
///
/// * `r` is not an output register (the fused form no longer writes it);
/// * the `Add` at `j` is the only instruction reading `r` after `i`
///   (scanning stops at the next write of `r`, after which the old value
///   is dead anyway);
/// * none of the producer's source registers is overwritten between `i`
///   and `j`, so deferring the producer's arithmetic to `j` reads the
///   same values.
///
/// The fused form computes the producer's value `t` first and then `t +
/// other`, so the only bit-level liberty taken is commuting the final
/// addition when the producer fed the `Add`'s right operand — exact in
/// IEEE floats (non-NaN) and in saturating two's-complement fixed point.
fn fuse_tape(tape: &mut Vec<Instr>, outputs: &[(String, u32)]) -> FusionCounts {
    let mut counts = FusionCounts::default();
    let mut removed = vec![false; tape.len()];
    'adds: for j in 0..tape.len() {
        let Instr::Add { a, b, dst } = tape[j] else {
            continue;
        };
        if a == b {
            continue;
        }
        for (r, z) in [(a, b), (b, a)] {
            if outputs.iter().any(|(_, reg)| *reg == r) {
                continue;
            }
            // Latest live writer of `r` before the Add.
            let Some(i) = (0..j).rev().find(|&k| !removed[k] && tape[k].dst() == r) else {
                continue;
            };
            let (srcs, n_srcs) = match tape[i] {
                Instr::Mul { a, b, .. } | Instr::Add { a, b, .. } => ([a, b], 2),
                Instr::MulConst { a, .. } | Instr::Neg { a, .. } => ([a, 0], 1),
                _ => continue,
            };
            let mut legal = true;
            for k in i + 1..tape.len() {
                if removed[k] {
                    continue;
                }
                if k == j {
                    if dst == r {
                        // The Add recycled `r` as its destination; later
                        // reads see the fused result as before.
                        break;
                    }
                    continue;
                }
                let mut reads_r = false;
                tape[k].for_each_read(|reg| reads_r |= reg == r);
                if reads_r {
                    legal = false;
                    break;
                }
                if k < j && srcs[..n_srcs].contains(&tape[k].dst()) {
                    legal = false;
                    break;
                }
                if tape[k].dst() == r {
                    break;
                }
            }
            if !legal {
                continue;
            }
            tape[j] = match tape[i] {
                Instr::Mul { a, b, .. } => {
                    counts.mul_add += 1;
                    Instr::MulAdd { a, b, c: z, dst }
                }
                Instr::MulConst { a, idx, .. } => {
                    counts.mul_const_add += 1;
                    Instr::MulConstAdd { a, idx, c: z, dst }
                }
                Instr::Add { a, b, .. } => {
                    counts.add_add += 1;
                    Instr::AddAdd { a, b, c: z, dst }
                }
                Instr::Neg { a, .. } => {
                    counts.neg_add += 1;
                    Instr::NegAdd { a, c: z, dst }
                }
                _ => unreachable!("producer match guards fusible opcodes"),
            };
            removed[i] = true;
            continue 'adds;
        }
    }
    let mut keep = removed.iter().map(|r| !*r);
    tape.retain(|_| keep.next().unwrap());
    counts
}

/// Scheduler bucket per opcode — one entry per `Instr` variant.
const N_OPCODES: usize = 10;

/// The scheduler bucket this instruction belongs to.
fn opcode_bucket(i: Instr) -> usize {
    match i {
        Instr::Const { .. } => 0,
        Instr::Mul { .. } => 1,
        Instr::MulConst { .. } => 2,
        Instr::Add { .. } => 3,
        Instr::Sub { .. } => 4,
        Instr::Neg { .. } => 5,
        Instr::MulAdd { .. } => 6,
        Instr::MulConstAdd { .. } => 7,
        Instr::AddAdd { .. } => 8,
        Instr::NegAdd { .. } => 9,
    }
}

/// Opcode-affinity list scheduling over the fused tape.
///
/// The direct-threaded executor tiles *runs* of one opcode into ×4/×2
/// superinstruction blocks, so its dispatch count is the number of runs,
/// not instructions — and the natural topological emission order
/// interleaves opcodes so freely that runs average barely over one
/// instruction. This pass reorders the tape to cluster ready same-opcode
/// instructions while preserving every register hazard. It feeds only
/// the *threaded* lowering (the superinstruction blocks
/// [`ThreadedTape::build`] tiles): longer runs mean fewer indirect
/// dispatches, and — just as important on long tapes — few enough
/// distinct handler targets that the indirect-branch predictor can
/// follow the cycle. The stored tape (what the `match` oracle
/// interprets) keeps fusion order. Hazards preserved:
///
/// * RAW — an instruction stays after the last writer of each register
///   it reads;
/// * WAR — a write stays after every prior read of the old value;
/// * WAW — writes to one register keep their order.
///
/// With all three preserved, every instruction reads exactly the values
/// it read in the original order, so results are bit-identical in every
/// scalar type — the wide-vs-scalar parity tests pin this.
fn schedule_tape(tape: &[Instr]) -> Vec<Instr> {
    let n = tape.len();
    let mut max_reg = 0u32;
    for ins in tape {
        max_reg = max_reg.max(ins.dst());
        ins.for_each_read(|r| max_reg = max_reg.max(r));
    }
    let nr = max_reg as usize + 1;

    // Dependency edges via per-register def/use chains. Duplicate edges
    // (e.g. RAW and WAW between one pair) are fine: `indeg` counts edge
    // instances, and release decrements once per instance.
    let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut indeg: Vec<u32> = vec![0; n];
    let mut last_writer: Vec<Option<u32>> = vec![None; nr];
    let mut readers: Vec<Vec<u32>> = vec![Vec::new(); nr];
    for (i, ins) in tape.iter().enumerate() {
        let ii = i as u32;
        ins.for_each_read(|r| {
            if let Some(w) = last_writer[r as usize] {
                succs[w as usize].push(ii);
                indeg[i] += 1;
            }
            readers[r as usize].push(ii);
        });
        let d = ins.dst() as usize;
        if let Some(w) = last_writer[d] {
            succs[w as usize].push(ii);
            indeg[i] += 1;
        }
        for &rd in &readers[d] {
            // An instruction reading its own destination needs no
            // self-edge; the in-instruction read-before-write order and
            // the WAW chain cover it.
            if rd != ii {
                succs[rd as usize].push(ii);
                indeg[i] += 1;
            }
        }
        last_writer[d] = Some(ii);
        readers[d].clear();
    }

    // Greedy emission: drain the current opcode's ready set (lowest
    // original index first, for determinism), then switch to whichever
    // opcode has the most ready instructions — starting the longest
    // possible next run.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); N_OPCODES];
    for (i, &ins) in tape.iter().enumerate() {
        if indeg[i] == 0 {
            buckets[opcode_bucket(ins)].push(i as u32);
        }
    }
    let mut out = Vec::with_capacity(n);
    let mut current = N_OPCODES;
    while out.len() < n {
        if current == N_OPCODES || buckets[current].is_empty() {
            current = (0..N_OPCODES)
                .max_by_key(|&b| buckets[b].len())
                .expect("bucket count is fixed and nonzero");
            debug_assert!(
                !buckets[current].is_empty(),
                "hazard graph of a straight-line tape is acyclic"
            );
        }
        let pos = buckets[current]
            .iter()
            .enumerate()
            .min_by_key(|&(_, &id)| id)
            .expect("current bucket is nonempty")
            .0;
        let id = buckets[current].swap_remove(pos) as usize;
        out.push(tape[id]);
        for &s in &succs[id] {
            let s = s as usize;
            indeg[s] -= 1;
            if indeg[s] == 0 {
                buckets[opcode_bucket(tape[s])].push(s as u32);
            }
        }
    }
    out
}

/// Reusable register file for [`CompiledNetlist::eval_into`]. The first
/// call through a fresh workspace sizes the buffer; every later call is
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct EvalWorkspace<S> {
    regs: Vec<S>,
}

impl<S: Scalar> EvalWorkspace<S> {
    /// An empty workspace; the register file grows on first use.
    pub fn new() -> Self {
        Self { regs: Vec::new() }
    }

    /// A workspace pre-sized for `compiled`, so even the first evaluation
    /// through it allocates nothing.
    pub fn for_netlist(compiled: &CompiledNetlist<S>) -> Self {
        Self {
            regs: vec![S::zero(); compiled.num_regs()],
        }
    }
}

/// A netlist compiled to a flat, register-allocated tape for one scalar
/// type.
///
/// # Examples
///
/// ```
/// use robo_codegen::{generate_x_unit, optimize, CompiledNetlist, EvalWorkspace};
/// use robo_model::robots;
///
/// let robot = robots::iiwa14();
/// let netlist = optimize(&generate_x_unit(&robot, 1));
/// let compiled = CompiledNetlist::<f64>::compile(&netlist);
/// assert_eq!(compiled.input_names()[0], "sin_q");
///
/// let mut ws = EvalWorkspace::for_netlist(&compiled);
/// let inputs = [0.5_f64, 0.8, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
/// let mut outputs = [0.0_f64; 6];
/// compiled.eval_into(&inputs, &mut ws, &mut outputs);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledNetlist<S> {
    name: String,
    input_names: Vec<String>,
    consts: Vec<S>,
    tape: Vec<Instr>,
    /// The same tape lowered to direct-threaded form — what
    /// [`CompiledNetlist::eval_into_regs`] executes unless the JIT form
    /// below is present.
    threaded: ThreadedTape<S>,
    /// The threaded blocks stitched into one native function by the
    /// copy-and-patch JIT — populated by [`CompiledNetlist::enable_jit`]
    /// on hosts with the JIT backend, `None` otherwise (the threaded
    /// tape then serves every evaluation).
    jit: Option<crate::jit::JitTape<S>>,
    num_regs: usize,
    outputs: Vec<(String, u32)>,
    fusion: FusionCounts,
}

/// Register allocator state during compilation.
struct RegAlloc {
    free: Vec<u32>,
    next: u32,
}

impl RegAlloc {
    fn get(&mut self) -> u32 {
        self.free.pop().unwrap_or_else(|| {
            let r = self.next;
            self.next += 1;
            r
        })
    }

    fn release(&mut self, reg: u32) {
        self.free.push(reg);
    }
}

impl<S: Scalar> CompiledNetlist<S> {
    /// Compiles a netlist for scalar type `S`.
    ///
    /// Run [`crate::optimize`] first when the netlist may contain dead or
    /// redundant nodes — compilation itself preserves the given program
    /// (it only skips nodes nothing consumes).
    ///
    /// # Panics
    ///
    /// Panics if the netlist has more than `u32::MAX` nodes.
    pub fn compile(netlist: &Netlist) -> Self {
        let nodes = netlist.nodes();
        assert!(nodes.len() < u32::MAX as usize, "netlist too large");
        let _span = robo_trace::span_items("tape.compile", nodes.len());

        // Input slot interning: first-appearance order, repeated names
        // share a slot.
        let mut input_names: Vec<String> = Vec::new();
        let mut input_slot = vec![0u32; nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            if let Node::Input(name) = node {
                let slot = match input_names.iter().position(|n| n == name) {
                    Some(s) => s as u32,
                    None => {
                        input_names.push(name.clone());
                        (input_names.len() - 1) as u32
                    }
                };
                input_slot[id] = slot;
            }
        }
        let n_inputs = input_names.len();

        // Liveness: the tape index of each node's final consumer. Outputs
        // stay live to the end of the program.
        const LIVE_TO_END: usize = usize::MAX;
        let mut last_use = vec![0usize; nodes.len()];
        for (id, node) in nodes.iter().enumerate() {
            match node {
                Node::Input(_) | Node::Const(_) => {}
                Node::Mul(a, b) | Node::Add(a, b) | Node::Sub(a, b) => {
                    last_use[*a] = id;
                    last_use[*b] = id;
                }
                Node::MulConst(a, _) | Node::Neg(a) => last_use[*a] = id,
            }
        }
        for (_, id) in netlist.outputs() {
            last_use[*id] = LIVE_TO_END;
        }

        // Constant table, deduplicated by bit pattern, converted to `S`
        // once here rather than per evaluation.
        let mut const_bits: Vec<u64> = Vec::new();
        let mut consts: Vec<S> = Vec::new();
        let mut intern_const = |c: f64| -> u32 {
            let bits = c.to_bits();
            match const_bits.iter().position(|b| *b == bits) {
                Some(i) => i as u32,
                None => {
                    const_bits.push(bits);
                    consts.push(S::from_f64(c));
                    (const_bits.len() - 1) as u32
                }
            }
        };

        // Tape emission with register recycling: input values occupy the
        // first `n_inputs` registers (reloaded on every evaluation), and a
        // slot returns to the free list at its holder's last use.
        let lower_span = robo_trace::span_items("tape.lower", nodes.len());
        let mut alloc = RegAlloc {
            free: Vec::new(),
            next: n_inputs as u32,
        };
        let mut reg_of = vec![u32::MAX; nodes.len()];
        let mut tape = Vec::new();
        for (id, node) in nodes.iter().enumerate() {
            if let Node::Input(_) = node {
                reg_of[id] = input_slot[id];
                continue;
            }
            // A node no one consumes (and that is not an output) computes
            // a value that can never be observed.
            if last_use[id] == 0 {
                continue;
            }
            let mut operands = [0usize; 2];
            let n_ops: usize;
            match node {
                Node::Mul(a, b) | Node::Add(a, b) | Node::Sub(a, b) => {
                    operands = [*a, *b];
                    n_ops = 2;
                }
                Node::MulConst(a, _) | Node::Neg(a) => {
                    operands[0] = *a;
                    n_ops = 1;
                }
                Node::Const(_) => n_ops = 0,
                Node::Input(_) => unreachable!(),
            }
            // Release operands dying here before claiming the destination,
            // so `dst` can recycle an operand's register (reads happen
            // before the write at run time). Inputs below `n_inputs` are
            // recyclable too: they are reloaded at the start of each run.
            for k in 0..n_ops {
                let op = operands[k];
                if last_use[op] == id && !(k == 1 && operands[0] == operands[1]) {
                    alloc.release(reg_of[op]);
                }
            }
            let dst = alloc.get();
            reg_of[id] = dst;
            let instr = match node {
                Node::Const(c) => Instr::Const {
                    idx: intern_const(*c),
                    dst,
                },
                Node::Mul(a, b) => Instr::Mul {
                    a: reg_of[*a],
                    b: reg_of[*b],
                    dst,
                },
                Node::MulConst(a, c) => Instr::MulConst {
                    a: reg_of[*a],
                    idx: intern_const(*c),
                    dst,
                },
                Node::Add(a, b) => Instr::Add {
                    a: reg_of[*a],
                    b: reg_of[*b],
                    dst,
                },
                Node::Sub(a, b) => Instr::Sub {
                    a: reg_of[*a],
                    b: reg_of[*b],
                    dst,
                },
                Node::Neg(a) => Instr::Neg { a: reg_of[*a], dst },
                Node::Input(_) => unreachable!(),
            };
            tape.push(instr);
        }

        let outputs: Vec<(String, u32)> = netlist
            .outputs()
            .iter()
            .map(|(name, id)| (name.clone(), reg_of[*id]))
            .collect();

        drop(lower_span);
        let fusion = {
            let _span = robo_trace::span_items("tape.fuse", tape.len());
            fuse_tape(&mut tape, &outputs)
        };
        let num_regs = alloc.next as usize;
        let threaded = {
            let _span = robo_trace::span_items("tape.schedule", tape.len());
            ThreadedTape::build(&decode_tape(&schedule_tape(&tape)), num_regs, consts.len())
        };

        Self {
            name: netlist.name().to_owned(),
            input_names,
            consts,
            tape,
            threaded,
            jit: None,
            num_regs,
            outputs,
            fusion,
        }
    }

    /// Stitches this tape's superinstruction blocks into one contiguous
    /// native function via the copy-and-patch JIT (`crate::jit`), so
    /// [`CompiledNetlist::eval_into_regs`] runs without the per-block
    /// indirect dispatch. Returns whether the JIT form is now active:
    /// `false` (and the threaded tape keeps serving, bit-identically)
    /// on non-x86-64-Linux targets or if the code mapping fails.
    ///
    /// Idempotent — re-enabling reuses the already-emitted function.
    pub fn enable_jit(&mut self) -> bool {
        if self.jit.is_none() {
            self.jit = crate::jit::JitTape::emit(&self.threaded);
        }
        self.jit.is_some()
    }

    /// Emitted-code statistics when the JIT form is active (see
    /// [`CompiledNetlist::enable_jit`]); `None` while evaluation is
    /// served by the threaded tape.
    pub fn jit_report(&self) -> Option<crate::jit::JitReport> {
        self.jit.as_ref().map(|j| j.report())
    }

    /// The module name of the source netlist.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input names in slot order — the order the `inputs` slice of
    /// [`CompiledNetlist::eval_into`] must follow.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }

    /// Output names in declaration order — the order results are written
    /// into the `outputs` slice.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.outputs.iter().map(|(n, _)| n.as_str())
    }

    /// Number of declared outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Size of the recycled register file (inputs included). With liveness
    /// reuse this is far below the node count.
    pub fn num_regs(&self) -> usize {
        self.num_regs
    }

    /// Number of tape instructions (live non-input nodes, after fusion).
    pub fn tape_len(&self) -> usize {
        self.tape.len()
    }

    /// Number of direct-threaded dispatches (superinstruction blocks) per
    /// evaluation — at most [`CompiledNetlist::tape_len`], usually far
    /// fewer thanks to run grouping.
    pub fn threaded_blocks(&self) -> usize {
        self.threaded.block_count()
    }

    /// What the post-compile fusion pass folded. The pre-fusion tape length
    /// is `tape_len() + fusion_counts().total()`.
    pub fn fusion_counts(&self) -> FusionCounts {
        self.fusion
    }

    /// Re-targets this tape at the portable wide scalar `Lanes<S, W>`,
    /// evaluating `W` independent states per instruction. Shorthand for
    /// [`CompiledNetlist::widen_to`] at the portable lane type.
    pub fn widen<const W: usize>(&self) -> CompiledNetlist<Lanes<S, W>> {
        self.widen_to::<Lanes<S, W>>()
    }

    /// Re-targets this tape at any wide scalar over the same element type
    /// — portable [`Lanes`] or a native SIMD lane bundle.
    ///
    /// The instruction stream, register assignment, and fusion are reused
    /// verbatim (the threaded form is re-lowered through the same
    /// scheduling pass so `V`'s handler table — e.g. the AVX2 one — is
    /// selected); constants are splat per lane, so every lane of a wide
    /// evaluation is bit-identical to a scalar run of the same tape. A
    /// JIT-enabled source tape ([`CompiledNetlist::enable_jit`]) emits
    /// the widened tape's JIT form too, over `V`'s handler table.
    pub fn widen_to<V: WideScalar<Elem = S>>(&self) -> CompiledNetlist<V> {
        let threaded = ThreadedTape::build(
            &decode_tape(&schedule_tape(&self.tape)),
            self.num_regs,
            self.consts.len(),
        );
        let jit = if self.jit.is_some() {
            crate::jit::JitTape::emit(&threaded)
        } else {
            None
        };
        CompiledNetlist {
            name: self.name.clone(),
            input_names: self.input_names.clone(),
            consts: self.consts.iter().map(|&c| V::splat(c)).collect(),
            tape: self.tape.clone(),
            threaded,
            jit,
            num_regs: self.num_regs,
            outputs: self.outputs.clone(),
            fusion: self.fusion,
        }
    }

    /// Evaluates the tape into `outputs`, reusing the workspace's register
    /// file. Zero heap allocations once the workspace is warm.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `outputs` lengths do not match
    /// [`CompiledNetlist::input_names`] / [`CompiledNetlist::num_outputs`].
    pub fn eval_into(&self, inputs: &[S], ws: &mut EvalWorkspace<S>, outputs: &mut [S]) {
        if ws.regs.len() < self.num_regs {
            ws.regs.resize(self.num_regs, S::zero());
        }
        self.eval_into_regs(inputs, &mut ws.regs, outputs);
    }

    /// Like [`CompiledNetlist::eval_into`], but with a caller-provided
    /// register slice (at least [`CompiledNetlist::num_regs`] long) — the
    /// form the simulator uses with stack-allocated register files.
    ///
    /// Executes the direct-threaded form of the tape — per-block handler
    /// function pointers over pre-resolved register offsets, with no
    /// central dispatch — or, after [`CompiledNetlist::enable_jit`], the
    /// JIT-stitched native function over the same handlers. Bit-identical
    /// to [`CompiledNetlist::eval_into_regs_interp`] for every scalar
    /// type either way.
    ///
    /// # Panics
    ///
    /// Panics if a slice length is insufficient.
    pub fn eval_into_regs(&self, inputs: &[S], regs: &mut [S], outputs: &mut [S]) {
        let n_in = self.input_names.len();
        assert_eq!(inputs.len(), n_in, "input slot count mismatch");
        assert_eq!(outputs.len(), self.outputs.len(), "output count mismatch");
        assert!(regs.len() >= self.num_regs, "register file too small");
        regs[..n_in].copy_from_slice(inputs);
        self.run_tape(regs);
        for (slot, (_, reg)) in outputs.iter_mut().zip(&self.outputs) {
            *slot = regs[*reg as usize];
        }
    }

    /// Runs the fastest lowered form over a prepared register file: the
    /// JIT-stitched function when enabled, the threaded tape otherwise.
    /// Both are bit-identical to the interpreter.
    fn run_tape(&self, regs: &mut [S]) {
        match &self.jit {
            Some(jit) => jit.run(regs, &self.consts),
            None => self.threaded.run(regs, &self.consts),
        }
    }

    /// The `match`-dispatch interpreter over the same tape — the oracle
    /// the direct-threaded [`CompiledNetlist::eval_into_regs`] is proven
    /// bit-identical to (`tests/tier_parity.rs`), kept for that purpose
    /// and for dispatch-cost comparisons in the benches.
    ///
    /// # Panics
    ///
    /// Panics if a slice length is insufficient.
    pub fn eval_into_regs_interp(&self, inputs: &[S], regs: &mut [S], outputs: &mut [S]) {
        let n_in = self.input_names.len();
        assert_eq!(inputs.len(), n_in, "input slot count mismatch");
        assert_eq!(outputs.len(), self.outputs.len(), "output count mismatch");
        assert!(regs.len() >= self.num_regs, "register file too small");
        regs[..n_in].copy_from_slice(inputs);
        for instr in &self.tape {
            match *instr {
                Instr::Const { idx, dst } => regs[dst as usize] = self.consts[idx as usize],
                Instr::Mul { a, b, dst } => {
                    regs[dst as usize] = regs[a as usize] * regs[b as usize];
                }
                Instr::MulConst { a, idx, dst } => {
                    regs[dst as usize] = regs[a as usize] * self.consts[idx as usize];
                }
                Instr::Add { a, b, dst } => {
                    regs[dst as usize] = regs[a as usize] + regs[b as usize];
                }
                Instr::Sub { a, b, dst } => {
                    regs[dst as usize] = regs[a as usize] - regs[b as usize];
                }
                Instr::Neg { a, dst } => regs[dst as usize] = -regs[a as usize],
                Instr::MulAdd { a, b, c, dst } => {
                    let t = regs[a as usize] * regs[b as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
                Instr::MulConstAdd { a, idx, c, dst } => {
                    let t = regs[a as usize] * self.consts[idx as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
                Instr::AddAdd { a, b, c, dst } => {
                    let t = regs[a as usize] + regs[b as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
                Instr::NegAdd { a, c, dst } => {
                    let t = -regs[a as usize];
                    regs[dst as usize] = t + regs[c as usize];
                }
            }
        }
        for (slot, (_, reg)) in outputs.iter_mut().zip(&self.outputs) {
            *slot = regs[*reg as usize];
        }
    }

    /// Convenience single-shot evaluation returning a fresh output vector.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` length does not match the input slot count.
    pub fn eval(&self, inputs: &[S]) -> Vec<S> {
        let mut ws = EvalWorkspace::for_netlist(self);
        let mut out = vec![S::zero(); self.outputs.len()];
        self.eval_into(inputs, &mut ws, &mut out);
        out
    }

    /// Evaluates a batch of states into a caller-provided flat buffer with
    /// zero per-state allocation: full groups of `V::WIDTH` states run
    /// through the widened tape one instruction for all lanes at a time,
    /// and the ragged tail falls back to the scalar tape.
    ///
    /// `V` is the wide lane type the workspace was built at — the portable
    /// [`Lanes`] or a native SIMD bundle; pick it per host with
    /// [`CompiledNetlist::tiered_workspace`] or
    /// [`Scalar::dispatch_wide`](robo_spatial::Scalar::dispatch_wide).
    ///
    /// Results land row-major: state `i`'s outputs occupy
    /// `out[i * num_outputs() .. (i + 1) * num_outputs()]`, bit-identical
    /// to `states.len()` independent [`CompiledNetlist::eval_into`] calls
    /// whichever `V` is used.
    ///
    /// # Panics
    ///
    /// Panics if `ws` was built for a different netlist, `out` is not
    /// exactly `states.len() * num_outputs()` long, or any state's length
    /// does not match the input slot count.
    pub fn eval_batch_into<I: AsRef<[S]>, V: WideScalar<Elem = S>>(
        &self,
        states: &[I],
        ws: &mut BatchEvalWorkspace<V>,
        out: &mut [S],
    ) {
        let _span = robo_trace::span_items("tape.eval", states.len());
        let w = V::WIDTH;
        let n_in = self.input_names.len();
        let n_out = self.outputs.len();
        assert_eq!(
            ws.wide.tape.len(),
            self.tape.len(),
            "workspace built for a different netlist"
        );
        assert_eq!(
            out.len(),
            states.len() * n_out,
            "flat output buffer length mismatch"
        );
        if ws.wide_regs.regs.len() < self.num_regs {
            ws.wide_regs.regs.resize(self.num_regs, V::zero());
        }
        let full = states.len() / w;

        // When the widened tape runs AVX2-attributed handlers and `V` is
        // the four-`f64` bundle, the lane transposition around each sweep
        // runs as 4×4 `ymm` transposes too — a scalar gather/scatter
        // costs `4 · (n_in + n_out)` strided moves per group and rivals
        // the tape itself on small units.
        #[cfg(target_arch = "x86_64")]
        let f64x4_fast = ws.wide.threaded.uses_avx2()
            && core::any::TypeId::of::<V>() == core::any::TypeId::of::<robo_spatial::simd::F64x4>();

        for chunk in 0..full {
            let base = chunk * w;
            #[cfg(target_arch = "x86_64")]
            if f64x4_fast {
                let mut rows = [core::ptr::null::<f64>(); 4];
                for (l, state) in states[base..base + w].iter().enumerate() {
                    let state = state.as_ref();
                    assert_eq!(state.len(), n_in, "input slot count mismatch");
                    rows[l] = state.as_ptr().cast::<f64>();
                }
                // SAFETY: `f64x4_fast` proves AVX2 was detected (the
                // widened tape only installs attributed handlers then)
                // and `V` *is* `F64x4`, so the register file really holds
                // 32-byte-aligned `F64x4` and `S` is `f64` (pointer casts
                // are between identical types). Each row was length-
                // checked against `n_in` just above, the register file
                // holds `num_regs >= n_in` entries, every output slot was
                // build-validated below `num_regs`, and each output row
                // is the `n_out`-long subslice of `out` for one state.
                unsafe {
                    let regs = ws
                        .wide_regs
                        .regs
                        .as_mut_ptr()
                        .cast::<robo_spatial::simd::F64x4>();
                    crate::threaded::gather4_f64(rows, n_in, regs);
                    ws.wide.run_tape(&mut ws.wide_regs.regs);
                    let out_rows = core::array::from_fn(|l| {
                        out[(base + l) * n_out..(base + l + 1) * n_out]
                            .as_mut_ptr()
                            .cast::<f64>()
                    });
                    crate::threaded::scatter4_f64(regs.cast_const(), &ws.out_slots, out_rows);
                }
                continue;
            }
            for (l, state) in states[base..base + w].iter().enumerate() {
                let state = state.as_ref();
                assert_eq!(state.len(), n_in, "input slot count mismatch");
                for (k, lane) in ws.wide_regs.regs[..n_in].iter_mut().enumerate() {
                    lane.set_lane(l, state[k]);
                }
            }
            ws.wide.run_tape(&mut ws.wide_regs.regs);
            for l in 0..w {
                let row = &mut out[(base + l) * n_out..(base + l + 1) * n_out];
                for (slot, reg) in row.iter_mut().zip(&ws.out_slots) {
                    *slot = ws.wide_regs.regs[*reg as usize].lane(l);
                }
            }
        }
        for (i, state) in states.iter().enumerate().skip(full * w) {
            self.eval_into(
                state.as_ref(),
                &mut ws.scalar_regs,
                &mut out[i * n_out..(i + 1) * n_out],
            );
        }
    }

    /// A type-erased batch workspace for the lane type `tier` serves on
    /// this host — the runtime entry to the tiered serving path when the
    /// caller cannot be generic over the lane type.
    pub fn tiered_workspace(&self, tier: ExecTier) -> TieredBatchEval<S> {
        struct MkWs<'a, S: Scalar>(&'a CompiledNetlist<S>);
        impl<S: Scalar> WideVisit<S> for MkWs<'_, S> {
            type Out = TieredBatchEval<S>;
            fn visit<V: WideScalar<Elem = S>>(self) -> TieredBatchEval<S> {
                TieredBatchEval {
                    inner: Box::new(ErasedWs {
                        ws: BatchEvalWorkspace::<V>::for_netlist(self.0),
                    }),
                }
            }
        }
        S::dispatch_wide(tier, MkWs(self))
    }

    /// Streams a batch of input states through the tape on `engine` at
    /// the host's detected [`ExecTier`], returning one output vector per
    /// state in order. See [`CompiledNetlist::eval_batch_tiered`].
    ///
    /// # Panics
    ///
    /// Panics if any state's length does not match the input slot count.
    pub fn eval_batch<I: AsRef<[S]> + Sync>(
        &self,
        engine: &BatchEngine,
        states: &[I],
    ) -> Vec<Vec<S>> {
        self.eval_batch_tiered(engine, states, ExecTier::detect())
    }

    /// Streams a batch of input states through the tape on `engine` with
    /// the lane type `tier` serves, returning one output vector per state
    /// in order.
    ///
    /// Convenience wrapper over [`CompiledNetlist::eval_batch_into`]:
    /// workers claim lane-group chunks of states (threads × lanes
    /// parallelism), each through a reusable [`BatchEvalWorkspace`], and
    /// the flat per-chunk results are carved into the legacy
    /// vector-per-state shape. Callers on the serving path should use
    /// [`CompiledNetlist::eval_batch_into`] directly and keep buffers warm.
    ///
    /// # Panics
    ///
    /// Panics if any state's length does not match the input slot count.
    pub fn eval_batch_tiered<I: AsRef<[S]> + Sync>(
        &self,
        engine: &BatchEngine,
        states: &[I],
        tier: ExecTier,
    ) -> Vec<Vec<S>> {
        struct Batch<'a, S: Scalar, I> {
            nl: &'a CompiledNetlist<S>,
            engine: &'a BatchEngine,
            states: &'a [I],
        }
        impl<S: Scalar, I: AsRef<[S]> + Sync> WideVisit<S> for Batch<'_, S, I> {
            type Out = Vec<Vec<S>>;
            fn visit<V: WideScalar<Elem = S>>(self) -> Vec<Vec<S>> {
                self.nl.eval_batch_wide::<I, V>(self.engine, self.states)
            }
        }
        S::dispatch_wide(
            tier,
            Batch {
                nl: self,
                engine,
                states,
            },
        )
    }

    /// [`CompiledNetlist::eval_batch_tiered`] at a concrete lane type.
    fn eval_batch_wide<I: AsRef<[S]> + Sync, V: WideScalar<Elem = S>>(
        &self,
        engine: &BatchEngine,
        states: &[I],
    ) -> Vec<Vec<S>> {
        // Several lane groups per claimed chunk amortizes the claim; small
        // enough to keep all workers fed on modest batches.
        const GROUPS_PER_CHUNK: usize = 4;
        let chunk_len = GROUPS_PER_CHUNK * V::WIDTH;
        let n_out = self.outputs.len();
        let chunks = engine.run_with_state(
            states.len().div_ceil(chunk_len),
            || BatchEvalWorkspace::<V>::for_netlist(self),
            |ws, ci| {
                let lo = ci * chunk_len;
                let hi = usize::min(lo + chunk_len, states.len());
                let mut flat = vec![S::zero(); (hi - lo) * n_out];
                self.eval_batch_into(&states[lo..hi], ws, &mut flat);
                flat
            },
        );
        let mut per_state = Vec::with_capacity(states.len());
        for flat in &chunks {
            per_state.extend(flat.chunks_exact(n_out).map(<[S]>::to_vec));
        }
        per_state
    }
}

/// Reusable buffers for [`CompiledNetlist::eval_batch_into`]: the tape
/// widened to lane type `V`, its wide register file (states are
/// lane-transposed straight into the input registers and results read
/// straight out of the output registers — no staging copies), and a
/// scalar register file for the ragged tail. Build once per worker;
/// every evaluation through it is allocation-free.
///
/// `V` is any [`WideScalar`] over the netlist's element type — the
/// portable `Lanes<S, W>` or one of the native SIMD bundles in
/// [`robo_spatial::simd`].
#[derive(Debug, Clone)]
pub struct BatchEvalWorkspace<V: WideScalar> {
    wide: CompiledNetlist<V>,
    wide_regs: EvalWorkspace<V>,
    scalar_regs: EvalWorkspace<V::Elem>,
    /// Output register slots in declaration order — the scatter reads
    /// `wide_regs[out_slots[o]]` for output `o`.
    out_slots: Vec<u32>,
}

impl<V: WideScalar> BatchEvalWorkspace<V> {
    /// Widens `compiled` to `V` and pre-sizes every buffer, so even the
    /// first batch evaluation allocates nothing.
    pub fn for_netlist(compiled: &CompiledNetlist<V::Elem>) -> Self {
        let wide = compiled.widen_to::<V>();
        Self {
            wide_regs: EvalWorkspace::for_netlist(&wide),
            scalar_regs: EvalWorkspace::for_netlist(compiled),
            out_slots: compiled.outputs.iter().map(|(_, reg)| *reg).collect(),
            wide,
        }
    }
}

/// Object-safe face of a [`BatchEvalWorkspace`] at an erased lane type.
trait DynBatchEval<S: Scalar>: Send {
    fn width(&self) -> usize;
    fn lane_name(&self) -> String;
    fn eval_batch_refs(&mut self, netlist: &CompiledNetlist<S>, states: &[&[S]], out: &mut [S]);
}

/// The concrete workspace behind a [`TieredBatchEval`].
struct ErasedWs<V: WideScalar> {
    ws: BatchEvalWorkspace<V>,
}

impl<S: Scalar, V: WideScalar<Elem = S>> DynBatchEval<S> for ErasedWs<V> {
    fn width(&self) -> usize {
        V::WIDTH
    }

    fn lane_name(&self) -> String {
        V::name()
    }

    fn eval_batch_refs(&mut self, netlist: &CompiledNetlist<S>, states: &[&[S]], out: &mut [S]) {
        netlist.eval_batch_into(states, &mut self.ws, out);
    }
}

/// A [`BatchEvalWorkspace`] whose lane type was chosen at runtime from an
/// [`ExecTier`] and erased — built by
/// [`CompiledNetlist::tiered_workspace`] for callers that cannot be
/// generic over the lane type. Evaluations through it are allocation-free
/// once warm, like the generic workspace it wraps.
pub struct TieredBatchEval<S: Scalar> {
    inner: Box<dyn DynBatchEval<S> + Send>,
}

impl<S: Scalar> TieredBatchEval<S> {
    /// The erased lane type's width (states per wide instruction).
    pub fn width(&self) -> usize {
        self.inner.width()
    }

    /// The erased lane type's [`Scalar::name`] — e.g. `"F64x4(avx2)"` or
    /// `"Lanes<f64, 4>"` — for stats and reports.
    pub fn lane_name(&self) -> String {
        self.inner.lane_name()
    }

    /// [`CompiledNetlist::eval_batch_into`] through the erased workspace.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as
    /// [`CompiledNetlist::eval_batch_into`].
    pub fn eval_batch_into(
        &mut self,
        netlist: &CompiledNetlist<S>,
        states: &[&[S]],
        out: &mut [S],
    ) {
        self.inner.eval_batch_refs(netlist, states, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::optimize;
    use std::collections::HashMap;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("tiny");
        let a = n.push(Node::Input("a".into()));
        let b = n.push(Node::Input("b".into()));
        let c = n.push(Node::Input("c".into()));
        let ab = n.push(Node::Mul(a, b));
        let c2 = n.push(Node::MulConst(c, 2.0));
        let sum = n.push(Node::Add(ab, c2));
        let out = n.push(Node::Neg(sum));
        n.output("o", out).unwrap();
        n
    }

    #[test]
    fn matches_interpreter() {
        let n = tiny();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.input_names(), &["a", "b", "c"]);
        assert_eq!(compiled.eval(&[3.0, 4.0, 5.0]), vec![-22.0]);
    }

    #[test]
    fn constants_are_deduplicated() {
        let mut n = Netlist::new("consts");
        let x = n.push(Node::Input("x".into()));
        let a = n.push(Node::MulConst(x, 2.5));
        let b = n.push(Node::MulConst(x, 2.5));
        let c = n.push(Node::Const(2.5));
        let s1 = n.push(Node::Add(a, b));
        let s2 = n.push(Node::Add(s1, c));
        n.output("o", s2).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.consts.len(), 1);
        assert_eq!(compiled.eval(&[1.0]), vec![7.5]);
    }

    #[test]
    fn registers_are_recycled() {
        // A long chain of unary ops needs O(1) registers, not O(n).
        let mut n = Netlist::new("chain");
        let mut cur = n.push(Node::Input("x".into()));
        for i in 0..40 {
            cur = n.push(Node::MulConst(cur, 1.0 + 0.01 * f64::from(i)));
        }
        n.output("o", cur).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert!(
            compiled.num_regs() <= 3,
            "chain should recycle registers, used {}",
            compiled.num_regs()
        );
    }

    #[test]
    fn dead_nodes_emit_no_instructions() {
        let mut n = Netlist::new("dead");
        let x = n.push(Node::Input("x".into()));
        let y = n.push(Node::Input("y".into()));
        let _dead = n.push(Node::Mul(x, y));
        let live = n.push(Node::Neg(x));
        n.output("o", live).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.tape_len(), 1);
        assert_eq!(compiled.eval(&[2.0, 9.0]), vec![-2.0]);
    }

    #[test]
    fn repeated_input_names_share_a_slot() {
        let mut n = Netlist::new("dupin");
        let a1 = n.push(Node::Input("a".into()));
        let a2 = n.push(Node::Input("a".into()));
        let s = n.push(Node::Add(a1, a2));
        n.output("o", s).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.input_names(), &["a"]);
        assert_eq!(compiled.eval(&[1.5]), vec![3.0]);
    }

    #[test]
    fn output_aliasing_an_input_or_midpoint_survives_reuse() {
        // An output register must never be recycled even when later nodes
        // could otherwise claim it.
        let mut n = Netlist::new("alias");
        let x = n.push(Node::Input("x".into()));
        let mid = n.push(Node::MulConst(x, 3.0));
        let mut cur = mid;
        for _ in 0..8 {
            cur = n.push(Node::Neg(cur));
        }
        n.output("mid", mid).unwrap();
        n.output("in", x).unwrap();
        n.output("end", cur).unwrap();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        assert_eq!(compiled.eval(&[2.0]), vec![6.0, 2.0, 6.0]);
    }

    #[test]
    fn batch_matches_serial() {
        let n = tiny();
        let compiled = CompiledNetlist::<f64>::compile(&n);
        let engine = BatchEngine::new(2);
        let states: Vec<[f64; 3]> = (0..16)
            .map(|i| [i as f64, 0.5 * i as f64, -(i as f64)])
            .collect();
        let batch = compiled.eval_batch(&engine, &states);
        for (out, s) in batch.iter().zip(&states) {
            assert_eq!(out, &compiled.eval(s));
        }
    }

    #[test]
    fn compiled_optimized_x_unit_matches_interpreter() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        for joint in 0..robot.dof() {
            let raw = generate_x_unit(&robot, joint);
            let opt = optimize(&raw);
            let compiled = CompiledNetlist::<f64>::compile(&opt);
            let values: Vec<f64> = (0..8).map(|i| 0.3 * i as f64 - 0.9).collect();
            let inputs: HashMap<String, f64> = compiled
                .input_names()
                .iter()
                .zip(&values)
                .map(|(n, v)| (n.clone(), *v))
                .collect();
            let want = raw.eval(&inputs).unwrap();
            let got = compiled.eval(&values);
            for ((name, w), g) in want.iter().zip(&got) {
                assert_eq!(w, g, "joint {joint} output {name}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "input slot count mismatch")]
    fn wrong_input_arity_panics() {
        let compiled = CompiledNetlist::<f64>::compile(&tiny());
        let _ = compiled.eval(&[1.0]);
    }

    #[test]
    fn fusion_shrinks_tiny_tape() {
        // tiny() is Mul, MulConst, Add, Neg; the Mul feeds only the Add,
        // so the pass folds them into one MulAdd.
        let compiled = CompiledNetlist::<f64>::compile(&tiny());
        assert_eq!(compiled.fusion_counts().mul_add, 1);
        assert_eq!(compiled.fusion_counts().total(), 1);
        assert_eq!(compiled.tape_len(), 3);
        assert_eq!(compiled.eval(&[3.0, 4.0, 5.0]), vec![-22.0]);
    }

    #[test]
    fn fusion_shrinks_optimized_x_unit_tapes() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        let mut total_fused = 0;
        for joint in 0..robot.dof() {
            let opt = optimize(&generate_x_unit(&robot, joint));
            let compiled = CompiledNetlist::<f64>::compile(&opt);
            let fused = compiled.fusion_counts().total();
            assert!(
                fused > 0,
                "joint {joint}: multiply-accumulate netlist should fuse"
            );
            total_fused += fused;
        }
        assert!(total_fused >= robot.dof());
    }

    #[test]
    fn eval_batch_into_matches_scalar_bit_for_bit() {
        let compiled = CompiledNetlist::<f64>::compile(&tiny());
        let n_out = compiled.num_outputs();
        // 11 states: two full Lanes<_, 4> groups plus a ragged tail of 3.
        let states: Vec<[f64; 3]> = (0..11)
            .map(|i| {
                let x = f64::from(i);
                [0.3 * x, 1.0 - x, 0.5 * x - 2.0]
            })
            .collect();
        let mut ws = BatchEvalWorkspace::<Lanes<f64, 4>>::for_netlist(&compiled);
        let mut flat = vec![0.0; states.len() * n_out];
        compiled.eval_batch_into(&states, &mut ws, &mut flat);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(&flat[i * n_out..(i + 1) * n_out], &compiled.eval(s)[..]);
        }
    }

    #[test]
    fn widened_x_unit_lanes_match_scalar_bit_for_bit() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        let opt = optimize(&generate_x_unit(&robot, 2));
        let compiled = CompiledNetlist::<f64>::compile(&opt);
        let n_in = compiled.input_names().len();
        let n_out = compiled.num_outputs();
        let states: Vec<Vec<f64>> = (0..6)
            .map(|s| {
                (0..n_in)
                    .map(|k| 0.17 * (s * n_in + k) as f64 - 1.1)
                    .collect()
            })
            .collect();
        let mut ws = BatchEvalWorkspace::<Lanes<f64, 4>>::for_netlist(&compiled);
        let mut flat = vec![0.0; states.len() * n_out];
        compiled.eval_batch_into(&states, &mut ws, &mut flat);
        for (i, s) in states.iter().enumerate() {
            assert_eq!(
                &flat[i * n_out..(i + 1) * n_out],
                &compiled.eval(s)[..],
                "state {i}"
            );
        }
    }

    #[test]
    fn threaded_execution_matches_match_interpreter_bitwise() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        for joint in 0..robot.dof() {
            let opt = optimize(&generate_x_unit(&robot, joint));
            let compiled = CompiledNetlist::<f64>::compile(&opt);
            let n_in = compiled.input_names().len();
            let inputs: Vec<f64> = (0..n_in).map(|k| 0.37 * k as f64 - 1.3).collect();
            let mut regs = vec![0.0; compiled.num_regs()];
            let mut threaded = vec![0.0; compiled.num_outputs()];
            let mut interp = vec![0.0; compiled.num_outputs()];
            compiled.eval_into_regs(&inputs, &mut regs, &mut threaded);
            compiled.eval_into_regs_interp(&inputs, &mut regs, &mut interp);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&threaded), bits(&interp), "joint {joint}");
        }
    }

    #[test]
    fn superinstruction_blocks_shrink_dispatch_count() {
        use crate::xunit_gen::generate_x_unit;
        use robo_model::robots;
        let robot = robots::iiwa14();
        let opt = optimize(&generate_x_unit(&robot, 1));
        let compiled = CompiledNetlist::<f64>::compile(&opt);
        assert!(compiled.threaded_blocks() >= 1);
        assert!(
            compiled.threaded_blocks() < compiled.tape_len(),
            "x-unit tapes have fusable opcode runs: {} blocks vs {} instrs",
            compiled.threaded_blocks(),
            compiled.tape_len()
        );
    }

    #[test]
    fn scheduling_shrinks_threaded_dispatch_count() {
        use crate::xunit_gen::generate_x_pipeline;
        use robo_model::robots;
        use robo_sparsity::superposition_pattern;
        // The threaded lowering runs the opcode-affinity scheduler before
        // tiling; on the merged pipeline tape clustering must yield
        // strictly fewer superinstruction blocks than tiling fusion order
        // directly, and the wide lowering shares the same schedule.
        let robot = robots::iiwa14();
        let sup = superposition_pattern(&robot);
        let compiled =
            CompiledNetlist::<f64>::compile(&optimize(&generate_x_pipeline(&robot, sup)));
        let naive = ThreadedTape::<f64>::build(
            &decode_tape(&compiled.tape),
            compiled.num_regs,
            compiled.consts.len(),
        );
        assert!(
            compiled.threaded_blocks() < naive.block_count(),
            "scheduled {} blocks vs fusion-order {} blocks",
            compiled.threaded_blocks(),
            naive.block_count()
        );
        assert_eq!(
            compiled.widen::<4>().threaded_blocks(),
            compiled.threaded_blocks(),
            "wide lowering shares the scalar schedule"
        );
    }

    #[test]
    fn fixed_point_matches_interpreter_bit_for_bit() {
        use robo_fixed::Fix32_16;
        let n = tiny();
        let compiled = CompiledNetlist::<Fix32_16>::compile(&n);
        let vals = [1.5, -2.0, 0.25].map(Fix32_16::from_f64);
        let inputs: HashMap<String, Fix32_16> = ["a", "b", "c"]
            .iter()
            .zip(vals)
            .map(|(n, v)| ((*n).to_owned(), v))
            .collect();
        let want = n.eval(&inputs).unwrap();
        let got = compiled.eval(&vals);
        assert_eq!(want[0].1, got[0]);
    }
}
