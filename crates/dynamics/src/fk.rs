//! Forward kinematics and geometric Jacobians.
//!
//! Kinematics is one of the other morphology-coupled kernels the paper
//! lists as robomorphic-computing targets (§2.2, §7: "collision detection,
//! localization, kinematics"). This module provides the reference
//! implementation that the kinematics accelerator template in
//! `robomorphic-core` is measured against, and supplies end-effector
//! queries for the trajectory-optimization stack.

use crate::DynamicsModel;
use robo_spatial::{MatN, Motion, Scalar, Transform, Vec3};

/// Forward kinematics: for each link, the coordinate transform
/// `ˡX_world` from world coordinates to that link's frame.
///
/// # Panics
///
/// Panics if `q.len() != model.dof()`.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{forward_kinematics, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// let poses = forward_kinematics(&model, &[0.0; 7]);
/// assert_eq!(poses.len(), 7);
/// ```
pub fn forward_kinematics<S: Scalar>(model: &DynamicsModel<S>, q: &[S]) -> Vec<Transform<S>> {
    let n = model.dof();
    assert_eq!(q.len(), n, "q length mismatch");
    let mut out: Vec<Transform<S>> = Vec::with_capacity(n);
    for i in 0..n {
        let xi = model.joint_transform(i, q[i]);
        let pose = match model.parent(i) {
            Some(p) => xi.compose(&out[p]),
            None => xi,
        };
        out.push(pose);
    }
    out
}

/// Position of link `i`'s frame origin in world coordinates.
pub fn link_origin_world<S: Scalar>(poses: &[Transform<S>], i: usize) -> Vec3<S> {
    // ˡX_world stores the link origin's position in the source (world)
    // frame directly.
    poses[i].pos
}

/// The geometric Jacobian of link `link`'s frame, expressed in the link's
/// own coordinates: a `6×n` matrix with `J q̇ = [ω; v]` (the link's spatial
/// velocity). Columns of non-ancestor joints are zero — the same
/// morphology-derived sparsity the gradient datapaths exploit.
///
/// # Panics
///
/// Panics if `q.len() != model.dof()` or `link` is out of range.
pub fn geometric_jacobian<S: Scalar>(model: &DynamicsModel<S>, q: &[S], link: usize) -> MatN<S> {
    let n = model.dof();
    assert!(link < n, "link index out of range");
    let poses = forward_kinematics(model, q);
    let mut j = MatN::zeros(6, n);
    let link_from_world = poses[link];
    for col in 0..n {
        if !model.influences(col, link) {
            continue;
        }
        // S_col lives in link `col`'s frame; move it into `link`'s frame:
        // m_link = ˡX_w · (ᶜX_w)⁻¹ · S_col.
        let world = poses[col].inv_apply_motion(model.subspace(col));
        let m = link_from_world.apply_motion(world);
        let arr = m.to_array();
        for r in 0..6 {
            j[(r, col)] = arr[r];
        }
    }
    j
}

/// The `3×n` position Jacobian of link `link`'s frame origin in world
/// coordinates: `ṗ = Jₚ(q) q̇`. Used for task-space (end-effector) costs in
/// trajectory optimization.
///
/// # Panics
///
/// Panics if `q.len() != model.dof()` or `link` is out of range.
pub fn position_jacobian<S: Scalar>(model: &DynamicsModel<S>, q: &[S], link: usize) -> MatN<S> {
    let n = model.dof();
    assert!(link < n, "link index out of range");
    let poses = forward_kinematics(model, q);
    let p = link_origin_world(&poses, link);
    let mut j = MatN::zeros(3, n);
    for col in 0..n {
        if !model.influences(col, link) {
            continue;
        }
        // The joint's motion subspace in world coordinates; the origin's
        // linear velocity is v + ω × p.
        let world = poses[col].inv_apply_motion(model.subspace(col));
        let lin = world.lin + world.ang.cross(p);
        j[(0, col)] = lin.x;
        j[(1, col)] = lin.y;
        j[(2, col)] = lin.z;
    }
    j
}

/// The spatial velocity of `link` computed through the Jacobian (used to
/// cross-check against the RNEA's propagated velocities).
pub fn jacobian_velocity<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    link: usize,
) -> Motion<S> {
    let j = geometric_jacobian(model, q, link);
    let v = j.mul_vec(qd);
    Motion::from_array([v[0], v[1], v[2], v[3], v[4], v[5]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rnea::rnea;
    use robo_model::{robots, JointType};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn zero_configuration_stacks_translations() {
        // A straight chain of 0.25 m z-offsets: link i's origin sits at the
        // summed offsets of joints 1..=i (placement rotations permute the
        // direction but preserve distance from the base).
        let robot = robots::serial_chain(3, JointType::RevoluteZ);
        let model = DynamicsModel::<f64>::new(&robot);
        let poses = forward_kinematics(&model, &[0.0; 3]);
        let p0 = link_origin_world(&poses, 0);
        assert!((p0 - robo_spatial::Vec3::new(0.0, 0.0, 0.25)).max_abs() < 1e-12);
        let p2 = link_origin_world(&poses, 2);
        assert!(p2.norm() > 0.5, "chain tip should be away from the base");
    }

    #[test]
    fn jacobian_matches_rnea_velocity() {
        // J(q) q̇ must equal the RNEA's propagated link velocity.
        for robot in [robots::iiwa14(), robots::hyq()] {
            let model = DynamicsModel::<f64>::new(&robot);
            let n = model.dof();
            let mut seed = 5;
            let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let qd: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let zero = vec![0.0; n];
            let cache = rnea(&model, &q, &qd, &zero).cache;
            for link in 0..n {
                let via_j = jacobian_velocity(&model, &q, &qd, link);
                let via_rnea = cache.v[link];
                assert!(
                    (via_j - via_rnea).max_abs() < 1e-10,
                    "{} link {link}",
                    robot.name()
                );
            }
        }
    }

    #[test]
    fn jacobian_matches_finite_difference_of_fk() {
        // Linear rows of J: d(world position)/dq, rotated into the link
        // frame, with the angular correction ω×(o − p). Easier and just as
        // strong: compare J q̇ against numeric differentiation of the pose.
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::new(&robot);
        let n = model.dof();
        let mut seed = 77;
        let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
        let qd: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
        let link = n - 1;
        let h = 1e-7;
        let q2: Vec<f64> = q.iter().zip(&qd).map(|(a, b)| a + h * b).collect();
        let p1 = link_origin_world(&forward_kinematics(&model, &q), link);
        let p2 = link_origin_world(&forward_kinematics(&model, &q2), link);
        let numeric_vel_world = (p2 - p1).scale(1.0 / h);

        // Analytic: spatial velocity in the link frame → world linear
        // velocity of the origin point.
        let v = jacobian_velocity(&model, &q, &qd, link);
        let pose = forward_kinematics(&model, &q)[link];
        let world = pose.inv_apply_motion(v);
        // `world` is the spatial velocity in world coordinates measured at
        // the world origin; the link origin's velocity is v + ω×p.
        let p = link_origin_world(&forward_kinematics(&model, &q), link);
        let origin_vel = world.lin + world.ang.cross(p);
        assert!(
            (origin_vel - numeric_vel_world).max_abs() < 1e-5,
            "{origin_vel:?} vs {numeric_vel_world:?}"
        );
    }

    #[test]
    fn position_jacobian_matches_finite_differences() {
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::new(&robot);
        let n = model.dof();
        let mut seed = 41;
        let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
        let link = 6;
        let j = position_jacobian(&model, &q, link);
        let h = 1e-7;
        for col in 0..n {
            let mut qp = q.clone();
            let mut qm = q.clone();
            qp[col] += h;
            qm[col] -= h;
            let pp = link_origin_world(&forward_kinematics(&model, &qp), link);
            let pm = link_origin_world(&forward_kinematics(&model, &qm), link);
            let fd = (pp - pm).scale(1.0 / (2.0 * h));
            for (r, v) in [fd.x, fd.y, fd.z].iter().enumerate() {
                assert!(
                    (j[(r, col)] - v).abs() < 1e-6,
                    "J[{r},{col}] = {} vs fd {v}",
                    j[(r, col)]
                );
            }
        }
    }

    #[test]
    fn non_ancestor_columns_are_zero() {
        let robot = robots::hyq();
        let model = DynamicsModel::<f64>::new(&robot);
        let q = vec![0.2; 12];
        // Link 2 is on leg 1; joints 3.. belong to other legs.
        let j = geometric_jacobian(&model, &q, 2);
        for col in 3..12 {
            for r in 0..6 {
                assert_eq!(j[(r, col)], 0.0, "col {col} row {r}");
            }
        }
    }

    #[test]
    fn prismatic_jacobian_is_pure_translation() {
        let robot = robots::serial_chain(1, JointType::PrismaticZ);
        let model = DynamicsModel::<f64>::new(&robot);
        let j = geometric_jacobian(&model, &[0.3], 0);
        // Angular rows all zero; linear z row is 1.
        for r in 0..3 {
            assert_eq!(j[(r, 0)], 0.0);
        }
        assert_eq!(j[(5, 0)], 1.0);
    }
}
