//! Rigid body dynamics and the analytical dynamics gradient.
//!
//! This crate implements the algorithm stack that the paper's accelerator
//! computes in hardware:
//!
//! * [`rnea`] — inverse dynamics via the Recursive Newton-Euler Algorithm
//!   (the paper's Algorithm 2);
//! * [`mass_matrix`] / [`mass_matrix_inverse`] — the Composite Rigid Body
//!   Algorithm and the `M⁻¹` used in Algorithm 1, step 3;
//! * [`forward_dynamics`] (CRBA route) and [`aba`] (Articulated Body
//!   Algorithm) — two independent forward-dynamics implementations,
//!   cross-checked in tests;
//! * [`rnea_derivatives`] — analytical `∇ID` (Algorithm 1, step 2), written
//!   as one independent *datapath per joint*, mirroring the accelerator's
//!   parallel structure;
//! * [`dynamics_gradient_from_qdd`] / [`forward_dynamics_gradient`] — the
//!   complete forward-dynamics gradient kernel (Algorithm 1);
//! * [`forward_kinematics`] / [`geometric_jacobian`] — the kinematics
//!   kernels that §7 lists as further robomorphic targets;
//! * [`findiff`] — finite-difference references for validation.
//!
//! Everything is generic over [`robo_spatial::Scalar`], so the same code
//! validates the fixed-point accelerator arithmetic.
//!
//! # Example
//!
//! ```
//! use robo_dynamics::{forward_dynamics_gradient, DynamicsModel};
//! use robo_model::robots;
//!
//! let model = DynamicsModel::<f64>::new(&robots::iiwa14());
//! let q = [0.1, -0.3, 0.5, 0.7, -0.2, 0.4, 0.0];
//! let qd = [0.0; 7];
//! let tau = [0.0; 7];
//! let (qdd, grad) = forward_dynamics_gradient(&model, &q, &qd, &tau)?;
//! assert_eq!(qdd.len(), 7);
//! assert_eq!(grad.dqdd_dq.rows(), 7);
//! # Ok::<(), robo_spatial::FactorizeError>(())
//! ```

#![warn(missing_docs)]
// Index-based loops over fixed-size matrix dimensions are clearer than
// iterator chains in this numerical code.
#![allow(clippy::needless_range_loop)]

mod crba;
mod deriv;
mod fd;
pub mod findiff;
mod fk;
pub mod key;
mod model;
mod rnea;

pub mod batch;
pub mod engine;

pub use crba::{mass_matrix, mass_matrix_inverse};
pub use deriv::{
    dynamics_gradient_from_qdd, dynamics_gradient_into, forward_dynamics_gradient,
    rnea_derivatives, rnea_gradient_into, DynamicsGradient, GradWorkspace, InverseDynamicsGradient,
};
pub use fd::{aba, aba_into, forward_dynamics, forward_dynamics_into, AbaWorkspace, FdWorkspace};
pub use fk::{
    forward_kinematics, geometric_jacobian, jacobian_velocity, link_origin_world, position_jacobian,
};
pub use key::MorphologyKey;
pub use model::{DynamicsModel, STANDARD_GRAVITY};
pub use rnea::{
    bias_torques, kinetic_energy, rnea, rnea_into, rnea_with_external, rnea_with_external_into,
    RneaCache, RneaResult, RneaWorkspace,
};
