//! Forward dynamics: joint accelerations from torques.
//!
//! Two independent implementations are provided and cross-checked in tests:
//! the CRBA route (`q̈ = M⁻¹(τ − C)`, the structure the paper's Algorithm 1
//! exploits) and the O(n) Articulated Body Algorithm.

use crate::{bias_torques, mass_matrix, DynamicsModel};
use robo_spatial::{FactorizeError, Force, Mat6, Motion, Scalar};

/// Computes forward dynamics via the mass matrix: `q̈ = M⁻¹ (τ − C(q, q̇))`.
///
/// # Errors
///
/// Returns [`FactorizeError`] if the mass matrix cannot be factorized.
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{forward_dynamics, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::double_pendulum());
/// let qdd = forward_dynamics(&model, &[0.5, -0.2], &[0.0, 0.0], &[0.0, 0.0])?;
/// assert_eq!(qdd.len(), 2);
/// # Ok::<(), robo_spatial::FactorizeError>(())
/// ```
pub fn forward_dynamics<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    tau: &[S],
) -> Result<Vec<S>, FactorizeError> {
    let n = model.dof();
    assert_eq!(tau.len(), n, "tau length mismatch");
    let c = bias_torques(model, q, qd);
    let rhs: Vec<S> = tau.iter().zip(&c).map(|(t, b)| *t - *b).collect();
    mass_matrix(model, q).ldlt()?.solve(&rhs)
}

fn outer6<S: Scalar>(a: [S; 6], b: [S; 6]) -> Mat6<S> {
    let mut out = Mat6::zero();
    for i in 0..6 {
        for j in 0..6 {
            out.m[i][j] = a[i] * b[j];
        }
    }
    out
}

/// Computes forward dynamics with the Articulated Body Algorithm
/// (Featherstone), an O(n) method independent of the CRBA route.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{aba, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// // From a bent posture, gravity makes the unactuated arm fall.
/// let qdd = aba(&model, &[0.5; 7], &[0.0; 7], &[0.0; 7]);
/// assert!(qdd.iter().any(|a| a.abs() > 0.1));
/// ```
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`, or if an articulated
/// joint-space inertia `d = Sᵀ IA S` is non-positive (invalid model).
pub fn aba<S: Scalar>(model: &DynamicsModel<S>, q: &[S], qd: &[S], tau: &[S]) -> Vec<S> {
    let n = model.dof();
    assert_eq!(q.len(), n, "q length mismatch");
    assert_eq!(qd.len(), n, "qd length mismatch");
    assert_eq!(tau.len(), n, "tau length mismatch");

    let mut x = Vec::with_capacity(n);
    let mut v = vec![Motion::zero(); n];
    let mut c = vec![Motion::zero(); n];
    let mut ia: Vec<Mat6<S>> = Vec::with_capacity(n);
    let mut pa = vec![Force::zero(); n];

    // Pass 1: velocities and bias terms.
    for i in 0..n {
        let xi = model.joint_transform(i, q[i]);
        let s = model.subspace(i);
        let vj = s.scale(qd[i]);
        let vp = match model.parent(i) {
            Some(p) => xi.apply_motion(v[p]),
            None => Motion::zero(),
        };
        v[i] = vp + vj;
        c[i] = v[i].cross_motion(vj);
        ia.push(model.inertia(i).to_mat6());
        pa[i] = v[i].cross_force(model.inertia(i).apply(v[i]));
        x.push(xi);
    }

    // Pass 2: articulated inertias, tip to base.
    let mut u_vec = vec![[S::zero(); 6]; n];
    let mut d = vec![S::zero(); n];
    let mut u_sc = vec![S::zero(); n];
    for i in (0..n).rev() {
        let s = model.subspace(i);
        let ui = ia[i].mul_array(s.to_array());
        let di = {
            let sa = s.to_array();
            let mut acc = S::zero();
            for k in 0..6 {
                acc += sa[k] * ui[k];
            }
            acc
        };
        assert!(
            di.to_f64() > 0.0,
            "articulated inertia about joint {i} is non-positive"
        );
        let usc = tau[i] - s.dot(pa[i]);
        u_vec[i] = ui;
        d[i] = di;
        u_sc[i] = usc;
        if let Some(p) = model.parent(i) {
            let inv_d = S::one() / di;
            let ia_art = ia[i] - outer6(ui, ui).mul_scalar(inv_d);
            let pa_art = pa[i]
                + Force::from_array(ia_art.mul_array(c[i].to_array()))
                + Force::from_array(u_vec[i]).scale(usc * inv_d);
            let xm = x[i].to_mat6();
            ia[p] = ia[p] + xm.transpose() * ia_art * xm;
            pa[p] += x[i].tr_apply_force(pa_art);
        }
    }

    // Pass 3: accelerations, base to tip.
    let mut a = vec![Motion::zero(); n];
    let mut qdd = vec![S::zero(); n];
    for i in 0..n {
        let ap = match model.parent(i) {
            Some(p) => x[i].apply_motion(a[p]),
            None => x[i].apply_motion(model.base_acceleration()),
        } + c[i];
        let u_dot_a = {
            let aa = ap.to_array();
            let mut acc = S::zero();
            for k in 0..6 {
                acc += u_vec[i][k] * aa[k];
            }
            acc
        };
        qdd[i] = (u_sc[i] - u_dot_a) / d[i];
        a[i] = ap + model.subspace(i).scale(qdd[i]);
    }
    qdd
}

trait Mat6Ext<S> {
    fn mul_scalar(self, s: S) -> Self;
}

impl<S: Scalar> Mat6Ext<S> for Mat6<S> {
    fn mul_scalar(mut self, s: S) -> Self {
        for row in &mut self.m {
            for x in row {
                *x *= s;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rnea::rnea;
    use robo_model::{robots, JointType};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn forward_inverse_round_trip() {
        // RNEA(q, q̇, FD(q, q̇, τ)) = τ.
        for robot in [robots::iiwa14(), robots::hyq()] {
            let model = DynamicsModel::<f64>::new(&robot);
            let n = model.dof();
            let mut seed = 13;
            let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let qd: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let tau: Vec<f64> = (0..n).map(|_| 5.0 * lcg(&mut seed)).collect();
            let qdd = forward_dynamics(&model, &q, &qd, &tau).unwrap();
            let back = rnea(&model, &q, &qd, &qdd).tau;
            for i in 0..n {
                assert!((back[i] - tau[i]).abs() < 1e-8, "joint {i}");
            }
        }
    }

    #[test]
    fn aba_matches_crba_route() {
        for robot in [
            robots::iiwa14(),
            robots::hyq(),
            robots::atlas(),
            robots::serial_chain(4, JointType::PrismaticZ),
        ] {
            let model = DynamicsModel::<f64>::new(&robot);
            let n = model.dof();
            let mut seed = 77;
            let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let qd: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let tau: Vec<f64> = (0..n).map(|_| 3.0 * lcg(&mut seed)).collect();
            let via_crba = forward_dynamics(&model, &q, &qd, &tau).unwrap();
            let via_aba = aba(&model, &q, &qd, &tau);
            for i in 0..n {
                assert!(
                    (via_crba[i] - via_aba[i]).abs() < 1e-7,
                    "{}: joint {i}: {} vs {}",
                    robot.name(),
                    via_crba[i],
                    via_aba[i]
                );
            }
        }
    }

    #[test]
    fn free_fall_pendulum_accelerates() {
        // A horizontal pendulum under gravity must accelerate downward.
        let robot = robo_model::RobotBuilder::new("pend")
            .link("rod", None, JointType::RevoluteY)
            .uniform_rod_inertia(1.0, 1.0)
            .build()
            .unwrap();
        let model = DynamicsModel::<f64>::new(&robot);
        let qdd = aba(&model, &[std::f64::consts::FRAC_PI_2], &[0.0], &[0.0]);
        assert!(qdd[0].abs() > 1.0, "expected gravity-driven acceleration");
    }

    #[test]
    fn gravity_compensation_holds_still() {
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let q = vec![0.3, -0.5, 0.8, -1.0, 0.2, 0.7, -0.1];
        let zero = vec![0.0; 7];
        let hold = rnea(&model, &q, &zero, &zero).tau;
        let qdd = aba(&model, &q, &zero, &hold);
        assert!(qdd.iter().all(|a| a.abs() < 1e-8));
    }
}
