//! Forward dynamics: joint accelerations from torques.
//!
//! Two independent implementations are provided and cross-checked in tests:
//! the CRBA route (`q̈ = M⁻¹(τ − C)`, the structure the paper's Algorithm 1
//! exploits) and the O(n) Articulated Body Algorithm.

use crate::rnea::{rnea_into, RneaWorkspace};
use crate::{bias_torques, mass_matrix, DynamicsModel};
use robo_spatial::{FactorizeError, Force, Mat6, MatN, Motion, Scalar, Transform};

/// Computes forward dynamics via the mass matrix: `q̈ = M⁻¹ (τ − C(q, q̇))`.
///
/// # Errors
///
/// Returns [`FactorizeError`] if the mass matrix cannot be factorized.
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{forward_dynamics, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::double_pendulum());
/// let qdd = forward_dynamics(&model, &[0.5, -0.2], &[0.0, 0.0], &[0.0, 0.0])?;
/// assert_eq!(qdd.len(), 2);
/// # Ok::<(), robo_spatial::FactorizeError>(())
/// ```
pub fn forward_dynamics<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    tau: &[S],
) -> Result<Vec<S>, FactorizeError> {
    let n = model.dof();
    assert_eq!(tau.len(), n, "tau length mismatch");
    let c = bias_torques(model, q, qd);
    let rhs: Vec<S> = tau.iter().zip(&c).map(|(t, b)| *t - *b).collect();
    mass_matrix(model, q).ldlt()?.solve(&rhs)
}

fn outer6<S: Scalar>(a: [S; 6], b: [S; 6]) -> Mat6<S> {
    let mut out = Mat6::zero();
    for i in 0..6 {
        for j in 0..6 {
            out.m[i][j] = a[i] * b[j];
        }
    }
    out
}

/// Computes forward dynamics with the Articulated Body Algorithm
/// (Featherstone), an O(n) method independent of the CRBA route.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{aba, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// // From a bent posture, gravity makes the unactuated arm fall.
/// let qdd = aba(&model, &[0.5; 7], &[0.0; 7], &[0.0; 7]);
/// assert!(qdd.iter().any(|a| a.abs() > 0.1));
/// ```
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`, or if an articulated
/// joint-space inertia `d = Sᵀ IA S` is non-positive (invalid model).
pub fn aba<S: Scalar>(model: &DynamicsModel<S>, q: &[S], qd: &[S], tau: &[S]) -> Vec<S> {
    let mut ws = AbaWorkspace::new();
    aba_into(model, q, qd, tau, &mut ws);
    ws.qdd
}

/// Reusable buffers for [`aba_into`] — every per-link intermediate of the
/// three ABA passes, sized on first use so steady-state calls are
/// allocation-free (proven in `tests/alloc_free.rs`).
#[derive(Debug, Clone)]
pub struct AbaWorkspace<S> {
    x: Vec<Transform<S>>,
    v: Vec<Motion<S>>,
    c: Vec<Motion<S>>,
    ia: Vec<Mat6<S>>,
    pa: Vec<Force<S>>,
    u_vec: Vec<[S; 6]>,
    d: Vec<S>,
    u_sc: Vec<S>,
    a: Vec<Motion<S>>,
    /// Joint accelerations `q̈`, valid after a call.
    pub qdd: Vec<S>,
}

impl<S: Scalar> Default for AbaWorkspace<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> AbaWorkspace<S> {
    /// An empty workspace; the first call sizes every buffer.
    pub fn new() -> Self {
        Self {
            x: Vec::new(),
            v: Vec::new(),
            c: Vec::new(),
            ia: Vec::new(),
            pa: Vec::new(),
            u_vec: Vec::new(),
            d: Vec::new(),
            u_sc: Vec::new(),
            a: Vec::new(),
            qdd: Vec::new(),
        }
    }

    /// A workspace pre-sized for `model`, so even the first call through
    /// it is allocation-free.
    pub fn for_model(model: &DynamicsModel<S>) -> Self {
        let mut ws = Self::new();
        ws.reserve(model.dof());
        ws
    }

    fn reserve(&mut self, n: usize) {
        self.x.clear();
        self.x.reserve(n);
        self.ia.clear();
        self.ia.reserve(n);
        self.v.resize(n, Motion::zero());
        self.c.resize(n, Motion::zero());
        self.pa.resize(n, Force::zero());
        self.u_vec.resize(n, [S::zero(); 6]);
        self.d.resize(n, S::zero());
        self.u_sc.resize(n, S::zero());
        self.a.resize(n, Motion::zero());
        self.qdd.resize(n, S::zero());
    }
}

/// Allocation-free [`aba`]: identical passes writing through `ws`, with
/// `q̈` left in [`AbaWorkspace::qdd`] (bit-identical to [`aba`], which is
/// now a thin wrapper over this).
///
/// # Panics
///
/// As for [`aba`].
pub fn aba_into<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    tau: &[S],
    ws: &mut AbaWorkspace<S>,
) {
    let n = model.dof();
    assert_eq!(q.len(), n, "q length mismatch");
    assert_eq!(qd.len(), n, "qd length mismatch");
    assert_eq!(tau.len(), n, "tau length mismatch");
    ws.reserve(n);
    let AbaWorkspace {
        x,
        v,
        c,
        ia,
        pa,
        u_vec,
        d,
        u_sc,
        a,
        qdd,
    } = ws;

    // Pass 1: velocities and bias terms.
    for i in 0..n {
        let xi = model.joint_transform(i, q[i]);
        let s = model.subspace(i);
        let vj = s.scale(qd[i]);
        let vp = match model.parent(i) {
            Some(p) => xi.apply_motion(v[p]),
            None => Motion::zero(),
        };
        v[i] = vp + vj;
        c[i] = v[i].cross_motion(vj);
        ia.push(model.inertia(i).to_mat6());
        pa[i] = v[i].cross_force(model.inertia(i).apply(v[i]));
        x.push(xi);
    }

    // Pass 2: articulated inertias, tip to base.
    for i in (0..n).rev() {
        let s = model.subspace(i);
        let ui = ia[i].mul_array(s.to_array());
        let di = {
            let sa = s.to_array();
            let mut acc = S::zero();
            for k in 0..6 {
                acc += sa[k] * ui[k];
            }
            acc
        };
        assert!(
            di.to_f64() > 0.0,
            "articulated inertia about joint {i} is non-positive"
        );
        let usc = tau[i] - s.dot(pa[i]);
        u_vec[i] = ui;
        d[i] = di;
        u_sc[i] = usc;
        if let Some(p) = model.parent(i) {
            let inv_d = S::one() / di;
            let ia_art = ia[i] - outer6(ui, ui).mul_scalar(inv_d);
            let pa_art = pa[i]
                + Force::from_array(ia_art.mul_array(c[i].to_array()))
                + Force::from_array(u_vec[i]).scale(usc * inv_d);
            let xm = x[i].to_mat6();
            ia[p] = ia[p] + xm.transpose() * ia_art * xm;
            pa[p] += x[i].tr_apply_force(pa_art);
        }
    }

    // Pass 3: accelerations, base to tip.
    for i in 0..n {
        let ap = match model.parent(i) {
            Some(p) => x[i].apply_motion(a[p]),
            None => x[i].apply_motion(model.base_acceleration()),
        } + c[i];
        let u_dot_a = {
            let aa = ap.to_array();
            let mut acc = S::zero();
            for k in 0..6 {
                acc += u_vec[i][k] * aa[k];
            }
            acc
        };
        qdd[i] = (u_sc[i] - u_dot_a) / d[i];
        a[i] = ap + model.subspace(i).scale(qdd[i]);
    }
}

/// Reusable buffers for [`forward_dynamics_into`]: an RNEA workspace for
/// the bias sweep plus the residual vector.
#[derive(Debug, Clone)]
pub struct FdWorkspace<S> {
    rnea: RneaWorkspace<S>,
    zero_qdd: Vec<S>,
    residual: Vec<S>,
}

impl<S: Scalar> Default for FdWorkspace<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> FdWorkspace<S> {
    /// An empty workspace; the first call sizes every buffer.
    pub fn new() -> Self {
        Self {
            rnea: RneaWorkspace::new(),
            zero_qdd: Vec::new(),
            residual: Vec::new(),
        }
    }

    /// A workspace pre-sized for `model`, so even the first call through
    /// it is allocation-free.
    pub fn for_model(model: &DynamicsModel<S>) -> Self {
        let mut ws = Self::new();
        ws.zero_qdd.resize(model.dof(), S::zero());
        ws.residual.resize(model.dof(), S::zero());
        ws
    }
}

/// Allocation-free forward dynamics against a *precomputed* `M⁻¹`:
/// `q̈ = M⁻¹ (τ − C(q, q̇))`, with the bias `C` from an RNEA sweep at
/// `q̈ = 0` — exactly the composition the accelerator datapath uses (the
/// paper's Figure 9 interface takes `M⁻¹` as a kernel input, and Dadu-RBD
/// folds the same MAC stage into the multifunction pipeline).
///
/// The allocating [`forward_dynamics`] remains the from-scratch CRBA+LDLT
/// oracle; this variant is the serving-path kernel.
///
/// # Panics
///
/// Panics if slice lengths or `minv` dimensions differ from
/// `model.dof()`.
pub fn forward_dynamics_into<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    tau: &[S],
    minv: &MatN<S>,
    ws: &mut FdWorkspace<S>,
    qdd: &mut [S],
) {
    let n = model.dof();
    assert_eq!(tau.len(), n, "tau length mismatch");
    assert_eq!(qdd.len(), n, "qdd length mismatch");
    assert_eq!((minv.rows(), minv.cols()), (n, n), "minv shape mismatch");
    ws.zero_qdd.resize(n, S::zero());
    ws.residual.resize(n, S::zero());
    rnea_into(model, q, qd, &ws.zero_qdd, &mut ws.rnea);
    for i in 0..n {
        ws.residual[i] = tau[i] - ws.rnea.tau[i];
    }
    for i in 0..n {
        let mut acc = S::zero();
        for k in 0..n {
            acc += minv[(i, k)] * ws.residual[k];
        }
        qdd[i] = acc;
    }
}

trait Mat6Ext<S> {
    fn mul_scalar(self, s: S) -> Self;
}

impl<S: Scalar> Mat6Ext<S> for Mat6<S> {
    fn mul_scalar(mut self, s: S) -> Self {
        for row in &mut self.m {
            for x in row {
                *x *= s;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rnea::rnea;
    use robo_model::{robots, JointType};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn forward_inverse_round_trip() {
        // RNEA(q, q̇, FD(q, q̇, τ)) = τ.
        for robot in [robots::iiwa14(), robots::hyq()] {
            let model = DynamicsModel::<f64>::new(&robot);
            let n = model.dof();
            let mut seed = 13;
            let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let qd: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let tau: Vec<f64> = (0..n).map(|_| 5.0 * lcg(&mut seed)).collect();
            let qdd = forward_dynamics(&model, &q, &qd, &tau).unwrap();
            let back = rnea(&model, &q, &qd, &qdd).tau;
            for i in 0..n {
                assert!((back[i] - tau[i]).abs() < 1e-8, "joint {i}");
            }
        }
    }

    #[test]
    fn aba_matches_crba_route() {
        for robot in [
            robots::iiwa14(),
            robots::hyq(),
            robots::atlas(),
            robots::serial_chain(4, JointType::PrismaticZ),
        ] {
            let model = DynamicsModel::<f64>::new(&robot);
            let n = model.dof();
            let mut seed = 77;
            let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let qd: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
            let tau: Vec<f64> = (0..n).map(|_| 3.0 * lcg(&mut seed)).collect();
            let via_crba = forward_dynamics(&model, &q, &qd, &tau).unwrap();
            let via_aba = aba(&model, &q, &qd, &tau);
            for i in 0..n {
                assert!(
                    (via_crba[i] - via_aba[i]).abs() < 1e-7,
                    "{}: joint {i}: {} vs {}",
                    robot.name(),
                    via_crba[i],
                    via_aba[i]
                );
            }
        }
    }

    #[test]
    fn free_fall_pendulum_accelerates() {
        // A horizontal pendulum under gravity must accelerate downward.
        let robot = robo_model::RobotBuilder::new("pend")
            .link("rod", None, JointType::RevoluteY)
            .uniform_rod_inertia(1.0, 1.0)
            .build()
            .unwrap();
        let model = DynamicsModel::<f64>::new(&robot);
        let qdd = aba(&model, &[std::f64::consts::FRAC_PI_2], &[0.0], &[0.0]);
        assert!(qdd[0].abs() > 1.0, "expected gravity-driven acceleration");
    }

    #[test]
    fn gravity_compensation_holds_still() {
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let q = vec![0.3, -0.5, 0.8, -1.0, 0.2, 0.7, -0.1];
        let zero = vec![0.0; 7];
        let hold = rnea(&model, &q, &zero, &zero).tau;
        let qdd = aba(&model, &q, &zero, &hold);
        assert!(qdd.iter().all(|a| a.abs() < 1e-8));
    }
}
