//! The Composite Rigid Body Algorithm: joint-space mass matrix `M(q)` and
//! its inverse `M⁻¹`, the matrix multiplied in step 3 of the paper's
//! Algorithm 1.

use crate::DynamicsModel;
use robo_spatial::{FactorizeError, Force, MatN, Scalar};

/// Computes the joint-space mass matrix `M(q)` (symmetric positive
/// definite) with the Composite Rigid Body Algorithm.
///
/// # Panics
///
/// Panics if `q.len() != model.dof()`.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{mass_matrix, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// let m = mass_matrix(&model, &[0.0; 7]);
/// assert!(m.is_symmetric(1e-10));
/// ```
pub fn mass_matrix<S: Scalar>(model: &DynamicsModel<S>, q: &[S]) -> MatN<S> {
    let n = model.dof();
    assert_eq!(q.len(), n, "q length mismatch");

    // Composite inertias: start from the link inertias, then sweep tip →
    // base transforming each child composite into its parent frame:
    // Ic_λ += Xᵀ Ic X (dense 6×6).
    let x: Vec<_> = (0..n).map(|i| model.joint_transform(i, q[i])).collect();
    let mut ic: Vec<_> = (0..n).map(|i| model.inertia(i).to_mat6()).collect();
    for i in (0..n).rev() {
        if let Some(p) = model.parent(i) {
            let xm = x[i].to_mat6();
            let contribution = xm.transpose() * ic[i] * xm;
            ic[p] = ic[p] + contribution;
        }
    }

    let mut m = MatN::zeros(n, n);
    for i in 0..n {
        let s_i = model.subspace(i);
        // F = Ic_i S_i.
        let mut f = Force::from_array(ic[i].mul_array(s_i.to_array()));
        m[(i, i)] = s_i.dot(f);
        let mut j = i;
        while let Some(p) = model.parent(j) {
            f = x[j].tr_apply_force(f);
            j = p;
            let hij = model.subspace(j).dot(f);
            m[(i, j)] = hij;
            m[(j, i)] = hij;
        }
    }
    m
}

/// Computes `M⁻¹(q)` via LDLᵀ (the quantity the paper notes is "computed
/// earlier in the optimization process" and fed to the accelerator).
///
/// # Examples
///
/// ```
/// use robo_dynamics::{mass_matrix, mass_matrix_inverse, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// let q = [0.4; 7];
/// let minv = mass_matrix_inverse(&model, &q)?;
/// let eye = mass_matrix(&model, &q).mul_mat(&minv);
/// assert!(eye.max_abs_diff(&robo_spatial::MatN::identity(7)) < 1e-8);
/// # Ok::<(), robo_spatial::FactorizeError>(())
/// ```
///
/// # Errors
///
/// Returns [`FactorizeError`] if the mass matrix is not positive definite
/// (which indicates an invalid model, e.g. zero inertias).
pub fn mass_matrix_inverse<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
) -> Result<MatN<S>, FactorizeError> {
    mass_matrix(model, q).inverse_spd()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rnea::rnea;
    use robo_model::{robots, JointType};
    use robo_spatial::Vec3;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn mass_matrix_is_spd() {
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let mut seed = 3;
        let q: Vec<f64> = (0..7).map(|_| lcg(&mut seed)).collect();
        let m = mass_matrix(&model, &q);
        assert!(m.is_symmetric(1e-10));
        assert!(m.ldlt().is_ok(), "mass matrix must be positive definite");
    }

    #[test]
    fn matches_rnea_columns() {
        // Column j of M equals RNEA(q, 0, e_j) in zero gravity.
        let robot = robots::hyq();
        let model = DynamicsModel::<f64>::with_gravity(&robot, Vec3::zero());
        let n = model.dof();
        let mut seed = 9;
        let q: Vec<f64> = (0..n).map(|_| lcg(&mut seed)).collect();
        let zero = vec![0.0; n];
        let m = mass_matrix(&model, &q);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = rnea(&model, &q, &zero, &e).tau;
            for i in 0..n {
                assert!(
                    (m[(i, j)] - col[i]).abs() < 1e-9,
                    "M[{i},{j}] = {} vs RNEA {}",
                    m[(i, j)],
                    col[i]
                );
            }
        }
    }

    #[test]
    fn inverse_multiplies_to_identity() {
        let model = DynamicsModel::<f64>::new(&robots::atlas());
        let n = model.dof();
        let mut seed = 21;
        let q: Vec<f64> = (0..n).map(|_| 0.5 * lcg(&mut seed)).collect();
        let m = mass_matrix(&model, &q);
        let minv = mass_matrix_inverse(&model, &q).unwrap();
        let eye = m.mul_mat(&minv);
        assert!(eye.max_abs_diff(&MatN::identity(n)) < 1e-8);
    }

    #[test]
    fn kinetic_energy_quadratic_form() {
        // T = ½ q̇ᵀ M q̇ must match the link-wise kinetic energy sum.
        let robot = robots::serial_chain(5, JointType::RevoluteY);
        let model = DynamicsModel::<f64>::new(&robot);
        let mut seed = 31;
        let q: Vec<f64> = (0..5).map(|_| lcg(&mut seed)).collect();
        let qd: Vec<f64> = (0..5).map(|_| lcg(&mut seed)).collect();
        let m = mass_matrix(&model, &q);
        let mqd = m.mul_vec(&qd);
        let t_quad: f64 = 0.5 * qd.iter().zip(&mqd).map(|(a, b)| a * b).sum::<f64>();
        let t_links = crate::rnea::kinetic_energy(&model, &q, &qd);
        assert!((t_quad - t_links).abs() < 1e-9);
    }
}
