//! Analytical derivatives of rigid body dynamics — the paper's key kernel.
//!
//! Implements Algorithm 1:
//!
//! 1. `v, a, f = InverseDynamics(q, q̇, q̈)` — [`crate::rnea`];
//! 2. `∂τ/∂u = ∇InverseDynamics(q̇, v, a, f)` for `u = {q, q̇}` —
//!    [`rnea_derivatives`], line-by-line analytical derivatives of the RNEA
//!    (after Carpentier & Mansard);
//! 3. `∂q̈/∂u = −M⁻¹ ∂τ/∂u` — [`dynamics_gradient_from_qdd`].
//!
//! The structure here deliberately mirrors the accelerator's datapaths:
//! step 2 runs one independent *datapath* per joint `j` computing the
//! partial derivatives of every link quantity with respect to `q_j` and
//! `q̇_j`. The paper's accelerator instantiates these datapaths as parallel
//! hardware (Figure 8); here they are a loop, but the per-datapath code is
//! the exact computation each hardware lane performs.
//!
//! A key identity keeps the derivative of the joint transform free: for a
//! 1-DoF joint with subspace `S`,
//!
//! ```text
//! (∂X/∂q) m   = −S ×  (X m)
//! (∂X/∂q)ᵀ f  =  Xᵀ (S ×* f)
//! ```
//!
//! so the derivative seeds reuse the same `X·` and cross-product functional
//! units as the main pass — which is why the hardware template needs no
//! extra transform units for ∇ID.

use crate::{forward_dynamics, mass_matrix, rnea_into, DynamicsModel, RneaCache, RneaWorkspace};
use robo_spatial::{FactorizeError, Force, MatN, Motion, Scalar};

/// The gradient of inverse dynamics: `∂τ/∂q` and `∂τ/∂q̇`, each `n×n` with
/// rows indexed by output torque and columns by input joint.
#[derive(Debug, Clone)]
pub struct InverseDynamicsGradient<S> {
    /// `∂τ/∂q`.
    pub dtau_dq: MatN<S>,
    /// `∂τ/∂q̇`.
    pub dtau_dqd: MatN<S>,
}

/// Computes the analytical gradient of inverse dynamics (Algorithm 1,
/// step 2) from the RNEA's intermediate quantities.
///
/// `cache` must come from [`crate::rnea`] evaluated at the same `(q, q̇)` (and the
/// `q̈` about which the gradient is taken).
///
/// # Examples
///
/// ```
/// use robo_dynamics::{rnea, rnea_derivatives, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// let (q, qd, qdd) = ([0.2; 7], [0.1; 7], [0.0; 7]);
/// let cache = rnea(&model, &q, &qd, &qdd).cache;
/// let grad = rnea_derivatives(&model, &qd, &cache);
/// assert_eq!((grad.dtau_dq.rows(), grad.dtau_dq.cols()), (7, 7));
/// ```
///
/// # Panics
///
/// Panics if `qd.len() != model.dof()` or the cache size mismatches.
pub fn rnea_derivatives<S: Scalar>(
    model: &DynamicsModel<S>,
    qd: &[S],
    cache: &RneaCache<S>,
) -> InverseDynamicsGradient<S> {
    let mut ws = GradWorkspace::new();
    rnea_gradient_into(model, qd, cache, &mut ws);
    InverseDynamicsGradient {
        dtau_dq: ws.dtau_dq,
        dtau_dqd: ws.dtau_dqd,
    }
}

/// Reusable scratch buffers (and outputs) for the gradient pipeline:
/// [`rnea_gradient_into`] and [`dynamics_gradient_into`].
///
/// Constructing the workspace allocates; every subsequent `_into` call
/// through it (at the same or smaller degrees of freedom) performs **zero
/// heap allocations**. Outputs are the public matrix fields; which of them
/// are valid depends on the entry point used.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{
///     dynamics_gradient_from_qdd, dynamics_gradient_into, mass_matrix, DynamicsModel,
///     GradWorkspace,
/// };
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// let (q, qd, qdd) = (vec![0.1; 7], vec![0.2; 7], vec![0.3; 7]);
/// let minv = mass_matrix(&model, &q).inverse_spd().unwrap();
/// let mut ws = GradWorkspace::new();
/// for _ in 0..3 {
///     dynamics_gradient_into(&model, &q, &qd, &qdd, &minv, &mut ws);
/// }
/// let fresh = dynamics_gradient_from_qdd(&model, &q, &qd, &qdd, &minv);
/// assert_eq!(ws.dqdd_dq, fresh.dqdd_dq);
/// ```
#[derive(Debug, Clone)]
pub struct GradWorkspace<S> {
    /// Step-1 workspace; `rnea.cache`/`rnea.tau` are valid outputs after
    /// [`dynamics_gradient_into`].
    pub rnea: RneaWorkspace<S>,
    /// Output `∂τ/∂q`.
    pub dtau_dq: MatN<S>,
    /// Output `∂τ/∂q̇`.
    pub dtau_dqd: MatN<S>,
    /// Output `∂q̈/∂q` (valid after [`dynamics_gradient_into`]).
    pub dqdd_dq: MatN<S>,
    /// Output `∂q̈/∂q̇` (valid after [`dynamics_gradient_into`]).
    pub dqdd_dqd: MatN<S>,
    dv_q: Vec<Motion<S>>,
    da_q: Vec<Motion<S>>,
    df_q: Vec<Force<S>>,
    dv_qd: Vec<Motion<S>>,
    da_qd: Vec<Motion<S>>,
    df_qd: Vec<Force<S>>,
}

impl<S: Scalar> Default for GradWorkspace<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> GradWorkspace<S> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            rnea: RneaWorkspace::new(),
            dtau_dq: MatN::zeros(0, 0),
            dtau_dqd: MatN::zeros(0, 0),
            dqdd_dq: MatN::zeros(0, 0),
            dqdd_dqd: MatN::zeros(0, 0),
            dv_q: Vec::new(),
            da_q: Vec::new(),
            df_q: Vec::new(),
            dv_qd: Vec::new(),
            da_qd: Vec::new(),
            df_qd: Vec::new(),
        }
    }

    /// A workspace pre-sized for `model`, so even the first call through it
    /// is allocation-free.
    pub fn for_model(model: &DynamicsModel<S>) -> Self {
        let n = model.dof();
        Self {
            rnea: RneaWorkspace::for_model(model),
            dtau_dq: MatN::zeros(n, n),
            dtau_dqd: MatN::zeros(n, n),
            dqdd_dq: MatN::zeros(n, n),
            dqdd_dqd: MatN::zeros(n, n),
            dv_q: vec![Motion::zero(); n],
            da_q: vec![Motion::zero(); n],
            df_q: vec![Force::zero(); n],
            dv_qd: vec![Motion::zero(); n],
            da_qd: vec![Motion::zero(); n],
            df_qd: vec![Force::zero(); n],
        }
    }

    /// Consumes the workspace, yielding the last
    /// [`dynamics_gradient_into`] result without copying.
    pub fn into_dynamics_gradient(self) -> DynamicsGradient<S> {
        DynamicsGradient {
            dqdd_dq: self.dqdd_dq,
            dqdd_dqd: self.dqdd_dqd,
            id_gradient: InverseDynamicsGradient {
                dtau_dq: self.dtau_dq,
                dtau_dqd: self.dtau_dqd,
            },
        }
    }
}

/// Computes the inverse-dynamics gradient (Algorithm 1, step 2) into a
/// reusable workspace: the allocation-free core of [`rnea_derivatives`].
/// Results land in `ws.dtau_dq` / `ws.dtau_dqd`, bit-identical to the
/// allocating entry point.
///
/// # Panics
///
/// Panics if `qd.len() != model.dof()` or the cache size mismatches.
pub fn rnea_gradient_into<S: Scalar>(
    model: &DynamicsModel<S>,
    qd: &[S],
    cache: &RneaCache<S>,
    ws: &mut GradWorkspace<S>,
) {
    let GradWorkspace {
        dtau_dq,
        dtau_dqd,
        dv_q,
        da_q,
        df_q,
        dv_qd,
        da_qd,
        df_qd,
        ..
    } = ws;
    rnea_gradient_core(
        model, qd, cache, dv_q, da_q, df_q, dv_qd, da_qd, df_qd, dtau_dq, dtau_dqd,
    );
}

#[allow(clippy::too_many_arguments)]
fn rnea_gradient_core<S: Scalar>(
    model: &DynamicsModel<S>,
    qd: &[S],
    cache: &RneaCache<S>,
    dv_q: &mut Vec<Motion<S>>,
    da_q: &mut Vec<Motion<S>>,
    df_q: &mut Vec<Force<S>>,
    dv_qd: &mut Vec<Motion<S>>,
    da_qd: &mut Vec<Motion<S>>,
    df_qd: &mut Vec<Force<S>>,
    dtau_dq: &mut MatN<S>,
    dtau_dqd: &mut MatN<S>,
) {
    let n = model.dof();
    assert_eq!(qd.len(), n, "qd length mismatch");
    assert_eq!(cache.x.len(), n, "cache size mismatch");

    dtau_dq.resize_zeroed(n, n);
    dtau_dqd.resize_zeroed(n, n);

    // One datapath per differentiation joint j. Both the ∂/∂q_j and ∂/∂q̇_j
    // lanes run over the same inputs, as in the hardware (Figure 8's paired
    // forward-pass blocks). The scratch vectors are re-zeroed at the top of
    // each datapath, so reused workspace contents cannot leak through.
    dv_q.resize(n, Motion::zero());
    da_q.resize(n, Motion::zero());
    df_q.resize(n, Force::zero());
    dv_qd.resize(n, Motion::zero());
    da_qd.resize(n, Motion::zero());
    df_qd.resize(n, Force::zero());

    for j in 0..n {
        for slot in 0..n {
            dv_q[slot] = Motion::zero();
            da_q[slot] = Motion::zero();
            df_q[slot] = Force::zero();
            dv_qd[slot] = Motion::zero();
            da_qd[slot] = Motion::zero();
            df_qd[slot] = Force::zero();
        }

        // Forward pass of the ∇ID datapath: links in the subtree of j.
        for i in 0..n {
            if !model.influences(j, i) {
                continue;
            }
            let x = &cache.x[i];
            let s = model.subspace(i);
            let s_qd = s.scale(qd[i]);
            let parent = model.parent(i);

            // Propagated terms X · ∂(·)_λ (zero when the parent is outside
            // the subtree, including when i == j).
            let (mut dv_q_i, mut dv_qd_i, mut da_q_i, mut da_qd_i) = match parent {
                Some(p) if model.influences(j, p) => (
                    x.apply_motion(dv_q[p]),
                    x.apply_motion(dv_qd[p]),
                    x.apply_motion(da_q[p]),
                    x.apply_motion(da_qd[p]),
                ),
                _ => (
                    Motion::zero(),
                    Motion::zero(),
                    Motion::zero(),
                    Motion::zero(),
                ),
            };

            if i == j {
                // Seeds: the only place ∂X/∂q and ∂(S q̇)/∂q̇ are nonzero.
                let v_parent = match parent {
                    Some(p) => cache.v[p],
                    None => Motion::zero(),
                };
                let a_parent = match parent {
                    Some(p) => cache.a[p],
                    None => model.base_acceleration(),
                };
                let xv = x.apply_motion(v_parent);
                let xa = x.apply_motion(a_parent);
                dv_q_i -= s.cross_motion(xv); // (∂X/∂q) v_λ = −S × (X v_λ)
                da_q_i -= s.cross_motion(xa);
                dv_qd_i += s; // ∂(S q̇_i)/∂q̇_j at i = j
                da_qd_i += cache.v[i].cross_motion(s); // ∂(v × S q̇)/∂q̇ direct term
            }

            // ∂a also picks up the ∂v × S q̇ chain term.
            da_q_i += dv_q_i.cross_motion(s_qd);
            da_qd_i += dv_qd_i.cross_motion(s_qd);

            // ∂f = I ∂a + ∂v ×* (I v) + v ×* (I ∂v).
            let inertia = model.inertia(i);
            let iv = inertia.apply(cache.v[i]);
            let df_q_i = inertia.apply(da_q_i)
                + dv_q_i.cross_force(iv)
                + cache.v[i].cross_force(inertia.apply(dv_q_i));
            let df_qd_i = inertia.apply(da_qd_i)
                + dv_qd_i.cross_force(iv)
                + cache.v[i].cross_force(inertia.apply(dv_qd_i));

            dv_q[i] = dv_q_i;
            dv_qd[i] = dv_qd_i;
            da_q[i] = da_q_i;
            da_qd[i] = da_qd_i;
            df_q[i] = df_q_i;
            df_qd[i] = df_qd_i;
        }

        // Backward pass: accumulate ∂f toward the base and read out ∂τ.
        for i in (0..n).rev() {
            dtau_dq[(i, j)] = model.subspace(i).dot(df_q[i]);
            dtau_dqd[(i, j)] = model.subspace(i).dot(df_qd[i]);
            if let Some(p) = model.parent(i) {
                let x = &cache.x[i];
                let mut dfp_q = x.tr_apply_force(df_q[i]);
                if i == j {
                    // (∂X/∂q)ᵀ f_i = Xᵀ (S ×* f_i), with f_i the fully
                    // accumulated backward-pass force.
                    let s = model.subspace(i);
                    dfp_q += x.tr_apply_force(s.cross_force(cache.f[i]));
                }
                let dfp_qd = x.tr_apply_force(df_qd[i]);
                df_q[p] += dfp_q;
                df_qd[p] += dfp_qd;
            }
        }
    }
}

/// The full forward-dynamics gradient (Algorithm 1's output), plus the
/// quantities computed on the way.
#[derive(Debug, Clone)]
pub struct DynamicsGradient<S> {
    /// `∂q̈/∂q`.
    pub dqdd_dq: MatN<S>,
    /// `∂q̈/∂q̇`.
    pub dqdd_dqd: MatN<S>,
    /// The inverse-dynamics gradient of step 2.
    pub id_gradient: InverseDynamicsGradient<S>,
}

/// Computes the forward-dynamics gradient kernel exactly as the accelerator
/// does (Algorithm 1), given `q̈` and `M⁻¹` "computed earlier in the
/// optimization process" (§5.1).
///
/// # Panics
///
/// Panics if slice lengths or matrix dimensions differ from `model.dof()`.
pub fn dynamics_gradient_from_qdd<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    qdd: &[S],
    minv: &MatN<S>,
) -> DynamicsGradient<S> {
    let mut ws = GradWorkspace::for_model(model);
    dynamics_gradient_into(model, q, qd, qdd, minv, &mut ws);
    ws.into_dynamics_gradient()
}

/// The full gradient kernel (Algorithm 1, steps 1–3) into a reusable
/// workspace: the allocation-free core of [`dynamics_gradient_from_qdd`].
/// Results land in `ws.dqdd_dq`, `ws.dqdd_dqd`, `ws.dtau_dq`, `ws.dtau_dqd`
/// (and `ws.rnea` holds the step-1 torques and cache), bit-identical to the
/// allocating entry point.
///
/// # Panics
///
/// Panics if slice lengths or matrix dimensions differ from `model.dof()`.
pub fn dynamics_gradient_into<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    qdd: &[S],
    minv: &MatN<S>,
    ws: &mut GradWorkspace<S>,
) {
    let n = model.dof();
    assert_eq!(minv.rows(), n, "minv dimension mismatch");
    assert_eq!(minv.cols(), n, "minv dimension mismatch");
    // Step 1: inverse dynamics at q̈.
    rnea_into(model, q, qd, qdd, &mut ws.rnea);
    // Step 2: ∇ID (split borrow: the RNEA cache is read-only input here).
    let GradWorkspace {
        rnea,
        dtau_dq,
        dtau_dqd,
        dqdd_dq,
        dqdd_dqd,
        dv_q,
        da_q,
        df_q,
        dv_qd,
        da_qd,
        df_qd,
    } = ws;
    rnea_gradient_core(
        model,
        qd,
        &rnea.cache,
        dv_q,
        da_q,
        df_q,
        dv_qd,
        da_qd,
        df_qd,
        dtau_dq,
        dtau_dqd,
    );
    // Step 3: ∂q̈/∂u = −M⁻¹ ∂τ/∂u, without materializing −M⁻¹.
    minv.neg_mul_mat_into(dtau_dq, dqdd_dq);
    minv.neg_mul_mat_into(dtau_dqd, dqdd_dqd);
}

/// Convenience entry point: computes `q̈` and `M⁻¹` itself (as the host
/// would earlier in the optimization), then runs the gradient kernel.
///
/// # Errors
///
/// Returns [`FactorizeError`] if the mass matrix is singular.
pub fn forward_dynamics_gradient<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    tau: &[S],
) -> Result<(Vec<S>, DynamicsGradient<S>), FactorizeError> {
    let qdd = forward_dynamics(model, q, qd, tau)?;
    let minv = mass_matrix(model, q).inverse_spd()?;
    let grad = dynamics_gradient_from_qdd(model, q, qd, &qdd, &minv);
    Ok((qdd, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{findiff, rnea};
    use robo_model::{robots, JointType, RobotModel};

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    fn rand_state(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut s = seed;
        let q = (0..n).map(|_| lcg(&mut s)).collect();
        let qd = (0..n).map(|_| lcg(&mut s)).collect();
        let third = (0..n).map(|_| 2.0 * lcg(&mut s)).collect();
        (q, qd, third)
    }

    fn check_id_gradient(robot: &RobotModel, seed: u64, tol: f64) {
        let model = DynamicsModel::<f64>::new(robot);
        let n = model.dof();
        let (q, qd, qdd) = rand_state(n, seed);
        let cache = rnea(&model, &q, &qd, &qdd).cache;
        let analytic = rnea_derivatives(&model, &qd, &cache);
        let numeric = findiff::rnea_gradient_fd(&model, &q, &qd, &qdd, 1e-6);
        let err_q = analytic.dtau_dq.max_abs_diff(&numeric.dtau_dq);
        let err_qd = analytic.dtau_dqd.max_abs_diff(&numeric.dtau_dqd);
        assert!(
            err_q < tol,
            "{}: ∂τ/∂q error {err_q:.3e} exceeds {tol:.1e}",
            robot.name()
        );
        assert!(
            err_qd < tol,
            "{}: ∂τ/∂q̇ error {err_qd:.3e} exceeds {tol:.1e}",
            robot.name()
        );
    }

    #[test]
    fn id_gradient_matches_finite_differences_iiwa() {
        check_id_gradient(&robots::iiwa14(), 101, 5e-5);
    }

    #[test]
    fn id_gradient_matches_finite_differences_quadruped() {
        check_id_gradient(&robots::hyq(), 202, 5e-5);
    }

    #[test]
    fn id_gradient_matches_finite_differences_humanoid() {
        check_id_gradient(&robots::atlas(), 303, 2e-4);
    }

    #[test]
    fn id_gradient_matches_finite_differences_prismatic() {
        check_id_gradient(&robots::serial_chain(5, JointType::PrismaticY), 404, 5e-5);
    }

    #[test]
    fn id_gradient_many_random_states() {
        for seed in 0..10 {
            check_id_gradient(&robots::iiwa14(), 1000 + seed, 1e-4);
        }
    }

    #[test]
    fn fd_gradient_matches_finite_differences() {
        for robot in [robots::iiwa14(), robots::hyq()] {
            let model = DynamicsModel::<f64>::new(&robot);
            let n = model.dof();
            let (q, qd, tau) = rand_state(n, 55);
            let (_, grad) = forward_dynamics_gradient(&model, &q, &qd, &tau).unwrap();
            let numeric = findiff::forward_dynamics_gradient_fd(&model, &q, &qd, &tau, 1e-6);
            let err_q = grad.dqdd_dq.max_abs_diff(&numeric.0);
            let err_qd = grad.dqdd_dqd.max_abs_diff(&numeric.1);
            assert!(err_q < 1e-3, "{}: ∂q̈/∂q error {err_q:.3e}", robot.name());
            assert!(err_qd < 1e-3, "{}: ∂q̈/∂q̇ error {err_qd:.3e}", robot.name());
        }
    }

    #[test]
    fn dtau_dqd_lower_triangular_structure() {
        // ∂τᵢ/∂q̇ⱼ can only be nonzero when i and j share a subtree path:
        // for a serial chain this means everywhere, but for the quadruped a
        // joint on one leg cannot affect another leg's torque.
        let model = DynamicsModel::<f64>::new(&robots::hyq());
        let n = model.dof();
        let (q, qd, qdd) = rand_state(n, 7);
        let cache = rnea(&model, &q, &qd, &qdd).cache;
        let g = rnea_derivatives(&model, &qd, &cache);
        // Joint 0 is on leg 1 (links 0-2); joint 5 is on leg 2 (links 3-5).
        assert_eq!(g.dtau_dq[(0, 5)], 0.0);
        assert_eq!(g.dtau_dq[(5, 0)], 0.0);
        assert_eq!(g.dtau_dqd[(3, 2)], 0.0);
    }

    #[test]
    fn gradient_of_mass_matrix_identity() {
        // ∂τ/∂q̈ = M: check our ∇ID is consistent with the mass matrix by
        // verifying τ(q̈ + e_k δ) − τ(q̈) = M e_k δ (RNEA affine structure) —
        // guards against the ∇ID being evaluated at the wrong q̈.
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let (q, qd, qdd) = rand_state(7, 99);
        let m = mass_matrix(&model, &q);
        let base = rnea(&model, &q, &qd, &qdd).tau;
        let delta = 1e-4;
        for k in 0..7 {
            let mut qdd2 = qdd.clone();
            qdd2[k] += delta;
            let t2 = rnea(&model, &q, &qd, &qdd2).tau;
            for i in 0..7 {
                assert!(((t2[i] - base[i]) / delta - m[(i, k)]).abs() < 1e-6);
            }
        }
    }
}
