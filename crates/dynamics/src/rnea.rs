//! Inverse dynamics: the Recursive Newton-Euler Algorithm (RNEA).
//!
//! This is Algorithm 2 of the paper (after Featherstone): a forward pass
//! propagating per-link spatial velocities, accelerations and forces
//! `(vᵢ, aᵢ, fᵢ)` from the base outward, then a backward pass accumulating
//! forces toward the base and reading out joint torques `τᵢ = Sᵢᵀ fᵢ`.

use crate::DynamicsModel;
use robo_spatial::{Force, Motion, Scalar, Transform};

/// Intermediate quantities produced by the RNEA, needed again by its
/// analytical derivatives (the `v, a, f` inputs of Algorithm 1, step 2).
#[derive(Debug, Clone)]
pub struct RneaCache<S> {
    /// Joint transforms `ᵢX_λᵢ(qᵢ)` for each link.
    pub x: Vec<Transform<S>>,
    /// Spatial velocities `vᵢ`, in link coordinates.
    pub v: Vec<Motion<S>>,
    /// Spatial accelerations `aᵢ` (including the gravity offset).
    pub a: Vec<Motion<S>>,
    /// Accumulated spatial forces `fᵢ` *after* the backward pass.
    pub f: Vec<Force<S>>,
}

/// The result of an inverse dynamics computation.
#[derive(Debug, Clone)]
pub struct RneaResult<S> {
    /// Joint torques `τ`.
    pub tau: Vec<S>,
    /// Intermediate quantities for derivative computations.
    pub cache: RneaCache<S>,
}

/// Reusable scratch buffers for [`rnea_into`].
///
/// Constructing the workspace allocates; every subsequent [`rnea_into`]
/// call through it (at the same or smaller degrees of freedom) performs
/// **zero heap allocations**. The buffers double as the outputs: after a
/// call, `tau` holds the joint torques and `cache` the intermediate
/// quantities.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{rnea, rnea_into, DynamicsModel, RneaWorkspace};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// let (q, qd, qdd) = (vec![0.1; 7], vec![0.2; 7], vec![0.3; 7]);
/// let mut ws = RneaWorkspace::new();
/// for _ in 0..3 {
///     rnea_into(&model, &q, &qd, &qdd, &mut ws);
/// }
/// assert_eq!(ws.tau, rnea(&model, &q, &qd, &qdd).tau);
/// ```
#[derive(Debug, Clone)]
pub struct RneaWorkspace<S> {
    /// Intermediate quantities (`x`, `v`, `a`, `f`), valid after a call.
    pub cache: RneaCache<S>,
    /// Joint torques `τ`, valid after a call.
    pub tau: Vec<S>,
}

impl<S: Scalar> Default for RneaWorkspace<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> RneaWorkspace<S> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            cache: RneaCache {
                x: Vec::new(),
                v: Vec::new(),
                a: Vec::new(),
                f: Vec::new(),
            },
            tau: Vec::new(),
        }
    }

    /// A workspace pre-sized for `model`, so even the first call through it
    /// is allocation-free.
    pub fn for_model(model: &DynamicsModel<S>) -> Self {
        let n = model.dof();
        Self {
            cache: RneaCache {
                x: Vec::with_capacity(n),
                v: vec![Motion::zero(); n],
                a: vec![Motion::zero(); n],
                f: vec![Force::zero(); n],
            },
            tau: vec![S::zero(); n],
        }
    }

    /// Consumes the workspace, yielding the last call's result without
    /// copying.
    pub fn into_result(self) -> RneaResult<S> {
        RneaResult {
            tau: self.tau,
            cache: self.cache,
        }
    }

    /// Sets buffer lengths for a `n`-dof computation. Every element is
    /// overwritten by the subsequent passes, so stale values are fine.
    fn reset(&mut self, n: usize) {
        self.cache.x.clear();
        self.cache.v.resize(n, Motion::zero());
        self.cache.a.resize(n, Motion::zero());
        self.cache.f.resize(n, Force::zero());
        self.tau.resize(n, S::zero());
    }
}

/// Computes inverse dynamics: joint torques that realize accelerations
/// `qdd` at state `(q, qd)`, including gravity.
///
/// # Panics
///
/// Panics if the slice lengths differ from `model.dof()`.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{rnea, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// let zero = vec![0.0; 7];
/// // At rest, torques are pure gravity compensation.
/// let result = rnea(&model, &zero, &zero, &zero);
/// assert!(result.tau.iter().any(|t| t.abs() > 1e-3));
/// ```
pub fn rnea<S: Scalar>(model: &DynamicsModel<S>, q: &[S], qd: &[S], qdd: &[S]) -> RneaResult<S> {
    rnea_with_external(model, q, qd, qdd, None)
}

/// Inverse dynamics with optional external forces applied to each link
/// (expressed in link-local coordinates), as in Algorithm 2's
/// `f_external` term.
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`.
pub fn rnea_with_external<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    qdd: &[S],
    f_ext: Option<&[Force<S>]>,
) -> RneaResult<S> {
    let mut ws = RneaWorkspace::for_model(model);
    rnea_with_external_into(model, q, qd, qdd, f_ext, &mut ws);
    ws.into_result()
}

/// Inverse dynamics into a reusable workspace: the allocation-free core of
/// [`rnea`]. Results land in `ws.tau` and `ws.cache`, bit-identical to the
/// allocating entry points.
///
/// # Panics
///
/// Panics if the slice lengths differ from `model.dof()`.
pub fn rnea_into<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    qdd: &[S],
    ws: &mut RneaWorkspace<S>,
) {
    rnea_with_external_into(model, q, qd, qdd, None, ws);
}

/// Inverse dynamics with optional external link forces into a reusable
/// workspace. See [`rnea_into`].
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`.
pub fn rnea_with_external_into<S: Scalar>(
    model: &DynamicsModel<S>,
    q: &[S],
    qd: &[S],
    qdd: &[S],
    f_ext: Option<&[Force<S>]>,
    ws: &mut RneaWorkspace<S>,
) {
    let n = model.dof();
    assert_eq!(q.len(), n, "q length mismatch");
    assert_eq!(qd.len(), n, "qd length mismatch");
    assert_eq!(qdd.len(), n, "qdd length mismatch");
    if let Some(fe) = f_ext {
        assert_eq!(fe.len(), n, "f_ext length mismatch");
    }

    ws.reset(n);
    let RneaWorkspace { cache, tau } = ws;
    let (x, v, a, f) = (&mut cache.x, &mut cache.v, &mut cache.a, &mut cache.f);

    // Forward pass (Algorithm 2, lines 2-6).
    for i in 0..n {
        let xi = model.joint_transform(i, q[i]);
        let s = model.subspace(i);
        let s_qd = s.scale(qd[i]);
        let (vp, ap) = match model.parent(i) {
            Some(p) => (xi.apply_motion(v[p]), xi.apply_motion(a[p])),
            None => (Motion::zero(), xi.apply_motion(model.base_acceleration())),
        };
        v[i] = vp + s_qd;
        a[i] = ap + s.scale(qdd[i]) + v[i].cross_motion(s_qd);
        let iv = model.inertia(i).apply(v[i]);
        f[i] = model.inertia(i).apply(a[i]) + v[i].cross_force(iv);
        if let Some(fe) = f_ext {
            f[i] -= fe[i];
        }
        x.push(xi);
    }

    // Backward pass (lines 7-9).
    for i in (0..n).rev() {
        tau[i] = model.subspace(i).dot(f[i]);
        if let Some(p) = model.parent(i) {
            let fp = x[i].tr_apply_force(f[i]);
            f[p] += fp;
        }
    }
}

/// The nonlinear bias term `C(q, q̇)`: torques with `q̈ = 0` (Coriolis,
/// centrifugal and gravity effects). Used to form `M q̈ = τ − C`.
///
/// # Examples
///
/// ```
/// use robo_dynamics::{bias_torques, DynamicsModel};
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// // At rest the bias is pure gravity compensation.
/// let hold = bias_torques(&model, &[0.3; 7], &[0.0; 7]);
/// assert!(hold.iter().any(|t| t.abs() > 1.0));
/// ```
pub fn bias_torques<S: Scalar>(model: &DynamicsModel<S>, q: &[S], qd: &[S]) -> Vec<S> {
    let zero = vec![S::zero(); model.dof()];
    rnea(model, q, qd, &zero).tau
}

/// Total mechanical energy (kinetic + potential-equivalent check helper):
/// kinetic energy only, `½ Σ vᵢᵀ Iᵢ vᵢ`, in link coordinates.
pub fn kinetic_energy<S: Scalar>(model: &DynamicsModel<S>, q: &[S], qd: &[S]) -> S {
    let zero = vec![S::zero(); model.dof()];
    let res = rnea(model, q, qd, &zero);
    let mut e = S::zero();
    for i in 0..model.dof() {
        e += model.inertia(i).kinetic_energy(res.cache.v[i]);
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::{robots, JointType};
    use robo_spatial::Vec3;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[test]
    fn single_pendulum_gravity_torque() {
        // One revolute-y link: a rod of mass m, COM at l/2 along z.
        // Hanging straight "up" along +z with gravity -z, at q the torque
        // about y is m·g·(l/2)·... at q=0 the COM is directly above the
        // joint: zero torque. At q = π/2 the rod is horizontal: torque =
        // m g l/2.
        let robot = robo_model::RobotBuilder::new("pend")
            .link("rod", None, JointType::RevoluteY)
            .uniform_rod_inertia(2.0, 1.0)
            .build()
            .unwrap();
        let model = DynamicsModel::<f64>::new(&robot);
        let tau0 = rnea(&model, &[0.0], &[0.0], &[0.0]).tau[0];
        assert!(tau0.abs() < 1e-12, "upright: no gravity torque, got {tau0}");
        let tau90 = rnea(&model, &[std::f64::consts::FRAC_PI_2], &[0.0], &[0.0]).tau[0];
        let expected = 2.0 * 9.81 * 0.5;
        assert!(
            (tau90.abs() - expected).abs() < 1e-9,
            "horizontal torque {tau90} vs ±{expected}"
        );
    }

    #[test]
    fn zero_gravity_rest_needs_no_torque() {
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::with_gravity(&robot, Vec3::zero());
        let zero = vec![0.0; 7];
        let tau = rnea(&model, &zero, &zero, &zero).tau;
        assert!(tau.iter().all(|t| t.abs() < 1e-12));
    }

    #[test]
    fn torque_linear_in_qdd_at_fixed_state() {
        // τ(q, q̇, q̈) = M(q) q̈ + C(q, q̇): affine in q̈.
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let mut seed = 5;
        let q: Vec<f64> = (0..7).map(|_| lcg(&mut seed)).collect();
        let qd: Vec<f64> = (0..7).map(|_| lcg(&mut seed)).collect();
        let a1: Vec<f64> = (0..7).map(|_| lcg(&mut seed)).collect();
        let a2: Vec<f64> = (0..7).map(|_| lcg(&mut seed)).collect();
        let mid: Vec<f64> = a1.iter().zip(&a2).map(|(x, y)| 0.5 * (x + y)).collect();
        let t1 = rnea(&model, &q, &qd, &a1).tau;
        let t2 = rnea(&model, &q, &qd, &a2).tau;
        let tm = rnea(&model, &q, &qd, &mid).tau;
        for i in 0..7 {
            assert!((tm[i] - 0.5 * (t1[i] + t2[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn external_force_changes_torque() {
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let zero = vec![0.0; 7];
        let mut fe = vec![Force::zero(); 7];
        fe[6] = Force::new(Vec3::new(1.0, 2.0, 3.0), Vec3::new(4.0, 5.0, 6.0));
        let with = rnea_with_external(&model, &zero, &zero, &zero, Some(&fe)).tau;
        let without = rnea(&model, &zero, &zero, &zero).tau;
        assert!((0..7).any(|i| (with[i] - without[i]).abs() > 1e-6));
    }

    #[test]
    fn kinetic_energy_zero_at_rest_and_positive_in_motion() {
        let model = DynamicsModel::<f64>::new(&robots::hyq());
        let zero = vec![0.0; 12];
        assert_eq!(kinetic_energy(&model, &zero, &zero), 0.0);
        let qd = vec![0.5; 12];
        assert!(kinetic_energy(&model, &zero, &qd) > 0.0);
    }

    #[test]
    fn power_balance() {
        // In zero gravity with no external forces, instantaneous joint power
        // τᵀq̇ equals the rate of change of kinetic energy dT/dt (verified by
        // finite differences over a short free-motion step).
        let robot = robots::serial_chain(3, JointType::RevoluteZ);
        let model = DynamicsModel::<f64>::with_gravity(&robot, Vec3::zero());
        let mut seed = 11;
        let q: Vec<f64> = (0..3).map(|_| lcg(&mut seed)).collect();
        let qd: Vec<f64> = (0..3).map(|_| lcg(&mut seed)).collect();
        let qdd: Vec<f64> = (0..3).map(|_| lcg(&mut seed)).collect();
        let tau = rnea(&model, &q, &qd, &qdd).tau;
        let power: f64 = tau.iter().zip(&qd).map(|(t, v)| t * v).sum();
        let h = 1e-6;
        let q2: Vec<f64> = q.iter().zip(&qd).map(|(a, b)| a + h * b).collect();
        let qd2: Vec<f64> = qd.iter().zip(&qdd).map(|(a, b)| a + h * b).collect();
        let e1 = kinetic_energy(&model, &q, &qd);
        let e2 = kinetic_energy(&model, &q2, &qd2);
        let dedt = (e2 - e1) / h;
        assert!((power - dedt).abs() < 1e-4, "power {power} vs dE/dt {dedt}");
    }

    #[test]
    #[should_panic(expected = "q length mismatch")]
    fn length_mismatch_panics() {
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let _ = rnea(&model, &[0.0], &[0.0; 7], &[0.0; 7]);
    }
}
