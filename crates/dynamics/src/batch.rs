//! The shared batch engine: a persistent thread pool with per-worker
//! workspaces.
//!
//! The paper's CPU baseline "was parallelized across the trajectory time
//! steps using a thread pool so that the overheads of creating and joining
//! threads did not impact the timing of the region of interest" (§6.1).
//! [`ThreadPool`] is that pool: workers live for the pool's lifetime and
//! pull batch indices from a shared atomic counter, so uneven item costs
//! balance out.
//!
//! [`BatchEngine`] layers the workspace discipline of this crate on top:
//! [`BatchEngine::run_with_state`] gives every participating worker its own
//! mutable state (typically a [`GradWorkspace`] or an accelerator-simulator
//! clone) built once per batch, so the steady-state per-item work is
//! allocation-free while items stay data-parallel. Every batch-shaped
//! consumer in the workspace — the CPU baseline, the coprocessor
//! round-trip, the iLQR backward-pass linearization — routes through the
//! process-wide [`BatchEngine::global`] instance.

use crate::{
    dynamics_gradient_into, DynamicsGradient, DynamicsModel, GradWorkspace, InverseDynamicsGradient,
};
use robo_spatial::{MatN, Scalar};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

enum Message {
    Run(Job),
    Shutdown,
}

/// A fixed-size pool of persistent worker threads.
///
/// Dropping the pool sends every worker a shutdown message and joins the
/// threads, so no worker outlives the pool.
///
/// # Examples
///
/// ```
/// use robo_dynamics::batch::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let out = pool.run(100, |i| i * i);
/// assert_eq!(out[9], 81);
/// ```
#[derive(Debug)]
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    sender: mpsc::Sender<Message>,
}

/// Raw pointer to a result slot, sendable across the worker boundary. Each
/// index is claimed by exactly one worker via the shared atomic counter, so
/// writes through it never alias.
struct SendPtr<T>(*mut Option<T>);

// SAFETY: the pointer is only ever written through `SendPtr::write`, whose
// contract (each slot claimed by exactly one worker, buffer outliving all
// writers) makes cross-thread transfer of the raw pointer sound; `T: Send`
// carries the payload's own requirement.
unsafe impl<T: Send> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Writes `value` into slot `i`.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds and claimed by exactly one caller, and the
    /// backing buffer must stay untouched until all writers are done.
    unsafe fn write(&self, i: usize, value: T) {
        *self.0.add(i) = Some(value);
    }
}

/// Signals batch completion when dropped — even when the job panics — so
/// the dispatching thread can never deadlock waiting for a dead job. The
/// notification happens while the mutex is held: the dispatcher may
/// invalidate the `(Mutex, Condvar)` pair the moment it observes the final
/// count, so notifying after unlocking could touch a freed condvar.
struct DoneGuard<'a>(&'a (Mutex<usize>, Condvar));

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        let (lock, cv) = self.0;
        let mut finished = lock.lock().expect("done counter poisoned");
        *finished += 1;
        cv.notify_all();
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "thread pool needs at least one worker");
        let (sender, receiver) = mpsc::channel::<Message>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|_| {
                let rx = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    let msg = {
                        let guard = rx.lock().expect("pool receiver poisoned");
                        guard.recv()
                    };
                    match msg {
                        Ok(Message::Run(job)) => {
                            // A panicking job must not kill the worker: the
                            // batch outcome is reported through the result
                            // slots (a missing result panics the caller),
                            // and the pool stays usable.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                        }
                        Ok(Message::Shutdown) | Err(_) => break,
                    }
                })
            })
            .collect();
        Self { workers, sender }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn with_default_size() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(0..count)` across the pool and returns the results in index
    /// order. The closure may borrow from the caller's stack — dispatch is
    /// scoped: this call does not return until every participating worker
    /// has finished.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while processing an item.
    pub fn run<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with_state(count, || (), move |(), i| f(i))
    }

    /// Like [`ThreadPool::run`], but every participating worker first
    /// builds a private mutable state with `init` (once per worker per
    /// batch) and threads it through its items — the mechanism behind
    /// reusable per-worker workspaces.
    ///
    /// Work is distributed dynamically through an atomic counter, so
    /// uneven item costs balance out.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while processing an item.
    pub fn run_with_state<W, T, I, F>(&self, count: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        let _span = robo_trace::span_items("batch.fanout", count);
        let mut results: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let next = AtomicUsize::new(0);
        let done = (Mutex::new(0usize), Condvar::new());

        let workers = self.workers.len().min(count);
        let base = results.as_mut_ptr();
        for _ in 0..workers {
            let slots = SendPtr(base);
            let (next, done, init, f) = (&next, &done, &init, &f);
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                // Declared first so it drops last: the worker's state (and
                // any borrow it holds) is torn down before completion is
                // signalled and the dispatcher's stack frame can unwind.
                let _guard = DoneGuard(done);
                let _span = robo_trace::span("batch.worker");
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let value = f(&mut state, i);
                    // SAFETY: `i < count` and each index is claimed exactly
                    // once; the dispatcher does not touch `results` until
                    // all workers signalled completion.
                    unsafe { slots.write(i, value) };
                }
            });
            // SAFETY: the job is erased to 'static to travel through the
            // channel, but this function blocks until every dispatched job
            // has run to completion (DoneGuard fires even on panic), so the
            // borrowed environment strictly outlives the job.
            let job: Job = unsafe { std::mem::transmute(job) };
            self.sender
                .send(Message::Run(job))
                .expect("pool workers gone");
        }

        let (lock, cv) = &done;
        let mut finished = lock.lock().expect("done counter poisoned");
        while *finished < workers {
            finished = cv.wait(finished).expect("done counter poisoned");
        }
        drop(finished);

        results
            .into_iter()
            .map(|x| x.expect("worker panicked before storing a result"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        for _ in &self.workers {
            let _ = self.sender.send(Message::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A borrowed view of one dynamics-gradient evaluation point, as consumed
/// by [`BatchEngine::dynamics_gradient_batch`].
#[derive(Debug, Clone, Copy)]
pub struct GradientState<'a, S> {
    /// Joint positions.
    pub q: &'a [S],
    /// Joint velocities.
    pub qd: &'a [S],
    /// Joint accelerations the gradient is taken about.
    pub qdd: &'a [S],
    /// The mass-matrix inverse `M⁻¹` (host-computed, §5.1).
    pub minv: &'a MatN<S>,
}

/// The shared batch-evaluation engine: a [`ThreadPool`] plus the
/// per-worker-workspace convention.
///
/// # Examples
///
/// ```
/// use robo_dynamics::batch::BatchEngine;
///
/// let engine = BatchEngine::new(2);
/// let squares = engine.run(8, |i| i * i);
/// assert_eq!(squares[7], 49);
/// ```
#[derive(Debug)]
pub struct BatchEngine {
    pool: ThreadPool,
}

impl BatchEngine {
    /// An engine with `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: ThreadPool::new(threads),
        }
    }

    /// An engine sized to the machine's available parallelism.
    pub fn with_default_size() -> Self {
        Self {
            pool: ThreadPool::with_default_size(),
        }
    }

    /// The process-wide shared engine, created on first use and sized to
    /// the machine's available parallelism. All library consumers (CPU
    /// baseline, coprocessor streaming, trajectory optimization) share it,
    /// so the process runs one pool rather than one per subsystem.
    pub fn global() -> &'static BatchEngine {
        static GLOBAL: OnceLock<BatchEngine> = OnceLock::new();
        GLOBAL.get_or_init(BatchEngine::with_default_size)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The underlying pool.
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Runs a stateless batch; see [`ThreadPool::run`].
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while processing an item.
    pub fn run<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.pool.run(count, f)
    }

    /// Runs a batch with per-worker state; see
    /// [`ThreadPool::run_with_state`]. `init` runs once per participating
    /// worker per batch, so per-item costs are amortized across the batch.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while processing an item.
    pub fn run_with_state<W, T, I, F>(&self, count: usize, init: I, f: F) -> Vec<T>
    where
        T: Send,
        I: Fn() -> W + Sync,
        F: Fn(&mut W, usize) -> T + Sync,
    {
        self.pool.run_with_state(count, init, f)
    }

    /// Evaluates the dynamics-gradient kernel (Algorithm 1) for a batch of
    /// states in parallel, one reusable [`GradWorkspace`] per worker —
    /// the paper's §6.1 batch structure with allocation-free per-item work.
    ///
    /// # Panics
    ///
    /// Panics if any state's dimensions differ from `model.dof()`.
    pub fn dynamics_gradient_batch<S: Scalar>(
        &self,
        model: &DynamicsModel<S>,
        states: &[GradientState<'_, S>],
    ) -> Vec<DynamicsGradient<S>> {
        self.run_with_state(
            states.len(),
            || GradWorkspace::for_model(model),
            |ws, i| {
                let s = &states[i];
                dynamics_gradient_into(model, s.q, s.qd, s.qdd, s.minv, ws);
                DynamicsGradient {
                    dqdd_dq: ws.dqdd_dq.clone(),
                    dqdd_dqd: ws.dqdd_dqd.clone(),
                    id_gradient: InverseDynamicsGradient {
                        dtau_dq: ws.dtau_dq.clone(),
                        dtau_dqd: ws.dtau_dqd.clone(),
                    },
                }
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamics_gradient_from_qdd;
    use crate::mass_matrix;
    use robo_model::robots;

    #[test]
    fn computes_in_order() {
        let pool = ThreadPool::new(3);
        let out = pool.run(50, |i| 2 * i);
        assert_eq!(out.len(), 50);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 2 * i);
        }
    }

    #[test]
    fn empty_batch() {
        let pool = ThreadPool::new(2);
        let out: Vec<usize> = pool.run(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_smaller_than_pool() {
        let pool = ThreadPool::new(8);
        let out = pool.run(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn reusable_across_batches() {
        let pool = ThreadPool::new(4);
        for round in 0..5 {
            let out = pool.run(16, |i| i * round);
            assert_eq!(out[3], 3 * round);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn scoped_run_borrows_caller_data() {
        let pool = ThreadPool::new(4);
        let data: Vec<usize> = (0..64).collect();
        let out = pool.run(data.len(), |i| data[i] * 3);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3 * i);
        }
    }

    #[test]
    fn run_with_state_inits_once_per_participating_worker() {
        let pool = ThreadPool::new(4);
        let inits = AtomicUsize::new(0);
        let out = pool.run_with_state(
            100,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |count, i| {
                *count += 1;
                i
            },
        );
        assert_eq!(out.len(), 100);
        assert_eq!(inits.load(Ordering::SeqCst), 4);

        // A single-item batch engages exactly one worker.
        inits.store(0, Ordering::SeqCst);
        let out = pool.run_with_state(
            1,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
            },
            |(), i| i,
        );
        assert_eq!(out, vec![0]);
        assert_eq!(inits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn empty_batch_with_state_skips_init() {
        let pool = ThreadPool::new(2);
        let inits = AtomicUsize::new(0);
        let out: Vec<usize> = pool.run_with_state(
            0,
            || {
                inits.fetch_add(1, Ordering::SeqCst);
            },
            |(), i| i,
        );
        assert!(out.is_empty());
        assert_eq!(inits.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn drop_sends_shutdown_and_joins_all_workers() {
        let pool = ThreadPool::new(4);
        let sender = pool.sender.clone();
        let _ = pool.run(8, |i| i);
        drop(pool);
        // Drop joined every worker, so the worker-held receiver is gone and
        // the channel reports disconnection. (If any worker were still
        // alive, join() inside drop would have blocked instead.)
        assert!(sender.send(Message::Shutdown).is_err());
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = ThreadPool::new(2);
        let batch = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(8, |i| {
                assert!(i != 3, "injected failure");
                i
            })
        }));
        assert!(batch.is_err(), "missing result must surface as a panic");
        // The workers caught the panic and are still serving.
        let out = pool.run(4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn engine_gradient_batch_matches_serial() {
        let robot = robots::iiwa14();
        let model = DynamicsModel::<f64>::new(&robot);
        let n = model.dof();
        type OwnedState = (Vec<f64>, Vec<f64>, Vec<f64>, MatN<f64>);
        let states: Vec<OwnedState> = (0..6)
            .map(|k| {
                let q: Vec<f64> = (0..n).map(|i| 0.1 * (i + k) as f64).collect();
                let qd: Vec<f64> = (0..n).map(|i| 0.05 * (i as f64) - 0.1).collect();
                let qdd = vec![0.2; n];
                let minv = mass_matrix(&model, &q).inverse_spd().unwrap();
                (q, qd, qdd, minv)
            })
            .collect();
        let views: Vec<GradientState<'_, f64>> = states
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();
        let engine = BatchEngine::new(3);
        let batch = engine.dynamics_gradient_batch(&model, &views);
        for (out, (q, qd, qdd, minv)) in batch.iter().zip(states.iter()) {
            let serial = dynamics_gradient_from_qdd(&model, q, qd, qdd, minv);
            assert_eq!(out.dqdd_dq, serial.dqdd_dq);
            assert_eq!(out.dqdd_dqd, serial.dqdd_dqd);
        }
    }

    #[test]
    fn global_engine_is_shared() {
        let a = BatchEngine::global() as *const _;
        let b = BatchEngine::global() as *const _;
        assert_eq!(a, b);
        assert!(BatchEngine::global().threads() >= 1);
    }
}
