//! The engine layer: *plan once, execute many*.
//!
//! The paper's methodology parameterizes a hardware template per robot
//! morphology once, then reuses the resulting datapath for every control
//! iteration (§4–5). This module is the software seam that mirrors that
//! discipline: every consumer of the dynamics-gradient kernel — the iLQR /
//! MPC linearization, the CPU baseline, the coprocessor stream, the
//! experiment harness, the CLI — obtains gradients through one trait,
//! [`GradientBackend`], instead of hand-wiring a specific kernel entry
//! point.
//!
//! Three families of backends implement the trait:
//!
//! * [`CpuAnalytic`] — the host's analytical workspace kernels
//!   ([`crate::dynamics_gradient_into`]), in any scalar type `S`;
//! * `AcceleratorBackend` (in `robo-sim`) — the morphology-customized
//!   accelerator simulation executing compiled netlists;
//! * [`FiniteDiff`] — a finite-difference oracle for validation.
//!
//! The trait boundary is `f64`: backends computing in another scalar type
//! (the accelerator's Q16.16, the Figure 12 sweep types) cast at the
//! boundary exactly as the hardware's I/O marshalling does (§6.2). Each
//! backend owns its warm workspaces, so `gradient_into` is allocation-free
//! in steady state; [`GradientBackend::fork`] hands each worker of the
//! shared [`BatchEngine`] a private instance over the same immutable plan.

use crate::batch::{BatchEngine, GradientState};
use crate::fd::{aba_into, AbaWorkspace};
use crate::rnea::rnea_into;
use crate::{
    dynamics_gradient_into, findiff, forward_dynamics, DynamicsGradient, DynamicsModel,
    GradWorkspace, InverseDynamicsGradient,
};
use robo_model::RobotModel;
use robo_spatial::{ExecTier, MatN, Scalar, WideScalar, WideVisit};
use std::sync::Arc;

/// Error from an engine-boundary gradient call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An input's length (or matrix dimension) disagrees with the plan's
    /// joint count.
    DimensionMismatch {
        /// Which input was malformed (`"q"`, `"qd"`, `"qdd"`, `"minv"`).
        what: &'static str,
        /// The backend's joint count.
        expected: usize,
        /// The offending dimension.
        got: usize,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(
                f,
                "dimension mismatch: `{what}` has dimension {got}, backend expects {expected}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The kernel-family axis: which rigid-body kernel a backend evaluates.
///
/// The source paper parameterizes one ∇ID datapath per robot; Dadu-RBD
/// shows the same morphology-pruned datapath profitably serves a *family*
/// of kernels on shared multifunctional pipelines. Every layer of this
/// stack — netlist generation (`generate_kernel_netlist` in
/// `robo-codegen`), the engine ([`DynamicsBackend::run_into`]), the plan
/// (`RobotPlan` in `robo-sim`), serving (`GradientRequest` in
/// `robo-serve`), and the CLI (`--kernel`) — is parameterized by this
/// enum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelKind {
    /// RNEA: joint torques `τ(q, q̇, q̈)`.
    InverseDynamics,
    /// Forward dynamics: joint accelerations `q̈ = M⁻¹(τ − C(q, q̇))`.
    ForwardDynamics,
    /// The dynamics gradient `∂q̈/∂q`, `∂q̈/∂q̇` (plus the ∇ID stage) —
    /// the paper's original workload.
    Gradient,
}

impl KernelKind {
    /// Every kernel, in canonical order.
    pub const ALL: [Self; 3] = [Self::InverseDynamics, Self::ForwardDynamics, Self::Gradient];

    /// Stable short tag, used for CLI flags, shard naming, and netlist
    /// output namespacing.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::InverseDynamics => "id",
            Self::ForwardDynamics => "fd",
            Self::Gradient => "grad",
        }
    }

    /// Index into [`KernelKind::ALL`] (dense per-kernel tables).
    pub fn index(self) -> usize {
        match self {
            Self::InverseDynamics => 0,
            Self::ForwardDynamics => 1,
            Self::Gradient => 2,
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for KernelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "id" | "rnea" => Ok(Self::InverseDynamics),
            "fd" | "aba" => Ok(Self::ForwardDynamics),
            "grad" | "gradient" => Ok(Self::Gradient),
            other => Err(format!(
                "unknown kernel `{other}` (expected `id`, `fd`, or `grad`)"
            )),
        }
    }
}

/// Validates one gradient evaluation point against a backend's joint
/// count; every [`GradientBackend`] implementation calls this at entry.
///
/// # Errors
///
/// Returns [`EngineError::DimensionMismatch`] naming the first offending
/// input.
pub fn check_dims<S: Scalar>(
    dof: usize,
    q: &[S],
    qd: &[S],
    qdd: &[S],
    minv: &MatN<S>,
) -> Result<(), EngineError> {
    let checks: [(&'static str, usize); 5] = [
        ("q", q.len()),
        ("qd", qd.len()),
        ("qdd", qdd.len()),
        ("minv", minv.rows()),
        ("minv", minv.cols()),
    ];
    for (what, got) in checks {
        if got != dof {
            return Err(EngineError::DimensionMismatch {
                what,
                expected: dof,
                got,
            });
        }
    }
    Ok(())
}

/// The engine's output buffer: the four gradient matrices in host `f64`,
/// reusable across calls (warm buffers make repeated `gradient_into`
/// calls allocation-free).
#[derive(Debug, Clone, PartialEq)]
pub struct GradientOutput {
    /// `∂q̈/∂q` (Algorithm 1 output).
    pub dqdd_dq: MatN<f64>,
    /// `∂q̈/∂q̇` (Algorithm 1 output).
    pub dqdd_dqd: MatN<f64>,
    /// `∂τ/∂q` (step 2 intermediate).
    pub dtau_dq: MatN<f64>,
    /// `∂τ/∂q̇` (step 2 intermediate).
    pub dtau_dqd: MatN<f64>,
}

impl Default for GradientOutput {
    fn default() -> Self {
        Self::for_dof(0)
    }
}

impl GradientOutput {
    /// An empty output; buffers size themselves on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// An output pre-sized for `dof` joints, so even the first call
    /// through it is allocation-free.
    pub fn for_dof(dof: usize) -> Self {
        Self {
            dqdd_dq: MatN::zeros(dof, dof),
            dqdd_dqd: MatN::zeros(dof, dof),
            dtau_dq: MatN::zeros(dof, dof),
            dtau_dqd: MatN::zeros(dof, dof),
        }
    }

    /// Converts into the crate's [`DynamicsGradient`] without copying.
    pub fn into_dynamics_gradient(self) -> DynamicsGradient<f64> {
        DynamicsGradient {
            dqdd_dq: self.dqdd_dq,
            dqdd_dqd: self.dqdd_dqd,
            id_gradient: InverseDynamicsGradient {
                dtau_dq: self.dtau_dq,
                dtau_dqd: self.dtau_dqd,
            },
        }
    }

    /// Clones into a [`DynamicsGradient`] (for batch collection).
    pub fn to_dynamics_gradient(&self) -> DynamicsGradient<f64> {
        self.clone().into_dynamics_gradient()
    }
}

/// Flat structure-of-arrays output for a whole gradient batch: four
/// buffers of `count · dof · dof` values, state-major then row-major, so
/// batch producers write (and consumers like the iLQR linearization read)
/// contiguous per-state blocks with zero per-state allocation once warm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GradientBatchOutput {
    count: usize,
    dof: usize,
    /// `∂q̈/∂q` for every state; state `i` owns
    /// `[i·dof², (i+1)·dof²)`, row-major within the block.
    pub dqdd_dq: Vec<f64>,
    /// `∂q̈/∂q̇`, same layout.
    pub dqdd_dqd: Vec<f64>,
    /// `∂τ/∂q`, same layout.
    pub dtau_dq: Vec<f64>,
    /// `∂τ/∂q̇`, same layout.
    pub dtau_dqd: Vec<f64>,
}

impl GradientBatchOutput {
    /// An empty output; [`GradientBatchOutput::reset`] sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the buffers for `count` states of `dof` joints. Shrinking or
    /// re-using at the same size never reallocates, so a warm output makes
    /// repeated batch calls allocation-free.
    pub fn reset(&mut self, count: usize, dof: usize) {
        self.count = count;
        self.dof = dof;
        let len = count * dof * dof;
        self.dqdd_dq.resize(len, 0.0);
        self.dqdd_dqd.resize(len, 0.0);
        self.dtau_dq.resize(len, 0.0);
        self.dtau_dqd.resize(len, 0.0);
    }

    /// Number of states the output currently holds.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Joint count of every block.
    pub fn dof(&self) -> usize {
        self.dof
    }

    fn block(&self, buf: &'static str, i: usize) -> core::ops::Range<usize> {
        assert!(i < self.count, "state {i} out of range for {buf}");
        let n2 = self.dof * self.dof;
        i * n2..(i + 1) * n2
    }

    /// State `i`'s `∂q̈/∂q` block (row-major `dof × dof`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()` (all four accessors).
    pub fn dqdd_dq_at(&self, i: usize) -> &[f64] {
        &self.dqdd_dq[self.block("dqdd_dq", i)]
    }

    /// State `i`'s `∂q̈/∂q̇` block.
    pub fn dqdd_dqd_at(&self, i: usize) -> &[f64] {
        &self.dqdd_dqd[self.block("dqdd_dqd", i)]
    }

    /// State `i`'s `∂τ/∂q` block.
    pub fn dtau_dq_at(&self, i: usize) -> &[f64] {
        &self.dtau_dq[self.block("dtau_dq", i)]
    }

    /// State `i`'s `∂τ/∂q̇` block.
    pub fn dtau_dqd_at(&self, i: usize) -> &[f64] {
        &self.dtau_dqd[self.block("dtau_dqd", i)]
    }

    /// Copies one dense [`GradientOutput`] into state `i`'s blocks.
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()` or `out`'s matrices are not `dof × dof`.
    pub fn store(&mut self, i: usize, out: &GradientOutput) {
        let n = self.dof;
        let range = self.block("store", i);
        for (flat, mat) in [
            (&mut self.dqdd_dq, &out.dqdd_dq),
            (&mut self.dqdd_dqd, &out.dqdd_dqd),
            (&mut self.dtau_dq, &out.dtau_dq),
            (&mut self.dtau_dqd, &out.dtau_dqd),
        ] {
            assert_eq!((mat.rows(), mat.cols()), (n, n), "gradient block shape");
            let dst = &mut flat[range.clone()];
            for r in 0..n {
                for c in 0..n {
                    dst[r * n + c] = mat[(r, c)];
                }
            }
        }
    }

    /// Reassembles state `i`'s blocks into an owned [`DynamicsGradient`]
    /// (for callers on the legacy vector-of-gradients shape).
    ///
    /// # Panics
    ///
    /// Panics if `i >= count()`.
    pub fn gradient_at(&self, i: usize) -> DynamicsGradient<f64> {
        let n = self.dof;
        let unflatten = |flat: &[f64]| {
            let mut m = MatN::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    m[(r, c)] = flat[r * n + c];
                }
            }
            m
        };
        DynamicsGradient {
            dqdd_dq: unflatten(self.dqdd_dq_at(i)),
            dqdd_dqd: unflatten(self.dqdd_dqd_at(i)),
            id_gradient: InverseDynamicsGradient {
                dtau_dq: unflatten(self.dtau_dq_at(i)),
                dtau_dqd: unflatten(self.dtau_dqd_at(i)),
            },
        }
    }
}

/// A dynamics-gradient provider behind the accelerator's exact interface
/// (Figure 9): given the host's `(q, q̇, q̈, M⁻¹)`, fill in
/// `(∂q̈/∂q, ∂q̈/∂q̇)` and the step-2 intermediates.
///
/// Backends own their warm workspaces (hence `&mut self`); sharing across
/// the [`BatchEngine`]'s workers goes through [`GradientBackend::fork`],
/// which hands each worker a private instance over the same immutable,
/// `Arc`-shared per-robot plan. [`gradient_batch`](Self::gradient_batch)
/// is the batch entry point built on that mechanism.
pub trait GradientBackend: Send + Sync {
    /// Short name for reports (`"cpu"`, `"accel"`, `"fd"`, …).
    fn name(&self) -> &'static str;

    /// The plan's joint count; inputs must match it.
    fn dof(&self) -> usize;

    /// Computes one dynamics gradient (Algorithm 1 given host-computed
    /// `q̈` and `M⁻¹`) into `out`. Allocation-free once the backend and
    /// `out` are warm (except [`FiniteDiff`], which is an oracle).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] when any input dimension
    /// disagrees with [`GradientBackend::dof`].
    fn gradient_into(
        &mut self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        minv: &MatN<f64>,
        out: &mut GradientOutput,
    ) -> Result<(), EngineError>;

    /// A private instance for one batch worker, sharing this backend's
    /// immutable plan (model, netlists) but owning fresh workspaces.
    fn fork(&self) -> Box<dyn GradientBackend + '_>;

    /// States evaluated per wide kernel instruction by
    /// [`GradientBackend::gradient_batch_into`] — 1 for serial backends
    /// (the default), the active tier's lane width for wide ones.
    fn serve_width(&self) -> usize {
        1
    }

    /// Computes a batch of gradients serially into a flat SoA output.
    ///
    /// The default loops [`GradientBackend::gradient_into`] through one
    /// dense scratch block. Wide backends ([`CpuAnalytic`], the
    /// accelerator) override it to run [`GradientBackend::serve_width`]
    /// states per instruction, allocation-free once `self` and `out` are
    /// warm, with per-state results bit-identical to the serial path.
    ///
    /// # Errors
    ///
    /// Returns the first malformed evaluation point's [`EngineError`];
    /// `out` contents are unspecified on error.
    fn gradient_batch_into(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
    ) -> Result<(), EngineError> {
        out.reset(states.len(), self.dof());
        let mut scratch = GradientOutput::for_dof(self.dof());
        for (i, s) in states.iter().enumerate() {
            self.gradient_into(s.q, s.qd, s.qdd, s.minv, &mut scratch)?;
            out.store(i, &scratch);
        }
        Ok(())
    }

    /// Computes a batch of gradients data-parallel on `engine` into a flat
    /// SoA output — two-level parallelism: workers claim chunks of whole
    /// lane groups ([`GradientBackend::serve_width`] states each, at
    /// least ~4 states per claim), and each chunk runs through the
    /// worker's (possibly wide) [`GradientBackend::gradient_batch_into`].
    ///
    /// # Errors
    ///
    /// Returns the first failing chunk's [`EngineError`]; `out` contents
    /// are unspecified on error.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while processing a chunk.
    fn gradient_batch_on_into(
        &self,
        engine: &BatchEngine,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
    ) -> Result<(), EngineError> {
        let dof = self.dof();
        // Whole lane groups per claimed chunk, topped up to at least
        // ~4 states so narrow (or serial) widths don't pay a claim per
        // state or two.
        let w = self.serve_width().max(1);
        let chunk_len = w * 4usize.div_ceil(w);
        let parts = engine.run_with_state(
            states.len().div_ceil(chunk_len),
            || self.fork(),
            |backend, ci| {
                let lo = ci * chunk_len;
                let hi = usize::min(lo + chunk_len, states.len());
                let mut part = GradientBatchOutput::new();
                backend
                    .gradient_batch_into(&states[lo..hi], &mut part)
                    .map(|()| part)
            },
        );
        out.reset(states.len(), dof);
        let n2 = dof * dof;
        for (ci, part) in parts.into_iter().enumerate() {
            let part = part?;
            let lo = ci * chunk_len * n2;
            let hi = lo + part.count() * n2;
            out.dqdd_dq[lo..hi].copy_from_slice(&part.dqdd_dq);
            out.dqdd_dqd[lo..hi].copy_from_slice(&part.dqdd_dqd);
            out.dtau_dq[lo..hi].copy_from_slice(&part.dtau_dq);
            out.dtau_dqd[lo..hi].copy_from_slice(&part.dtau_dqd);
        }
        Ok(())
    }

    /// Computes a batch of gradients data-parallel on `engine`, one forked
    /// backend instance per participating worker (the paper's §6.1 batch
    /// structure). Convenience wrapper over
    /// [`GradientBackend::gradient_batch_on_into`] returning owned
    /// per-state gradients; serving-path callers should use the `_into`
    /// form and keep its flat buffers warm.
    ///
    /// # Errors
    ///
    /// Returns the first item's [`EngineError`] if any evaluation point is
    /// malformed.
    ///
    /// # Panics
    ///
    /// Panics if a worker panicked while processing an item.
    fn gradient_batch_on(
        &self,
        engine: &BatchEngine,
        states: &[GradientState<'_, f64>],
    ) -> Result<Vec<DynamicsGradient<f64>>, EngineError> {
        let mut out = GradientBatchOutput::new();
        self.gradient_batch_on_into(engine, states, &mut out)?;
        Ok((0..states.len()).map(|i| out.gradient_at(i)).collect())
    }

    /// Like [`GradientBackend::gradient_batch_on`], on the process-wide
    /// [`BatchEngine::global`].
    ///
    /// # Errors
    ///
    /// Returns the first item's [`EngineError`] if any evaluation point is
    /// malformed.
    fn gradient_batch(
        &self,
        states: &[GradientState<'_, f64>],
    ) -> Result<Vec<DynamicsGradient<f64>>, EngineError> {
        self.gradient_batch_on(BatchEngine::global(), states)
    }

    /// Convenience allocating entry point.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] when any input dimension
    /// disagrees with [`GradientBackend::dof`].
    fn gradient(
        &mut self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        minv: &MatN<f64>,
    ) -> Result<DynamicsGradient<f64>, EngineError> {
        let mut out = GradientOutput::for_dof(self.dof());
        self.gradient_into(q, qd, qdd, minv, &mut out)?;
        Ok(out.into_dynamics_gradient())
    }
}

/// Output buffer for [`DynamicsBackend::run_into`]: one field family per
/// [`KernelKind`], reusable across calls so warm kernel evaluations are
/// allocation-free. Only the fields of the requested kernel are written:
/// `tau` for [`KernelKind::InverseDynamics`], `qdd` for
/// [`KernelKind::ForwardDynamics`], `grad` for [`KernelKind::Gradient`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelOutput {
    /// Joint torques `τ` (inverse dynamics).
    pub tau: Vec<f64>,
    /// Joint accelerations `q̈` (forward dynamics).
    pub qdd: Vec<f64>,
    /// The four gradient matrices (gradient kernel).
    pub grad: GradientOutput,
}

impl KernelOutput {
    /// An empty buffer; the first call through a backend sizes it.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer pre-sized for `dof` joints, so even the first call is
    /// allocation-free.
    pub fn for_dof(dof: usize) -> Self {
        Self {
            tau: vec![0.0; dof],
            qdd: vec![0.0; dof],
            grad: GradientOutput::for_dof(dof),
        }
    }
}

/// The multifunction face of a backend: one selector over the whole
/// kernel family (RNEA / FD / ∇ID) instead of bespoke call paths — the
/// engine-layer mirror of Dadu-RBD's shared multifunctional pipelines.
///
/// [`GradientBackend`] remains as the compat surface (it is this trait's
/// supertrait), so gradient-only consumers — iLQR, MPC, `stream_batch` —
/// keep compiling unchanged; `Box<dyn DynamicsBackend>` upcasts to
/// `Box<dyn GradientBackend>` where needed.
///
/// The `third` input slot is kernel-dependent, mirroring the accelerator's
/// fixed input register file: it carries `q̈` for
/// [`KernelKind::InverseDynamics`] and [`KernelKind::Gradient`], and `τ`
/// for [`KernelKind::ForwardDynamics`]. `minv` is consumed by the FD
/// composition `q̈ = M⁻¹(τ − C)` and the gradient's step 3; the inverse-
/// dynamics kernel validates but ignores it (the datapath always latches
/// the full register file).
pub trait DynamicsBackend: GradientBackend {
    /// Evaluates `kernel` at one state, writing the kernel's fields of
    /// `out`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] when any input dimension
    /// disagrees with [`GradientBackend::dof`].
    fn run_into(
        &mut self,
        kernel: KernelKind,
        q: &[f64],
        qd: &[f64],
        third: &[f64],
        minv: &MatN<f64>,
        out: &mut KernelOutput,
    ) -> Result<(), EngineError>;

    /// Convenience allocating entry point for [`run_into`].
    ///
    /// # Errors
    ///
    /// As for [`run_into`].
    ///
    /// [`run_into`]: DynamicsBackend::run_into
    fn run(
        &mut self,
        kernel: KernelKind,
        q: &[f64],
        qd: &[f64],
        third: &[f64],
        minv: &MatN<f64>,
    ) -> Result<KernelOutput, EngineError> {
        let mut out = KernelOutput::for_dof(self.dof());
        self.run_into(kernel, q, qd, third, minv, &mut out)?;
        Ok(out)
    }
}

/// Casts a borrowed `f64` slice into a warm scratch vector (identity for
/// `S = f64`), without allocating once the scratch has capacity. Shared by
/// every backend that computes in a non-host scalar type — the software
/// analogue of the coprocessor's I/O marshalling (§6.2).
pub fn cast_slice_into<S: Scalar>(src: &[f64], dst: &mut Vec<S>) {
    dst.clear();
    dst.extend(src.iter().map(|x| S::from_f64(*x)));
}

/// Casts a borrowed `f64` matrix into a warm scratch matrix.
pub fn cast_mat_into<S: Scalar>(src: &MatN<f64>, dst: &mut MatN<S>) {
    dst.resize_zeroed(src.rows(), src.cols());
    for i in 0..src.rows() {
        for j in 0..src.cols() {
            dst[(i, j)] = S::from_f64(src[(i, j)]);
        }
    }
}

/// Casts a scalar slice back into a warm `f64` output vector (the return
/// half of the I/O marshalling).
pub fn cast_slice_out<S: Scalar>(src: &[S], dst: &mut Vec<f64>) {
    dst.clear();
    dst.extend(src.iter().map(|x| x.to_f64()));
}

/// Casts a scalar matrix back into an `f64` output matrix.
pub fn cast_mat_out<S: Scalar>(src: &MatN<S>, dst: &mut MatN<f64>) {
    dst.resize_zeroed(src.rows(), src.cols());
    for i in 0..src.rows() {
        for j in 0..src.cols() {
            dst[(i, j)] = src[(i, j)].to_f64();
        }
    }
}

/// Object-safe face of the wide (lane-transposed) gradient kernel at an
/// erased lane type, selected per [`ExecTier`]. The lane element type
/// always equals the owning backend's scalar type, so wide results stay
/// bit-identical to the scalar kernel.
trait WideGradPath: Send + Sync {
    /// Lane width: states per wide kernel instruction.
    fn width(&self) -> usize;

    /// Runs one full lane group (`states.len() == width()`), scattering
    /// per-state results into `out` at state indices `base..`.
    fn run_group(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
        base: usize,
    );

    /// A fresh-workspace instance over the same `Arc`-shared wide model.
    fn fork_path(&self) -> Box<dyn WideGradPath>;
}

/// The concrete wide path at lane type `V`: the plan splat into `V`'s
/// lanes plus lane-transposed staging buffers.
struct WideGrad<V: WideScalar> {
    model: Arc<DynamicsModel<V>>,
    ws: GradWorkspace<V>,
    q_w: Vec<V>,
    qd_w: Vec<V>,
    qdd_w: Vec<V>,
    minv_w: MatN<V>,
}

impl<V: WideScalar> WideGrad<V> {
    fn new(model: Arc<DynamicsModel<V>>) -> Self {
        let n = model.dof();
        Self {
            ws: GradWorkspace::for_model(&model),
            q_w: vec![V::splat(V::Elem::zero()); n],
            qd_w: vec![V::splat(V::Elem::zero()); n],
            qdd_w: vec![V::splat(V::Elem::zero()); n],
            minv_w: MatN::zeros(n, n),
            model,
        }
    }
}

impl<V: WideScalar> WideGradPath for WideGrad<V> {
    fn width(&self) -> usize {
        V::WIDTH
    }

    fn run_group(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
        base: usize,
    ) {
        let n = self.model.dof();
        let w = V::WIDTH;
        debug_assert_eq!(states.len(), w, "run_group takes one full lane group");
        let marshal = robo_trace::span_items("lane.marshal", w);
        for (l, s) in states.iter().enumerate() {
            for k in 0..n {
                self.q_w[k].set_lane(l, V::Elem::from_f64(s.q[k]));
                self.qd_w[k].set_lane(l, V::Elem::from_f64(s.qd[k]));
                self.qdd_w[k].set_lane(l, V::Elem::from_f64(s.qdd[k]));
            }
            for r in 0..n {
                for c in 0..n {
                    self.minv_w[(r, c)].set_lane(l, V::Elem::from_f64(s.minv[(r, c)]));
                }
            }
        }
        drop(marshal);
        let kernel = robo_trace::span_items("grad.wide", w);
        dynamics_gradient_into(
            &self.model,
            &self.q_w,
            &self.qd_w,
            &self.qdd_w,
            &self.minv_w,
            &mut self.ws,
        );
        drop(kernel);
        let _scatter = robo_trace::span_items("lane.scatter", w);
        let n2 = n * n;
        for l in 0..w {
            let dst = (base + l) * n2;
            for r in 0..n {
                for c in 0..n {
                    let k = dst + r * n + c;
                    out.dqdd_dq[k] = self.ws.dqdd_dq[(r, c)].lane(l).to_f64();
                    out.dqdd_dqd[k] = self.ws.dqdd_dqd[(r, c)].lane(l).to_f64();
                    out.dtau_dq[k] = self.ws.dtau_dq[(r, c)].lane(l).to_f64();
                    out.dtau_dqd[k] = self.ws.dtau_dqd[(r, c)].lane(l).to_f64();
                }
            }
        }
    }

    fn fork_path(&self) -> Box<dyn WideGradPath> {
        Box::new(Self::new(Arc::clone(&self.model)))
    }
}

/// Builds the wide path for the lane type `S` serves on `tier`.
fn make_wide_path<S: Scalar>(model: &DynamicsModel<S>, tier: ExecTier) -> Box<dyn WideGradPath> {
    struct Mk<'a, S: Scalar>(&'a DynamicsModel<S>);
    impl<S: Scalar> WideVisit<S> for Mk<'_, S> {
        type Out = Box<dyn WideGradPath>;
        fn visit<V: WideScalar<Elem = S>>(self) -> Box<dyn WideGradPath> {
            Box::new(WideGrad::<V>::new(Arc::new(self.0.cast_to::<V>())))
        }
    }
    S::dispatch_wide(tier, Mk(model))
}

/// The host's analytical kernel (Algorithm 1 via the allocation-free
/// workspace path), computing in scalar type `S` — `f64` for the CPU
/// baseline, or any `Fixed{i,f}` for the paper's numeric-type study.
///
/// Forks share the `Arc`-held [`DynamicsModel`]; each fork owns a warm
/// [`GradWorkspace`] plus cast scratch, so steady-state calls are
/// allocation-free. For `S = f64` the boundary casts are exact identities
/// and results are bit-identical to [`crate::dynamics_gradient_into`].
///
/// The batch path serves whole lane groups through the wide kernel at
/// the lane type of the backend's [`ExecTier`] — by default the fastest
/// tier the host supports, overridable with
/// [`CpuAnalytic::with_model_tier`]. Every tier is bit-identical, so the
/// choice affects throughput only.
///
/// # Examples
///
/// ```
/// use robo_dynamics::engine::{CpuAnalytic, GradientBackend, GradientOutput};
/// use robo_dynamics::{forward_dynamics, mass_matrix_inverse, DynamicsModel};
/// use robo_model::robots;
///
/// let robot = robots::iiwa14();
/// let model = DynamicsModel::<f64>::new(&robot);
/// let (q, qd, tau) = (vec![0.1; 7], vec![0.0; 7], vec![0.5; 7]);
/// let qdd = forward_dynamics(&model, &q, &qd, &tau).unwrap();
/// let minv = mass_matrix_inverse(&model, &q).unwrap();
///
/// let mut backend = CpuAnalytic::<f64>::new(&robot);
/// let mut out = GradientOutput::for_dof(7);
/// backend.gradient_into(&q, &qd, &qdd, &minv, &mut out).unwrap();
/// assert_eq!(out.dqdd_dq.rows(), 7);
/// ```
pub struct CpuAnalytic<S: Scalar> {
    model: Arc<DynamicsModel<S>>,
    tier: ExecTier,
    ws: GradWorkspace<S>,
    aba: AbaWorkspace<S>,
    q_s: Vec<S>,
    qd_s: Vec<S>,
    qdd_s: Vec<S>,
    minv_s: MatN<S>,
    /// Wide serving path at the tier's lane type, type-erased so the
    /// backend itself stays independent of the lane width.
    wide: Box<dyn WideGradPath>,
    scratch: GradientOutput,
}

impl<S: Scalar> core::fmt::Debug for CpuAnalytic<S> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("CpuAnalytic")
            .field("scalar", &S::name())
            .field("dof", &self.model.dof())
            .field("tier", &self.tier)
            .field("serve_width", &self.wide.width())
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> Clone for CpuAnalytic<S> {
    fn clone(&self) -> Self {
        Self::from_parts(Arc::clone(&self.model), self.tier, self.wide.fork_path())
    }
}

impl<S: Scalar> CpuAnalytic<S> {
    /// Builds the backend (and its dynamics model) for a robot, at the
    /// fastest [`ExecTier`] the host supports.
    pub fn new(robot: &RobotModel) -> Self {
        Self::with_model(Arc::new(DynamicsModel::new(robot)))
    }

    /// Builds the backend over an existing shared model — the plan-once
    /// path: every fork and every consumer reuses the same `Arc` — at the
    /// fastest [`ExecTier`] the host supports.
    pub fn with_model(model: Arc<DynamicsModel<S>>) -> Self {
        Self::with_model_tier(model, ExecTier::detect())
    }

    /// Builds the backend over a shared model at an explicit [`ExecTier`]
    /// (clamped to what the host supports). All tiers are bit-identical;
    /// only throughput differs.
    pub fn with_model_tier(model: Arc<DynamicsModel<S>>, tier: ExecTier) -> Self {
        let tier = tier.clamp_to_host();
        let wide = make_wide_path(&model, tier);
        Self::from_parts(model, tier, wide)
    }

    /// Builds over an already-constructed wide path — how forks and
    /// clones avoid re-widening the model.
    fn from_parts(
        model: Arc<DynamicsModel<S>>,
        tier: ExecTier,
        wide: Box<dyn WideGradPath>,
    ) -> Self {
        let n = model.dof();
        Self {
            ws: GradWorkspace::for_model(&model),
            aba: AbaWorkspace::for_model(&model),
            q_s: Vec::with_capacity(n),
            qd_s: Vec::with_capacity(n),
            qdd_s: Vec::with_capacity(n),
            minv_s: MatN::zeros(n, n),
            scratch: GradientOutput::for_dof(n),
            tier,
            wide,
            model,
        }
    }

    /// The shared dynamics model.
    pub fn model(&self) -> &Arc<DynamicsModel<S>> {
        &self.model
    }

    /// The execution tier the wide batch path runs at (already clamped to
    /// host support).
    pub fn tier(&self) -> ExecTier {
        self.tier
    }
}

impl<S: Scalar> GradientBackend for CpuAnalytic<S> {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn dof(&self) -> usize {
        self.model.dof()
    }

    fn gradient_into(
        &mut self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        minv: &MatN<f64>,
        out: &mut GradientOutput,
    ) -> Result<(), EngineError> {
        check_dims(self.dof(), q, qd, qdd, minv)?;
        cast_slice_into(q, &mut self.q_s);
        cast_slice_into(qd, &mut self.qd_s);
        cast_slice_into(qdd, &mut self.qdd_s);
        cast_mat_into(minv, &mut self.minv_s);
        dynamics_gradient_into(
            &self.model,
            &self.q_s,
            &self.qd_s,
            &self.qdd_s,
            &self.minv_s,
            &mut self.ws,
        );
        cast_mat_out(&self.ws.dqdd_dq, &mut out.dqdd_dq);
        cast_mat_out(&self.ws.dqdd_dqd, &mut out.dqdd_dqd);
        cast_mat_out(&self.ws.dtau_dq, &mut out.dtau_dq);
        cast_mat_out(&self.ws.dtau_dqd, &mut out.dtau_dqd);
        Ok(())
    }

    fn fork(&self) -> Box<dyn GradientBackend + '_> {
        Box::new(self.clone())
    }

    fn serve_width(&self) -> usize {
        self.wide.width()
    }

    /// The wide SoA override: full lane groups of [`serve_width`] states
    /// are lane-transposed into the tier's wide staging and run through
    /// one wide [`dynamics_gradient_into`] call; the ragged tail takes
    /// the scalar path. Allocation-free once `self` and `out` are warm,
    /// and per-state bit-identical to serial
    /// [`CpuAnalytic::gradient_into`] calls on every tier.
    ///
    /// [`serve_width`]: GradientBackend::serve_width
    fn gradient_batch_into(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
    ) -> Result<(), EngineError> {
        let _span = robo_trace::span_items("grad.cpu.batch", states.len());
        let n = self.dof();
        for s in states {
            check_dims(n, s.q, s.qd, s.qdd, s.minv)?;
        }
        out.reset(states.len(), n);
        let w = self.wide.width();
        let full = states.len() / w;
        for chunk in 0..full {
            let base = chunk * w;
            self.wide.run_group(&states[base..base + w], out, base);
        }
        // Ragged tail through the scalar kernel; `scratch` is a warm field
        // (temporarily moved out to satisfy the borrow checker).
        let mut scratch = std::mem::take(&mut self.scratch);
        for (i, s) in states.iter().enumerate().skip(full * w) {
            self.gradient_into(s.q, s.qd, s.qdd, s.minv, &mut scratch)?;
            out.store(i, &scratch);
        }
        self.scratch = scratch;
        Ok(())
    }
}

impl<S: Scalar> DynamicsBackend for CpuAnalytic<S> {
    /// RNEA via the allocation-free [`rnea_into`], FD via the O(n) ABA
    /// ([`aba_into`]), the gradient via the existing analytical kernel —
    /// each bit-identical to its direct `robo_dynamics` kernel in `S`,
    /// cast at the `f64` trait boundary.
    fn run_into(
        &mut self,
        kernel: KernelKind,
        q: &[f64],
        qd: &[f64],
        third: &[f64],
        minv: &MatN<f64>,
        out: &mut KernelOutput,
    ) -> Result<(), EngineError> {
        match kernel {
            KernelKind::Gradient => self.gradient_into(q, qd, third, minv, &mut out.grad),
            KernelKind::InverseDynamics => {
                check_dims(self.dof(), q, qd, third, minv)?;
                let _span = robo_trace::span("kernel.cpu.id");
                cast_slice_into(q, &mut self.q_s);
                cast_slice_into(qd, &mut self.qd_s);
                cast_slice_into(third, &mut self.qdd_s);
                rnea_into(
                    &self.model,
                    &self.q_s,
                    &self.qd_s,
                    &self.qdd_s,
                    &mut self.ws.rnea,
                );
                cast_slice_out(&self.ws.rnea.tau, &mut out.tau);
                Ok(())
            }
            KernelKind::ForwardDynamics => {
                check_dims(self.dof(), q, qd, third, minv)?;
                let _span = robo_trace::span("kernel.cpu.fd");
                cast_slice_into(q, &mut self.q_s);
                cast_slice_into(qd, &mut self.qd_s);
                cast_slice_into(third, &mut self.qdd_s);
                aba_into(
                    &self.model,
                    &self.q_s,
                    &self.qd_s,
                    &self.qdd_s,
                    &mut self.aba,
                );
                cast_slice_out(&self.aba.qdd, &mut out.qdd);
                Ok(())
            }
        }
    }
}

/// The finite-difference oracle: central differences of the RNEA for the
/// step-2 gradient, then the exact `−M⁻¹` step 3. Used to validate the
/// analytical backends; allocates per call (it is a test oracle, not a
/// control-loop kernel).
#[derive(Debug, Clone)]
pub struct FiniteDiff {
    model: Arc<DynamicsModel<f64>>,
    step: f64,
}

impl FiniteDiff {
    /// Default central-difference step, stable for the built-in robots.
    pub const DEFAULT_STEP: f64 = 1e-6;

    /// Builds the oracle with the default step.
    pub fn new(robot: &RobotModel) -> Self {
        Self::with_model(Arc::new(DynamicsModel::new(robot)))
    }

    /// Builds the oracle over an existing shared model.
    pub fn with_model(model: Arc<DynamicsModel<f64>>) -> Self {
        Self {
            model,
            step: Self::DEFAULT_STEP,
        }
    }

    /// Overrides the central-difference step.
    ///
    /// # Panics
    ///
    /// Panics if `step` is not strictly positive.
    pub fn with_step(mut self, step: f64) -> Self {
        assert!(step > 0.0, "finite-difference step must be positive");
        self.step = step;
        self
    }
}

impl GradientBackend for FiniteDiff {
    fn name(&self) -> &'static str {
        "fd"
    }

    fn dof(&self) -> usize {
        self.model.dof()
    }

    fn gradient_into(
        &mut self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        minv: &MatN<f64>,
        out: &mut GradientOutput,
    ) -> Result<(), EngineError> {
        check_dims(self.dof(), q, qd, qdd, minv)?;
        let id = findiff::rnea_gradient_fd(&self.model, q, qd, qdd, self.step);
        minv.neg_mul_mat_into(&id.dtau_dq, &mut out.dqdd_dq);
        minv.neg_mul_mat_into(&id.dtau_dqd, &mut out.dqdd_dqd);
        out.dtau_dq = id.dtau_dq;
        out.dtau_dqd = id.dtau_dqd;
        Ok(())
    }

    fn fork(&self) -> Box<dyn GradientBackend + '_> {
        Box::new(self.clone())
    }
}

impl DynamicsBackend for FiniteDiff {
    /// The oracle routes: RNEA through the allocating reference kernel,
    /// FD through the *CRBA + LDLT* factorization (`forward_dynamics`) —
    /// a genuinely independent algorithm from the analytic backends' ABA
    /// and the accelerator's `M⁻¹(τ − C)` composition, which is what makes
    /// it a useful cross-check — and the gradient through central
    /// differences. Allocates per call, as the gradient oracle does.
    fn run_into(
        &mut self,
        kernel: KernelKind,
        q: &[f64],
        qd: &[f64],
        third: &[f64],
        minv: &MatN<f64>,
        out: &mut KernelOutput,
    ) -> Result<(), EngineError> {
        match kernel {
            KernelKind::Gradient => self.gradient_into(q, qd, third, minv, &mut out.grad),
            KernelKind::InverseDynamics => {
                check_dims(self.dof(), q, qd, third, minv)?;
                out.tau.clear();
                out.tau
                    .extend_from_slice(&crate::rnea(&self.model, q, qd, third).tau);
                Ok(())
            }
            KernelKind::ForwardDynamics => {
                check_dims(self.dof(), q, qd, third, minv)?;
                let qdd = forward_dynamics(&self.model, q, qd, third)
                    .expect("oracle forward dynamics requires an SPD mass matrix");
                out.qdd.clear();
                out.qdd.extend_from_slice(&qdd);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dynamics_gradient_from_qdd, forward_dynamics, mass_matrix_inverse};
    use robo_model::robots;

    fn case(robot: &RobotModel, seed: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>, MatN<f64>) {
        let model = DynamicsModel::<f64>::new(robot);
        let n = model.dof();
        let mut s = seed.max(1);
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let q: Vec<f64> = (0..n).map(|_| next()).collect();
        let qd: Vec<f64> = (0..n).map(|_| next()).collect();
        let tau: Vec<f64> = (0..n).map(|_| 2.0 * next()).collect();
        let qdd = forward_dynamics(&model, &q, &qd, &tau).unwrap();
        let minv = mass_matrix_inverse(&model, &q).unwrap();
        (q, qd, qdd, minv)
    }

    #[test]
    fn cpu_backend_is_bit_identical_to_direct_kernel() {
        let robot = robots::iiwa14();
        let (q, qd, qdd, minv) = case(&robot, 11);
        let mut backend = CpuAnalytic::<f64>::new(&robot);
        let got = backend.gradient(&q, &qd, &qdd, &minv).unwrap();
        let model = DynamicsModel::<f64>::new(&robot);
        let want = dynamics_gradient_from_qdd(&model, &q, &qd, &qdd, &minv);
        assert_eq!(got.dqdd_dq, want.dqdd_dq);
        assert_eq!(got.dqdd_dqd, want.dqdd_dqd);
        assert_eq!(got.id_gradient.dtau_dq, want.id_gradient.dtau_dq);
    }

    #[test]
    fn fd_backend_close_to_analytic() {
        let robot = robots::hyq();
        let (q, qd, qdd, minv) = case(&robot, 23);
        let mut cpu = CpuAnalytic::<f64>::new(&robot);
        let mut fd = FiniteDiff::new(&robot);
        let a = cpu.gradient(&q, &qd, &qdd, &minv).unwrap();
        let b = fd.gradient(&q, &qd, &qdd, &minv).unwrap();
        let scale = a.dqdd_dq.max_abs().max(1.0);
        assert!(a.dqdd_dq.max_abs_diff(&b.dqdd_dq) / scale < 1e-4);
        assert!(a.dqdd_dqd.max_abs_diff(&b.dqdd_dqd) / scale < 1e-4);
    }

    #[test]
    fn dimension_mismatch_is_typed() {
        let robot = robots::iiwa14();
        let (q, qd, qdd, minv) = case(&robot, 3);
        let mut backend = CpuAnalytic::<f64>::new(&robot);
        let mut out = GradientOutput::new();
        let short = &q[..5];
        assert_eq!(
            backend.gradient_into(short, &qd, &qdd, &minv, &mut out),
            Err(EngineError::DimensionMismatch {
                what: "q",
                expected: 7,
                got: 5
            })
        );
        let bad_minv = MatN::<f64>::identity(3);
        let err = backend
            .gradient_into(&q, &qd, &qdd, &bad_minv, &mut out)
            .unwrap_err();
        assert!(err.to_string().contains("minv"));
    }

    #[test]
    fn batch_matches_serial_through_trait() {
        let robot = robots::iiwa14();
        let cases: Vec<_> = (0..5).map(|k| case(&robot, 100 + k)).collect();
        let states: Vec<GradientState<'_, f64>> = cases
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();
        let backend = CpuAnalytic::<f64>::new(&robot);
        let batch = backend.gradient_batch(&states).unwrap();
        let mut serial = CpuAnalytic::<f64>::new(&robot);
        for (got, (q, qd, qdd, minv)) in batch.iter().zip(cases.iter()) {
            let want = serial.gradient(q, qd, qdd, minv).unwrap();
            assert_eq!(got.dqdd_dq, want.dqdd_dq);
            assert_eq!(got.dqdd_dqd, want.dqdd_dqd);
        }
    }

    #[test]
    fn batch_propagates_dimension_errors() {
        let robot = robots::iiwa14();
        let (q, qd, qdd, minv) = case(&robot, 9);
        let bad = MatN::<f64>::identity(2);
        let states = [
            GradientState {
                q: &q,
                qd: &qd,
                qdd: &qdd,
                minv: &minv,
            },
            GradientState {
                q: &q,
                qd: &qd,
                qdd: &qdd,
                minv: &bad,
            },
        ];
        let backend = CpuAnalytic::<f64>::new(&robot);
        assert!(backend.gradient_batch(&states).is_err());
    }

    #[test]
    fn wide_batch_into_is_bit_identical_to_serial() {
        let robot = robots::iiwa14();
        // 7 states: one full Lanes<_, 4> group plus a ragged tail of 3.
        let cases: Vec<_> = (0..7).map(|k| case(&robot, 400 + k)).collect();
        let states: Vec<GradientState<'_, f64>> = cases
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();
        let mut backend = CpuAnalytic::<f64>::new(&robot);
        let mut out = GradientBatchOutput::new();
        backend.gradient_batch_into(&states, &mut out).unwrap();
        assert_eq!(out.count(), 7);
        assert_eq!(out.dof(), 7);
        let mut serial = CpuAnalytic::<f64>::new(&robot);
        for (i, (q, qd, qdd, minv)) in cases.iter().enumerate() {
            let want = serial.gradient(q, qd, qdd, minv).unwrap();
            let got = out.gradient_at(i);
            assert_eq!(got.dqdd_dq, want.dqdd_dq, "state {i}");
            assert_eq!(got.dqdd_dqd, want.dqdd_dqd, "state {i}");
            assert_eq!(got.id_gradient.dtau_dq, want.id_gradient.dtau_dq);
            assert_eq!(got.id_gradient.dtau_dqd, want.id_gradient.dtau_dqd);
        }
    }

    #[test]
    fn engine_batch_into_matches_serial_batch_into() {
        let robot = robots::hyq();
        let cases: Vec<_> = (0..10).map(|k| case(&robot, 900 + k)).collect();
        let states: Vec<GradientState<'_, f64>> = cases
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();
        let backend = CpuAnalytic::<f64>::new(&robot);
        let engine = BatchEngine::new(3);
        let mut parallel = GradientBatchOutput::new();
        backend
            .gradient_batch_on_into(&engine, &states, &mut parallel)
            .unwrap();
        let mut serial = GradientBatchOutput::new();
        CpuAnalytic::<f64>::new(&robot)
            .gradient_batch_into(&states, &mut serial)
            .unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn batch_into_default_matches_override_for_fd() {
        // FiniteDiff uses the trait's default (serial, per-state) path;
        // sanity-check the SoA plumbing end to end on it too.
        let robot = robots::iiwa14();
        let cases: Vec<_> = (0..3).map(|k| case(&robot, 50 + k)).collect();
        let states: Vec<GradientState<'_, f64>> = cases
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();
        let mut fd = FiniteDiff::new(&robot);
        let mut out = GradientBatchOutput::new();
        fd.gradient_batch_into(&states, &mut out).unwrap();
        for (i, (q, qd, qdd, minv)) in cases.iter().enumerate() {
            let want = fd.gradient(q, qd, qdd, minv).unwrap();
            assert_eq!(out.gradient_at(i).dqdd_dq, want.dqdd_dq);
        }
    }

    #[test]
    fn batch_into_propagates_dimension_errors() {
        let robot = robots::iiwa14();
        let (q, qd, qdd, minv) = case(&robot, 77);
        let bad = MatN::<f64>::identity(2);
        let states = [
            GradientState {
                q: &q,
                qd: &qd,
                qdd: &qdd,
                minv: &minv,
            },
            GradientState {
                q: &q,
                qd: &qd,
                qdd: &qdd,
                minv: &bad,
            },
        ];
        let mut backend = CpuAnalytic::<f64>::new(&robot);
        let mut out = GradientBatchOutput::new();
        assert!(backend.gradient_batch_into(&states, &mut out).is_err());
        assert!(backend
            .gradient_batch_on_into(BatchEngine::global(), &states, &mut out)
            .is_err());
    }

    #[test]
    fn forks_share_the_model() {
        let backend = CpuAnalytic::<f64>::new(&robots::iiwa14());
        let before = Arc::strong_count(backend.model());
        let fork = backend.fork();
        assert_eq!(Arc::strong_count(backend.model()), before + 1);
        assert_eq!(fork.dof(), 7);
    }
}
