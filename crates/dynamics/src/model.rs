//! A robot model pre-converted to a given scalar type for dynamics.

use robo_model::{JointType, RobotModel};
use robo_spatial::{Lanes, Motion, Scalar, SpatialInertia, Transform, Vec3};

/// Standard gravitational acceleration (m/s²).
pub const STANDARD_GRAVITY: f64 = 9.81;

/// A kinematic tree prepared for dynamics computations in scalar type `S`.
///
/// Construction casts all per-robot constants (tree placements `X_T`, link
/// inertias `Iᵢ`, motion subspaces `Sᵢ`) into `S` once, mirroring how the
/// accelerator bakes them into functional-unit constants at customization
/// time. All dynamics algorithms in this crate take a `DynamicsModel`.
///
/// # Examples
///
/// ```
/// use robo_dynamics::DynamicsModel;
/// use robo_model::robots;
///
/// let model = DynamicsModel::<f64>::new(&robots::iiwa14());
/// assert_eq!(model.dof(), 7);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicsModel<S> {
    parents: Vec<Option<usize>>,
    joints: Vec<JointType>,
    trees: Vec<Transform<S>>,
    inertias: Vec<SpatialInertia<S>>,
    subspaces: Vec<Motion<S>>,
    /// Bit `j` of `ancestor_mask[i]` is set iff `j` is an ancestor of `i`
    /// or `j == i`.
    ancestor_mask: Vec<u64>,
    base_acceleration: Motion<S>,
}

impl<S: Scalar> DynamicsModel<S> {
    /// Prepares `robot` for dynamics with standard gravity along −z.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links (the ancestor bit-mask
    /// representation's limit; far above any robot in the paper).
    pub fn new(robot: &RobotModel) -> Self {
        Self::with_gravity(robot, Vec3::new(0.0, 0.0, -STANDARD_GRAVITY))
    }

    /// Prepares `robot` with an explicit gravity vector (world frame).
    ///
    /// Gravity is realized, as is standard for the RNEA, by giving the base
    /// a fictitious upward acceleration `a₀ = −g`.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn with_gravity(robot: &RobotModel, gravity: Vec3<f64>) -> Self {
        let n = robot.dof();
        assert!(n <= 64, "robots with more than 64 links are not supported");
        let mut ancestor_mask = vec![0u64; n];
        for i in 0..n {
            let mut mask = 1u64 << i;
            if let Some(p) = robot.parent(i) {
                mask |= ancestor_mask[p];
            }
            ancestor_mask[i] = mask;
        }
        Self {
            parents: (0..n).map(|i| robot.parent(i)).collect(),
            joints: robot.links().iter().map(|l| l.joint).collect(),
            trees: robot.links().iter().map(|l| l.tree.cast()).collect(),
            inertias: robot.links().iter().map(|l| l.inertia.cast()).collect(),
            subspaces: robot
                .links()
                .iter()
                .map(|l| l.joint.motion_subspace())
                .collect(),
            ancestor_mask,
            base_acceleration: Motion::new(Vec3::zero(), (-gravity).cast()),
        }
    }

    /// Re-targets the plan at the wide scalar `Lanes<S, W>` for the SoA
    /// serving path: every per-robot constant is broadcast into all `W`
    /// lanes, so a wide kernel run is bit-identical, lane for lane, to `W`
    /// scalar runs over this model.
    ///
    /// The splat is exact: casting goes through `f64`, and for every
    /// supported scalar type the round trip `S::from_f64(s.to_f64())`
    /// reproduces `s` (floats trivially; fixed point because `to_f64` of
    /// an `i64` raw value is an exact dyadic rational).
    pub fn widen<const W: usize>(&self) -> DynamicsModel<Lanes<S, W>> {
        self.cast_to::<Lanes<S, W>>()
    }

    /// Re-targets the plan at any scalar type — the general form of
    /// [`DynamicsModel::widen`], also used to build native-SIMD wide
    /// models for the tiered serving path. Casting goes through `f64`
    /// (exact for every supported scalar; see `widen`).
    pub fn cast_to<T: Scalar>(&self) -> DynamicsModel<T> {
        DynamicsModel {
            parents: self.parents.clone(),
            joints: self.joints.clone(),
            trees: self.trees.iter().map(|t| t.cast()).collect(),
            inertias: self.inertias.iter().map(|i| i.cast()).collect(),
            subspaces: self.subspaces.iter().map(|s| s.cast()).collect(),
            ancestor_mask: self.ancestor_mask.clone(),
            base_acceleration: self.base_acceleration.cast(),
        }
    }

    /// Number of joints / links.
    pub fn dof(&self) -> usize {
        self.parents.len()
    }

    /// Parent of link `i`.
    pub fn parent(&self, i: usize) -> Option<usize> {
        self.parents[i]
    }

    /// Joint type of link `i`.
    pub fn joint(&self, i: usize) -> JointType {
        self.joints[i]
    }

    /// Fixed tree placement `X_T` of link `i`.
    pub fn tree(&self, i: usize) -> &Transform<S> {
        &self.trees[i]
    }

    /// Spatial inertia `Iᵢ` of link `i`.
    pub fn inertia(&self, i: usize) -> &SpatialInertia<S> {
        &self.inertias[i]
    }

    /// Motion subspace `Sᵢ` of link `i`.
    pub fn subspace(&self, i: usize) -> Motion<S> {
        self.subspaces[i]
    }

    /// The fictitious base acceleration encoding gravity (`a₀ = −g`).
    pub fn base_acceleration(&self) -> Motion<S> {
        self.base_acceleration
    }

    /// The full joint transform `ᵢX_λᵢ = X_J(qᵢ)·X_T` at joint position `q`.
    pub fn joint_transform(&self, i: usize, q: S) -> Transform<S> {
        self.joints[i].joint_transform(q).compose(&self.trees[i])
    }

    /// Whether link `j` is an ancestor of link `i` (or `i` itself) — i.e.
    /// whether joint `j`'s position influences link `i`'s kinematics.
    #[inline]
    pub fn influences(&self, j: usize, i: usize) -> bool {
        self.ancestor_mask[i] & (1u64 << j) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn ancestor_masks_on_chain() {
        let m = DynamicsModel::<f64>::new(&robots::serial_chain(4, JointType::RevoluteZ));
        assert!(m.influences(0, 3));
        assert!(m.influences(2, 2));
        assert!(!m.influences(3, 0));
    }

    #[test]
    fn ancestor_masks_on_tree() {
        let m = DynamicsModel::<f64>::new(&robots::hyq());
        // Legs are independent: first leg's hip does not influence the
        // second leg's knee.
        assert!(m.influences(0, 2));
        assert!(!m.influences(0, 5));
    }

    #[test]
    fn gravity_encoded_as_base_acceleration() {
        let m = DynamicsModel::<f64>::new(&robots::iiwa14());
        assert_eq!(m.base_acceleration().lin.z, STANDARD_GRAVITY);
        let moon =
            DynamicsModel::<f64>::with_gravity(&robots::iiwa14(), Vec3::new(0.0, 0.0, -1.62));
        assert_eq!(moon.base_acceleration().lin.z, 1.62);
    }
}
