//! Canonical morphology hashing for plan caches.
//!
//! The robomorphic methodology is *parameterized by robot morphology*: one
//! accelerator plan per robot structure. A serving tier that fronts many
//! robots therefore needs a stable identity for "the same morphology" so
//! that N concurrent requests for one robot share one compiled plan. A
//! [`MorphologyKey`] is that identity: a 64-bit FNV-1a digest over the
//! canonical structural content of a [`DynamicsModel`] — kinematic
//! topology (parent indices), joint types and motion subspaces, fixed tree
//! transforms, spatial inertias, and the base acceleration the gravity
//! vector folds into.
//!
//! Two models built independently from equal descriptions hash equal;
//! perturbing any structural bit (a mass, a joint axis, a parent link)
//! diverges the key. The hash is over exact `f64` bit patterns, so it is
//! deterministic across processes and platforms of the same float width —
//! there is no float comparison fuzz to tune.

use crate::model::DynamicsModel;
use robo_model::JointType;
use robo_spatial::{Mat3, Motion, SpatialInertia, Transform, Vec3};

/// A canonical 64-bit digest of a robot morphology.
///
/// Derived from the structural content of a [`DynamicsModel`] (topology,
/// joint types, tree transforms, inertias, gravity). Equal descriptions
/// collide by construction; structural perturbations diverge. Use it to
/// key plan caches:
///
/// ```
/// use robo_dynamics::{DynamicsModel, MorphologyKey};
/// use robo_model::robots;
///
/// let a = MorphologyKey::of_model(&DynamicsModel::<f64>::new(&robots::iiwa14()));
/// let b = MorphologyKey::of_model(&DynamicsModel::<f64>::new(&robots::iiwa14()));
/// let c = MorphologyKey::of_model(&DynamicsModel::<f64>::new(&robots::hyq()));
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MorphologyKey(u64);

/// 64-bit FNV-1a over a canonical byte stream.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        // Exact bit pattern: 0.0 and -0.0 intentionally differ, NaNs hash
        // by payload. Morphology data is plain finite constants, so this
        // only buys determinism, never surprise.
        self.u64(v.to_bits());
    }

    fn vec3(&mut self, v: &Vec3<f64>) {
        for c in v.to_f64() {
            self.f64(c);
        }
    }

    fn mat3(&mut self, m: &Mat3<f64>) {
        for row in m.to_f64() {
            for c in row {
                self.f64(c);
            }
        }
    }

    fn motion(&mut self, m: &Motion<f64>) {
        self.vec3(&m.ang);
        self.vec3(&m.lin);
    }

    fn transform(&mut self, t: &Transform<f64>) {
        self.mat3(&t.rot);
        self.vec3(&t.pos);
    }

    fn inertia(&mut self, i: &SpatialInertia<f64>) {
        self.f64(i.mass);
        self.vec3(&i.h);
        self.mat3(&i.ibar);
    }
}

/// Fixed joint-type discriminants — part of the hash format, so they must
/// never be renumbered (append-only if new joint types arrive).
fn joint_code(joint: JointType) -> u8 {
    match joint {
        JointType::RevoluteX => 0,
        JointType::RevoluteY => 1,
        JointType::RevoluteZ => 2,
        JointType::PrismaticX => 3,
        JointType::PrismaticY => 4,
        JointType::PrismaticZ => 5,
    }
}

impl MorphologyKey {
    /// Version tag mixed into every digest; bump if the byte stream's
    /// layout ever changes so stale persisted keys cannot alias.
    const FORMAT: &'static [u8] = b"robomorphic-morphology-key-v1";

    /// Computes the canonical key of a model's structure.
    pub fn of_model(model: &DynamicsModel<f64>) -> Self {
        let mut h = Fnv1a::new();
        h.bytes(Self::FORMAT);
        let n = model.dof();
        h.u64(n as u64);
        h.motion(&model.base_acceleration());
        for i in 0..n {
            // `u64::MAX` marks the fixed base; real parents are < dof.
            h.u64(model.parent(i).map_or(u64::MAX, |p| p as u64));
            h.bytes(&[joint_code(model.joint(i))]);
            h.motion(&model.subspace(i));
            h.transform(model.tree(i));
            h.inertia(model.inertia(i));
        }
        Self(h.0)
    }

    /// The raw 64-bit digest (stable across processes; useful in logs and
    /// serialized cache manifests).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for MorphologyKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::{robots, Link, RobotModel};

    fn key_of(robot: &RobotModel) -> MorphologyKey {
        MorphologyKey::of_model(&DynamicsModel::<f64>::new(robot))
    }

    #[test]
    fn equal_models_collide() {
        // Two independently built models of the same description must
        // agree — this is what lets N concurrent cold requests share one
        // plan-cache entry.
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            assert_eq!(key_of(&robot), key_of(&robot.clone()));
            assert_eq!(key_of(&robot), key_of(&robot));
        }
    }

    #[test]
    fn distinct_robots_diverge() {
        let keys = [
            key_of(&robots::iiwa14()),
            key_of(&robots::hyq()),
            key_of(&robots::atlas()),
        ];
        assert_ne!(keys[0], keys[1]);
        assert_ne!(keys[0], keys[2]);
        assert_ne!(keys[1], keys[2]);
    }

    fn perturbed(mutate: impl FnOnce(&mut Vec<Link>)) -> RobotModel {
        let base = robots::iiwa14();
        let mut links: Vec<Link> = base.links().to_vec();
        mutate(&mut links);
        RobotModel::new("perturbed", links).expect("valid perturbed robot")
    }

    #[test]
    fn structural_perturbations_diverge() {
        let base = key_of(&robots::iiwa14());
        // A single mass bit.
        let heavier = perturbed(|links| links[3].inertia.mass += 1e-9);
        assert_ne!(base, key_of(&heavier));
        // A joint axis.
        let retyped = perturbed(|links| links[2].joint = robo_model::JointType::PrismaticZ);
        assert_ne!(base, key_of(&retyped));
        // A tree placement offset.
        let shifted = perturbed(|links| links[5].tree.pos += Vec3::new(0.0, 0.0, 1e-9));
        assert_ne!(base, key_of(&shifted));
        // Topology: re-root the last joint one link higher.
        let rerooted = perturbed(|links| {
            let last = links.len() - 1;
            links[last].parent = Some(last - 2);
        });
        assert_ne!(base, key_of(&rerooted));
    }

    #[test]
    fn link_names_do_not_affect_the_key() {
        // The key is structural: renaming links (a presentation detail the
        // dynamics model does not even retain) must not change it.
        let renamed = perturbed(|links| {
            for (i, link) in links.iter_mut().enumerate() {
                link.name = format!("renamed_{i}");
            }
        });
        assert_eq!(key_of(&robots::iiwa14()), key_of(&renamed));
    }

    #[test]
    fn gravity_is_part_of_the_key() {
        let robot = robots::iiwa14();
        let standard = MorphologyKey::of_model(&DynamicsModel::<f64>::new(&robot));
        let moon = MorphologyKey::of_model(&DynamicsModel::<f64>::with_gravity(
            &robot,
            Vec3::new(0.0, 0.0, -1.62),
        ));
        assert_ne!(standard, moon);
    }

    #[test]
    fn display_is_stable_hex() {
        let k = key_of(&robots::iiwa14());
        let s = k.to_string();
        assert_eq!(s.len(), 16);
        assert_eq!(u64::from_str_radix(&s, 16).unwrap(), k.as_u64());
    }
}
