//! Finite-difference reference gradients (f64 only), used to validate the
//! analytical derivatives and the simulated accelerator.

use crate::{aba, rnea, DynamicsModel, InverseDynamicsGradient};
use robo_spatial::MatN;

/// Central-difference gradient of inverse dynamics with step `h`.
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`.
pub fn rnea_gradient_fd(
    model: &DynamicsModel<f64>,
    q: &[f64],
    qd: &[f64],
    qdd: &[f64],
    h: f64,
) -> InverseDynamicsGradient<f64> {
    let n = model.dof();
    let mut dtau_dq = MatN::zeros(n, n);
    let mut dtau_dqd = MatN::zeros(n, n);
    for j in 0..n {
        let mut qp = q.to_vec();
        let mut qm = q.to_vec();
        qp[j] += h;
        qm[j] -= h;
        let tp = rnea(model, &qp, qd, qdd).tau;
        let tm = rnea(model, &qm, qd, qdd).tau;
        for i in 0..n {
            dtau_dq[(i, j)] = (tp[i] - tm[i]) / (2.0 * h);
        }

        let mut vp = qd.to_vec();
        let mut vm = qd.to_vec();
        vp[j] += h;
        vm[j] -= h;
        let tp = rnea(model, q, &vp, qdd).tau;
        let tm = rnea(model, q, &vm, qdd).tau;
        for i in 0..n {
            dtau_dqd[(i, j)] = (tp[i] - tm[i]) / (2.0 * h);
        }
    }
    InverseDynamicsGradient { dtau_dq, dtau_dqd }
}

/// Central-difference gradient of forward dynamics (via the ABA) with step
/// `h`, returning `(∂q̈/∂q, ∂q̈/∂q̇)`.
///
/// # Panics
///
/// Panics if slice lengths differ from `model.dof()`.
pub fn forward_dynamics_gradient_fd(
    model: &DynamicsModel<f64>,
    q: &[f64],
    qd: &[f64],
    tau: &[f64],
    h: f64,
) -> (MatN<f64>, MatN<f64>) {
    let n = model.dof();
    let mut dq = MatN::zeros(n, n);
    let mut dqd = MatN::zeros(n, n);
    for j in 0..n {
        let mut qp = q.to_vec();
        let mut qm = q.to_vec();
        qp[j] += h;
        qm[j] -= h;
        let ap = aba(model, &qp, qd, tau);
        let am = aba(model, &qm, qd, tau);
        for i in 0..n {
            dq[(i, j)] = (ap[i] - am[i]) / (2.0 * h);
        }

        let mut vp = qd.to_vec();
        let mut vm = qd.to_vec();
        vp[j] += h;
        vm[j] -= h;
        let ap = aba(model, q, &vp, tau);
        let am = aba(model, q, &vm, tau);
        for i in 0..n {
            dqd[(i, j)] = (ap[i] - am[i]) / (2.0 * h);
        }
    }
    (dq, dqd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;

    #[test]
    fn fd_is_symmetric_under_step_refinement() {
        // Halving the step should not change the estimate much (sanity check
        // that h is in the stable region for these models).
        let model = DynamicsModel::<f64>::new(&robots::iiwa14());
        let q = vec![0.3, -0.4, 0.5, 0.9, -0.2, 0.1, 0.6];
        let qd = vec![0.1; 7];
        let qdd = vec![0.2; 7];
        let g1 = rnea_gradient_fd(&model, &q, &qd, &qdd, 1e-5);
        let g2 = rnea_gradient_fd(&model, &q, &qd, &qdd, 5e-6);
        assert!(g1.dtau_dq.max_abs_diff(&g2.dtau_dq) < 1e-4);
    }
}
