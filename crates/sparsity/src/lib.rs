//! Morphology-derived matrix sparsity analysis.
//!
//! Robomorphic computing's central hardware optimization (§4, §5.2): the
//! joint transformation matrices `ᵢX_λᵢ`, link inertia matrices `Iᵢ`, and
//! motion subspace matrices `Sᵢ` have *deterministic sparsity patterns
//! derived from the robot model*, so the multiplier–adder trees of the
//! matrix-vector functional units can be pruned per robot. This crate
//! computes those patterns and the resulting operation counts:
//!
//! * [`Mask6`] — a 6×6 structural sparsity pattern;
//! * [`x_pattern`] / [`superposition_pattern`] — per-joint and
//!   superposed transform patterns (the paper's Figure 11 design choice);
//! * [`matvec_ops`] — multiplier/adder counts for a pruned tree
//!   implementation of a masked matrix-vector product;
//! * [`fig11_report`] / [`joint_reduction`] — the paper's Figure 11 and §4
//!   headline numbers.
//!
//! # Example
//!
//! ```
//! use robo_model::robots;
//! use robo_sparsity::joint_reduction;
//!
//! // §4: the iiwa joint between links 1 and 2 has 13/36 nonzeros,
//! // reducing multipliers by 64% and adders by 77%.
//! let r = joint_reduction(&robots::iiwa14(), 1);
//! assert_eq!(r.nonzeros, 13);
//! assert_eq!(r.mul_reduction_pct.round(), 64.0);
//! assert_eq!(r.add_reduction_pct.round(), 77.0);
//! ```

#![warn(missing_docs)]
// Index-based loops over fixed-size matrix dimensions are clearer than
// iterator chains in this numerical code.
#![allow(clippy::needless_range_loop)]

use robo_model::RobotModel;
use robo_spatial::Mat6;
use std::fmt;

/// Tolerance below which a sampled matrix entry is considered structurally
/// zero.
const STRUCTURAL_TOL: f64 = 1e-9;

/// Joint positions used to probe the structural pattern of `X(q)` — chosen
/// so that no trigonometric entry vanishes at all sample points.
const PROBE_POSITIONS: [f64; 3] = [0.731, -1.303, 2.117];

/// A 6×6 structural sparsity pattern (`true` = structurally nonzero).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mask6 {
    /// Pattern entries, `m[row][col]`.
    pub m: [[bool; 6]; 6],
}

impl Mask6 {
    /// The fully dense pattern.
    pub fn full() -> Self {
        Self { m: [[true; 6]; 6] }
    }

    /// The empty pattern.
    pub fn empty() -> Self {
        Self { m: [[false; 6]; 6] }
    }

    /// The robot-agnostic transform pattern: the upper-right 3×3 quadrant of
    /// any motion transform is zero regardless of robot model (Figure 11's
    /// "Robot-Agnostic" baseline).
    pub fn robot_agnostic_transform() -> Self {
        let mut m = [[true; 6]; 6];
        for row in m.iter_mut().take(3) {
            for x in row.iter_mut().skip(3) {
                *x = false;
            }
        }
        Self { m }
    }

    /// Derives the structural pattern from a sampled matrix.
    pub fn from_mat6(mat: &Mat6<f64>, tol: f64) -> Self {
        let mut m = [[false; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                m[i][j] = mat.m[i][j].abs() > tol;
            }
        }
        Self { m }
    }

    /// Number of structural nonzeros.
    pub fn count(&self) -> usize {
        self.m.iter().flatten().filter(|x| **x).count()
    }

    /// Number of nonzeros in a row.
    pub fn row_count(&self, row: usize) -> usize {
        self.m[row].iter().filter(|x| **x).count()
    }

    /// Union of two patterns (superposition, §6.2).
    pub fn union(&self, other: &Mask6) -> Mask6 {
        let mut m = [[false; 6]; 6];
        for i in 0..6 {
            for j in 0..6 {
                m[i][j] = self.m[i][j] || other.m[i][j];
            }
        }
        Mask6 { m }
    }

    /// Whether every nonzero of `self` is also nonzero in `other`.
    pub fn is_subset_of(&self, other: &Mask6) -> bool {
        for i in 0..6 {
            for j in 0..6 {
                if self.m[i][j] && !other.m[i][j] {
                    return false;
                }
            }
        }
        true
    }

    /// Sparsity as a fraction of zero entries (the paper quotes "around 30%
    /// to 60% sparse" for these matrices, §5.1).
    pub fn sparsity(&self) -> f64 {
        1.0 - self.count() as f64 / 36.0
    }
}

impl fmt::Display for Mask6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for row in &self.m {
            for x in row {
                write!(f, "{}", if *x { " *" } else { " ." })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Multiplier and adder counts of a functional unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Number of multipliers.
    pub muls: usize,
    /// Number of adders.
    pub adds: usize,
}

impl OpCount {
    /// Total operations.
    pub fn total(&self) -> usize {
        self.muls + self.adds
    }
}

/// Operation counts for a masked 6×6 matrix-vector multiply implemented as
/// a pruned tree of multipliers and adders (one dot-product tree per row,
/// as in the paper's Figure 7).
pub fn matvec_ops(mask: &Mask6) -> OpCount {
    let mut muls = 0;
    let mut adds = 0;
    for row in 0..6 {
        let nnz = mask.row_count(row);
        muls += nnz;
        adds += nnz.saturating_sub(1);
    }
    OpCount { muls, adds }
}

/// The structural pattern of joint `i`'s transform `ᵢX_λᵢ(q)`, as the union
/// over probe positions (so every trigonometric entry registers).
pub fn x_pattern(robot: &RobotModel, i: usize) -> Mask6 {
    let mut mask = Mask6::empty();
    for q in PROBE_POSITIONS {
        let x = robot.joint_transform::<f64>(i, q).to_mat6();
        mask = mask.union(&Mask6::from_mat6(&x, STRUCTURAL_TOL));
    }
    mask
}

/// The superposition of all joints' transform patterns — the paper's §6.2
/// design choice: "we implemented a single transformation matrix-vector
/// multiplication unit for all seven joints ... a superposition of the
/// matrix sparsity patterns in all individual joints".
pub fn superposition_pattern(robot: &RobotModel) -> Mask6 {
    let mut mask = Mask6::empty();
    for i in 0..robot.dof() {
        mask = mask.union(&x_pattern(robot, i));
    }
    mask
}

/// The structural pattern of link `i`'s spatial inertia (fixed shape for
/// all robots; entry-level sparsity depends on the link's inertia values).
pub fn inertia_pattern(robot: &RobotModel, i: usize) -> Mask6 {
    let mat = robot.links()[i].inertia.to_mat6();
    Mask6::from_mat6(&mat, STRUCTURAL_TOL)
}

/// The §4 headline numbers for one joint: nonzeros and the multiplier /
/// adder reductions of a pruned matvec tree vs a dense one.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JointReduction {
    /// Structural nonzeros out of 36.
    pub nonzeros: usize,
    /// Percent reduction in multipliers vs dense (dense = 36).
    pub mul_reduction_pct: f64,
    /// Percent reduction in adders vs dense (dense = 30).
    pub add_reduction_pct: f64,
}

/// Computes the multiplier/adder reduction for joint `i` (see [`Mask6`]).
pub fn joint_reduction(robot: &RobotModel, i: usize) -> JointReduction {
    let dense = matvec_ops(&Mask6::full());
    let pruned = matvec_ops(&x_pattern(robot, i));
    JointReduction {
        nonzeros: x_pattern(robot, i).count(),
        mul_reduction_pct: 100.0 * (1.0 - pruned.muls as f64 / dense.muls as f64),
        add_reduction_pct: 100.0 * (1.0 - pruned.adds as f64 / dense.adds as f64),
    }
}

/// The data behind the paper's Figure 11: operation counts of the
/// transform matvec unit under four sparsity treatments.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsityReport {
    /// Dense 6×6 (Figure 11 "No Sparsity").
    pub dense: OpCount,
    /// Upper-right quadrant pruned (Figure 11 "Robot-Agnostic").
    pub robot_agnostic: OpCount,
    /// Single unit covering the superposition of all joints (Figure 11
    /// "Robomorphic, Superposition All Joints" — the paper's design choice).
    pub superposition: OpCount,
    /// Mean of per-joint pruned units (Figure 11 "Robomorphic, Average All
    /// Joints" — the bound requiring one unit per joint).
    pub average_muls: f64,
    /// Adder counterpart of [`SparsityReport::average_muls`].
    pub average_adds: f64,
    /// Per-joint operation counts.
    pub per_joint: Vec<OpCount>,
    /// Fraction of the *robot-specific* sparsity (zeros beyond the
    /// robot-agnostic pattern) that the single superposition unit retains,
    /// relative to the average per-joint bound — §6.2's "recovered 33.3% of
    /// the average robomorphic sparsity of the individual joint matrices in
    /// a single matrix-vector multiplication unit".
    pub recovered_sparsity_fraction: f64,
}

/// Computes the Figure 11 report for a robot.
pub fn fig11_report(robot: &RobotModel) -> SparsityReport {
    let dense = matvec_ops(&Mask6::full());
    let robot_agnostic = matvec_ops(&Mask6::robot_agnostic_transform());
    let superposition_mask = superposition_pattern(robot);
    let superposition = matvec_ops(&superposition_mask);
    let per_joint: Vec<OpCount> = (0..robot.dof())
        .map(|i| matvec_ops(&x_pattern(robot, i)))
        .collect();
    let n = per_joint.len() as f64;
    let average_muls = per_joint.iter().map(|c| c.muls as f64).sum::<f64>() / n;
    let average_adds = per_joint.iter().map(|c| c.adds as f64).sum::<f64>() / n;

    let avg_nnz: f64 = (0..robot.dof())
        .map(|i| x_pattern(robot, i).count() as f64)
        .sum::<f64>()
        / n;
    // Zeros recovered *beyond* the robot-agnostic pattern (27 nonzeros):
    // superposition vs the per-joint average bound.
    let ra_nnz = Mask6::robot_agnostic_transform().count() as f64;
    let avg_specific_zeros = ra_nnz - avg_nnz;
    let super_specific_zeros = ra_nnz - superposition_mask.count() as f64;
    let recovered = if avg_specific_zeros > 0.0 {
        (super_specific_zeros / avg_specific_zeros).max(0.0)
    } else {
        0.0
    };

    SparsityReport {
        dense,
        robot_agnostic,
        superposition,
        average_muls,
        average_adds,
        per_joint,
        recovered_sparsity_fraction: recovered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::{robots, JointType};

    #[test]
    fn dense_counts() {
        let c = matvec_ops(&Mask6::full());
        assert_eq!(c, OpCount { muls: 36, adds: 30 });
        assert_eq!(c.total(), 66);
    }

    #[test]
    fn robot_agnostic_counts() {
        // Upper-right 3×3 pruned: 27 muls; top rows have 3 terms → 2 adds.
        let c = matvec_ops(&Mask6::robot_agnostic_transform());
        assert_eq!(c, OpCount { muls: 27, adds: 21 });
    }

    #[test]
    fn section4_iiwa_joint2_numbers() {
        let r = joint_reduction(&robots::iiwa14(), 1);
        assert_eq!(r.nonzeros, 13);
        assert!((r.mul_reduction_pct - 63.9).abs() < 1.0, "{r:?}");
        assert!((r.add_reduction_pct - 76.7).abs() < 1.0, "{r:?}");
    }

    #[test]
    fn x_pattern_is_stable_across_probes() {
        // The structural mask must contain every per-sample mask.
        let robot = robots::iiwa14();
        for i in 0..7 {
            let mask = x_pattern(&robot, i);
            for q in [0.1, 0.9, -2.0, 3.0] {
                let inst = Mask6::from_mat6(&robot.joint_transform::<f64>(i, q).to_mat6(), 1e-9);
                assert!(inst.is_subset_of(&mask), "joint {i} at q={q}");
            }
        }
    }

    #[test]
    fn superposition_contains_all_joints() {
        let robot = robots::hyq();
        let sup = superposition_pattern(&robot);
        for i in 0..robot.dof() {
            assert!(x_pattern(&robot, i).is_subset_of(&sup));
        }
        // And respects the robot-agnostic bound.
        assert!(sup.is_subset_of(&Mask6::robot_agnostic_transform()));
    }

    #[test]
    fn iiwa_fig11_shape() {
        // Figure 11's ordering: dense > robot-agnostic > superposition >
        // average per-joint.
        let rep = fig11_report(&robots::iiwa14());
        assert!(rep.dense.muls > rep.robot_agnostic.muls);
        assert!(rep.robot_agnostic.muls > rep.superposition.muls);
        assert!(rep.superposition.muls as f64 > rep.average_muls);
        // §6.2: superposition recovers roughly a third of the average
        // per-joint sparsity.
        assert!(
            rep.recovered_sparsity_fraction > 0.2 && rep.recovered_sparsity_fraction < 0.55,
            "recovered {:.3}",
            rep.recovered_sparsity_fraction
        );
    }

    #[test]
    fn paper_sparsity_band() {
        // §5.1: the matrices are "around 30% to 60% sparse".
        let robot = robots::iiwa14();
        for i in 0..7 {
            let s = x_pattern(&robot, i).sparsity();
            assert!((0.3..=0.7).contains(&s), "joint {i} sparsity {s}");
        }
    }

    #[test]
    fn inertia_pattern_shape() {
        // Spatial inertia: symmetric, diagonal mass block, zero diagonal in
        // the skew blocks.
        let robot = robots::iiwa14();
        let p = inertia_pattern(&robot, 0);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(p.m[i][j], p.m[j][i], "symmetry at ({i},{j})");
            }
        }
        // Lower-right block is m·identity.
        for i in 3..6 {
            for j in 3..6 {
                assert_eq!(p.m[i][j], i == j);
            }
        }
    }

    #[test]
    fn prismatic_chain_patterns_differ_from_revolute() {
        let rev = superposition_pattern(&robots::serial_chain(4, JointType::RevoluteZ));
        let pri = superposition_pattern(&robots::serial_chain(4, JointType::PrismaticZ));
        assert_ne!(rev, pri);
    }

    #[test]
    fn mask_display_is_grid() {
        let s = format!("{}", Mask6::robot_agnostic_transform());
        assert_eq!(s.lines().count(), 6);
        assert!(s.contains('*') && s.contains('.'));
    }
}
