//! The coprocessor system model: accelerator + host CPU + I/O channel.
//!
//! §6.3 evaluates the accelerator "as it would be deployed for an
//! off-the-shelf solution today": an FPGA coprocessor behind a PCIe link
//! (Figure 9), computing one dynamics gradient per trajectory time step and
//! returning results to host memory. Round-trip latency includes sending
//! inputs, all computation, and writing outputs back — with I/O
//! marshalling *pipelined* against compute ("we achieve this by pipelining
//! the I/O data marshalling with the execution of each computation").

use robomorphic_core::{Accelerator, FpgaPlatform};

/// An I/O channel between host and coprocessor.
#[derive(Debug, Clone, PartialEq)]
pub struct IoChannel {
    /// Channel name for reports.
    pub name: String,
    /// Effective (not theoretical) bandwidth, bytes/second.
    pub bandwidth_bytes_per_s: f64,
    /// Fixed software overhead per round-trip call (driver, DMA setup,
    /// thread wakeups).
    pub per_call_overhead_s: f64,
}

impl IoChannel {
    /// PCIe Gen 1 ×8 as provided by the Connectal framework (§6.1: "the
    /// FPGA was restricted to PCIe Gen 1 due to software limitations in the
    /// Connectal framework"). ~2 GB/s theoretical, ~1.6 GB/s effective.
    pub fn pcie_gen1() -> Self {
        Self {
            name: "PCIe Gen1 x8 (Connectal)".into(),
            bandwidth_bytes_per_s: 1.6e9,
            per_call_overhead_s: 12e-6,
        }
    }

    /// PCIe Gen 3 ×16 as used by the GPU baseline. ~15.8 GB/s theoretical,
    /// ~12 GB/s effective.
    pub fn pcie_gen3() -> Self {
        Self {
            name: "PCIe Gen3 x16".into(),
            bandwidth_bytes_per_s: 12e9,
            per_call_overhead_s: 10e-6,
        }
    }

    /// Time to move `bytes` across the channel.
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_s
    }
}

/// Round-trip latency breakdown for a batch of gradient computations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RoundTrip {
    /// Fixed per-call overhead.
    pub overhead_s: f64,
    /// Time attributable to I/O transfers (input + output streams).
    pub io_s: f64,
    /// Time attributable to computation.
    pub compute_s: f64,
    /// Total wall-clock round-trip (I/O and compute overlap, so this is
    /// *less* than the sum of the parts).
    pub total_s: f64,
}

/// Event-level timeline of one streamed gradient computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamEvent {
    /// When this step's input finished arriving at the coprocessor.
    pub input_ready_s: f64,
    /// When the pipeline accepted the step.
    pub start_s: f64,
    /// When the computation finished.
    pub compute_done_s: f64,
    /// When the result finished writing back to host memory.
    pub output_done_s: f64,
}

/// The FPGA-coprocessor system of Figure 9.
#[derive(Debug, Clone)]
pub struct CoprocessorSystem {
    accel: Accelerator,
    clock_hz: f64,
    channel: IoChannel,
    input_bytes_per_step: usize,
    output_bytes_per_step: usize,
}

impl CoprocessorSystem {
    /// Builds the paper's deployment: the accelerator on the XCVU9P behind
    /// PCIe Gen 1.
    pub fn fpga_default(accel: Accelerator) -> Self {
        Self::new(
            accel,
            FpgaPlatform::xcvu9p().clock_hz,
            IoChannel::pcie_gen1(),
        )
    }

    /// Builds a coprocessor system with an explicit clock and channel
    /// (e.g. the ASIC behind the same link, or a faster link study).
    pub fn new(accel: Accelerator, clock_hz: f64, channel: IoChannel) -> Self {
        let n = accel.params().dof;
        // Per time step the host sends q, q̇, q̈ (3n), cached sin/cos (2n),
        // and M⁻¹ (n²); the accelerator returns ∂q̈/∂q and ∂q̈/∂q̇ (2n²).
        // All values are 32-bit (§6.2: chosen partly because it "was
        // convenient for data I/O with a CPU").
        let input_words = 5 * n + n * n;
        let output_words = 2 * n * n;
        Self {
            accel,
            clock_hz,
            channel,
            input_bytes_per_step: 4 * input_words,
            output_bytes_per_step: 4 * output_words,
        }
    }

    /// The underlying accelerator design.
    pub fn accelerator(&self) -> &Accelerator {
        &self.accel
    }

    /// The I/O channel.
    pub fn channel(&self) -> &IoChannel {
        &self.channel
    }

    /// Input payload size per time step (bytes).
    pub fn input_bytes_per_step(&self) -> usize {
        self.input_bytes_per_step
    }

    /// Output payload size per time step (bytes).
    pub fn output_bytes_per_step(&self) -> usize {
        self.output_bytes_per_step
    }

    /// Event-driven timeline of a streamed batch: inputs arrive serially
    /// over the link, the pipeline accepts a new computation every
    /// initiation interval, and outputs serialize back over the link. An
    /// independent (discrete-event) implementation of the same deployment
    /// that [`CoprocessorSystem::round_trip`] models in closed form; the
    /// two are cross-checked in tests.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0`.
    pub fn stream_timeline(&self, timesteps: usize) -> Vec<StreamEvent> {
        assert!(timesteps > 0, "need at least one time step");
        let in_s = self.channel.transfer_time_s(self.input_bytes_per_step);
        let out_s = self.channel.transfer_time_s(self.output_bytes_per_step);
        let ii_s = self.accel.schedule().initiation_interval() as f64 / self.clock_hz;
        let fill_s = self.accel.single_latency_s(self.clock_hz);

        let mut events = Vec::with_capacity(timesteps);
        let mut input_done = self.channel.per_call_overhead_s;
        let mut prev_start = f64::NEG_INFINITY;
        let mut out_channel_free = 0.0_f64;
        for _ in 0..timesteps {
            input_done += in_s;
            let start = input_done.max(prev_start + ii_s);
            let compute_done = start + fill_s;
            let out_start = compute_done.max(out_channel_free);
            let output_done = out_start + out_s;
            out_channel_free = output_done;
            events.push(StreamEvent {
                input_ready_s: input_done,
                start_s: start,
                compute_done_s: compute_done,
                output_done_s: output_done,
            });
            prev_start = start;
        }
        events
    }

    /// Round-trip latency for computing `timesteps` dynamics gradients
    /// (one per trajectory time step, §6.3).
    ///
    /// # Examples
    ///
    /// ```
    /// use robo_sim::CoprocessorSystem;
    /// use robomorphic_core::GradientTemplate;
    /// use robo_model::robots;
    ///
    /// let accel = GradientTemplate::new().customize(&robots::iiwa14());
    /// let system = CoprocessorSystem::fpga_default(accel);
    /// let rt = system.round_trip(64);
    /// // I/O overlaps with compute, so the total beats the parts' sum.
    /// assert!(rt.total_s < rt.overhead_s + rt.io_s + rt.compute_s);
    /// ```
    ///
    /// Steady state processes one step per `max(input transfer, initiation
    /// interval, output transfer)`; the first step additionally pays the
    /// pipeline fill and its input transfer.
    ///
    /// # Panics
    ///
    /// Panics if `timesteps == 0`.
    pub fn round_trip(&self, timesteps: usize) -> RoundTrip {
        assert!(timesteps > 0, "need at least one time step");
        let in_s = self.channel.transfer_time_s(self.input_bytes_per_step);
        let out_s = self.channel.transfer_time_s(self.output_bytes_per_step);
        let ii_s = self.accel.schedule().initiation_interval() as f64 / self.clock_hz;
        let fill_s = self.accel.single_latency_s(self.clock_hz);

        let steady = in_s.max(ii_s).max(out_s);
        let total = self.channel.per_call_overhead_s
            + in_s // first input cannot be overlapped
            + fill_s // first computation fills the pipeline
            + out_s // last output cannot be overlapped
            + (timesteps - 1) as f64 * steady;
        RoundTrip {
            overhead_s: self.channel.per_call_overhead_s,
            io_s: in_s + out_s + (timesteps - 1) as f64 * (in_s.max(out_s)).min(steady),
            compute_s: fill_s + (timesteps - 1) as f64 * ii_s.min(steady),
            total_s: total,
        }
    }
}

/// One time step's kernel inputs in the accelerator's scalar type.
#[derive(Debug, Clone)]
pub struct KernelInput<S> {
    /// Joint positions.
    pub q: Vec<S>,
    /// Joint velocities.
    pub qd: Vec<S>,
    /// Joint accelerations (host-computed).
    pub qdd: Vec<S>,
    /// Inverse mass matrix (host-computed).
    pub minv: robo_spatial::MatN<S>,
}

/// Streams a batch of gradient computations through the full deployment:
/// the functional simulation produces each step's numeric outputs, and the
/// discrete-event pipeline model produces its completion times — the
/// combined behavior a host integration test would observe on real
/// hardware.
///
/// The numeric simulations go through the engine layer: one
/// [`AcceleratorBackend`](crate::AcceleratorBackend) is built over the
/// `Arc`-shared simulator (widened once to the host's fastest
/// [`ExecTier`](robo_spatial::ExecTier) lane width per group), and
/// each worker of the process-wide
/// [`BatchEngine`](robo_dynamics::batch::BatchEngine) drives its own fork
/// (private warm [`crate::SimWorkspace`]s, shared compiled netlists)
/// through [`AcceleratorBackend::compute_batch`](crate::AcceleratorBackend::compute_batch)
/// over lane-group chunks — two-level (threads × lanes) parallelism
/// mirroring the parallel accelerator instances of §6.3's multi-robot
/// deployment.
///
/// # Panics
///
/// Panics if `inputs` is empty, the simulator and system were built for
/// different robots, or any input's dimensions disagree with the robot's
/// joint count.
pub fn stream_batch<S: robo_spatial::Scalar>(
    sim: &crate::AcceleratorSim<S>,
    system: &CoprocessorSystem,
    inputs: &[KernelInput<S>],
) -> (Vec<crate::SimOutput<S>>, Vec<StreamEvent>) {
    assert!(!inputs.is_empty(), "need at least one time step");
    assert_eq!(
        sim.dof(),
        system.accelerator().params().dof,
        "simulator and coprocessor system must target the same robot"
    );
    let backend = crate::AcceleratorBackend::from_sim(sim.clone());
    // Whole lane groups per worker chunk, topped up to at least ~4 states
    // per claim so narrow tiers don't shred the batch.
    let w = backend.serve_width().max(1);
    let chunk_len = w * 4usize.div_ceil(w);
    let parts = robo_dynamics::batch::BatchEngine::global().run_with_state(
        inputs.len().div_ceil(chunk_len),
        || backend.fork_native(),
        |backend, ci| {
            let lo = ci * chunk_len;
            let hi = usize::min(lo + chunk_len, inputs.len());
            let mut outs = Vec::with_capacity(hi - lo);
            backend
                .compute_batch(&inputs[lo..hi], &mut outs)
                .expect("stream_batch input dimensions must match the robot");
            outs
        },
    );
    let outputs: Vec<crate::SimOutput<S>> = parts.into_iter().flatten().collect();
    let timeline = system.stream_timeline(inputs.len());
    (outputs, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;
    use robomorphic_core::GradientTemplate;

    fn system() -> CoprocessorSystem {
        let accel = GradientTemplate::new().customize(&robots::iiwa14());
        CoprocessorSystem::fpga_default(accel)
    }

    #[test]
    fn payload_sizes_iiwa() {
        let s = system();
        // 5·7 + 49 = 84 input words, 2·49 = 98 output words.
        assert_eq!(s.input_bytes_per_step(), 336);
        assert_eq!(s.output_bytes_per_step(), 392);
    }

    #[test]
    fn round_trip_scales_sublinearly_at_first() {
        // Fixed overhead dominates small batches (the paper's Figure 13
        // shows flattened scaling at 10-32 time steps).
        let s = system();
        let t10 = s.round_trip(10).total_s;
        let t20 = s.round_trip(20).total_s;
        assert!(t20 < 2.0 * t10, "overhead should amortize: {t10} vs {t20}");
        let t128 = s.round_trip(128).total_s;
        assert!(t128 > t10);
    }

    #[test]
    fn io_and_compute_overlap() {
        let s = system();
        let rt = s.round_trip(64);
        assert!(
            rt.total_s < rt.overhead_s + rt.io_s + rt.compute_s,
            "pipelining must overlap I/O with compute"
        );
    }

    #[test]
    fn round_trip_in_expected_band() {
        // 128 steps: tens of microseconds of compute + I/O — the paper's
        // Figure 13 FPGA curve is in the 10-100 µs decade.
        let s = system();
        let rt = s.round_trip(128);
        assert!(
            rt.total_s > 10e-6 && rt.total_s < 300e-6,
            "128-step round trip {:.1} µs out of band",
            rt.total_s * 1e6
        );
    }

    #[test]
    fn event_timeline_matches_closed_form() {
        // The discrete-event stream and the closed-form round_trip() are
        // independent implementations of the same pipeline; they must agree
        // to within one pipeline-fill of slack.
        let s = system();
        for steps in [1, 10, 64, 128] {
            let events = s.stream_timeline(steps);
            assert_eq!(events.len(), steps);
            let event_total = events.last().unwrap().output_done_s;
            let closed = s.round_trip(steps).total_s;
            let slack = s.accelerator().single_latency_s(55.6e6);
            assert!(
                (event_total - closed).abs() <= slack + 1e-9,
                "{steps} steps: event {event_total:.2e} vs closed {closed:.2e}"
            );
        }
    }

    #[test]
    fn event_timeline_is_causal_and_ordered() {
        let s = system();
        let events = s.stream_timeline(32);
        let mut prev_done = 0.0;
        for e in &events {
            assert!(e.start_s >= e.input_ready_s - 1e-12);
            assert!(e.compute_done_s > e.start_s);
            assert!(e.output_done_s >= e.compute_done_s);
            assert!(e.output_done_s > prev_done);
            prev_done = e.output_done_s;
        }
    }

    #[test]
    fn stream_batch_returns_numerics_and_timing() {
        let robot = robots::iiwa14();
        let sim = crate::AcceleratorSim::<f64>::new(&robot);
        let system = system();
        let raw = robo_baselines_free_inputs(&robot, 6);
        let (outputs, timeline) = stream_batch(&sim, &system, &raw);
        assert_eq!(outputs.len(), 6);
        assert_eq!(timeline.len(), 6);
        // Every output is a real gradient (nonzero) and timing is ordered.
        assert!(outputs.iter().all(|o| o.dqdd_dq.max_abs() > 0.0));
        assert!(timeline
            .windows(2)
            .all(|w| w[1].output_done_s > w[0].output_done_s));
    }

    /// Local input builder (robo-sim cannot depend on robo-baselines).
    fn robo_baselines_free_inputs(
        robot: &robo_model::RobotModel,
        count: usize,
    ) -> Vec<KernelInput<f64>> {
        use robo_dynamics::{forward_dynamics, mass_matrix_inverse, DynamicsModel};
        let model = DynamicsModel::<f64>::new(robot);
        let n = model.dof();
        (0..count)
            .map(|k| {
                let q: Vec<f64> = (0..n).map(|i| 0.1 * (i + k) as f64 - 0.3).collect();
                let qd: Vec<f64> = (0..n).map(|i| 0.05 * i as f64).collect();
                let tau = vec![0.5; n];
                let qdd = forward_dynamics(&model, &q, &qd, &tau).unwrap();
                let minv = mass_matrix_inverse(&model, &q).unwrap();
                KernelInput { q, qd, qdd, minv }
            })
            .collect()
    }

    #[test]
    fn gen3_is_faster_than_gen1() {
        let accel = GradientTemplate::new().customize(&robots::iiwa14());
        let g1 = CoprocessorSystem::new(accel.clone(), 55.6e6, IoChannel::pcie_gen1());
        let g3 = CoprocessorSystem::new(accel, 55.6e6, IoChannel::pcie_gen3());
        assert!(g3.round_trip(128).total_s < g1.round_trip(128).total_s);
    }

    #[test]
    #[should_panic(expected = "at least one time step")]
    fn zero_steps_panics() {
        let _ = system().round_trip(0);
    }
}
