//! A cycle-by-cycle stepper for the accelerator's pipeline structure.
//!
//! [`crate::AcceleratorSim`] computes *values* with latency taken from the
//! design's closed-form [`CycleSchedule`]. This module goes one level
//! lower: it executes the schedule as a resource-constrained state machine
//! — a folded forward-pass processor, a folded backward-pass processor,
//! and the fused `−M⁻¹` stage, each occupied cycle by cycle — so the
//! latency and initiation interval *emerge* from the execution instead of
//! being computed. Tests cross-check the emergent numbers against the
//! closed form, which is how the paper's own cycle counts were validated
//! against RTL simulation.
//!
//! [`CycleSchedule`]: robomorphic_core::CycleSchedule

use robomorphic_core::CycleSchedule;

/// Which pipeline unit a trace entry refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// The folded forward-pass processor (all parallel datapaths advance
    /// in lockstep through it).
    Forward,
    /// The folded backward-pass processor.
    Backward,
    /// The fused `−M⁻¹` MAC stage.
    Minv,
}

/// One occupancy record: `unit` busy with `computation`'s link `slot`
/// during `[start_cycle, start_cycle + cycles)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// The occupied unit.
    pub unit: Unit,
    /// Index of the gradient computation in the stream.
    pub computation: usize,
    /// Link iteration within the pass (or 0 for the `−M⁻¹` stage).
    pub slot: usize,
    /// First busy cycle.
    pub start_cycle: usize,
    /// Busy duration in cycles.
    pub cycles: usize,
}

/// The result of stepping a stream of computations through the pipeline.
#[derive(Debug, Clone)]
pub struct CycleTrace {
    /// Occupancy records, in issue order.
    pub entries: Vec<TraceEntry>,
    /// Completion cycle of each computation (its `−M⁻¹` stage done).
    pub completion_cycles: Vec<usize>,
}

impl CycleTrace {
    /// Latency of computation `k` from its cycle-0-relative start.
    ///
    /// For `k = 0` this is the single-computation latency the paper's
    /// Figure 10 reports.
    pub fn latency_cycles(&self, k: usize) -> usize {
        let start = self
            .entries
            .iter()
            .filter(|e| e.computation == k)
            .map(|e| e.start_cycle)
            .min()
            .expect("computation exists");
        self.completion_cycles[k] - start
    }

    /// Emergent initiation interval: the steady-state spacing between
    /// consecutive completions.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two computations were traced.
    pub fn initiation_interval(&self) -> usize {
        assert!(
            self.completion_cycles.len() >= 2,
            "need at least two computations to measure the interval"
        );
        let n = self.completion_cycles.len();
        self.completion_cycles[n - 1] - self.completion_cycles[n - 2]
    }

    /// Utilization of a unit: busy cycles ÷ makespan.
    pub fn utilization(&self, unit: Unit) -> f64 {
        let busy: usize = self
            .entries
            .iter()
            .filter(|e| e.unit == unit)
            .map(|e| e.cycles)
            .sum();
        let end = *self.completion_cycles.last().expect("non-empty");
        busy as f64 / end as f64
    }
}

/// Steps `computations` back-to-back gradient computations through the
/// pipeline described by `schedule`, with all inputs available at cycle 0.
///
/// The model: each computation makes `n_links + offset/2` passes through
/// the folded forward processor (one extra for the ID chain's head start),
/// each taking `fwd_stage_cycles`; the backward processor consumes links
/// in the same order after the forward pass completes; the `−M⁻¹` stage
/// finishes the computation. Units serve one computation's slot at a time
/// — exactly the §5.2 folding discipline.
///
/// # Panics
///
/// Panics if `computations == 0`.
pub fn step_pipeline(schedule: &CycleSchedule, computations: usize) -> CycleTrace {
    assert!(computations > 0, "need at least one computation");
    let fwd_slots = schedule.n_links + schedule.id_offset_iterations / 2;
    let bwd_slots = schedule.n_links + schedule.id_offset_iterations / 2;
    let minv_cycles = schedule.minv_cycles + schedule.limb_sync_cycles;

    let mut entries = Vec::new();
    let mut completion_cycles = Vec::with_capacity(computations);
    // Next free cycle of each exclusive unit.
    let mut fwd_free = 0usize;
    let mut bwd_free = 0usize;
    let mut minv_free = 0usize;

    for k in 0..computations {
        // Forward pass: sequential link slots on the folded processor.
        let mut prev_done = 0usize; // data dependency within the computation
        for slot in 0..fwd_slots {
            let start = fwd_free.max(prev_done);
            let cycles = schedule.fwd_stage_cycles;
            entries.push(TraceEntry {
                unit: Unit::Forward,
                computation: k,
                slot,
                start_cycle: start,
                cycles,
            });
            fwd_free = start + cycles;
            prev_done = start + cycles;
        }
        // Backward pass: needs the forward pass's results (through the
        // interstage SRAM, carried in `prev_done`), then runs its own
        // sequential link slots.
        for slot in 0..bwd_slots {
            let start = bwd_free.max(prev_done);
            let cycles = schedule.bwd_cycles_per_link;
            entries.push(TraceEntry {
                unit: Unit::Backward,
                computation: k,
                slot,
                start_cycle: start,
                cycles,
            });
            bwd_free = start + cycles;
            prev_done = start + cycles;
        }
        let bwd_done = prev_done;

        // Fused −M⁻¹ stage.
        let start = minv_free.max(bwd_done);
        entries.push(TraceEntry {
            unit: Unit::Minv,
            computation: k,
            slot: 0,
            start_cycle: start,
            cycles: minv_cycles,
        });
        minv_free = start + minv_cycles;
        completion_cycles.push(start + minv_cycles);
    }

    CycleTrace {
        entries,
        completion_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_model::robots;
    use robomorphic_core::GradientTemplate;

    fn iiwa_schedule() -> CycleSchedule {
        GradientTemplate::new()
            .customize(&robots::iiwa14())
            .schedule()
    }

    #[test]
    fn emergent_single_latency_matches_closed_form() {
        let schedule = iiwa_schedule();
        let trace = step_pipeline(&schedule, 1);
        assert_eq!(
            trace.latency_cycles(0),
            schedule.single_latency_cycles(),
            "cycle-stepped latency must equal the closed-form schedule"
        );
        assert_eq!(trace.completion_cycles[0], 34);
    }

    #[test]
    fn emergent_initiation_interval_matches_closed_form() {
        let schedule = iiwa_schedule();
        let trace = step_pipeline(&schedule, 16);
        assert_eq!(
            trace.initiation_interval(),
            schedule.initiation_interval(),
            "steady-state spacing must equal the closed-form interval"
        );
    }

    #[test]
    fn emergent_numbers_for_all_builtin_robots() {
        for robot in [
            robots::iiwa14(),
            robots::hyq(),
            robots::atlas(),
            robots::hyq_floating(),
        ] {
            let schedule = GradientTemplate::new().customize(&robot).schedule();
            let trace = step_pipeline(&schedule, 8);
            assert_eq!(
                trace.latency_cycles(0),
                schedule.single_latency_cycles(),
                "{}",
                robot.name()
            );
            assert_eq!(
                trace.initiation_interval(),
                schedule.initiation_interval(),
                "{}",
                robot.name()
            );
        }
    }

    #[test]
    fn pipelining_overlaps_forward_and_backward() {
        // While computation k drains through the backward pass, k+1 must
        // already occupy the forward processor.
        let trace = step_pipeline(&iiwa_schedule(), 2);
        let k0_bwd_start = trace
            .entries
            .iter()
            .find(|e| e.computation == 0 && e.unit == Unit::Backward)
            .unwrap()
            .start_cycle;
        let k1_fwd_start = trace
            .entries
            .iter()
            .find(|e| e.computation == 1 && e.unit == Unit::Forward)
            .unwrap()
            .start_cycle;
        assert!(
            k1_fwd_start < trace.completion_cycles[0],
            "no overlap: fwd(k=1) at {k1_fwd_start}, done(k=0) at {}",
            trace.completion_cycles[0]
        );
        assert!(k0_bwd_start >= k1_fwd_start.min(k0_bwd_start));
    }

    #[test]
    fn forward_processor_saturates_in_steady_state() {
        // The forward pipe is the bottleneck (II = fwd slots × stage
        // cycles), so its utilization approaches 1 for long streams.
        let trace = step_pipeline(&iiwa_schedule(), 64);
        assert!(
            trace.utilization(Unit::Forward) > 0.95,
            "forward utilization {:.2}",
            trace.utilization(Unit::Forward)
        );
        // The backward pipe is lighter and mostly idle.
        assert!(trace.utilization(Unit::Backward) < 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one computation")]
    fn zero_computations_panics() {
        let _ = step_pipeline(&iiwa_schedule(), 0);
    }
}
