//! Cycle-level simulation of robomorphic accelerators and their
//! coprocessor deployment.
//!
//! This crate is the workspace's stand-in for the paper's Verilog/FPGA
//! artifact (see DESIGN.md's substitution table):
//!
//! * [`XUnit`] — the pruned transform matrix-vector functional unit, built
//!   from per-robot affine trig coefficients exactly as the hardware's
//!   constant-multiplier banks and pruned multiplier–adder trees are; by
//!   default it executes the optimized netlist compiled to a flat register
//!   tape (the same IR `robo-codegen` lowers to Verilog), with the
//!   coefficient path kept as a bit-identical reference oracle
//!   ([`XUnitBackend`]);
//! * [`AcceleratorSim`] — executes the full dynamics-gradient kernel
//!   (Algorithm 1) through those units in any scalar type (notably the
//!   accelerator's Q16.16 fixed point), with latency taken from the
//!   design's static cycle schedule;
//! * [`step_pipeline`] — a cycle-by-cycle, resource-constrained stepper of
//!   the folded pipeline whose emergent latency and initiation interval
//!   cross-check the closed-form schedule;
//! * [`CoprocessorSystem`] / [`IoChannel`] — the Figure 9 deployment model
//!   with PCIe transfer times pipelined against compute, producing the
//!   round-trip latencies of Figure 13.
//!
//! # Example
//!
//! ```
//! use robo_model::robots;
//! use robo_sim::{AcceleratorSim, CoprocessorSystem};
//! use robomorphic_core::GradientTemplate;
//!
//! let robot = robots::iiwa14();
//! let accel = GradientTemplate::new().customize(&robot);
//! let coproc = CoprocessorSystem::fpga_default(accel);
//! let rt = coproc.round_trip(32);
//! assert!(rt.total_s > 0.0);
//!
//! let sim = AcceleratorSim::<f64>::new(&robot);
//! assert_eq!(sim.dof(), 7);
//! ```

#![warn(missing_docs)]
// Index-based loops over fixed-size matrix dimensions are clearer than
// iterator chains in this numerical code.
#![allow(clippy::needless_range_loop)]

mod accel_sim;
mod coproc;
pub mod engine;
mod stepper;
mod xunit;

pub use accel_sim::{AcceleratorSim, SimOutput, SimWorkspace};
pub use coproc::{stream_batch, CoprocessorSystem, IoChannel, KernelInput, RoundTrip, StreamEvent};
pub use engine::{AcceleratorBackend, BackendKind, KernelFamily, RobotPlan};
pub use stepper::{step_pipeline, CycleTrace, TraceEntry, Unit};
pub use xunit::{Accumulation, XUnit, XUnitBackend};
