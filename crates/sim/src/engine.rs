//! The sim-side half of the engine layer: the accelerator backend and the
//! per-robot [`RobotPlan`].
//!
//! `robo-dynamics::engine` defines the [`GradientBackend`] seam and the
//! host-side backends; this module adds the piece only the simulator crate
//! can provide — [`AcceleratorBackend`], which routes `gradient_into`
//! through the morphology-customized [`AcceleratorSim`] (compiled netlists,
//! pruned multiplier trees, static cycle schedule) — and ties everything
//! together in [`RobotPlan`]: *customize once per robot, hand out backends
//! many times* (the paper's §4–5 methodology as a software object).

use crate::{AcceleratorSim, KernelInput, SimOutput, SimWorkspace};
use robo_dynamics::batch::GradientState;
use robo_dynamics::engine::{
    cast_mat_into, cast_mat_out, cast_slice_into, check_dims, CpuAnalytic, EngineError, FiniteDiff,
    GradientBackend, GradientBatchOutput, GradientOutput,
};
use robo_dynamics::DynamicsModel;
use robo_model::RobotModel;
use robo_sparsity::{superposition_pattern, Mask6};
use robo_spatial::{Lanes, MatN, Scalar, SERVE_LANES};
use robomorphic_core::Accelerator;
use std::sync::Arc;

/// A [`GradientBackend`] executing on the simulated morphology-customized
/// accelerator, in the accelerator's scalar type `S` (`f64` for parity
/// studies, `Fix32_16` for the paper's Q16.16 datapath).
///
/// The simulator — holding the customized design and every link unit's
/// compiled netlist — is `Arc`-shared: [`GradientBackend::fork`] gives each
/// batch worker a private warm [`SimWorkspace`] over the *same* netlists,
/// exactly as parallel host threads would share one memory-mapped
/// accelerator (§6.3). The trait boundary is `f64`; inputs are marshalled
/// to `S` and outputs back, mirroring the coprocessor's I/O conversion
/// (§6.2). Use [`AcceleratorBackend::compute`] to stay in `S` end to end.
#[derive(Debug, Clone)]
pub struct AcceleratorBackend<S: Scalar> {
    sim: Arc<AcceleratorSim<S>>,
    ws: SimWorkspace<S>,
    q_s: Vec<S>,
    qd_s: Vec<S>,
    qdd_s: Vec<S>,
    minv_s: MatN<S>,
    // Wide serving path: the same customized design rebuilt at
    // `Lanes<S, SERVE_LANES>`, plus lane-transposed staging, so batch
    // entry points run `SERVE_LANES` states per simulated instruction.
    wide: Arc<AcceleratorSim<Lanes<S, SERVE_LANES>>>,
    wide_ws: SimWorkspace<Lanes<S, SERVE_LANES>>,
    q_w: Vec<Lanes<S, SERVE_LANES>>,
    qd_w: Vec<Lanes<S, SERVE_LANES>>,
    qdd_w: Vec<Lanes<S, SERVE_LANES>>,
    minv_w: MatN<Lanes<S, SERVE_LANES>>,
    scratch: GradientOutput,
}

impl<S: Scalar> AcceleratorBackend<S> {
    /// Customizes the paper-default template for `robot` and builds the
    /// backend over its simulator.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn new(robot: &RobotModel) -> Self {
        Self::from_sim(AcceleratorSim::new(robot))
    }

    /// Wraps an explicitly configured simulator (custom design,
    /// accumulation mode, or evaluator backend).
    pub fn from_sim(sim: AcceleratorSim<S>) -> Self {
        Self::from_shared(Arc::new(sim))
    }

    /// Builds the backend over an already-shared simulator — the plan-once
    /// path: every fork and every consumer reuses the same compiled
    /// netlists. Widens the simulator to [`SERVE_LANES`] once; forks share
    /// the result.
    pub fn from_shared(sim: Arc<AcceleratorSim<S>>) -> Self {
        let wide = Arc::new(sim.widen::<SERVE_LANES>());
        Self::from_parts(sim, wide)
    }

    /// Builds over already-shared scalar and wide simulators — how forks
    /// (and [`RobotPlan`]) avoid re-widening the design.
    fn from_parts(
        sim: Arc<AcceleratorSim<S>>,
        wide: Arc<AcceleratorSim<Lanes<S, SERVE_LANES>>>,
    ) -> Self {
        let ws = SimWorkspace::for_sim(&sim);
        let wide_ws = SimWorkspace::for_sim(&wide);
        let n = sim.dof();
        Self {
            ws,
            q_s: Vec::with_capacity(n),
            qd_s: Vec::with_capacity(n),
            qdd_s: Vec::with_capacity(n),
            minv_s: MatN::zeros(n, n),
            wide_ws,
            q_w: vec![Lanes::splat(S::zero()); n],
            qd_w: vec![Lanes::splat(S::zero()); n],
            qdd_w: vec![Lanes::splat(S::zero()); n],
            minv_w: MatN::zeros(n, n),
            scratch: GradientOutput::for_dof(n),
            sim,
            wide,
        }
    }

    /// The shared simulator.
    pub fn sim(&self) -> &Arc<AcceleratorSim<S>> {
        &self.sim
    }

    /// The shared wide ([`SERVE_LANES`]-state) simulator behind the batch
    /// entry points.
    pub fn wide_sim(&self) -> &Arc<AcceleratorSim<Lanes<S, SERVE_LANES>>> {
        &self.wide
    }

    /// Cycles one gradient takes on the design's static schedule
    /// (constant per design — Figure 10's latency measurement).
    pub fn cycles_per_gradient(&self) -> usize {
        self.sim.design().schedule().single_latency_cycles()
    }

    /// A concretely-typed fork (same shared simulators — scalar and wide —
    /// fresh warm workspaces) for callers that need the native-scalar
    /// entry point.
    pub fn fork_native(&self) -> Self {
        Self::from_parts(Arc::clone(&self.sim), Arc::clone(&self.wide))
    }

    /// Runs one gradient natively in `S`, without the `f64` boundary
    /// marshalling — the entry point for consumers that already hold
    /// accelerator-typed data (e.g. the coprocessor stream).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] when any input dimension
    /// disagrees with the plan's joint count.
    pub fn compute(
        &mut self,
        q: &[S],
        qd: &[S],
        qdd: &[S],
        minv: &MatN<S>,
    ) -> Result<SimOutput<S>, EngineError> {
        check_dims(self.sim.dof(), q, qd, qdd, minv)?;
        let cycles = self
            .sim
            .compute_gradient_into(q, qd, qdd, minv, &mut self.ws);
        Ok(SimOutput {
            dtau_dq: self.ws.dtau_dq.clone(),
            dtau_dqd: self.ws.dtau_dqd.clone(),
            dqdd_dq: self.ws.dqdd_dq.clone(),
            dqdd_dqd: self.ws.dqdd_dqd.clone(),
            cycles,
        })
    }

    /// Runs a native-`S` batch through the wide simulator: full groups of
    /// [`SERVE_LANES`] states are lane-transposed and computed by one wide
    /// pass each, the ragged tail by the scalar simulator. Outputs are
    /// appended to `outputs` in input order, each bit-identical to a
    /// serial [`AcceleratorBackend::compute`] call on the same state.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] (before any output is
    /// appended) when any input's dimensions disagree with the plan's
    /// joint count.
    pub fn compute_batch(
        &mut self,
        inputs: &[KernelInput<S>],
        outputs: &mut Vec<SimOutput<S>>,
    ) -> Result<(), EngineError> {
        let n = self.sim.dof();
        for inp in inputs {
            check_dims(n, &inp.q, &inp.qd, &inp.qdd, &inp.minv)?;
        }
        const W: usize = SERVE_LANES;
        let full = inputs.len() / W;
        outputs.reserve(inputs.len());
        for chunk in 0..full {
            let base = chunk * W;
            for (l, inp) in inputs[base..base + W].iter().enumerate() {
                for k in 0..n {
                    self.q_w[k].set_lane(l, inp.q[k]);
                    self.qd_w[k].set_lane(l, inp.qd[k]);
                    self.qdd_w[k].set_lane(l, inp.qdd[k]);
                }
                for r in 0..n {
                    for c in 0..n {
                        self.minv_w[(r, c)].set_lane(l, inp.minv[(r, c)]);
                    }
                }
            }
            let cycles = self.wide.compute_gradient_into(
                &self.q_w,
                &self.qd_w,
                &self.qdd_w,
                &self.minv_w,
                &mut self.wide_ws,
            );
            for l in 0..W {
                let unlane = |m: &MatN<Lanes<S, W>>| {
                    let mut out = MatN::zeros(n, n);
                    for r in 0..n {
                        for c in 0..n {
                            out[(r, c)] = m[(r, c)].lane(l);
                        }
                    }
                    out
                };
                outputs.push(SimOutput {
                    dtau_dq: unlane(&self.wide_ws.dtau_dq),
                    dtau_dqd: unlane(&self.wide_ws.dtau_dqd),
                    dqdd_dq: unlane(&self.wide_ws.dqdd_dq),
                    dqdd_dqd: unlane(&self.wide_ws.dqdd_dqd),
                    cycles,
                });
            }
        }
        for inp in &inputs[full * W..] {
            let out = self.compute(&inp.q, &inp.qd, &inp.qdd, &inp.minv)?;
            outputs.push(out);
        }
        Ok(())
    }
}

impl<S: Scalar> GradientBackend for AcceleratorBackend<S> {
    fn name(&self) -> &'static str {
        "accel"
    }

    fn dof(&self) -> usize {
        self.sim.dof()
    }

    fn gradient_into(
        &mut self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        minv: &MatN<f64>,
        out: &mut GradientOutput,
    ) -> Result<(), EngineError> {
        check_dims(self.dof(), q, qd, qdd, minv)?;
        cast_slice_into(q, &mut self.q_s);
        cast_slice_into(qd, &mut self.qd_s);
        cast_slice_into(qdd, &mut self.qdd_s);
        cast_mat_into(minv, &mut self.minv_s);
        let _cycles = self.sim.compute_gradient_into(
            &self.q_s,
            &self.qd_s,
            &self.qdd_s,
            &self.minv_s,
            &mut self.ws,
        );
        cast_mat_out(&self.ws.dqdd_dq, &mut out.dqdd_dq);
        cast_mat_out(&self.ws.dqdd_dqd, &mut out.dqdd_dqd);
        cast_mat_out(&self.ws.dtau_dq, &mut out.dtau_dq);
        cast_mat_out(&self.ws.dtau_dqd, &mut out.dtau_dqd);
        Ok(())
    }

    fn fork(&self) -> Box<dyn GradientBackend + '_> {
        Box::new(self.fork_native())
    }

    /// The wide SoA override: full groups of [`SERVE_LANES`] states are
    /// marshalled to `S`, lane-transposed, and run through one wide
    /// simulated pass; the ragged tail takes the scalar simulator.
    /// Allocation-free once `self` and `out` are warm, and per-state
    /// bit-identical to serial [`GradientBackend::gradient_into`] calls.
    fn gradient_batch_into(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
    ) -> Result<(), EngineError> {
        let n = self.dof();
        for s in states {
            check_dims(n, s.q, s.qd, s.qdd, s.minv)?;
        }
        out.reset(states.len(), n);
        const W: usize = SERVE_LANES;
        let n2 = n * n;
        let full = states.len() / W;
        for chunk in 0..full {
            let base = chunk * W;
            for (l, s) in states[base..base + W].iter().enumerate() {
                for k in 0..n {
                    self.q_w[k].set_lane(l, S::from_f64(s.q[k]));
                    self.qd_w[k].set_lane(l, S::from_f64(s.qd[k]));
                    self.qdd_w[k].set_lane(l, S::from_f64(s.qdd[k]));
                }
                for r in 0..n {
                    for c in 0..n {
                        self.minv_w[(r, c)].set_lane(l, S::from_f64(s.minv[(r, c)]));
                    }
                }
            }
            let _cycles = self.wide.compute_gradient_into(
                &self.q_w,
                &self.qd_w,
                &self.qdd_w,
                &self.minv_w,
                &mut self.wide_ws,
            );
            for l in 0..W {
                let dst = (base + l) * n2;
                for r in 0..n {
                    for c in 0..n {
                        let k = dst + r * n + c;
                        out.dqdd_dq[k] = self.wide_ws.dqdd_dq[(r, c)].lane(l).to_f64();
                        out.dqdd_dqd[k] = self.wide_ws.dqdd_dqd[(r, c)].lane(l).to_f64();
                        out.dtau_dq[k] = self.wide_ws.dtau_dq[(r, c)].lane(l).to_f64();
                        out.dtau_dqd[k] = self.wide_ws.dtau_dqd[(r, c)].lane(l).to_f64();
                    }
                }
            }
        }
        // Ragged tail through the scalar simulator; `scratch` is a warm
        // field (temporarily moved out to satisfy the borrow checker).
        let mut scratch = std::mem::take(&mut self.scratch);
        for (i, s) in states.iter().enumerate().skip(full * W) {
            self.gradient_into(s.q, s.qd, s.qdd, s.minv, &mut scratch)?;
            out.store(i, &scratch);
        }
        self.scratch = scratch;
        Ok(())
    }
}

/// Which [`GradientBackend`] a consumer wants — the CLI's `--backend`
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// [`CpuAnalytic`]: the host's analytical workspace kernels.
    #[default]
    Cpu,
    /// [`AcceleratorBackend`]: the simulated customized accelerator.
    Accel,
    /// [`FiniteDiff`]: the finite-difference oracle.
    FiniteDiff,
}

impl BackendKind {
    /// All kinds, in the CLI's listing order.
    pub const ALL: [Self; 3] = [Self::Cpu, Self::Accel, Self::FiniteDiff];

    /// The CLI spelling (`cpu`, `accel`, `fd`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Cpu => "cpu",
            Self::Accel => "accel",
            Self::FiniteDiff => "fd",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cpu" => Ok(Self::Cpu),
            "accel" => Ok(Self::Accel),
            "fd" => Ok(Self::FiniteDiff),
            other => Err(format!(
                "unknown backend `{other}` (expected cpu, accel, or fd)"
            )),
        }
    }
}

/// Everything derived from one robot morphology, built once and executed
/// many times — the software mirror of the paper's design flow (Figure 5):
/// parameterize the template per robot, then reuse the resulting datapath
/// for every control iteration.
///
/// The plan holds the dynamics model, the morphology-derived superposition
/// sparsity mask, the customized accelerator design with its optimized,
/// compiled per-link netlists, and hands out [`GradientBackend`]s whose
/// warm workspaces execute over those `Arc`-shared artifacts. Cloning the
/// plan, forking a backend, or spreading work across [`BatchEngine`]
/// threads never re-derives any of it.
///
/// [`BatchEngine`]: robo_dynamics::batch::BatchEngine
///
/// # Examples
///
/// ```
/// use robo_model::robots;
/// use robo_sim::engine::{BackendKind, RobotPlan};
///
/// let plan = RobotPlan::new(&robots::iiwa14());
/// assert_eq!(plan.dof(), 7);
/// let mut backend = plan.backend(BackendKind::Accel);
/// assert_eq!(backend.name(), "accel");
/// ```
#[derive(Debug, Clone)]
pub struct RobotPlan {
    robot: RobotModel,
    model: Arc<DynamicsModel<f64>>,
    mask: Mask6,
    sim: Arc<AcceleratorSim<f64>>,
    wide_sim: Arc<AcceleratorSim<Lanes<f64, SERVE_LANES>>>,
}

impl RobotPlan {
    /// Builds the complete plan for `robot`: dynamics model, sparsity
    /// analysis, template customization, and netlist compilation all
    /// happen here, once.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn new(robot: &RobotModel) -> Self {
        let sim = Arc::new(AcceleratorSim::new(robot));
        let wide_sim = Arc::new(sim.widen::<SERVE_LANES>());
        Self {
            robot: robot.clone(),
            model: Arc::new(DynamicsModel::new(robot)),
            mask: superposition_pattern(robot),
            sim,
            wide_sim,
        }
    }

    /// The source morphology.
    pub fn robot(&self) -> &RobotModel {
        &self.robot
    }

    /// The shared host dynamics model.
    pub fn model(&self) -> &Arc<DynamicsModel<f64>> {
        &self.model
    }

    /// The customized accelerator design (schedule, resources).
    pub fn design(&self) -> &Accelerator {
        self.sim.design()
    }

    /// The morphology-derived superposition sparsity mask shared by every
    /// link's transform unit (§4).
    pub fn superposition_mask(&self) -> Mask6 {
        self.mask
    }

    /// The shared accelerator simulator (compiled netlists included).
    pub fn sim(&self) -> &Arc<AcceleratorSim<f64>> {
        &self.sim
    }

    /// The shared wide ([`SERVE_LANES`]-state) simulator driving the
    /// accelerator backend's batch entry points.
    pub fn wide_sim(&self) -> &Arc<AcceleratorSim<Lanes<f64, SERVE_LANES>>> {
        &self.wide_sim
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> usize {
        self.model.dof()
    }

    /// A CPU analytical backend over the plan's shared model.
    pub fn cpu_backend(&self) -> CpuAnalytic<f64> {
        CpuAnalytic::with_model(Arc::clone(&self.model))
    }

    /// An accelerator backend over the plan's shared simulators (scalar
    /// and wide — nothing is re-customized or re-widened per backend).
    pub fn accelerator_backend(&self) -> AcceleratorBackend<f64> {
        AcceleratorBackend::from_parts(Arc::clone(&self.sim), Arc::clone(&self.wide_sim))
    }

    /// A finite-difference oracle over the plan's shared model.
    pub fn finite_diff_backend(&self) -> FiniteDiff {
        FiniteDiff::with_model(Arc::clone(&self.model))
    }

    /// A boxed backend of the requested kind — the CLI/`--backend` entry
    /// point.
    pub fn backend(&self, kind: BackendKind) -> Box<dyn GradientBackend> {
        match kind {
            BackendKind::Cpu => Box::new(self.cpu_backend()),
            BackendKind::Accel => Box::new(self.accelerator_backend()),
            BackendKind::FiniteDiff => Box::new(self.finite_diff_backend()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_dynamics::{forward_dynamics, mass_matrix_inverse};
    use robo_model::robots;

    fn case(plan: &RobotPlan) -> (Vec<f64>, Vec<f64>, Vec<f64>, MatN<f64>) {
        let n = plan.dof();
        let q: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 0.2).collect();
        let qd: Vec<f64> = (0..n).map(|i| 0.05 * i as f64).collect();
        let tau = vec![0.4; n];
        let qdd = forward_dynamics(plan.model(), &q, &qd, &tau).unwrap();
        let minv = mass_matrix_inverse(plan.model(), &q).unwrap();
        (q, qd, qdd, minv)
    }

    #[test]
    fn plan_shares_artifacts_across_backends() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let model_count = Arc::strong_count(plan.model());
        let _cpu = plan.cpu_backend();
        let _fd = plan.finite_diff_backend();
        assert_eq!(Arc::strong_count(plan.model()), model_count + 2);
        let sim_count = Arc::strong_count(plan.sim());
        let wide_count = Arc::strong_count(plan.wide_sim());
        let accel = plan.accelerator_backend();
        let _fork = accel.fork_native();
        assert_eq!(Arc::strong_count(plan.sim()), sim_count + 2);
        // The wide simulator is widened once in the plan and shared by
        // every backend and fork — never rebuilt.
        assert_eq!(Arc::strong_count(plan.wide_sim()), wide_count + 2);
    }

    #[test]
    fn accel_wide_batch_into_bit_identical_to_serial() {
        // 7 states: one full lane group of 4 plus a ragged tail of 3.
        let plan = RobotPlan::new(&robots::iiwa14());
        let n = plan.dof();
        let cases: Vec<_> = (0..7)
            .map(|k| {
                let q: Vec<f64> = (0..n).map(|i| 0.07 * (i + k) as f64 - 0.2).collect();
                let qd: Vec<f64> = (0..n).map(|i| 0.03 * i as f64 - 0.01 * k as f64).collect();
                let tau = vec![0.3 + 0.1 * k as f64; n];
                let qdd = forward_dynamics(plan.model(), &q, &qd, &tau).unwrap();
                let minv = mass_matrix_inverse(plan.model(), &q).unwrap();
                (q, qd, qdd, minv)
            })
            .collect();
        let states: Vec<GradientState<'_, f64>> = cases
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();

        let mut wide = plan.accelerator_backend();
        let mut got = GradientBatchOutput::new();
        wide.gradient_batch_into(&states, &mut got).unwrap();

        // Serial reference through the same backend's scalar path.
        let mut serial = plan.accelerator_backend();
        let mut scratch = GradientOutput::for_dof(n);
        let mut want = GradientBatchOutput::new();
        want.reset(states.len(), n);
        for (i, s) in states.iter().enumerate() {
            serial
                .gradient_into(s.q, s.qd, s.qdd, s.minv, &mut scratch)
                .unwrap();
            want.store(i, &scratch);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn native_compute_batch_matches_serial_compute() {
        // The native-S wide path must be bit-identical to serial compute()
        // calls — including in the accelerator's fixed-point type.
        use robo_fixed::Fix32_16;
        let robot = robots::iiwa14();
        let plan = RobotPlan::new(&robot);
        let mut backend = AcceleratorBackend::<Fix32_16>::new(&robot);
        let n = plan.dof();
        // 6 inputs: one full lane group plus a tail of 2.
        let inputs: Vec<crate::KernelInput<Fix32_16>> = (0..6)
            .map(|k| {
                let (q, qd, qdd, minv) = {
                    let q: Vec<f64> = (0..n).map(|i| 0.1 * (i + k) as f64 - 0.3).collect();
                    let qd: Vec<f64> = (0..n).map(|i| 0.05 * i as f64).collect();
                    let tau = vec![0.5; n];
                    let qdd = forward_dynamics(plan.model(), &q, &qd, &tau).unwrap();
                    let minv = mass_matrix_inverse(plan.model(), &q).unwrap();
                    (q, qd, qdd, minv)
                };
                crate::KernelInput {
                    q: q.iter().map(|x| Fix32_16::from_f64(*x)).collect(),
                    qd: qd.iter().map(|x| Fix32_16::from_f64(*x)).collect(),
                    qdd: qdd.iter().map(|x| Fix32_16::from_f64(*x)).collect(),
                    minv: minv.cast(),
                }
            })
            .collect();

        let mut batched = Vec::new();
        backend.compute_batch(&inputs, &mut batched).unwrap();
        assert_eq!(batched.len(), inputs.len());
        let mut serial = backend.fork_native();
        for (inp, got) in inputs.iter().zip(&batched) {
            let want = serial
                .compute(&inp.q, &inp.qd, &inp.qdd, &inp.minv)
                .unwrap();
            assert_eq!(got.dtau_dq, want.dtau_dq);
            assert_eq!(got.dtau_dqd, want.dtau_dqd);
            assert_eq!(got.dqdd_dq, want.dqdd_dq);
            assert_eq!(got.dqdd_dqd, want.dqdd_dqd);
            assert_eq!(got.cycles, want.cycles);
        }
    }

    #[test]
    fn accel_backend_matches_raw_sim() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let mut backend = plan.accelerator_backend();
        let got = backend.gradient(&q, &qd, &qdd, &minv).unwrap();
        let want = plan.sim().compute_gradient(&q, &qd, &qdd, &minv);
        assert_eq!(got.dqdd_dq, want.dqdd_dq);
        assert_eq!(got.dqdd_dqd, want.dqdd_dqd);
        assert_eq!(got.id_gradient.dtau_dq, want.dtau_dq);
    }

    #[test]
    fn native_compute_reports_schedule_cycles() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let mut backend = plan.accelerator_backend();
        let out = backend.compute(&q, &qd, &qdd, &minv).unwrap();
        assert_eq!(out.cycles, backend.cycles_per_gradient());
        assert_eq!(out.cycles, 34);
    }

    #[test]
    fn boxed_backends_agree_on_dof_and_reject_bad_dims() {
        let plan = RobotPlan::new(&robots::hyq());
        let (q, qd, qdd, minv) = case(&plan);
        for kind in BackendKind::ALL {
            let mut b = plan.backend(kind);
            assert_eq!(b.dof(), 12, "{kind}");
            assert_eq!(kind.as_str().parse::<BackendKind>().unwrap(), kind);
            let mut out = GradientOutput::new();
            let err = b
                .gradient_into(&q[..3], &qd, &qdd, &minv, &mut out)
                .unwrap_err();
            assert_eq!(
                err,
                EngineError::DimensionMismatch {
                    what: "q",
                    expected: 12,
                    got: 3
                }
            );
        }
        assert!("verilog".parse::<BackendKind>().is_err());
    }

    #[test]
    fn fixed_point_backend_marshals_at_boundary() {
        use robo_fixed::Fix32_16;
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let mut fx = AcceleratorBackend::<Fix32_16>::new(plan.robot());
        let fx_grad = fx.gradient(&q, &qd, &qdd, &minv).unwrap();
        let mut f64_backend = plan.accelerator_backend();
        let ref_grad = f64_backend.gradient(&q, &qd, &qdd, &minv).unwrap();
        // Q16.16 keeps ~4 fractional digits; the marshalled result must be
        // near the f64 reference but generally not equal.
        let scale = ref_grad.dqdd_dq.max_abs().max(1.0);
        assert!(fx_grad.dqdd_dq.max_abs_diff(&ref_grad.dqdd_dq) / scale < 1e-2);
    }
}
