//! The sim-side half of the engine layer: the accelerator backend and the
//! per-robot [`RobotPlan`].
//!
//! `robo-dynamics::engine` defines the [`GradientBackend`] seam and the
//! host-side backends; this module adds the piece only the simulator crate
//! can provide — [`AcceleratorBackend`], which routes `gradient_into`
//! through the morphology-customized [`AcceleratorSim`] (compiled netlists,
//! pruned multiplier trees, static cycle schedule) — and ties everything
//! together in [`RobotPlan`]: *customize once per robot, hand out backends
//! many times* (the paper's §4–5 methodology as a software object).

use crate::{AcceleratorSim, KernelInput, SimOutput, SimWorkspace};
use robo_codegen::{generate_kernel_family, CompiledNetlist, OptReport, SharingReport};
use robo_dynamics::batch::GradientState;
use robo_dynamics::engine::{
    cast_mat_into, cast_mat_out, cast_slice_into, cast_slice_out, check_dims, CpuAnalytic,
    DynamicsBackend, EngineError, FiniteDiff, GradientBackend, GradientBatchOutput, GradientOutput,
    KernelKind, KernelOutput,
};
use robo_dynamics::{DynamicsModel, MorphologyKey};
use robo_model::RobotModel;
use robo_sparsity::{superposition_pattern, Mask6};
use robo_spatial::{ExecTier, MatN, Scalar, WideScalar, WideVisit};
use robomorphic_core::Accelerator;
use std::sync::Arc;

/// Object-safe face of the wide (lane-transposed) simulated serving path
/// at an erased lane type, selected per [`ExecTier`]. The lane element
/// type always equals the owning backend's scalar type `S`, so wide
/// results stay bit-identical to the scalar simulator.
trait WideSimPath<S: Scalar>: Send + Sync {
    /// Lane width: states per wide simulated pass.
    fn width(&self) -> usize;

    /// Live references sharing the inner wide simulator (plan-sharing
    /// diagnostics).
    fn sim_refs(&self) -> usize;

    /// Runs one full lane group (`states.len() == width()`) through the
    /// `f64` boundary, scattering per-state results into `out` at state
    /// indices `base..`.
    fn run_group_grad(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
        base: usize,
    );

    /// Runs one full native-`S` lane group (`inputs.len() == width()`),
    /// appending per-state outputs in input order.
    fn run_group_native(&mut self, inputs: &[KernelInput<S>], outputs: &mut Vec<SimOutput<S>>);

    /// A fresh-workspace instance over the same `Arc`-shared wide
    /// simulator.
    fn fork_path(&self) -> Box<dyn WideSimPath<S>>;
}

/// The concrete wide path at lane type `V`: the customized design rebuilt
/// at `V`, plus lane-transposed staging buffers.
struct WideSim<V: WideScalar> {
    sim: Arc<AcceleratorSim<V>>,
    ws: SimWorkspace<V>,
    q_w: Vec<V>,
    qd_w: Vec<V>,
    qdd_w: Vec<V>,
    minv_w: MatN<V>,
}

impl<V: WideScalar> WideSim<V> {
    fn new(sim: Arc<AcceleratorSim<V>>) -> Self {
        let n = sim.dof();
        Self {
            ws: SimWorkspace::for_sim(&sim),
            q_w: vec![V::splat(V::Elem::zero()); n],
            qd_w: vec![V::splat(V::Elem::zero()); n],
            qdd_w: vec![V::splat(V::Elem::zero()); n],
            minv_w: MatN::zeros(n, n),
            sim,
        }
    }

    /// Lane-transposes one group already in `V::Elem` into the staging
    /// buffers and runs the wide simulator; returns the schedule cycles.
    fn run_staged(&mut self) -> usize {
        self.sim.compute_gradient_into(
            &self.q_w,
            &self.qd_w,
            &self.qdd_w,
            &self.minv_w,
            &mut self.ws,
        )
    }
}

impl<V: WideScalar> WideSimPath<V::Elem> for WideSim<V> {
    fn width(&self) -> usize {
        V::WIDTH
    }

    fn sim_refs(&self) -> usize {
        Arc::strong_count(&self.sim)
    }

    fn run_group_grad(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
        base: usize,
    ) {
        let n = self.sim.dof();
        let w = V::WIDTH;
        debug_assert_eq!(states.len(), w, "run_group_grad takes one full lane group");
        let marshal = robo_trace::span_items("lane.marshal", w);
        for (l, s) in states.iter().enumerate() {
            for k in 0..n {
                self.q_w[k].set_lane(l, V::Elem::from_f64(s.q[k]));
                self.qd_w[k].set_lane(l, V::Elem::from_f64(s.qd[k]));
                self.qdd_w[k].set_lane(l, V::Elem::from_f64(s.qdd[k]));
            }
            for r in 0..n {
                for c in 0..n {
                    self.minv_w[(r, c)].set_lane(l, V::Elem::from_f64(s.minv[(r, c)]));
                }
            }
        }
        drop(marshal);
        let kernel = robo_trace::span_items("accel.wide", w);
        self.run_staged();
        drop(kernel);
        let _scatter = robo_trace::span_items("lane.scatter", w);
        let n2 = n * n;
        for l in 0..w {
            let dst = (base + l) * n2;
            for r in 0..n {
                for c in 0..n {
                    let k = dst + r * n + c;
                    out.dqdd_dq[k] = self.ws.dqdd_dq[(r, c)].lane(l).to_f64();
                    out.dqdd_dqd[k] = self.ws.dqdd_dqd[(r, c)].lane(l).to_f64();
                    out.dtau_dq[k] = self.ws.dtau_dq[(r, c)].lane(l).to_f64();
                    out.dtau_dqd[k] = self.ws.dtau_dqd[(r, c)].lane(l).to_f64();
                }
            }
        }
    }

    fn run_group_native(
        &mut self,
        inputs: &[KernelInput<V::Elem>],
        outputs: &mut Vec<SimOutput<V::Elem>>,
    ) {
        let n = self.sim.dof();
        let w = V::WIDTH;
        debug_assert_eq!(
            inputs.len(),
            w,
            "run_group_native takes one full lane group"
        );
        for (l, inp) in inputs.iter().enumerate() {
            for k in 0..n {
                self.q_w[k].set_lane(l, inp.q[k]);
                self.qd_w[k].set_lane(l, inp.qd[k]);
                self.qdd_w[k].set_lane(l, inp.qdd[k]);
            }
            for r in 0..n {
                for c in 0..n {
                    self.minv_w[(r, c)].set_lane(l, inp.minv[(r, c)]);
                }
            }
        }
        let cycles = self.run_staged();
        for l in 0..w {
            let unlane = |m: &MatN<V>| {
                let mut out = MatN::zeros(n, n);
                for r in 0..n {
                    for c in 0..n {
                        out[(r, c)] = m[(r, c)].lane(l);
                    }
                }
                out
            };
            outputs.push(SimOutput {
                dtau_dq: unlane(&self.ws.dtau_dq),
                dtau_dqd: unlane(&self.ws.dtau_dqd),
                dqdd_dq: unlane(&self.ws.dqdd_dq),
                dqdd_dqd: unlane(&self.ws.dqdd_dqd),
                cycles,
            });
        }
    }

    fn fork_path(&self) -> Box<dyn WideSimPath<V::Elem>> {
        Box::new(Self::new(Arc::clone(&self.sim)))
    }
}

/// Builds the wide simulated path for the lane type `S` serves on `tier`.
fn make_wide_sim_path<S: Scalar>(
    sim: &AcceleratorSim<S>,
    tier: ExecTier,
) -> Box<dyn WideSimPath<S>> {
    struct Mk<'a, S: Scalar>(&'a AcceleratorSim<S>);
    impl<S: Scalar> WideVisit<S> for Mk<'_, S> {
        type Out = Box<dyn WideSimPath<S>>;
        fn visit<V: WideScalar<Elem = S>>(self) -> Box<dyn WideSimPath<S>> {
            Box::new(WideSim::<V>::new(Arc::new(self.0.cast_to::<V>())))
        }
    }
    S::dispatch_wide(tier, Mk(sim))
}

/// A [`GradientBackend`] executing on the simulated morphology-customized
/// accelerator, in the accelerator's scalar type `S` (`f64` for parity
/// studies, `Fix32_16` for the paper's Q16.16 datapath).
///
/// The simulator — holding the customized design and every link unit's
/// compiled netlist — is `Arc`-shared: [`GradientBackend::fork`] gives each
/// batch worker a private warm [`SimWorkspace`] over the *same* netlists,
/// exactly as parallel host threads would share one memory-mapped
/// accelerator (§6.3). The trait boundary is `f64`; inputs are marshalled
/// to `S` and outputs back, mirroring the coprocessor's I/O conversion
/// (§6.2). Use [`AcceleratorBackend::compute`] to stay in `S` end to end.
pub struct AcceleratorBackend<S: Scalar> {
    sim: Arc<AcceleratorSim<S>>,
    tier: ExecTier,
    ws: SimWorkspace<S>,
    q_s: Vec<S>,
    qd_s: Vec<S>,
    qdd_s: Vec<S>,
    minv_s: MatN<S>,
    /// Wide serving path: the same customized design rebuilt at the
    /// tier's lane type, type-erased so the backend stays independent of
    /// the lane width.
    wide: Box<dyn WideSimPath<S>>,
    scratch: GradientOutput,
}

impl<S: Scalar> std::fmt::Debug for AcceleratorBackend<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcceleratorBackend")
            .field("scalar", &S::name())
            .field("dof", &self.sim.dof())
            .field("tier", &self.tier)
            .field("serve_width", &self.wide.width())
            .finish_non_exhaustive()
    }
}

impl<S: Scalar> Clone for AcceleratorBackend<S> {
    fn clone(&self) -> Self {
        self.fork_native()
    }
}

impl<S: Scalar> AcceleratorBackend<S> {
    /// Customizes the paper-default template for `robot` and builds the
    /// backend over its simulator, at the fastest [`ExecTier`] the host
    /// supports.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn new(robot: &RobotModel) -> Self {
        Self::from_sim(AcceleratorSim::new(robot))
    }

    /// Wraps an explicitly configured simulator (custom design,
    /// accumulation mode, or evaluator backend).
    pub fn from_sim(sim: AcceleratorSim<S>) -> Self {
        Self::from_shared(Arc::new(sim))
    }

    /// Builds the backend over an already-shared simulator — the plan-once
    /// path: every fork and every consumer reuses the same compiled
    /// netlists. Widens the simulator once (at the fastest host tier);
    /// forks share the result.
    pub fn from_shared(sim: Arc<AcceleratorSim<S>>) -> Self {
        Self::from_shared_tier(sim, ExecTier::detect())
    }

    /// Builds the backend over a shared simulator at an explicit
    /// [`ExecTier`] (clamped to what the host supports). All tiers are
    /// bit-identical; only throughput differs.
    pub fn from_shared_tier(sim: Arc<AcceleratorSim<S>>, tier: ExecTier) -> Self {
        let tier = tier.clamp_to_host();
        let wide = make_wide_sim_path(&sim, tier);
        Self::from_parts(sim, tier, wide)
    }

    /// Builds over an already-constructed wide path — how forks (and
    /// [`RobotPlan`]) avoid re-widening the design.
    fn from_parts(
        sim: Arc<AcceleratorSim<S>>,
        tier: ExecTier,
        wide: Box<dyn WideSimPath<S>>,
    ) -> Self {
        let ws = SimWorkspace::for_sim(&sim);
        let n = sim.dof();
        Self {
            ws,
            q_s: Vec::with_capacity(n),
            qd_s: Vec::with_capacity(n),
            qdd_s: Vec::with_capacity(n),
            minv_s: MatN::zeros(n, n),
            scratch: GradientOutput::for_dof(n),
            tier,
            wide,
            sim,
        }
    }

    /// The shared simulator.
    pub fn sim(&self) -> &Arc<AcceleratorSim<S>> {
        &self.sim
    }

    /// The execution tier the wide batch paths run at (already clamped to
    /// host support).
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// States evaluated per wide simulated pass — the active tier's lane
    /// width for `S`.
    pub fn serve_width(&self) -> usize {
        self.wide.width()
    }

    /// Cycles one gradient takes on the design's static schedule
    /// (constant per design — Figure 10's latency measurement).
    pub fn cycles_per_gradient(&self) -> usize {
        self.sim.design().schedule().single_latency_cycles()
    }

    /// A concretely-typed fork (same shared simulators — scalar and wide —
    /// fresh warm workspaces) for callers that need the native-scalar
    /// entry point.
    pub fn fork_native(&self) -> Self {
        Self::from_parts(Arc::clone(&self.sim), self.tier, self.wide.fork_path())
    }

    /// Runs one gradient natively in `S`, without the `f64` boundary
    /// marshalling — the entry point for consumers that already hold
    /// accelerator-typed data (e.g. the coprocessor stream).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] when any input dimension
    /// disagrees with the plan's joint count.
    pub fn compute(
        &mut self,
        q: &[S],
        qd: &[S],
        qdd: &[S],
        minv: &MatN<S>,
    ) -> Result<SimOutput<S>, EngineError> {
        check_dims(self.sim.dof(), q, qd, qdd, minv)?;
        let cycles = self
            .sim
            .compute_gradient_into(q, qd, qdd, minv, &mut self.ws);
        Ok(SimOutput {
            dtau_dq: self.ws.dtau_dq.clone(),
            dtau_dqd: self.ws.dtau_dqd.clone(),
            dqdd_dq: self.ws.dqdd_dq.clone(),
            dqdd_dqd: self.ws.dqdd_dqd.clone(),
            cycles,
        })
    }

    /// Runs a native-`S` batch through the wide simulator: full lane
    /// groups of [`AcceleratorBackend::serve_width`] states are
    /// lane-transposed and computed by one wide pass each, the ragged
    /// tail by the scalar simulator. Outputs are appended to `outputs` in
    /// input order, each bit-identical to a serial
    /// [`AcceleratorBackend::compute`] call on the same state — on every
    /// tier.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::DimensionMismatch`] (before any output is
    /// appended) when any input's dimensions disagree with the plan's
    /// joint count.
    pub fn compute_batch(
        &mut self,
        inputs: &[KernelInput<S>],
        outputs: &mut Vec<SimOutput<S>>,
    ) -> Result<(), EngineError> {
        let n = self.sim.dof();
        for inp in inputs {
            check_dims(n, &inp.q, &inp.qd, &inp.qdd, &inp.minv)?;
        }
        let w = self.wide.width();
        let full = inputs.len() / w;
        outputs.reserve(inputs.len());
        for chunk in 0..full {
            let base = chunk * w;
            self.wide.run_group_native(&inputs[base..base + w], outputs);
        }
        for inp in &inputs[full * w..] {
            let out = self.compute(&inp.q, &inp.qd, &inp.qdd, &inp.minv)?;
            outputs.push(out);
        }
        Ok(())
    }
}

impl<S: Scalar> GradientBackend for AcceleratorBackend<S> {
    fn name(&self) -> &'static str {
        "accel"
    }

    fn dof(&self) -> usize {
        self.sim.dof()
    }

    fn gradient_into(
        &mut self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        minv: &MatN<f64>,
        out: &mut GradientOutput,
    ) -> Result<(), EngineError> {
        check_dims(self.dof(), q, qd, qdd, minv)?;
        cast_slice_into(q, &mut self.q_s);
        cast_slice_into(qd, &mut self.qd_s);
        cast_slice_into(qdd, &mut self.qdd_s);
        cast_mat_into(minv, &mut self.minv_s);
        let _cycles = self.sim.compute_gradient_into(
            &self.q_s,
            &self.qd_s,
            &self.qdd_s,
            &self.minv_s,
            &mut self.ws,
        );
        cast_mat_out(&self.ws.dqdd_dq, &mut out.dqdd_dq);
        cast_mat_out(&self.ws.dqdd_dqd, &mut out.dqdd_dqd);
        cast_mat_out(&self.ws.dtau_dq, &mut out.dtau_dq);
        cast_mat_out(&self.ws.dtau_dqd, &mut out.dtau_dqd);
        Ok(())
    }

    fn fork(&self) -> Box<dyn GradientBackend + '_> {
        Box::new(self.fork_native())
    }

    fn serve_width(&self) -> usize {
        self.wide.width()
    }

    /// The wide SoA override: full lane groups of
    /// [`AcceleratorBackend::serve_width`] states are marshalled to `S`,
    /// lane-transposed, and run through one wide simulated pass; the
    /// ragged tail takes the scalar simulator. Allocation-free once
    /// `self` and `out` are warm, and per-state bit-identical to serial
    /// [`GradientBackend::gradient_into`] calls on every tier.
    fn gradient_batch_into(
        &mut self,
        states: &[GradientState<'_, f64>],
        out: &mut GradientBatchOutput,
    ) -> Result<(), EngineError> {
        let _span = robo_trace::span_items("grad.accel.batch", states.len());
        let n = self.dof();
        for s in states {
            check_dims(n, s.q, s.qd, s.qdd, s.minv)?;
        }
        out.reset(states.len(), n);
        let w = self.wide.width();
        let full = states.len() / w;
        for chunk in 0..full {
            let base = chunk * w;
            self.wide.run_group_grad(&states[base..base + w], out, base);
        }
        // Ragged tail through the scalar simulator; `scratch` is a warm
        // field (temporarily moved out to satisfy the borrow checker).
        let mut scratch = std::mem::take(&mut self.scratch);
        for (i, s) in states.iter().enumerate().skip(full * w) {
            self.gradient_into(s.q, s.qd, s.qdd, s.minv, &mut scratch)?;
            out.store(i, &scratch);
        }
        self.scratch = scratch;
        Ok(())
    }
}

impl<S: Scalar> DynamicsBackend for AcceleratorBackend<S> {
    fn run_into(
        &mut self,
        kernel: KernelKind,
        q: &[f64],
        qd: &[f64],
        third: &[f64],
        minv: &MatN<f64>,
        out: &mut KernelOutput,
    ) -> Result<(), EngineError> {
        match kernel {
            KernelKind::Gradient => self.gradient_into(q, qd, third, minv, &mut out.grad),
            KernelKind::InverseDynamics => {
                check_dims(self.dof(), q, qd, third, minv)?;
                let _span = robo_trace::span("kernel.accel.id");
                cast_slice_into(q, &mut self.q_s);
                cast_slice_into(qd, &mut self.qd_s);
                cast_slice_into(third, &mut self.qdd_s);
                self.sim
                    .compute_rnea_into(&self.q_s, &self.qd_s, &self.qdd_s, &mut self.ws);
                cast_slice_out(&self.ws.tau, &mut out.tau);
                Ok(())
            }
            KernelKind::ForwardDynamics => {
                check_dims(self.dof(), q, qd, third, minv)?;
                let _span = robo_trace::span("kernel.accel.fd");
                cast_slice_into(q, &mut self.q_s);
                cast_slice_into(qd, &mut self.qd_s);
                cast_slice_into(third, &mut self.qdd_s); // τ rides the third slot
                cast_mat_into(minv, &mut self.minv_s);
                self.sim.compute_fd_into(
                    &self.q_s,
                    &self.qd_s,
                    &self.qdd_s,
                    &self.minv_s,
                    &mut self.ws,
                );
                cast_slice_out(&self.ws.qdd, &mut out.qdd);
                Ok(())
            }
        }
    }
}

/// The plan's multifunction tape: every kernel's datapath merged into one
/// compiled netlist with cross-kernel subexpression sharing, plus the
/// shared-vs-dedicated accounting — built once per morphology.
#[derive(Debug, Clone)]
pub struct KernelFamily {
    /// The optimized merged family netlist, compiled to the serving tape.
    pub tape: CompiledNetlist<f64>,
    /// Pre/post optimization stats of the merged netlist.
    pub report: OptReport,
    /// Shared-vs-dedicated resource accounting across the family.
    pub sharing: SharingReport,
}

/// Which [`GradientBackend`] a consumer wants — the CLI's `--backend`
/// vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// [`CpuAnalytic`]: the host's analytical workspace kernels.
    #[default]
    Cpu,
    /// [`AcceleratorBackend`]: the simulated customized accelerator.
    Accel,
    /// [`FiniteDiff`]: the finite-difference oracle.
    FiniteDiff,
}

impl BackendKind {
    /// All kinds, in the CLI's listing order.
    pub const ALL: [Self; 3] = [Self::Cpu, Self::Accel, Self::FiniteDiff];

    /// The CLI spelling (`cpu`, `accel`, `fd`).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Cpu => "cpu",
            Self::Accel => "accel",
            Self::FiniteDiff => "fd",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "cpu" => Ok(Self::Cpu),
            "accel" => Ok(Self::Accel),
            "fd" => Ok(Self::FiniteDiff),
            other => Err(format!(
                "unknown backend `{other}` (expected cpu, accel, or fd)"
            )),
        }
    }
}

/// Everything derived from one robot morphology, built once and executed
/// many times — the software mirror of the paper's design flow (Figure 5):
/// parameterize the template per robot, then reuse the resulting datapath
/// for every control iteration.
///
/// The plan holds the dynamics model, the morphology-derived superposition
/// sparsity mask, the customized accelerator design with its optimized,
/// compiled per-link netlists, and hands out [`GradientBackend`]s whose
/// warm workspaces execute over those `Arc`-shared artifacts. Cloning the
/// plan, forking a backend, or spreading work across [`BatchEngine`]
/// threads never re-derives any of it.
///
/// [`BatchEngine`]: robo_dynamics::batch::BatchEngine
///
/// # Examples
///
/// ```
/// use robo_model::robots;
/// use robo_sim::engine::{BackendKind, RobotPlan};
///
/// let plan = RobotPlan::new(&robots::iiwa14());
/// assert_eq!(plan.dof(), 7);
/// let mut backend = plan.backend(BackendKind::Accel);
/// assert_eq!(backend.name(), "accel");
/// ```
pub struct RobotPlan {
    robot: RobotModel,
    model: Arc<DynamicsModel<f64>>,
    mask: Mask6,
    sim: Arc<AcceleratorSim<f64>>,
    tier: ExecTier,
    key: MorphologyKey,
    family: Arc<KernelFamily>,
    /// Prototype wide path, widened once at plan build; every accelerator
    /// backend and fork shares its inner wide simulator.
    wide_proto: Box<dyn WideSimPath<f64>>,
}

impl std::fmt::Debug for RobotPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RobotPlan")
            .field("robot", &self.robot.name())
            .field("dof", &self.model.dof())
            .field("tier", &self.tier)
            .field("serve_width", &self.wide_proto.width())
            .finish_non_exhaustive()
    }
}

impl Clone for RobotPlan {
    fn clone(&self) -> Self {
        Self {
            robot: self.robot.clone(),
            model: Arc::clone(&self.model),
            mask: self.mask,
            sim: Arc::clone(&self.sim),
            tier: self.tier,
            key: self.key,
            family: Arc::clone(&self.family),
            wide_proto: self.wide_proto.fork_path(),
        }
    }
}

impl RobotPlan {
    /// Builds the complete plan for `robot`: dynamics model, sparsity
    /// analysis, template customization, and netlist compilation all
    /// happen here, once — at the fastest [`ExecTier`] the host supports.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn new(robot: &RobotModel) -> Self {
        Self::with_tier(robot, ExecTier::detect())
    }

    /// Builds the plan at an explicit [`ExecTier`] (clamped to what the
    /// host supports) — the `--tier` CLI entry point. Every backend the
    /// plan hands out serves wide batches at this tier; all tiers are
    /// bit-identical, so the choice affects throughput only.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn with_tier(robot: &RobotModel, tier: ExecTier) -> Self {
        let _span = robo_trace::span("plan.build");
        let tier = tier.clamp_to_host();
        let sim = {
            let _span = robo_trace::span("plan.customize");
            let mut sim = AcceleratorSim::new(robot);
            if tier == ExecTier::Jit {
                // Before `make_wide_sim_path`: `cast_to` carries the JIT
                // flag onto the wide simulator, so the whole serving
                // stack — scalar and wide — runs stitched code.
                sim.enable_jit();
            }
            Arc::new(sim)
        };
        let wide_proto = {
            let _span = robo_trace::span("plan.widen");
            make_wide_sim_path(&sim, tier)
        };
        let model = {
            let _span = robo_trace::span("plan.model");
            Arc::new(DynamicsModel::new(robot))
        };
        let mask = {
            let _span = robo_trace::span("plan.sparsity");
            superposition_pattern(robot)
        };
        let key = MorphologyKey::of_model(&model);
        let family = {
            let _span = robo_trace::span("plan.family");
            let (netlist, report, sharing) = generate_kernel_family(robot, mask, &KernelKind::ALL)
                .expect("distinct kernels never collide on output names");
            let mut tape = CompiledNetlist::compile(&netlist);
            if tier == ExecTier::Jit {
                tape.enable_jit();
            }
            Arc::new(KernelFamily {
                tape,
                report,
                sharing,
            })
        };
        Self {
            robot: robot.clone(),
            model,
            mask,
            sim,
            tier,
            key,
            family,
            wide_proto,
        }
    }

    /// The execution tier the plan's backends serve wide batches at
    /// (already clamped to host support).
    pub fn tier(&self) -> ExecTier {
        self.tier
    }

    /// The template JIT's emission report when the plan's kernel-family
    /// tape runs stitched native code; `None` when the plan executes
    /// the threaded tape instead (the JIT tier was not requested, or
    /// emission fell back — e.g. the code buffer could not be mapped).
    pub fn jit_report(&self) -> Option<robo_codegen::JitReport> {
        self.family.tape.jit_report()
    }

    /// States evaluated per wide kernel instruction by the plan's
    /// backends — the tier's `f64` lane width.
    pub fn serve_width(&self) -> usize {
        self.wide_proto.width()
    }

    /// Live references sharing the plan's wide simulator — a diagnostic
    /// hook for the plan-once contract (backends and forks share the
    /// widened design; nothing re-widens it).
    pub fn wide_sim_refs(&self) -> usize {
        self.wide_proto.sim_refs()
    }

    /// The source morphology.
    pub fn robot(&self) -> &RobotModel {
        &self.robot
    }

    /// The canonical [`MorphologyKey`] of the plan's robot, computed once
    /// at plan build — the identity plan caches key on.
    pub fn morphology_key(&self) -> MorphologyKey {
        self.key
    }

    /// The shared host dynamics model.
    pub fn model(&self) -> &Arc<DynamicsModel<f64>> {
        &self.model
    }

    /// The customized accelerator design (schedule, resources).
    pub fn design(&self) -> &Accelerator {
        self.sim.design()
    }

    /// The morphology-derived superposition sparsity mask shared by every
    /// link's transform unit (§4).
    pub fn superposition_mask(&self) -> Mask6 {
        self.mask
    }

    /// The shared accelerator simulator (compiled netlists included).
    pub fn sim(&self) -> &Arc<AcceleratorSim<f64>> {
        &self.sim
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> usize {
        self.model.dof()
    }

    /// A CPU analytical backend over the plan's shared model, at the
    /// plan's tier.
    pub fn cpu_backend(&self) -> CpuAnalytic<f64> {
        CpuAnalytic::with_model_tier(Arc::clone(&self.model), self.tier)
    }

    /// An accelerator backend over the plan's shared simulators (scalar
    /// and wide — nothing is re-customized or re-widened per backend).
    pub fn accelerator_backend(&self) -> AcceleratorBackend<f64> {
        AcceleratorBackend::from_parts(
            Arc::clone(&self.sim),
            self.tier,
            self.wide_proto.fork_path(),
        )
    }

    /// A finite-difference oracle over the plan's shared model.
    pub fn finite_diff_backend(&self) -> FiniteDiff {
        FiniteDiff::with_model(Arc::clone(&self.model))
    }

    /// The multifunction kernel-family tape and its sharing accounting,
    /// built once at plan construction and `Arc`-shared by clones.
    pub fn kernel_family(&self) -> &Arc<KernelFamily> {
        &self.family
    }

    /// Shared-vs-dedicated resource accounting for the plan's kernel
    /// family (shorthand for `kernel_family().sharing`).
    pub fn sharing_report(&self) -> &SharingReport {
        &self.family.sharing
    }

    /// A boxed backend of the requested kind — the CLI/`--backend` entry
    /// point. The returned [`DynamicsBackend`] runs every kernel of the
    /// family through [`DynamicsBackend::run_into`]; gradient-only
    /// consumers coerce it to `Box<dyn GradientBackend>` unchanged.
    pub fn backend(&self, kind: BackendKind) -> Box<dyn DynamicsBackend> {
        match kind {
            BackendKind::Cpu => Box::new(self.cpu_backend()),
            BackendKind::Accel => Box::new(self.accelerator_backend()),
            BackendKind::FiniteDiff => Box::new(self.finite_diff_backend()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_dynamics::{forward_dynamics, mass_matrix_inverse};
    use robo_model::robots;

    fn case(plan: &RobotPlan) -> (Vec<f64>, Vec<f64>, Vec<f64>, MatN<f64>) {
        let n = plan.dof();
        let q: Vec<f64> = (0..n).map(|i| 0.1 * i as f64 - 0.2).collect();
        let qd: Vec<f64> = (0..n).map(|i| 0.05 * i as f64).collect();
        let tau = vec![0.4; n];
        let qdd = forward_dynamics(plan.model(), &q, &qd, &tau).unwrap();
        let minv = mass_matrix_inverse(plan.model(), &q).unwrap();
        (q, qd, qdd, minv)
    }

    #[test]
    fn plan_exposes_the_canonical_morphology_key() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let direct = MorphologyKey::of_model(&DynamicsModel::<f64>::new(&robots::iiwa14()));
        assert_eq!(plan.morphology_key(), direct);
        assert_eq!(plan.clone().morphology_key(), direct);
        let other = RobotPlan::new(&robots::hyq());
        assert_ne!(plan.morphology_key(), other.morphology_key());
    }

    #[test]
    fn plan_shares_artifacts_across_backends() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let model_count = Arc::strong_count(plan.model());
        let _cpu = plan.cpu_backend();
        let _fd = plan.finite_diff_backend();
        assert_eq!(Arc::strong_count(plan.model()), model_count + 2);
        let sim_count = Arc::strong_count(plan.sim());
        let wide_count = plan.wide_sim_refs();
        let accel = plan.accelerator_backend();
        let _fork = accel.fork_native();
        assert_eq!(Arc::strong_count(plan.sim()), sim_count + 2);
        // The wide simulator is widened once in the plan and shared by
        // every backend and fork — never rebuilt.
        assert_eq!(plan.wide_sim_refs(), wide_count + 2);
        assert_eq!(accel.serve_width(), plan.serve_width());
        assert_eq!(accel.tier(), plan.tier());
    }

    #[test]
    fn accel_wide_batch_into_bit_identical_to_serial() {
        // 7 states: one full lane group of 4 plus a ragged tail of 3.
        let plan = RobotPlan::new(&robots::iiwa14());
        let n = plan.dof();
        let cases: Vec<_> = (0..7)
            .map(|k| {
                let q: Vec<f64> = (0..n).map(|i| 0.07 * (i + k) as f64 - 0.2).collect();
                let qd: Vec<f64> = (0..n).map(|i| 0.03 * i as f64 - 0.01 * k as f64).collect();
                let tau = vec![0.3 + 0.1 * k as f64; n];
                let qdd = forward_dynamics(plan.model(), &q, &qd, &tau).unwrap();
                let minv = mass_matrix_inverse(plan.model(), &q).unwrap();
                (q, qd, qdd, minv)
            })
            .collect();
        let states: Vec<GradientState<'_, f64>> = cases
            .iter()
            .map(|(q, qd, qdd, minv)| GradientState { q, qd, qdd, minv })
            .collect();

        let mut wide = plan.accelerator_backend();
        let mut got = GradientBatchOutput::new();
        wide.gradient_batch_into(&states, &mut got).unwrap();

        // Serial reference through the same backend's scalar path.
        let mut serial = plan.accelerator_backend();
        let mut scratch = GradientOutput::for_dof(n);
        let mut want = GradientBatchOutput::new();
        want.reset(states.len(), n);
        for (i, s) in states.iter().enumerate() {
            serial
                .gradient_into(s.q, s.qd, s.qdd, s.minv, &mut scratch)
                .unwrap();
            want.store(i, &scratch);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn native_compute_batch_matches_serial_compute() {
        // The native-S wide path must be bit-identical to serial compute()
        // calls — including in the accelerator's fixed-point type.
        use robo_fixed::Fix32_16;
        let robot = robots::iiwa14();
        let plan = RobotPlan::new(&robot);
        let mut backend = AcceleratorBackend::<Fix32_16>::new(&robot);
        let n = plan.dof();
        // 6 inputs: one full lane group plus a tail of 2.
        let inputs: Vec<crate::KernelInput<Fix32_16>> = (0..6)
            .map(|k| {
                let (q, qd, qdd, minv) = {
                    let q: Vec<f64> = (0..n).map(|i| 0.1 * (i + k) as f64 - 0.3).collect();
                    let qd: Vec<f64> = (0..n).map(|i| 0.05 * i as f64).collect();
                    let tau = vec![0.5; n];
                    let qdd = forward_dynamics(plan.model(), &q, &qd, &tau).unwrap();
                    let minv = mass_matrix_inverse(plan.model(), &q).unwrap();
                    (q, qd, qdd, minv)
                };
                crate::KernelInput {
                    q: q.iter().map(|x| Fix32_16::from_f64(*x)).collect(),
                    qd: qd.iter().map(|x| Fix32_16::from_f64(*x)).collect(),
                    qdd: qdd.iter().map(|x| Fix32_16::from_f64(*x)).collect(),
                    minv: minv.cast(),
                }
            })
            .collect();

        let mut batched = Vec::new();
        backend.compute_batch(&inputs, &mut batched).unwrap();
        assert_eq!(batched.len(), inputs.len());
        let mut serial = backend.fork_native();
        for (inp, got) in inputs.iter().zip(&batched) {
            let want = serial
                .compute(&inp.q, &inp.qd, &inp.qdd, &inp.minv)
                .unwrap();
            assert_eq!(got.dtau_dq, want.dtau_dq);
            assert_eq!(got.dtau_dqd, want.dtau_dqd);
            assert_eq!(got.dqdd_dq, want.dqdd_dq);
            assert_eq!(got.dqdd_dqd, want.dqdd_dqd);
            assert_eq!(got.cycles, want.cycles);
        }
    }

    #[test]
    fn accel_backend_matches_raw_sim() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let mut backend = plan.accelerator_backend();
        let got = backend.gradient(&q, &qd, &qdd, &minv).unwrap();
        let want = plan.sim().compute_gradient(&q, &qd, &qdd, &minv);
        assert_eq!(got.dqdd_dq, want.dqdd_dq);
        assert_eq!(got.dqdd_dqd, want.dqdd_dqd);
        assert_eq!(got.id_gradient.dtau_dq, want.dtau_dq);
    }

    #[test]
    fn native_compute_reports_schedule_cycles() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let mut backend = plan.accelerator_backend();
        let out = backend.compute(&q, &qd, &qdd, &minv).unwrap();
        assert_eq!(out.cycles, backend.cycles_per_gradient());
        assert_eq!(out.cycles, 34);
    }

    #[test]
    fn boxed_backends_agree_on_dof_and_reject_bad_dims() {
        let plan = RobotPlan::new(&robots::hyq());
        let (q, qd, qdd, minv) = case(&plan);
        for kind in BackendKind::ALL {
            let mut b = plan.backend(kind);
            assert_eq!(b.dof(), 12, "{kind}");
            assert_eq!(kind.as_str().parse::<BackendKind>().unwrap(), kind);
            let mut out = GradientOutput::new();
            let err = b
                .gradient_into(&q[..3], &qd, &qdd, &minv, &mut out)
                .unwrap_err();
            assert_eq!(
                err,
                EngineError::DimensionMismatch {
                    what: "q",
                    expected: 12,
                    got: 3
                }
            );
        }
        assert!("verilog".parse::<BackendKind>().is_err());
    }

    #[test]
    fn run_into_kernels_match_cpu_reference() {
        // The accelerator's multifunction entry point agrees with the CPU
        // analytic backend on every kernel of the family (1e-12 relative
        // for the reorder-sensitive paths, as in the parity suites).
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let tau = robo_dynamics::rnea(plan.model(), &q, &qd, &qdd).tau;
        let mut cpu = plan.backend(BackendKind::Cpu);
        let mut accel = plan.backend(BackendKind::Accel);
        for kernel in KernelKind::ALL {
            let third = if kernel == KernelKind::ForwardDynamics {
                &tau
            } else {
                &qdd
            };
            let want = cpu.run(kernel, &q, &qd, third, &minv).unwrap();
            let got = accel.run(kernel, &q, &qd, third, &minv).unwrap();
            match kernel {
                KernelKind::InverseDynamics => {
                    for (g, w) in got.tau.iter().zip(&want.tau) {
                        assert!((g - w).abs() <= 1e-10 * w.abs().max(1.0), "{g} vs {w}");
                    }
                }
                KernelKind::ForwardDynamics => {
                    // CPU runs ABA; the accelerator runs M⁻¹(τ − C) — two
                    // algorithms, agreement bounded by M⁻¹ conditioning.
                    for (g, w) in got.qdd.iter().zip(&want.qdd) {
                        assert!((g - w).abs() <= 1e-8 * w.abs().max(1.0), "{g} vs {w}");
                    }
                }
                KernelKind::Gradient => {
                    let scale = want.grad.dqdd_dq.max_abs().max(1.0);
                    assert!(got.grad.dqdd_dq.max_abs_diff(&want.grad.dqdd_dq) / scale < 1e-12);
                }
            }
        }
    }

    #[test]
    fn boxed_dynamics_backend_coerces_to_gradient_backend() {
        // The compat contract: gradient-only consumers take the new boxed
        // backend unchanged via dyn upcasting.
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let boxed: Box<dyn DynamicsBackend> = plan.backend(BackendKind::Accel);
        let mut legacy: Box<dyn GradientBackend> = boxed;
        assert!(legacy.gradient(&q, &qd, &qdd, &minv).is_ok());
    }

    #[test]
    fn plan_builds_shared_kernel_family_once() {
        let plan = RobotPlan::new(&robots::iiwa14());
        let sharing = plan.sharing_report();
        assert_eq!(sharing.per_kernel.len(), 3);
        assert!(sharing.shared_nodes() > 0, "{sharing}");
        // Clones share the compiled family tape, never rebuild it.
        let family_refs = Arc::strong_count(plan.kernel_family());
        let clone = plan.clone();
        assert_eq!(Arc::strong_count(plan.kernel_family()), family_refs + 1);
        assert!(clone.kernel_family().tape.num_outputs() > 0);
    }

    #[test]
    fn fixed_point_backend_marshals_at_boundary() {
        use robo_fixed::Fix32_16;
        let plan = RobotPlan::new(&robots::iiwa14());
        let (q, qd, qdd, minv) = case(&plan);
        let mut fx = AcceleratorBackend::<Fix32_16>::new(plan.robot());
        let fx_grad = fx.gradient(&q, &qd, &qdd, &minv).unwrap();
        let mut f64_backend = plan.accelerator_backend();
        let ref_grad = f64_backend.gradient(&q, &qd, &qdd, &minv).unwrap();
        // Q16.16 keeps ~4 fractional digits; the marshalled result must be
        // near the f64 reference but generally not equal.
        let scale = ref_grad.dqdd_dq.max_abs().max(1.0);
        assert!(fx_grad.dqdd_dq.max_abs_diff(&ref_grad.dqdd_dq) / scale < 1e-2);
    }
}
