//! Functional simulation of the customized accelerator.
//!
//! [`AcceleratorSim`] executes the dynamics-gradient kernel exactly as the
//! hardware is organized (Figure 8): an inverse-dynamics chain running one
//! link ahead, `2N` parallel derivative datapaths (∂/∂q and ∂/∂q̇ per
//! link), a backward pass with the `(∂X/∂q)ᵀ` seed, and the fused `−M⁻¹`
//! MAC stage — all arithmetic routed through the pruned [`XUnit`]
//! functional units in the accelerator's (fixed-point) scalar type, and all
//! timing taken from the design's static [`CycleSchedule`].
//!
//! [`CycleSchedule`]: robomorphic_core::CycleSchedule

use crate::xunit::XUnit;
use robo_model::RobotModel;
use robo_sparsity::superposition_pattern;
use robo_spatial::{Force, Lanes, MatN, Motion, Scalar, SpatialInertia};
use robomorphic_core::{Accelerator, GradientTemplate};

/// Output of one simulated gradient computation.
#[derive(Debug, Clone)]
pub struct SimOutput<S> {
    /// `∂τ/∂q` (step 2 output).
    pub dtau_dq: MatN<S>,
    /// `∂τ/∂q̇` (step 2 output).
    pub dtau_dqd: MatN<S>,
    /// `∂q̈/∂q = −M⁻¹ ∂τ/∂q` (step 3 output).
    pub dqdd_dq: MatN<S>,
    /// `∂q̈/∂q̇ = −M⁻¹ ∂τ/∂q̇` (step 3 output).
    pub dqdd_dqd: MatN<S>,
    /// Cycles consumed (static schedule; pipelining ignored, as in the
    /// paper's Figure 10 measurement).
    pub cycles: usize,
}

/// Reusable buffers for [`AcceleratorSim::compute_gradient_into`]:
/// the simulated on-chip state (link quantities, datapath registers) plus
/// the output matrices.
///
/// Constructing the workspace allocates; every subsequent
/// `compute_gradient_into` call through it (at the same or smaller degrees
/// of freedom) performs **zero heap allocations** — the software analogue
/// of the accelerator's statically-provisioned registers.
#[derive(Debug, Clone)]
pub struct SimWorkspace<S> {
    /// Output `∂τ/∂q`, valid after a call.
    pub dtau_dq: MatN<S>,
    /// Output `∂τ/∂q̇`, valid after a call.
    pub dtau_dqd: MatN<S>,
    /// Output `∂q̈/∂q`, valid after a call.
    pub dqdd_dq: MatN<S>,
    /// Output `∂q̈/∂q̇`, valid after a call.
    pub dqdd_dqd: MatN<S>,
    /// Output joint torques, valid after a
    /// [`AcceleratorSim::compute_rnea_into`] call (also holds the bias
    /// torques after [`AcceleratorSim::compute_fd_into`]).
    pub tau: Vec<S>,
    /// Output joint accelerations, valid after a
    /// [`AcceleratorSim::compute_fd_into`] call.
    pub qdd: Vec<S>,
    trig: Vec<(S, S)>,
    v: Vec<Motion<S>>,
    a: Vec<Motion<S>>,
    f: Vec<Force<S>>,
    zero_qdd: Vec<S>,
    dv_q: Vec<Motion<S>>,
    da_q: Vec<Motion<S>>,
    df_q: Vec<Force<S>>,
    dv_qd: Vec<Motion<S>>,
    da_qd: Vec<Motion<S>>,
    df_qd: Vec<Force<S>>,
}

impl<S: Scalar> Default for SimWorkspace<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S: Scalar> SimWorkspace<S> {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self {
            dtau_dq: MatN::zeros(0, 0),
            dtau_dqd: MatN::zeros(0, 0),
            dqdd_dq: MatN::zeros(0, 0),
            dqdd_dqd: MatN::zeros(0, 0),
            tau: Vec::new(),
            qdd: Vec::new(),
            trig: Vec::new(),
            v: Vec::new(),
            a: Vec::new(),
            f: Vec::new(),
            zero_qdd: Vec::new(),
            dv_q: Vec::new(),
            da_q: Vec::new(),
            df_q: Vec::new(),
            dv_qd: Vec::new(),
            da_qd: Vec::new(),
            df_qd: Vec::new(),
        }
    }

    /// A workspace pre-sized for `sim`, so even the first call through it
    /// is allocation-free.
    pub fn for_sim(sim: &AcceleratorSim<S>) -> Self {
        let n = sim.dof();
        Self {
            dtau_dq: MatN::zeros(n, n),
            dtau_dqd: MatN::zeros(n, n),
            dqdd_dq: MatN::zeros(n, n),
            dqdd_dqd: MatN::zeros(n, n),
            tau: vec![S::zero(); n],
            qdd: vec![S::zero(); n],
            trig: Vec::with_capacity(n),
            v: vec![Motion::zero(); n],
            a: vec![Motion::zero(); n],
            f: vec![Force::zero(); n],
            zero_qdd: vec![S::zero(); n],
            dv_q: vec![Motion::zero(); n],
            da_q: vec![Motion::zero(); n],
            df_q: vec![Force::zero(); n],
            dv_qd: vec![Motion::zero(); n],
            da_qd: vec![Motion::zero(); n],
            df_qd: vec![Force::zero(); n],
        }
    }

    /// Consumes the workspace, yielding the last call's output without
    /// copying. `cycles` is the value returned by that call.
    pub fn into_output(self, cycles: usize) -> SimOutput<S> {
        SimOutput {
            dtau_dq: self.dtau_dq,
            dtau_dqd: self.dtau_dqd,
            dqdd_dq: self.dqdd_dq,
            dqdd_dqd: self.dqdd_dqd,
            cycles,
        }
    }
}

/// A functional, cycle-accounted simulator of a robot-customized dynamics
/// gradient accelerator.
///
/// # Examples
///
/// ```
/// use robo_fixed::Fix32_16;
/// use robo_sim::AcceleratorSim;
/// use robo_model::robots;
/// use robo_spatial::{MatN, Scalar};
///
/// let robot = robots::iiwa14();
/// let sim = AcceleratorSim::<Fix32_16>::new(&robot);
/// let q = [0.1_f64; 7].map(Fix32_16::from_f64);
/// let zero = [0.0_f64; 7].map(Fix32_16::from_f64);
/// let minv = MatN::<Fix32_16>::identity(7);
/// let out = sim.compute_gradient(&q, &zero, &zero, &minv);
/// assert_eq!(out.cycles, 34);
/// ```
#[derive(Debug, Clone)]
pub struct AcceleratorSim<S> {
    robot: RobotModel,
    design: Accelerator,
    x_units: Vec<XUnit<S>>,
    inertias: Vec<SpatialInertia<S>>,
    subspaces: Vec<Motion<S>>,
    parents: Vec<Option<usize>>,
    ancestor_mask: Vec<u64>,
    base_acceleration: Motion<S>,
}

impl<S: Scalar> AcceleratorSim<S> {
    /// Customizes the paper-default template for `robot` and builds its
    /// simulator (standard gravity).
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn new(robot: &RobotModel) -> Self {
        Self::with_design(robot, GradientTemplate::new().customize(robot))
    }

    /// Like [`AcceleratorSim::new`], but with the functional units'
    /// dot-product trees in the given accumulation mode (see
    /// [`crate::Accumulation`]).
    pub fn with_accumulation(robot: &RobotModel, accumulation: crate::Accumulation) -> Self {
        let mut sim = Self::new(robot);
        for unit in &mut sim.x_units {
            unit.set_accumulation(accumulation);
        }
        sim
    }

    /// Selects which evaluator executes the functional units' arithmetic
    /// (see [`crate::XUnitBackend`]). The default is the compiled netlist
    /// tape; results are bit-identical either way.
    pub fn set_backend(&mut self, backend: crate::XUnitBackend) {
        for unit in &mut self.x_units {
            unit.set_backend(backend);
        }
    }

    /// Enables the copy-and-patch template JIT on every functional
    /// unit's compiled tapes. Returns `true` when every unit is now
    /// JIT-backed; on unsupported hosts nothing changes and execution
    /// transparently stays on the threaded tapes. Results are
    /// bit-identical either way.
    pub fn enable_jit(&mut self) -> bool {
        let mut all = true;
        for unit in &mut self.x_units {
            all &= unit.enable_jit();
        }
        all
    }

    /// Whether every functional unit currently executes through the JIT.
    pub fn jit_enabled(&self) -> bool {
        self.x_units.iter().all(crate::XUnit::jit_enabled)
    }

    /// Builds a simulator for an explicit customized design.
    ///
    /// # Panics
    ///
    /// Panics if the robot has more than 64 links.
    pub fn with_design(robot: &RobotModel, design: Accelerator) -> Self {
        let n = robot.dof();
        assert!(n <= 64, "robots with more than 64 links are not supported");
        let shared_mask = superposition_pattern(robot);
        let mut ancestor_mask = vec![0u64; n];
        for i in 0..n {
            let mut mask = 1u64 << i;
            if let Some(p) = robot.parent(i) {
                mask |= ancestor_mask[p];
            }
            ancestor_mask[i] = mask;
        }
        Self {
            robot: robot.clone(),
            design,
            x_units: (0..n)
                .map(|i| XUnit::with_mask(robot, i, shared_mask))
                .collect(),
            inertias: robot.links().iter().map(|l| l.inertia.cast()).collect(),
            subspaces: robot
                .links()
                .iter()
                .map(|l| l.joint.motion_subspace())
                .collect(),
            parents: (0..n).map(|i| robot.parent(i)).collect(),
            ancestor_mask,
            base_acceleration: Motion::new(
                robo_spatial::Vec3::zero(),
                robo_spatial::Vec3::new(
                    S::zero(),
                    S::zero(),
                    S::from_f64(robo_dynamics::STANDARD_GRAVITY),
                ),
            ),
        }
    }

    /// The underlying customized design (schedule, resources).
    pub fn design(&self) -> &Accelerator {
        &self.design
    }

    /// The source morphology the simulator was customized for.
    pub fn robot(&self) -> &RobotModel {
        &self.robot
    }

    /// Re-targets the simulator at the wide scalar `Lanes<S, W>` for the
    /// SoA serving path: the same customized design is rebuilt at the wide
    /// type, then every functional unit's accumulation mode and evaluator
    /// backend are carried over. All unit constants are derived from
    /// snapped `f64` probes through `S::from_f64` — a lane splat on
    /// `Lanes` — so one wide run is bit-identical, lane for lane, to `W`
    /// scalar runs through `self`.
    pub fn widen<const W: usize>(&self) -> AcceleratorSim<Lanes<S, W>> {
        self.cast_to::<Lanes<S, W>>()
    }

    /// Re-targets the simulator at any scalar type — the general form of
    /// [`AcceleratorSim::widen`], also used to rebuild the design at a
    /// native SIMD lane type for the tiered serving path. All unit
    /// constants are derived from snapped `f64` probes through
    /// `T::from_f64`, so the cast is exact for every supported scalar.
    pub fn cast_to<T: Scalar>(&self) -> AcceleratorSim<T> {
        let mut cast = AcceleratorSim::<T>::with_design(&self.robot, self.design.clone());
        for (w, s) in cast.x_units.iter_mut().zip(&self.x_units) {
            w.set_accumulation(s.accumulation());
            w.set_backend(s.backend());
            if s.jit_enabled() {
                w.enable_jit();
            }
        }
        cast
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> usize {
        self.parents.len()
    }

    #[inline]
    fn influences(&self, j: usize, i: usize) -> bool {
        self.ancestor_mask[i] & (1u64 << j) != 0
    }

    /// Runs one gradient computation through the accelerator: Algorithm 1
    /// with `q̈` and `M⁻¹` provided by the host (§5.1).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths or `minv` dimensions differ from the DoF.
    pub fn compute_gradient(&self, q: &[S], qd: &[S], qdd: &[S], minv: &MatN<S>) -> SimOutput<S> {
        let mut ws = SimWorkspace::for_sim(self);
        let cycles = self.compute_gradient_into(q, qd, qdd, minv, &mut ws);
        ws.into_output(cycles)
    }

    /// Like [`AcceleratorSim::compute_gradient`], but writing into a
    /// reusable [`SimWorkspace`] (zero heap allocations once the workspace
    /// is warm) and returning the cycle count. Results are bit-identical to
    /// the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths or `minv` dimensions differ from the DoF.
    pub fn compute_gradient_into(
        &self,
        q: &[S],
        qd: &[S],
        qdd: &[S],
        minv: &MatN<S>,
        ws: &mut SimWorkspace<S>,
    ) -> usize {
        let n = self.dof();
        assert_eq!(q.len(), n, "q length mismatch");
        assert_eq!(qd.len(), n, "qd length mismatch");
        assert_eq!(qdd.len(), n, "qdd length mismatch");
        assert_eq!((minv.rows(), minv.cols()), (n, n), "minv shape mismatch");

        let SimWorkspace {
            dtau_dq,
            dtau_dqd,
            dqdd_dq,
            dqdd_dqd,
            tau,
            trig,
            v,
            a,
            f,
            dv_q,
            da_q,
            df_q,
            dv_qd,
            da_qd,
            df_qd,
            ..
        } = ws;

        // Host-cached trig inputs (§5.1: "the sin and cos of the link
        // position q ... can also be cached from an earlier stage").
        trig.clear();
        trig.extend((0..n).map(|i| self.x_units[i].inputs_for(q[i])));

        // --- ID chain (runs one link ahead of the datapaths) -------------
        self.id_sweep(qd, qdd, trig, v, a, f, tau);

        // --- ∇ID datapaths -------------------------------------------------
        dtau_dq.resize_zeroed(n, n);
        dtau_dqd.resize_zeroed(n, n);
        dv_q.clear();
        dv_q.resize(n, Motion::zero());
        da_q.clear();
        da_q.resize(n, Motion::zero());
        df_q.clear();
        df_q.resize(n, Force::zero());
        dv_qd.clear();
        dv_qd.resize(n, Motion::zero());
        da_qd.clear();
        da_qd.resize(n, Motion::zero());
        df_qd.clear();
        df_qd.resize(n, Force::zero());

        for j in 0..n {
            for slot in 0..n {
                dv_q[slot] = Motion::zero();
                da_q[slot] = Motion::zero();
                df_q[slot] = Force::zero();
                dv_qd[slot] = Motion::zero();
                da_qd[slot] = Motion::zero();
                df_qd[slot] = Force::zero();
            }

            for i in 0..n {
                if !self.influences(j, i) {
                    continue;
                }
                let (s_q, c_q) = trig[i];
                let xu = &self.x_units[i];
                let s = self.subspaces[i];
                let s_qd = s.scale(qd[i]);
                let parent = self.parents[i];

                let (mut dv_q_i, mut dv_qd_i, mut da_q_i, mut da_qd_i) = match parent {
                    Some(p) if self.influences(j, p) => (
                        xu.apply_motion(s_q, c_q, dv_q[p]),
                        xu.apply_motion(s_q, c_q, dv_qd[p]),
                        xu.apply_motion(s_q, c_q, da_q[p]),
                        xu.apply_motion(s_q, c_q, da_qd[p]),
                    ),
                    _ => (
                        Motion::zero(),
                        Motion::zero(),
                        Motion::zero(),
                        Motion::zero(),
                    ),
                };

                if i == j {
                    let v_parent = match parent {
                        Some(p) => v[p],
                        None => Motion::zero(),
                    };
                    let a_parent = match parent {
                        Some(p) => a[p],
                        None => self.base_acceleration,
                    };
                    let xv = xu.apply_motion(s_q, c_q, v_parent);
                    let xa = xu.apply_motion(s_q, c_q, a_parent);
                    dv_q_i -= s.cross_motion(xv);
                    da_q_i -= s.cross_motion(xa);
                    dv_qd_i += s;
                    da_qd_i += v[i].cross_motion(s);
                }

                da_q_i += dv_q_i.cross_motion(s_qd);
                da_qd_i += dv_qd_i.cross_motion(s_qd);

                let inertia = &self.inertias[i];
                let iv = inertia.apply(v[i]);
                df_q[i] = inertia.apply(da_q_i)
                    + dv_q_i.cross_force(iv)
                    + v[i].cross_force(inertia.apply(dv_q_i));
                df_qd[i] = inertia.apply(da_qd_i)
                    + dv_qd_i.cross_force(iv)
                    + v[i].cross_force(inertia.apply(dv_qd_i));

                dv_q[i] = dv_q_i;
                dv_qd[i] = dv_qd_i;
                da_q[i] = da_q_i;
                da_qd[i] = da_qd_i;
            }

            for i in (0..n).rev() {
                dtau_dq[(i, j)] = self.subspaces[i].dot(df_q[i]);
                dtau_dqd[(i, j)] = self.subspaces[i].dot(df_qd[i]);
                if let Some(p) = self.parents[i] {
                    let (s_q, c_q) = trig[i];
                    let xu = &self.x_units[i];
                    let mut dfp_q = xu.tr_apply_force(s_q, c_q, df_q[i]);
                    if i == j {
                        let seed = self.subspaces[i].cross_force(f[i]);
                        dfp_q += xu.tr_apply_force(s_q, c_q, seed);
                    }
                    let dfp_qd = xu.tr_apply_force(s_q, c_q, df_qd[i]);
                    df_q[p] += dfp_q;
                    df_qd[p] += dfp_qd;
                }
            }
        }

        // --- Fused −M⁻¹ MAC stage (step 3, two cycles) ---------------------
        dqdd_dq.resize_zeroed(n, n);
        dqdd_dqd.resize_zeroed(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc_q = S::zero();
                let mut acc_qd = S::zero();
                for k in 0..n {
                    acc_q += minv[(i, k)] * dtau_dq[(k, j)];
                    acc_qd += minv[(i, k)] * dtau_dqd[(k, j)];
                }
                dqdd_dq[(i, j)] = -acc_q;
                dqdd_dqd[(i, j)] = -acc_qd;
            }
        }

        self.design.schedule().single_latency_cycles()
    }

    /// The inverse-dynamics chain (RNEA) through the pruned functional
    /// units: forward sweep for link velocities/accelerations/forces, then
    /// the backward `Xᵀ` accumulation, extracting `τ_i = sᵢ·fᵢ` as each
    /// link's force becomes final. This is the stage every kernel in the
    /// multifunction family shares.
    #[allow(clippy::too_many_arguments)]
    fn id_sweep(
        &self,
        qd: &[S],
        qdd: &[S],
        trig: &[(S, S)],
        v: &mut Vec<Motion<S>>,
        a: &mut Vec<Motion<S>>,
        f: &mut Vec<Force<S>>,
        tau: &mut Vec<S>,
    ) {
        let n = self.dof();
        v.clear();
        v.resize(n, Motion::zero());
        a.clear();
        a.resize(n, Motion::zero());
        f.clear();
        f.resize(n, Force::zero());
        tau.clear();
        tau.resize(n, S::zero());
        for i in 0..n {
            let (s_q, c_q) = trig[i];
            let xu = &self.x_units[i];
            let s = self.subspaces[i];
            let s_qd = s.scale(qd[i]);
            let (vp, ap) = match self.parents[i] {
                Some(p) => (
                    xu.apply_motion(s_q, c_q, v[p]),
                    xu.apply_motion(s_q, c_q, a[p]),
                ),
                None => (
                    Motion::zero(),
                    xu.apply_motion(s_q, c_q, self.base_acceleration),
                ),
            };
            v[i] = vp + s_qd;
            a[i] = ap + s.scale(qdd[i]) + v[i].cross_motion(s_qd);
            f[i] = self.inertias[i].apply(a[i]) + v[i].cross_force(self.inertias[i].apply(v[i]));
        }
        // Reverse order makes `f[i]` final when link `i` is reached (every
        // child has a larger index), so the torque extraction can fuse into
        // the accumulation pass exactly as the hardware's backward stage
        // does.
        for i in (0..n).rev() {
            tau[i] = self.subspaces[i].dot(f[i]);
            if let Some(p) = self.parents[i] {
                let (s_q, c_q) = trig[i];
                let fp = self.x_units[i].tr_apply_force(s_q, c_q, f[i]);
                f[p] += fp;
            }
        }
    }

    /// Cycles for one inverse-dynamics pass through the chain: every link
    /// of the longest limb through the forward and backward stages, plus
    /// torso synchronization. (The full-gradient latency additionally pays
    /// the `2N` datapaths and the `−M⁻¹` stage.)
    fn id_chain_cycles(&self) -> usize {
        let s = self.design.schedule();
        s.n_links * (s.fwd_stage_cycles + s.bwd_cycles_per_link) + s.limb_sync_cycles
    }

    /// Runs the inverse-dynamics kernel (RNEA) on the accelerator:
    /// `τ = ID(q, q̇, q̈)` through the same pruned functional units the
    /// gradient uses, leaving the torques in `ws.tau` and returning the
    /// cycle count.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from the DoF.
    pub fn compute_rnea_into(
        &self,
        q: &[S],
        qd: &[S],
        qdd: &[S],
        ws: &mut SimWorkspace<S>,
    ) -> usize {
        let n = self.dof();
        assert_eq!(q.len(), n, "q length mismatch");
        assert_eq!(qd.len(), n, "qd length mismatch");
        assert_eq!(qdd.len(), n, "qdd length mismatch");
        let SimWorkspace {
            tau, trig, v, a, f, ..
        } = ws;
        trig.clear();
        trig.extend((0..n).map(|i| self.x_units[i].inputs_for(q[i])));
        self.id_sweep(qd, qdd, trig, v, a, f, tau);
        self.id_chain_cycles()
    }

    /// Runs the forward-dynamics kernel on the accelerator via the fused
    /// `M⁻¹` composition the family's datapath implements:
    /// `q̈ = M⁻¹(τ − C)` with the bias `C = ID(q, q̇, 0)` from the shared
    /// chain at zero acceleration, and `M⁻¹` provided by the host exactly
    /// as in the gradient's step 3 (§5.1). Leaves the accelerations in
    /// `ws.qdd` (and the bias torques in `ws.tau`) and returns the cycle
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths or `minv` dimensions differ from the DoF.
    pub fn compute_fd_into(
        &self,
        q: &[S],
        qd: &[S],
        tau: &[S],
        minv: &MatN<S>,
        ws: &mut SimWorkspace<S>,
    ) -> usize {
        let n = self.dof();
        assert_eq!(q.len(), n, "q length mismatch");
        assert_eq!(qd.len(), n, "qd length mismatch");
        assert_eq!(tau.len(), n, "tau length mismatch");
        assert_eq!((minv.rows(), minv.cols()), (n, n), "minv shape mismatch");
        let SimWorkspace {
            tau: bias,
            qdd,
            trig,
            v,
            a,
            f,
            zero_qdd,
            ..
        } = ws;
        trig.clear();
        trig.extend((0..n).map(|i| self.x_units[i].inputs_for(q[i])));
        zero_qdd.clear();
        zero_qdd.resize(n, S::zero());
        self.id_sweep(qd, zero_qdd, trig, v, a, f, bias);
        // The MAC stage: q̈_i = Σ_k M⁻¹_ik (τ_k − c_k).
        qdd.clear();
        qdd.resize(n, S::zero());
        for i in 0..n {
            let mut acc = S::zero();
            for k in 0..n {
                acc += minv[(i, k)] * (tau[k] - bias[k]);
            }
            qdd[i] = acc;
        }
        let s = self.design.schedule();
        self.id_chain_cycles() + s.minv_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_dynamics::{
        dynamics_gradient_from_qdd, forward_dynamics, mass_matrix_inverse, DynamicsModel,
    };
    use robo_fixed::Fix32_16;
    use robo_model::robots;

    fn lcg(seed: &mut u64) -> f64 {
        *seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
    }

    #[allow(clippy::type_complexity)]
    fn reference_case(
        robot: &robo_model::RobotModel,
        seed: u64,
    ) -> (
        Vec<f64>,
        Vec<f64>,
        Vec<f64>,
        MatN<f64>,
        robo_dynamics::DynamicsGradient<f64>,
    ) {
        let model = DynamicsModel::<f64>::new(robot);
        let n = model.dof();
        let mut s = seed;
        let q: Vec<f64> = (0..n).map(|_| lcg(&mut s)).collect();
        let qd: Vec<f64> = (0..n).map(|_| lcg(&mut s)).collect();
        let tau: Vec<f64> = (0..n).map(|_| 2.0 * lcg(&mut s)).collect();
        let qdd = forward_dynamics(&model, &q, &qd, &tau).unwrap();
        let minv = mass_matrix_inverse(&model, &q).unwrap();
        let grad = dynamics_gradient_from_qdd(&model, &q, &qd, &qdd, &minv);
        (q, qd, qdd, minv, grad)
    }

    #[test]
    fn f64_simulation_matches_reference_exactly() {
        // In f64 the simulated netlist is algebraically identical to the
        // reference implementation.
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            let (q, qd, qdd, minv, reference) = reference_case(&robot, 42);
            let sim = AcceleratorSim::<f64>::new(&robot);
            let out = sim.compute_gradient(&q, &qd, &qdd, &minv);
            assert!(
                out.dtau_dq.max_abs_diff(&reference.id_gradient.dtau_dq) < 1e-10,
                "{}: ∂τ/∂q mismatch",
                robot.name()
            );
            assert!(out.dtau_dqd.max_abs_diff(&reference.id_gradient.dtau_dqd) < 1e-10);
            assert!(out.dqdd_dq.max_abs_diff(&reference.dqdd_dq) < 1e-9);
            assert!(out.dqdd_dqd.max_abs_diff(&reference.dqdd_dqd) < 1e-9);
        }
    }

    #[test]
    fn fixed_point_simulation_close_to_reference() {
        // Q16.16 arithmetic: errors bounded well below the levels that
        // affect optimization convergence (Figure 12's conclusion).
        let robot = robots::iiwa14();
        let (q, qd, qdd, minv, reference) = reference_case(&robot, 7);
        let sim = AcceleratorSim::<Fix32_16>::new(&robot);
        let to_fix =
            |v: &[f64]| -> Vec<Fix32_16> { v.iter().map(|x| Fix32_16::from_f64(*x)).collect() };
        let out = sim.compute_gradient(
            &to_fix(&q),
            &to_fix(&qd),
            &to_fix(&qdd),
            &minv.cast::<Fix32_16>(),
        );
        let scale = reference.dqdd_dq.max_abs().max(1.0);
        let err = out.dqdd_dq.cast::<f64>().max_abs_diff(&reference.dqdd_dq);
        assert!(
            err / scale < 5e-3,
            "relative fixed-point error {:.2e} too large",
            err / scale
        );
    }

    #[test]
    fn narrow_fixed_point_kernel_error_is_large() {
        // The precision floor: a 12-bit type that saturates on realistic
        // link forces produces gradients with order-of-magnitude errors,
        // while the paper's Q16.16 stays within a fraction of a percent.
        use robo_fixed::Fix8_4;
        let robot = robots::iiwa14();
        let (q, qd, qdd, minv, reference) = reference_case(&robot, 31);
        let scale = reference.dqdd_dq.max_abs().max(1.0);

        let to_s = |v: &[f64]| -> Vec<Fix8_4> { v.iter().map(|x| Fix8_4::from_f64(*x)).collect() };
        let narrow = AcceleratorSim::<Fix8_4>::new(&robot).compute_gradient(
            &to_s(&q),
            &to_s(&qd),
            &to_s(&qdd),
            &minv.cast::<Fix8_4>(),
        );
        let narrow_err = narrow
            .dqdd_dq
            .cast::<f64>()
            .max_abs_diff(&reference.dqdd_dq)
            / scale;

        let to_f =
            |v: &[f64]| -> Vec<Fix32_16> { v.iter().map(|x| Fix32_16::from_f64(*x)).collect() };
        let wide = AcceleratorSim::<Fix32_16>::new(&robot).compute_gradient(
            &to_f(&q),
            &to_f(&qd),
            &to_f(&qdd),
            &minv.cast::<Fix32_16>(),
        );
        let wide_err = wide.dqdd_dq.cast::<f64>().max_abs_diff(&reference.dqdd_dq) / scale;

        assert!(wide_err < 5e-3, "Q16.16 error {wide_err:.2e}");
        assert!(
            narrow_err > 20.0 * wide_err,
            "12-bit error {narrow_err:.2e} should dwarf Q16.16's {wide_err:.2e}"
        );
    }

    #[test]
    fn cycle_counts_by_robot() {
        // Latency grows O(N) in the longest limb, not total joints (§5.2).
        let iiwa = AcceleratorSim::<f64>::new(&robots::iiwa14());
        let hyq = AcceleratorSim::<f64>::new(&robots::hyq());
        let (q, qd, qdd, minv, _) = reference_case(&robots::iiwa14(), 3);
        let out = iiwa.compute_gradient(&q, &qd, &qdd, &minv);
        assert_eq!(out.cycles, 34);
        assert!(
            hyq.design().schedule().single_latency_cycles() < out.cycles,
            "quadruped has shorter limbs → fewer cycles"
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // The same workspace driven through several different states (and
        // even a different robot) must reproduce the allocating path bit
        // for bit — stale buffer contents may never leak into results.
        let mut ws = SimWorkspace::<f64>::new();
        for (robot, seed) in [
            (robots::iiwa14(), 1u64),
            (robots::hyq(), 2),
            (robots::iiwa14(), 3),
        ] {
            let (q, qd, qdd, minv, _) = reference_case(&robot, seed);
            let sim = AcceleratorSim::<f64>::new(&robot);
            let fresh = sim.compute_gradient(&q, &qd, &qdd, &minv);
            let cycles = sim.compute_gradient_into(&q, &qd, &qdd, &minv, &mut ws);
            assert_eq!(cycles, fresh.cycles);
            assert_eq!(ws.dtau_dq, fresh.dtau_dq, "{}", robot.name());
            assert_eq!(ws.dtau_dqd, fresh.dtau_dqd);
            assert_eq!(ws.dqdd_dq, fresh.dqdd_dq);
            assert_eq!(ws.dqdd_dqd, fresh.dqdd_dqd);
        }
    }

    #[test]
    fn widened_sim_lanes_match_scalar_bit_for_bit() {
        // The wide simulator must reproduce W independent scalar runs
        // exactly — the correctness contract of the SoA serving path.
        const W: usize = 4;
        let robot = robots::hyq();
        let sim = AcceleratorSim::<f64>::new(&robot);
        let wide = sim.widen::<W>();
        let n = sim.dof();
        let cases: Vec<_> = (0..W)
            .map(|k| reference_case(&robot, 100 + k as u64))
            .collect();

        let mut q_w = vec![Lanes::<f64, W>::splat(0.0); n];
        let mut qd_w = vec![Lanes::<f64, W>::splat(0.0); n];
        let mut qdd_w = vec![Lanes::<f64, W>::splat(0.0); n];
        let mut minv_w = MatN::<Lanes<f64, W>>::zeros(n, n);
        for (l, (q, qd, qdd, minv, _)) in cases.iter().enumerate() {
            for k in 0..n {
                q_w[k].set_lane(l, q[k]);
                qd_w[k].set_lane(l, qd[k]);
                qdd_w[k].set_lane(l, qdd[k]);
            }
            for r in 0..n {
                for c in 0..n {
                    minv_w[(r, c)].set_lane(l, minv[(r, c)]);
                }
            }
        }
        let out = wide.compute_gradient(&q_w, &qd_w, &qdd_w, &minv_w);
        for (l, (q, qd, qdd, minv, _)) in cases.iter().enumerate() {
            let scalar = sim.compute_gradient(q, qd, qdd, minv);
            assert_eq!(out.cycles, scalar.cycles);
            for r in 0..n {
                for c in 0..n {
                    assert_eq!(out.dtau_dq[(r, c)].lane(l), scalar.dtau_dq[(r, c)]);
                    assert_eq!(out.dtau_dqd[(r, c)].lane(l), scalar.dtau_dqd[(r, c)]);
                    assert_eq!(out.dqdd_dq[(r, c)].lane(l), scalar.dqdd_dq[(r, c)]);
                    assert_eq!(out.dqdd_dqd[(r, c)].lane(l), scalar.dqdd_dqd[(r, c)]);
                }
            }
        }
    }

    #[test]
    fn rnea_kernel_matches_reference() {
        for robot in [robots::iiwa14(), robots::hyq(), robots::atlas()] {
            let (q, qd, qdd, _, _) = reference_case(&robot, 11);
            let model = DynamicsModel::<f64>::new(&robot);
            let sim = AcceleratorSim::<f64>::new(&robot);
            let mut ws = SimWorkspace::for_sim(&sim);
            let cycles = sim.compute_rnea_into(&q, &qd, &qdd, &mut ws);
            // The ID chain alone is strictly cheaper than the full gradient.
            assert!(cycles > 0);
            assert!(cycles < sim.design().schedule().single_latency_cycles());
            let want = robo_dynamics::rnea(&model, &q, &qd, &qdd).tau;
            for i in 0..model.dof() {
                assert!(
                    (ws.tau[i] - want[i]).abs() < 1e-10,
                    "{} tau[{i}]: {} vs {}",
                    robot.name(),
                    ws.tau[i],
                    want[i]
                );
            }
        }
    }

    #[test]
    fn fd_kernel_inverts_inverse_dynamics() {
        // Feed the accelerator's FD composition the torques that RNEA says
        // produce `qdd`; it must recover `qdd` — `M⁻¹(ID(q,q̇,q̈) − C) = q̈`
        // exactly in real arithmetic.
        for robot in [robots::iiwa14(), robots::hyq()] {
            let (q, qd, qdd, minv, _) = reference_case(&robot, 12);
            let model = DynamicsModel::<f64>::new(&robot);
            let tau = robo_dynamics::rnea(&model, &q, &qd, &qdd).tau;
            let sim = AcceleratorSim::<f64>::new(&robot);
            let mut ws = SimWorkspace::for_sim(&sim);
            let cycles = sim.compute_fd_into(&q, &qd, &tau, &minv, &mut ws);
            assert!(cycles < sim.design().schedule().single_latency_cycles());
            for i in 0..model.dof() {
                assert!(
                    (ws.qdd[i] - qdd[i]).abs() < 1e-8,
                    "{} qdd[{i}]: {} vs {}",
                    robot.name(),
                    ws.qdd[i],
                    qdd[i]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "minv shape mismatch")]
    fn wrong_minv_shape_panics() {
        let robot = robots::iiwa14();
        let sim = AcceleratorSim::<f64>::new(&robot);
        let z = vec![0.0; 7];
        let _ = sim.compute_gradient(&z, &z, &z, &MatN::identity(3));
    }
}
