//! The `X·` transform matrix-vector functional unit, as hardware would
//! build it.
//!
//! Every entry of the joint transform `ᵢX_λᵢ(q) = X_J(q)·X_T` is *affine in
//! the joint trigonometry*: `x_ij = α_ij·cos q + β_ij·sin q + γ_ij`, with
//! the coefficients fixed per robot (for prismatic joints the same form
//! holds with `sin q := q`, `cos q := 1`). The hardware unit therefore is:
//! a bank of constant multipliers forming the live entries from the
//! `sin`/`cos` inputs, feeding a pruned tree of variable multipliers and
//! adders (Figure 7). [`XUnit`] is exactly that structure: coefficients
//! extracted at customization time, dead entries pruned by the structural
//! mask, evaluation generic over the (fixed-point) scalar.
//!
//! Since the netlist pipeline landed, the unit carries *two* evaluators of
//! the same circuit ([`XUnitBackend`]): the optimized netlist compiled to
//! a flat register tape (the default serving path — the identical IR the
//! Verilog backend lowers), and the original coefficient arithmetic (the
//! reference oracle, and the model of wide MAC accumulation). The two are
//! bit-identical in every scalar type because fold-eligible coefficients
//! are snapped to exact 0/±1 on both sides.

use robo_codegen::{
    generate_x_unit_with_mask, generate_xt_unit_with_mask, optimize, snap, CompiledNetlist,
};
use robo_model::{JointType, RobotModel};
use robo_sparsity::{x_pattern, Mask6};
use robo_spatial::{Force, Motion, Scalar};

/// How a functional unit's dot-product trees accumulate partial products.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Accumulation {
    /// Round after every multiply: discrete multiplier + adder-tree
    /// hardware (the conservative model, and the default).
    #[default]
    PerOperation,
    /// Accumulate full-width products and round once: DSP-block MAC
    /// cascades (e.g. DSP48's 48-bit accumulator).
    Wide,
}

/// Which evaluator executes a unit's arithmetic.
///
/// Both backends model the same pruned circuit and produce bit-identical
/// results (the parity suites assert this); they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum XUnitBackend {
    /// The optimized netlist compiled to a flat register tape
    /// ([`CompiledNetlist`]) — the same IR the Verilog backend lowers, and
    /// the fast path (the default).
    #[default]
    Compiled,
    /// Direct evaluation from the cached affine coefficients — the
    /// reference oracle, and the only model of
    /// [`Wide`](Accumulation::Wide) accumulation.
    Coefficients,
}

/// Register budget for the stack-allocated file the compiled tapes run in.
/// The widest built-in unit (a superposed Atlas joint) needs well under
/// this; construction asserts the bound so evaluation never re-checks it.
const STACK_REGS: usize = 96;

/// Coefficients of one matrix entry: `α·cos + β·sin + γ`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EntryCoeffs<S> {
    alpha: S,
    beta: S,
    gamma: S,
}

/// A pruned transform matrix-vector unit for one joint, evaluating
/// `X(q)·m` and `X(q)ᵀ·f` from cached `sin q` / `cos q` inputs.
#[derive(Debug, Clone)]
pub struct XUnit<S> {
    coeffs: [[EntryCoeffs<S>; 6]; 6],
    mask: Mask6,
    joint: JointType,
    accumulation: Accumulation,
    backend: XUnitBackend,
    /// Compiled forward tape (`X·v`), from the optimized netlist.
    fwd: CompiledNetlist<S>,
    /// Compiled transposed tape (`Xᵀ·f`).
    bwd: CompiledNetlist<S>,
}

impl<S: Scalar> XUnit<S> {
    /// Builds the unit for joint `i` of `robot`, pruned to the joint's own
    /// structural pattern.
    pub fn for_joint(robot: &RobotModel, i: usize) -> Self {
        Self::with_mask(robot, i, x_pattern(robot, i))
    }

    /// Builds the unit for joint `i` with an explicit (e.g. superposed)
    /// mask, as the paper's shared `X·` unit does (§6.2).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the joint's own pattern is not contained
    /// in `mask` (the unit would compute wrong results).
    pub fn with_mask(robot: &RobotModel, i: usize, mask: Mask6) -> Self {
        debug_assert!(
            x_pattern(robot, i).is_subset_of(&mask),
            "mask must cover joint {i}'s structural pattern"
        );
        // The affine decomposition: X(s,c) = c·A + s·B + C, recovered from
        // three algebraic probe evaluations (s, c treated as independent).
        // Coefficients are snapped exactly like the netlist generator's, so
        // both backends model the identical folded circuit (trig residues
        // like cos(π/2) ≈ 6e-17 are dead wires in hardware).
        let probe = |s: f64, c: f64| robot.joint_transform_sincos::<f64>(i, s, c).to_mat6();
        let m00 = probe(0.0, 0.0); // C
        let m01 = probe(0.0, 1.0); // A + C
        let m10 = probe(1.0, 0.0); // B + C
        let mut coeffs = [[EntryCoeffs {
            alpha: S::zero(),
            beta: S::zero(),
            gamma: S::zero(),
        }; 6]; 6];
        for r in 0..6 {
            for cidx in 0..6 {
                coeffs[r][cidx] = EntryCoeffs {
                    alpha: S::from_f64(snap(m01.m[r][cidx] - m00.m[r][cidx])),
                    beta: S::from_f64(snap(m10.m[r][cidx] - m00.m[r][cidx])),
                    gamma: S::from_f64(snap(m00.m[r][cidx])),
                };
            }
        }
        let fwd = CompiledNetlist::compile(&optimize(&generate_x_unit_with_mask(robot, i, mask)));
        let bwd = CompiledNetlist::compile(&optimize(&generate_xt_unit_with_mask(robot, i, mask)));
        assert!(
            fwd.num_regs() <= STACK_REGS && bwd.num_regs() <= STACK_REGS,
            "compiled unit exceeds the stack register budget"
        );
        Self {
            coeffs,
            mask,
            joint: robot.links()[i].joint,
            accumulation: Accumulation::PerOperation,
            backend: XUnitBackend::Compiled,
            fwd,
            bwd,
        }
    }

    /// The structural mask this unit was pruned to.
    pub fn mask(&self) -> &Mask6 {
        &self.mask
    }

    /// Sets the accumulation mode of the dot-product trees.
    pub fn set_accumulation(&mut self, accumulation: Accumulation) {
        self.accumulation = accumulation;
    }

    /// The current accumulation mode.
    pub fn accumulation(&self) -> Accumulation {
        self.accumulation
    }

    /// Selects which evaluator runs the unit's arithmetic.
    pub fn set_backend(&mut self, backend: XUnitBackend) {
        self.backend = backend;
    }

    /// The currently selected evaluator.
    pub fn backend(&self) -> XUnitBackend {
        self.backend
    }

    /// Enables the copy-and-patch template JIT on both compiled tapes
    /// (see [`CompiledNetlist::enable_jit`]). Returns `true` when both
    /// tapes are now JIT-backed; on unsupported hosts nothing changes
    /// and execution transparently stays on the threaded tapes.
    pub fn enable_jit(&mut self) -> bool {
        let fwd = self.fwd.enable_jit();
        let bwd = self.bwd.enable_jit();
        fwd && bwd
    }

    /// Whether both compiled tapes currently execute through the JIT.
    pub fn jit_enabled(&self) -> bool {
        self.fwd.jit_report().is_some() && self.bwd.jit_report().is_some()
    }

    /// The compiled tape models per-operation rounding only; wide MAC
    /// accumulation always takes the coefficient path.
    #[inline]
    fn use_compiled(&self) -> bool {
        self.backend == XUnitBackend::Compiled && self.accumulation == Accumulation::PerOperation
    }

    /// Runs one of the compiled tapes entirely on the stack: inputs in
    /// netlist declaration order (`sin_q`, `cos_q`, `v0..v5`), a
    /// fixed-size register file, outputs `o0..o5`.
    #[inline]
    fn run_compiled(&self, tape: &CompiledNetlist<S>, sin_q: S, cos_q: S, v: [S; 6]) -> [S; 6] {
        let mut inputs = [S::zero(); 8];
        inputs[0] = sin_q;
        inputs[1] = cos_q;
        inputs[2..].copy_from_slice(&v);
        let mut regs = [S::zero(); STACK_REGS];
        let mut out = [S::zero(); 6];
        tape.eval_into_regs(&inputs, &mut regs, &mut out);
        out
    }

    /// Forms the live matrix entries from the trig inputs (the constant
    /// multiplier bank). For prismatic joints pass `sin_q = q`,
    /// `cos_q = 1`; [`XUnit::inputs_for`] does this.
    fn entries(&self, sin_q: S, cos_q: S) -> [[S; 6]; 6] {
        let mut out = [[S::zero(); 6]; 6];
        for r in 0..6 {
            for c in 0..6 {
                if self.mask.m[r][c] {
                    let k = &self.coeffs[r][c];
                    out[r][c] = k.alpha * cos_q + k.beta * sin_q + k.gamma;
                }
            }
        }
        out
    }

    /// The `(sin, cos)` input pair for joint position `q`, handling the
    /// prismatic convention.
    pub fn inputs_for(&self, q: S) -> (S, S) {
        if self.joint.is_revolute() {
            (q.sin(), q.cos())
        } else {
            (q, S::one())
        }
    }

    #[inline]
    fn row_dot(&self, pairs: &[(S, S)]) -> S {
        match self.accumulation {
            Accumulation::PerOperation => pairs.iter().fold(S::zero(), |acc, (a, b)| acc + *a * *b),
            Accumulation::Wide => S::dot_accumulate(pairs),
        }
    }

    /// Evaluates `X(q)·m` through the pruned tree. Heap-free: a row never
    /// has more than six live products, so the pair list lives on the
    /// stack (like the hardware's fixed wiring).
    pub fn apply_motion(&self, sin_q: S, cos_q: S, m: Motion<S>) -> Motion<S> {
        if self.use_compiled() {
            return Motion::from_array(self.run_compiled(&self.fwd, sin_q, cos_q, m.to_array()));
        }
        let x = self.entries(sin_q, cos_q);
        let v = m.to_array();
        let mut out = [S::zero(); 6];
        let mut pairs = [(S::zero(), S::zero()); 6];
        for r in 0..6 {
            let mut len = 0;
            for c in 0..6 {
                if self.mask.m[r][c] {
                    pairs[len] = (x[r][c], v[c]);
                    len += 1;
                }
            }
            out[r] = self.row_dot(&pairs[..len]);
        }
        Motion::from_array(out)
    }

    /// Evaluates the backward-pass operation `X(q)ᵀ·f` through the same
    /// (transposed) tree. Heap-free, like [`XUnit::apply_motion`].
    pub fn tr_apply_force(&self, sin_q: S, cos_q: S, f: Force<S>) -> Force<S> {
        if self.use_compiled() {
            return Force::from_array(self.run_compiled(&self.bwd, sin_q, cos_q, f.to_array()));
        }
        let x = self.entries(sin_q, cos_q);
        let v = f.to_array();
        let mut out = [S::zero(); 6];
        let mut pairs = [(S::zero(), S::zero()); 6];
        for c in 0..6 {
            let mut len = 0;
            for r in 0..6 {
                if self.mask.m[r][c] {
                    pairs[len] = (x[r][c], v[r]);
                    len += 1;
                }
            }
            out[c] = self.row_dot(&pairs[..len]);
        }
        Force::from_array(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robo_fixed::Fix32_16;
    use robo_model::robots;
    use robo_sparsity::superposition_pattern;

    fn rand_motion(seed: &mut u64) -> Motion<f64> {
        let mut next = || {
            *seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((*seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        Motion::from_array([next(), next(), next(), next(), next(), next()])
    }

    #[test]
    fn matches_reference_transform_f64() {
        let robot = robots::iiwa14();
        let mut seed = 4;
        for i in 0..7 {
            let unit = XUnit::<f64>::for_joint(&robot, i);
            for q in [0.0, 0.7, -1.9, 2.4] {
                let x_ref = robot.joint_transform::<f64>(i, q);
                let m = rand_motion(&mut seed);
                let (s, c) = unit.inputs_for(q);
                let got = unit.apply_motion(s, c, m);
                let want = x_ref.apply_motion(m);
                assert!(
                    (got - want).max_abs() < 1e-12,
                    "joint {i} q={q}: {got:?} vs {want:?}"
                );
                let f = Force::new(m.ang, m.lin);
                let got_f = unit.tr_apply_force(s, c, f);
                let want_f = x_ref.tr_apply_force(f);
                assert!((got_f - want_f).max_abs() < 1e-12);
            }
        }
    }

    #[test]
    fn superposition_mask_gives_same_results() {
        // The shared unit covers every joint's pattern, so results match the
        // per-joint units exactly.
        let robot = robots::iiwa14();
        let sup = superposition_pattern(&robot);
        let mut seed = 9;
        for i in 0..7 {
            let own = XUnit::<f64>::for_joint(&robot, i);
            let shared = XUnit::<f64>::with_mask(&robot, i, sup);
            let m = rand_motion(&mut seed);
            let (s, c) = own.inputs_for(1.1);
            assert!((own.apply_motion(s, c, m) - shared.apply_motion(s, c, m)).max_abs() < 1e-12);
        }
    }

    #[test]
    fn prismatic_affine_in_q() {
        let robot = robots::serial_chain(3, robo_model::JointType::PrismaticY);
        let unit = XUnit::<f64>::for_joint(&robot, 1);
        let mut seed = 14;
        let m = rand_motion(&mut seed);
        for q in [0.0, 0.4, -0.8] {
            let (s, c) = unit.inputs_for(q);
            assert_eq!((s, c), (q, 1.0));
            let want = robot.joint_transform::<f64>(1, q).apply_motion(m);
            assert!((unit.apply_motion(s, c, m) - want).max_abs() < 1e-12);
        }
    }

    #[test]
    fn wide_accumulation_never_worse_for_narrow_types() {
        // DSP-cascade accumulation rounds once per row instead of once per
        // product: for a 6-fractional-bit type the row error shrinks.
        use robo_fixed::Fix14_6;
        let robot = robots::iiwa14();
        let mut seed = 55;
        let mut err_per_op = 0.0_f64;
        let mut err_wide = 0.0_f64;
        // Accumulated over many samples: a single rounding per row beats a
        // rounding per product on average (individual rows can go either
        // way).
        for trial in 0..64 {
            for i in 0..7 {
                let mut unit = XUnit::<Fix14_6>::for_joint(&robot, i);
                let m = rand_motion(&mut seed).scale(3.0);
                let q = 0.17 * trial as f64 - 1.9;
                let want = robot.joint_transform::<f64>(i, q).apply_motion(m);
                let (s, c) = unit.inputs_for(Fix14_6::from_f64(q));
                let per_op = unit.apply_motion(s, c, m.cast()).cast::<f64>();
                unit.set_accumulation(Accumulation::Wide);
                let wide = unit.apply_motion(s, c, m.cast()).cast::<f64>();
                err_per_op += (per_op - want).max_abs();
                err_wide += (wide - want).max_abs();
            }
        }
        assert!(
            err_wide < err_per_op,
            "mean wide error {err_wide:.3e} should beat per-op {err_per_op:.3e}"
        );
    }

    #[test]
    fn accumulation_modes_identical_in_f64() {
        let robot = robots::iiwa14();
        let mut unit = XUnit::<f64>::for_joint(&robot, 3);
        let m = Motion::from_array([0.4, -0.2, 0.9, 0.1, -0.6, 0.3]);
        let (s, c) = unit.inputs_for(0.8);
        let a = unit.apply_motion(s, c, m);
        unit.set_accumulation(Accumulation::Wide);
        let b = unit.apply_motion(s, c, m);
        assert!((a - b).max_abs() < 1e-15);
    }

    #[test]
    fn backends_bit_identical_across_scalars() {
        // The tentpole invariant: the compiled tape and the coefficient
        // oracle are the same circuit. f64 compares with == (±0 counts as
        // equal); fixed point is exact bit equality.
        let mut seed = 77;
        for robot in [robots::iiwa14(), robots::hyq()] {
            let sup = superposition_pattern(&robot);
            for i in 0..robot.dof() {
                for unit in [
                    XUnit::<f64>::for_joint(&robot, i),
                    XUnit::<f64>::with_mask(&robot, i, sup),
                ] {
                    let mut oracle = unit.clone();
                    oracle.set_backend(XUnitBackend::Coefficients);
                    assert_eq!(unit.backend(), XUnitBackend::Compiled);
                    for q in [0.0, 0.9, -2.3] {
                        let m = rand_motion(&mut seed);
                        let (s, c) = unit.inputs_for(q);
                        assert_eq!(
                            unit.apply_motion(s, c, m).to_array(),
                            oracle.apply_motion(s, c, m).to_array(),
                            "{} joint {i} q={q}",
                            robot.name()
                        );
                        let f = Force::new(m.ang, m.lin);
                        assert_eq!(
                            unit.tr_apply_force(s, c, f).to_array(),
                            oracle.tr_apply_force(s, c, f).to_array(),
                            "{} joint {i} q={q} (transpose)",
                            robot.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn backends_bit_identical_in_fixed_point() {
        let robot = robots::iiwa14();
        let mut seed = 101;
        for i in 0..7 {
            let unit = XUnit::<Fix32_16>::for_joint(&robot, i);
            let mut oracle = unit.clone();
            oracle.set_backend(XUnitBackend::Coefficients);
            let m = rand_motion(&mut seed).cast::<Fix32_16>();
            let (s, c) = unit.inputs_for(Fix32_16::from_f64(0.6));
            assert_eq!(
                unit.apply_motion(s, c, m).to_array(),
                oracle.apply_motion(s, c, m).to_array(),
                "joint {i}"
            );
            let f = Force::new(m.ang, m.lin);
            assert_eq!(
                unit.tr_apply_force(s, c, f).to_array(),
                oracle.tr_apply_force(s, c, f).to_array(),
                "joint {i} (transpose)"
            );
        }
    }

    #[test]
    fn wide_accumulation_bypasses_compiled_tape() {
        // The compiled tape models per-operation rounding; in Wide mode the
        // unit must route through the coefficient path's dot_accumulate.
        use robo_fixed::Fix14_6;
        let robot = robots::iiwa14();
        let mut wide = XUnit::<Fix14_6>::for_joint(&robot, 2);
        wide.set_accumulation(Accumulation::Wide);
        let mut oracle = wide.clone();
        oracle.set_backend(XUnitBackend::Coefficients);
        let m = Motion::from_array([1.9, -0.7, 0.4, 2.2, -1.1, 0.6]).cast::<Fix14_6>();
        let (s, c) = wide.inputs_for(Fix14_6::from_f64(1.2));
        assert_eq!(
            wide.apply_motion(s, c, m).to_array(),
            oracle.apply_motion(s, c, m).to_array()
        );
    }

    #[test]
    fn fixed_point_unit_close_to_reference() {
        let robot = robots::iiwa14();
        let mut seed = 23;
        for i in 0..7 {
            let unit = XUnit::<Fix32_16>::for_joint(&robot, i);
            let q = 0.9_f64;
            let m = rand_motion(&mut seed);
            let (s, c) = unit.inputs_for(Fix32_16::from_f64(q));
            let got = unit.apply_motion(s, c, m.cast()).cast::<f64>();
            let want = robot.joint_transform::<f64>(i, q).apply_motion(m);
            assert!(
                (got - want).max_abs() < 1e-3,
                "joint {i}: fixed-point error too large"
            );
        }
    }
}
