//! Typed serving failures, and the [`Rejected`] envelope that hands the
//! caller's request buffer back on the shed path.

use crate::slot::GradientRequest;
use robo_dynamics::engine::EngineError;
use robo_dynamics::MorphologyKey;

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No plan is registered under this key; call
    /// [`GradientServer::register`](crate::GradientServer::register) first.
    UnknownMorphology(MorphologyKey),
    /// Admission control: the shard's bounded queue is full. Shed the
    /// request (or retry after backoff) — queueing unbounded work would
    /// only convert overload into unbounded latency.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// The shard's configured queue capacity.
        capacity: usize,
    },
    /// The server is draining; no new work is admitted.
    ShuttingDown,
    /// The [`ResponseSlot`](crate::ResponseSlot) already has a request in
    /// flight; wait on it before reusing the slot.
    SlotBusy,
    /// The request's dimensions do not match the plan's joint count.
    Dimension(EngineError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownMorphology(key) => {
                write!(f, "no plan registered for morphology {key}")
            }
            Self::Overloaded { depth, capacity } => write!(
                f,
                "shard overloaded: queue depth {depth} at capacity {capacity}"
            ),
            Self::ShuttingDown => write!(f, "server is shutting down"),
            Self::SlotBusy => write!(f, "response slot already has a request in flight"),
            Self::Dimension(e) => write!(f, "request rejected: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Dimension(e) => Some(e),
            _ => None,
        }
    }
}

/// A submission the server refused, carrying the request buffer back so
/// the caller can reuse it (nothing is dropped or reallocated on the shed
/// path).
#[derive(Debug)]
pub struct Rejected {
    /// Why admission failed.
    pub error: ServeError,
    /// The untouched request buffer, returned to the caller.
    pub req: GradientRequest,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.error.fmt(f)
    }
}

impl std::error::Error for Rejected {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}
