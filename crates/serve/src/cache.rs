//! The morphology-keyed plan cache: build-once-per-robot with
//! concurrent-miss coalescing, fronting the per-kernel shard set.
//!
//! Plan builds are the expensive cold path (template customization plus
//! netlist compilation), so the cache must guarantee that N simultaneous
//! first requests for one morphology trigger exactly **one** build. The
//! first miss installs a `Building` stub and builds outside the map lock;
//! every concurrent miss parks on the stub's gate and re-reads the map
//! once the builder publishes.
//!
//! A published entry is a [`MorphShards`]: the one shared [`RobotPlan`]
//! plus up to one shard per [`KernelKind`]. Shards spawn lazily on first
//! submission of their kernel — registering a morphology costs one plan
//! build regardless of how many kernels it later serves.

use crate::shard::Shard;
use crate::ServeConfig;
use robo_dynamics::engine::KernelKind;
use robo_dynamics::MorphologyKey;
use robo_sim::engine::RobotPlan;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One morphology's serving state: the shared plan and its per-kernel
/// shards. Requests are coalesced per (morphology, kernel) — each kernel
/// gets its own queue and workers, all over the same plan.
pub(crate) struct MorphShards {
    plan: Arc<RobotPlan>,
    shards: Mutex<[Option<Arc<Shard>>; KernelKind::ALL.len()]>,
}

impl MorphShards {
    pub(crate) fn new(plan: Arc<RobotPlan>) -> Self {
        Self {
            plan,
            shards: Mutex::new([None, None, None]),
        }
    }

    pub(crate) fn plan(&self) -> &Arc<RobotPlan> {
        &self.plan
    }

    /// The kernel's shard, spawning it (queue + workers) on first use.
    /// The plan is never rebuilt — every kernel's shard shares it.
    pub(crate) fn shard(&self, kernel: KernelKind, cfg: &ServeConfig) -> Arc<Shard> {
        let mut shards = self.shards.lock().unwrap_or_else(|p| p.into_inner());
        match &shards[kernel.index()] {
            Some(s) => Arc::clone(s),
            None => {
                let s = Shard::spawn(Arc::clone(&self.plan), kernel, cfg);
                shards[kernel.index()] = Some(Arc::clone(&s));
                s
            }
        }
    }

    /// Every shard spawned so far, in kernel order.
    pub(crate) fn live_shards(&self) -> Vec<Arc<Shard>> {
        self.shards
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .flatten()
            .map(Arc::clone)
            .collect()
    }
}

/// Parking spot for threads that lost the build race: opened exactly once,
/// when the winning builder publishes (or abandons) its entry.
struct BuildGate {
    done: Mutex<bool>,
    cv: Condvar,
}

impl BuildGate {
    fn new() -> Self {
        Self {
            done: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().unwrap_or_else(|p| p.into_inner());
        while !*done {
            done = self.cv.wait(done).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn open(&self) {
        *self.done.lock().unwrap_or_else(|p| p.into_inner()) = true;
        self.cv.notify_all();
    }
}

enum Entry {
    Building(Arc<BuildGate>),
    Ready(Arc<MorphShards>),
}

/// The server-wide plan cache. One entry per morphology; entries hold the
/// shared plan and its per-kernel shards.
pub(crate) struct PlanCache {
    entries: Mutex<HashMap<MorphologyKey, Entry>>,
    builds: AtomicUsize,
}

/// Unwind protection for the build critical section: if the builder
/// panics, the stub is removed and the gate opened so parked threads
/// retry (and surface the same panic by rebuilding) instead of hanging.
struct AbandonOnUnwind<'a> {
    cache: &'a PlanCache,
    key: MorphologyKey,
    gate: &'a Arc<BuildGate>,
    armed: bool,
}

impl Drop for AbandonOnUnwind<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut entries = self.cache.lock();
        if matches!(entries.get(&self.key), Some(Entry::Building(_))) {
            entries.remove(&self.key);
        }
        drop(entries);
        self.gate.open();
    }
}

impl PlanCache {
    pub(crate) fn new() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            builds: AtomicUsize::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<MorphologyKey, Entry>> {
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Total plans actually built (cache misses that won the build race) —
    /// the coalescing guarantee's observable: N concurrent cold requests
    /// leave this at 1, however many kernels the morphology serves.
    pub(crate) fn plans_built(&self) -> usize {
        self.builds.load(Ordering::Acquire)
    }

    /// The morphology's shard set, waiting out an in-flight build; `None`
    /// if the morphology was never registered.
    pub(crate) fn get(&self, key: MorphologyKey) -> Option<Arc<MorphShards>> {
        loop {
            let gate = {
                let entries = self.lock();
                match entries.get(&key) {
                    None => return None,
                    Some(Entry::Ready(morph)) => return Some(Arc::clone(morph)),
                    Some(Entry::Building(gate)) => Arc::clone(gate),
                }
            };
            gate.wait();
        }
    }

    /// The morphology's shard set, building the plan via `build` on a
    /// miss. Concurrent callers for the same key coalesce: exactly one
    /// runs `build`, the rest park until it publishes.
    pub(crate) fn get_or_build(
        &self,
        key: MorphologyKey,
        build: impl FnOnce() -> Arc<MorphShards>,
    ) -> Arc<MorphShards> {
        loop {
            let gate = {
                let mut entries = self.lock();
                match entries.get(&key) {
                    Some(Entry::Ready(morph)) => return Arc::clone(morph),
                    Some(Entry::Building(gate)) => Arc::clone(gate),
                    None => {
                        let gate = Arc::new(BuildGate::new());
                        entries.insert(key, Entry::Building(Arc::clone(&gate)));
                        drop(entries);
                        let mut unwind = AbandonOnUnwind {
                            cache: self,
                            key,
                            gate: &gate,
                            armed: true,
                        };
                        // The expensive part runs outside the map lock so
                        // other morphologies hit the cache meanwhile.
                        let morph = build();
                        unwind.armed = false;
                        self.builds.fetch_add(1, Ordering::AcqRel);
                        self.lock().insert(key, Entry::Ready(Arc::clone(&morph)));
                        gate.open();
                        return morph;
                    }
                }
            };
            gate.wait();
        }
    }

    /// Snapshot of every live shard across all ready morphologies (for
    /// stats aggregation and shutdown).
    pub(crate) fn shards(&self) -> Vec<Arc<Shard>> {
        self.lock()
            .values()
            .filter_map(|e| match e {
                Entry::Ready(morph) => Some(morph.live_shards()),
                Entry::Building(_) => None,
            })
            .flatten()
            .collect()
    }
}
