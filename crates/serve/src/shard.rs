//! Per-morphology shard: bounded admission queue, dynamic micro-batcher
//! workers, and the flush/respond hot path.

use crate::error::{Rejected, ServeError};
use crate::slot::{GradientRequest, ResponseSlot, SlotInner};
use crate::ServeConfig;
use robo_dynamics::batch::GradientState;
use robo_dynamics::engine::{
    check_dims, DynamicsBackend, GradientBatchOutput, GradientOutput, KernelKind, KernelOutput,
};
use robo_sim::engine::{BackendKind, RobotPlan};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Monotonic shard counters (all relaxed: they are observability, not
/// synchronization).
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) flushes: AtomicU64,
    pub(crate) ragged_flushes: AtomicU64,
    pub(crate) high_water: AtomicU64,
}

/// One admitted request waiting for a worker.
struct Pending {
    req: GradientRequest,
    slot: Arc<SlotInner>,
    enqueued: Instant,
}

struct Queue {
    pending: VecDeque<Pending>,
    shutdown: bool,
}

/// One (morphology, kernel) serving queue: the shared plan, the kernel of
/// the multifunction family this queue runs, the bounded queue the
/// micro-batcher coalesces from, and the worker threads that drain it.
pub(crate) struct Shard {
    plan: Arc<RobotPlan>,
    kernel: KernelKind,
    kind: BackendKind,
    capacity: usize,
    max_batch: usize,
    linger: Duration,
    queue: Mutex<Queue>,
    work_cv: Condvar,
    pub(crate) stats: ShardStats,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Shard {
    /// Builds the shard for one kernel of the family and spawns its worker
    /// threads.
    pub(crate) fn spawn(plan: Arc<RobotPlan>, kernel: KernelKind, cfg: &ServeConfig) -> Arc<Self> {
        let shard = Arc::new(Self {
            max_batch: cfg.max_batch(plan.serve_width()),
            capacity: cfg.queue_capacity.max(1),
            linger: cfg.max_linger,
            kernel,
            kind: cfg.backend,
            queue: Mutex::new(Queue {
                pending: VecDeque::with_capacity(cfg.queue_capacity.max(1)),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            stats: ShardStats::default(),
            workers: Mutex::new(Vec::new()),
            plan,
        });
        let key = shard.plan.morphology_key();
        let handles: Vec<_> = (0..cfg.resolved_workers())
            .map(|w| {
                let shard = Arc::clone(&shard);
                std::thread::Builder::new()
                    .name(format!("serve-{key}-{kernel}-{w}"))
                    .spawn(move || worker_loop(&shard))
                    .expect("spawn serve worker")
            })
            .collect();
        *shard.workers.lock().unwrap_or_else(|p| p.into_inner()) = handles;
        shard
    }

    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admission: validate, mark the slot pending, and queue — or shed
    /// with a typed error, handing the buffer back untouched.
    // By-value buffer return on rejection keeps the shed path
    // allocation-free; see `GradientServer::submit`.
    #[allow(clippy::result_large_err)]
    pub(crate) fn enqueue(
        &self,
        req: GradientRequest,
        slot: &ResponseSlot,
    ) -> Result<(), Rejected> {
        let _span = robo_trace::span("serve.enqueue");
        debug_assert_eq!(
            req.kernel, self.kernel,
            "request routed to wrong kernel shard"
        );
        if let Err(e) = check_dims(self.plan.dof(), &req.q, &req.qd, &req.qdd, &req.minv) {
            return Err(Rejected {
                error: ServeError::Dimension(e),
                req,
            });
        }
        if !slot.inner.begin() {
            return Err(Rejected {
                error: ServeError::SlotBusy,
                req,
            });
        }
        let mut q = self.lock_queue();
        if q.shutdown {
            drop(q);
            slot.inner.cancel();
            return Err(Rejected {
                error: ServeError::ShuttingDown,
                req,
            });
        }
        if q.pending.len() >= self.capacity {
            let depth = q.pending.len();
            drop(q);
            slot.inner.cancel();
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected {
                error: ServeError::Overloaded {
                    depth,
                    capacity: self.capacity,
                },
                req,
            });
        }
        q.pending.push_back(Pending {
            req,
            slot: Arc::clone(&slot.inner),
            enqueued: Instant::now(),
        });
        let depth = q.pending.len() as u64;
        drop(q);
        self.stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.stats.high_water.fetch_max(depth, Ordering::Relaxed);
        self.work_cv.notify_one();
        Ok(())
    }

    /// Marks the shard draining: no new admissions, workers flush what is
    /// queued and exit. Every already-accepted request is still answered.
    pub(crate) fn begin_shutdown(&self) {
        self.lock_queue().shutdown = true;
        self.work_cv.notify_all();
    }

    /// Joins the worker threads (call after [`Shard::begin_shutdown`]).
    pub(crate) fn join_workers(&self) {
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|p| p.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }

    /// The coalescing policy: blocks until there is a batch worth
    /// flushing, drains up to `max_batch` requests into `local`, and
    /// returns false once the shard is shut down *and* drained.
    ///
    /// A batch is worth flushing when it is full (`max_batch` queued),
    /// when the oldest request has lingered past the deadline (a ragged,
    /// partial-lane flush buys latency), or when the shard is draining.
    fn collect(&self, local: &mut Vec<Pending>) -> bool {
        let mut q = self.lock_queue();
        loop {
            if q.pending.is_empty() {
                if q.shutdown {
                    return false;
                }
                q = self.work_cv.wait(q).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let now = Instant::now();
            let deadline = q.pending.front().expect("non-empty").enqueued + self.linger;
            if q.shutdown || q.pending.len() >= self.max_batch || now >= deadline {
                let n = q.pending.len().min(self.max_batch);
                let _span = robo_trace::span_items("serve.coalesce", n);
                local.extend(q.pending.drain(..n));
                return true;
            }
            let (guard, _) = self
                .work_cv
                .wait_timeout(q, deadline.saturating_duration_since(now))
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
    }

    /// Executes one coalesced batch on the worker's warm backend and
    /// completes every slot. Alloc-free once warm: the lane-view vector is
    /// recycled across flushes and outputs land in the callers' buffers.
    ///
    /// The gradient kernel runs through the wide batch path (SIMD lane
    /// groups); the vector-valued kernels (`id`, `fd`) are latency-bound
    /// single evaluations, so the batch is a plain loop of `run_into`
    /// calls reusing the worker's scratch [`KernelOutput`].
    fn flush(
        &self,
        backend: &mut dyn DynamicsBackend,
        local: &mut Vec<Pending>,
        states_buf: &mut Vec<GradientState<'static, f64>>,
        batch: &mut GradientBatchOutput,
        kout: &mut KernelOutput,
    ) {
        match self.kernel {
            KernelKind::Gradient => self.flush_gradient(backend, local, states_buf, batch),
            KernelKind::InverseDynamics | KernelKind::ForwardDynamics => {
                self.flush_vector(backend, local, kout)
            }
        }
    }

    /// Gradient-kernel flush: one wide `gradient_batch_into` over the
    /// whole coalesced batch.
    fn flush_gradient(
        &self,
        backend: &mut dyn DynamicsBackend,
        local: &mut Vec<Pending>,
        states_buf: &mut Vec<GradientState<'static, f64>>,
        batch: &mut GradientBatchOutput,
    ) {
        let n = local.len();
        let result = {
            let _span = robo_trace::span_items("serve.flush", n);
            let mut states = recycle_states(std::mem::take(states_buf));
            states.extend(local.iter().map(|p| GradientState {
                q: &p.req.q,
                qd: &p.req.qd,
                qdd: &p.req.qdd,
                minv: &p.req.minv,
            }));
            let result = backend.gradient_batch_into(&states, batch);
            *states_buf = park_states(states);
            result
        };
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(self.plan.serve_width().max(1)) {
            self.stats.ragged_flushes.fetch_add(1, Ordering::Relaxed);
        }
        let _span = robo_trace::span_items("serve.respond", n);
        for (i, mut p) in local.drain(..).enumerate() {
            // Dimensions were validated against this plan at admission, so
            // the batch call cannot fail; if it somehow did, the slot is
            // still completed (buffer returned untouched) rather than
            // stranding a parked client.
            if result.is_ok() {
                copy_block(batch, i, &mut p.req.out);
            }
            // Count before waking the client, so a stats snapshot taken
            // right after a wait() returns already sees the completion.
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            p.slot.fulfil(p.req);
        }
    }

    /// Vector-kernel flush (`id`/`fd`): evaluate each request through the
    /// family and copy the result into its `out_vec` buffer. Lane-group
    /// raggedness does not apply — there is no wide path to leave idle —
    /// so only `flushes` is counted.
    fn flush_vector(
        &self,
        backend: &mut dyn DynamicsBackend,
        local: &mut Vec<Pending>,
        kout: &mut KernelOutput,
    ) {
        let n = local.len();
        self.stats.flushes.fetch_add(1, Ordering::Relaxed);
        let _span = robo_trace::span_items("serve.flush", n);
        for mut p in local.drain(..) {
            let result = backend.run_into(
                self.kernel,
                &p.req.q,
                &p.req.qd,
                &p.req.qdd,
                &p.req.minv,
                kout,
            );
            if result.is_ok() {
                let src = match self.kernel {
                    KernelKind::InverseDynamics => &kout.tau,
                    KernelKind::ForwardDynamics => &kout.qdd,
                    KernelKind::Gradient => unreachable!("gradient takes the wide path"),
                };
                p.req.out_vec.clear();
                p.req.out_vec.extend_from_slice(src);
            }
            self.stats.completed.fetch_add(1, Ordering::Relaxed);
            p.slot.fulfil(p.req);
        }
    }
}

/// Worker thread body: a private warm backend plus recycled scratch, fed
/// by [`Shard::collect`] until shutdown drains the queue.
fn worker_loop(shard: &Shard) {
    let mut backend = shard.plan.backend(shard.kind);
    let mut local: Vec<Pending> = Vec::with_capacity(shard.max_batch);
    let mut states: Vec<GradientState<'static, f64>> = Vec::with_capacity(shard.max_batch);
    let mut batch = GradientBatchOutput::new();
    let mut kout = KernelOutput::new();
    while shard.collect(&mut local) {
        shard.flush(
            backend.as_mut(),
            &mut local,
            &mut states,
            &mut batch,
            &mut kout,
        );
    }
}

/// Copies state `i`'s SoA blocks into a caller's dense output buffer.
/// `resize_zeroed` at an unchanged size is a no-op, so warm buffers make
/// this pure copying.
fn copy_block(batch: &GradientBatchOutput, i: usize, out: &mut GradientOutput) {
    let n = batch.dof();
    for (flat, mat) in [
        (batch.dqdd_dq_at(i), &mut out.dqdd_dq),
        (batch.dqdd_dqd_at(i), &mut out.dqdd_dqd),
        (batch.dtau_dq_at(i), &mut out.dtau_dq),
        (batch.dtau_dqd_at(i), &mut out.dtau_dqd),
    ] {
        mat.resize_zeroed(n, n);
        for r in 0..n {
            for c in 0..n {
                mat[(r, c)] = flat[r * n + c];
            }
        }
    }
}

/// Reclaims the parked lane-view vector's allocation under a fresh borrow
/// lifetime, so per-flush `GradientState` views never allocate.
fn recycle_states<'a>(v: Vec<GradientState<'static, f64>>) -> Vec<GradientState<'a, f64>> {
    debug_assert!(v.is_empty(), "parked state vectors are always empty");
    let mut v = std::mem::ManuallyDrop::new(v);
    let (ptr, cap) = (v.as_mut_ptr(), v.capacity());
    // SAFETY: the vector is empty, so only its allocation is reused.
    // `GradientState<'static, f64>` and `GradientState<'a, f64>` differ
    // only in lifetime — identical layout and allocator — so rebuilding a
    // zero-length vector over the same allocation is valid.
    unsafe { Vec::from_raw_parts(ptr.cast(), 0, cap) }
}

/// Parks a drained lane-view vector between flushes by erasing its borrow
/// lifetime (inverse of [`recycle_states`]).
fn park_states(mut v: Vec<GradientState<'_, f64>>) -> Vec<GradientState<'static, f64>> {
    v.clear();
    let mut v = std::mem::ManuallyDrop::new(v);
    let (ptr, cap) = (v.as_mut_ptr(), v.capacity());
    // SAFETY: cleared above, so no element (and no borrow) survives; as in
    // `recycle_states`, only the layout-identical allocation crosses the
    // lifetime change.
    unsafe { Vec::from_raw_parts(ptr.cast(), 0, cap) }
}
