//! Caller-owned request buffers and the reusable completion slot that
//! hands them back — the serving tier's allocation-free response path.

use robo_dynamics::engine::{GradientOutput, KernelKind};
use robo_spatial::MatN;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// One kernel evaluation point plus its output buffers, owned by the
/// client and lent to the server for the duration of a request.
///
/// The same buffer carries the inputs in (`q`, `q̇`, the kernel's third
/// operand, `M⁻¹` — the accelerator interface of the paper's Figure 9) and
/// the response out. [`ResponseSlot::wait`] returns it on completion, so a
/// steady-state client reuses one buffer forever and the request/response
/// round trip never allocates.
///
/// The `kernel` tag selects which member of the multifunction family the
/// server runs — requests are coalesced per (morphology, kernel). The
/// gradient kernel fills [`GradientRequest::out`]; the vector-valued
/// kernels (`id`, `fd`) fill [`GradientRequest::out_vec`].
#[derive(Debug, Clone)]
pub struct GradientRequest {
    /// Which kernel of the family to run (default:
    /// [`KernelKind::Gradient`]).
    pub kernel: KernelKind,
    /// Joint positions (length = plan dof).
    pub q: Vec<f64>,
    /// Joint velocities.
    pub qd: Vec<f64>,
    /// The kernel's third input: joint accelerations `q̈` for the `grad`
    /// and `id` kernels, applied torques `τ` for `fd` (the field keeps its
    /// historical name; the family interface calls this the "third" slot).
    pub qdd: Vec<f64>,
    /// Inverse mass matrix at `q` (consumed by `grad` and `fd`; validated
    /// but unused for `id`).
    pub minv: MatN<f64>,
    /// The gradient response: filled by the micro-batcher before the slot
    /// signals (untouched for `id`/`fd` requests).
    pub out: GradientOutput,
    /// The vector response: `τ` for `id`, `q̈` for `fd` (untouched for
    /// `grad` requests).
    pub out_vec: Vec<f64>,
}

impl GradientRequest {
    /// A zeroed gradient-kernel request pre-sized for `dof` joints, so
    /// first use through a warm server is already allocation-free.
    pub fn for_dof(dof: usize) -> Self {
        Self::for_kernel(dof, KernelKind::Gradient)
    }

    /// A zeroed request for any kernel of the family, pre-sized for `dof`
    /// joints.
    pub fn for_kernel(dof: usize, kernel: KernelKind) -> Self {
        Self {
            kernel,
            q: vec![0.0; dof],
            qd: vec![0.0; dof],
            qdd: vec![0.0; dof],
            minv: MatN::zeros(dof, dof),
            out: GradientOutput::for_dof(dof),
            out_vec: vec![0.0; dof],
        }
    }
}

/// Completion states of a slot. `Done` carries the request buffer on its
/// way back to the client.
// `Done` holds the buffer by value deliberately: indirection would cost
// an allocation per response on the steady-state round trip.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum SlotState {
    /// No request in flight; the slot may be submitted.
    Idle,
    /// Submitted and queued/executing; a waiter may be parked on the cv.
    Pending,
    /// The response is ready for [`ResponseSlot::wait`] to collect.
    Done(GradientRequest),
}

/// Shared core of a [`ResponseSlot`]: the server keeps an `Arc` to it for
/// the lifetime of the in-flight request.
#[derive(Debug)]
pub(crate) struct SlotInner {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl SlotInner {
    fn lock(&self) -> MutexGuard<'_, SlotState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Idle → Pending; false if a request is already in flight (the
    /// submission is refused with `ServeError::SlotBusy`).
    pub(crate) fn begin(&self) -> bool {
        let mut st = self.lock();
        if matches!(*st, SlotState::Idle) {
            *st = SlotState::Pending;
            true
        } else {
            false
        }
    }

    /// Pending → Idle, on admission failure after `begin`.
    pub(crate) fn cancel(&self) {
        let mut st = self.lock();
        debug_assert!(matches!(*st, SlotState::Pending));
        *st = SlotState::Idle;
    }

    /// Pending → Done: the worker hands the filled buffer back and wakes
    /// the waiter. No allocation — the buffer moves by value.
    pub(crate) fn fulfil(&self, req: GradientRequest) {
        let mut st = self.lock();
        debug_assert!(matches!(*st, SlotState::Pending));
        *st = SlotState::Done(req);
        drop(st);
        self.cv.notify_all();
    }
}

/// A reusable one-shot completion handle: submit with it, [`wait`] on it,
/// get the request buffer back, repeat.
///
/// One slot serves one in-flight request at a time (a second submit on a
/// busy slot is refused with
/// [`ServeError::SlotBusy`](crate::ServeError::SlotBusy)); a client that
/// wants pipelining holds several slots.
///
/// [`wait`]: ResponseSlot::wait
#[derive(Debug)]
pub struct ResponseSlot {
    pub(crate) inner: Arc<SlotInner>,
}

impl ResponseSlot {
    /// A fresh idle slot.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(SlotInner {
                state: Mutex::new(SlotState::Idle),
                cv: Condvar::new(),
            }),
        }
    }

    /// Whether a request is currently in flight on this slot.
    pub fn is_pending(&self) -> bool {
        matches!(*self.inner.lock(), SlotState::Pending)
    }

    /// Blocks until the in-flight request completes and returns its
    /// buffer (outputs filled), resetting the slot to idle.
    ///
    /// # Panics
    ///
    /// Panics if called with no request in flight — that is a client
    /// protocol bug, not a runtime condition.
    pub fn wait(&self) -> GradientRequest {
        let mut st = self.inner.lock();
        loop {
            match &*st {
                SlotState::Done(_) => {
                    let SlotState::Done(req) = std::mem::replace(&mut *st, SlotState::Idle) else {
                        unreachable!("matched Done above");
                    };
                    return req;
                }
                SlotState::Pending => {
                    st = self.inner.cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                SlotState::Idle => panic!("ResponseSlot::wait with no request in flight"),
            }
        }
    }

    /// Non-blocking variant of [`wait`](Self::wait): returns the buffer if
    /// the response is ready, `None` while pending or idle.
    pub fn try_take(&self) -> Option<GradientRequest> {
        let mut st = self.inner.lock();
        if matches!(*st, SlotState::Done(_)) {
            let SlotState::Done(req) = std::mem::replace(&mut *st, SlotState::Idle) else {
                unreachable!("matched Done above");
            };
            Some(req)
        } else {
            None
        }
    }
}

impl Default for ResponseSlot {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_round_trip_and_reuse() {
        let slot = ResponseSlot::new();
        assert!(!slot.is_pending());
        assert!(slot.try_take().is_none());
        for turn in 0..3 {
            assert!(slot.inner.begin());
            assert!(slot.is_pending());
            assert!(!slot.inner.begin(), "busy slot must refuse a second begin");
            let mut req = GradientRequest::for_dof(2);
            req.q[0] = turn as f64;
            slot.inner.fulfil(req);
            let back = slot.wait();
            assert_eq!(back.q[0], turn as f64);
            assert!(!slot.is_pending());
        }
    }

    #[test]
    fn cancel_returns_slot_to_idle() {
        let slot = ResponseSlot::new();
        assert!(slot.inner.begin());
        slot.inner.cancel();
        assert!(!slot.is_pending());
        assert!(slot.inner.begin());
        slot.inner.fulfil(GradientRequest::for_dof(1));
        assert!(slot.try_take().is_some());
    }

    #[test]
    fn wait_crosses_threads() {
        let slot = ResponseSlot::new();
        assert!(slot.inner.begin());
        let inner = Arc::clone(&slot.inner);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            inner.fulfil(GradientRequest::for_dof(3));
        });
        let req = slot.wait();
        assert_eq!(req.q.len(), 3);
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "no request in flight")]
    fn wait_on_idle_slot_panics() {
        ResponseSlot::new().wait();
    }
}
