//! The kernel-serving tier: many concurrent clients, saturated lanes.
//!
//! Everything below this crate evaluates the dynamics kernel family fast
//! *given a batch*: [`RobotPlan`] compiles the morphology once, the wide
//! backends evaluate `serve_width` states per kernel instruction, and
//! [`BatchEngine`] fans lane-groups across cores. What none of that
//! answers is where the batch comes from. Real serving load is the
//! opposite shape — thousands of independent clients each asking for *one*
//! evaluation at a time — and evaluated one-by-one the wide path never
//! fills a lane.
//!
//! [`GradientServer`] is the front end that turns that request stream back
//! into the shape the engine layer is fast at:
//!
//! ```text
//!   clients                GradientServer                    engine layer
//!  ────────   submit()   ┌───────────────────────────────┐
//!   c0 ──────────────────▶ plan cache (MorphologyKey →   │
//!   c1 ──────────────────▶   plan + per-kernel shards;   │
//!   c2 ──────────────────▶   one build per robot)        │
//!  ────────              │        │                      │
//!                        │        ▼ (morphology, kernel) │
//!                        │  bounded queue ──▶ coalescer ──▶ lane-groups of
//!                        │  (admission      (flush on      serve_width ×
//!                        │   control,        batch-full    worker threads
//!                        │   Overloaded      or linger     via the family
//!                        │   shed)           deadline)     backend
//!                        └───────────────────────────────┘
//!   c0 ◀───────────────── ResponseSlot::wait() ◀────────── serve.respond
//! ```
//!
//! * **Plan cache** — requests carry a [`MorphologyKey`] (a canonical
//!   digest of the robot's structure). The first request for a morphology
//!   builds its [`RobotPlan`] — exactly once, shared by every kernel of
//!   the multifunction family; N simultaneous cold requests coalesce onto
//!   **one** build. Everyone else gets the cached `Arc`.
//! * **Per-(morphology, kernel) shards** — each request names a
//!   [`KernelKind`] (`grad`, `id`, or `fd`) and is routed to that
//!   kernel's own queue and workers, so gradient batches coalesce wide
//!   while the latency-bound vector kernels drain without disturbing
//!   them. The gradient shard is warmed at registration; `id`/`fd`
//!   shards spawn lazily on first submission.
//! * **Dynamic micro-batcher** — each shard owns a bounded queue and
//!   worker threads. A worker drains up to `max_batch` requests at a time,
//!   flushing when a batch fills **or** when the oldest queued request has
//!   lingered past the configurable deadline — so a lone request still
//!   sees bounded latency (a ragged, partial-lane flush) while bursts ride
//!   full lanes.
//! * **Backpressure** — the queue is bounded; when it is full, submission
//!   fails fast with [`ServeError::Overloaded`] and hands the request
//!   buffer back ([`Rejected`]) instead of queueing unbounded work. A
//!   queue-depth high-water mark is tracked in [`ServeStats`].
//! * **Graceful shutdown** — dropping the server marks every shard
//!   draining, workers flush whatever is queued (every accepted request is
//!   answered), and threads are joined.
//!
//! The hot path is allocation-free once warm (see `tests/alloc_free.rs`):
//! request and response travel through caller-owned, reusable
//! [`GradientRequest`] buffers handed back by [`ResponseSlot::wait`], so
//! steady-state serving does not touch the allocator. The allowed
//! allocation points are all cold: plan build, shard/worker spawn, slot
//! creation, and first-use buffer sizing.
//!
//! # Example
//!
//! ```
//! use robo_model::robots;
//! use robo_serve::{GradientRequest, GradientServer, ResponseSlot};
//!
//! let server = GradientServer::new();
//! let key = server.register(&robots::iiwa14());
//! let plan = server.plan(key).expect("registered");
//! let n = plan.dof();
//!
//! // A reusable request buffer and completion slot per client.
//! let mut req = GradientRequest::for_dof(n);
//! let slot = ResponseSlot::new();
//! req.q.copy_from_slice(&[0.1, -0.3, 0.5, 0.7, -0.2, 0.4, 0.0]);
//! // qd/qdd stay zero; M⁻¹ at q:
//! req.minv = robo_dynamics::mass_matrix_inverse(plan.model(), &req.q).unwrap();
//!
//! server.submit(key, req, &slot).expect("admitted");
//! let req = slot.wait(); // blocks until the micro-batcher responds
//! assert_eq!(req.out.dqdd_dq.rows(), n);
//! ```
//!
//! [`RobotPlan`]: robo_sim::engine::RobotPlan
//! [`BatchEngine`]: robo_dynamics::batch::BatchEngine

#![warn(missing_docs)]

mod cache;
mod error;
mod server;
mod shard;
mod slot;

pub use error::{Rejected, ServeError};
pub use robo_dynamics::engine::KernelKind;
pub use robo_dynamics::MorphologyKey;
pub use server::{GradientServer, ServeStats};
pub use slot::{GradientRequest, ResponseSlot};

use robo_sim::engine::BackendKind;
use robo_spatial::ExecTier;
use std::time::Duration;

/// Tuning knobs for a [`GradientServer`].
///
/// The defaults target the serving sweet spot: accelerator backend,
/// host-detected tier, lane-group batches of `4 × serve_width`, and a
/// 200 µs linger — short against control-loop periods, long against
/// kernel evaluation, so concurrent clients coalesce without a lone
/// client stalling.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Micro-batcher worker threads per morphology shard. `0` (the
    /// default) auto-sizes to the host parallelism, capped at 4.
    pub workers: usize,
    /// Bounded queue depth per shard; submissions beyond it shed with
    /// [`ServeError::Overloaded`].
    pub queue_capacity: usize,
    /// Batch-full threshold, in lane groups: a worker flushes once
    /// `lane_groups_per_flush × serve_width` requests are queued. `0`
    /// disables coalescing entirely (naive one-request-one-gradient
    /// dispatch — the load-generator baseline).
    pub lane_groups_per_flush: usize,
    /// Maximum time the oldest queued request may linger before a worker
    /// flushes a partial (ragged) batch.
    pub max_linger: Duration,
    /// Engine backend each worker serves through.
    pub backend: BackendKind,
    /// Execution tier for plan builds; `None` detects the fastest tier
    /// the host supports.
    pub tier: Option<ExecTier>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 256,
            lane_groups_per_flush: 4,
            max_linger: Duration::from_micros(200),
            backend: BackendKind::Accel,
            tier: None,
        }
    }
}

impl ServeConfig {
    /// The worker-thread count a shard actually spawns (resolves the
    /// `0 = auto` default against host parallelism).
    pub fn resolved_workers(&self) -> usize {
        if self.workers != 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get().min(4))
    }

    /// The batch-full threshold in requests for a plan serving
    /// `serve_width` states per wide instruction.
    pub fn max_batch(&self, serve_width: usize) -> usize {
        if self.lane_groups_per_flush == 0 {
            1
        } else {
            self.lane_groups_per_flush * serve_width.max(1)
        }
    }
}
