//! The server facade: registration, submission, stats, and graceful
//! shutdown.

use crate::cache::{MorphShards, PlanCache};
use crate::error::{Rejected, ServeError};
use crate::slot::{GradientRequest, ResponseSlot};
use crate::ServeConfig;
use robo_dynamics::engine::KernelKind;
use robo_dynamics::{DynamicsModel, MorphologyKey};
use robo_model::RobotModel;
use robo_sim::engine::RobotPlan;
use robo_spatial::ExecTier;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Aggregated serving counters across every shard (see the field docs for
/// which stage each counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Plans actually built — stays at one per morphology no matter how
    /// many concurrent cold requests raced.
    pub plans_built: u64,
    /// Requests admitted past backpressure.
    pub submitted: u64,
    /// Requests answered (every admitted request is, even through
    /// shutdown drain).
    pub completed: u64,
    /// Requests shed with [`ServeError::Overloaded`].
    pub shed: u64,
    /// Micro-batcher flushes executed.
    pub flushes: u64,
    /// Flushes whose batch was not a whole number of lane groups (linger
    /// deadline or drain fired before the batch filled).
    pub ragged_flushes: u64,
    /// Deepest any shard queue has been — the backpressure observable to
    /// alert on before shedding starts.
    pub queue_high_water: u64,
}

struct ServerInner {
    config: ServeConfig,
    cache: PlanCache,
}

impl Drop for ServerInner {
    fn drop(&mut self) {
        // Graceful shutdown: mark every shard draining first (so all
        // workers start flushing concurrently), then join.
        let shards = self.cache.shards();
        for s in &shards {
            s.begin_shutdown();
        }
        for s in &shards {
            s.join_workers();
        }
    }
}

/// The gradient-serving front end (see the [crate docs](crate) for the
/// architecture). Cheap to clone — clones share the plan cache and
/// shards; the last clone dropped drains and joins the workers.
#[derive(Clone)]
pub struct GradientServer {
    inner: Arc<ServerInner>,
}

impl GradientServer {
    /// A server with [`ServeConfig::default`] tuning.
    pub fn new() -> Self {
        Self::with_config(ServeConfig::default())
    }

    /// A server with explicit tuning.
    pub fn with_config(config: ServeConfig) -> Self {
        Self {
            inner: Arc::new(ServerInner {
                config,
                cache: PlanCache::new(),
            }),
        }
    }

    /// The server's tuning.
    pub fn config(&self) -> &ServeConfig {
        &self.inner.config
    }

    /// Ensures a plan exists for `robot`'s morphology and returns its
    /// key. The first call per morphology builds the plan (once — shards
    /// for every kernel of the family share it); concurrent first calls
    /// coalesce onto exactly one build; later calls are a cache hit.
    ///
    /// The gradient shard is warmed eagerly (it is the historical default
    /// workload); `id`/`fd` shards spawn lazily on first submission.
    pub fn register(&self, robot: &RobotModel) -> MorphologyKey {
        let _span = robo_trace::span("serve.register");
        let key = MorphologyKey::of_model(&DynamicsModel::new(robot));
        let morph = self.inner.cache.get_or_build(key, || {
            let tier = self.inner.config.tier.unwrap_or_else(ExecTier::detect);
            Arc::new(MorphShards::new(Arc::new(RobotPlan::with_tier(
                robot, tier,
            ))))
        });
        debug_assert_eq!(morph.plan().morphology_key(), key);
        let _ = morph.shard(KernelKind::Gradient, &self.inner.config);
        key
    }

    /// The cached plan for a registered morphology — clients use it to
    /// size request buffers ([`RobotPlan::dof`]) and compute `M⁻¹` against
    /// the shared model.
    pub fn plan(&self, key: MorphologyKey) -> Option<Arc<RobotPlan>> {
        self.inner.cache.get(key).map(|m| Arc::clone(m.plan()))
    }

    /// Submits one kernel request for morphology `key`, routed to the
    /// (morphology, kernel) shard named by [`GradientRequest::kernel`]
    /// (spawning that shard on first use). On admission the micro-batcher
    /// takes over and `slot` completes once the coalesced batch flushes;
    /// on rejection the buffer comes back in [`Rejected`] with a typed
    /// [`ServeError`].
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownMorphology`] (not registered),
    /// [`ServeError::Dimension`] (buffer sizes vs. plan dof),
    /// [`ServeError::SlotBusy`] (slot already in flight),
    /// [`ServeError::Overloaded`] (bounded queue full — backpressure),
    /// [`ServeError::ShuttingDown`] (server draining).
    // The rejected buffer rides back by value so the caller can resubmit
    // without reallocating; boxing it would put an allocation on the
    // shed path.
    #[allow(clippy::result_large_err)]
    pub fn submit(
        &self,
        key: MorphologyKey,
        req: GradientRequest,
        slot: &ResponseSlot,
    ) -> Result<(), Rejected> {
        let Some(morph) = self.inner.cache.get(key) else {
            return Err(Rejected {
                error: ServeError::UnknownMorphology(key),
                req,
            });
        };
        let shard = morph.shard(req.kernel, &self.inner.config);
        shard.enqueue(req, slot)
    }

    /// Convenience round trip: [`submit`](Self::submit) then
    /// [`ResponseSlot::wait`].
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit).
    #[allow(clippy::result_large_err)]
    pub fn serve(
        &self,
        key: MorphologyKey,
        req: GradientRequest,
        slot: &ResponseSlot,
    ) -> Result<GradientRequest, Rejected> {
        self.submit(key, req, slot)?;
        Ok(slot.wait())
    }

    /// Aggregated counters across all shards.
    pub fn stats(&self) -> ServeStats {
        let mut stats = ServeStats {
            plans_built: self.inner.cache.plans_built() as u64,
            ..ServeStats::default()
        };
        for shard in self.inner.cache.shards() {
            let s = &shard.stats;
            stats.submitted += s.submitted.load(Ordering::Relaxed);
            stats.completed += s.completed.load(Ordering::Relaxed);
            stats.shed += s.shed.load(Ordering::Relaxed);
            stats.flushes += s.flushes.load(Ordering::Relaxed);
            stats.ragged_flushes += s.ragged_flushes.load(Ordering::Relaxed);
            stats.queue_high_water = stats
                .queue_high_water
                .max(s.high_water.load(Ordering::Relaxed));
        }
        stats
    }
}

impl Default for GradientServer {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for GradientServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GradientServer")
            .field("config", &self.inner.config)
            .field("stats", &self.stats())
            .finish()
    }
}
