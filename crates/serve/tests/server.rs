//! Serving-tier behaviour: plan-cache coalescing, backpressure shed,
//! graceful drain, and correctness of batched responses.

use robo_dynamics::{forward_dynamics, mass_matrix_inverse, rnea};
use robo_model::robots;
use robo_serve::{
    GradientRequest, GradientServer, KernelKind, ResponseSlot, ServeConfig, ServeError,
};
use robo_sim::engine::{BackendKind, RobotPlan};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Fills a request buffer with a deterministic evaluation point `k`.
fn fill_case(plan: &RobotPlan, k: usize, req: &mut GradientRequest) {
    let n = plan.dof();
    for i in 0..n {
        req.q[i] = 0.07 * (i + k) as f64 - 0.2;
        req.qd[i] = 0.03 * i as f64 - 0.01 * k as f64;
    }
    let tau = vec![0.3 + 0.1 * k as f64; n];
    let qdd = forward_dynamics(plan.model(), &req.q, &req.qd, &tau).unwrap();
    req.qdd.copy_from_slice(&qdd);
    req.minv = mass_matrix_inverse(plan.model(), &req.q).unwrap();
}

#[test]
fn concurrent_cold_registrations_build_exactly_one_plan() {
    let server = GradientServer::with_config(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let threads = 8;
    let barrier = Arc::new(Barrier::new(threads));
    let keys: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let server = server.clone();
                let barrier = Arc::clone(&barrier);
                s.spawn(move || {
                    // Line every thread up on the cold cache before racing
                    // into register(), so misses really are concurrent.
                    barrier.wait();
                    server.register(&robots::iiwa14())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(keys.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(
        server.stats().plans_built,
        1,
        "N concurrent cold requests must coalesce onto one plan build"
    );
    // A second morphology still gets its own build.
    server.register(&robots::hyq());
    assert_eq!(server.stats().plans_built, 2);
}

#[test]
fn overload_sheds_typed_and_drain_answers_the_admitted() {
    // One worker that can never flush on its own: the batch threshold is
    // far above capacity and the linger is effectively infinite, so the
    // queue fills deterministically and the N+1th submission sheds.
    let capacity = 4;
    let server = GradientServer::with_config(ServeConfig {
        workers: 1,
        queue_capacity: capacity,
        lane_groups_per_flush: 1024,
        max_linger: Duration::from_secs(3600),
        backend: BackendKind::Cpu,
        ..ServeConfig::default()
    });
    let key = server.register(&robots::iiwa14());
    let plan = server.plan(key).unwrap();

    let slots: Vec<ResponseSlot> = (0..capacity + 1).map(|_| ResponseSlot::new()).collect();
    for (k, slot) in slots.iter().take(capacity).enumerate() {
        let mut req = GradientRequest::for_dof(plan.dof());
        fill_case(&plan, k, &mut req);
        server.submit(key, req, slot).expect("under capacity");
    }
    let mut req = GradientRequest::for_dof(plan.dof());
    fill_case(&plan, capacity, &mut req);
    let rejected = server
        .submit(key, req, &slots[capacity])
        .expect_err("queue is full");
    assert_eq!(
        rejected.error,
        ServeError::Overloaded {
            depth: capacity,
            capacity
        }
    );
    // The shed path hands the buffer back untouched.
    assert_eq!(rejected.req.q.len(), plan.dof());
    assert!(!slots[capacity].is_pending());

    let stats = server.stats();
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.submitted, capacity as u64);
    assert_eq!(stats.queue_high_water, capacity as u64);

    // Graceful shutdown: dropping the server drains the queue — every
    // admitted request is answered, bit-identical to a direct backend.
    drop(server);
    let mut direct = plan.backend(BackendKind::Cpu);
    for (k, slot) in slots.iter().take(capacity).enumerate() {
        let got = slot.wait();
        let mut want = GradientRequest::for_dof(plan.dof());
        fill_case(&plan, k, &mut want);
        let mut expected = want.out.clone();
        direct
            .gradient_into(&want.q, &want.qd, &want.qdd, &want.minv, &mut expected)
            .unwrap();
        assert_eq!(got.out, expected, "drained response {k} must be exact");
    }
}

#[test]
fn rejections_are_typed_and_return_the_buffer() {
    let server = GradientServer::with_config(ServeConfig {
        workers: 1,
        backend: BackendKind::Cpu,
        ..ServeConfig::default()
    });
    let key = server.register(&robots::iiwa14());
    let plan = server.plan(key).unwrap();
    let slot = ResponseSlot::new();

    // Unknown morphology: hyq was never registered.
    let foreign = RobotPlan::new(&robots::hyq());
    let rejected = server
        .submit(
            foreign.morphology_key(),
            GradientRequest::for_dof(foreign.dof()),
            &slot,
        )
        .expect_err("not registered");
    assert_eq!(
        rejected.error,
        ServeError::UnknownMorphology(foreign.morphology_key())
    );
    assert!(server.plan(foreign.morphology_key()).is_none());

    // Dimension mismatch: a 3-dof buffer against a 7-dof plan.
    let rejected = server
        .submit(key, GradientRequest::for_dof(3), &slot)
        .expect_err("wrong dof");
    assert!(matches!(rejected.error, ServeError::Dimension(_)));

    // Slot busy: a second submission while one is in flight.
    let mut req = GradientRequest::for_dof(plan.dof());
    fill_case(&plan, 0, &mut req);
    server.submit(key, req, &slot).expect("admitted");
    let mut second = GradientRequest::for_dof(plan.dof());
    fill_case(&plan, 1, &mut second);
    let rejected = server.submit(key, second, &slot).expect_err("slot busy");
    assert_eq!(rejected.error, ServeError::SlotBusy);
    // The in-flight request still completes normally.
    let done = slot.wait();
    assert_eq!(done.out.dqdd_dq.rows(), plan.dof());
}

#[test]
fn coalesced_responses_match_direct_backends() {
    // Pipelined submissions from many slots force multi-request flushes
    // (full and ragged); every response must be bit-identical to a direct
    // serial gradient call on the same backend.
    for backend in [BackendKind::Cpu, BackendKind::Accel] {
        let server = GradientServer::with_config(ServeConfig {
            workers: 1,
            backend,
            max_linger: Duration::from_micros(50),
            ..ServeConfig::default()
        });
        let key = server.register(&robots::iiwa14());
        let plan = server.plan(key).unwrap();
        let count = 2 * plan.serve_width() + 3; // full groups + ragged tail
        let slots: Vec<ResponseSlot> = (0..count).map(|_| ResponseSlot::new()).collect();
        for (k, slot) in slots.iter().enumerate() {
            let mut req = GradientRequest::for_dof(plan.dof());
            fill_case(&plan, k, &mut req);
            server.submit(key, req, slot).expect("admitted");
        }
        let mut direct = plan.backend(backend);
        for (k, slot) in slots.iter().enumerate() {
            let got = slot.wait();
            let mut want = GradientRequest::for_dof(plan.dof());
            fill_case(&plan, k, &mut want);
            let mut expected = want.out.clone();
            direct
                .gradient_into(&want.q, &want.qd, &want.qdd, &want.minv, &mut expected)
                .unwrap();
            assert_eq!(got.out, expected, "{backend:?} response {k}");
        }
        let stats = server.stats();
        assert_eq!(stats.completed, count as u64);
        assert_eq!(stats.shed, 0);
        assert!(stats.flushes >= 1);
    }
}

#[test]
fn kernel_tagged_requests_route_to_family_shards() {
    // One morphology serving all three kernels of the family: the plan is
    // built once, each kernel gets its own shard, and the id/fd responses
    // land in `out_vec` matching the direct dynamics kernels.
    for backend in [BackendKind::Cpu, BackendKind::Accel] {
        let server = GradientServer::with_config(ServeConfig {
            workers: 1,
            backend,
            ..ServeConfig::default()
        });
        let key = server.register(&robots::iiwa14());
        let plan = server.plan(key).unwrap();
        let n = plan.dof();
        let slot = ResponseSlot::new();

        // Inverse dynamics: qdd carries q̈, out_vec comes back as τ.
        let mut req = GradientRequest::for_kernel(n, KernelKind::InverseDynamics);
        fill_case(&plan, 0, &mut req);
        let req = server.serve(key, req, &slot).expect("id round trip");
        let want_tau = rnea(plan.model(), &req.q, &req.qd, &req.qdd).tau;
        let tol = if backend == BackendKind::Cpu {
            0.0
        } else {
            1e-10
        };
        for (i, (got, want)) in req.out_vec.iter().zip(&want_tau).enumerate() {
            assert!(
                (got - want).abs() <= tol * want.abs().max(1.0),
                "{backend:?} id torque {i}: {got} vs {want}"
            );
        }

        // Forward dynamics: qdd carries τ, out_vec comes back as q̈. Feed
        // the torques just computed so fd must recover the original q̈.
        let mut fd_req = GradientRequest::for_kernel(n, KernelKind::ForwardDynamics);
        fill_case(&plan, 0, &mut fd_req);
        let want_qdd = fd_req.qdd.clone();
        fd_req.qdd.copy_from_slice(&want_tau);
        let fd_req = server.serve(key, fd_req, &slot).expect("fd round trip");
        for (i, (got, want)) in fd_req.out_vec.iter().zip(&want_qdd).enumerate() {
            assert!(
                (got - want).abs() <= 1e-8 * want.abs().max(1.0),
                "{backend:?} fd accel {i}: {got} vs {want}"
            );
        }

        // Gradient requests still work through the same server, and the
        // whole family cost exactly one plan build.
        let mut grad = GradientRequest::for_dof(n);
        fill_case(&plan, 1, &mut grad);
        let grad = server.serve(key, grad, &slot).expect("grad round trip");
        assert_eq!(grad.out.dqdd_dq.rows(), n);
        let stats = server.stats();
        assert_eq!(
            stats.plans_built, 1,
            "{backend:?}: all three kernel shards must share one plan"
        );
        assert_eq!(stats.completed, 3);
    }
}

#[test]
fn serve_round_trip_and_stats_observability() {
    let server = GradientServer::with_config(ServeConfig {
        workers: 1,
        backend: BackendKind::Accel,
        ..ServeConfig::default()
    });
    let key = server.register(&robots::iiwa14());
    let plan = server.plan(key).unwrap();
    let slot = ResponseSlot::new();
    let mut req = GradientRequest::for_dof(plan.dof());
    for turn in 0..5 {
        fill_case(&plan, turn, &mut req);
        req = server.serve(key, req, &slot).expect("round trip");
        assert_eq!(req.out.dqdd_dq.rows(), plan.dof());
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 5);
    // Single in-flight request per flush: every flush is a partial lane
    // group on any wide tier.
    assert_eq!(stats.flushes, 5);
    if plan.serve_width() > 1 {
        assert_eq!(stats.ragged_flushes, 5);
    }
    assert_eq!(stats.queue_high_water, 1);
}
