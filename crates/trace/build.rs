//! Captures the compiler version at build time so trace and bench
//! artifacts can record it (`HostInfo::detect` reads `ROBO_TRACE_RUSTC`).

fn main() {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".to_owned());
    let version = std::process::Command::new(rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    println!("cargo:rustc-env=ROBO_TRACE_RUSTC={version}");
}
