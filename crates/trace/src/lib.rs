//! Trace-level observability for the robomorphic pipeline.
//!
//! Every perf claim in this workspace (compiled tapes, SoA lanes, native
//! SIMD tiers) ultimately rests on *where cycles go* — and the paper's
//! methodology itself starts from workload analysis (§5.1). This crate is
//! the measuring instrument: a lightweight RAII span layer instrumenting
//! the end-to-end pipeline (plan build, netlist optimize/fuse/schedule,
//! tape lowering, AoS↔SoA lane marshalling, tiered tape eval, the iLQR
//! backward pass, batch fan-out), emitting [Chrome-trace JSON] viewable
//! in Perfetto or `chrome://tracing`.
//!
//! [Chrome-trace JSON]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! # Cost model
//!
//! Three states, two switches:
//!
//! * **absent** — the `enabled` cargo feature is off (the default).
//!   [`span`] returns a zero-sized guard and compiles to nothing;
//!   instrumented hot paths are bit-for-bit the uninstrumented code.
//! * **disabled** — `enabled` is compiled in but no collector is
//!   installed. Each span costs one relaxed atomic load and performs
//!   **zero** heap allocations (proven by `tests/alloc_free.rs`).
//! * **collecting** — [`install`] has been called. Span ends take a
//!   global lock and push a small POD record; buffer growth may allocate.
//!   Spans are placed at batch/phase granularity, never per lane element,
//!   so collection overhead stays well under 1% of traced work.
//!
//! # Example
//!
//! ```
//! let _outer = robo_trace::span("plan.build");
//! {
//!     let _inner = robo_trace::span_items("tape.eval", 64);
//!     // … work …
//! }
//! // With the `enabled` feature and an installed collector, both spans
//! // land in the trace returned by `robo_trace::take()`.
//! ```

#![warn(missing_docs)]

mod chrome;
mod host;

pub use chrome::{SpanEvent, Trace};
pub use host::HostInfo;

#[cfg(feature = "enabled")]
mod record {
    use crate::chrome::{SpanEvent, Trace};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    /// Fast-path switch read by every span start: true only between
    /// [`install`] and [`take`].
    static COLLECTING: AtomicBool = AtomicBool::new(false);
    static STATE: Mutex<Option<State>> = Mutex::new(None);
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    std::thread_local! {
        /// Small dense per-thread id. A plain `u64` has no destructor, so
        /// first use on a thread does not allocate.
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }

    /// POD span record: no owned strings, so pushing one is a single
    /// `Vec` write (plus amortized growth).
    struct RawEvent {
        name: &'static str,
        start_ns: u64,
        dur_ns: u64,
        tid: u64,
        items: Option<u64>,
    }

    struct State {
        epoch: Instant,
        events: Vec<RawEvent>,
        threads: Vec<(u64, String)>,
    }

    fn lock() -> std::sync::MutexGuard<'static, Option<State>> {
        STATE.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Installs a fresh collector; subsequent spans record into it.
    ///
    /// Returns false (and leaves the existing collector untouched) if one
    /// is already installed — collection is process-global, so nested
    /// installs would interleave unrelated traces.
    pub fn install() -> bool {
        let mut guard = lock();
        if guard.is_some() {
            return false;
        }
        *guard = Some(State {
            epoch: Instant::now(),
            events: Vec::with_capacity(4096),
            threads: Vec::new(),
        });
        COLLECTING.store(true, Ordering::SeqCst);
        true
    }

    /// Stops collecting and returns the recorded trace (`None` if no
    /// collector was installed).
    pub fn take() -> Option<Trace> {
        COLLECTING.store(false, Ordering::SeqCst);
        let state = lock().take()?;
        let mut trace = Trace::new();
        trace.threads = state.threads;
        trace.events = state
            .events
            .iter()
            .map(|e| SpanEvent {
                name: e.name.to_owned(),
                cat: e.name.split('.').next().unwrap_or("span").to_owned(),
                ts_us: e.start_ns as f64 / 1_000.0,
                dur_us: e.dur_ns as f64 / 1_000.0,
                tid: e.tid,
                items: e.items,
            })
            .collect();
        Some(trace)
    }

    /// Whether a collector is currently installed.
    pub fn is_collecting() -> bool {
        COLLECTING.load(Ordering::Relaxed)
    }

    /// RAII guard: records one complete span from creation to drop.
    #[must_use = "a span guard measures until it is dropped"]
    pub struct SpanGuard {
        live: Option<Live>,
    }

    struct Live {
        name: &'static str,
        start: Instant,
        items: Option<u64>,
    }

    #[inline]
    fn start(name: &'static str, items: Option<u64>) -> SpanGuard {
        if !COLLECTING.load(Ordering::Relaxed) {
            return SpanGuard { live: None };
        }
        SpanGuard {
            live: Some(Live {
                name,
                start: Instant::now(),
                items,
            }),
        }
    }

    /// Opens a span; it completes (and is recorded) when the returned
    /// guard drops. When no collector is installed this is one relaxed
    /// atomic load and no allocation.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        start(name, None)
    }

    /// [`span`], annotated with the number of items the span processes
    /// (batch size, lane-group width, …) so per-item costs can be
    /// recovered from the trace.
    #[inline]
    pub fn span_items(name: &'static str, items: usize) -> SpanGuard {
        start(name, Some(items as u64))
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(live) = self.live.take() else { return };
            let end = Instant::now();
            let tid = TID.with(|t| *t);
            let mut guard = lock();
            // take() may have raced the span end: drop the record.
            let Some(state) = guard.as_mut() else { return };
            if !state.threads.iter().any(|(t, _)| *t == tid) {
                let name = std::thread::current()
                    .name()
                    .map(str::to_owned)
                    .unwrap_or_else(|| format!("thread-{tid}"));
                state.threads.push((tid, name));
            }
            let start_ns = live.start.saturating_duration_since(state.epoch).as_nanos() as u64;
            let dur_ns = end.saturating_duration_since(live.start).as_nanos() as u64;
            state.events.push(RawEvent {
                name: live.name,
                start_ns,
                dur_ns,
                tid,
                items: live.items,
            });
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod record {
    use crate::chrome::Trace;

    /// No-op without the `enabled` feature: recording is compiled out.
    #[inline(always)]
    pub fn install() -> bool {
        false
    }

    /// No-op without the `enabled` feature: there is never a trace.
    #[inline(always)]
    pub fn take() -> Option<Trace> {
        None
    }

    /// Always false without the `enabled` feature.
    #[inline(always)]
    pub fn is_collecting() -> bool {
        false
    }

    /// Zero-sized stand-in: constructing and dropping it is a no-op the
    /// optimizer deletes entirely.
    #[must_use = "a span guard measures until it is dropped"]
    pub struct SpanGuard {
        _priv: (),
    }

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard { _priv: () }
    }

    /// No-op without the `enabled` feature.
    #[inline(always)]
    pub fn span_items(_name: &'static str, _items: usize) -> SpanGuard {
        SpanGuard { _priv: () }
    }
}

pub use record::{install, is_collecting, span, span_items, take, SpanGuard};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The collector is process-global; tests that install one are
    /// serialized through this lock so `cargo test` parallelism cannot
    /// interleave them.
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_record_only_while_collecting() {
        let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        drop(span("ignored.before"));
        assert!(install());
        assert!(is_collecting());
        assert!(!install(), "second install must not clobber the first");
        {
            let _outer = span("plan.build");
            let _inner = span_items("tape.eval", 64);
        }
        let trace = take().expect("collector was installed");
        assert!(!is_collecting());
        assert!(take().is_none());
        drop(span("ignored.after"));
        assert_eq!(trace.span_kinds(), vec!["plan.build", "tape.eval"]);
        let eval = trace
            .events
            .iter()
            .find(|e| e.name == "tape.eval")
            .expect("recorded");
        assert_eq!(eval.items, Some(64));
        assert_eq!(eval.cat, "tape");
        // The inner span completes (drops) before the outer one.
        assert!(trace.events[0].name == "tape.eval");
        assert_eq!(trace.threads.len(), 1);
    }

    #[test]
    fn worker_threads_get_their_own_lane() {
        let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        assert!(install());
        {
            let _main = span("batch.fanout");
            std::thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| drop(span("batch.worker")));
                }
            });
        }
        let trace = take().expect("collector was installed");
        let worker_tids: std::collections::BTreeSet<u64> = trace
            .events
            .iter()
            .filter(|e| e.name == "batch.worker")
            .map(|e| e.tid)
            .collect();
        assert_eq!(worker_tids.len(), 2);
        assert_eq!(trace.threads.len(), 3);
    }
}
